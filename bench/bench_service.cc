// E4_service — multi-tenant online diagnosis serving (ROADMAP item 2):
// sessions/sec and p99 alarm-to-answer latency at 1k and 10k concurrent
// sessions over one plant model. Sessions draw their alarm streams from a
// small deterministic pool of generated runs, so the shared prefix cache
// does what it does in production — the first session reaching a prefix
// evaluates, every later session is served from the memoized answers. The
// resident-session cap is far below the session count, so the round-robin
// alarm schedule also churns the hibernate/restore path on every tick.
//
// All counts in the report (alarms, cache hits/misses, hibernations,
// restores, durable bytes, explanation checksum, registry counters) are
// deterministic for the fixed seed and schedule and are pinned by
// bench/baselines/BENCH_E4_service.json in CI; timing fields use the _ns
// suffix / ns unit the baseline guard excludes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/logging.h"
#include "common/rng.h"
#include "diagnosis/service.h"
#include "petri/alarm.h"
#include "petri/examples.h"

using namespace dqsq;

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A deterministic pool of distinct alarm streams from generated runs of
/// the plant (non-empty observations only).
std::vector<petri::AlarmSequence> MakeStreamPool(const petri::PetriNet& net,
                                                 size_t pool_size,
                                                 size_t num_firings,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<petri::AlarmSequence> pool;
  while (pool.size() < pool_size) {
    auto run = petri::GenerateRun(net, num_firings, rng);
    DQSQ_CHECK_OK(run.status());
    if (run->observation.empty()) continue;
    pool.push_back(run->observation);
  }
  return pool;
}

struct PhaseResult {
  uint64_t alarms = 0;
  uint64_t explanation_checksum = 0;  // sum over answers of |explanations|
  uint64_t open_ns = 0;
  uint64_t observe_ns = 0;
  uint64_t p99_alarm_ns = 0;
};

PhaseResult RunPhase(size_t num_sessions, size_t resident_cap,
                     const std::vector<petri::AlarmSequence>& pool,
                     const petri::PetriNet& net) {
  diagnosis::ServiceOptions opts;
  opts.max_sessions = num_sessions;
  opts.max_resident_sessions = resident_cap;
  diagnosis::DiagnosisService service(opts);
  DQSQ_CHECK_OK(service.RegisterModel("plant", net));

  PhaseResult out;
  const uint64_t open_start = NowNs();
  for (size_t i = 0; i < num_sessions; ++i) {
    DQSQ_CHECK_OK(service.OpenSession("s" + std::to_string(i), "plant"));
  }
  out.open_ns = NowNs() - open_start;

  size_t max_len = 0;
  for (const auto& stream : pool) max_len = std::max(max_len, stream.size());

  std::vector<uint64_t> latencies;
  latencies.reserve(num_sessions * max_len);
  const uint64_t observe_start = NowNs();
  // Round-robin: every session advances one alarm per tick — the
  // interleaving a real server sees, and the worst case for residency
  // (every Observe below the cap is a restore + an eviction).
  for (size_t round = 0; round < max_len; ++round) {
    for (size_t i = 0; i < num_sessions; ++i) {
      const petri::AlarmSequence& stream = pool[i % pool.size()];
      if (round >= stream.size()) continue;
      const uint64_t t0 = NowNs();
      auto result = service.Observe("s" + std::to_string(i), stream[round]);
      DQSQ_CHECK_OK(result.status());
      latencies.push_back(NowNs() - t0);
      ++out.alarms;
      out.explanation_checksum += result->size();
    }
  }
  out.observe_ns = NowNs() - observe_start;

  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    const size_t idx = (latencies.size() * 99) / 100;
    out.p99_alarm_ns = latencies[std::min(idx, latencies.size() - 1)];
  }
  return out;
}

void Report(bench::BenchReporter& reporter, const std::string& prefix,
            size_t sessions, size_t resident_cap, const PhaseResult& r) {
  reporter.Param(prefix + "_sessions", static_cast<int64_t>(sessions));
  reporter.Param(prefix + "_resident_cap", static_cast<int64_t>(resident_cap));
  reporter.Param(prefix + "_alarms", static_cast<int64_t>(r.alarms));
  reporter.Param(prefix + "_explanation_checksum",
                 static_cast<int64_t>(r.explanation_checksum));
  reporter.Param(prefix + "_open_ns", static_cast<int64_t>(r.open_ns));
  reporter.Param(prefix + "_observe_ns", static_cast<int64_t>(r.observe_ns));
  reporter.Param(prefix + "_p99_alarm_ns",
                 static_cast<int64_t>(r.p99_alarm_ns));
  const double secs = static_cast<double>(r.observe_ns) / 1e9;
  const double alarms_per_sec =
      secs > 0 ? static_cast<double>(r.alarms) / secs : 0.0;
  const double sessions_per_sec =
      r.open_ns > 0
          ? static_cast<double>(sessions) / (static_cast<double>(r.open_ns) / 1e9)
          : 0.0;
  std::fprintf(stderr,
               "%s: %zu sessions (cap %zu): open %.1f sessions/sec, "
               "%.0f alarms/sec, p99 alarm-to-answer %.3f ms\n",
               prefix.c_str(), sessions, resident_cap, sessions_per_sec,
               alarms_per_sec, static_cast<double>(r.p99_alarm_ns) / 1e6);
}

}  // namespace

int main() {
  bench::BenchReporter reporter("E4_service");
  petri::PetriNet net = petri::MakePaperNet(/*with_loop=*/true);
  const size_t kPoolSize = 16;
  const size_t kNumFirings = 6;
  const uint64_t kSeed = 41;
  auto pool = MakeStreamPool(net, kPoolSize, kNumFirings, kSeed);
  reporter.Param("workload", "paper_net_loop/generated_runs");
  reporter.Param("stream_pool", static_cast<int64_t>(pool.size()));
  reporter.Param("seed", static_cast<int64_t>(kSeed));

  PhaseResult r1k = RunPhase(1'000, 128, pool, net);
  Report(reporter, "run1k", 1'000, 128, r1k);

  PhaseResult r10k = RunPhase(10'000, 1'024, pool, net);
  Report(reporter, "run10k", 10'000, 1'024, r10k);

  reporter.Write();
  return 0;
}
