// E1 — the headline experiment (Theorem 4): how much of the unfolding each
// engine materializes to answer a diagnosis query. Compares the
// depth-bounded bottom-up evaluation (materializes the whole prefix), the
// magic-set and QSQ rewritings (materialize on demand), and the dedicated
// BFHJ algorithm [8] (product unfolding). The paper's claim: QSQ == BFHJ,
// both far below bottom-up.
#include <chrono>
#include <cstdio>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "diagnosis/diagnoser.h"
#include "petri/examples.h"

using namespace dqsq;
using diagnosis::DiagnosisEngine;

namespace {

// Per-engine wall time accumulated across the whole workload sweep,
// reported as `<engine>_ns` params. The `_ns` suffix marks them as timing
// fields for tools/check_bench_baseline.py: exempt from the exact
// comparison, bounded by --max-timing-ratio in CI.
struct EngineTimes {
  int64_t seminaive_ns = 0;
  int64_t magic_ns = 0;
  int64_t qsq_ns = 0;
  int64_t bfhj_ns = 0;
};

void Row(const char* net_name, const petri::PetriNet& net,
         const petri::AlarmSequence& alarms, EngineTimes& times) {
  struct Cell {
    size_t events = 0;
    size_t conds = 0;
    size_t total = 0;
    bool ok = false;
  };
  auto run = [&](DiagnosisEngine engine, int64_t& elapsed_ns) {
    diagnosis::DiagnosisOptions opts;
    opts.engine = engine;
    Cell cell;
    auto start = std::chrono::steady_clock::now();
    auto result = Diagnose(net, alarms, opts);
    elapsed_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (result.ok()) {
      cell.events = result->trans_facts;
      cell.conds = result->places_facts;
      cell.total = result->total_facts;
      cell.ok = true;
    }
    return cell;
  };
  Cell naive = run(DiagnosisEngine::kCentralSemiNaive, times.seminaive_ns);
  Cell magic = run(DiagnosisEngine::kCentralMagic, times.magic_ns);
  Cell qsq = run(DiagnosisEngine::kCentralQsq, times.qsq_ns);
  Cell bfhj = run(DiagnosisEngine::kBfhj, times.bfhj_ns);

  // Theorem 4 as a live check: the node sets, not just counts.
  diagnosis::DiagnosisOptions qopts, bopts;
  qopts.engine = DiagnosisEngine::kCentralQsq;
  bopts.engine = DiagnosisEngine::kBfhj;
  auto qres = Diagnose(net, alarms, qopts);
  auto bres = Diagnose(net, alarms, bopts);
  bool thm4 = qres.ok() && bres.ok() &&
              qres->materialized_events == bres->materialized_events;

  std::printf("%-10s %2zu | %7zu %7zu | %7zu %7zu | %7zu %7zu | %7zu %7zu | %s\n",
              net_name, alarms.size(), naive.events, naive.conds,
              magic.events, magic.conds, qsq.events, qsq.conds, bfhj.events,
              bfhj.conds, thm4 ? "yes" : "NO");
}

}  // namespace

int main() {
  bench::BenchReporter reporter("E1_materialization");
  reporter.Param("nets", "paper,rand1..3");
  reporter.Param("engines", "central_seminaive,central_magic,central_qsq,bfhj");
  std::printf(
      "E1: unfolding nodes materialized per engine (events, conditions)\n"
      "%-10s %2s | %15s | %15s | %15s | %15s | Thm4(QSQ==BFHJ)\n",
      "net", "n", "bottom-up(depth)", "magic", "qsq", "bfhj");

  // The paper net with its loop (infinite unfolding), growing
  // observations generated from real runs.
  petri::PetriNet paper = petri::MakePaperNet(/*with_loop=*/true);
  EngineTimes times;
  for (int n = 2; n <= 8; n += 2) {
    Rng rng(100 + n);
    auto run = petri::GenerateRun(paper, n, rng);
    DQSQ_CHECK_OK(run.status());
    Row("paper", paper, run->observation, times);
  }

  // Random telecom-style nets.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (int n = 2; n <= 6; n += 2) {
      auto w = bench::MakeDiagnosisWorkload(seed, /*peers=*/2, n);
      Row(("rand" + std::to_string(seed)).c_str(), w.net, w.observation,
          times);
    }
  }
  reporter.Param("central_seminaive_ns", times.seminaive_ns);
  reporter.Param("central_magic_ns", times.magic_ns);
  reporter.Param("central_qsq_ns", times.qsq_ns);
  reporter.Param("bfhj_ns", times.bfhj_ns);
  return 0;
}
