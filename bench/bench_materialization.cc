// E1 — the headline experiment (Theorem 4): how much of the unfolding each
// engine materializes to answer a diagnosis query. Compares the
// depth-bounded bottom-up evaluation (materializes the whole prefix), the
// magic-set and QSQ rewritings (materialize on demand), and the dedicated
// BFHJ algorithm [8] (product unfolding). The paper's claim: QSQ == BFHJ,
// both far below bottom-up.
#include <cstdio>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "diagnosis/diagnoser.h"
#include "petri/examples.h"

using namespace dqsq;
using diagnosis::DiagnosisEngine;

namespace {

void Row(const char* net_name, const petri::PetriNet& net,
         const petri::AlarmSequence& alarms) {
  struct Cell {
    size_t events = 0;
    size_t conds = 0;
    size_t total = 0;
    bool ok = false;
  };
  auto run = [&](DiagnosisEngine engine) {
    diagnosis::DiagnosisOptions opts;
    opts.engine = engine;
    Cell cell;
    auto result = Diagnose(net, alarms, opts);
    if (result.ok()) {
      cell.events = result->trans_facts;
      cell.conds = result->places_facts;
      cell.total = result->total_facts;
      cell.ok = true;
    }
    return cell;
  };
  Cell naive = run(DiagnosisEngine::kCentralSemiNaive);
  Cell magic = run(DiagnosisEngine::kCentralMagic);
  Cell qsq = run(DiagnosisEngine::kCentralQsq);
  Cell bfhj = run(DiagnosisEngine::kBfhj);

  // Theorem 4 as a live check: the node sets, not just counts.
  diagnosis::DiagnosisOptions qopts, bopts;
  qopts.engine = DiagnosisEngine::kCentralQsq;
  bopts.engine = DiagnosisEngine::kBfhj;
  auto qres = Diagnose(net, alarms, qopts);
  auto bres = Diagnose(net, alarms, bopts);
  bool thm4 = qres.ok() && bres.ok() &&
              qres->materialized_events == bres->materialized_events;

  std::printf("%-10s %2zu | %7zu %7zu | %7zu %7zu | %7zu %7zu | %7zu %7zu | %s\n",
              net_name, alarms.size(), naive.events, naive.conds,
              magic.events, magic.conds, qsq.events, qsq.conds, bfhj.events,
              bfhj.conds, thm4 ? "yes" : "NO");
}

}  // namespace

int main() {
  bench::BenchReporter reporter("E1_materialization");
  reporter.Param("nets", "paper,rand1..3");
  reporter.Param("engines", "central_seminaive,central_magic,central_qsq,bfhj");
  std::printf(
      "E1: unfolding nodes materialized per engine (events, conditions)\n"
      "%-10s %2s | %15s | %15s | %15s | %15s | Thm4(QSQ==BFHJ)\n",
      "net", "n", "bottom-up(depth)", "magic", "qsq", "bfhj");

  // The paper net with its loop (infinite unfolding), growing
  // observations generated from real runs.
  petri::PetriNet paper = petri::MakePaperNet(/*with_loop=*/true);
  for (int n = 2; n <= 8; n += 2) {
    Rng rng(100 + n);
    auto run = petri::GenerateRun(paper, n, rng);
    DQSQ_CHECK_OK(run.status());
    Row("paper", paper, run->observation);
  }

  // Random telecom-style nets.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (int n = 2; n <= 6; n += 2) {
      auto w = bench::MakeDiagnosisWorkload(seed, /*peers=*/2, n);
      Row(("rand" + std::to_string(seed)).c_str(), w.net, w.observation);
    }
  }
  return 0;
}
