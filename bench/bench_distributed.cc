// E3 — distributed evaluation (§3.2 / Theorem 1): messages delivered,
// tuples shipped and facts materialized across peers for distributed
// naive evaluation vs dQSQ on a chain partitioned over k peers.
//
// A second report (BENCH_E3_distributed_lossy.json) runs the same chain
// under fault-injection plans and tabulates the reliable-delivery shim's
// overhead (retransmits, spurious deliveries, transport acks) against the
// lossless baseline. The lossless table is written first, from its own
// reporter, so its counts are untouched by the lossy runs.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "dist/dnaive.h"
#include "dist/dqsq.h"

using namespace dqsq;

namespace {

// Microbench for SimNetwork::Step's channel scheduling: a dense all-pairs
// topology, where rebuilding the non-empty-channel vector per delivery
// (the pre-incremental-index behavior) cost O(#channels) per step. The
// result is recorded as step_micro_* params in BENCH_E3_distributed.json
// so the speedup stays pinned across commits. Runs before the reporter
// snapshot: its traffic does not pollute the E3 counters.
struct StepMicroResult {
  size_t messages = 0;
  int64_t wall_ns = 0;
};

StepMicroResult StepMicrobench() {
  class SinkPeer : public dist::PeerNode {
   public:
    Status OnMessage(const dist::Message&, dist::Network&) override {
      return Status::Ok();
    }
  };
  const uint32_t kPeers = 48;      // 2256 directed channels
  const uint32_t kPerChannel = 4;
  dist::SimNetwork net(1);
  std::vector<std::unique_ptr<SinkPeer>> peers;
  for (uint32_t p = 0; p < kPeers; ++p) {
    peers.push_back(std::make_unique<SinkPeer>());
    net.Register(p, peers.back().get());
  }
  StepMicroResult result;
  for (uint32_t from = 0; from < kPeers; ++from) {
    for (uint32_t to = 0; to < kPeers; ++to) {
      if (from == to) continue;
      for (uint32_t i = 0; i < kPerChannel; ++i) {
        dist::Message m;
        m.kind = dist::MessageKind::kTuples;
        m.from = from;
        m.to = to;
        net.Send(std::move(m));
        ++result.messages;
      }
    }
  }
  auto start = std::chrono::steady_clock::now();
  DQSQ_CHECK_OK(net.RunToQuiescence());
  result.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  DQSQ_CHECK_EQ(net.stats().messages_delivered, result.messages);
  return result;
}

dist::DistResult Run(const std::string& program_text,
                     const std::string& query_text, bool qsq,
                     const dist::FaultPlan& faults = {}, uint64_t seed = 1) {
  DatalogContext ctx;
  auto program = ParseProgram(program_text, ctx);
  DQSQ_CHECK_OK(program.status());
  auto query = ParseQuery(query_text, ctx);
  DQSQ_CHECK_OK(query.status());
  dist::DistOptions opts;
  opts.seed = seed;
  opts.faults = faults;
  auto result = qsq ? dist::DistQsqSolve(ctx, *program, *query, opts)
                    : dist::DistNaiveSolve(ctx, *program, *query, opts);
  DQSQ_CHECK_OK(result.status());
  return *std::move(result);
}

void Row(int peers, int per_peer) {
  const std::string program_text =
      bench::DistributedChainProgram(peers, per_peer);
  // Query bound at the first peer: demand (and data) traverses every
  // peer of the chain.
  const std::string query_text = "path@peer0(v0, Y)";
  auto naive = Run(program_text, query_text, /*qsq=*/false);
  auto qsq = Run(program_text, query_text, /*qsq=*/true);
  std::printf(
      "%5d %8d | %8zu %8zu %8zu | %8zu %8zu %8zu | %s\n", peers, per_peer,
      naive.net_stats.messages_delivered, naive.net_stats.tuples_shipped,
      naive.answer_facts, qsq.net_stats.messages_delivered,
      qsq.net_stats.tuples_shipped, qsq.answer_facts,
      naive.answers == qsq.answers ? "agree" : "MISMATCH");
}

struct PlanCase {
  const char* name;
  dist::FaultPlan plan;
};

std::vector<PlanCase> LossyMatrix() {
  std::vector<PlanCase> cases;
  cases.push_back({"lossless", {}});
  dist::FaultPlan drop;
  drop.drop = 0.1;
  cases.push_back({"drop0.1", drop});
  dist::FaultPlan dup;
  dup.duplicate = 0.1;
  cases.push_back({"dup0.1", dup});
  dist::FaultPlan delay;
  delay.delay = 0.3;
  delay.max_delay_steps = 12;
  cases.push_back({"delay0.3", delay});
  dist::FaultPlan all;
  all.drop = 0.1;
  all.duplicate = 0.1;
  all.delay = 0.2;
  cases.push_back({"all", all});
  dist::FaultPlan adversarial;
  adversarial.drop = 0.25;
  adversarial.duplicate = 0.1;
  adversarial.delay = 0.5;
  adversarial.max_delay_steps = 32;
  cases.push_back({"adversarial", adversarial});
  return cases;
}

// The same plan with SACK, the flow-control window and adaptive RTO turned
// off: stop-and-wait-with-cumulative-acks, the pre-SACK transport.
dist::FaultPlan CumulativeOnly(dist::FaultPlan plan) {
  plan.reliable.max_sack_blocks = 0;
  plan.reliable.adaptive_rto = false;
  plan.reliable.window = 0;
  return plan;
}

void LossyTable(bench::BenchReporter& reporter) {
  const int kPeers = 4, kPerPeer = 16;
  const uint64_t kSeeds = 5;  // retransmit comparison aggregates over seeds
  const std::string program_text =
      bench::DistributedChainProgram(kPeers, kPerPeer);
  const std::string query_text = "path@peer0(v0, Y)";
  reporter.Param("workload", "distributed_chain");
  reporter.Param("peers", int64_t{kPeers});
  reporter.Param("per_peer", int64_t{kPerPeer});
  reporter.Param("query", query_text);
  reporter.Param("comparison_seeds", int64_t{kSeeds});
  std::printf(
      "\nE3-lossy: reliable delivery under fault injection (chain %dx%d, "
      "dQSQ, %zu seeds)\n"
      "          |  logical |     cumulative-only     |      SACK+RTO+win"
      "       |\n"
      "%-11s | %8s | %8s %12s | %8s %12s %5s | %s\n",
      kPeers, kPerPeer, size_t{kSeeds}, "plan", "msgs", "retrans",
      "wire-bytes", "retrans", "wire-bytes", "red%", "answers");
  const auto baseline = Run(program_text, query_text, /*qsq=*/true);
  for (const PlanCase& c : LossyMatrix()) {
    // Aggregate both transport configurations over the same seeds; the
    // logical (first-delivery) series must match the lossless run on every
    // seed and configuration.
    dist::NetworkStats cum, sack;
    size_t logical_msgs = 0;
    bool agree = true;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      auto c_run = Run(program_text, query_text, /*qsq=*/true,
                       CumulativeOnly(c.plan), seed);
      auto s_run = Run(program_text, query_text, /*qsq=*/true, c.plan, seed);
      agree = agree && c_run.answers == baseline.answers &&
              s_run.answers == baseline.answers;
      cum.retransmits += c_run.net_stats.retransmits;
      cum.wire_bytes += c_run.net_stats.wire_bytes;
      sack.retransmits += s_run.net_stats.retransmits;
      sack.wire_bytes += s_run.net_stats.wire_bytes;
      sack.dropped += s_run.net_stats.dropped;
      sack.duplicated += s_run.net_stats.duplicated;
      sack.spurious += s_run.net_stats.spurious;
      sack.transport_acks += s_run.net_stats.transport_acks;
      sack.sacked += s_run.net_stats.sacked;
      sack.window_stalls += s_run.net_stats.window_stalls;
      logical_msgs = s_run.net_stats.messages_delivered;
    }
    const double reduction =
        cum.retransmits == 0
            ? 0.0
            : 100.0 * (static_cast<double>(cum.retransmits) -
                       static_cast<double>(sack.retransmits)) /
                  static_cast<double>(cum.retransmits);
    std::printf("%-11s | %8zu | %8zu %12zu | %8zu %12zu %5.0f | %s\n", c.name,
                logical_msgs, cum.retransmits, cum.wire_bytes,
                sack.retransmits, sack.wire_bytes, reduction,
                agree ? "agree" : "MISMATCH");
    const std::string prefix = std::string("plan.") + c.name + ".";
    reporter.Param(prefix + "messages_delivered",
                   static_cast<int64_t>(logical_msgs));
    reporter.Param(prefix + "dropped", static_cast<int64_t>(sack.dropped));
    reporter.Param(prefix + "duplicated",
                   static_cast<int64_t>(sack.duplicated));
    reporter.Param(prefix + "retransmits",
                   static_cast<int64_t>(sack.retransmits));
    reporter.Param(prefix + "spurious", static_cast<int64_t>(sack.spurious));
    reporter.Param(prefix + "transport_acks",
                   static_cast<int64_t>(sack.transport_acks));
    reporter.Param(prefix + "sacked", static_cast<int64_t>(sack.sacked));
    reporter.Param(prefix + "window_stalls",
                   static_cast<int64_t>(sack.window_stalls));
    reporter.Param(prefix + "wire_bytes",
                   static_cast<int64_t>(sack.wire_bytes));
    reporter.Param(prefix + "cum.retransmits",
                   static_cast<int64_t>(cum.retransmits));
    reporter.Param(prefix + "cum.wire_bytes",
                   static_cast<int64_t>(cum.wire_bytes));
    reporter.Param(prefix + "retransmit_reduction_pct", reduction);
    reporter.Param(prefix + "answers_agree",
                   std::string(agree ? "true" : "false"));
  }
}

struct CrashCase {
  const char* name;
  dist::CrashPlan crash;
};

std::vector<CrashCase> CrashMatrix() {
  std::vector<CrashCase> cases;
  dist::CrashPlan single;
  single.crash_at_step = {{/*at_step=*/40, /*peer_index=*/0}};
  single.down_for = 16;
  single.checkpoint_every = 1;
  cases.push_back({"single", single});
  dist::CrashPlan two;
  two.crash_at_step = {{/*at_step=*/30, /*peer_index=*/1},
                       {/*at_step=*/90, /*peer_index=*/2}};
  two.down_for = 24;
  two.checkpoint_every = 4;
  cases.push_back({"double", two});
  dist::CrashPlan random;
  random.random_crash = 0.03;
  random.max_random_crashes = 3;
  random.down_for = 16;
  random.checkpoint_every = 2;
  cases.push_back({"random", random});
  return cases;
}

// E3-crash: the same chain workload under crash-restart schedules. The
// crash-free column is the report's pinned reference — its logical
// counters must stay identical to the lossless E3 run (zero behavior
// change when no crashes are scheduled) — and every crash-scheduled
// column must reproduce those logical counters exactly while the crash
// machinery (checkpoints, WAL replay, epoch re-handshakes) fires.
void CrashTable(bench::BenchReporter& reporter) {
  const int kPeers = 4, kPerPeer = 16;
  const std::string program_text =
      bench::DistributedChainProgram(kPeers, kPerPeer);
  const std::string query_text = "path@peer0(v0, Y)";
  reporter.Param("workload", "distributed_chain");
  reporter.Param("peers", int64_t{kPeers});
  reporter.Param("per_peer", int64_t{kPerPeer});
  reporter.Param("query", query_text);
  const auto baseline = Run(program_text, query_text, /*qsq=*/true);
  reporter.Param("crashfree.messages_delivered",
                 static_cast<int64_t>(baseline.net_stats.messages_delivered));
  reporter.Param("crashfree.tuples_shipped",
                 static_cast<int64_t>(baseline.net_stats.tuples_shipped));
  reporter.Param("crashfree.crashes",
                 static_cast<int64_t>(baseline.net_stats.crashes));
  reporter.Param("crashfree.snapshot_bytes",
                 static_cast<int64_t>(baseline.net_stats.snapshot_bytes));
  std::printf(
      "\nE3-crash: crash-restart schedules (chain %dx%d, dQSQ, lossless "
      "wire)\n"
      "%-8s | %8s %8s | %7s %8s %6s %10s %8s | %s\n",
      kPeers, kPerPeer, "schedule", "msgs", "tuples", "crashes", "restarts",
      "drops", "snap-bytes", "wal-recs", "answers");
  std::printf("%-8s | %8zu %8zu | %7zu %8zu %6zu %10zu %8zu | agree\n",
              "none", baseline.net_stats.messages_delivered,
              baseline.net_stats.tuples_shipped, baseline.net_stats.crashes,
              baseline.net_stats.restarts, baseline.net_stats.crash_drops,
              baseline.net_stats.snapshot_bytes,
              baseline.net_stats.wal_records);
  for (const CrashCase& c : CrashMatrix()) {
    dist::FaultPlan plan;
    plan.crash = c.crash;
    auto run = Run(program_text, query_text, /*qsq=*/true, plan);
    const bool agree =
        run.answers == baseline.answers &&
        run.net_stats.messages_delivered ==
            baseline.net_stats.messages_delivered &&
        run.net_stats.tuples_shipped == baseline.net_stats.tuples_shipped;
    std::printf("%-8s | %8zu %8zu | %7zu %8zu %6zu %10zu %8zu | %s\n",
                c.name, run.net_stats.messages_delivered,
                run.net_stats.tuples_shipped, run.net_stats.crashes,
                run.net_stats.restarts, run.net_stats.crash_drops,
                run.net_stats.snapshot_bytes, run.net_stats.wal_records,
                agree ? "agree" : "MISMATCH");
    const std::string prefix = std::string("schedule.") + c.name + ".";
    reporter.Param(prefix + "messages_delivered",
                   static_cast<int64_t>(run.net_stats.messages_delivered));
    reporter.Param(prefix + "tuples_shipped",
                   static_cast<int64_t>(run.net_stats.tuples_shipped));
    reporter.Param(prefix + "crashes",
                   static_cast<int64_t>(run.net_stats.crashes));
    reporter.Param(prefix + "restarts",
                   static_cast<int64_t>(run.net_stats.restarts));
    reporter.Param(prefix + "crash_drops",
                   static_cast<int64_t>(run.net_stats.crash_drops));
    reporter.Param(prefix + "stale_epoch_drops",
                   static_cast<int64_t>(run.net_stats.stale_epoch_drops));
    reporter.Param(prefix + "snapshot_bytes",
                   static_cast<int64_t>(run.net_stats.snapshot_bytes));
    reporter.Param(prefix + "wal_records",
                   static_cast<int64_t>(run.net_stats.wal_records));
    reporter.Param(prefix + "retransmits",
                   static_cast<int64_t>(run.net_stats.retransmits));
    reporter.Param(prefix + "answers_agree",
                   std::string(agree ? "true" : "false"));
  }
}

}  // namespace

int main() {
  {
    bench::BenchReporter reporter("E3_distributed");
    reporter.Param("workload", "distributed_chain");
    reporter.Param("query", "path@peer0(v0, Y)");
    std::printf(
        "E3: distributed chain, query path@peer0(v0, Y) spanning all peers\n"
        "%5s %8s | %28s | %28s |\n"
        "%5s %8s | %8s %8s %8s | %8s %8s %8s |\n",
        "peers", "per-peer", "---------- dnaive ----------",
        "----------- dQSQ -----------", "", "", "msgs", "tuples", "facts",
        "msgs", "tuples", "facts");
    for (int peers : {2, 4, 6, 8}) {
      for (int per_peer : {8, 16}) {
        Row(peers, per_peer);
      }
    }
    reporter.Write();
  }
  {
    bench::BenchReporter reporter("E3_distributed_lossy");
    LossyTable(reporter);
  }
  {
    bench::BenchReporter reporter("E3_crash");
    CrashTable(reporter);
  }
  {
    // Last, so its 48x47 channel counters never pollute the E3 reports.
    bench::BenchReporter reporter("E3_step_micro");
    StepMicroResult micro = StepMicrobench();
    std::printf("\nstep-micro: %zu msgs over a dense 48-peer wire in "
                "%.2f ms (%.0f msgs/ms)\n",
                micro.messages, micro.wall_ns / 1e6,
                micro.messages / (micro.wall_ns / 1e6));
    reporter.Param("topology", "dense_all_pairs");
    reporter.Param("peers", int64_t{48});
    reporter.Param("messages", static_cast<int64_t>(micro.messages));
    reporter.Param("wall_ns", micro.wall_ns);
  }
  return 0;
}
