// E3 — distributed evaluation (§3.2 / Theorem 1): messages delivered,
// tuples shipped and facts materialized across peers for distributed
// naive evaluation vs dQSQ on a chain partitioned over k peers.
#include <cstdio>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "dist/dnaive.h"
#include "dist/dqsq.h"

using namespace dqsq;

namespace {

void Row(int peers, int per_peer) {
  const std::string program_text =
      bench::DistributedChainProgram(peers, per_peer);
  // Query bound at the first peer: demand (and data) traverses every
  // peer of the chain.
  const std::string query_text = "path@peer0(v0, Y)";

  auto run = [&](bool qsq) {
    DatalogContext ctx;
    auto program = ParseProgram(program_text, ctx);
    DQSQ_CHECK_OK(program.status());
    auto query = ParseQuery(query_text, ctx);
    DQSQ_CHECK_OK(query.status());
    dist::DistOptions opts;
    auto result = qsq ? dist::DistQsqSolve(ctx, *program, *query, opts)
                      : dist::DistNaiveSolve(ctx, *program, *query, opts);
    DQSQ_CHECK_OK(result.status());
    return *std::move(result);
  };
  auto naive = run(false);
  auto qsq = run(true);
  std::printf(
      "%5d %8d | %8zu %8zu %8zu | %8zu %8zu %8zu | %s\n", peers, per_peer,
      naive.net_stats.messages_delivered, naive.net_stats.tuples_shipped,
      naive.answer_facts, qsq.net_stats.messages_delivered,
      qsq.net_stats.tuples_shipped, qsq.answer_facts,
      naive.answers == qsq.answers ? "agree" : "MISMATCH");
}

}  // namespace

int main() {
  bench::BenchReporter reporter("E3_distributed");
  reporter.Param("workload", "distributed_chain");
  reporter.Param("query", "path@peer0(v0, Y)");
  std::printf(
      "E3: distributed chain, query path@peer0(v0, Y) spanning all peers\n"
      "%5s %8s | %28s | %28s |\n"
      "%5s %8s | %8s %8s %8s | %8s %8s %8s |\n",
      "peers", "per-peer", "---------- dnaive ----------",
      "----------- dQSQ -----------", "", "", "msgs", "tuples", "facts",
      "msgs", "tuples", "facts");
  for (int peers : {2, 4, 6, 8}) {
    for (int per_peer : {8, 16}) {
      Row(peers, per_peer);
    }
  }
  return 0;
}
