// E4 — diagnosis wall time (Proposition 1 / practicality): time per engine
// as the observation length and the number of peers grow. google-benchmark
// over random telecom-style nets with observations from real runs.
#include <benchmark/benchmark.h>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "diagnosis/diagnoser.h"

using namespace dqsq;
using diagnosis::DiagnosisEngine;

namespace {

void BM_Diagnose(benchmark::State& state) {
  const auto engine = static_cast<DiagnosisEngine>(state.range(0));
  const int peers = static_cast<int>(state.range(1));
  const int run_len = static_cast<int>(state.range(2));
  auto w = bench::MakeDiagnosisWorkload(/*seed=*/7, peers, run_len);
  size_t explanations = 0, events = 0;
  for (auto _ : state) {
    diagnosis::DiagnosisOptions opts;
    opts.engine = engine;
    auto result = Diagnose(w.net, w.observation, opts);
    DQSQ_CHECK_OK(result.status());
    explanations = result->explanations.size();
    events = result->trans_facts;
    benchmark::DoNotOptimize(result->explanations);
  }
  state.counters["explanations"] = static_cast<double>(explanations);
  state.counters["events_materialized"] = static_cast<double>(events);
  state.SetLabel(EngineName(engine) + "/peers=" + std::to_string(peers) +
                 "/run=" + std::to_string(run_len));
}

void Args(benchmark::internal::Benchmark* b) {
  for (DiagnosisEngine engine :
       {DiagnosisEngine::kReference, DiagnosisEngine::kBfhj,
        DiagnosisEngine::kCentralQsq, DiagnosisEngine::kCentralMagic,
        DiagnosisEngine::kDistQsq}) {
    for (int peers : {2, 3}) {
      for (int run_len : {2, 4, 6}) {
        b->Args({static_cast<int>(engine), peers, run_len});
      }
    }
  }
}

BENCHMARK(BM_Diagnose)->Apply(Args)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() expanded so the run also emits
// BENCH_E4_diagnosis_scaling.json.
int main(int argc, char** argv) {
  bench::BenchReporter reporter("E4_diagnosis_scaling");
  reporter.Param("workload", "random_telecom_nets");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  reporter.Write();
  return 0;
}
