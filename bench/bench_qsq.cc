// E2 — centralized query evaluation (§3.1): tuples materialized and wall
// time for naive / semi-naive / magic / QSQ on bound-argument chain
// queries, where demand-driven evaluation touches only the reachable
// suffix. google-benchmark; counters report derived facts.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "datalog/engine.h"
#include "tests/test_util.h"

using namespace dqsq;

namespace {

void BM_ChainQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Strategy strategy = static_cast<Strategy>(state.range(1));
  const std::string program_text = bench::ChainProgram(n);
  // Bind the start near the end of the chain: the demanded fragment is a
  // constant-size suffix while bottom-up derives all O(n^2) path facts.
  const std::string query_text =
      "path(v" + std::to_string(n - 5) + ", Y)";
  size_t derived = 0, answers = 0;
  for (auto _ : state) {
    DatalogContext ctx;
    auto program = ParseProgram(program_text, ctx);
    auto query = ParseQuery(query_text, ctx);
    Database db(&ctx);
    auto result =
        SolveQuery(*program, db, *query, strategy, EvalOptions{});
    DQSQ_CHECK_OK(result.status());
    derived = result->derived_facts;
    answers = result->answers.size();
    benchmark::DoNotOptimize(result->answers);
  }
  state.counters["derived_facts"] = static_cast<double>(derived);
  state.counters["answers"] = static_cast<double>(answers);
  state.SetLabel(StrategyName(strategy));
}

void ChainArgs(benchmark::internal::Benchmark* b) {
  for (int n : {50, 100, 200}) {
    for (Strategy s : {Strategy::kNaive, Strategy::kSemiNaive,
                       Strategy::kMagic, Strategy::kQsq}) {
      b->Args({n, static_cast<int>(s)});
    }
  }
}

BENCHMARK(BM_ChainQuery)->Apply(ChainArgs)->Unit(benchmark::kMicrosecond);

// Same-generation query: the classical recursive benchmark where magic/QSQ
// prune by binding propagation.
void BM_SameGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Strategy strategy = static_cast<Strategy>(state.range(1));
  std::string program;
  // A balanced binary "up" tree of depth ~log2(n) with flat/down edges.
  for (int i = 1; i < n; ++i) {
    program += "up(n" + std::to_string(i) + ", n" + std::to_string(i / 2) +
               ").\n";
    program += "down(n" + std::to_string(i / 2) + ", m" + std::to_string(i) +
               ").\n";
  }
  program += "flat(n0, n0).\n";
  program += "sg(X, Y) :- flat(X, Y).\n";
  program += "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n";
  const std::string query_text = "sg(n" + std::to_string(n - 1) + ", Y)";
  size_t derived = 0;
  for (auto _ : state) {
    DatalogContext ctx;
    auto prog = ParseProgram(program, ctx);
    auto query = ParseQuery(query_text, ctx);
    Database db(&ctx);
    auto result = SolveQuery(*prog, db, *query, strategy, EvalOptions{});
    DQSQ_CHECK_OK(result.status());
    derived = result->derived_facts;
    benchmark::DoNotOptimize(result->answers);
  }
  state.counters["derived_facts"] = static_cast<double>(derived);
  state.SetLabel(StrategyName(strategy));
}

void SgArgs(benchmark::internal::Benchmark* b) {
  for (int n : {64, 256}) {
    for (Strategy s :
         {Strategy::kSemiNaive, Strategy::kMagic, Strategy::kQsq}) {
      b->Args({n, static_cast<int>(s)});
    }
  }
}

BENCHMARK(BM_SameGeneration)->Apply(SgArgs)->Unit(benchmark::kMicrosecond);

// Deterministic timing block for the committed baseline: a fixed workload
// (chain n=200, start bound near the end) run a fixed number of times per
// strategy. Iteration counts never adapt to the clock, so every registry
// counter this block bumps is byte-stable run to run; only the `*_ns`
// params vary, and tools/check_bench_baseline.py treats those as timing
// fields (bounded by --max-timing-ratio rather than compared exactly).
void ReportDeterministicTimings(bench::BenchReporter& reporter) {
  constexpr int kN = 200;
  constexpr int kIters = 3;
  const std::string program_text = bench::ChainProgram(kN);
  const std::string query_text = "path(v" + std::to_string(kN - 5) + ", Y)";
  for (Strategy s : {Strategy::kNaive, Strategy::kSemiNaive, Strategy::kMagic,
                     Strategy::kQsq}) {
    size_t derived = 0, answers = 0;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      DatalogContext ctx;
      auto program = ParseProgram(program_text, ctx);
      auto query = ParseQuery(query_text, ctx);
      Database db(&ctx);
      auto result = SolveQuery(*program, db, *query, s, EvalOptions{});
      DQSQ_CHECK_OK(result.status());
      derived = result->derived_facts;
      answers = result->answers.size();
    }
    int64_t elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    const std::string prefix = std::string("chain200_") + StrategyName(s);
    reporter.Param(prefix + "_ns", elapsed);
    reporter.Param(prefix + "_derived", static_cast<int64_t>(derived));
    reporter.Param(prefix + "_answers", static_cast<int64_t>(answers));
  }
}

}  // namespace

// BENCHMARK_MAIN() expanded so the run also emits BENCH_E2_qsq.json.
int main(int argc, char** argv) {
  bench::BenchReporter reporter("E2_qsq");
  reporter.Param("workloads", "chain_query,same_generation");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ReportDeterministicTimings(reporter);
  reporter.Write();
  return 0;
}
