#include "bench/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <map>

namespace dqsq::bench {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Quoted(const std::string& s) { return "\"" + EscapeJson(s) + "\""; }

}  // namespace

BenchReporter::BenchReporter(std::string experiment)
    : experiment_(std::move(experiment)),
      start_(MetricsRegistry::Global().Snapshot()),
      start_time_(std::chrono::steady_clock::now()) {}

BenchReporter::~BenchReporter() { Write(); }

void BenchReporter::Param(const std::string& key, const std::string& value) {
  params_.emplace_back(key, Quoted(value));
}

void BenchReporter::Param(const std::string& key, int64_t value) {
  params_.emplace_back(key, std::to_string(value));
}

void BenchReporter::Param(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  params_.emplace_back(key, buf);
}

std::string BenchReporter::Write() {
  if (written_) return path_;
  written_ = true;

  const uint64_t wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
  MetricsSnapshot diff = MetricsRegistry::Global().Snapshot().Diff(start_);

  // Per-peer message counts: dist.net.channel_messages aggregated by the
  // receiving peer ("to" label).
  std::map<std::string, uint64_t> per_peer;
  for (const MetricSample& s : diff.samples) {
    if (s.name != "dist.net.channel_messages") continue;
    const std::string* to = s.labels.Find("to");
    if (to != nullptr) per_peer[*to] += s.value;
  }

  std::string json = "{\n";
  json += "  \"schema_version\": 1,\n";
  json += "  \"experiment\": " + Quoted(experiment_) + ",\n";
  json += "  \"params\": {";
  for (size_t i = 0; i < params_.size(); ++i) {
    if (i > 0) json += ", ";
    json += Quoted(params_[i].first) + ": " + params_[i].second;
  }
  json += "},\n";
  json += "  \"wall_time_ns\": " + std::to_string(wall_ns) + ",\n";
  json += "  \"summary\": {\n";
  json += "    \"facts_derived\": " +
          std::to_string(diff.Total("datalog.eval.facts_derived")) + ",\n";
  json += "    \"unfolding_events\": " +
          std::to_string(diff.Total("petri.unfold.events")) + ",\n";
  json += "    \"unfolding_conditions\": " +
          std::to_string(diff.Total("petri.unfold.conditions")) + ",\n";
  json += "    \"messages_delivered\": " +
          std::to_string(diff.Total("dist.net.messages_delivered")) + ",\n";
  json += "    \"tuples_shipped\": " +
          std::to_string(diff.Total("dist.net.tuples_shipped")) + ",\n";
  json += "    \"per_peer_messages\": {";
  bool first = true;
  for (const auto& [peer, count] : per_peer) {
    if (!first) json += ", ";
    first = false;
    json += Quoted(peer) + ": " + std::to_string(count);
  }
  json += "}\n";
  json += "  },\n";
  json += "  \"metrics\": " + diff.ToJson() + "\n";
  json += "}\n";

  const char* dir = std::getenv("DQSQ_BENCH_OUT_DIR");
  path_ = (dir != nullptr && dir[0] != '\0') ? std::string(dir) + "/" : "";
  path_ += "BENCH_" + experiment_ + ".json";
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path_.c_str());
    return path_;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench_report: wrote %s\n", path_.c_str());
  return path_;
}

}  // namespace dqsq::bench
