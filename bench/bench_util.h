// Shared workload builders for the experiment benchmarks (see DESIGN.md §3
// for the experiment index E1..E7).
#ifndef DQSQ_BENCH_BENCH_UTIL_H_
#define DQSQ_BENCH_BENCH_UTIL_H_

#include <string>

#include "common/rng.h"
#include "petri/alarm.h"
#include "petri/random_net.h"

namespace dqsq::bench {

/// edge/path chain program: N edges, two path rules (the Figure 3 / E2
/// workload shape).
inline std::string ChainProgram(int n) {
  std::string program;
  for (int i = 0; i < n; ++i) {
    program += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
               ").\n";
  }
  program += "path(X, Y) :- edge(X, Y).\n";
  program += "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  return program;
}

/// A distributed chain: `peers` peers each owning `per_peer` edges, with
/// per-peer path rules and hop rules into the next peer (the E3 workload).
inline std::string DistributedChainProgram(int peers, int per_peer) {
  std::string program;
  for (int p = 0; p < peers; ++p) {
    for (int i = 0; i < per_peer; ++i) {
      int from = p * per_peer + i;
      program += "edge@peer" + std::to_string(p) + "(v" +
                 std::to_string(from) + ", v" + std::to_string(from + 1) +
                 ").\n";
    }
  }
  for (int p = 0; p < peers; ++p) {
    std::string self = "peer" + std::to_string(p);
    program += "path@" + self + "(X, Y) :- edge@" + self + "(X, Y).\n";
    program += "path@" + self + "(X, Y) :- edge@" + self + "(X, Z), path@" +
               self + "(Z, Y).\n";
    if (p + 1 < peers) {
      std::string next = "peer" + std::to_string(p + 1);
      program += "path@" + self + "(X, Y) :- edge@" + self +
                 "(X, Z), path@" + next + "(Z, Y).\n";
    }
  }
  return program;
}

struct DiagnosisWorkload {
  petri::PetriNet net;
  petri::AlarmSequence observation;
};

/// A random telecom-style net plus an observation generated from a real
/// run of `run_len` firings (so at least one explanation exists).
inline DiagnosisWorkload MakeDiagnosisWorkload(uint64_t seed, int peers,
                                               int run_len,
                                               double hidden = 0.0) {
  Rng rng(seed);
  petri::RandomNetOptions ropts;
  ropts.num_peers = peers;
  ropts.places_per_peer = 3;
  ropts.transitions_per_peer = 3;
  ropts.sync_probability = 0.35;
  ropts.num_alarm_symbols = 2;
  ropts.hidden_probability = hidden;
  DiagnosisWorkload w{petri::MakeRandomNet(ropts, rng), {}};
  auto run = petri::GenerateRun(w.net, run_len, rng);
  DQSQ_CHECK_OK(run.status());
  w.observation = run->observation;
  return w;
}

}  // namespace dqsq::bench

#endif  // DQSQ_BENCH_BENCH_UTIL_H_
