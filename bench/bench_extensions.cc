// E6 — §4.4 extensions at scale: pattern observations (the "much larger
// class of system analysis problems") and hidden-alarm diagnosis, measured
// on the Datalog engines that are the only ones able to answer them
// generically.
#include <chrono>
#include <cstdio>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "diagnosis/diagnoser.h"
#include "diagnosis/extensions.h"
#include "petri/examples.h"

using namespace dqsq;
using diagnosis::DiagnosisEngine;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void PatternRow(const char* name, const petri::PetriNet& net,
                std::map<std::string, diagnosis::AlarmAutomaton> automata) {
  diagnosis::DiagnosisOptions opts;
  opts.engine = DiagnosisEngine::kCentralQsq;
  auto start = std::chrono::steady_clock::now();
  auto result = DiagnosePattern(net, automata, opts);
  double ms = MillisSince(start);
  if (!result.ok()) {
    std::printf("%-28s : %s\n", name, result.status().ToString().c_str());
    return;
  }
  std::printf("%-28s : %5zu configs, %6zu events, %8zu facts, %8.2f ms\n",
              name, result->explanations.size(), result->trans_facts,
              result->total_facts, ms);
}

void HiddenRow(double hidden_ratio, uint32_t budget) {
  auto w = bench::MakeDiagnosisWorkload(31, /*peers=*/2, /*run_len=*/5,
                                        hidden_ratio);
  diagnosis::DiagnosisOptions opts;
  opts.engine = DiagnosisEngine::kCentralQsq;
  opts.max_hidden = budget;
  auto start = std::chrono::steady_clock::now();
  auto result = Diagnose(w.net, w.observation, opts);
  double ms = MillisSince(start);
  DQSQ_CHECK_OK(result.status());
  std::printf(
      "hidden_ratio=%.1f budget=%u   : %5zu configs, %6zu events, %8zu "
      "facts, %8.2f ms\n",
      hidden_ratio, budget, result->explanations.size(),
      result->trans_facts, result->total_facts, ms);
}

}  // namespace

int main() {
  bench::BenchReporter reporter("E6_extensions");
  reporter.Param("engine", "central_qsq");
  std::printf("E6a: alarm-pattern diagnosis (central QSQ)\n");
  petri::PetriNet cycle = petri::MakeCycleNet();
  for (uint32_t count = 2; count <= 6; ++count) {
    std::map<std::string, diagnosis::AlarmAutomaton> automata;
    automata["p"] =
        diagnosis::AnyOrderAutomaton({"a", "b", "c"}, count);
    PatternRow(("any-order, count=" + std::to_string(count)).c_str(), cycle,
               automata);
  }
  {
    std::map<std::string, diagnosis::AlarmAutomaton> automata;
    automata["p"] = diagnosis::StarPatternAutomaton("a", "b", "c");
    PatternRow("star a.b*.c", cycle, automata);
  }
  for (uint32_t len = 3; len <= 6; ++len) {
    std::map<std::string, diagnosis::AlarmAutomaton> automata;
    automata["p"] = diagnosis::ForbiddenSubsequenceAutomaton(
        {"a", "b", "c"}, {"b", "c"}, len);
    PatternRow(("forbid 'bc', len<=" + std::to_string(len)).c_str(), cycle,
               automata);
  }

  std::printf("\nE6b: hidden-transition diagnosis overhead\n");
  for (double ratio : {0.0, 0.2, 0.4}) {
    for (uint32_t budget : {0u, 2u, 4u}) {
      HiddenRow(ratio, budget);
    }
  }
  return 0;
}
