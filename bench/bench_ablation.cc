// E7 — ablations of the design choices the paper remarks on:
//  (a) relevant-variable projection in supplementary relations (the QSQ
//      schema minimization) vs keeping every bound variable;
//  (b) QSQ's sup-chaining vs magic-sets' prefix re-joining;
//  (c) distribution-aware sup placement (Remark 1) measured as shipped
//      tuples under dQSQ vs a naive placement baseline (distributed naive).
#include <cstdio>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "datalog/engine.h"
#include "dist/dnaive.h"
#include "dist/dqsq.h"

using namespace dqsq;

namespace {

void SupProjectionRow(int n) {
  // e1 carries a wide payload column P that later atoms never use: the
  // projected sup schema collapses the n payload rows per (X, Q) pair to
  // one, the unprojected schema keeps them all.
  std::string program_text;
  for (int i = 0; i < n; ++i) {
    program_text += "e1(x, p" + std::to_string(i) + ", q).\n";
  }
  program_text += "e2(q, r).\n";
  program_text += "e3(r, y).\n";
  program_text += "triple(X, Y) :- e1(X, P, Q), e2(Q, R), e3(R, Y).\n";
  const std::string query_text = "triple(x, Y)";
  auto run = [&](Strategy s) {
    DatalogContext ctx;
    auto program = ParseProgram(program_text, ctx);
    auto query = ParseQuery(query_text, ctx);
    Database db(&ctx);
    auto result = SolveQuery(*program, db, *query, s, EvalOptions{});
    DQSQ_CHECK_OK(result.status());
    return *std::move(result);
  };
  auto slim = run(Strategy::kQsq);
  auto wide = run(Strategy::kQsqAllVars);
  auto magic = run(Strategy::kMagic);
  std::printf(
      "payload n=%4d | qsq: %7zu aux | qsq_allvars: %7zu aux | magic: %7zu "
      "aux | answers %s\n",
      n, slim.aux_facts, wide.aux_facts, magic.aux_facts,
      (slim.answers == wide.answers && slim.answers == magic.answers)
          ? "agree"
          : "MISMATCH");
}

void PlacementRow(int peers, int per_peer) {
  const std::string program_text =
      bench::DistributedChainProgram(peers, per_peer);
  const std::string query_text =
      "path@peer0(v0, Y)";  // demand flows through every peer
  auto run = [&](bool qsq) {
    DatalogContext ctx;
    auto program = ParseProgram(program_text, ctx);
    auto query = ParseQuery(query_text, ctx);
    dist::DistOptions opts;
    auto result = qsq ? dist::DistQsqSolve(ctx, *program, *query, opts)
                      : dist::DistNaiveSolve(ctx, *program, *query, opts);
    DQSQ_CHECK_OK(result.status());
    return *std::move(result);
  };
  auto naive = run(false);
  auto qsq = run(true);
  std::printf(
      "peers=%d per_peer=%2d | dnaive ships %6zu tuples | dQSQ (sup with "
      "its consumer, Fig.5) ships %6zu tuples\n",
      peers, per_peer, naive.net_stats.tuples_shipped,
      qsq.net_stats.tuples_shipped);
}

}  // namespace

int main() {
  bench::BenchReporter reporter("E7_ablation");
  reporter.Param("ablations", "sup_projection,placement");
  std::printf(
      "E7a: supplementary-relation schema ablation (aux facts = sup/in "
      "bookkeeping;\n     qsq projects to the variables needed later, "
      "qsq_allvars keeps every binding)\n");
  for (int n : {50, 100, 200}) SupProjectionRow(n);

  std::printf("\nE7c: placement — shipped tuples, full-chain demand\n");
  for (int peers : {2, 4, 6}) PlacementRow(peers, 10);
  return 0;
}
