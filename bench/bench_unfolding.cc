// E5 — substrate throughput: the possible-extensions unfolder (events/s)
// and the alarm-product construction that everything else sits on.
#include <benchmark/benchmark.h>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "petri/bfhj.h"
#include "petri/examples.h"
#include "petri/unfolding.h"

using namespace dqsq;

namespace {

void BM_UnfoldRandomNet(benchmark::State& state) {
  const int max_events = static_cast<int>(state.range(0));
  Rng rng(11);
  petri::RandomNetOptions ropts;
  ropts.num_peers = 3;
  ropts.places_per_peer = 4;
  ropts.transitions_per_peer = 5;
  ropts.sync_probability = 0.35;
  petri::PetriNet net = petri::MakeRandomNet(ropts, rng);
  size_t events = 0;
  for (auto _ : state) {
    petri::UnfoldOptions opts;
    opts.max_events = static_cast<size_t>(max_events);
    auto u = petri::Unfolding::Build(net, opts);
    DQSQ_CHECK_OK(u.status());
    events = u->num_events();
    benchmark::DoNotOptimize(u->num_events());
  }
  state.counters["events"] = static_cast<double>(events);
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_UnfoldRandomNet)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_CompletePrefixWithCutoffs(benchmark::State& state) {
  Rng rng(13);
  petri::RandomNetOptions ropts;
  ropts.num_peers = static_cast<uint32_t>(state.range(0));
  ropts.places_per_peer = 3;
  ropts.transitions_per_peer = 3;
  ropts.sync_probability = 0.3;
  petri::PetriNet net = petri::MakeRandomNet(ropts, rng);
  size_t events = 0;
  for (auto _ : state) {
    petri::UnfoldOptions opts;
    opts.max_events = 50000;
    opts.use_cutoffs = true;
    auto u = petri::Unfolding::Build(net, opts);
    DQSQ_CHECK_OK(u.status());
    events = u->num_events();
    benchmark::DoNotOptimize(u->complete());
  }
  state.counters["prefix_events"] = static_cast<double>(events);
}

BENCHMARK(BM_CompletePrefixWithCutoffs)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_AlarmProductBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  petri::PetriNet net = petri::MakePaperNet(/*with_loop=*/true);
  Rng rng(17);
  auto run = petri::GenerateRun(net, n, rng);
  DQSQ_CHECK_OK(run.status());
  for (auto _ : state) {
    auto product = petri::BuildAlarmProduct(net, run->observation);
    DQSQ_CHECK_OK(product.status());
    benchmark::DoNotOptimize(product->product.num_transitions());
  }
  state.counters["alarms"] = static_cast<double>(run->observation.size());
}

BENCHMARK(BM_AlarmProductBuild)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

// BENCHMARK_MAIN() expanded so the run also emits BENCH_E5_unfolding.json.
int main(int argc, char** argv) {
  bench::BenchReporter reporter("E5_unfolding");
  reporter.Param("workloads", "unfold_random,complete_prefix,alarm_product");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  reporter.Write();
  return 0;
}
