// E6 — distributed diagnosability analysis (ROADMAP item 4). A 50-seed
// sweep of random fault-labelled nets; every seed's twin-plant verifier
// program is solved by all five engines:
//
//   oracle     brute-force twin-plant + SCC (petri/reference_verifier.h)
//   seminaive  centralized bottom-up over the verifier Datalog program
//   qsq        centralized QSQ of the same program
//   dnaive     distributed naive over the simulated cluster
//   dqsq       distributed QSQ over the simulated cluster
//
// The verdicts must agree on EVERY seed (checked here, not just
// reported), the sweep must contain at least one undiagnosable instance,
// and every undiagnosable verdict must carry a witness lasso that
// replay-checks through the token game. All counts in
// BENCH_E6_diagnosability.json are deterministic (seeded generator,
// seeded sim network); wall clocks only appear in *_ns params, which the
// baseline guard excludes from exact comparison and bounds with
// --max-timing-ratio.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/rng.h"
#include "diagnosis/diagnosability.h"
#include "petri/random_net.h"

using namespace dqsq;

namespace {

constexpr uint64_t kNumSeeds = 50;

/// Same generator ramp as tests/diagnosis/diagnosability_property_test.cc:
/// a third of the seeds draw no faults, the rest sweep fault and hidden
/// densities so the sweep crosses the diagnosable/undiagnosable boundary.
petri::PetriNet NetForSeed(uint64_t seed) {
  petri::RandomNetOptions options;
  options.num_peers = 2 + static_cast<uint32_t>(seed % 2);
  options.places_per_peer = 3;
  options.transitions_per_peer = 3 + static_cast<uint32_t>(seed % 3);
  options.sync_probability = 0.3;
  options.num_alarm_symbols = 1 + static_cast<uint32_t>(seed % 3);
  options.hidden_probability = (seed % 3 == 0) ? 0.2 : 0.4;
  options.fault_fraction = (seed % 3 == 0)   ? 0.0
                           : (seed % 3 == 1) ? 0.25
                                             : 0.5;
  Rng rng(seed);
  return petri::MakeRandomNet(options, rng);
}

struct EngineTotals {
  size_t undiagnosable = 0;
  size_t witnesses_replayed = 0;
  size_t total_facts = 0;
  size_t messages = 0;
  size_t tuples_shipped = 0;
  int64_t wall_ns = 0;
};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  bench::BenchReporter reporter("E6_diagnosability");
  const diagnosis::DiagnosabilityEngine kEngines[] = {
      diagnosis::DiagnosabilityEngine::kReference,
      diagnosis::DiagnosabilityEngine::kCentralSemiNaive,
      diagnosis::DiagnosabilityEngine::kCentralQsq,
      diagnosis::DiagnosabilityEngine::kDistNaive,
      diagnosis::DiagnosabilityEngine::kDistQsq,
  };

  EngineTotals totals[5];
  size_t verifier_states = 0;
  size_t verifier_edges = 0;

  std::printf("E6: diagnosability verdicts over %llu seeded nets\n",
              static_cast<unsigned long long>(kNumSeeds));
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    petri::PetriNet net = NetForSeed(seed);
    bool verdicts[5];
    for (int i = 0; i < 5; ++i) {
      diagnosis::DiagnosabilityOptions options;
      options.engine = kEngines[i];
      options.seed = seed;
      const int64_t start = NowNs();
      auto result = diagnosis::CheckDiagnosability(net, options);
      DQSQ_CHECK_OK(result.status());
      totals[i].wall_ns += NowNs() - start;
      verdicts[i] = result->diagnosable;
      if (!result->diagnosable) {
        ++totals[i].undiagnosable;
        // CheckDiagnosability replay-checks before returning a witness;
        // its presence certifies the counterexample.
        DQSQ_CHECK(result->witness.has_value()) << "seed " << seed;
        ++totals[i].witnesses_replayed;
      }
      totals[i].total_facts += result->total_facts;
      totals[i].messages += result->messages;
      totals[i].tuples_shipped += result->tuples_shipped;
      if (i == 0) {
        verifier_states += result->verifier_states;
        verifier_edges += result->verifier_edges;
      }
    }
    for (int i = 1; i < 5; ++i) {
      DQSQ_CHECK(verdicts[i] == verdicts[0])
          << "verdict mismatch at seed " << seed << ": "
          << DiagnosabilityEngineName(kEngines[i]) << " disagrees with the "
          << "oracle";
    }
  }
  DQSQ_CHECK(totals[0].undiagnosable >= 1)
      << "sweep produced no undiagnosable instance";
  DQSQ_CHECK(totals[0].undiagnosable < kNumSeeds)
      << "sweep produced no diagnosable instance";

  std::printf("%-10s | %14s %14s | %10s %10s %10s\n", "engine",
              "undiagnosable", "witnesses", "facts", "messages", "wall-ms");
  reporter.Param("seeds", static_cast<int64_t>(kNumSeeds));
  reporter.Param("diagnosable",
                 static_cast<int64_t>(kNumSeeds - totals[0].undiagnosable));
  reporter.Param("undiagnosable",
                 static_cast<int64_t>(totals[0].undiagnosable));
  reporter.Param("verifier_states_total",
                 static_cast<int64_t>(verifier_states));
  reporter.Param("verifier_edges_total", static_cast<int64_t>(verifier_edges));
  for (int i = 0; i < 5; ++i) {
    const std::string name = DiagnosabilityEngineName(kEngines[i]);
    const EngineTotals& t = totals[i];
    std::printf("%-10s | %14zu %14zu | %10zu %10zu %10.1f\n", name.c_str(),
                t.undiagnosable, t.witnesses_replayed, t.total_facts,
                t.messages, t.wall_ns / 1e6);
    reporter.Param(name + ".undiagnosable",
                   static_cast<int64_t>(t.undiagnosable));
    reporter.Param(name + ".witnesses_replayed",
                   static_cast<int64_t>(t.witnesses_replayed));
    reporter.Param(name + ".total_facts", static_cast<int64_t>(t.total_facts));
    if (t.messages > 0) {
      reporter.Param(name + ".messages", static_cast<int64_t>(t.messages));
      reporter.Param(name + ".tuples_shipped",
                     static_cast<int64_t>(t.tuples_shipped));
    }
    reporter.Param(name + "_ns", t.wall_ns);
  }
  reporter.Param("verdicts_agree", std::string("true"));
  return 0;
}
