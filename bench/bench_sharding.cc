// E5 — elastic intra-peer sharding (ROADMAP item 3). Two tables:
//
//  * Partition scaling: ShardRouter::PartitionRows over a large EDB at
//    K ∈ {1,2,4,8}. Routing is a pure content-fingerprint hash, so the
//    per-shard shares are deterministic; the modeled speedup is the
//    makespan ratio rows/max_share (K perfectly balanced shards would
//    give exactly K). The acceptance bar — ≥3x modeled tuple throughput
//    at K=8 vs K=1 — is checked here, not just reported.
//  * End-to-end equivalence: the distributed chain workload on both
//    engines at K ∈ {1,2,4,8}, pinning message/tuple counters and
//    answer agreement with the unsharded run, plus a K=2 run with a
//    forced mid-evaluation shard migration.
//
// Every count in BENCH_E5_sharding.json is deterministic (seeded sim,
// content-hash routing); wall clocks only ever appear in *_ns params,
// which the baseline guard excludes from exact comparison and bounds
// with --max-timing-ratio.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "dist/dnaive.h"
#include "dist/dqsq.h"
#include "dist/shard.h"

using namespace dqsq;

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void PartitionTable(bench::BenchReporter& reporter) {
  const size_t kRows = 200'000;
  const int kPasses = 5;
  DatalogContext ctx;
  std::set<SymbolId> logical{ctx.InternPeer("p")};
  Relation rel(/*arity=*/2);
  for (size_t x = 0; x < kRows; ++x) {
    rel.Insert(Tuple{
        ctx.arena().MakeConstant(ctx.symbols().Intern("k" + std::to_string(x))),
        ctx.arena().MakeConstant(
            ctx.symbols().Intern("v" + std::to_string(x % 997)))});
  }
  reporter.Param("partition.rows", static_cast<int64_t>(rel.size()));
  reporter.Param("partition.passes", int64_t{kPasses});
  std::printf(
      "E5: PartitionRows over %zu rows (content-fingerprint routing)\n"
      "%3s | %9s %9s | %8s | %12s\n",
      rel.size(), "K", "max-share", "min-share", "speedup", "rows/ms");
  double speedup_at_1 = 0.0, speedup_at_8 = 0.0;
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    dist::ShardRouter router(ctx, logical, shards);
    std::vector<std::vector<uint32_t>> parts;
    int64_t wall_ns = 0;
    for (int pass = 0; pass < kPasses; ++pass) {
      parts.assign(0, {});
      const int64_t start = NowNs();
      DQSQ_CHECK_EQ(router.PartitionRows(rel, parts), rel.size());
      wall_ns += NowNs() - start;
    }
    size_t max_share = 0, min_share = rel.size();
    for (const std::vector<uint32_t>& part : parts) {
      max_share = std::max(max_share, part.size());
      min_share = std::min(min_share, part.size());
    }
    // Modeled makespan: every shard evaluates its share in parallel, so
    // the elapsed "time" of one round is the largest share.
    const double speedup =
        static_cast<double>(rel.size()) / static_cast<double>(max_share);
    if (shards == 1) speedup_at_1 = speedup;
    if (shards == 8) speedup_at_8 = speedup;
    const double rows_per_ms =
        static_cast<double>(rel.size()) * kPasses / (wall_ns / 1e6);
    std::printf("%3zu | %9zu %9zu | %7.2fx | %12.0f\n", shards, max_share,
                min_share, speedup, rows_per_ms);
    const std::string prefix = "partition.k" + std::to_string(shards) + ".";
    reporter.Param(prefix + "max_share", static_cast<int64_t>(max_share));
    reporter.Param(prefix + "min_share", static_cast<int64_t>(min_share));
    reporter.Param(prefix + "modeled_speedup", speedup);
    reporter.Param(prefix + "wall_ns", wall_ns);
  }
  const double ratio = speedup_at_8 / speedup_at_1;
  reporter.Param("throughput_ratio_8v1", ratio);
  std::printf("modeled throughput at K=8 vs K=1: %.2fx (acceptance: >= 3x)\n",
              ratio);
  DQSQ_CHECK(ratio >= 3.0) << "sharding speedup regressed below the bar";
}

struct EndToEnd {
  std::vector<std::string> answers;
  dist::NetworkStats stats;
  size_t num_peers = 0;
};

EndToEnd Solve(bool qsq, const std::string& program_text,
               const std::string& query_text, const dist::DistOptions& opts) {
  DatalogContext ctx;
  auto program = ParseProgram(program_text, ctx);
  DQSQ_CHECK_OK(program.status());
  auto query = ParseQuery(query_text, ctx);
  DQSQ_CHECK_OK(query.status());
  auto result = qsq ? dist::DistQsqSolve(ctx, *program, *query, opts)
                    : dist::DistNaiveSolve(ctx, *program, *query, opts);
  DQSQ_CHECK_OK(result.status());
  EndToEnd out;
  for (const Tuple& t : result->answers) {
    std::string row;
    for (TermId id : t) row += ctx.arena().ToString(id, ctx.symbols()) + ",";
    out.answers.push_back(std::move(row));
  }
  std::sort(out.answers.begin(), out.answers.end());
  out.stats = result->net_stats;
  out.num_peers = result->num_peers;
  return out;
}

void EndToEndTable(bench::BenchReporter& reporter) {
  const int kPeers = 3, kPerPeer = 12;
  const std::string program_text =
      bench::DistributedChainProgram(kPeers, kPerPeer);
  const std::string query_text = "path@peer0(v0, Y)";
  reporter.Param("workload", "distributed_chain");
  reporter.Param("peers", int64_t{kPeers});
  reporter.Param("per_peer", int64_t{kPerPeer});
  reporter.Param("query", query_text);
  std::printf(
      "\nE5-e2e: chain %dx%d under sharding (lossless wire, seed 1)\n"
      "%-6s %3s | %6s %8s %8s | %s\n",
      kPeers, kPerPeer, "engine", "K", "peers", "msgs", "tuples", "answers");
  for (bool qsq : {false, true}) {
    const char* engine = qsq ? "dqsq" : "dnaive";
    EndToEnd base = Solve(qsq, program_text, query_text, dist::DistOptions{});
    for (size_t shards : {1u, 2u, 4u, 8u}) {
      dist::DistOptions opts;
      opts.num_shards = shards;
      EndToEnd run = Solve(qsq, program_text, query_text, opts);
      const bool agree = run.answers == base.answers;
      std::printf("%-6s %3zu | %6zu %8zu %8zu | %s\n", engine, shards,
                  run.num_peers, run.stats.messages_delivered,
                  run.stats.tuples_shipped, agree ? "agree" : "MISMATCH");
      const std::string prefix =
          std::string(engine) + ".k" + std::to_string(shards) + ".";
      reporter.Param(prefix + "num_peers", static_cast<int64_t>(run.num_peers));
      reporter.Param(prefix + "messages_delivered",
                     static_cast<int64_t>(run.stats.messages_delivered));
      reporter.Param(prefix + "tuples_shipped",
                     static_cast<int64_t>(run.stats.tuples_shipped));
      reporter.Param(prefix + "answers_agree",
                     std::string(agree ? "true" : "false"));
      DQSQ_CHECK(agree) << engine << " K=" << shards;
    }
    // A K=2 run with one worker shard migrated mid-evaluation: the answers
    // and the migration counter pin that live hand-off stays lossless.
    dist::DistOptions opts;
    opts.num_shards = 2;
    opts.faults.crash.migrate_at_step = {{/*at_step=*/25, /*peer_index=*/1}};
    opts.faults.crash.checkpoint_every = 2;
    EndToEnd migrated = Solve(qsq, program_text, query_text, opts);
    const bool agree = migrated.answers == base.answers;
    std::printf("%-6s %3s | %6zu %8zu %8zu | %s (1 live migration)\n", engine,
                "2*", migrated.num_peers, migrated.stats.messages_delivered,
                migrated.stats.tuples_shipped, agree ? "agree" : "MISMATCH");
    const std::string prefix = std::string(engine) + ".k2_migrated.";
    reporter.Param(prefix + "messages_delivered",
                   static_cast<int64_t>(migrated.stats.messages_delivered));
    reporter.Param(prefix + "tuples_shipped",
                   static_cast<int64_t>(migrated.stats.tuples_shipped));
    reporter.Param(prefix + "migrations",
                   static_cast<int64_t>(migrated.stats.migrations));
    reporter.Param(prefix + "answers_agree",
                   std::string(agree ? "true" : "false"));
    DQSQ_CHECK(agree) << engine << " migrated";
    DQSQ_CHECK_EQ(migrated.stats.migrations, 1u);
  }
}

}  // namespace

int main() {
  bench::BenchReporter reporter("E5_sharding");
  PartitionTable(reporter);
  EndToEndTable(reporter);
  return 0;
}
