// Shared result reporter for the experiment binaries (E1..E7): every bench
// constructs one BenchReporter up front and gets a BENCH_<experiment>.json
// file on exit, containing the run parameters, the wall time, a fixed
// summary block (facts derived, unfolding events/conditions, message and
// tuple counts, per-peer message counts) and the full metrics-snapshot diff
// accumulated while the reporter was alive. The schema is documented in
// docs/METRICS.md; EXPERIMENTS.md names the counters each experiment reads.
#ifndef DQSQ_BENCH_BENCH_REPORT_H_
#define DQSQ_BENCH_BENCH_REPORT_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace dqsq::bench {

class BenchReporter {
 public:
  /// Snapshots the metrics registry and starts the wall clock.
  /// `experiment` names the output file: BENCH_<experiment>.json, written
  /// to $DQSQ_BENCH_OUT_DIR (cwd when unset).
  explicit BenchReporter(std::string experiment);

  /// Writes the report if Write() was not called explicitly.
  ~BenchReporter();

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// Records a run parameter echoed into the report's "params" object.
  void Param(const std::string& key, const std::string& value);
  void Param(const std::string& key, int64_t value);
  void Param(const std::string& key, double value);

  /// Stops the clock, diffs the registry against the start snapshot and
  /// writes BENCH_<experiment>.json. Idempotent; returns the path written.
  std::string Write();

 private:
  std::string experiment_;
  // Params with values pre-rendered as JSON tokens, in insertion order.
  std::vector<std::pair<std::string, std::string>> params_;
  MetricsSnapshot start_;
  std::chrono::steady_clock::time_point start_time_;
  bool written_ = false;
  std::string path_;
};

}  // namespace dqsq::bench

#endif  // DQSQ_BENCH_BENCH_REPORT_H_
