#include "datalog/adornment.h"

#include <deque>
#include <map>
#include <set>

#include "common/logging.h"

namespace dqsq {

std::string AdornmentSuffix(const Adornment& adornment) {
  std::string out;
  out.reserve(adornment.size());
  for (bool b : adornment) out += b ? 'b' : 'f';
  return out;
}

Adornment AdornAtom(const Atom& atom, const std::vector<bool>& bound_vars) {
  Adornment out;
  out.reserve(atom.args.size());
  for (const Pattern& p : atom.args) {
    std::vector<VarId> vars;
    p.CollectVars(&vars);
    bool bound = true;
    for (VarId v : vars) {
      if (v >= bound_vars.size() || !bound_vars[v]) {
        bound = false;
        break;
      }
    }
    out.push_back(bound);
  }
  return out;
}

Adornment QueryAdornment(const Atom& query) {
  Adornment out;
  out.reserve(query.args.size());
  for (const Pattern& p : query.args) out.push_back(p.IsGround());
  return out;
}

StatusOr<AdornedProgram> AdornProgram(const Program& program,
                                      const RelId& query_rel,
                                      const Adornment& query_adornment) {
  // Group rules by head relation.
  std::map<std::pair<uint32_t, uint32_t>, std::vector<size_t>> rules_by_head;
  for (size_t i = 0; i < program.rules.size(); ++i) {
    const RelId& rel = program.rules[i].head.rel;
    rules_by_head[{rel.pred, rel.peer}].push_back(i);
  }
  auto is_idb = [&](const RelId& rel) {
    return rules_by_head.contains({rel.pred, rel.peer});
  };

  AdornedProgram out;
  std::set<std::pair<std::pair<uint32_t, uint32_t>, Adornment>> visited;
  std::deque<std::pair<RelId, Adornment>> worklist;

  auto enqueue = [&](const RelId& rel, const Adornment& adornment) {
    auto key = std::make_pair(std::make_pair(rel.pred, rel.peer), adornment);
    if (visited.insert(key).second) {
      worklist.emplace_back(rel, adornment);
      out.call_patterns.emplace_back(rel, adornment);
    }
  };

  if (!is_idb(query_rel)) {
    return InvalidArgumentError(
        "query relation has no defining rules (extensional queries need no "
        "adornment)");
  }
  enqueue(query_rel, query_adornment);

  while (!worklist.empty()) {
    auto [rel, adornment] = worklist.front();
    worklist.pop_front();
    for (size_t rule_index :
         rules_by_head.at({rel.pred, rel.peer})) {
      const Rule& rule = program.rules[rule_index];
      DQSQ_CHECK_EQ(rule.head.args.size(), adornment.size());
      AdornedRule ar;
      ar.rule = &rule;
      ar.rule_index = rule_index;
      ar.head_adornment = adornment;

      // Variables in bound head positions start out bound.
      std::vector<bool> bound_vars(rule.num_vars, false);
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (!adornment[i]) continue;
        std::vector<VarId> vars;
        rule.head.args[i].CollectVars(&vars);
        for (VarId v : vars) bound_vars[v] = true;
      }

      // Left-to-right: each atom is adorned with the bindings accumulated
      // so far, after which all its variables are bound.
      for (const Atom& atom : rule.body) {
        Adornment a = AdornAtom(atom, bound_vars);
        bool idb = is_idb(atom.rel);
        ar.body_adornments.push_back(a);
        ar.body_is_idb.push_back(idb);
        if (idb) enqueue(atom.rel, a);
        std::vector<VarId> vars;
        for (const Pattern& p : atom.args) p.CollectVars(&vars);
        for (VarId v : vars) bound_vars[v] = true;
      }
      out.rules.push_back(std::move(ar));
    }
  }
  return out;
}

}  // namespace dqsq
