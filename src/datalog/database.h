// A database maps relation instances (R@p) to their extents. Both the
// extensional input and every fact derived during evaluation live here;
// per-relation fact counts are the "materialized data" measure the paper's
// optimization claims are about.
#ifndef DQSQ_DATALOG_DATABASE_H_
#define DQSQ_DATALOG_DATABASE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "datalog/relation.h"

namespace dqsq {

class Database {
 public:
  explicit Database(DatalogContext* ctx) : ctx_(ctx) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  DatalogContext& ctx() { return *ctx_; }
  const DatalogContext& ctx() const { return *ctx_; }

  /// The relation for `rel`, created empty on first access.
  Relation& GetOrCreate(const RelId& rel);

  /// The relation for `rel`, or nullptr if never created.
  const Relation* Find(const RelId& rel) const;
  Relation* FindMutable(const RelId& rel);

  /// Inserts a ground fact. Returns true if new.
  bool Insert(const RelId& rel, std::span<const TermId> tuple);

  /// Convenience: inserts R@local(constants...) by name, interning symbols.
  void InsertByName(std::string_view pred,
                    const std::vector<std::string>& constants);

  /// Total facts across all relations.
  size_t TotalFacts() const;

  /// Facts in relations whose predicate-name passes `filter` (empty name
  /// filter counts everything). Used for materialization accounting.
  size_t CountFactsMatching(
      const std::function<bool(const std::string&)>& filter) const;

  /// All relation instances present.
  std::vector<RelId> Relations() const;

  /// Direct read access to the relation map, for hot-path iteration that
  /// must not materialize an id vector (the evaluator's round snapshots).
  const std::unordered_map<RelId, Relation, RelIdHash>& relation_map() const {
    return relations_;
  }

  /// Drops every relation (crash-restart support: the database is rebuilt
  /// from a snapshot via GetOrCreate + Insert in stored row order).
  void Clear() { relations_.clear(); }

  /// Multi-line "R@p(c1,c2)" dump, sorted, for tests and debugging.
  std::string Dump() const;

 private:
  DatalogContext* ctx_;
  std::unordered_map<RelId, Relation, RelIdHash> relations_;
};

}  // namespace dqsq

#endif  // DQSQ_DATALOG_DATABASE_H_
