#include "datalog/parser.h"

#include <cctype>
#include <unordered_map>

namespace dqsq {

namespace {

enum class TokKind {
  kIdent,
  kString,
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kAt,
  kColonDash,
  kNeq,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<Token> Next() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    if (pos_ >= text_.size()) return Token{TokKind::kEnd, "", start};
    char c = text_[pos_];
    if (c == '(') { ++pos_; return Token{TokKind::kLParen, "(", start}; }
    if (c == ')') { ++pos_; return Token{TokKind::kRParen, ")", start}; }
    if (c == ',') { ++pos_; return Token{TokKind::kComma, ",", start}; }
    if (c == '.') { ++pos_; return Token{TokKind::kPeriod, ".", start}; }
    if (c == '@') { ++pos_; return Token{TokKind::kAt, "@", start}; }
    if (c == ':') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        pos_ += 2;
        return Token{TokKind::kColonDash, ":-", start};
      }
      return Error(start, "expected ':-'");
    }
    if (c == '!') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
        pos_ += 2;
        return Token{TokKind::kNeq, "!=", start};
      }
      return Error(start, "expected '!='");
    }
    if (c == '"') {
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        value += text_[pos_++];
      }
      if (pos_ >= text_.size()) return Error(start, "unterminated string");
      ++pos_;  // closing quote
      return Token{TokKind::kString, value, start};
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::string value;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        value += text_[pos_++];
      }
      return Token{TokKind::kIdent, value, start};
    }
    return Error(start, std::string("unexpected character '") + c + "'");
  }

 private:
  void SkipWhitespaceAndComments() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  Status Error(size_t pos, std::string message) {
    return InvalidArgumentError("parse error at offset " +
                                std::to_string(pos) + ": " +
                                std::move(message));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool IsVariableName(const std::string& name) {
  return !name.empty() &&
         (std::isupper(static_cast<unsigned char>(name[0])) ||
          name[0] == '_');
}

class Parser {
 public:
  Parser(std::string_view text, DatalogContext& ctx)
      : lexer_(text), ctx_(ctx) {}

  StatusOr<Program> ParseProgram() {
    DQSQ_RETURN_IF_ERROR(Advance());
    Program program;
    while (tok_.kind != TokKind::kEnd) {
      DQSQ_ASSIGN_OR_RETURN(Rule rule, ParseRule());
      program.rules.push_back(std::move(rule));
    }
    return program;
  }

  StatusOr<ParsedQuery> ParseQueryAtom() {
    DQSQ_RETURN_IF_ERROR(Advance());
    BeginRuleScope();
    DQSQ_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    ParsedQuery q;
    q.atom = std::move(atom);
    q.num_vars = static_cast<uint32_t>(var_names_.size());
    q.var_names = var_names_;
    return q;
  }

 private:
  Status Advance() {
    DQSQ_ASSIGN_OR_RETURN(tok_, lexer_.Next());
    return Status::Ok();
  }

  Status Expect(TokKind kind, const char* what) {
    if (tok_.kind != kind) {
      return InvalidArgumentError("parse error at offset " +
                                  std::to_string(tok_.pos) + ": expected " +
                                  what + ", got '" + tok_.text + "'");
    }
    return Advance();
  }

  void BeginRuleScope() {
    var_slots_.clear();
    var_names_.clear();
  }

  VarId VarSlot(const std::string& name) {
    auto it = var_slots_.find(name);
    if (it != var_slots_.end()) return it->second;
    VarId id = static_cast<VarId>(var_names_.size());
    var_slots_.emplace(name, id);
    var_names_.push_back(name);
    return id;
  }

  StatusOr<Rule> ParseRule() {
    BeginRuleScope();
    DQSQ_ASSIGN_OR_RETURN(Atom head, ParseAtom());
    Rule rule;
    rule.head = std::move(head);
    if (tok_.kind == TokKind::kColonDash) {
      DQSQ_RETURN_IF_ERROR(Advance());
      for (;;) {
        // A body element is an atom or "term != term". Distinguish by
        // parsing a term first and checking for '!='. Only atoms start with
        // ident+( or ident+@ at this level, but variables start diseqs, so
        // peek: an atom begins with a lowercase ident followed by '(' or
        // '@'. A diseq begins with any term.
        DQSQ_ASSIGN_OR_RETURN(BodyElem elem, ParseBodyElem());
        if (elem.is_diseq) {
          rule.diseqs.push_back(std::move(elem.diseq));
        } else if (elem.is_negative) {
          rule.negative.push_back(std::move(elem.atom));
        } else {
          rule.body.push_back(std::move(elem.atom));
        }
        if (tok_.kind == TokKind::kComma) {
          DQSQ_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
    }
    DQSQ_RETURN_IF_ERROR(Expect(TokKind::kPeriod, "'.'"));
    rule.num_vars = static_cast<uint32_t>(var_names_.size());
    rule.var_names = var_names_;
    return rule;
  }

  struct BodyElem {
    bool is_diseq = false;
    bool is_negative = false;
    Atom atom;
    Diseq diseq;
  };

  StatusOr<BodyElem> ParseBodyElem() {
    if (tok_.kind == TokKind::kIdent && tok_.text == "not") {
      DQSQ_RETURN_IF_ERROR(Advance());
      DQSQ_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      BodyElem elem;
      elem.is_negative = true;
      elem.atom = std::move(atom);
      return elem;
    }
    if (tok_.kind == TokKind::kIdent && !IsVariableName(tok_.text)) {
      // Could be an atom (ident '(' or ident '@') or a constant in a diseq.
      std::string name = tok_.text;
      DQSQ_RETURN_IF_ERROR(Advance());
      if (tok_.kind == TokKind::kLParen || tok_.kind == TokKind::kAt) {
        DQSQ_ASSIGN_OR_RETURN(Atom atom, ParseAtomAfterName(name));
        BodyElem elem;
        elem.atom = std::move(atom);
        return elem;
      }
      // Constant; must be a diseq lhs.
      Pattern lhs = Pattern::Const(ctx_.symbols().Intern(name));
      return ParseDiseqAfterLhs(std::move(lhs));
    }
    // Variable or quoted constant: diseq lhs.
    DQSQ_ASSIGN_OR_RETURN(Pattern lhs, ParseTerm());
    return ParseDiseqAfterLhs(std::move(lhs));
  }

  StatusOr<BodyElem> ParseDiseqAfterLhs(Pattern lhs) {
    DQSQ_RETURN_IF_ERROR(Expect(TokKind::kNeq, "'!='"));
    DQSQ_ASSIGN_OR_RETURN(Pattern rhs, ParseTerm());
    BodyElem elem;
    elem.is_diseq = true;
    elem.diseq = Diseq{std::move(lhs), std::move(rhs)};
    return elem;
  }

  StatusOr<Atom> ParseAtom() {
    if (tok_.kind != TokKind::kIdent || IsVariableName(tok_.text)) {
      return InvalidArgumentError("parse error at offset " +
                                  std::to_string(tok_.pos) +
                                  ": expected predicate name");
    }
    std::string name = tok_.text;
    DQSQ_RETURN_IF_ERROR(Advance());
    return ParseAtomAfterName(name);
  }

  StatusOr<Atom> ParseAtomAfterName(const std::string& name) {
    SymbolId peer = ctx_.local_peer();
    if (tok_.kind == TokKind::kAt) {
      DQSQ_RETURN_IF_ERROR(Advance());
      if (tok_.kind != TokKind::kIdent || IsVariableName(tok_.text)) {
        return InvalidArgumentError(
            "parse error at offset " + std::to_string(tok_.pos) +
            ": peer names are constants (paper §3) — got '" + tok_.text + "'");
      }
      peer = ctx_.symbols().Intern(tok_.text);
      DQSQ_RETURN_IF_ERROR(Advance());
    }
    DQSQ_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    std::vector<Pattern> args;
    if (tok_.kind != TokKind::kRParen) {
      for (;;) {
        DQSQ_ASSIGN_OR_RETURN(Pattern arg, ParseTerm());
        args.push_back(std::move(arg));
        if (tok_.kind == TokKind::kComma) {
          DQSQ_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
    }
    DQSQ_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    Atom atom;
    atom.rel.pred =
        ctx_.InternPredicate(name, static_cast<uint32_t>(args.size()));
    atom.rel.peer = peer;
    atom.args = std::move(args);
    return atom;
  }

  StatusOr<Pattern> ParseTerm() {
    if (tok_.kind == TokKind::kString) {
      Pattern p = Pattern::Const(ctx_.symbols().Intern(tok_.text));
      DQSQ_RETURN_IF_ERROR(Advance());
      return p;
    }
    if (tok_.kind != TokKind::kIdent) {
      return InvalidArgumentError("parse error at offset " +
                                  std::to_string(tok_.pos) +
                                  ": expected term, got '" + tok_.text + "'");
    }
    std::string name = tok_.text;
    DQSQ_RETURN_IF_ERROR(Advance());
    if (tok_.kind == TokKind::kLParen) {
      // Function application.
      DQSQ_RETURN_IF_ERROR(Advance());
      std::vector<Pattern> args;
      if (tok_.kind != TokKind::kRParen) {
        for (;;) {
          DQSQ_ASSIGN_OR_RETURN(Pattern arg, ParseTerm());
          args.push_back(std::move(arg));
          if (tok_.kind == TokKind::kComma) {
            DQSQ_RETURN_IF_ERROR(Advance());
            continue;
          }
          break;
        }
      }
      DQSQ_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return Pattern::App(ctx_.symbols().Intern(name), std::move(args));
    }
    if (IsVariableName(name)) return Pattern::Var(VarSlot(name));
    return Pattern::Const(ctx_.symbols().Intern(name));
  }

  Lexer lexer_;
  DatalogContext& ctx_;
  Token tok_{TokKind::kEnd, "", 0};
  std::unordered_map<std::string, VarId> var_slots_;
  std::vector<std::string> var_names_;
};

}  // namespace

StatusOr<Program> ParseProgram(std::string_view text, DatalogContext& ctx) {
  Parser parser(text, ctx);
  DQSQ_ASSIGN_OR_RETURN(Program program, parser.ParseProgram());
  DQSQ_RETURN_IF_ERROR(ValidateProgram(program, ctx));
  return program;
}

StatusOr<ParsedQuery> ParseQuery(std::string_view text, DatalogContext& ctx) {
  Parser parser(text, ctx);
  return parser.ParseQueryAtom();
}

}  // namespace dqsq
