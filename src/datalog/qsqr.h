// QSQR: the recursive, top-down formulation of Query-Sub-Query (Vieille
// [34]; the presentation follows Abiteboul–Hull–Vianu ch. 13). Where
// qsq_rewrite.h realizes QSQ as a program transformation evaluated
// bottom-up, this engine evaluates subqueries directly: per call pattern
// (relation, adornment) it maintains an input table (subquery bindings
// seen) and an answer table, processes rule bodies left-to-right against
// the current answers, recursing into IDB atoms, and iterates to a global
// fixpoint because recursive answer tables may be incomplete on the first
// pass. Both realizations must compute the same answers and the same
// adorned answer tables — a strong cross-validation of each.
#ifndef DQSQ_DATALOG_QSQR_H_
#define DQSQ_DATALOG_QSQR_H_

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/eval.h"
#include "datalog/parser.h"

namespace dqsq {

struct QsqrResult {
  /// Query-variable bindings, deduplicated and sorted (same contract as
  /// QueryResult::answers).
  std::vector<Tuple> answers;
  /// Facts in the answer tables across all call patterns.
  size_t answer_facts = 0;
  /// Facts in the input tables (the demand bookkeeping).
  size_t input_facts = 0;
  /// Global passes until the fixpoint.
  size_t passes = 0;
};

/// Answers `query` against `program` + the extensional facts in `db` by
/// top-down QSQR. Answer/input tables are stored in `db` under the same
/// "R__<adornment>" / "in__R__<adornment>" names the rewriting uses, so
/// table contents are directly comparable across the two realizations.
/// Positive programs only.
StatusOr<QsqrResult> QsqrSolve(const Program& program, Database& db,
                               const ParsedQuery& query,
                               const EvalOptions& options = {});

}  // namespace dqsq

#endif  // DQSQ_DATALOG_QSQR_H_
