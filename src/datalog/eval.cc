#include "datalog/eval.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"

namespace dqsq {

namespace {

// Evaluation of one program over one database. Semi-naive bookkeeping is
// row-count based: each relation's rows appended during round r form the
// delta consumed in round r+1.
class Evaluator {
 public:
  Evaluator(const Program& program, Database& db, const EvalOptions& options)
      : program_(program), db_(db), options_(options) {}

  StatusOr<EvalStats> Run() {
    Status status = RunImpl();
    FlushMetrics();
    if (!status.ok()) return status;
    return stats_;
  }

 private:
  Status RunImpl() {
    // Stratified evaluation: rules of stratum 0, 1, ... to their own
    // fixpoints in order, so every negated relation is complete before it
    // is read. Positive programs form a single stratum.
    DQSQ_ASSIGN_OR_RETURN(std::vector<uint32_t> strata,
                          StratifyProgram(program_, db_.ctx()));
    uint32_t max_stratum = 0;
    for (uint32_t s : strata) max_stratum = std::max(max_stratum, s);
    for (uint32_t stratum = 0; stratum <= max_stratum; ++stratum) {
      Program layer;
      for (size_t i = 0; i < program_.rules.size(); ++i) {
        if (strata[i] == stratum) layer.rules.push_back(program_.rules[i]);
      }
      if (layer.rules.empty()) continue;
      DQSQ_RETURN_IF_ERROR(RunLayer(layer));
    }
    return Status::Ok();
  }

  // One registry update per evaluation (also on error paths): the hot
  // loops accumulate into plain size_t fields and the totals land here.
  void FlushMetrics() {
    auto& registry = MetricsRegistry::Global();
    Labels mode{{"mode", options_.seminaive ? "seminaive" : "naive"}};
    registry.GetCounter("datalog.eval.runs", mode).Increment();
    registry.GetCounter("datalog.eval.rounds", mode).Increment(stats_.rounds);
    registry.GetCounter("datalog.eval.facts_derived", mode, "facts")
        .Increment(stats_.facts_derived);
    registry.GetCounter("datalog.eval.rule_firings", mode)
        .Increment(stats_.rule_firings);
    registry.GetCounter("datalog.eval.join_probes", mode, "rows")
        .Increment(stats_.join_probes);
    registry.GetCounter("datalog.eval.depth_pruned", mode, "facts")
        .Increment(stats_.depth_pruned);
    registry.GetCounter("datalog.eval.delta_rows", mode, "rows")
        .Increment(delta_rows_);
    registry.GetGauge("datalog.eval.budget_facts_used", mode, "facts")
        .Set(static_cast<int64_t>(db_.TotalFacts()));
  }

  Status RunLayer(const Program& layer) {
    // Snapshot maps: base = size at start of previous round (old rows),
    // cur = size at start of this round. Delta = [base, cur).
    snapshots_.clear();
    for (size_t round = 0;; ++round) {
      if (round >= options_.max_rounds) {
        CountMetric("datalog.eval.budget_exhausted", 1,
                    {{"budget", "rounds"}});
        return ResourceExhaustedError("evaluation exceeded max_rounds");
      }
      ++stats_.rounds;
      TakeSnapshot();
      size_t before = stats_.facts_derived;
      for (const Rule& rule : layer.rules) {
        Status s = EvalRule(rule, round);
        if (!s.ok()) return s;
      }
      if (stats_.facts_derived == before) break;  // fixpoint
    }
    return Status::Ok();
  }

  struct Snapshot {
    size_t base = 0;  // rows before the previous round
    size_t cur = 0;   // rows at the start of this round
  };

  void TakeSnapshot() {
    for (auto& [rel, snap] : snapshots_) {
      snap.base = snap.cur;
      const Relation* r = db_.Find(rel);
      snap.cur = r == nullptr ? 0 : r->size();
      delta_rows_ += snap.cur - snap.base;
    }
    // Relations that appeared for the first time.
    for (const RelId& rel : db_.Relations()) {
      if (!snapshots_.contains(rel)) {
        const Relation* r = db_.Find(rel);
        size_t size = r == nullptr ? 0 : r->size();
        snapshots_[rel] = Snapshot{0, size};
        delta_rows_ += size;
      }
    }
  }

  Snapshot SnapshotFor(const RelId& rel) const {
    auto it = snapshots_.find(rel);
    return it == snapshots_.end() ? Snapshot{} : it->second;
  }

  Status EvalRule(const Rule& rule, size_t round) {
    if (rule.body.empty()) {
      // Facts (and rules whose body is only ground negations/diseqs) fire
      // once, in round 0 of their stratum.
      if (round > 0) return Status::Ok();
      Substitution subst(rule.num_vars, kNoTerm);
      if (!CheckDiseqs(rule, subst)) return Status::Ok();
      if (!CheckNegatives(rule, subst)) return Status::Ok();
      return EmitHead(rule, subst);
    }
    if (!options_.seminaive || round == 0) {
      // Full join over the snapshot extents (round 0 seeds the deltas).
      Substitution subst(rule.num_vars, kNoTerm);
      std::vector<VarId> trail;
      return JoinFrom(rule, 0, /*delta_pos=*/rule.body.size(), subst, trail);
    }
    // Semi-naive: one pass per body position that has a non-empty delta.
    for (size_t d = 0; d < rule.body.size(); ++d) {
      Snapshot snap = SnapshotFor(rule.body[d].rel);
      if (snap.cur == snap.base) continue;
      Substitution subst(rule.num_vars, kNoTerm);
      std::vector<VarId> trail;
      DQSQ_RETURN_IF_ERROR(JoinFrom(rule, 0, d, subst, trail));
    }
    return Status::Ok();
  }

  // Row range an atom at position `pos` may scan when the delta is placed at
  // `delta_pos`: positions before the delta see only old rows, the delta
  // position sees exactly the delta, later positions see everything up to
  // the round snapshot. delta_pos == body.size() means "full snapshot scan".
  std::pair<size_t, size_t> RangeFor(const Atom& atom, size_t pos,
                                     size_t delta_pos) const {
    Snapshot snap = SnapshotFor(atom.rel);
    if (pos < delta_pos) return {0, snap.base};  // old rows only
    if (pos == delta_pos) return {snap.base, snap.cur};
    return {0, snap.cur};
  }

  Status JoinFrom(const Rule& rule, size_t pos, size_t delta_pos,
                  Substitution& subst, std::vector<VarId>& trail) {
    if (pos == rule.body.size()) {
      if (!CheckDiseqs(rule, subst)) return Status::Ok();
      if (!CheckNegatives(rule, subst)) return Status::Ok();
      ++stats_.rule_firings;
      return EmitHead(rule, subst);
    }
    const Atom& atom = rule.body[pos];
    size_t lo, hi;
    if (delta_pos == rule.body.size()) {
      Snapshot snap = SnapshotFor(atom.rel);
      lo = 0;
      hi = snap.cur;
    } else {
      std::tie(lo, hi) = RangeFor(atom, pos, delta_pos);
    }
    if (lo >= hi) return Status::Ok();
    Relation* rel = db_.FindMutable(atom.rel);
    if (rel == nullptr) return Status::Ok();

    // Columns whose pattern is fully ground under the current bindings can
    // drive an index probe.
    uint32_t mask = 0;
    std::vector<TermId> key;
    if (atom.args.size() <= 32) {
      for (size_t c = 0; c < atom.args.size(); ++c) {
        TermId t = TryGroundPattern(atom.args[c], subst, db_.ctx().arena());
        if (t != kNoTerm) {
          mask |= (1u << c);
          key.push_back(t);
        }
      }
    }

    auto try_row = [&](uint32_t row) -> Status {
      ++stats_.join_probes;
      auto values = rel->Row(row);
      size_t mark = trail.size();
      bool ok = true;
      for (size_t c = 0; c < atom.args.size(); ++c) {
        if (!MatchPattern(atom.args[c], values[c], db_.ctx().arena(), subst,
                          trail)) {
          ok = false;
          break;
        }
      }
      Status s = Status::Ok();
      if (ok) s = JoinFrom(rule, pos + 1, delta_pos, subst, trail);
      UndoTrail(subst, trail, mark);
      return s;
    };

    if (mask != 0) {
      // Probe returns row ids over the whole relation; filter to the range.
      // Copy: recursion may insert into this relation and grow the index
      // bucket vector underneath us.
      std::vector<uint32_t> rows = rel->Probe(mask, key);
      for (uint32_t row : rows) {
        if (row < lo || row >= hi) continue;
        DQSQ_RETURN_IF_ERROR(try_row(row));
      }
    } else {
      for (size_t row = lo; row < hi; ++row) {
        DQSQ_RETURN_IF_ERROR(try_row(static_cast<uint32_t>(row)));
      }
    }
    return Status::Ok();
  }

  // Safe, stratified negation: the negated atom is ground here and its
  // relation's stratum is already complete.
  bool CheckNegatives(const Rule& rule, const Substitution& subst) {
    for (const Atom& atom : rule.negative) {
      std::vector<TermId> tuple;
      tuple.reserve(atom.args.size());
      for (const Pattern& p : atom.args) {
        tuple.push_back(GroundPattern(p, subst, db_.ctx().arena()));
      }
      const Relation* rel = db_.Find(atom.rel);
      if (rel != nullptr && rel->Contains(tuple)) return false;
    }
    return true;
  }

  bool CheckDiseqs(const Rule& rule, const Substitution& subst) {
    for (const Diseq& d : rule.diseqs) {
      TermId lhs = TryGroundPattern(d.lhs, subst, db_.ctx().arena());
      TermId rhs = TryGroundPattern(d.rhs, subst, db_.ctx().arena());
      DQSQ_DCHECK(lhs != kNoTerm && rhs != kNoTerm);
      if (lhs == rhs) return false;
    }
    return true;
  }

  Status EmitHead(const Rule& rule, const Substitution& subst) {
    std::vector<TermId> tuple;
    tuple.reserve(rule.head.args.size());
    for (const Pattern& p : rule.head.args) {
      TermId t = GroundPattern(p, subst, db_.ctx().arena());
      if (options_.max_term_depth > 0 &&
          db_.ctx().arena().Depth(t) > options_.max_term_depth) {
        if (options_.depth_policy == EvalOptions::DepthPolicy::kError) {
          CountMetric("datalog.eval.budget_exhausted", 1,
                      {{"budget", "depth"}});
          return ResourceExhaustedError("term depth budget exceeded");
        }
        ++stats_.depth_pruned;
        return Status::Ok();
      }
      tuple.push_back(t);
    }
    if (db_.Insert(rule.head.rel, tuple)) {
      ++stats_.facts_derived;
      if (db_.TotalFacts() > options_.max_facts) {
        CountMetric("datalog.eval.budget_exhausted", 1,
                    {{"budget", "facts"}});
        return ResourceExhaustedError("evaluation exceeded max_facts");
      }
    }
    return Status::Ok();
  }

  const Program& program_;
  Database& db_;
  const EvalOptions& options_;
  EvalStats stats_;
  size_t delta_rows_ = 0;  // rows that entered some round's delta
  std::unordered_map<RelId, Snapshot, RelIdHash> snapshots_;
};

}  // namespace

StatusOr<EvalStats> Evaluate(const Program& program, Database& db,
                             const EvalOptions& options) {
  return Evaluator(program, db, options).Run();
}

std::vector<Tuple> Ask(Database& db, const Atom& query, uint32_t num_vars) {
  std::vector<Tuple> out;
  Relation* rel = db.FindMutable(query.rel);
  if (rel == nullptr) return out;
  std::vector<VarId> query_vars;
  for (const Pattern& p : query.args) p.CollectVars(&query_vars);
  std::sort(query_vars.begin(), query_vars.end());
  query_vars.erase(std::unique(query_vars.begin(), query_vars.end()),
                   query_vars.end());
  Substitution subst(num_vars, kNoTerm);
  std::vector<VarId> trail;
  for (size_t row = 0; row < rel->size(); ++row) {
    auto values = rel->Row(row);
    size_t mark = trail.size();
    bool ok = true;
    for (size_t c = 0; c < query.args.size(); ++c) {
      if (!MatchPattern(query.args[c], values[c], db.ctx().arena(), subst,
                        trail)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      Tuple t;
      t.reserve(query_vars.size());
      for (VarId v : query_vars) t.push_back(subst[v]);
      out.push_back(std::move(t));
    }
    UndoTrail(subst, trail, mark);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dqsq
