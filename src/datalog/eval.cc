#include "datalog/eval.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"
#include "datalog/join_kernel.h"

namespace dqsq {

namespace {

// Evaluation of one program over one database. Semi-naive bookkeeping is
// row-count based: each relation's rows appended during round r form the
// delta consumed in round r+1. Rule bodies run through the batched join
// kernel (join_kernel.h); this class supplies the snapshot row ranges and
// the head emission.
class Evaluator : public JoinHost {
 public:
  Evaluator(const Program& program, Database& db, const EvalOptions& options)
      : program_(program), db_(db), options_(options) {}

  StatusOr<EvalStats> Run() {
    initial_facts_ = db_.TotalFacts();
    Status status = RunImpl();
    FlushMetrics();
    if (!status.ok()) return status;
    return stats_;
  }

 private:
  struct Snapshot {
    const Relation* relation = nullptr;  // stable: map nodes never move
    size_t base = 0;  // rows before the previous round
    size_t cur = 0;   // rows at the start of this round
  };

  // Cached pointer to a body atom's snapshot entry. `gen` records the
  // relation-map generation of the last failed lookup, so atoms over
  // relations that never materialize (common in rewrite output) cost one
  // comparison per round instead of a hash lookup.
  struct SnapRef {
    const Snapshot* snap = nullptr;
    size_t gen = 0;
  };

  // Per-execution kernel context: where the delta is placed in the body
  // (body.size() = full snapshot scan, used by naive mode and round 0),
  // plus the plan's snapshot-pointer cache (see EvalRule).
  struct EvalCtx {
    size_t delta_pos;
    std::vector<SnapRef>* snaps;
  };

  Status RunImpl() {
    // Stratified evaluation: rules of stratum 0, 1, ... to their own
    // fixpoints in order, so every negated relation is complete before it
    // is read. Positive programs form a single stratum.
    DQSQ_ASSIGN_OR_RETURN(std::vector<uint32_t> strata,
                          StratifyProgram(program_, db_.ctx()));
    uint32_t max_stratum = 0;
    for (uint32_t s : strata) max_stratum = std::max(max_stratum, s);
    std::vector<const Rule*> layer;
    for (uint32_t stratum = 0; stratum <= max_stratum; ++stratum) {
      layer.clear();
      for (size_t i = 0; i < program_.rules.size(); ++i) {
        if (strata[i] == stratum) layer.push_back(&program_.rules[i]);
      }
      if (layer.empty()) continue;
      DQSQ_RETURN_IF_ERROR(RunLayer(layer));
    }
    return Status::Ok();
  }

  // One registry update per evaluation (also on error paths): the hot
  // loops accumulate into plain size_t fields and the totals land here.
  void FlushMetrics() {
    auto& registry = MetricsRegistry::Global();
    Labels mode{{"mode", options_.seminaive ? "seminaive" : "naive"}};
    registry.GetCounter("datalog.eval.runs", mode).Increment();
    registry.GetCounter("datalog.eval.rounds", mode).Increment(stats_.rounds);
    registry.GetCounter("datalog.eval.facts_derived", mode, "facts")
        .Increment(stats_.facts_derived);
    registry.GetCounter("datalog.eval.rule_firings", mode)
        .Increment(stats_.rule_firings);
    registry.GetCounter("datalog.eval.join_probes", mode, "rows")
        .Increment(stats_.join_probes);
    registry.GetCounter("datalog.eval.depth_pruned", mode, "facts")
        .Increment(stats_.depth_pruned);
    registry.GetCounter("datalog.eval.delta_rows", mode, "rows")
        .Increment(delta_rows_);
    registry.GetGauge("datalog.eval.budget_facts_used", mode, "facts")
        .Set(static_cast<int64_t>(db_.TotalFacts()));
  }

  Status RunLayer(const std::vector<const Rule*>& layer) {
    // Compile each rule's body once per layer; the plans ground every
    // constant pattern up front, so the per-row loops never re-intern.
    std::vector<RulePlan> plans;
    plans.reserve(layer.size());
    size_t max_atoms = 0;
    for (const Rule* rule : layer) {
      plans.push_back(CompileRulePlan(*rule, {}, db_.ctx().arena()));
      max_atoms = std::max(max_atoms, rule->body.size());
    }
    if (scratch_.levels.size() < max_atoms) scratch_.levels.resize(max_atoms);
    // Per-plan caches of snapshot entry pointers, one per body atom.
    std::vector<std::vector<SnapRef>> plan_snaps(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      plan_snaps[i].assign(plans[i].atoms.size(), SnapRef{});
    }

    // Snapshot maps: base = size at start of previous round (old rows),
    // cur = size at start of this round. Delta = [base, cur).
    snapshots_.clear();
    known_relations_ = 0;
    for (size_t round = 0;; ++round) {
      if (round >= options_.max_rounds) {
        CountMetric("datalog.eval.budget_exhausted", 1,
                    {{"budget", "rounds"}});
        return ResourceExhaustedError("evaluation exceeded max_rounds");
      }
      ++stats_.rounds;
      TakeSnapshot();
      size_t before = stats_.facts_derived;
      for (size_t i = 0; i < plans.size(); ++i) {
        Status s = EvalRule(plans[i], plan_snaps[i], round);
        if (!s.ok()) return s;
      }
      if (options_.round_hook != nullptr) {
        options_.round_hook(options_.round_hook_ctx, round);
      }
      if (stats_.facts_derived == before) break;  // fixpoint
    }
    return Status::Ok();
  }

  void TakeSnapshot() {
    for (auto& [rel, snap] : snapshots_) {
      snap.base = snap.cur;
      snap.cur = snap.relation->size();
      delta_rows_ += snap.cur - snap.base;
    }
    // Relations that appeared since the last scan. Relations are only ever
    // added during evaluation, so a stable map size means nothing is new
    // and the full walk (hash lookup per relation per round) is skipped.
    if (db_.relation_map().size() != known_relations_) {
      for (const auto& [rel, relation] : db_.relation_map()) {
        if (!snapshots_.contains(rel)) {
          snapshots_[rel] = Snapshot{&relation, 0, relation.size()};
          delta_rows_ += relation.size();
        }
      }
      known_relations_ = db_.relation_map().size();
      ++snap_gen_;
    }
  }

  Snapshot SnapshotFor(const RelId& rel) const {
    auto it = snapshots_.find(rel);
    return it == snapshots_.end() ? Snapshot{} : it->second;
  }

  // Pointer into snapshots_ for `rel`, or nullptr while the relation does
  // not exist yet. Entry addresses are stable (node-based map, entries
  // never erased within a layer), so plans cache them: the steady-state
  // delta checks then cost a pointer read instead of a hash lookup per
  // rule body atom per round.
  const Snapshot* FindSnapshot(const RelId& rel) const {
    auto it = snapshots_.find(rel);
    return it == snapshots_.end() ? nullptr : &it->second;
  }

  // Cached snapshot pointer for body position `pos`, resolving (and
  // memoizing) on first sight of the relation; while the relation is
  // absent, re-resolves only after the relation map has grown.
  Snapshot SnapAt(const RulePlan& plan, std::vector<SnapRef>& snaps,
                  size_t pos) const {
    SnapRef& ref = snaps[pos];
    if (ref.snap == nullptr) {
      if (ref.gen == snap_gen_) return Snapshot{};
      ref.snap = FindSnapshot(plan.atoms[pos].atom->rel);
      ref.gen = snap_gen_;
      if (ref.snap == nullptr) return Snapshot{};
    }
    return *ref.snap;
  }

  Status EvalRule(const RulePlan& plan, std::vector<SnapRef>& snaps,
                  size_t round) {
    const Rule& rule = *plan.rule;
    // The head relation is looked up lazily on first emission (an eager
    // GetOrCreate would surface empty relations in Relations()/SaveState
    // and break distributed byte stability), then cached for the round —
    // node addresses in the relation map are stable across inserts.
    head_rel_ = nullptr;
    if (rule.body.empty()) {
      // Facts (and rules whose body is only ground negations/diseqs) fire
      // once, in round 0 of their stratum.
      if (round > 0) return Status::Ok();
      scratch_.Prepare(rule.num_vars, 0);
      if (!CheckDiseqs(rule)) return Status::Ok();
      if (!CheckNegatives(rule)) return Status::Ok();
      return EmitHead(rule);
    }
    if (!options_.seminaive || round == 0) {
      // Full join over the snapshot extents (round 0 seeds the deltas).
      scratch_.Prepare(rule.num_vars, rule.body.size());
      EvalCtx ctx{rule.body.size(), &snaps};
      return ExecuteRulePlan(plan, db_.ctx().arena(), *this, &ctx, scratch_,
                             &stats_.join_probes);
    }
    // Semi-naive: one pass per body position that has a non-empty delta.
    for (size_t d = 0; d < rule.body.size(); ++d) {
      Snapshot snap = SnapAt(plan, snaps, d);
      if (snap.cur == snap.base) continue;
      scratch_.Prepare(rule.num_vars, rule.body.size());
      EvalCtx ctx{d, &snaps};
      DQSQ_RETURN_IF_ERROR(ExecuteRulePlan(plan, db_.ctx().arena(), *this,
                                           &ctx, scratch_,
                                           &stats_.join_probes));
    }
    return Status::Ok();
  }

  // Snapshot ranges depend only on (plan, pos, delta_pos), all fixed for
  // one kernel execution: let the kernel resolve each atom once and cache.
  bool SourcesAreStatic() const override { return true; }

  // Row range an atom at position `pos` may scan when the delta is placed
  // at `delta_pos`: positions before the delta see only old rows, the
  // delta position sees exactly the delta, later positions see everything
  // up to the round snapshot. delta_pos == body.size() = full snapshot.
  Status ResolveSource(const RulePlan& plan, size_t pos, const void* ctx,
                       std::span<const TermId> /*key*/,
                       Source* out) override {
    const EvalCtx& ec = *static_cast<const EvalCtx*>(ctx);
    Snapshot snap = SnapAt(plan, *ec.snaps, pos);
    size_t lo, hi;
    if (pos < ec.delta_pos) {
      lo = 0;
      hi = snap.base;  // old rows only
    } else if (pos == ec.delta_pos) {
      lo = snap.base;
      hi = snap.cur;
    } else {
      lo = 0;
      hi = snap.cur;
    }
    if (ec.delta_pos == plan.rule->body.size()) {
      lo = 0;
      hi = snap.cur;
    }
    // The snapshot already resolved the relation (db_ is mutable here; the
    // map hands out const refs only through relation_map()).
    out->rel = lo < hi ? const_cast<Relation*>(snap.relation) : nullptr;
    out->lo = static_cast<uint32_t>(lo);
    out->hi = static_cast<uint32_t>(hi);
    return Status::Ok();
  }

  Status OnMatch(const RulePlan& plan, const void* /*ctx*/,
                 JoinScratch& /*scratch*/) override {
    const Rule& rule = *plan.rule;
    if (!CheckDiseqs(rule)) return Status::Ok();
    if (!CheckNegatives(rule)) return Status::Ok();
    ++stats_.rule_firings;
    return EmitHead(rule);
  }

  // Safe, stratified negation: the negated atom is ground here and its
  // relation's stratum is already complete.
  bool CheckNegatives(const Rule& rule) {
    for (const Atom& atom : rule.negative) {
      scratch_.tuple.clear();
      for (const Pattern& p : atom.args) {
        scratch_.tuple.push_back(GroundPattern(p, scratch_.subst,
                                               db_.ctx().arena(),
                                               scratch_.ground_stack));
      }
      const Relation* rel = db_.Find(atom.rel);
      if (rel != nullptr && rel->Contains(scratch_.tuple)) return false;
    }
    return true;
  }

  bool CheckDiseqs(const Rule& rule) {
    for (const Diseq& d : rule.diseqs) {
      TermId lhs = TryGroundPattern(d.lhs, scratch_.subst, db_.ctx().arena(),
                                    scratch_.ground_stack);
      TermId rhs = TryGroundPattern(d.rhs, scratch_.subst, db_.ctx().arena(),
                                    scratch_.ground_stack);
      DQSQ_DCHECK(lhs != kNoTerm && rhs != kNoTerm);
      if (lhs == rhs) return false;
    }
    return true;
  }

  Status EmitHead(const Rule& rule) {
    scratch_.tuple.clear();
    for (const Pattern& p : rule.head.args) {
      // Plain head variables dominate; skip the grounding walk for them.
      TermId t = p.kind() == Pattern::Kind::kVar
                     ? scratch_.subst[p.var()]
                     : GroundPattern(p, scratch_.subst, db_.ctx().arena(),
                                     scratch_.ground_stack);
      DQSQ_DCHECK(t != kNoTerm);  // range restriction: head vars are bound
      if (options_.max_term_depth > 0 &&
          db_.ctx().arena().Depth(t) > options_.max_term_depth) {
        if (options_.depth_policy == EvalOptions::DepthPolicy::kError) {
          CountMetric("datalog.eval.budget_exhausted", 1,
                      {{"budget", "depth"}});
          return ResourceExhaustedError("term depth budget exceeded");
        }
        ++stats_.depth_pruned;
        return Status::Ok();
      }
      scratch_.tuple.push_back(t);
    }
    if (head_rel_ == nullptr) head_rel_ = &db_.GetOrCreate(rule.head.rel);
    if (head_rel_->Insert(scratch_.tuple)) {
      ++stats_.facts_derived;
      // TotalFacts() == initial_facts_ + facts_derived: this evaluator is
      // the only writer, and every successful insert is counted above.
      if (initial_facts_ + stats_.facts_derived > options_.max_facts) {
        CountMetric("datalog.eval.budget_exhausted", 1,
                    {{"budget", "facts"}});
        return ResourceExhaustedError("evaluation exceeded max_facts");
      }
    }
    return Status::Ok();
  }

  const Program& program_;
  Database& db_;
  const EvalOptions& options_;
  EvalStats stats_;
  size_t initial_facts_ = 0;       // db size when evaluation began
  Relation* head_rel_ = nullptr;   // per-EvalRule cache (lazy)
  size_t known_relations_ = 0;     // relation-map size at last full scan
  size_t snap_gen_ = 1;            // bumps when new relations appear
  size_t delta_rows_ = 0;  // rows that entered some round's delta
  std::unordered_map<RelId, Snapshot, RelIdHash> snapshots_;
  JoinScratch scratch_;
};

}  // namespace

StatusOr<EvalStats> Evaluate(const Program& program, Database& db,
                             const EvalOptions& options) {
  return Evaluator(program, db, options).Run();
}

std::vector<Tuple> Ask(Database& db, const Atom& query, uint32_t num_vars) {
  std::vector<Tuple> out;
  Relation* rel = db.FindMutable(query.rel);
  if (rel == nullptr) return out;
  std::vector<VarId> query_vars;
  for (const Pattern& p : query.args) p.CollectVars(&query_vars);
  std::sort(query_vars.begin(), query_vars.end());
  query_vars.erase(std::unique(query_vars.begin(), query_vars.end()),
                   query_vars.end());
  Substitution subst(num_vars, kNoTerm);
  std::vector<VarId> trail;
  for (size_t row = 0; row < rel->size(); ++row) {
    auto values = rel->Row(row);
    size_t mark = trail.size();
    bool ok = true;
    for (size_t c = 0; c < query.args.size(); ++c) {
      if (!MatchPattern(query.args[c], values[c], db.ctx().arena(), subst,
                        trail)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      Tuple t;
      t.reserve(query_vars.size());
      for (VarId v : query_vars) t.push_back(subst[v]);
      out.push_back(std::move(t));
    }
    UndoTrail(subst, trail, mark);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dqsq
