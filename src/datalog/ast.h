// dDatalog abstract syntax (paper §3): atoms R@p(e1,...,en) where p is a
// constant peer name, rules with optional disequality constraints
// x != y, and programs as rule sets. A DatalogContext owns the shared
// symbol table, ground-term arena and predicate registry; every program,
// database and evaluator refers to one context.
#ifndef DQSQ_DATALOG_AST_H_
#define DQSQ_DATALOG_AST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/symbol_table.h"
#include "datalog/pattern.h"
#include "datalog/term.h"

namespace dqsq {

using PredicateId = uint32_t;

/// Identifies a relation instance: predicate R located at peer p (the pair
/// "R@p" of the paper). Centralized programs place everything at one peer.
struct RelId {
  PredicateId pred = 0;
  SymbolId peer = 0;

  friend bool operator==(const RelId& a, const RelId& b) {
    return a.pred == b.pred && a.peer == b.peer;
  }
};

struct RelIdHash {
  size_t operator()(const RelId& r) const {
    return (static_cast<size_t>(r.pred) << 32) ^ r.peer;
  }
};

/// Shared naming environment for programs, databases and evaluators.
class DatalogContext {
 public:
  DatalogContext();
  DatalogContext(const DatalogContext&) = delete;
  DatalogContext& operator=(const DatalogContext&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  TermArena& arena() { return arena_; }
  const TermArena& arena() const { return arena_; }

  /// Interns predicate `name` with `arity`. Aborts if the name was
  /// previously interned with a different arity (one arity per name).
  PredicateId InternPredicate(std::string_view name, uint32_t arity);

  /// Returns the predicate id for `name`, or false if unknown.
  bool LookupPredicate(std::string_view name, PredicateId* id) const;

  const std::string& PredicateName(PredicateId id) const;
  uint32_t PredicateArity(PredicateId id) const;
  size_t num_predicates() const { return preds_.size(); }

  /// The default peer used by non-distributed ("local") programs.
  SymbolId local_peer() const { return local_peer_; }

  /// Interns a peer name.
  SymbolId InternPeer(std::string_view name) { return symbols_.Intern(name); }

  /// Interns a constant symbol and returns its ground term.
  TermId Constant(std::string_view name) {
    return arena_.MakeConstant(symbols_.Intern(name));
  }

 private:
  struct PredInfo {
    SymbolId name;
    uint32_t arity;
  };

  SymbolTable symbols_;
  TermArena arena_;
  std::vector<PredInfo> preds_;
  std::unordered_map<SymbolId, PredicateId> pred_index_;
  SymbolId local_peer_;
};

/// R@p(e1,...,en) with pattern arguments.
struct Atom {
  RelId rel;
  std::vector<Pattern> args;
};

/// A disequality constraint lhs != rhs between variables/constants.
struct Diseq {
  Pattern lhs;
  Pattern rhs;
};

/// head :- body, not negative..., diseqs. Variables are rule-local slots
/// 0..num_vars-1; var_names records source names for printing. Negated
/// atoms ("not R(x)") must be safe: every variable they use appears in the
/// positive body. Programs with negation must be stratified (paper Remark
/// 4 discusses why the diagnosis encoding avoids this: its negation is
/// only LOCALLY stratified, through the term depth, which predicate-level
/// stratification cannot express).
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<Atom> negative;
  std::vector<Diseq> diseqs;
  uint32_t num_vars = 0;
  std::vector<std::string> var_names;

  bool IsFact() const {
    return body.empty() && negative.empty() && diseqs.empty();
  }
};

/// A finite set of rules (paper Def.: program). Rules "at site p" are those
/// whose head is located at p.
struct Program {
  std::vector<Rule> rules;
};

/// Renders an atom as "R@p(args)" (omitting "@p" when p is the local peer).
std::string AtomToString(const Atom& atom, const DatalogContext& ctx,
                         const std::vector<std::string>* var_names);

/// Renders "head :- body, d1 != d2." (or "head." for facts).
std::string RuleToString(const Rule& rule, const DatalogContext& ctx);

/// Renders all rules, one per line.
std::string ProgramToString(const Program& program, const DatalogContext& ctx);

/// Checks well-formedness: head variables appear in the body (range
/// restriction, required by the paper), disequality operands appear in the
/// body, negated atoms are safe, argument counts match predicate arities,
/// var slots < num_vars.
Status ValidateProgram(const Program& program, const DatalogContext& ctx);

/// Computes a stratification: strata[i] = stratum of program.rules[i],
/// where every positive dependency is satisfied at the same or a lower
/// stratum and every negative dependency strictly lower. Fails if the
/// program is not stratifiable (negation through recursion).
StatusOr<std::vector<uint32_t>> StratifyProgram(const Program& program,
                                                const DatalogContext& ctx);

/// Returns the set of relations defined by some rule head (the intensional
/// relations of the program).
std::vector<RelId> IdbRelations(const Program& program);

}  // namespace dqsq

#endif  // DQSQ_DATALOG_AST_H_
