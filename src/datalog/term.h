// Hash-consed arena of ground terms. dDatalog needs function symbols (the
// paper's Skolem terms f(c,u,v), g(x,c), h(z,x) create unfolding nodes), so
// ground values are trees. Hash-consing gives each distinct ground term a
// unique dense 32-bit id: equality is integer comparison, structural matching
// decomposes nodes in O(1) per level, and depth is cached for evaluation
// budgets.
#ifndef DQSQ_DATALOG_TERM_H_
#define DQSQ_DATALOG_TERM_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/symbol_table.h"

namespace dqsq {

using TermId = uint32_t;
inline constexpr TermId kNoTerm = 0xffffffffu;

class TermArena {
 public:
  TermArena() = default;
  TermArena(const TermArena&) = delete;
  TermArena& operator=(const TermArena&) = delete;

  /// Interns the constant `symbol` as a leaf term.
  TermId MakeConstant(SymbolId symbol);

  /// Interns the application `fn(args...)`. `args` must all be valid ids.
  TermId MakeApp(SymbolId fn, std::span<const TermId> args);
  TermId MakeApp(SymbolId fn, std::initializer_list<TermId> args) {
    return MakeApp(fn, std::span<const TermId>(args.begin(), args.size()));
  }

  /// True iff `term` is a constant (leaf).
  bool IsConstant(TermId term) const { return node(term).num_args == 0 && !node(term).is_app; }

  /// True iff `term` is a function application.
  bool IsApp(TermId term) const { return node(term).is_app; }

  /// The constant's symbol (leaf) or the application's function symbol.
  SymbolId Symbol(TermId term) const { return node(term).symbol; }

  /// Argument subterms of an application (empty span for constants).
  std::span<const TermId> Args(TermId term) const;

  /// Nesting depth: constants have depth 1, f(args) has 1 + max arg depth.
  uint32_t Depth(TermId term) const { return node(term).depth; }

  /// Renders the term using `symbols` for names, e.g. "f(c1,g(r,c2))".
  std::string ToString(TermId term, const SymbolTable& symbols) const;

  size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    SymbolId symbol;
    uint32_t first_arg;  // offset into args_
    uint16_t num_args;
    bool is_app;
    uint32_t depth;
  };

  struct PendingKey {
    bool is_app;
    SymbolId symbol;
    std::span<const TermId> args;
  };

  const Node& node(TermId term) const;
  size_t HashKey(bool is_app, SymbolId symbol,
                 std::span<const TermId> args) const;
  bool KeyEquals(TermId term, bool is_app, SymbolId symbol,
                 std::span<const TermId> args) const;

  std::vector<Node> nodes_;
  std::vector<TermId> args_;
  // Open-addressed map from structural hash to candidate term ids.
  std::unordered_multimap<size_t, TermId> intern_;
};

}  // namespace dqsq

#endif  // DQSQ_DATALOG_TERM_H_
