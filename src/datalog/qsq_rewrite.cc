#include "datalog/qsq_rewrite.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/metrics.h"

namespace dqsq {

namespace {

std::vector<VarId> SortedVars(const std::set<VarId>& vars) {
  return std::vector<VarId>(vars.begin(), vars.end());
}

void CollectAtomVars(const Atom& atom, std::set<VarId>* out) {
  std::vector<VarId> vars;
  for (const Pattern& p : atom.args) p.CollectVars(&vars);
  out->insert(vars.begin(), vars.end());
}

std::vector<Pattern> VarPatterns(const std::vector<VarId>& vars) {
  std::vector<Pattern> out;
  out.reserve(vars.size());
  for (VarId v : vars) out.push_back(Pattern::Var(v));
  return out;
}

/// Patterns at the bound positions of `atom` under `adornment`.
std::vector<Pattern> BoundArgPatterns(const Atom& atom,
                                      const Adornment& adornment) {
  std::vector<Pattern> out;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (adornment[i]) out.push_back(atom.args[i]);
  }
  return out;
}

}  // namespace

std::string AnswerPredName(const std::string& base, const Adornment& a) {
  return base + "__" + AdornmentSuffix(a);
}

std::string InputPredName(const std::string& base, const Adornment& a) {
  return "in__" + base + "__" + AdornmentSuffix(a);
}

StatusOr<RewriteResult> QsqRewrite(const AdornedProgram& adorned,
                                   const RelId& query_rel,
                                   const Adornment& query_adornment,
                                   DatalogContext& ctx,
                                   const QsqOptions& options) {
  RewriteResult result;
  result.query_adornment = query_adornment;

  auto input_rel = [&](const RelId& rel, const Adornment& a) {
    uint32_t bound = static_cast<uint32_t>(
        std::count(a.begin(), a.end(), true));
    PredicateId pred = ctx.InternPredicate(
        InputPredName(ctx.PredicateName(rel.pred), a), bound);
    return RelId{pred, rel.peer};
  };
  auto answer_rel = [&](const RelId& rel, const Adornment& a) {
    PredicateId pred = ctx.InternPredicate(
        AnswerPredName(ctx.PredicateName(rel.pred), a),
        ctx.PredicateArity(rel.pred));
    return RelId{pred, rel.peer};
  };

  result.answer_rel = answer_rel(query_rel, query_adornment);
  result.input_rel = input_rel(query_rel, query_adornment);

  size_t sup_relations = 0;
  for (const AdornedRule& ar : adorned.rules) {
    const Rule& rule = *ar.rule;
    const size_t n = rule.body.size();
    const SymbolId head_peer = rule.head.rel.peer;
    sup_relations += n + 1;

    // bound_after[j]: variables bound before consuming body atom j
    // (j = n means after the whole body).
    std::vector<std::set<VarId>> bound_after(n + 1);
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      if (!ar.head_adornment[i]) continue;
      std::vector<VarId> vars;
      rule.head.args[i].CollectVars(&vars);
      bound_after[0].insert(vars.begin(), vars.end());
    }
    for (size_t j = 0; j < n; ++j) {
      bound_after[j + 1] = bound_after[j];
      CollectAtomVars(rule.body[j], &bound_after[j + 1]);
    }

    // Attach each disequality to the earliest sup position where both
    // operands are bound.
    std::vector<std::vector<const Diseq*>> attached(n + 1);
    for (const Diseq& d : rule.diseqs) {
      std::vector<VarId> vars;
      d.lhs.CollectVars(&vars);
      d.rhs.CollectVars(&vars);
      size_t pos = n;
      for (size_t j = 0; j <= n; ++j) {
        bool all_bound = true;
        for (VarId v : vars) {
          if (!bound_after[j].contains(v)) {
            all_bound = false;
            break;
          }
        }
        if (all_bound) {
          pos = j;
          break;
        }
      }
      attached[pos].push_back(&d);
    }

    // needed_after[j]: variables required at or after sup position j —
    // by later atoms, by the head, or by diseqs attached later.
    std::vector<std::set<VarId>> needed_after(n + 1);
    CollectAtomVars(rule.head, &needed_after[n]);
    for (const Diseq* d : attached[n]) {
      std::vector<VarId> vars;
      d->lhs.CollectVars(&vars);
      d->rhs.CollectVars(&vars);
      needed_after[n].insert(vars.begin(), vars.end());
    }
    for (size_t j = n; j-- > 0;) {
      needed_after[j] = needed_after[j + 1];
      CollectAtomVars(rule.body[j], &needed_after[j]);
      for (const Diseq* d : attached[j]) {
        std::vector<VarId> vars;
        d->lhs.CollectVars(&vars);
        d->rhs.CollectVars(&vars);
        needed_after[j].insert(vars.begin(), vars.end());
      }
    }

    // sup_vars[j]: schema of sup_{r,j}.
    std::vector<std::vector<VarId>> sup_vars(n + 1);
    for (size_t j = 0; j <= n; ++j) {
      if (options.project_relevant_vars) {
        std::set<VarId> keep;
        for (VarId v : bound_after[j]) {
          if (needed_after[j].contains(v)) keep.insert(v);
        }
        sup_vars[j] = SortedVars(keep);
      } else {
        sup_vars[j] = SortedVars(bound_after[j]);
      }
    }

    // sup_{r,j} relation ids. Placement: with atom j (its consumer), final
    // sup at the head's peer.
    const std::string tag =
        options.sup_prefix +
        (options.project_relevant_vars ? "sup" : "supall");
    auto sup_rel = [&](size_t j) {
      std::string name = tag + "__r" + std::to_string(ar.rule_index) + "__" +
                         AdornmentSuffix(ar.head_adornment) + "__" +
                         std::to_string(j);
      PredicateId pred = ctx.InternPredicate(
          name, static_cast<uint32_t>(sup_vars[j].size()));
      SymbolId peer = head_peer;
      if (options.distribute_sups && j < n) peer = rule.body[j].rel.peer;
      return RelId{pred, peer};
    };

    auto make_rule = [&](Atom head, std::vector<Atom> body,
                         const std::vector<const Diseq*>& diseqs) {
      Rule r;
      r.head = std::move(head);
      r.body = std::move(body);
      for (const Diseq* d : diseqs) r.diseqs.push_back(*d);
      r.num_vars = rule.num_vars;
      r.var_names = rule.var_names;
      result.program.rules.push_back(std::move(r));
    };

    // Rule A: sup_{r,0} from the input relation.
    {
      Atom in_atom;
      in_atom.rel = input_rel(rule.head.rel, ar.head_adornment);
      in_atom.args = BoundArgPatterns(rule.head, ar.head_adornment);
      Atom sup0{sup_rel(0), VarPatterns(sup_vars[0])};
      make_rule(sup0, {in_atom}, attached[0]);
    }

    // Rules B and C per body atom.
    for (size_t j = 0; j < n; ++j) {
      const Atom& bj = rule.body[j];
      Atom supj{sup_rel(j), VarPatterns(sup_vars[j])};
      if (ar.body_is_idb[j]) {
        // Rule B: feed the callee's input relation.
        Atom in_atom;
        in_atom.rel = input_rel(bj.rel, ar.body_adornments[j]);
        in_atom.args = BoundArgPatterns(bj, ar.body_adornments[j]);
        make_rule(in_atom, {supj}, {});
        // Rule C: join with the callee's answers.
        Atom ans{answer_rel(bj.rel, ar.body_adornments[j]), bj.args};
        Atom supj1{sup_rel(j + 1), VarPatterns(sup_vars[j + 1])};
        make_rule(supj1, {supj, ans}, attached[j + 1]);
      } else {
        // Rule C': join with the extensional relation directly.
        Atom supj1{sup_rel(j + 1), VarPatterns(sup_vars[j + 1])};
        make_rule(supj1, {supj, bj}, attached[j + 1]);
      }
    }

    // Rule D: answers.
    {
      Atom ans{answer_rel(rule.head.rel, ar.head_adornment), rule.head.args};
      Atom supn{sup_rel(n), VarPatterns(sup_vars[n])};
      make_rule(ans, {supn}, {});
    }
  }

  DQSQ_RETURN_IF_ERROR(ValidateProgram(result.program, ctx));

  Labels variant{{"variant", options.project_relevant_vars ? "qsq" : "qsq_allvars"}};
  CountMetric("datalog.qsq.rewrites", 1, variant);
  CountMetric("datalog.qsq.sup_relations", sup_relations, variant, "relations");
  CountMetric("datalog.qsq.rules_emitted", result.program.rules.size(), variant,
              "rules");
  return result;
}

}  // namespace dqsq
