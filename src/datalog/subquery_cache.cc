#include "datalog/subquery_cache.h"

#include <utility>

#include "common/metrics.h"

namespace dqsq {

SubqueryCache::SubqueryCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

bool SubqueryCache::Get(const std::string& key, std::string* value) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    CountMetric("datalog.subcache.misses");
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (value != nullptr) *value = it->second->value;
  ++hits_;
  CountMetric("datalog.subcache.hits");
  return true;
}

void SubqueryCache::Put(const std::string& key, std::string value) {
  const size_t entry_bytes = key.size() + value.size();
  auto it = index_.find(key);
  if (it != index_.end()) {
    // An update that alone busts the budget is applied and then swept out
    // by EvictToBudget (counted as both an eviction and a reject) — the
    // entry must not linger as an unevictable over-budget resident.
    if (entry_bytes > capacity_bytes_) {
      ++oversize_rejects_;
      CountMetric("datalog.subcache.oversize_rejects");
    }
    bytes_ -= it->second->key.size() + it->second->value.size();
    bytes_ += entry_bytes;
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    EvictToBudget();
    return;
  }
  if (entry_bytes > capacity_bytes_) {
    // Would evict everything and still not fit: drop the entry, but leave
    // an audit trail — a silent drop reads as a plain miss downstream.
    ++oversize_rejects_;
    CountMetric("datalog.subcache.oversize_rejects");
    return;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_.emplace(key, lru_.begin());
  bytes_ += entry_bytes;
  CountMetric("datalog.subcache.insertions");
  EvictToBudget();
}

void SubqueryCache::EvictToBudget() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.key.size() + victim.value.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    CountMetric("datalog.subcache.evictions");
  }
}

}  // namespace dqsq
