// Relation storage: a deduplicated, insertion-ordered set of ground tuples.
// Insertion order is what makes semi-naive evaluation cheap: the delta of a
// round is simply the suffix of rows appended since the previous round.
//
// The store is columnar (DESIGN.md, "Columnar relation storage"): tuples
// live both as struct-of-arrays columns (contiguous per-column scans for
// the join kernel) and as a row-major mirror (stable std::span row views
// for the snapshot codec, tuple shipping and dumps). Duplicate detection is
// a flat open-addressing table over full-tuple hashes; per-mask indices are
// runs of ascending row ids in a shared chunk pool (datalog/columnar.h).
// Nothing on the hot path allocates per tuple or per probe.
#ifndef DQSQ_DATALOG_RELATION_H_
#define DQSQ_DATALOG_RELATION_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "datalog/columnar.h"
#include "datalog/term.h"

namespace dqsq {

using Tuple = std::vector<TermId>;

class Relation {
 public:
  /// "No upper bound" sentinel for Probe's row range.
  static constexpr uint32_t kNoRowLimit = 0xffffffffu;

  explicit Relation(uint32_t arity) : arity_(arity), columns_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }

  /// Inserts `tuple` (size must equal arity). Returns true if new.
  /// (Header-inlined: this and Probe are the two hottest calls in
  /// evaluation; out-of-line versions cost a measurable call overhead.)
  bool Insert(std::span<const TermId> tuple) {
    uint64_t h = HashTermSpan(tuple);
    uint32_t row = static_cast<uint32_t>(num_rows_);
    bool inserted = dedup_.InsertIfAbsent(h, row, [&](uint32_t r) {
      return std::equal(tuple.begin(), tuple.end(), Row(r).begin());
    });
    if (!inserted) return false;
    row_major_.insert(row_major_.end(), tuple.begin(), tuple.end());
    for (uint32_t c = 0; c < arity_; ++c) columns_[c].push_back(tuple[c]);
    ++num_rows_;
    // Keep existing indices current: append the new row to its key's run
    // (single-column indices skip the mask walk; the hash sequence is the
    // same either way).
    for (auto& [mask, index] : indices_) {
      if (mask != 0 && (mask & (mask - 1)) == 0) {
        const std::vector<TermId>& col = columns_[SingleBitIndex(mask)];
        const TermId v = col[row];
        index.Add(HashTermSpan({&v, 1}), row,
                  [&](uint32_t first_row) { return col[first_row] == v; });
      } else {
        index.Add(MaskedHash(row, mask), row, [&](uint32_t first_row) {
          return MaskedRowsEqual(first_row, row, mask);
        });
      }
    }
    return true;
  }

  /// True iff `tuple` is present.
  bool Contains(std::span<const TermId> tuple) const {
    uint64_t h = HashTermSpan(tuple);
    return dedup_.Find(h, [&](uint32_t row) {
             return std::equal(tuple.begin(), tuple.end(), Row(row).begin());
           }) != FlatTupleSet::kNotFound;
  }

  /// Row `i` in insertion order (row-major mirror; the span stays valid
  /// across later Inserts up to reallocation — callers that insert while
  /// iterating must re-fetch or use At()).
  std::span<const TermId> Row(size_t i) const {
    return {row_major_.data() + i * arity_, arity_};
  }

  /// Column `c` of row `i` (struct-of-arrays read; safe to call while
  /// inserting because nothing is cached across calls).
  TermId At(size_t i, uint32_t c) const { return columns_[c][i]; }

  /// Column `c` as a contiguous span (invalidated by Insert).
  std::span<const TermId> Column(uint32_t c) const { return columns_[c]; }

  /// Pre-sizes storage (bulk-load paths: snapshot restore, fact copying).
  void Reserve(size_t rows);

  /// Rows whose columns selected by `mask` (bit c set = column c fixed)
  /// equal `key` (the fixed values, in ascending column order), intersected
  /// with the row range [lo, hi). Builds the index for `mask` on first use.
  ///
  /// The matching row ids are copied into `scratch` (cleared first) and the
  /// returned span views it, so the result is a snapshot: it stays valid —
  /// and unchanged — across subsequent Inserts and further index growth.
  /// Row ids are ascending (insertion order).
  std::span<const uint32_t> Probe(uint32_t mask, std::span<const TermId> key,
                                  std::vector<uint32_t>& scratch,
                                  uint32_t lo = 0, uint32_t hi = kNoRowLimit) {
    scratch.clear();
    RunIndex& index = GetIndex(mask);
    uint32_t run;
    if (mask != 0 && (mask & (mask - 1)) == 0) {
      // Single-column key (the common join shape): compare the column
      // value directly instead of walking the mask. Hash sequence is
      // identical to HashTermSpan over the one-element key.
      const TermId k0 = key[0];
      const std::vector<TermId>& col = columns_[SingleBitIndex(mask)];
      run = index.FindRun(HashTermSpan({&k0, 1}), [&](uint32_t first_row) {
        return col[first_row] == k0;
      });
    } else {
      run = index.FindRun(HashTermSpan(key), [&](uint32_t first_row) {
        return MaskedEquals(first_row, mask, key);
      });
    }
    if (run != RunIndex::kNoRun) index.CopyRun(run, lo, hi, scratch);
    return scratch;
  }

  /// Number of distinct indices built so far (introspection for tests).
  size_t num_indices() const { return indices_.size(); }

 private:
  static uint32_t SingleBitIndex(uint32_t mask) {
    return static_cast<uint32_t>(std::countr_zero(mask));
  }

  RunIndex& GetIndex(uint32_t mask) {
    for (auto& [m, index] : indices_) {
      if (m == mask) return index;
    }
    return BuildIndex(mask);
  }

  RunIndex& BuildIndex(uint32_t mask);

  /// True iff row `row`'s columns selected by `mask` equal `key`.
  bool MaskedEquals(uint32_t row, uint32_t mask,
                    std::span<const TermId> key) const;

  /// Hash of row `row` restricted to `mask`'s columns.
  uint64_t MaskedHash(uint32_t row, uint32_t mask) const;

  /// True iff rows `a` and `b` agree on `mask`'s columns.
  bool MaskedRowsEqual(uint32_t a, uint32_t b, uint32_t mask) const;

  uint32_t arity_;
  size_t num_rows_ = 0;  // tracked separately so arity 0 works
  std::vector<std::vector<TermId>> columns_;  // struct-of-arrays, [c][row]
  std::vector<TermId> row_major_;             // mirror for span row views
  FlatTupleSet dedup_;
  // Lazily built per-mask run indices; linear scan (a handful of masks per
  // relation, and a 4-entry vector beats any hash map at that size).
  std::vector<std::pair<uint32_t, RunIndex>> indices_;
};

}  // namespace dqsq

#endif  // DQSQ_DATALOG_RELATION_H_
