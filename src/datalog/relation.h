// Relation storage: a deduplicated, insertion-ordered set of ground tuples
// with lazily built hash indices keyed by column subsets. Insertion order is
// what makes semi-naive evaluation cheap: the delta of a round is simply the
// suffix of rows appended since the previous round.
#ifndef DQSQ_DATALOG_RELATION_H_
#define DQSQ_DATALOG_RELATION_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "datalog/term.h"

namespace dqsq {

using Tuple = std::vector<TermId>;

class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }

  /// Inserts `tuple` (size must equal arity). Returns true if new.
  bool Insert(std::span<const TermId> tuple);

  /// True iff `tuple` is present.
  bool Contains(std::span<const TermId> tuple) const;

  /// Row `i` in insertion order.
  std::span<const TermId> Row(size_t i) const {
    return {flat_.data() + i * arity_, arity_};
  }

  /// Rows whose columns selected by `mask` (bit c set = column c fixed)
  /// equal `key` (the fixed values, in ascending column order). Builds the
  /// index for `mask` on first use. Returns row indices.
  const std::vector<uint32_t>& Probe(uint32_t mask,
                                     std::span<const TermId> key);

  /// Number of distinct indices built so far (introspection for tests).
  size_t num_indices() const { return indices_.size(); }

 private:
  struct KeyHash {
    size_t operator()(const std::vector<TermId>& key) const;
  };
  using Index = std::unordered_map<std::vector<TermId>, std::vector<uint32_t>,
                                   KeyHash>;

  std::vector<TermId> KeyFor(size_t row, uint32_t mask) const;
  Index& GetIndex(uint32_t mask);

  uint32_t arity_;
  size_t num_rows_ = 0;  // flat_.size() / arity_, tracked so arity 0 works
  std::vector<TermId> flat_;
  // Dedup set: hashes full tuples, values are row indices.
  std::unordered_map<size_t, std::vector<uint32_t>> dedup_;
  std::unordered_map<uint32_t, Index> indices_;
  static const std::vector<uint32_t> kEmptyRows;
};

}  // namespace dqsq

#endif  // DQSQ_DATALOG_RELATION_H_
