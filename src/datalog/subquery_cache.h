// Cross-query subquery memoization. QSQ's win (paper §3.1/§3.2) is that a
// subquery posed twice is answered from the materialization the first call
// left behind — but that reuse is scoped to one database. SubqueryCache
// lifts it across databases: a byte-budgeted LRU map from a canonical
// subquery key (caller-defined; the diagnosis service keys on the
// per-peer observation prefix, which fully determines the versioned
// query's answers) to an opaque serialized answer blob. Sessions sharing
// one cache therefore share each other's demand-driven work — the
// memoization the paper sets up per query, made cross-session.
//
// Single-threaded like the rest of the evaluation core; hit/miss/eviction
// tallies also feed the global metrics registry under `datalog.subcache.*`.
#ifndef DQSQ_DATALOG_SUBQUERY_CACHE_H_
#define DQSQ_DATALOG_SUBQUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace dqsq {

class SubqueryCache {
 public:
  /// `capacity_bytes` bounds the resident total of key + value bytes;
  /// least-recently-used entries are evicted to stay under it. 0 disables
  /// caching entirely (every Get misses, Put is a no-op).
  explicit SubqueryCache(size_t capacity_bytes);

  SubqueryCache(const SubqueryCache&) = delete;
  SubqueryCache& operator=(const SubqueryCache&) = delete;

  /// Looks `key` up; on hit copies the cached blob into `*value` (if
  /// non-null), marks the entry most-recently-used and returns true.
  bool Get(const std::string& key, std::string* value);

  /// Inserts or replaces `key`, then evicts LRU entries until the byte
  /// budget holds again. An entry larger than the whole budget is not
  /// admitted.
  void Put(const std::string& key, std::string value);

  size_t entries() const { return index_.size(); }
  size_t bytes() const { return bytes_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  /// Puts whose entry alone exceeded the whole budget. A fresh key is
  /// dropped without touching resident entries; an update of an existing
  /// key is applied, then evicted by the budget sweep (both count here).
  uint64_t oversize_rejects() const { return oversize_rejects_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };

  void EvictToBudget();

  size_t capacity_bytes_;
  size_t bytes_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t oversize_rejects_ = 0;
};

}  // namespace dqsq

#endif  // DQSQ_DATALOG_SUBQUERY_CACHE_H_
