#include "datalog/join_kernel.h"

#include "common/logging.h"

namespace dqsq {

RulePlan CompileRulePlan(const Rule& rule, std::span<const VarId> initial_bound,
                         TermArena& arena) {
  RulePlan plan;
  plan.rule = &rule;
  plan.atoms.reserve(rule.body.size());
  // bound[v]: v is bound before the atom under compilation begins.
  std::vector<char> bound(rule.num_vars, 0);
  for (VarId v : initial_bound) bound[v] = 1;
  Substitution empty_subst;
  std::vector<VarId> vars;
  for (const Atom& atom : rule.body) {
    AtomPlan ap;
    ap.atom = &atom;
    const size_t ncols = atom.args.size();
    ap.adornment.reserve(ncols);
    // in_atom additionally tracks variables bound by earlier columns of
    // this same atom (a duplicate occurrence checks instead of binding).
    std::vector<char> in_atom = bound;
    for (uint32_t c = 0; c < ncols; ++c) {
      const Pattern& p = atom.args[c];
      vars.clear();
      p.CollectVars(&vars);
      bool bound_before = true;
      for (VarId v : vars) bound_before = bound_before && bound[v];
      ColStep step;
      step.col = c;
      if (bound_before) {
        if (vars.empty()) {
          step.kind = ColStep::Kind::kKeyConst;
          step.value = GroundPattern(p, empty_subst, arena);
        } else if (p.kind() == Pattern::Kind::kVar) {
          step.kind = ColStep::Kind::kKeyVar;
          step.var = p.var();
        } else {
          step.kind = ColStep::Kind::kKeyComplex;
          step.pattern = &p;
        }
        ap.key_steps.push_back(step);
        ap.adornment.push_back(true);
      } else {
        if (p.kind() == Pattern::Kind::kVar) {
          step.kind = in_atom[p.var()] ? ColStep::Kind::kCheckVar
                                       : ColStep::Kind::kBind;
          step.var = p.var();
        } else {
          step.kind = ColStep::Kind::kMatch;
          step.pattern = &p;
        }
        ap.row_steps.push_back(step);
        ap.adornment.push_back(false);
      }
      for (VarId v : vars) in_atom[v] = 1;
    }
    if (ncols <= 32) {
      for (const ColStep& s : ap.key_steps) ap.probe_mask |= 1u << s.col;
    }
    plan.atoms.push_back(std::move(ap));
    bound = std::move(in_atom);  // after the atom, all its variables bind
  }
  return plan;
}

namespace {

// Row steps for one candidate row. Returns false on mismatch; bindings it
// made stay on the trail for the caller's UndoTrail.
inline bool ApplyRowSteps(const AtomPlan& ap, const Relation& rel,
                          uint32_t row, const TermArena& arena,
                          JoinScratch& scratch) {
  for (const ColStep& s : ap.row_steps) {
    TermId value = rel.At(row, s.col);
    switch (s.kind) {
      case ColStep::Kind::kBind:
        scratch.subst[s.var] = value;
        scratch.trail.push_back(s.var);
        break;
      case ColStep::Kind::kCheckVar:
        if (scratch.subst[s.var] != value) return false;
        break;
      case ColStep::Kind::kMatch:
        if (!MatchPattern(*s.pattern, value, arena, scratch.subst,
                          scratch.trail)) {
          return false;
        }
        break;
      default:
        DQSQ_CHECK(false);  // key kinds never appear in row_steps
    }
  }
  return true;
}

Status JoinLevel(const RulePlan& plan, size_t pos, TermArena& arena,
                 JoinHost& host, const void* ctx, bool static_sources,
                 JoinScratch& scratch, size_t* probes) {
  if (pos == plan.atoms.size()) return host.OnMatch(plan, ctx, scratch);
  const AtomPlan& ap = plan.atoms[pos];
  JoinScratch::Level& level = scratch.levels[pos];

  // Key values for the bound columns, in column order. This doubles as the
  // probe key (mask columns ascend) and as QSQ's demanded input tuple.
  level.key.clear();
  for (const ColStep& s : ap.key_steps) {
    switch (s.kind) {
      case ColStep::Kind::kKeyConst:
        level.key.push_back(s.value);
        break;
      case ColStep::Kind::kKeyVar:
        level.key.push_back(scratch.subst[s.var]);
        break;
      default: {
        TermId t = TryGroundPattern(*s.pattern, scratch.subst, arena,
                                    scratch.ground_stack);
        DQSQ_DCHECK(t != kNoTerm);
        level.key.push_back(t);
        break;
      }
    }
  }

  JoinSource src;
  if (static_sources && level.src_valid) {
    src = level.src;
  } else {
    DQSQ_RETURN_IF_ERROR(host.ResolveSource(plan, pos, ctx, level.key, &src));
    if (static_sources) {
      level.src = src;
      level.src_valid = true;
    }
  }
  if (src.rel == nullptr || src.lo >= src.hi) return Status::Ok();
  Relation& rel = *src.rel;

  if (ap.probe_mask != 0) {
    // Memoized probe: when consecutive parent bindings share the join key,
    // the previous result still holds — the probed window is immutable
    // under appends. Probed rows are counted either way, exactly like the
    // tuple-at-a-time evaluator's per-candidate counting.
    bool hit = level.memo_valid && level.memo_rel == &rel &&
               level.memo_lo == src.lo && level.memo_hi == src.hi &&
               level.memo_key == level.key;
    if (!hit) {
      rel.Probe(ap.probe_mask, level.key, level.rows, src.lo, src.hi);
      level.memo_rel = &rel;
      level.memo_key = level.key;
      level.memo_lo = src.lo;
      level.memo_hi = src.hi;
      level.memo_valid = true;
    }
    if (probes != nullptr) *probes += level.rows.size();
    for (size_t i = 0; i < level.rows.size(); ++i) {
      uint32_t row = level.rows[i];
      size_t mark = scratch.trail.size();
      Status s = Status::Ok();
      if (ApplyRowSteps(ap, rel, row, arena, scratch)) {
        s = JoinLevel(plan, pos + 1, arena, host, ctx, static_sources,
                      scratch, probes);
      }
      UndoTrail(scratch.subst, scratch.trail, mark);
      DQSQ_RETURN_IF_ERROR(s);
    }
    return Status::Ok();
  }

  // Scan: no usable index (nothing bound, or arity > 32). Key columns, if
  // any, are checked by direct value comparison — equivalent to matching
  // the ground pattern, since ground terms are hash-consed.
  if (probes != nullptr) *probes += src.hi - src.lo;
  for (uint32_t row = src.lo; row < src.hi; ++row) {
    bool key_ok = true;
    size_t k = 0;
    for (const ColStep& s : ap.key_steps) {
      if (rel.At(row, s.col) != level.key[k++]) {
        key_ok = false;
        break;
      }
    }
    if (!key_ok) continue;
    size_t mark = scratch.trail.size();
    Status s = Status::Ok();
    if (ApplyRowSteps(ap, rel, row, arena, scratch)) {
      s = JoinLevel(plan, pos + 1, arena, host, ctx, static_sources,
                    scratch, probes);
    }
    UndoTrail(scratch.subst, scratch.trail, mark);
    DQSQ_RETURN_IF_ERROR(s);
  }
  return Status::Ok();
}

}  // namespace

Status ExecuteRulePlan(const RulePlan& plan, TermArena& arena, JoinHost& host,
                       const void* ctx, JoinScratch& scratch, size_t* probes) {
  DQSQ_DCHECK(scratch.levels.size() >= plan.atoms.size());
  return JoinLevel(plan, 0, arena, host, ctx, host.SourcesAreStatic(),
                   scratch, probes);
}

}  // namespace dqsq
