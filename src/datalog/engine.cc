#include "datalog/engine.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/metrics.h"
#include "datalog/adornment.h"
#include "datalog/magic_rewrite.h"
#include "datalog/qsqr.h"

namespace dqsq {

std::string StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kSemiNaive:
      return "seminaive";
    case Strategy::kMagic:
      return "magic";
    case Strategy::kQsq:
      return "qsq";
    case Strategy::kQsqAllVars:
      return "qsq_allvars";
    case Strategy::kQsqIterative:
      return "qsqr";
  }
  return "unknown";
}

void CopyFacts(const Database& src, Database& dst) {
  for (const RelId& rel : src.Relations()) {
    const Relation* r = src.Find(rel);
    // Only materialize non-empty relations in dst (empty ones must stay
    // absent: Relations() feeds SaveState, which is byte-stability pinned).
    if (r->size() > 0) dst.GetOrCreate(rel).Reserve(r->size());
    for (size_t i = 0; i < r->size(); ++i) dst.Insert(rel, r->Row(i));
  }
}

size_t CountRelationFacts(const Database& db, const std::string& base) {
  const std::string prefix = base + "__";
  return db.CountFactsMatching([&](const std::string& name) {
    return name == base ||
           (name.size() > prefix.size() &&
            name.compare(0, prefix.size(), prefix) == 0);
  });
}

namespace {

bool IsIdbRel(const Program& program, const RelId& rel) {
  for (const Rule& r : program.rules) {
    if (r.head.rel == rel) return true;
  }
  return false;
}

size_t CountRels(const Database& db, const std::vector<RelId>& rels) {
  size_t total = 0;
  for (const RelId& rel : rels) {
    const Relation* r = db.Find(rel);
    if (r != nullptr) total += r->size();
  }
  return total;
}

}  // namespace

namespace {

// Registry accounting shared by every strategy branch of SolveQuery.
void RecordQueryMetrics(Strategy strategy, const QueryResult& result) {
  auto& registry = MetricsRegistry::Global();
  Labels labels{{"strategy", StrategyName(strategy)}};
  registry.GetCounter("datalog.solve.queries", labels).Increment();
  registry.GetCounter("datalog.solve.answers", labels, "rows")
      .Increment(result.answers.size());
  registry.GetCounter("datalog.solve.derived_facts", labels, "facts")
      .Increment(result.derived_facts);
  registry.GetCounter("datalog.solve.answer_facts", labels, "facts")
      .Increment(result.answer_facts);
  registry.GetCounter("datalog.solve.aux_facts", labels, "facts")
      .Increment(result.aux_facts);
}

}  // namespace

StatusOr<QueryResult> SolveQuery(const Program& program, Database& db,
                                 const ParsedQuery& query, Strategy strategy,
                                 const EvalOptions& options) {
  DQSQ_RETURN_IF_ERROR(ValidateProgram(program, db.ctx()));
  ScopedTimer timer(
      TimeMetric("datalog.solve.wall_ns",
                 Labels{{"strategy", StrategyName(strategy)}}));
  QueryResult result;
  const size_t facts_before = db.TotalFacts();

  if (!IsIdbRel(program, query.atom.rel)) {
    // Purely extensional query: nothing to derive.
    result.answers = Ask(db, query.atom, query.num_vars);
    RecordQueryMetrics(strategy, result);
    return result;
  }

  switch (strategy) {
    case Strategy::kQsqIterative: {
      DQSQ_ASSIGN_OR_RETURN(QsqrResult qsqr,
                            QsqrSolve(program, db, query, options));
      result.answers = std::move(qsqr.answers);
      result.derived_facts = db.TotalFacts() - facts_before;
      result.answer_facts = qsqr.answer_facts;
      result.aux_facts = qsqr.input_facts;
      RecordQueryMetrics(strategy, result);
      return result;
    }
    case Strategy::kNaive:
    case Strategy::kSemiNaive: {
      EvalOptions opts = options;
      opts.seminaive = (strategy == Strategy::kSemiNaive);
      DQSQ_ASSIGN_OR_RETURN(result.eval, Evaluate(program, db, opts));
      result.answers = Ask(db, query.atom, query.num_vars);
      result.derived_facts = db.TotalFacts() - facts_before;
      result.answer_facts = CountRels(db, IdbRelations(program));
      result.aux_facts = 0;
      RecordQueryMetrics(strategy, result);
      return result;
    }
    case Strategy::kMagic:
    case Strategy::kQsq:
    case Strategy::kQsqAllVars: {
      for (const Rule& rule : program.rules) {
        if (!rule.negative.empty()) {
          return UnimplementedError(
              "magic/QSQ rewriting supports positive programs only (see "
              "paper Remark 4; negated programs run bottom-up, stratified)");
        }
      }
      Adornment adornment = QueryAdornment(query.atom);
      DQSQ_ASSIGN_OR_RETURN(
          AdornedProgram adorned,
          AdornProgram(program, query.atom.rel, adornment));
      RewriteResult rewrite;
      if (strategy == Strategy::kMagic) {
        DQSQ_ASSIGN_OR_RETURN(
            rewrite, MagicRewrite(adorned, query.atom.rel, adornment,
                                  db.ctx()));
      } else {
        QsqOptions qopts;
        qopts.project_relevant_vars = (strategy == Strategy::kQsq);
        DQSQ_ASSIGN_OR_RETURN(
            rewrite, QsqRewrite(adorned, query.atom.rel, adornment, db.ctx(),
                                qopts));
      }

      // Seed the input relation with the query's bound arguments.
      std::vector<TermId> seed;
      for (size_t i = 0; i < query.atom.args.size(); ++i) {
        if (!adornment[i]) continue;
        seed.push_back(
            GroundPattern(query.atom.args[i], Substitution(), db.ctx().arena()));
      }
      db.Insert(rewrite.input_rel, seed);

      EvalOptions opts = options;
      opts.seminaive = true;
      DQSQ_ASSIGN_OR_RETURN(result.eval,
                            Evaluate(rewrite.program, db, opts));

      Atom answer_query{rewrite.answer_rel, query.atom.args};
      result.answers = Ask(db, answer_query, query.num_vars);
      result.derived_facts = db.TotalFacts() - facts_before;

      std::vector<RelId> answer_rels;
      for (const auto& [rel, a] : adorned.call_patterns) {
        PredicateId pred;
        if (db.ctx().LookupPredicate(
                AnswerPredName(db.ctx().PredicateName(rel.pred), a), &pred)) {
          answer_rels.push_back(RelId{pred, rel.peer});
        }
      }
      result.answer_facts = CountRels(db, answer_rels);
      result.aux_facts = result.derived_facts - result.answer_facts;
      RecordQueryMetrics(strategy, result);
      return result;
    }
  }
  return InternalError("unknown strategy");
}

}  // namespace dqsq
