// Binding patterns ("adornments", paper §3.1) and the left-to-right
// sideways-information-passing pass that adorns a program for a query.
// An argument position is bound (b) when every variable in it is already
// bound, free (f) otherwise; constants are always bound. The adorned
// program is the common input of the QSQ and magic-set rewritings.
#ifndef DQSQ_DATALOG_ADORNMENT_H_
#define DQSQ_DATALOG_ADORNMENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace dqsq {

using Adornment = std::vector<bool>;  // true = bound

/// "bf" notation for an adornment.
std::string AdornmentSuffix(const Adornment& adornment);

/// Computes the adornment of `atom` given the currently bound variables.
Adornment AdornAtom(const Atom& atom, const std::vector<bool>& bound_vars);

/// One rule of the adorned program: the original rule plus the head
/// adornment and, for each body atom, its adornment and IDB flag (EDB atoms
/// are never adorned).
struct AdornedRule {
  const Rule* rule = nullptr;
  size_t rule_index = 0;  // index into the source program
  Adornment head_adornment;
  std::vector<Adornment> body_adornments;
  std::vector<bool> body_is_idb;
};

struct AdornedProgram {
  std::vector<AdornedRule> rules;
  /// All (relation, adornment) call patterns reachable from the query.
  std::vector<std::pair<RelId, Adornment>> call_patterns;
};

/// Adorns `program` for a call to `query_rel` with `query_adornment`,
/// exploring exactly the call patterns reachable from the query
/// (left-to-right SIP). Fails if the query relation has no rules and is not
/// extensional-only (callers treat pure-EDB queries directly).
StatusOr<AdornedProgram> AdornProgram(const Program& program,
                                      const RelId& query_rel,
                                      const Adornment& query_adornment);

/// The adornment induced by a query atom: positions with ground patterns
/// are bound.
Adornment QueryAdornment(const Atom& query);

}  // namespace dqsq

#endif  // DQSQ_DATALOG_ADORNMENT_H_
