#include "datalog/qsqr.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/metrics.h"
#include "datalog/adornment.h"
#include "datalog/qsq_rewrite.h"

namespace dqsq {

namespace {

class QsqrEngine {
 public:
  QsqrEngine(const Program& program, Database& db,
             const EvalOptions& options)
      : program_(program), db_(db), options_(options) {}

  StatusOr<QsqrResult> Run(const ParsedQuery& query) {
    // Index rules by head relation.
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      const RelId& rel = program_.rules[i].head.rel;
      rules_by_head_[{rel.pred, rel.peer}].push_back(i);
    }

    // Seed the query's call pattern.
    Adornment adornment = QueryAdornment(query.atom);
    std::vector<TermId> seed;
    for (size_t i = 0; i < query.atom.args.size(); ++i) {
      if (!adornment[i]) continue;
      seed.push_back(GroundPattern(query.atom.args[i], Substitution(),
                                   db_.ctx().arena()));
    }
    RelId query_rel = query.atom.rel;
    DQSQ_RETURN_IF_ERROR(AddInput(query_rel, adornment, seed));

    // Global restart loop: recursive processing joins against answer
    // tables that may still be growing, so re-process every input until
    // nothing changes (the classical QSQR iteration).
    QsqrResult result;
    for (;;) {
      if (++result.passes > options_.max_rounds) {
        return ResourceExhaustedError("QSQR exceeded max_rounds");
      }
      changed_ = false;
      // Patterns may be added while iterating: index-stable loop.
      for (size_t p = 0; p < patterns_.size(); ++p) {
        Pattern_ pat = patterns_[p];  // copy: vector may grow
        const Relation* in = db_.Find(pat.input);
        if (in == nullptr) continue;
        for (size_t row = 0; row < in->size(); ++row) {
          auto r = in->Row(row);
          DQSQ_RETURN_IF_ERROR(ProcessInput(
              pat, std::vector<TermId>(r.begin(), r.end())));
        }
      }
      if (!changed_) break;
    }

    // Extract answers for the query pattern.
    PatternKey key{query_rel.pred, query_rel.peer, adornment};
    Atom answer_atom{pattern_by_key_.at(key).answers, query.atom.args};
    result.answers = Ask(db_, answer_atom, query.num_vars);
    for (const Pattern_& pat : patterns_) {
      const Relation* ans = db_.Find(pat.answers);
      const Relation* in = db_.Find(pat.input);
      if (ans != nullptr) result.answer_facts += ans->size();
      if (in != nullptr) result.input_facts += in->size();
    }

    CountMetric("datalog.qsqr.runs");
    CountMetric("datalog.qsqr.passes", result.passes, {}, "passes");
    CountMetric("datalog.qsqr.call_patterns", patterns_.size(), {}, "patterns");
    CountMetric("datalog.qsqr.input_facts", result.input_facts, {}, "facts");
    CountMetric("datalog.qsqr.answer_facts", result.answer_facts, {}, "facts");
    return result;
  }

 private:
  struct PatternKey {
    PredicateId pred;
    SymbolId peer;
    Adornment adornment;
    friend bool operator<(const PatternKey& a, const PatternKey& b) {
      if (a.pred != b.pred) return a.pred < b.pred;
      if (a.peer != b.peer) return a.peer < b.peer;
      return a.adornment < b.adornment;
    }
  };
  struct Pattern_ {
    RelId rel;
    Adornment adornment;
    RelId input;    // in__R__<a>
    RelId answers;  // R__<a>
  };

  bool IsIdb(const RelId& rel) const {
    return rules_by_head_.contains({rel.pred, rel.peer});
  }

  /// Registers the call pattern (idempotent) and inserts one input tuple.
  /// New tuples are processed immediately (recursive QSQ).
  Status AddInput(const RelId& rel, const Adornment& adornment,
                  const std::vector<TermId>& tuple) {
    PatternKey key{rel.pred, rel.peer, adornment};
    auto it = pattern_by_key_.find(key);
    if (it == pattern_by_key_.end()) {
      Pattern_ pat;
      pat.rel = rel;
      pat.adornment = adornment;
      const std::string& base = db_.ctx().PredicateName(rel.pred);
      uint32_t bound = static_cast<uint32_t>(
          std::count(adornment.begin(), adornment.end(), true));
      pat.input = RelId{
          db_.ctx().InternPredicate(InputPredName(base, adornment), bound),
          rel.peer};
      pat.answers = RelId{db_.ctx().InternPredicate(
                              AnswerPredName(base, adornment),
                              db_.ctx().PredicateArity(rel.pred)),
                          rel.peer};
      it = pattern_by_key_.emplace(key, pat).first;
      patterns_.push_back(pat);
    }
    if (db_.Insert(it->second.input, tuple)) {
      changed_ = true;
      DQSQ_RETURN_IF_ERROR(CheckBudget());
      DQSQ_RETURN_IF_ERROR(ProcessInput(it->second, tuple));
    }
    return Status::Ok();
  }

  Status ProcessInput(const Pattern_& pattern,
                      const std::vector<TermId>& input) {
    auto rules = rules_by_head_.find({pattern.rel.pred, pattern.rel.peer});
    if (rules == rules_by_head_.end()) return Status::Ok();
    for (size_t rule_index : rules->second) {
      const Rule& rule = program_.rules[rule_index];
      Substitution subst(rule.num_vars, kNoTerm);
      std::vector<VarId> trail;
      // Bind the bound head positions against the input tuple.
      bool ok = true;
      size_t next = 0;
      for (size_t i = 0; i < rule.head.args.size() && ok; ++i) {
        if (!pattern.adornment[i]) continue;
        ok = MatchPattern(rule.head.args[i], input[next++],
                          db_.ctx().arena(), subst, trail);
      }
      if (ok) {
        DQSQ_RETURN_IF_ERROR(
            EvalBody(rule, pattern, 0, subst, trail));
      }
      UndoTrail(subst, trail, 0);
    }
    return Status::Ok();
  }

  Status EvalBody(const Rule& rule, const Pattern_& pattern, size_t pos,
                  Substitution& subst, std::vector<VarId>& trail) {
    if (pos == rule.body.size()) {
      for (const Diseq& d : rule.diseqs) {
        TermId lhs = GroundPattern(d.lhs, subst, db_.ctx().arena());
        TermId rhs = GroundPattern(d.rhs, subst, db_.ctx().arena());
        if (lhs == rhs) return Status::Ok();
      }
      std::vector<TermId> tuple;
      for (const Pattern& p : rule.head.args) {
        TermId t = GroundPattern(p, subst, db_.ctx().arena());
        if (options_.max_term_depth > 0 &&
            db_.ctx().arena().Depth(t) > options_.max_term_depth) {
          if (options_.depth_policy == EvalOptions::DepthPolicy::kError) {
            return ResourceExhaustedError("term depth budget exceeded");
          }
          return Status::Ok();
        }
        tuple.push_back(t);
      }
      if (db_.Insert(pattern.answers, tuple)) {
        changed_ = true;
        DQSQ_RETURN_IF_ERROR(CheckBudget());
      }
      return Status::Ok();
    }

    const Atom& atom = rule.body[pos];
    RelId source = atom.rel;
    if (IsIdb(atom.rel)) {
      // Compute the call adornment from the current bindings and demand
      // the subquery; then join against its (current) answer table.
      Adornment a;
      std::vector<TermId> bound_args;
      for (const Pattern& p : atom.args) {
        TermId t = TryGroundPattern(p, subst, db_.ctx().arena());
        a.push_back(t != kNoTerm);
        if (t != kNoTerm) bound_args.push_back(t);
      }
      DQSQ_RETURN_IF_ERROR(AddInput(atom.rel, a, bound_args));
      PatternKey key{atom.rel.pred, atom.rel.peer, a};
      source = pattern_by_key_.at(key).answers;
    }

    Relation* rel = db_.FindMutable(source);
    if (rel == nullptr) return Status::Ok();
    // Index probe on the ground columns.
    uint32_t mask = 0;
    std::vector<TermId> probe_key;
    if (atom.args.size() <= 32) {
      for (size_t c = 0; c < atom.args.size(); ++c) {
        TermId t = TryGroundPattern(atom.args[c], subst, db_.ctx().arena());
        if (t != kNoTerm) {
          mask |= (1u << c);
          probe_key.push_back(t);
        }
      }
    }
    auto try_row = [&](size_t row) -> Status {
      auto values = rel->Row(row);
      size_t mark = trail.size();
      bool ok = true;
      for (size_t c = 0; c < atom.args.size(); ++c) {
        if (!MatchPattern(atom.args[c], values[c], db_.ctx().arena(), subst,
                          trail)) {
          ok = false;
          break;
        }
      }
      Status s = Status::Ok();
      if (ok) s = EvalBody(rule, pattern, pos + 1, subst, trail);
      UndoTrail(subst, trail, mark);
      return s;
    };
    // Copy row ids: recursive subqueries may grow the relation.
    if (mask != 0) {
      std::vector<uint32_t> rows = rel->Probe(mask, probe_key);
      for (uint32_t row : rows) DQSQ_RETURN_IF_ERROR(try_row(row));
    } else {
      size_t n = rel->size();
      for (size_t row = 0; row < n; ++row) {
        DQSQ_RETURN_IF_ERROR(try_row(row));
      }
    }
    return Status::Ok();
  }

  Status CheckBudget() {
    if (db_.TotalFacts() > options_.max_facts) {
      return ResourceExhaustedError("QSQR exceeded max_facts");
    }
    return Status::Ok();
  }

  const Program& program_;
  Database& db_;
  const EvalOptions& options_;
  std::map<std::pair<uint32_t, uint32_t>, std::vector<size_t>> rules_by_head_;
  std::map<PatternKey, Pattern_> pattern_by_key_;
  std::vector<Pattern_> patterns_;
  bool changed_ = false;
};

}  // namespace

StatusOr<QsqrResult> QsqrSolve(const Program& program, Database& db,
                               const ParsedQuery& query,
                               const EvalOptions& options) {
  DQSQ_RETURN_IF_ERROR(ValidateProgram(program, db.ctx()));
  for (const Rule& rule : program.rules) {
    if (!rule.negative.empty()) {
      return UnimplementedError("QSQR supports positive programs only");
    }
  }
  QsqrEngine engine(program, db, options);
  return engine.Run(query);
}

}  // namespace dqsq
