#include "datalog/qsqr.h"

#include <algorithm>
#include <map>
#include <memory>

#include "common/logging.h"
#include "common/metrics.h"
#include "datalog/adornment.h"
#include "datalog/join_kernel.h"
#include "datalog/qsq_rewrite.h"

namespace dqsq {

namespace {

class QsqrEngine : public JoinHost {
 public:
  QsqrEngine(const Program& program, Database& db,
             const EvalOptions& options)
      : program_(program), db_(db), options_(options) {}

  StatusOr<QsqrResult> Run(const ParsedQuery& query) {
    // Index rules by head relation.
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      const RelId& rel = program_.rules[i].head.rel;
      rules_by_head_[{rel.pred, rel.peer}].push_back(i);
    }

    // Seed the query's call pattern.
    Adornment adornment = QueryAdornment(query.atom);
    std::vector<TermId> seed;
    for (size_t i = 0; i < query.atom.args.size(); ++i) {
      if (!adornment[i]) continue;
      seed.push_back(GroundPattern(query.atom.args[i], Substitution(),
                                   db_.ctx().arena()));
    }
    RelId query_rel = query.atom.rel;
    DQSQ_RETURN_IF_ERROR(AddInput(query_rel, adornment, seed));

    // Global restart loop: recursive processing joins against answer
    // tables that may still be growing, so re-process every input until
    // nothing changes (the classical QSQR iteration).
    QsqrResult result;
    Tuple row_copy;
    for (;;) {
      if (++result.passes > options_.max_rounds) {
        return ResourceExhaustedError("QSQR exceeded max_rounds");
      }
      changed_ = false;
      // Patterns may be added while iterating: index-stable loop.
      for (size_t p = 0; p < patterns_.size(); ++p) {
        Pattern_ pat = patterns_[p];  // copy: vector may grow
        const Relation* in = db_.Find(pat.input);
        if (in == nullptr) continue;
        for (size_t row = 0; row < in->size(); ++row) {
          // Copy the row: recursive processing can grow the input relation
          // and reallocate the storage under the span.
          auto r = in->Row(row);
          row_copy.assign(r.begin(), r.end());
          DQSQ_RETURN_IF_ERROR(ProcessInput(pat, row_copy));
        }
      }
      if (!changed_) break;
    }

    // Extract answers for the query pattern.
    PatternKey key{query_rel.pred, query_rel.peer, adornment};
    Atom answer_atom{pattern_by_key_.at(key).answers, query.atom.args};
    result.answers = Ask(db_, answer_atom, query.num_vars);
    for (const Pattern_& pat : patterns_) {
      const Relation* ans = db_.Find(pat.answers);
      const Relation* in = db_.Find(pat.input);
      if (ans != nullptr) result.answer_facts += ans->size();
      if (in != nullptr) result.input_facts += in->size();
    }

    CountMetric("datalog.qsqr.runs");
    CountMetric("datalog.qsqr.passes", result.passes, {}, "passes");
    CountMetric("datalog.qsqr.call_patterns", patterns_.size(), {}, "patterns");
    CountMetric("datalog.qsqr.input_facts", result.input_facts, {}, "facts");
    CountMetric("datalog.qsqr.answer_facts", result.answer_facts, {}, "facts");
    return result;
  }

 private:
  struct PatternKey {
    PredicateId pred;
    SymbolId peer;
    Adornment adornment;
    friend bool operator<(const PatternKey& a, const PatternKey& b) {
      if (a.pred != b.pred) return a.pred < b.pred;
      if (a.peer != b.peer) return a.peer < b.peer;
      return a.adornment < b.adornment;
    }
  };
  struct Pattern_ {
    RelId rel;
    Adornment adornment;
    RelId input;    // in__R__<a>
    RelId answers;  // R__<a>
  };

  bool IsIdb(const RelId& rel) const {
    return rules_by_head_.contains({rel.pred, rel.peer});
  }

  /// Registers the call pattern (idempotent) and inserts one input tuple.
  /// New tuples are processed immediately (recursive QSQ).
  Status AddInput(const RelId& rel, const Adornment& adornment,
                  std::span<const TermId> tuple) {
    PatternKey key{rel.pred, rel.peer, adornment};
    auto it = pattern_by_key_.find(key);
    if (it == pattern_by_key_.end()) {
      Pattern_ pat;
      pat.rel = rel;
      pat.adornment = adornment;
      const std::string& base = db_.ctx().PredicateName(rel.pred);
      uint32_t bound = static_cast<uint32_t>(
          std::count(adornment.begin(), adornment.end(), true));
      pat.input = RelId{
          db_.ctx().InternPredicate(InputPredName(base, adornment), bound),
          rel.peer};
      pat.answers = RelId{db_.ctx().InternPredicate(
                              AnswerPredName(base, adornment),
                              db_.ctx().PredicateArity(rel.pred)),
                          rel.peer};
      it = pattern_by_key_.emplace(key, pat).first;
      patterns_.push_back(pat);
    }
    if (db_.Insert(it->second.input, tuple)) {
      changed_ = true;
      DQSQ_RETURN_IF_ERROR(CheckBudget());
      DQSQ_RETURN_IF_ERROR(ProcessInput(it->second, tuple));
    }
    return Status::Ok();
  }

  /// The compiled body plan for `rule_index` called with `adornment` (the
  /// initial bound set is the variables of the adorned head positions).
  const RulePlan& PlanFor(size_t rule_index, const Adornment& adornment) {
    auto key = std::make_pair(rule_index, adornment);
    auto it = plans_.find(key);
    if (it != plans_.end()) return it->second;
    const Rule& rule = program_.rules[rule_index];
    std::vector<VarId> initial_bound;
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      if (i < adornment.size() && adornment[i]) {
        rule.head.args[i].CollectVars(&initial_bound);
      }
    }
    return plans_
        .emplace(std::move(key),
                 CompileRulePlan(rule, initial_bound, db_.ctx().arena()))
        .first->second;
  }

  Status ProcessInput(const Pattern_& pattern,
                      std::span<const TermId> input) {
    auto rules = rules_by_head_.find({pattern.rel.pred, pattern.rel.peer});
    if (rules == rules_by_head_.end()) return Status::Ok();
    // Nested executions (recursive subqueries demanded while a body is
    // mid-join) each need their own scratch: index a pool by depth.
    size_t depth = depth_++;
    if (scratch_pool_.size() <= depth) {
      scratch_pool_.push_back(std::make_unique<JoinScratch>());
    }
    JoinScratch& scratch = *scratch_pool_[depth];
    Status status = Status::Ok();
    for (size_t rule_index : rules->second) {
      const Rule& rule = program_.rules[rule_index];
      const RulePlan& plan = PlanFor(rule_index, pattern.adornment);
      scratch.Prepare(rule.num_vars, rule.body.size());
      // Bind the bound head positions against the input tuple.
      bool ok = true;
      size_t next = 0;
      for (size_t i = 0; i < rule.head.args.size() && ok; ++i) {
        if (!pattern.adornment[i]) continue;
        ok = MatchPattern(rule.head.args[i], input[next++],
                          db_.ctx().arena(), scratch.subst, scratch.trail);
      }
      if (ok) {
        status = ExecuteRulePlan(plan, db_.ctx().arena(), *this, &pattern,
                                 scratch, /*probes=*/nullptr);
        if (!status.ok()) break;
      }
    }
    --depth_;
    return status;
  }

  Status ResolveSource(const RulePlan& plan, size_t pos, const void* /*ctx*/,
                       std::span<const TermId> key, Source* out) override {
    const AtomPlan& ap = plan.atoms[pos];
    const Atom& atom = *ap.atom;
    RelId source = atom.rel;
    if (IsIdb(atom.rel)) {
      // The key values of the bound columns are exactly the call's bound
      // arguments: demand the subquery, then join against its (current)
      // answer table.
      DQSQ_RETURN_IF_ERROR(AddInput(atom.rel, ap.adornment, key));
      PatternKey pkey{atom.rel.pred, atom.rel.peer, ap.adornment};
      source = pattern_by_key_.at(pkey).answers;
    }
    Relation* rel = db_.FindMutable(source);
    out->rel = rel;
    out->lo = 0;
    // Snapshot the extent: rows inserted by recursive subqueries below
    // this scan are picked up by the global restart loop, as before.
    out->hi = rel == nullptr ? 0 : static_cast<uint32_t>(rel->size());
    return Status::Ok();
  }

  Status OnMatch(const RulePlan& plan, const void* ctx,
                 JoinScratch& scratch) override {
    const Rule& rule = *plan.rule;
    const Pattern_& pattern = *static_cast<const Pattern_*>(ctx);
    for (const Diseq& d : rule.diseqs) {
      TermId lhs = GroundPattern(d.lhs, scratch.subst, db_.ctx().arena(),
                                 scratch.ground_stack);
      TermId rhs = GroundPattern(d.rhs, scratch.subst, db_.ctx().arena(),
                                 scratch.ground_stack);
      if (lhs == rhs) return Status::Ok();
    }
    scratch.tuple.clear();
    for (const Pattern& p : rule.head.args) {
      TermId t = GroundPattern(p, scratch.subst, db_.ctx().arena(),
                               scratch.ground_stack);
      if (options_.max_term_depth > 0 &&
          db_.ctx().arena().Depth(t) > options_.max_term_depth) {
        if (options_.depth_policy == EvalOptions::DepthPolicy::kError) {
          return ResourceExhaustedError("term depth budget exceeded");
        }
        return Status::Ok();
      }
      scratch.tuple.push_back(t);
    }
    if (db_.Insert(pattern.answers, scratch.tuple)) {
      changed_ = true;
      DQSQ_RETURN_IF_ERROR(CheckBudget());
    }
    return Status::Ok();
  }

  Status CheckBudget() {
    if (db_.TotalFacts() > options_.max_facts) {
      return ResourceExhaustedError("QSQR exceeded max_facts");
    }
    return Status::Ok();
  }

  const Program& program_;
  Database& db_;
  const EvalOptions& options_;
  std::map<std::pair<uint32_t, uint32_t>, std::vector<size_t>> rules_by_head_;
  std::map<PatternKey, Pattern_> pattern_by_key_;
  std::vector<Pattern_> patterns_;
  std::map<std::pair<size_t, Adornment>, RulePlan> plans_;
  std::vector<std::unique_ptr<JoinScratch>> scratch_pool_;
  size_t depth_ = 0;
  bool changed_ = false;
};

}  // namespace

StatusOr<QsqrResult> QsqrSolve(const Program& program, Database& db,
                               const ParsedQuery& query,
                               const EvalOptions& options) {
  DQSQ_RETURN_IF_ERROR(ValidateProgram(program, db.ctx()));
  for (const Rule& rule : program.rules) {
    if (!rule.negative.empty()) {
      return UnimplementedError("QSQR supports positive programs only");
    }
  }
  QsqrEngine engine(program, db, options);
  return engine.Run(query);
}

}  // namespace dqsq
