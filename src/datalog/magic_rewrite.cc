#include "datalog/magic_rewrite.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace dqsq {

namespace {

std::vector<Pattern> BoundArgPatterns(const Atom& atom,
                                      const Adornment& adornment) {
  std::vector<Pattern> out;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (adornment[i]) out.push_back(atom.args[i]);
  }
  return out;
}

}  // namespace

StatusOr<RewriteResult> MagicRewrite(const AdornedProgram& adorned,
                                     const RelId& query_rel,
                                     const Adornment& query_adornment,
                                     DatalogContext& ctx) {
  RewriteResult result;
  result.query_adornment = query_adornment;

  auto magic_rel = [&](const RelId& rel, const Adornment& a) {
    uint32_t bound =
        static_cast<uint32_t>(std::count(a.begin(), a.end(), true));
    PredicateId pred = ctx.InternPredicate(
        "magic__" + ctx.PredicateName(rel.pred) + "__" + AdornmentSuffix(a),
        bound);
    return RelId{pred, rel.peer};
  };
  auto answer_rel = [&](const RelId& rel, const Adornment& a) {
    PredicateId pred = ctx.InternPredicate(
        AnswerPredName(ctx.PredicateName(rel.pred), a),
        ctx.PredicateArity(rel.pred));
    return RelId{pred, rel.peer};
  };

  result.answer_rel = answer_rel(query_rel, query_adornment);
  result.input_rel = magic_rel(query_rel, query_adornment);

  for (const AdornedRule& ar : adorned.rules) {
    const Rule& rule = *ar.rule;

    // Shared prefix builder: magic guard + body atoms < j (IDB atoms
    // replaced by their adorned answer relations).
    auto prefix = [&](size_t upto) {
      std::vector<Atom> body;
      Atom guard;
      guard.rel = magic_rel(rule.head.rel, ar.head_adornment);
      guard.args = BoundArgPatterns(rule.head, ar.head_adornment);
      body.push_back(std::move(guard));
      for (size_t j = 0; j < upto; ++j) {
        const Atom& bj = rule.body[j];
        if (ar.body_is_idb[j]) {
          body.push_back(
              Atom{answer_rel(bj.rel, ar.body_adornments[j]), bj.args});
        } else {
          body.push_back(bj);
        }
      }
      return body;
    };

    // Magic rules: one per IDB body atom.
    for (size_t j = 0; j < rule.body.size(); ++j) {
      if (!ar.body_is_idb[j]) continue;
      const Atom& bj = rule.body[j];
      Rule magic;
      magic.head.rel = magic_rel(bj.rel, ar.body_adornments[j]);
      magic.head.args = BoundArgPatterns(bj, ar.body_adornments[j]);
      magic.body = prefix(j);
      magic.num_vars = rule.num_vars;
      magic.var_names = rule.var_names;
      // Diseqs whose operands are bound within the prefix prune early.
      std::set<VarId> bound;
      for (const Atom& a : magic.body) {
        std::vector<VarId> vars;
        for (const Pattern& p : a.args) p.CollectVars(&vars);
        bound.insert(vars.begin(), vars.end());
      }
      for (const Diseq& d : rule.diseqs) {
        std::vector<VarId> vars;
        d.lhs.CollectVars(&vars);
        d.rhs.CollectVars(&vars);
        bool all = true;
        for (VarId v : vars) all = all && bound.contains(v);
        if (all) magic.diseqs.push_back(d);
      }
      result.program.rules.push_back(std::move(magic));
    }

    // Modified rule: guarded original with IDB atoms answering through
    // their adorned relations.
    Rule modified;
    modified.head =
        Atom{answer_rel(rule.head.rel, ar.head_adornment), rule.head.args};
    modified.body = prefix(rule.body.size());
    modified.diseqs = rule.diseqs;
    modified.num_vars = rule.num_vars;
    modified.var_names = rule.var_names;
    result.program.rules.push_back(std::move(modified));
  }

  DQSQ_RETURN_IF_ERROR(ValidateProgram(result.program, ctx));
  return result;
}

}  // namespace dqsq
