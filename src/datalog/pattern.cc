#include "datalog/pattern.h"

#include "common/logging.h"

namespace dqsq {

Pattern Pattern::Var(VarId var) {
  Pattern p;
  p.kind_ = Kind::kVar;
  p.id_ = var;
  return p;
}

Pattern Pattern::Const(SymbolId symbol) {
  Pattern p;
  p.kind_ = Kind::kConst;
  p.id_ = symbol;
  return p;
}

Pattern Pattern::App(SymbolId fn, std::vector<Pattern> args) {
  Pattern p;
  p.kind_ = Kind::kApp;
  p.id_ = fn;
  p.args_ = std::move(args);
  return p;
}

bool Pattern::IsGround() const {
  switch (kind_) {
    case Kind::kVar:
      return false;
    case Kind::kConst:
      return true;
    case Kind::kApp:
      for (const Pattern& a : args_) {
        if (!a.IsGround()) return false;
      }
      return true;
  }
  return false;
}

void Pattern::CollectVars(std::vector<VarId>* vars) const {
  switch (kind_) {
    case Kind::kVar:
      vars->push_back(id_);
      return;
    case Kind::kConst:
      return;
    case Kind::kApp:
      for (const Pattern& a : args_) a.CollectVars(vars);
      return;
  }
}

bool Pattern::FullyBoundBy(const std::vector<TermId>& subst) const {
  switch (kind_) {
    case Kind::kVar:
      return id_ < subst.size() && subst[id_] != kNoTerm;
    case Kind::kConst:
      return true;
    case Kind::kApp:
      for (const Pattern& a : args_) {
        if (!a.FullyBoundBy(subst)) return false;
      }
      return true;
  }
  return false;
}

std::string Pattern::ToString(
    const SymbolTable& symbols,
    const std::vector<std::string>* var_names) const {
  switch (kind_) {
    case Kind::kVar:
      if (var_names != nullptr && id_ < var_names->size()) {
        return (*var_names)[id_];
      }
      return "V" + std::to_string(id_);
    case Kind::kConst:
      return symbols.Name(id_);
    case Kind::kApp: {
      std::string out = symbols.Name(id_);
      out += "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ",";
        out += args_[i].ToString(symbols, var_names);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

bool operator==(const Pattern& a, const Pattern& b) {
  if (a.kind_ != b.kind_ || a.id_ != b.id_) return false;
  return a.args_ == b.args_;
}

bool MatchPattern(const Pattern& pattern, TermId ground,
                  const TermArena& arena, Substitution& subst,
                  std::vector<VarId>& trail) {
  switch (pattern.kind()) {
    case Pattern::Kind::kVar: {
      VarId v = pattern.var();
      DQSQ_DCHECK(v < subst.size());
      if (subst[v] == kNoTerm) {
        subst[v] = ground;
        trail.push_back(v);
        return true;
      }
      return subst[v] == ground;
    }
    case Pattern::Kind::kConst:
      return arena.IsConstant(ground) && arena.Symbol(ground) == pattern.symbol();
    case Pattern::Kind::kApp: {
      if (!arena.IsApp(ground) || arena.Symbol(ground) != pattern.symbol()) {
        return false;
      }
      auto args = arena.Args(ground);
      if (args.size() != pattern.args().size()) return false;
      for (size_t i = 0; i < args.size(); ++i) {
        if (!MatchPattern(pattern.args()[i], args[i], arena, subst, trail)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

void UndoTrail(Substitution& subst, std::vector<VarId>& trail, size_t mark) {
  while (trail.size() > mark) {
    subst[trail.back()] = kNoTerm;
    trail.pop_back();
  }
}

TermId GroundPattern(const Pattern& pattern, const Substitution& subst,
                     TermArena& arena) {
  TermId t = TryGroundPattern(pattern, subst, arena);
  DQSQ_CHECK_NE(t, kNoTerm);
  return t;
}

TermId TryGroundPattern(const Pattern& pattern, const Substitution& subst,
                        TermArena& arena, std::vector<TermId>& stack) {
  switch (pattern.kind()) {
    case Pattern::Kind::kVar: {
      VarId v = pattern.var();
      if (v >= subst.size()) return kNoTerm;
      return subst[v];
    }
    case Pattern::Kind::kConst:
      return arena.MakeConstant(pattern.symbol());
    case Pattern::Kind::kApp: {
      size_t base = stack.size();
      for (const Pattern& a : pattern.args()) {
        TermId t = TryGroundPattern(a, subst, arena, stack);
        if (t == kNoTerm) {
          stack.resize(base);
          return kNoTerm;
        }
        stack.push_back(t);
      }
      TermId r = arena.MakeApp(
          pattern.symbol(),
          std::span<const TermId>(stack.data() + base, stack.size() - base));
      stack.resize(base);
      return r;
    }
  }
  return kNoTerm;
}

TermId GroundPattern(const Pattern& pattern, const Substitution& subst,
                     TermArena& arena, std::vector<TermId>& stack) {
  TermId t = TryGroundPattern(pattern, subst, arena, stack);
  DQSQ_CHECK_NE(t, kNoTerm);
  return t;
}

TermId TryGroundPattern(const Pattern& pattern, const Substitution& subst,
                        TermArena& arena) {
  switch (pattern.kind()) {
    case Pattern::Kind::kVar: {
      VarId v = pattern.var();
      if (v >= subst.size()) return kNoTerm;
      return subst[v];
    }
    case Pattern::Kind::kConst:
      return arena.MakeConstant(pattern.symbol());
    case Pattern::Kind::kApp: {
      std::vector<TermId> args;
      args.reserve(pattern.args().size());
      for (const Pattern& a : pattern.args()) {
        TermId t = TryGroundPattern(a, subst, arena);
        if (t == kNoTerm) return kNoTerm;
        args.push_back(t);
      }
      return arena.MakeApp(pattern.symbol(), args);
    }
  }
  return kNoTerm;
}

}  // namespace dqsq
