// Patterns are terms with variables, as they appear in rule heads and
// bodies. Variables are rule-local slots (dense indices); a Substitution
// assigns ground TermIds to slots. Bottom-up evaluation only ever matches
// patterns against ground facts, so one-way matching (plus grounding)
// suffices — full unification is not needed.
#ifndef DQSQ_DATALOG_PATTERN_H_
#define DQSQ_DATALOG_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/symbol_table.h"
#include "datalog/term.h"

namespace dqsq {

using VarId = uint32_t;

/// A pattern: variable slot, constant, or function application over patterns.
class Pattern {
 public:
  enum class Kind : uint8_t { kVar, kConst, kApp };

  static Pattern Var(VarId var);
  static Pattern Const(SymbolId symbol);
  static Pattern App(SymbolId fn, std::vector<Pattern> args);

  Kind kind() const { return kind_; }
  VarId var() const { return id_; }
  SymbolId symbol() const { return id_; }
  const std::vector<Pattern>& args() const { return args_; }

  /// True iff the pattern contains no variables.
  bool IsGround() const;

  /// Appends every variable occurring in the pattern to `vars`.
  void CollectVars(std::vector<VarId>* vars) const;

  /// True iff every variable of the pattern is bound in `subst`.
  bool FullyBoundBy(const std::vector<TermId>& subst) const;

  /// Renders the pattern; variables print via `var_names` when provided.
  std::string ToString(const SymbolTable& symbols,
                       const std::vector<std::string>* var_names) const;

  friend bool operator==(const Pattern& a, const Pattern& b);

 private:
  Kind kind_ = Kind::kConst;
  uint32_t id_ = 0;  // VarId for kVar, SymbolId for kConst/kApp
  std::vector<Pattern> args_;
};

/// A substitution maps variable slots to ground terms; kNoTerm = unbound.
using Substitution = std::vector<TermId>;

/// Matches `pattern` against the ground term `ground`, extending `subst`
/// in place. On failure `subst` may be partially extended — callers keep an
/// undo mark (`subst` trail) or copy; the evaluator uses a trail.
/// `trail` records the slots bound during this call so they can be undone.
bool MatchPattern(const Pattern& pattern, TermId ground,
                  const TermArena& arena, Substitution& subst,
                  std::vector<VarId>& trail);

/// Undoes bindings recorded in `trail` past `mark`.
void UndoTrail(Substitution& subst, std::vector<VarId>& trail, size_t mark);

/// Grounds `pattern` under `subst` (every variable must be bound),
/// interning new applications in `arena`.
TermId GroundPattern(const Pattern& pattern, const Substitution& subst,
                     TermArena& arena);

/// Grounds `pattern` if all its variables are bound; returns kNoTerm
/// otherwise (used for index-key extraction).
TermId TryGroundPattern(const Pattern& pattern, const Substitution& subst,
                        TermArena& arena);

/// Allocation-free variants for the join hot path: nested application
/// arguments are staged in `stack` (a reusable buffer, restored to its
/// entry size before returning) instead of a per-call vector.
TermId TryGroundPattern(const Pattern& pattern, const Substitution& subst,
                        TermArena& arena, std::vector<TermId>& stack);
TermId GroundPattern(const Pattern& pattern, const Substitution& subst,
                     TermArena& arena, std::vector<TermId>& stack);

}  // namespace dqsq

#endif  // DQSQ_DATALOG_PATTERN_H_
