#include "datalog/term.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace dqsq {

const TermArena::Node& TermArena::node(TermId term) const {
  DQSQ_DCHECK(term < nodes_.size());
  return nodes_[term];
}

size_t TermArena::HashKey(bool is_app, SymbolId symbol,
                          std::span<const TermId> args) const {
  size_t seed = is_app ? 0x517cc1b727220a95ULL : 0x2545f4914f6cdd1dULL;
  HashCombine(seed, symbol);
  for (TermId a : args) HashCombine(seed, a);
  return seed;
}

bool TermArena::KeyEquals(TermId term, bool is_app, SymbolId symbol,
                          std::span<const TermId> args) const {
  const Node& n = node(term);
  if (n.is_app != is_app || n.symbol != symbol || n.num_args != args.size()) {
    return false;
  }
  return std::equal(args.begin(), args.end(), args_.begin() + n.first_arg);
}

TermId TermArena::MakeConstant(SymbolId symbol) {
  size_t h = HashKey(/*is_app=*/false, symbol, {});
  auto [lo, hi] = intern_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (KeyEquals(it->second, false, symbol, {})) return it->second;
  }
  TermId id = static_cast<TermId>(nodes_.size());
  nodes_.push_back(Node{symbol, 0, 0, /*is_app=*/false, /*depth=*/1});
  intern_.emplace(h, id);
  return id;
}

TermId TermArena::MakeApp(SymbolId fn, std::span<const TermId> args) {
  size_t h = HashKey(/*is_app=*/true, fn, args);
  auto [lo, hi] = intern_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (KeyEquals(it->second, true, fn, args)) return it->second;
  }
  uint32_t depth = 1;
  for (TermId a : args) depth = std::max(depth, node(a).depth + 1);
  TermId id = static_cast<TermId>(nodes_.size());
  uint32_t first = static_cast<uint32_t>(args_.size());
  args_.insert(args_.end(), args.begin(), args.end());
  nodes_.push_back(Node{fn, first, static_cast<uint16_t>(args.size()),
                        /*is_app=*/true, depth});
  intern_.emplace(h, id);
  return id;
}

std::span<const TermId> TermArena::Args(TermId term) const {
  const Node& n = node(term);
  return {args_.data() + n.first_arg, n.num_args};
}

std::string TermArena::ToString(TermId term, const SymbolTable& symbols) const {
  const Node& n = node(term);
  std::string out = symbols.Name(n.symbol);
  if (n.is_app) {
    out += "(";
    auto args = Args(term);
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ",";
      out += ToString(args[i], symbols);
    }
    out += ")";
  }
  return out;
}

}  // namespace dqsq
