// Query answering over a (d)Datalog program with a selectable strategy:
// naive / semi-naive bottom-up over the whole program, or demand-driven
// magic-sets / QSQ evaluation of the rewritten program. The per-strategy
// materialization statistics are the measure behind the paper's
// optimization claims (E1/E2).
#ifndef DQSQ_DATALOG_ENGINE_H_
#define DQSQ_DATALOG_ENGINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/eval.h"
#include "datalog/parser.h"
#include "datalog/qsq_rewrite.h"

namespace dqsq {

enum class Strategy {
  kNaive,         // bottom-up, full re-join every round
  kSemiNaive,     // bottom-up, delta-driven
  kMagic,         // magic-sets rewriting + semi-naive
  kQsq,           // QSQ rewriting + semi-naive (the paper's §3.1)
  kQsqAllVars,    // QSQ without relevant-variable projection (E7 ablation)
  kQsqIterative,  // top-down recursive QSQR (Vieille's original form)
};

std::string StrategyName(Strategy strategy);

struct QueryResult {
  /// Bindings of the query atom's variables (columns in ascending
  /// variable-slot order), deduplicated and sorted.
  std::vector<Tuple> answers;
  EvalStats eval;
  /// All facts derived by the evaluation (excludes the extensional input).
  size_t derived_facts = 0;
  /// Facts in the (adorned) answer relations — the relation contents a
  /// user of the original program observes.
  size_t answer_facts = 0;
  /// Bookkeeping facts (sup/in/magic relations); 0 for naive strategies.
  size_t aux_facts = 0;
};

/// Answers `query` against `program` + the extensional facts already in
/// `db`. Derived facts are added to `db`; pass a scratch copy when the
/// extensional database must stay clean (see CopyFacts).
StatusOr<QueryResult> SolveQuery(const Program& program, Database& db,
                                 const ParsedQuery& query, Strategy strategy,
                                 const EvalOptions& options = {});

/// Copies every fact of `src` into `dst` (both must share the context).
void CopyFacts(const Database& src, Database& dst);

/// Counts facts whose predicate is `base` or an adorned variant
/// "base__<adornment>" — materialization of one original relation across
/// strategies.
size_t CountRelationFacts(const Database& db, const std::string& base);

}  // namespace dqsq

#endif  // DQSQ_DATALOG_ENGINE_H_
