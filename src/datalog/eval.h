// Bottom-up evaluation of (d)Datalog programs to a fixpoint, in naive or
// semi-naive mode. Because dDatalog allows function symbols (paper §3), the
// least model may be infinite; evaluation therefore carries budgets
// (rounds, facts, term depth) and either prunes too-deep derivations —
// yielding the depth-bounded fixpoint used by the naive baselines — or
// reports resource exhaustion.
#ifndef DQSQ_DATALOG_EVAL_H_
#define DQSQ_DATALOG_EVAL_H_

#include <cstdint>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/database.h"

namespace dqsq {

struct EvalOptions {
  /// Fixpoint iteration cap; exceeded => RESOURCE_EXHAUSTED.
  size_t max_rounds = 100000;
  /// Total-fact cap across the database; exceeded => RESOURCE_EXHAUSTED.
  size_t max_facts = 50'000'000;
  /// Ground-term depth cap (0 = unlimited).
  uint32_t max_term_depth = 0;
  enum class DepthPolicy {
    kPrune,  // drop derivations whose head exceeds the depth cap
    kError,  // fail the evaluation instead
  };
  DepthPolicy depth_policy = DepthPolicy::kPrune;
  /// Semi-naive (delta-driven) or naive (full re-join each round).
  bool seminaive = true;
  /// Test hook invoked after each fixpoint round's rule evaluation (before
  /// the fixpoint check), with the layer-local round number. Raw function
  /// pointer + context so installing it costs no allocation; the
  /// steady-state zero-allocation test keys on this.
  void (*round_hook)(void* ctx, size_t round) = nullptr;
  void* round_hook_ctx = nullptr;
};

/// Per-call evaluation counters. Every field is also accumulated into the
/// process-wide MetricsRegistry under `datalog.eval.*` (docs/METRICS.md);
/// this struct remains the per-invocation view.
struct EvalStats {
  size_t rounds = 0;
  size_t facts_derived = 0;  // new facts inserted by this evaluation
  size_t rule_firings = 0;   // successful full body matches
  size_t join_probes = 0;    // candidate rows examined
  size_t depth_pruned = 0;   // derivations dropped by the depth cap
};

/// Runs `program` over `db` (which already holds the extensional facts)
/// until fixpoint or budget exhaustion. Derived facts are inserted into
/// `db`, keyed by their (predicate, peer) relation id — i.e. evaluation of a
/// distributed program is evaluation of its global translation P^g.
StatusOr<EvalStats> Evaluate(const Program& program, Database& db,
                             const EvalOptions& options);

/// Returns the bindings of `query`'s variables over the current database
/// (one Tuple per match, columns in variable-slot order given by
/// `query_vars`, the sorted distinct variables of the atom).
std::vector<Tuple> Ask(Database& db, const Atom& query, uint32_t num_vars);

}  // namespace dqsq

#endif  // DQSQ_DATALOG_EVAL_H_
