#include "datalog/database.h"

#include <algorithm>

#include "common/logging.h"

namespace dqsq {

Relation& Database::GetOrCreate(const RelId& rel) {
  auto it = relations_.find(rel);
  if (it != relations_.end()) return it->second;
  uint32_t arity = ctx_->PredicateArity(rel.pred);
  return relations_.emplace(rel, Relation(arity)).first->second;
}

const Relation* Database::Find(const RelId& rel) const {
  auto it = relations_.find(rel);
  return it == relations_.end() ? nullptr : &it->second;
}

Relation* Database::FindMutable(const RelId& rel) {
  auto it = relations_.find(rel);
  return it == relations_.end() ? nullptr : &it->second;
}

bool Database::Insert(const RelId& rel, std::span<const TermId> tuple) {
  return GetOrCreate(rel).Insert(tuple);
}

void Database::InsertByName(std::string_view pred,
                            const std::vector<std::string>& constants) {
  PredicateId pid = ctx_->InternPredicate(
      pred, static_cast<uint32_t>(constants.size()));
  std::vector<TermId> tuple;
  tuple.reserve(constants.size());
  for (const std::string& c : constants) tuple.push_back(ctx_->Constant(c));
  Insert(RelId{pid, ctx_->local_peer()}, tuple);
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& [rel, relation] : relations_) total += relation.size();
  return total;
}

size_t Database::CountFactsMatching(
    const std::function<bool(const std::string&)>& filter) const {
  size_t total = 0;
  for (const auto& [rel, relation] : relations_) {
    if (filter(ctx_->PredicateName(rel.pred))) total += relation.size();
  }
  return total;
}

std::vector<RelId> Database::Relations() const {
  std::vector<RelId> out;
  out.reserve(relations_.size());
  for (const auto& [rel, relation] : relations_) out.push_back(rel);
  return out;
}

std::string Database::Dump() const {
  std::vector<std::string> lines;
  for (const auto& [rel, relation] : relations_) {
    std::string prefix = ctx_->PredicateName(rel.pred);
    if (rel.peer != ctx_->local_peer()) {
      prefix += "@" + ctx_->symbols().Name(rel.peer);
    }
    for (size_t i = 0; i < relation.size(); ++i) {
      std::string line = prefix + "(";
      auto row = relation.Row(i);
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) line += ",";
        line += ctx_->arena().ToString(row[c], ctx_->symbols());
      }
      line += ")";
      lines.push_back(std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

}  // namespace dqsq
