// Text syntax for dDatalog programs, used by tests, examples and docs.
//
//   path@r(X, Y) :- edge@r(X, Y).
//   path@r(X, Y) :- edge@r(X, Z), path@r(Z, Y), X != Y.
//   edge@r(a, b).                        % a fact
//   node(f(X, c1)) :- src(X).            % function terms in any position
//
// Conventions: identifiers starting with an uppercase letter or '_' are
// variables; other identifiers and quoted strings ("1") are constants;
// an identifier directly followed by '(' in argument position is a function
// symbol; "pred@peer(...)" locates an atom, plain "pred(...)" lives at the
// context's local peer. '%' starts a line comment.
#ifndef DQSQ_DATALOG_PARSER_H_
#define DQSQ_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/ast.h"

namespace dqsq {

/// A parsed query atom with its variable environment.
struct ParsedQuery {
  Atom atom;
  uint32_t num_vars = 0;
  std::vector<std::string> var_names;
};

/// Parses a whole program (rules and facts).
StatusOr<Program> ParseProgram(std::string_view text, DatalogContext& ctx);

/// Parses a single atom (e.g. "path@r(a, Y)") for use as a query.
StatusOr<ParsedQuery> ParseQuery(std::string_view text, DatalogContext& ctx);

}  // namespace dqsq

#endif  // DQSQ_DATALOG_PARSER_H_
