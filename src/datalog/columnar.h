// Columnar building blocks for Relation (see DESIGN.md, "Columnar relation
// storage"): a flat open-addressing dedup table over full-tuple hashes and a
// per-mask secondary index that stores, for every distinct key, the run of
// row ids carrying that key. Both structures are plain flat arrays — no
// heap-allocated keys, no per-node allocation — so steady-state probing and
// duplicate detection touch only contiguous memory.
//
// The run index keeps each key's rows as a chain of fixed-size chunks in a
// shared pool, appended in insertion order. Row ids within a run are
// therefore ascending, which is what lets callers slice a run against the
// semi-naive delta window [lo, hi) and preserves the evaluator's historical
// emission order exactly.
#ifndef DQSQ_DATALOG_COLUMNAR_H_
#define DQSQ_DATALOG_COLUMNAR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "datalog/term.h"

namespace dqsq {

/// Hash of a tuple of term ids (FNV-1a over the 32-bit values with a final
/// avalanche). Shared by the dedup table and the run indices.
inline uint64_t HashTermSpan(std::span<const TermId> tuple) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (TermId v : tuple) h = (h ^ v) * 0x100000001b3ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h;
}

/// Open-addressing set of row ids keyed by full-tuple hash. The table
/// stores (row, hash32) pairs only; tuple equality is delegated to the
/// caller (which owns the tuple storage), so no keys are ever copied onto
/// the heap.
class FlatTupleSet {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  /// Row previously inserted under `hash` whose tuple satisfies `eq`, or
  /// kNotFound. `eq(row)` must compare the candidate row against the key.
  template <typename Eq>
  uint32_t Find(uint64_t hash, Eq&& eq) const {
    if (slots_.empty()) return kNotFound;
    const uint32_t h32 = Fold(hash);
    size_t mask = slots_.size() - 1;
    for (size_t i = h32 & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (slot.row == kEmpty) return kNotFound;
      if (slot.hash == h32 && eq(slot.row)) return slot.row;
    }
  }

  /// Records `row` under `hash`. The caller has already established the
  /// tuple is absent. Grows (by doubling) past 5/8 load.
  void Insert(uint64_t hash, uint32_t row) {
    if ((size_ + 1) * 8 > slots_.size() * 5) Grow();
    Place(Fold(hash), row);
    ++size_;
  }

  /// Single-probe find-or-insert: records `row` under `hash` unless a row
  /// satisfying `eq` is already present. Returns true if inserted (the
  /// dedup hot path: one probe sequence instead of Find-then-Insert).
  template <typename Eq>
  bool InsertIfAbsent(uint64_t hash, uint32_t row, Eq&& eq) {
    if ((size_ + 1) * 8 > slots_.size() * 5) Grow();
    const uint32_t h32 = Fold(hash);
    size_t mask = slots_.size() - 1;
    for (size_t i = h32 & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.row == kEmpty) {
        slot = Slot{row, h32};
        ++size_;
        return true;
      }
      if (slot.hash == h32 && eq(slot.row)) return false;
    }
  }

  size_t size() const { return size_; }

  void Reserve(size_t rows) {
    size_t cap = 16;
    while (rows * 8 > cap * 5) cap *= 2;
    if (cap > slots_.size()) Rehash(cap);
  }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;
  struct Slot {
    uint32_t row = kEmpty;
    uint32_t hash = 0;
  };

  static uint32_t Fold(uint64_t hash) {
    return static_cast<uint32_t>(hash ^ (hash >> 32));
  }

  void Place(uint32_t h32, uint32_t row) {
    size_t mask = slots_.size() - 1;
    size_t i = h32 & mask;
    while (slots_[i].row != kEmpty) i = (i + 1) & mask;
    slots_[i] = Slot{row, h32};
  }

  void Grow() { Rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void Rehash(size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    for (const Slot& slot : old) {
      if (slot.row != kEmpty) Place(slot.hash, slot.row);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

/// Secondary index for one column mask: maps a key (the fixed column
/// values) to the run of row ids carrying it. Runs live in a shared chunk
/// pool; the key itself is never stored — lookups compare against the
/// run's first row, whose columns spell the key out.
class RunIndex {
 public:
  static constexpr uint32_t kNoRun = 0xffffffffu;

  /// Run whose key hashes to `hash` and satisfies `eq(first_row)`, or
  /// kNoRun.
  template <typename Eq>
  uint32_t FindRun(uint64_t hash, Eq&& eq) const {
    if (slots_.empty()) return kNoRun;
    const uint32_t h32 = static_cast<uint32_t>(hash ^ (hash >> 32));
    size_t mask = slots_.size() - 1;
    for (size_t i = h32 & mask;; i = (i + 1) & mask) {
      uint32_t run = slots_[i];
      if (run == kNoRun) return kNoRun;
      if (runs_[run].hash == h32 && eq(runs_[run].first_row)) return run;
    }
  }

  /// Appends `row` to the run of its key (`hash` + `eq`), creating the run
  /// on first sight. Rows must be appended in ascending order (they are:
  /// the caller indexes an insertion-ordered relation).
  template <typename Eq>
  void Add(uint64_t hash, uint32_t row, Eq&& eq) {
    uint32_t run = FindRun(hash, eq);
    if (run == kNoRun) {
      run = NewRun(hash, row);
    }
    AppendToRun(run, row);
  }

  /// Appends the run's row ids intersected with [lo, hi) to `out`, in
  /// ascending order. Returns the number of rows appended. Semi-naive
  /// delta probes window the tail of long runs, so whole chunks below the
  /// window are skipped with one comparison and runs entirely outside the
  /// window (the common "key exists but has no delta rows" case) are
  /// rejected without touching the chunk pool at all.
  size_t CopyRun(uint32_t run, uint32_t lo, uint32_t hi,
                 std::vector<uint32_t>& out) const {
    const Run& r = runs_[run];
    if (r.last_row < lo || r.first_row >= hi) return 0;
    size_t before = out.size();
    for (uint32_t c = r.head; c != kNoChunk; c = chunks_[c].next) {
      const Chunk& chunk = chunks_[c];
      if (chunk.rows[chunk.used - 1] < lo) continue;  // chunk below window
      for (uint32_t i = 0; i < chunk.used; ++i) {
        uint32_t row = chunk.rows[i];
        if (row < lo) continue;
        if (row >= hi) return out.size() - before;
        out.push_back(row);
      }
    }
    return out.size() - before;
  }

  size_t num_runs() const { return runs_.size(); }

  /// Pre-sizes the slot table for up to `keys` distinct keys (bulk build).
  void ReserveRuns(size_t keys) {
    size_t cap = slots_.empty() ? 16 : slots_.size();
    while ((keys + 1) * 4 > cap * 3) cap *= 2;
    if (cap > slots_.size()) Rehash(cap);
  }

 private:
  static constexpr uint32_t kNoChunk = 0xffffffffu;
  // 14 rows + next + used = 16 u32 = one 64-byte line per chunk.
  static constexpr uint32_t kChunkRows = 14;
  struct Run {
    uint32_t head;
    uint32_t tail;
    uint32_t count;
    uint32_t first_row;
    uint32_t last_row;
    uint32_t hash;
  };
  struct Chunk {
    uint32_t rows[kChunkRows];
    uint32_t next;
    uint32_t used;
  };

  uint32_t NewRun(uint64_t hash, uint32_t first_row) {
    const uint32_t h32 = static_cast<uint32_t>(hash ^ (hash >> 32));
    if ((runs_.size() + 1) * 4 > slots_.size() * 3) Grow();
    uint32_t run = static_cast<uint32_t>(runs_.size());
    runs_.push_back(Run{kNoChunk, kNoChunk, 0, first_row, first_row, h32});
    size_t mask = slots_.size() - 1;
    size_t i = h32 & mask;
    while (slots_[i] != kNoRun) i = (i + 1) & mask;
    slots_[i] = run;
    return run;
  }

  void AppendToRun(uint32_t run, uint32_t row) {
    Run& r = runs_[run];
    if (r.tail == kNoChunk || chunks_[r.tail].used == kChunkRows) {
      uint32_t c = static_cast<uint32_t>(chunks_.size());
      chunks_.push_back(Chunk{{}, kNoChunk, 0});
      if (r.tail == kNoChunk) {
        r.head = c;
      } else {
        chunks_[r.tail].next = c;
      }
      r.tail = c;
    }
    Chunk& chunk = chunks_[r.tail];
    chunk.rows[chunk.used++] = row;
    r.last_row = row;
    ++r.count;
  }

  void Grow() { Rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void Rehash(size_t cap) {
    slots_.assign(cap, kNoRun);
    size_t mask = cap - 1;
    for (uint32_t run = 0; run < runs_.size(); ++run) {
      size_t i = runs_[run].hash & mask;
      while (slots_[i] != kNoRun) i = (i + 1) & mask;
      slots_[i] = run;
    }
  }

  std::vector<uint32_t> slots_;  // open addressing: run id or kNoRun
  std::vector<Run> runs_;
  std::vector<Chunk> chunks_;
};

/// Bulk-builds `index` for `mask` over the first `num_rows` rows of
/// `columns` (struct-of-arrays, one vector per column). A single columnar
/// pass per masked column folds the key hashes, then rows are appended to
/// their runs in ascending order — the exact state incremental maintenance
/// via RunIndex::Add would have produced.
void BuildRunIndex(std::span<const std::vector<TermId>> columns,
                   size_t num_rows, uint32_t mask, RunIndex& index);

}  // namespace dqsq

#endif  // DQSQ_DATALOG_COLUMNAR_H_
