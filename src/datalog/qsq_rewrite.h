// The Query-Sub-Query rewriting (paper §3.1, Fig. 4). For each adorned rule
// it introduces a chain of supplementary relations sup_{r,0..n} holding the
// bindings relevant at each body position, an input relation in_R^a feeding
// bound arguments into the rules of R^a, and an answer relation R^a. The
// rewritten program is evaluated bottom-up (semi-naive): the in_/sup_ flow
// realizes the top-down propagation of bindings, so only demanded facts
// materialize.
//
// Distribution (paper §3.2, Fig. 5) is purely a matter of relation
// placement: sup_{r,j} is located at the peer of body atom j+1 so each
// rewritten rule joins relations of a single peer, and a rule whose head
// lives elsewhere models the shipped "remainder" of rule (†). The rewriting
// of a rule uses only that rule — each peer can rewrite its own rules with
// local knowledge, which is the paper's dQSQ locality claim.
#ifndef DQSQ_DATALOG_QSQ_REWRITE_H_
#define DQSQ_DATALOG_QSQ_REWRITE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/adornment.h"
#include "datalog/ast.h"

namespace dqsq {

struct RewriteResult {
  Program program;
  /// Answer relation of the query's call pattern (e.g. R^bf@p).
  RelId answer_rel;
  /// Input relation to seed with the query's bound arguments (in_R^bf@p).
  RelId input_rel;
  /// Adornment of the query call pattern.
  Adornment query_adornment;
};

struct QsqOptions {
  /// Keep only variables needed later in supplementary relations (the
  /// paper's minimal sup schema). Disabling keeps every bound variable —
  /// used by the E7 ablation.
  bool project_relevant_vars = true;
  /// Place supplementary relations distribution-aware (dQSQ, Fig. 5):
  /// sup_{r,j} at the peer of body atom j+1. When false, every generated
  /// relation lives at the head's peer (centralized QSQ on P_local).
  bool distribute_sups = true;
  /// Prefix for generated sup-relation names. Peers doing local rewriting
  /// pass a peer-unique prefix so their rule indices cannot collide.
  std::string sup_prefix;
};

/// Rewrites `adorned` (produced by AdornProgram for the query call pattern
/// (query_rel, query_adornment)) into the QSQ program.
StatusOr<RewriteResult> QsqRewrite(const AdornedProgram& adorned,
                                   const RelId& query_rel,
                                   const Adornment& query_adornment,
                                   DatalogContext& ctx,
                                   const QsqOptions& options = {});

/// Name of the adorned answer relation for (rel, adornment), e.g. "R__bf".
std::string AnswerPredName(const std::string& base, const Adornment& a);

/// Name of the input relation, e.g. "in__R__bf".
std::string InputPredName(const std::string& base, const Adornment& a);

}  // namespace dqsq

#endif  // DQSQ_DATALOG_QSQ_REWRITE_H_
