#include "datalog/columnar.h"

#include <bit>

namespace dqsq {

void BuildRunIndex(std::span<const std::vector<TermId>> columns,
                   size_t num_rows, uint32_t mask, RunIndex& index) {
  // Phase 1: fold the masked columns into per-row key hashes, one
  // contiguous column scan at a time (cache-friendly; the row-at-a-time
  // alternative strides across all columns per row). The mask's set bits
  // are walked directly — ascending column order, and no out-of-range
  // shifts when the arity exceeds 32.
  std::vector<uint64_t> hashes(num_rows, 0xcbf29ce484222325ULL);
  for (uint32_t m = mask; m != 0; m &= m - 1) {
    const TermId* col =
        columns[static_cast<uint32_t>(std::countr_zero(m))].data();
    for (size_t row = 0; row < num_rows; ++row) {
      hashes[row] = (hashes[row] ^ col[row]) * 0x100000001b3ULL;
    }
  }
  // Phase 2: avalanche and append each row to its key's run in ascending
  // row order, so every run is an ascending sequence sliceable against the
  // semi-naive delta window.
  auto rows_equal = [&](uint32_t a, uint32_t b) {
    for (uint32_t m = mask; m != 0; m &= m - 1) {
      const std::vector<TermId>& col =
          columns[static_cast<uint32_t>(std::countr_zero(m))];
      if (col[a] != col[b]) return false;
    }
    return true;
  };
  index.ReserveRuns(num_rows);
  for (size_t row = 0; row < num_rows; ++row) {
    uint64_t h = hashes[row];
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 29;
    uint32_t r32 = static_cast<uint32_t>(row);
    index.Add(h, r32, [&](uint32_t first_row) {
      return rows_equal(first_row, r32);
    });
  }
}

}  // namespace dqsq
