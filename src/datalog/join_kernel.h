// Batched join kernel shared by semi-naive evaluation (eval.cc) and the
// recursive QSQ engine (qsqr.cc). A rule body is compiled once into a
// RulePlan: per atom, each column is classified against the statically
// known set of variables bound by earlier atoms, so the hot loop performs
// no per-row pattern grounding and no per-probe key re-interning. Probe
// results land in a reusable JoinScratch arena; consecutive probes with
// the same key at the same join level are memoized. Steady-state execution
// (all scratch buffers at capacity, all terms interned) allocates nothing.
//
// Ordering contract (DESIGN.md, "Columnar relation storage"): rows are
// enumerated in ascending row id order at every level — never re-sorted by
// key — so derived facts are emitted in exactly the order the tuple-at-a-
// time evaluator produced, which the distributed byte-stability pins
// depend on.
#ifndef DQSQ_DATALOG_JOIN_KERNEL_H_
#define DQSQ_DATALOG_JOIN_KERNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "datalog/adornment.h"
#include "datalog/ast.h"
#include "datalog/relation.h"

namespace dqsq {

/// One column of a body atom, classified at plan-compile time. Key steps
/// (columns fully determined by earlier bindings) drive the index probe;
/// row steps run against each candidate row.
struct ColStep {
  enum class Kind : uint8_t {
    kKeyConst,    // ground pattern; grounded once at compile time
    kKeyVar,      // variable bound by an earlier atom
    kKeyComplex,  // application whose variables are all bound earlier
    kBind,        // variable's first occurrence: bind to the row value
    kCheckVar,    // variable bound earlier in this same atom: equality
    kMatch,       // pattern with unbound variables: structural match
  };
  Kind kind;
  uint32_t col = 0;                  // column in the atom
  VarId var = 0;                     // kKeyVar / kBind / kCheckVar
  TermId value = kNoTerm;            // kKeyConst
  const Pattern* pattern = nullptr;  // kKeyComplex / kMatch
};

struct AtomPlan {
  const Atom* atom = nullptr;
  /// Index probe mask over the key columns; 0 when no column is bound or
  /// the arity exceeds 32 (then the kernel scans and checks key columns
  /// directly).
  uint32_t probe_mask = 0;
  std::vector<ColStep> key_steps;  // column order
  std::vector<ColStep> row_steps;  // column order
  /// Boundness per column (adornment[c] iff column c is a key column);
  /// covers all columns even past 32 — QSQ uses it as the call adornment.
  Adornment adornment;
};

struct RulePlan {
  const Rule* rule = nullptr;
  std::vector<AtomPlan> atoms;
};

/// Compiles `rule`'s body against the variables in `initial_bound` (bound
/// before the body starts: empty for bottom-up evaluation, the adorned
/// head variables for QSQ). Binding is deterministic left-to-right, so the
/// static classification coincides with what per-row grounding would have
/// computed. Ground patterns are interned into `arena` here, once.
RulePlan CompileRulePlan(const Rule& rule, std::span<const VarId> initial_bound,
                         TermArena& arena);

/// Relation + row range an atom joins against. Relations are append-only,
/// so rows within [lo, hi) are immutable once resolved.
struct JoinSource {
  Relation* rel = nullptr;  // nullptr => no rows to scan
  uint32_t lo = 0;          // row range [lo, hi)
  uint32_t hi = 0;
};

/// Reusable per-execution state. All buffers keep their capacity across
/// rules and rounds; once warm, executions allocate nothing.
struct JoinScratch {
  struct Level {
    std::vector<uint32_t> rows;  // probe result (ascending row ids)
    std::vector<TermId> key;     // key values, column order
    // Memo of the probe that produced `rows`: consecutive parent bindings
    // sharing a join key reuse the result without re-probing. Valid across
    // concurrent appends because the probed window is immutable.
    const Relation* memo_rel = nullptr;
    std::vector<TermId> memo_key;
    uint32_t memo_lo = 0;
    uint32_t memo_hi = 0;
    bool memo_valid = false;
    // Cached source for hosts whose sources are static per execution.
    JoinSource src;
    bool src_valid = false;
  };
  std::vector<Level> levels;
  Substitution subst;
  std::vector<VarId> trail;
  std::vector<TermId> ground_stack;  // TryGroundPattern scratch
  std::vector<TermId> tuple;         // head / negated-atom tuple buffer

  /// Prepares for executing a rule with `num_vars` variables and
  /// `num_atoms` body atoms: clears bindings, invalidates memos.
  void Prepare(uint32_t num_vars, size_t num_atoms) {
    if (levels.size() < num_atoms) levels.resize(num_atoms);
    for (size_t i = 0; i < num_atoms; ++i) {
      levels[i].memo_valid = false;
      levels[i].src_valid = false;
    }
    subst.assign(num_vars, kNoTerm);
    trail.clear();
  }
};

/// Execution callbacks: the host owns source resolution (snapshot ranges
/// for semi-naive, demand + answer tables for QSQ) and what happens on a
/// full body match. `ctx` is the host's per-execution state, threaded
/// through untouched so nested executions (QSQ recursion) stay reentrant.
class JoinHost {
 public:
  using Source = JoinSource;

  virtual ~JoinHost() = default;

  /// True when ResolveSource depends only on (plan, pos, ctx) — not on the
  /// key — and has no side effects, so the kernel may resolve each atom
  /// once per execution and cache the result (semi-naive snapshots). QSQ
  /// must keep per-binding resolution: resolving demands the subquery.
  virtual bool SourcesAreStatic() const { return false; }

  /// Relation + row range for atom `pos`, given the key values of its
  /// bound columns (column order). Called once per parent binding; may
  /// insert facts (QSQ demand propagation) before returning.
  virtual Status ResolveSource(const RulePlan& plan, size_t pos,
                               const void* ctx, std::span<const TermId> key,
                               Source* out) = 0;

  /// Full body match: `scratch.subst` holds the complete bindings.
  virtual Status OnMatch(const RulePlan& plan, const void* ctx,
                         JoinScratch& scratch) = 0;
};

/// Joins `plan`'s body left-to-right, calling `host.OnMatch` per full
/// match. Candidate rows counted into `*probes` (may be null) exactly as
/// the tuple-at-a-time evaluator counted them: probe path = rows in range,
/// scan path = every row in range. The caller must Prepare `scratch` (and
/// may pre-bind variables through it) before calling.
Status ExecuteRulePlan(const RulePlan& plan, TermArena& arena, JoinHost& host,
                       const void* ctx, JoinScratch& scratch, size_t* probes);

}  // namespace dqsq

#endif  // DQSQ_DATALOG_JOIN_KERNEL_H_
