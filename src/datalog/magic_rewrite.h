// Generalized magic-sets rewriting (Bancilhon–Maier–Sagiv–Ullman, the
// paper's reference [7]). Closely related to QSQ: instead of chaining
// supplementary relations it re-joins the rule prefix for every magic rule.
// Included as the classical comparator for the E2/E7 experiments.
#ifndef DQSQ_DATALOG_MAGIC_REWRITE_H_
#define DQSQ_DATALOG_MAGIC_REWRITE_H_

#include "common/status.h"
#include "datalog/adornment.h"
#include "datalog/ast.h"
#include "datalog/qsq_rewrite.h"

namespace dqsq {

/// Rewrites `adorned` into the magic-sets program. The RewriteResult's
/// input_rel is the magic relation of the query call pattern, to be seeded
/// with the query's bound arguments; answer_rel holds the adorned answers.
StatusOr<RewriteResult> MagicRewrite(const AdornedProgram& adorned,
                                     const RelId& query_rel,
                                     const Adornment& query_adornment,
                                     DatalogContext& ctx);

}  // namespace dqsq

#endif  // DQSQ_DATALOG_MAGIC_REWRITE_H_
