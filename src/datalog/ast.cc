#include "datalog/ast.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/logging.h"

namespace dqsq {

DatalogContext::DatalogContext() {
  local_peer_ = symbols_.Intern("local");
}

PredicateId DatalogContext::InternPredicate(std::string_view name,
                                            uint32_t arity) {
  SymbolId sym = symbols_.Intern(name);
  auto it = pred_index_.find(sym);
  if (it != pred_index_.end()) {
    DQSQ_CHECK_EQ(preds_[it->second].arity, arity)
        << "predicate " << name << " re-declared with different arity";
    return it->second;
  }
  PredicateId id = static_cast<PredicateId>(preds_.size());
  preds_.push_back(PredInfo{sym, arity});
  pred_index_.emplace(sym, id);
  return id;
}

bool DatalogContext::LookupPredicate(std::string_view name,
                                     PredicateId* id) const {
  SymbolId sym;
  if (!symbols_.Lookup(name, &sym)) return false;
  auto it = pred_index_.find(sym);
  if (it == pred_index_.end()) return false;
  *id = it->second;
  return true;
}

const std::string& DatalogContext::PredicateName(PredicateId id) const {
  DQSQ_CHECK_LT(id, preds_.size());
  return symbols_.Name(preds_[id].name);
}

uint32_t DatalogContext::PredicateArity(PredicateId id) const {
  DQSQ_CHECK_LT(id, preds_.size());
  return preds_[id].arity;
}

std::string AtomToString(const Atom& atom, const DatalogContext& ctx,
                         const std::vector<std::string>* var_names) {
  std::string out = ctx.PredicateName(atom.rel.pred);
  if (atom.rel.peer != ctx.local_peer()) {
    out += "@";
    out += ctx.symbols().Name(atom.rel.peer);
  }
  out += "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ",";
    out += atom.args[i].ToString(ctx.symbols(), var_names);
  }
  out += ")";
  return out;
}

std::string RuleToString(const Rule& rule, const DatalogContext& ctx) {
  std::string out = AtomToString(rule.head, ctx, &rule.var_names);
  if (rule.IsFact()) return out + ".";
  out += " :- ";
  bool first = true;
  for (const Atom& a : rule.body) {
    if (!first) out += ", ";
    first = false;
    out += AtomToString(a, ctx, &rule.var_names);
  }
  for (const Atom& a : rule.negative) {
    if (!first) out += ", ";
    first = false;
    out += "not ";
    out += AtomToString(a, ctx, &rule.var_names);
  }
  for (const Diseq& d : rule.diseqs) {
    if (!first) out += ", ";
    first = false;
    out += d.lhs.ToString(ctx.symbols(), &rule.var_names);
    out += " != ";
    out += d.rhs.ToString(ctx.symbols(), &rule.var_names);
  }
  return out + ".";
}

std::string ProgramToString(const Program& program,
                            const DatalogContext& ctx) {
  std::string out;
  for (const Rule& r : program.rules) {
    out += RuleToString(r, ctx);
    out += "\n";
  }
  return out;
}

namespace {

void CollectAtomVars(const Atom& atom, std::vector<VarId>* vars) {
  for (const Pattern& p : atom.args) p.CollectVars(vars);
}

}  // namespace

Status ValidateProgram(const Program& program, const DatalogContext& ctx) {
  for (const Rule& rule : program.rules) {
    auto check_atom = [&](const Atom& atom) -> Status {
      if (atom.args.size() != ctx.PredicateArity(atom.rel.pred)) {
        return InvalidArgumentError(
            "arity mismatch in atom of predicate " +
            ctx.PredicateName(atom.rel.pred));
      }
      std::vector<VarId> vars;
      CollectAtomVars(atom, &vars);
      for (VarId v : vars) {
        if (v >= rule.num_vars) {
          return InvalidArgumentError("variable slot out of range in rule " +
                                      RuleToString(rule, ctx));
        }
      }
      return Status::Ok();
    };
    DQSQ_RETURN_IF_ERROR(check_atom(rule.head));
    std::unordered_set<VarId> body_vars;
    for (const Atom& a : rule.body) {
      DQSQ_RETURN_IF_ERROR(check_atom(a));
      std::vector<VarId> vars;
      CollectAtomVars(a, &vars);
      body_vars.insert(vars.begin(), vars.end());
    }
    std::vector<VarId> head_vars;
    CollectAtomVars(rule.head, &head_vars);
    for (VarId v : head_vars) {
      if (!body_vars.contains(v)) {
        return InvalidArgumentError(
            "rule is not range-restricted (head variable not in body): " +
            RuleToString(rule, ctx));
      }
    }
    for (const Atom& a : rule.negative) {
      DQSQ_RETURN_IF_ERROR(check_atom(a));
      std::vector<VarId> vars;
      CollectAtomVars(a, &vars);
      for (VarId v : vars) {
        if (!body_vars.contains(v)) {
          return InvalidArgumentError(
              "negated atom uses a variable not bound by the positive "
              "body (unsafe negation): " +
              RuleToString(rule, ctx));
        }
      }
    }
    for (const Diseq& d : rule.diseqs) {
      std::vector<VarId> vars;
      d.lhs.CollectVars(&vars);
      d.rhs.CollectVars(&vars);
      for (VarId v : vars) {
        if (!body_vars.contains(v)) {
          return InvalidArgumentError(
              "disequality uses a variable not bound by the body: " +
              RuleToString(rule, ctx));
        }
      }
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<uint32_t>> StratifyProgram(const Program& program,
                                                const DatalogContext& ctx) {
  // Relation-level strata computed by iterated relaxation:
  //   stratum(head) >= stratum(positive body relation)
  //   stratum(head) >= stratum(negated body relation) + 1
  // A program is stratifiable iff this reaches a fixpoint below |rules|+1.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> stratum;
  auto key = [](const RelId& rel) {
    return std::make_pair(rel.pred, rel.peer);
  };
  const uint32_t limit = static_cast<uint32_t>(program.rules.size()) + 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules) {
      uint32_t need = 0;
      for (const Atom& a : rule.body) {
        need = std::max(need, stratum[key(a.rel)]);
      }
      for (const Atom& a : rule.negative) {
        need = std::max(need, stratum[key(a.rel)] + 1);
      }
      uint32_t& current = stratum[key(rule.head.rel)];
      if (need > current) {
        if (need > limit) {
          return InvalidArgumentError(
              "program is not stratifiable (negation through recursion "
              "involving " +
              ctx.PredicateName(rule.head.rel.pred) + ")");
        }
        current = need;
        changed = true;
      }
    }
  }
  std::vector<uint32_t> out;
  out.reserve(program.rules.size());
  for (const Rule& rule : program.rules) {
    out.push_back(stratum[key(rule.head.rel)]);
  }
  return out;
}

std::vector<RelId> IdbRelations(const Program& program) {
  std::vector<RelId> out;
  std::unordered_set<size_t> seen;
  for (const Rule& r : program.rules) {
    size_t key = RelIdHash{}(r.head.rel);
    // Collisions only cause duplicate suppression misses; verify equality.
    bool found = false;
    if (seen.contains(key)) {
      for (const RelId& existing : out) {
        if (existing == r.head.rel) {
          found = true;
          break;
        }
      }
    }
    if (!found) {
      seen.insert(key);
      out.push_back(r.head.rel);
    }
  }
  return out;
}

}  // namespace dqsq
