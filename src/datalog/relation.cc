#include "datalog/relation.h"

namespace dqsq {

// The masked helpers walk the set bits of the mask (ascending column
// order) rather than all columns: columns past bit 31 are unreachable by a
// 32-bit mask anyway, and for arities above 32 a full-column loop would
// shift out of range.
bool Relation::MaskedEquals(uint32_t row, uint32_t mask,
                            std::span<const TermId> key) const {
  size_t k = 0;
  for (uint32_t m = mask; m != 0; m &= m - 1) {
    if (columns_[SingleBitIndex(m)][row] != key[k++]) return false;
  }
  return true;
}

bool Relation::MaskedRowsEqual(uint32_t a, uint32_t b, uint32_t mask) const {
  for (uint32_t m = mask; m != 0; m &= m - 1) {
    const std::vector<TermId>& col = columns_[SingleBitIndex(m)];
    if (col[a] != col[b]) return false;
  }
  return true;
}

uint64_t Relation::MaskedHash(uint32_t row, uint32_t mask) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint32_t m = mask; m != 0; m &= m - 1) {
    h = (h ^ columns_[SingleBitIndex(m)][row]) * 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h;
}

void Relation::Reserve(size_t rows) {
  if (rows <= num_rows_) return;
  row_major_.reserve(rows * arity_);
  for (auto& col : columns_) col.reserve(rows);
  dedup_.Reserve(rows);
}

RunIndex& Relation::BuildIndex(uint32_t mask) {
  indices_.emplace_back(mask, RunIndex());
  RunIndex& index = indices_.back().second;
  BuildRunIndex(columns_, num_rows_, mask, index);
  return index;
}

}  // namespace dqsq
