#include "datalog/relation.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace dqsq {

const std::vector<uint32_t> Relation::kEmptyRows;

size_t Relation::KeyHash::operator()(const std::vector<TermId>& key) const {
  return HashRange(key.begin(), key.end());
}

bool Relation::Insert(std::span<const TermId> tuple) {
  DQSQ_DCHECK(tuple.size() == arity_);
  size_t h = HashRange(tuple.begin(), tuple.end());
  auto it = dedup_.find(h);
  if (it != dedup_.end()) {
    for (uint32_t row : it->second) {
      if (std::equal(tuple.begin(), tuple.end(), Row(row).begin())) {
        return false;
      }
    }
  }
  uint32_t row = static_cast<uint32_t>(size());
  flat_.insert(flat_.end(), tuple.begin(), tuple.end());
  ++num_rows_;
  dedup_[h].push_back(row);
  // Keep existing indices current.
  for (auto& [mask, index] : indices_) {
    index[KeyFor(row, mask)].push_back(row);
  }
  return true;
}

bool Relation::Contains(std::span<const TermId> tuple) const {
  DQSQ_DCHECK(tuple.size() == arity_);
  size_t h = HashRange(tuple.begin(), tuple.end());
  auto it = dedup_.find(h);
  if (it == dedup_.end()) return false;
  for (uint32_t row : it->second) {
    if (std::equal(tuple.begin(), tuple.end(), Row(row).begin())) return true;
  }
  return false;
}

std::vector<TermId> Relation::KeyFor(size_t row, uint32_t mask) const {
  std::vector<TermId> key;
  auto r = Row(row);
  for (uint32_t c = 0; c < arity_; ++c) {
    if (mask & (1u << c)) key.push_back(r[c]);
  }
  return key;
}

Relation::Index& Relation::GetIndex(uint32_t mask) {
  auto it = indices_.find(mask);
  if (it != indices_.end()) return it->second;
  Index& index = indices_[mask];
  for (size_t row = 0; row < size(); ++row) {
    index[KeyFor(row, mask)].push_back(static_cast<uint32_t>(row));
  }
  return index;
}

const std::vector<uint32_t>& Relation::Probe(uint32_t mask,
                                             std::span<const TermId> key) {
  Index& index = GetIndex(mask);
  auto it = index.find(std::vector<TermId>(key.begin(), key.end()));
  if (it == index.end()) return kEmptyRows;
  return it->second;
}

}  // namespace dqsq
