// Safe Petri nets with peer and alarm labels (paper Definitions 1-2).
// Each place and transition belongs to a peer (the labeling φ); each
// transition carries an alarm symbol (the labeling α) and an observability
// flag (paper §4.4, hidden transitions). Token-game semantics: a transition
// is enabled when all parent places are marked; firing moves the marking
// M' = M - •t + t•. Safety (1-boundedness) is assumed by the paper; this
// module detects violations at firing time and offers a bounded exhaustive
// check.
#ifndef DQSQ_PETRI_NET_H_
#define DQSQ_PETRI_NET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dqsq::petri {

using PlaceId = uint32_t;
using TransitionId = uint32_t;
using PeerIndex = uint32_t;

inline constexpr uint32_t kInvalidId = 0xffffffffu;

/// A marking: one bit per place.
using Marking = std::vector<bool>;

class PetriNet;

/// Canonical Datalog-constant names of net nodes ("tr_i", "pl_7"), shared
/// by the diagnosis encoder, the BFHJ projection and the explanation
/// canonicalizer so their Skolem terms compare as strings.
std::string TransitionConstantName(const PetriNet& net, TransitionId t);
std::string PlaceConstantName(const PetriNet& net, PlaceId p);

struct Place {
  std::string name;
  PeerIndex peer;
};

struct Transition {
  std::string name;
  PeerIndex peer;
  std::string alarm;           // α(t)
  bool observable = true;      // §4.4: hidden transitions are unobservable
  /// Fault label for diagnosability analysis (petri/verifier.h): the
  /// twin-plant construction asks whether firing a fault transition is
  /// always detectable from the observable alarms within bounded delay.
  bool fault = false;
  std::vector<PlaceId> pre;    // •t
  std::vector<PlaceId> post;   // t•
};

class PetriNet {
 public:
  PetriNet() = default;

  // --- construction (used by PetriNetBuilder) ---
  PeerIndex AddPeer(std::string name);
  PlaceId AddPlace(std::string name, PeerIndex peer);
  TransitionId AddTransition(std::string name, PeerIndex peer,
                             std::string alarm, std::vector<PlaceId> pre,
                             std::vector<PlaceId> post, bool observable,
                             bool fault = false);
  void SetInitialMarking(std::vector<PlaceId> marked);

  // --- structure ---
  size_t num_places() const { return places_.size(); }
  size_t num_transitions() const { return transitions_.size(); }
  size_t num_peers() const { return peers_.size(); }
  const Place& place(PlaceId p) const { return places_[p]; }
  const Transition& transition(TransitionId t) const {
    return transitions_[t];
  }
  const std::string& peer_name(PeerIndex p) const { return peers_[p]; }
  const Marking& initial_marking() const { return initial_marking_; }

  /// Peer index by name, or kInvalidId.
  PeerIndex FindPeer(const std::string& name) const;
  /// Transitions of peer `p`.
  std::vector<TransitionId> TransitionsOfPeer(PeerIndex p) const;
  /// Transitions carrying the fault label, in id order.
  std::vector<TransitionId> FaultTransitions() const;

  /// Transitions producing into place `p` (the place's parents).
  const std::vector<TransitionId>& Producers(PlaceId p) const {
    return producers_[p];
  }
  /// Transitions consuming from place `p` (the place's children).
  const std::vector<TransitionId>& Consumers(PlaceId p) const {
    return consumers_[p];
  }

  /// Neighb(p) of §4.1: peers holding a transition that is grandparent of
  /// some transition of p (plus p itself if self-feeding). Includes peers
  /// whose transitions feed places consumed by p's transitions.
  std::vector<PeerIndex> Neighbors(PeerIndex p) const;

  // --- token game ---
  bool IsEnabled(const Marking& m, TransitionId t) const;
  std::vector<TransitionId> EnabledTransitions(const Marking& m) const;

  /// Fires `t` from `m`. Fails if `t` is not enabled or the firing would
  /// violate safety (produce into a still-marked place).
  StatusOr<Marking> Fire(const Marking& m, TransitionId t) const;

  /// Structural checks: non-empty presets, ids in range, a non-empty
  /// initial marking, peer indices valid.
  Status Validate() const;

  /// Exhaustively explores reachable markings (up to `max_markings`) and
  /// reports the first safety violation found, OK if none.
  Status CheckSafety(size_t max_markings = 100000) const;

  /// Human-readable summary.
  std::string ToString() const;

 private:
  std::vector<std::string> peers_;
  std::vector<Place> places_;
  std::vector<Transition> transitions_;
  std::vector<std::vector<TransitionId>> producers_;  // per place
  std::vector<std::vector<TransitionId>> consumers_;  // per place
  Marking initial_marking_;
};

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_NET_H_
