#include "petri/configuration.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace dqsq::petri {

Configuration Canonical(std::vector<EventId> events) {
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  return events;
}

bool IsConfiguration(const Unfolding& u, const Configuration& config) {
  std::set<EventId> in(config.begin(), config.end());
  std::set<CondId> consumed;
  for (EventId e : config) {
    if (e >= u.num_events()) return false;
    // Downward closure: every ancestor is in the set.
    for (uint32_t anc : u.Ancestors(e).ToVector()) {
      if (!in.contains(anc)) return false;
    }
    // Conflict-freedom: no condition consumed by two distinct events.
    for (CondId c : u.event(e).preset) {
      if (!consumed.insert(c).second) return false;
    }
  }
  return true;
}

std::vector<CondId> CutOf(const Unfolding& u, const Configuration& config) {
  std::set<CondId> consumed;
  for (EventId e : config) {
    consumed.insert(u.event(e).preset.begin(), u.event(e).preset.end());
  }
  std::vector<CondId> cut;
  for (CondId c : u.roots()) {
    if (!consumed.contains(c)) cut.push_back(c);
  }
  for (EventId e : config) {
    for (CondId c : u.event(e).postset) {
      if (!consumed.contains(c)) cut.push_back(c);
    }
  }
  std::sort(cut.begin(), cut.end());
  return cut;
}

Marking MarkingOf(const Unfolding& u, const Configuration& config) {
  Marking m(u.net().num_places(), false);
  for (CondId c : CutOf(u, config)) {
    DQSQ_CHECK(!m[u.condition(c).place]) << "configuration cut is not safe";
    m[u.condition(c).place] = true;
  }
  return m;
}

namespace {

void LinearizeRec(const Unfolding& u, const Configuration& config,
                  std::set<EventId>& done, std::vector<EventId>& prefix,
                  size_t limit, bool* truncated,
                  std::vector<std::vector<EventId>>* out) {
  if (out->size() >= limit) {
    *truncated = true;
    return;
  }
  if (prefix.size() == config.size()) {
    out->push_back(prefix);
    return;
  }
  for (EventId e : config) {
    if (done.contains(e)) continue;
    bool ready = true;
    for (uint32_t anc : u.Ancestors(e).ToVector()) {
      // Only ancestors inside the configuration matter; config is downward
      // closed so all ancestors are inside.
      if (!done.contains(anc)) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;
    done.insert(e);
    prefix.push_back(e);
    LinearizeRec(u, config, done, prefix, limit, truncated, out);
    prefix.pop_back();
    done.erase(e);
    if (*truncated) return;
  }
}

}  // namespace

bool Linearizations(const Unfolding& u, const Configuration& config,
                    size_t limit,
                    std::vector<std::vector<EventId>>* out) {
  std::set<EventId> done;
  std::vector<EventId> prefix;
  bool truncated = false;
  LinearizeRec(u, config, done, prefix, limit, &truncated, out);
  return !truncated;
}

}  // namespace dqsq::petri
