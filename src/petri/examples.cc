#include "petri/examples.h"

#include "common/logging.h"
#include "petri/builder.h"

namespace dqsq::petri {

PetriNet MakePaperNet(bool with_loop) {
  PetriNetBuilder b;
  b.AddPeer("p1").AddPeer("p2");
  b.AddPlace("1", "p1", /*marked=*/true)
      .AddPlace("2", "p1")
      .AddPlace("3", "p1")
      .AddPlace("4", "p2", /*marked=*/true)
      .AddPlace("5", "p2")
      .AddPlace("6", "p2")
      .AddPlace("7", "p2", /*marked=*/true)
      .AddPlace("6x", "p2");
  b.AddTransition("i", "p1", "b", {"1", "7"}, {"2", "3"});
  b.AddTransition("ii", "p2", "a", {"4"}, {"5"});
  b.AddTransition("iii", "p1", "c", {"2"}, {"1"});
  b.AddTransition("iv", "p2", "c", {"5"}, {"6"});
  b.AddTransition("v", "p2", "b", {"7"}, {"6x"});
  if (with_loop) {
    b.AddTransition("vi", "p2", "a", {"6"}, {"5"});
  }
  auto net = b.Build();
  DQSQ_CHECK_OK(net.status());
  return *std::move(net);
}

PetriNet MakeCycleNet() {
  PetriNetBuilder b;
  b.AddPeer("p");
  b.AddPlace("s0", "p", /*marked=*/true).AddPlace("s1", "p").AddPlace("s2",
                                                                      "p");
  b.AddTransition("t_a", "p", "a", {"s0"}, {"s1"});
  b.AddTransition("t_b", "p", "b", {"s1"}, {"s2"});
  b.AddTransition("t_c", "p", "c", {"s2"}, {"s0"});
  auto net = b.Build();
  DQSQ_CHECK_OK(net.status());
  return *std::move(net);
}

PetriNet MakeHandshakeNet() {
  PetriNetBuilder b;
  b.AddPeer("left").AddPeer("right");
  b.AddPlace("l0", "left", /*marked=*/true).AddPlace("l1", "left");
  b.AddPlace("r0", "right", /*marked=*/true).AddPlace("r1", "right");
  // Local steps.
  b.AddTransition("lwork", "left", "w", {"l0"}, {"l1"});
  b.AddTransition("rwork", "right", "w", {"r0"}, {"r1"});
  // Synchronization: consumes one place of each peer (owned by "left").
  b.AddTransition("sync", "left", "s", {"l1", "r1"}, {"l0", "r0"});
  auto net = b.Build();
  DQSQ_CHECK_OK(net.status());
  return *std::move(net);
}

}  // namespace dqsq::petri
