#include "petri/random_net.h"

#include "common/logging.h"

namespace dqsq::petri {

PetriNet MakeRandomNet(const RandomNetOptions& options, Rng& rng) {
  DQSQ_CHECK_GE(options.num_peers, 1u);
  DQSQ_CHECK_GE(options.places_per_peer, 2u);
  DQSQ_CHECK_GE(options.num_alarm_symbols, 1u);
  PetriNet net;
  std::vector<PeerIndex> peers;
  std::vector<std::vector<PlaceId>> states(options.num_peers);
  std::vector<PlaceId> init;
  for (uint32_t p = 0; p < options.num_peers; ++p) {
    peers.push_back(net.AddPeer("peer" + std::to_string(p)));
    for (uint32_t s = 0; s < options.places_per_peer; ++s) {
      states[p].push_back(net.AddPlace(
          "s" + std::to_string(p) + "_" + std::to_string(s), peers[p]));
    }
    init.push_back(states[p][0]);
  }

  for (uint32_t p = 0; p < options.num_peers; ++p) {
    for (uint32_t k = 0; k < options.transitions_per_peer; ++k) {
      // First edge leaves the initial state so runs are never trivially
      // dead; otherwise uniform.
      uint32_t src = (k == 0)
                         ? 0
                         : static_cast<uint32_t>(
                               rng.NextBelow(options.places_per_peer));
      uint32_t dst = static_cast<uint32_t>(
          rng.NextBelow(options.places_per_peer));
      std::vector<PlaceId> pre{states[p][src]};
      std::vector<PlaceId> post{states[p][dst]};
      if (options.num_peers > 1 && rng.NextBool(options.sync_probability)) {
        uint32_t q = static_cast<uint32_t>(
            rng.NextBelow(options.num_peers - 1));
        if (q >= p) ++q;  // any peer but p
        uint32_t src2 = static_cast<uint32_t>(
            rng.NextBelow(options.places_per_peer));
        uint32_t dst2 = static_cast<uint32_t>(
            rng.NextBelow(options.places_per_peer));
        pre.push_back(states[q][src2]);
        post.push_back(states[q][dst2]);
      }
      std::string alarm =
          "a" + std::to_string(rng.NextBelow(options.num_alarm_symbols));
      bool observable = !rng.NextBool(options.hidden_probability);
      // Guarded so the RNG stream (and hence every seeded net) is
      // unchanged when the knob is off.
      bool fault = options.fault_fraction > 0.0 &&
                   rng.NextBool(options.fault_fraction);
      if (fault) observable = false;
      net.AddTransition(
          "t" + std::to_string(p) + "_" + std::to_string(k), peers[p], alarm,
          std::move(pre), std::move(post), observable, fault);
    }
  }
  net.SetInitialMarking(init);
  DQSQ_CHECK_OK(net.Validate());
  return net;
}

}  // namespace dqsq::petri
