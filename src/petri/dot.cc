#include "petri/dot.h"

#include <set>

namespace dqsq::petri {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string NetToDot(const PetriNet& net) {
  std::string out = "digraph net {\n  rankdir=TB;\n";
  for (PeerIndex p = 0; p < net.num_peers(); ++p) {
    out += "  subgraph cluster_" + std::to_string(p) + " {\n";
    out += "    label=\"" + Escape(net.peer_name(p)) + "\";\n";
    for (PlaceId s = 0; s < net.num_places(); ++s) {
      if (net.place(s).peer != p) continue;
      out += "    p" + std::to_string(s) + " [shape=circle,label=\"" +
             Escape(net.place(s).name) + "\"" +
             (net.initial_marking()[s] ? ",style=bold,penwidth=2" : "") +
             "];\n";
    }
    for (TransitionId t = 0; t < net.num_transitions(); ++t) {
      const Transition& tr = net.transition(t);
      if (tr.peer != p) continue;
      out += "    t" + std::to_string(t) + " [shape=box,label=\"" +
             Escape(tr.name) + " [" + Escape(tr.alarm) + "]\"" +
             (tr.observable ? "" : ",style=dashed") + "];\n";
    }
    out += "  }\n";
  }
  for (TransitionId t = 0; t < net.num_transitions(); ++t) {
    for (PlaceId s : net.transition(t).pre) {
      out += "  p" + std::to_string(s) + " -> t" + std::to_string(t) + ";\n";
    }
    for (PlaceId s : net.transition(t).post) {
      out += "  t" + std::to_string(t) + " -> p" + std::to_string(s) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string UnfoldingToDot(const Unfolding& unfolding,
                           const Configuration* highlight) {
  const PetriNet& net = unfolding.net();
  std::set<EventId> shaded_events;
  std::set<CondId> shaded_conds;
  if (highlight != nullptr) {
    for (EventId e : *highlight) {
      shaded_events.insert(e);
      const Event& ev = unfolding.event(e);
      shaded_conds.insert(ev.preset.begin(), ev.preset.end());
      shaded_conds.insert(ev.postset.begin(), ev.postset.end());
    }
    for (CondId c : unfolding.roots()) shaded_conds.insert(c);
  }
  std::string out = "digraph unfolding {\n  rankdir=TB;\n";
  for (CondId c = 0; c < unfolding.num_conditions(); ++c) {
    out += "  c" + std::to_string(c) + " [shape=circle,label=\"" +
           Escape(net.place(unfolding.condition(c).place).name) + "\"";
    if (shaded_conds.contains(c)) out += ",style=filled,fillcolor=gray85";
    out += "];\n";
  }
  for (EventId e = 0; e < unfolding.num_events(); ++e) {
    const Event& ev = unfolding.event(e);
    const Transition& tr = net.transition(ev.transition);
    out += "  e" + std::to_string(e) + " [shape=box,label=\"" +
           Escape(tr.name) + " [" + Escape(tr.alarm) + "]\"";
    if (shaded_events.contains(e)) out += ",style=filled,fillcolor=gray70";
    if (ev.cutoff) out += ",color=red";
    out += "];\n";
    for (CondId c : ev.preset) {
      out += "  c" + std::to_string(c) + " -> e" + std::to_string(e) + ";\n";
    }
    for (CondId c : ev.postset) {
      out += "  e" + std::to_string(e) + " -> c" + std::to_string(c) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string ExplanationToDot(const Unfolding& unfolding,
                             const Configuration& config) {
  const PetriNet& net = unfolding.net();
  std::set<EventId> in(config.begin(), config.end());
  std::string out = "digraph explanation {\n  rankdir=TB;\n";
  for (EventId e : config) {
    const Transition& tr = net.transition(unfolding.event(e).transition);
    out += "  e" + std::to_string(e) + " [shape=box,label=\"" +
           Escape(tr.name) + " [" + Escape(tr.alarm) + "]@" +
           Escape(net.peer_name(tr.peer)) + "\"];\n";
  }
  for (EventId e : config) {
    for (CondId c : unfolding.event(e).preset) {
      EventId producer = unfolding.condition(c).producer;
      if (producer != kInvalidId && in.contains(producer)) {
        out += "  e" + std::to_string(producer) + " -> e" +
               std::to_string(e) + " [label=\"" +
               Escape(net.place(unfolding.condition(c).place).name) +
               "\"];\n";
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace dqsq::petri
