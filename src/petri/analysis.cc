#include "petri/analysis.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace dqsq::petri {

namespace {

struct MarkingHash {
  size_t operator()(const Marking& m) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (bool b : m) HashCombine(h, b ? 2 : 1);
    return h;
  }
};

}  // namespace

StatusOr<ReachabilityGraph> BuildReachabilityGraph(const PetriNet& net,
                                                   size_t max_markings) {
  DQSQ_RETURN_IF_ERROR(net.Validate());
  ReachabilityGraph graph;
  std::unordered_map<Marking, size_t, MarkingHash> index;

  graph.markings.push_back(net.initial_marking());
  graph.edges.emplace_back();
  index.emplace(net.initial_marking(), 0);

  std::deque<size_t> frontier{0};
  while (!frontier.empty()) {
    size_t m = frontier.front();
    frontier.pop_front();
    Marking marking = graph.markings[m];  // copy: vector may reallocate
    for (TransitionId t : net.EnabledTransitions(marking)) {
      DQSQ_ASSIGN_OR_RETURN(Marking next, net.Fire(marking, t));
      auto [it, inserted] = index.emplace(next, graph.markings.size());
      if (inserted) {
        if (graph.markings.size() >= max_markings) {
          graph.complete = false;
          return graph;
        }
        graph.markings.push_back(std::move(next));
        graph.edges.emplace_back();
        frontier.push_back(it->second);
      }
      graph.edges[m].emplace_back(t, it->second);
    }
  }
  return graph;
}

NetAnalysis Analyze(const PetriNet& net, const ReachabilityGraph& graph) {
  NetAnalysis out;
  out.reachable_markings = graph.num_markings();
  std::set<TransitionId> fireable;
  for (size_t m = 0; m < graph.markings.size(); ++m) {
    if (graph.edges[m].empty()) out.deadlocks.push_back(m);
    for (const auto& [t, next] : graph.edges[m]) {
      fireable.insert(t);
      if (next == 0 && m != 0) out.reversible = true;
      if (next == 0 && m == 0) out.reversible = true;  // self-loop
    }
  }
  out.fireable_transitions.assign(fireable.begin(), fireable.end());
  for (TransitionId t = 0; t < net.num_transitions(); ++t) {
    if (!fireable.contains(t)) out.dead_transitions.push_back(t);
  }
  return out;
}

StatusOr<NetAnalysis> AnalyzeNet(const PetriNet& net, size_t max_markings) {
  DQSQ_ASSIGN_OR_RETURN(ReachabilityGraph graph,
                        BuildReachabilityGraph(net, max_markings));
  return Analyze(net, graph);
}

}  // namespace dqsq::petri
