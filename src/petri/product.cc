#include "petri/product.h"

#include "common/logging.h"

namespace dqsq::petri {

StatusOr<AlarmProduct> BuildAlarmProduct(const PetriNet& net,
                                         const AlarmSequence& alarms) {
  for (const Alarm& a : alarms) {
    if (net.FindPeer(a.peer) == kInvalidId) {
      return InvalidArgumentError("alarm from unknown peer " + a.peer);
    }
  }
  AlarmProduct out;
  PetriNet& prod = out.product;

  // Peers copied 1:1.
  for (PeerIndex p = 0; p < net.num_peers(); ++p) {
    prod.AddPeer(net.peer_name(p));
  }

  // Original places copied 1:1 (same indices).
  std::vector<PlaceId> init;
  for (PlaceId s = 0; s < net.num_places(); ++s) {
    PlaceId copy = prod.AddPlace(net.place(s).name, net.place(s).peer);
    out.original_place.push_back(s);
    DQSQ_CHECK_EQ(copy, s);
    if (net.initial_marking()[s]) init.push_back(copy);
  }

  // Alarm chains: per-peer subsequences of the observation.
  std::vector<std::vector<std::string>> per_peer(net.num_peers());
  for (const Alarm& a : alarms) {
    per_peer[net.FindPeer(a.peer)].push_back(a.symbol);
  }
  // chain_places[p][i] = q_{p,i}, i = 0..n_p.
  std::vector<std::vector<PlaceId>> chain_places(net.num_peers());
  for (PeerIndex p = 0; p < net.num_peers(); ++p) {
    for (size_t i = 0; i <= per_peer[p].size(); ++i) {
      PlaceId q = prod.AddPlace(
          "q_" + net.peer_name(p) + "_" + std::to_string(i), p);
      out.original_place.push_back(kInvalidId);
      chain_places[p].push_back(q);
    }
    init.push_back(chain_places[p][0]);
    out.chain_end.push_back(chain_places[p].back());
  }

  // Transitions: observable ones synchronize with every matching chain
  // position; unobservable ones pass through.
  for (TransitionId t = 0; t < net.num_transitions(); ++t) {
    const Transition& tr = net.transition(t);
    if (!tr.observable) {
      prod.AddTransition(tr.name, tr.peer, tr.alarm, tr.pre, tr.post,
                        /*observable=*/false);
      out.original_transition.push_back(t);
      continue;
    }
    const auto& seq = per_peer[tr.peer];
    for (size_t i = 0; i < seq.size(); ++i) {
      if (seq[i] != tr.alarm) continue;
      std::vector<PlaceId> pre = tr.pre;
      pre.push_back(chain_places[tr.peer][i]);
      std::vector<PlaceId> post = tr.post;
      post.push_back(chain_places[tr.peer][i + 1]);
      prod.AddTransition(tr.name + "#" + std::to_string(i + 1), tr.peer,
                        tr.alarm, std::move(pre), std::move(post),
                        /*observable=*/true);
      out.original_transition.push_back(t);
    }
  }

  prod.SetInitialMarking(init);
  // The product may legitimately have no transitions (unexplainable
  // observation); Validate() only rejects structural malformations.
  if (prod.num_transitions() > 0) {
    DQSQ_RETURN_IF_ERROR(prod.Validate());
  }
  return out;
}

}  // namespace dqsq::petri
