#include "petri/bfhj.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace dqsq::petri {

namespace {

// DFS over cuts of the product unfolding, collecting configurations whose
// cut marks every chain-end place (all alarms consumed).
class Extractor {
 public:
  Extractor(const Unfolding& u, const AlarmProduct& product,
            const BfhjOptions& options)
      : u_(u), product_(product), options_(options) {}

  StatusOr<std::vector<Configuration>> Run() {
    std::vector<CondId> cut = u_.roots();
    std::vector<EventId> chosen;
    DQSQ_RETURN_IF_ERROR(Dfs(cut, chosen, 0));
    return std::vector<Configuration>(found_.begin(), found_.end());
  }

 private:
  bool IsComplete(const std::vector<CondId>& cut) const {
    std::set<PlaceId> marked;
    for (CondId c : cut) marked.insert(u_.condition(c).place);
    for (PlaceId q : product_.chain_end) {
      if (!marked.contains(q)) return false;
    }
    return true;
  }

  Status Dfs(std::vector<CondId>& cut, std::vector<EventId>& chosen,
             size_t unobservable_used) {
    if (++steps_ > options_.max_steps) {
      return ResourceExhaustedError("BFHJ extraction step budget");
    }
    if (IsComplete(cut)) {
      found_.insert(Canonical(chosen));
      // Observable extensions are impossible past completion (chains are
      // exhausted); hidden ones would add unobserved events, which the
      // basic problem (§2) excludes from explanations.
      return Status::Ok();
    }
    for (EventId e : u_.ExtensionsOfCut(cut)) {
      const Transition& tr = u_.net().transition(u_.event(e).transition);
      if (!tr.observable &&
          unobservable_used >= options_.max_unobservable) {
        continue;
      }
      std::set<CondId> preset(u_.event(e).preset.begin(),
                              u_.event(e).preset.end());
      std::vector<CondId> next_cut;
      for (CondId c : cut) {
        if (!preset.contains(c)) next_cut.push_back(c);
      }
      next_cut.insert(next_cut.end(), u_.event(e).postset.begin(),
                      u_.event(e).postset.end());
      chosen.push_back(e);
      DQSQ_RETURN_IF_ERROR(
          Dfs(next_cut, chosen,
              unobservable_used + (tr.observable ? 0 : 1)));
      chosen.pop_back();
    }
    return Status::Ok();
  }

  const Unfolding& u_;
  const AlarmProduct& product_;
  const BfhjOptions& options_;
  size_t steps_ = 0;
  std::set<Configuration> found_;
};

// Replays one linearization of a product configuration on the original
// unfolding, returning the corresponding original configuration.
StatusOr<Configuration> Replay(const Unfolding& product_unfolding,
                               const AlarmProduct& product,
                               const Configuration& config,
                               const Unfolding& original) {
  std::vector<std::vector<EventId>> lins;
  if (!Linearizations(product_unfolding, config, 1, &lins) &&
      lins.empty()) {
    return InternalError("no linearization for product configuration");
  }
  DQSQ_CHECK(!lins.empty());
  std::vector<CondId> cut = original.roots();
  Configuration out;
  for (EventId pe : lins[0]) {
    TransitionId orig_t =
        product.original_transition[product_unfolding.event(pe).transition];
    // The unique enabled event of the original unfolding with this
    // transition whose preset lies in the cut.
    std::set<CondId> cut_set(cut.begin(), cut.end());
    EventId match = kInvalidId;
    for (EventId e = 0; e < original.num_events(); ++e) {
      if (original.event(e).transition != orig_t) continue;
      bool enabled = true;
      for (CondId c : original.event(e).preset) {
        if (!cut_set.contains(c)) {
          enabled = false;
          break;
        }
      }
      if (enabled) {
        match = e;
        break;
      }
    }
    if (match == kInvalidId) {
      return InternalError(
          "original unfolding prefix too shallow to replay explanation");
    }
    std::set<CondId> preset(original.event(match).preset.begin(),
                            original.event(match).preset.end());
    std::vector<CondId> next_cut;
    for (CondId c : cut) {
      if (!preset.contains(c)) next_cut.push_back(c);
    }
    next_cut.insert(next_cut.end(), original.event(match).postset.begin(),
                    original.event(match).postset.end());
    cut = std::move(next_cut);
    out.push_back(match);
  }
  return Canonical(std::move(out));
}

// Canonical Skolem terms of product-unfolding nodes projected onto the
// original net: chain conditions are erased from presets, product
// transitions map back through original_transition, and product places
// through original_place. The result coincides with the terms the §4.1
// Datalog program derives for the same nodes.
class Projector {
 public:
  Projector(const Unfolding& pu, const AlarmProduct& product,
            const PetriNet& net)
      : pu_(pu), product_(product), net_(net) {}

  std::string EventTerm(EventId e) {
    auto it = event_memo_.find(e);
    if (it != event_memo_.end()) return it->second;
    const Event& event = pu_.event(e);
    std::string out =
        "f(" +
        TransitionConstantName(net_,
                               product_.original_transition[event.transition]);
    for (CondId c : event.preset) {
      if (product_.original_place[pu_.condition(c).place] == kInvalidId) {
        continue;  // alarm-chain condition: erased by the projection
      }
      out += ",";
      out += CondTerm(c);
    }
    out += ")";
    event_memo_[e] = out;
    return out;
  }

  std::string CondTerm(CondId c) {
    const Condition& cond = pu_.condition(c);
    std::string producer =
        cond.producer == kInvalidId ? "r" : EventTerm(cond.producer);
    return "g(" + producer + "," +
           PlaceConstantName(net_, product_.original_place[cond.place]) + ")";
  }

 private:
  const Unfolding& pu_;
  const AlarmProduct& product_;
  const PetriNet& net_;
  std::map<EventId, std::string> event_memo_;
};

}  // namespace

StatusOr<BfhjResult> BfhjDiagnose(const PetriNet& net,
                                  const AlarmSequence& alarms,
                                  const BfhjOptions& options,
                                  const Unfolding* original_unfolding) {
  DQSQ_ASSIGN_OR_RETURN(AlarmProduct product,
                        BuildAlarmProduct(net, alarms));
  BfhjResult result;
  if (product.product.num_transitions() == 0) {
    // Nothing can fire: explanations exist only for the empty observation.
    result.complete = true;
    if (alarms.empty()) {
      result.product_explanations.push_back({});
      result.explanations.push_back({});
    }
    return result;
  }

  UnfoldOptions uopts;
  uopts.max_events = options.max_events;
  DQSQ_ASSIGN_OR_RETURN(Unfolding pu,
                        Unfolding::Build(product.product, uopts));
  result.complete = pu.complete();
  result.events_materialized = pu.num_events();
  for (CondId c = 0; c < pu.num_conditions(); ++c) {
    if (product.original_place[pu.condition(c).place] != kInvalidId) {
      ++result.conditions_materialized;
    }
  }

  Extractor extractor(pu, product, options);
  DQSQ_ASSIGN_OR_RETURN(result.product_explanations, extractor.Run());

  // Theorem 4 measure: the projection of the product unfolding.
  {
    Projector projector(pu, product, net);
    std::set<std::string> events, conditions;
    for (EventId e = 0; e < pu.num_events(); ++e) {
      events.insert(projector.EventTerm(e));
    }
    for (CondId c = 0; c < pu.num_conditions(); ++c) {
      if (product.original_place[pu.condition(c).place] == kInvalidId) {
        continue;
      }
      conditions.insert(projector.CondTerm(c));
    }
    result.projected_event_terms.assign(events.begin(), events.end());
    result.projected_condition_terms.assign(conditions.begin(),
                                            conditions.end());
  }

  if (original_unfolding != nullptr) {
    std::set<Configuration> unique;
    for (const Configuration& c : result.product_explanations) {
      DQSQ_ASSIGN_OR_RETURN(
          Configuration orig,
          Replay(pu, product, c, *original_unfolding));
      unique.insert(std::move(orig));
    }
    result.explanations.assign(unique.begin(), unique.end());
  }
  return result;
}

}  // namespace dqsq::petri
