// Graphviz DOT rendering of nets, unfoldings and explanations — the
// "compact, preferably graphical" presentation of the diagnosis set the
// paper asks for in §2.
#ifndef DQSQ_PETRI_DOT_H_
#define DQSQ_PETRI_DOT_H_

#include <string>
#include <vector>

#include "petri/configuration.h"
#include "petri/net.h"
#include "petri/unfolding.h"

namespace dqsq::petri {

/// The net: places as circles (marked ones bold), transitions as boxes
/// labeled "name [alarm]", grouped in per-peer clusters.
std::string NetToDot(const PetriNet& net);

/// A branching-process prefix: conditions/events with the homomorphism in
/// the labels. When `highlight` is non-null its events and the conditions
/// they touch are shaded — the style of the paper's Figure 2.
std::string UnfoldingToDot(const Unfolding& unfolding,
                           const Configuration* highlight);

/// One explanation as a causal DAG over its events only (condition nodes
/// elided; edges follow produced-consumed conditions).
std::string ExplanationToDot(const Unfolding& unfolding,
                             const Configuration& config);

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_DOT_H_
