#include "petri/net.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"

namespace dqsq::petri {

std::string TransitionConstantName(const PetriNet& net, TransitionId t) {
  return "tr_" + net.transition(t).name;
}

std::string PlaceConstantName(const PetriNet& net, PlaceId p) {
  return "pl_" + net.place(p).name;
}

PeerIndex PetriNet::AddPeer(std::string name) {
  peers_.push_back(std::move(name));
  return static_cast<PeerIndex>(peers_.size() - 1);
}

PlaceId PetriNet::AddPlace(std::string name, PeerIndex peer) {
  DQSQ_CHECK_LT(peer, peers_.size());
  places_.push_back(Place{std::move(name), peer});
  producers_.emplace_back();
  consumers_.emplace_back();
  initial_marking_.push_back(false);
  return static_cast<PlaceId>(places_.size() - 1);
}

TransitionId PetriNet::AddTransition(std::string name, PeerIndex peer,
                                     std::string alarm,
                                     std::vector<PlaceId> pre,
                                     std::vector<PlaceId> post,
                                     bool observable, bool fault) {
  DQSQ_CHECK_LT(peer, peers_.size());
  TransitionId t = static_cast<TransitionId>(transitions_.size());
  for (PlaceId p : pre) {
    DQSQ_CHECK_LT(p, places_.size());
    consumers_[p].push_back(t);
  }
  for (PlaceId p : post) {
    DQSQ_CHECK_LT(p, places_.size());
    producers_[p].push_back(t);
  }
  transitions_.push_back(Transition{std::move(name), peer, std::move(alarm),
                                    observable, fault, std::move(pre),
                                    std::move(post)});
  return t;
}

void PetriNet::SetInitialMarking(std::vector<PlaceId> marked) {
  std::fill(initial_marking_.begin(), initial_marking_.end(), false);
  for (PlaceId p : marked) {
    DQSQ_CHECK_LT(p, places_.size());
    initial_marking_[p] = true;
  }
}

PeerIndex PetriNet::FindPeer(const std::string& name) const {
  for (PeerIndex i = 0; i < peers_.size(); ++i) {
    if (peers_[i] == name) return i;
  }
  return kInvalidId;
}

std::vector<TransitionId> PetriNet::TransitionsOfPeer(PeerIndex p) const {
  std::vector<TransitionId> out;
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (transitions_[t].peer == p) out.push_back(t);
  }
  return out;
}

std::vector<TransitionId> PetriNet::FaultTransitions() const {
  std::vector<TransitionId> out;
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (transitions_[t].fault) out.push_back(t);
  }
  return out;
}

std::vector<PeerIndex> PetriNet::Neighbors(PeerIndex p) const {
  std::set<PeerIndex> out;
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (transitions_[t].peer != p) continue;
    for (PlaceId s : transitions_[t].pre) {
      for (TransitionId producer : producers_[s]) {
        out.insert(transitions_[producer].peer);
      }
      // Root places (no producer) contribute their own peer.
      if (producers_[s].empty()) out.insert(places_[s].peer);
    }
  }
  return std::vector<PeerIndex>(out.begin(), out.end());
}

bool PetriNet::IsEnabled(const Marking& m, TransitionId t) const {
  for (PlaceId p : transitions_[t].pre) {
    if (!m[p]) return false;
  }
  return true;
}

std::vector<TransitionId> PetriNet::EnabledTransitions(
    const Marking& m) const {
  std::vector<TransitionId> out;
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (IsEnabled(m, t)) out.push_back(t);
  }
  return out;
}

StatusOr<Marking> PetriNet::Fire(const Marking& m, TransitionId t) const {
  if (!IsEnabled(m, t)) {
    return FailedPreconditionError("transition " + transitions_[t].name +
                                   " is not enabled");
  }
  Marking next = m;
  for (PlaceId p : transitions_[t].pre) next[p] = false;
  for (PlaceId p : transitions_[t].post) {
    if (next[p]) {
      return FailedPreconditionError(
          "safety violation: firing " + transitions_[t].name +
          " would mark already-marked place " + places_[p].name);
    }
    next[p] = true;
  }
  return next;
}

Status PetriNet::Validate() const {
  if (places_.empty()) return InvalidArgumentError("net has no places");
  bool any_marked = false;
  for (bool b : initial_marking_) any_marked |= b;
  if (!any_marked) return InvalidArgumentError("initial marking is empty");
  for (const Transition& t : transitions_) {
    if (t.pre.empty()) {
      return InvalidArgumentError("transition " + t.name +
                                  " has an empty preset");
    }
    if (t.post.empty()) {
      return InvalidArgumentError("transition " + t.name +
                                  " has an empty postset");
    }
    std::set<PlaceId> pre_set(t.pre.begin(), t.pre.end());
    if (pre_set.size() != t.pre.size()) {
      return InvalidArgumentError("transition " + t.name +
                                  " has duplicate preset places");
    }
    std::set<PlaceId> post_set(t.post.begin(), t.post.end());
    if (post_set.size() != t.post.size()) {
      return InvalidArgumentError("transition " + t.name +
                                  " has duplicate postset places");
    }
  }
  return Status::Ok();
}

Status PetriNet::CheckSafety(size_t max_markings) const {
  struct MarkingHash {
    size_t operator()(const Marking& m) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (bool b : m) HashCombine(h, b ? 2 : 1);
      return h;
    }
  };
  std::unordered_set<Marking, MarkingHash> seen;
  std::deque<Marking> frontier;
  frontier.push_back(initial_marking_);
  seen.insert(initial_marking_);
  while (!frontier.empty()) {
    if (seen.size() > max_markings) {
      return ResourceExhaustedError("safety check exceeded marking budget");
    }
    Marking m = std::move(frontier.front());
    frontier.pop_front();
    for (TransitionId t : EnabledTransitions(m)) {
      StatusOr<Marking> next = Fire(m, t);
      if (!next.ok()) return next.status();
      if (seen.insert(*next).second) frontier.push_back(*std::move(next));
    }
  }
  return Status::Ok();
}

std::string PetriNet::ToString() const {
  std::string out = "PetriNet{peers=[";
  for (size_t i = 0; i < peers_.size(); ++i) {
    if (i > 0) out += ",";
    out += peers_[i];
  }
  out += "], places=" + std::to_string(places_.size()) +
         ", transitions=" + std::to_string(transitions_.size()) + "}\n";
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    const Transition& tr = transitions_[t];
    out += "  " + tr.name + "@" + peers_[tr.peer] + " [" + tr.alarm +
           (tr.observable ? "" : ", hidden") + (tr.fault ? ", fault" : "") +
           "]: {";
    for (size_t i = 0; i < tr.pre.size(); ++i) {
      if (i > 0) out += ",";
      out += places_[tr.pre[i]].name;
    }
    out += "} -> {";
    for (size_t i = 0; i < tr.post.size(); ++i) {
      if (i > 0) out += ",";
      out += places_[tr.post[i]].name;
    }
    out += "}\n";
  }
  return out;
}

}  // namespace dqsq::petri
