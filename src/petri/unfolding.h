// Branching processes and unfoldings of safe Petri nets (paper Definition 4,
// following Engelfriet [13] / McMillan [24]). The unfolding is built by the
// possible-extensions method with an incrementally maintained concurrency
// (co) relation over conditions; causality is tracked as per-event ancestor
// bitsets. The construction is budgeted (events / depth) because unfoldings
// are infinite in general; optional McMillan cut-offs yield a complete
// finite prefix.
#ifndef DQSQ_PETRI_UNFOLDING_H_
#define DQSQ_PETRI_UNFOLDING_H_

#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "petri/net.h"

namespace dqsq::petri {

using CondId = uint32_t;
using EventId = uint32_t;

/// A condition (place instance) of the unfolding; ρ(c) = place.
struct Condition {
  PlaceId place;
  EventId producer;  // kInvalidId for the roots (initially marked places)
};

/// An event (transition instance); ρ(e) = transition.
struct Event {
  TransitionId transition;
  std::vector<CondId> preset;   // aligned with transition's pre order
  std::vector<CondId> postset;  // aligned with transition's post order
  uint32_t depth;               // roots-only events have depth 1
  bool cutoff = false;          // true if pruned by the McMillan criterion
};

struct UnfoldOptions {
  /// Stop after this many events (0 = unlimited; use with cut-offs only).
  size_t max_events = 10000;
  /// Keep only events of depth <= max_depth (0 = unlimited).
  size_t max_depth = 0;
  /// McMillan cut-offs: do not extend beyond an event whose local
  /// configuration reaches a marking already reached by a smaller one.
  bool use_cutoffs = false;
};

class Unfolding {
 public:
  /// Builds a prefix of Unfold(net, M0) within the given budgets.
  static StatusOr<Unfolding> Build(const PetriNet& net,
                                   const UnfoldOptions& options);

  const PetriNet& net() const { return *net_; }
  size_t num_conditions() const { return conditions_.size(); }
  size_t num_events() const { return events_.size(); }
  const Condition& condition(CondId c) const { return conditions_[c]; }
  const Event& event(EventId e) const { return events_[e]; }

  /// Root conditions (images of the initially marked places), in place
  /// order.
  const std::vector<CondId>& roots() const { return roots_; }

  /// True iff the construction reached a fixpoint (no possible extension
  /// was skipped for budget reasons; cut-off pruning still counts as
  /// complete).
  bool complete() const { return complete_; }

  /// Events strictly below `e` (its causal past, excluding `e`).
  const DynBitset& Ancestors(EventId e) const { return ancestors_[e]; }

  /// e1 <= e2 in the causal order?
  bool CausallyPrecedes(EventId e1, EventId e2) const {
    return e1 == e2 || ancestors_[e2].Test(e1);
  }

  /// e1 # e2 (conflict, Definition 4)?
  bool InConflict(EventId e1, EventId e2) const;

  /// c1 co c2 (concurrent conditions)?
  bool Concurrent(CondId c1, CondId c2) const {
    return co_[c1].Test(c2);
  }

  /// Events whose preset is contained in `cut` (given as a sorted-or-not
  /// condition list). Excludes cut-off events' extensions naturally (the
  /// events exist; their postsets do not).
  std::vector<EventId> ExtensionsOfCut(const std::vector<CondId>& cut) const;

  /// The local configuration [e] = ancestors + e, as sorted event ids.
  std::vector<EventId> LocalConfiguration(EventId e) const;

  /// Multi-line rendering (events with presets/postsets), for debugging.
  std::string ToString() const;

 private:
  Unfolding() = default;

  const PetriNet* net_ = nullptr;
  std::vector<Condition> conditions_;
  std::vector<Event> events_;
  std::vector<CondId> roots_;
  std::vector<DynBitset> co_;         // per condition: concurrent conditions
  std::vector<DynBitset> ancestors_;  // per event: strict causal past
  bool complete_ = false;

  friend class UnfoldingBuilder;
};

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_UNFOLDING_H_
