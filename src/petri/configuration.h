// Configurations of a branching process (paper Definition 4): sets of
// events that are causally downward closed and conflict-free. Utilities to
// check, to compute cuts/markings, and to enumerate linearizations.
#ifndef DQSQ_PETRI_CONFIGURATION_H_
#define DQSQ_PETRI_CONFIGURATION_H_

#include <vector>

#include "petri/unfolding.h"

namespace dqsq::petri {

/// A configuration: sorted, duplicate-free event ids.
using Configuration = std::vector<EventId>;

/// Canonicalizes (sorts, dedups) an event set into a Configuration.
Configuration Canonical(std::vector<EventId> events);

/// Downward closed and conflict-free? (For a downward-closed set,
/// conflict-freedom is equivalent to no condition being consumed twice.)
bool IsConfiguration(const Unfolding& u, const Configuration& config);

/// The cut: conditions produced (roots included) and not consumed.
std::vector<CondId> CutOf(const Unfolding& u, const Configuration& config);

/// Marking ρ(cut) reached after executing the configuration.
Marking MarkingOf(const Unfolding& u, const Configuration& config);

/// Appends all linearizations (topological orders) of `config`, stopping at
/// `limit`. Returns false if truncated.
bool Linearizations(const Unfolding& u, const Configuration& config,
                    size_t limit,
                    std::vector<std::vector<EventId>>* out);

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_CONFIGURATION_H_
