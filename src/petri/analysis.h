// State-space analysis of safe Petri nets: explicit reachability graph,
// deadlock detection, dead transitions and place bounds. Used for model
// sanity checks before diagnosis (a model with dead alarm transitions can
// never explain their alarms) and by the test suite to cross-validate the
// unfolding semantics against plain interleaving semantics.
#ifndef DQSQ_PETRI_ANALYSIS_H_
#define DQSQ_PETRI_ANALYSIS_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "petri/net.h"

namespace dqsq::petri {

struct ReachabilityGraph {
  /// Distinct reachable markings; index 0 is the initial marking.
  std::vector<Marking> markings;
  /// edges[m] = (transition, successor marking index).
  std::vector<std::vector<std::pair<TransitionId, size_t>>> edges;
  /// True iff exploration completed within the budget.
  bool complete = true;

  size_t num_markings() const { return markings.size(); }
  size_t num_edges() const {
    size_t n = 0;
    for (const auto& e : edges) n += e.size();
    return n;
  }
};

/// Explores the interleaving state space breadth-first, up to
/// `max_markings` distinct markings. Fails on a safety violation.
StatusOr<ReachabilityGraph> BuildReachabilityGraph(const PetriNet& net,
                                                   size_t max_markings);

struct NetAnalysis {
  /// Reachable markings with no enabled transition.
  std::vector<size_t> deadlocks;
  /// Transitions enabled in no reachable marking.
  std::vector<TransitionId> dead_transitions;
  /// Transitions enabled in at least one reachable marking.
  std::vector<TransitionId> fireable_transitions;
  /// Whether the initial marking is reachable again (the net can cycle).
  bool reversible = false;
  size_t reachable_markings = 0;
};

/// Derives the standard analysis facts from a reachability graph.
NetAnalysis Analyze(const PetriNet& net, const ReachabilityGraph& graph);

/// Convenience: build the graph and analyze (same budget semantics).
StatusOr<NetAnalysis> AnalyzeNet(const PetriNet& net,
                                 size_t max_markings = 100000);

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_ANALYSIS_H_
