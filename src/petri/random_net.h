// Random safe Petri nets for property tests and benchmarks. Generation
// follows the telecom structure the paper models (each peer a local state
// machine, interaction through transitions that touch a neighbor peer's
// places): the net is a synchronized product of one-token automata, hence
// safe by construction — every component carries exactly one token at all
// times. This is the substitution for the paper's (proprietary) SWAN
// telecom networks; see DESIGN.md §4.
#ifndef DQSQ_PETRI_RANDOM_NET_H_
#define DQSQ_PETRI_RANDOM_NET_H_

#include "common/rng.h"
#include "petri/net.h"

namespace dqsq::petri {

struct RandomNetOptions {
  uint32_t num_peers = 3;
  uint32_t places_per_peer = 4;       // automaton states
  uint32_t transitions_per_peer = 5;  // automaton edges
  /// Probability that a transition also synchronizes with a second peer
  /// (consumes and produces one of its places).
  double sync_probability = 0.3;
  uint32_t num_alarm_symbols = 3;
  /// Probability that a transition is unobservable (§4.4 hidden alarms).
  double hidden_probability = 0.0;
  /// Probability that a transition carries the fault label (diagnosability
  /// analysis, petri/verifier.h). Fault transitions are forced
  /// unobservable — an observed fault is detected trivially — so raising
  /// this sweeps the net from diagnosable into undiagnosable regimes.
  /// The default 0.0 draws nothing from the RNG and generates exactly the
  /// nets of earlier revisions (pinned by seed tests).
  double fault_fraction = 0.0;
};

/// Generates a safe net; deterministic for a given (options, rng state).
PetriNet MakeRandomNet(const RandomNetOptions& options, Rng& rng);

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_RANDOM_NET_H_
