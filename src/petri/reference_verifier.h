// Brute-force diagnosability oracle: explicitly enumerates the twin-plant
// state space and decides the ambiguous-cycle condition by strongly
// connected components, mirroring reference_diagnoser's role for the
// diagnosis problem. The semantics is the one documented in
// petri/verifier.h — NOT diagnosable iff a reachable ambiguous twin state
// lies on a cycle that advances the left (faulty) copy — but the code
// shares nothing with VerifierNet or the Datalog encoding: its own state
// interning, its own successor generator, and an SCC-based cycle test
// instead of transitive closure. Agreement between the two is the
// correctness story of the E6 experiment.
#ifndef DQSQ_PETRI_REFERENCE_VERIFIER_H_
#define DQSQ_PETRI_REFERENCE_VERIFIER_H_

#include <optional>

#include "common/status.h"
#include "petri/net.h"
#include "petri/verifier.h"

namespace dqsq::petri {

struct ReferenceVerifierOptions {
  /// Twin-state budget; exceeded => RESOURCE_EXHAUSTED.
  size_t max_states = 200000;
};

struct ReferenceVerifierResult {
  bool diagnosable = true;
  size_t states = 0;
  size_t edges = 0;
  /// An ambiguous lasso when not diagnosable, in the shared witness shape
  /// so tests can replay it through ReplayWitness.
  std::optional<AmbiguousWitness> witness;
};

/// Decides diagnosability of `net` by exhaustive twin-plant search.
StatusOr<ReferenceVerifierResult> ReferenceDiagnosability(
    const PetriNet& net, const ReferenceVerifierOptions& options = {});

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_REFERENCE_VERIFIER_H_
