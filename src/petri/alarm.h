// Alarms and alarm sequences (paper §2): an alarm is a pair (symbol, peer);
// the supervisor observes a sequence whose per-peer subsequences respect
// emission order while the cross-peer interleaving is arbitrary
// (asynchronous channels). The generator produces ground-truth runs and
// their possible observations.
#ifndef DQSQ_PETRI_ALARM_H_
#define DQSQ_PETRI_ALARM_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "petri/net.h"

namespace dqsq::petri {

struct Alarm {
  std::string symbol;
  std::string peer;

  friend bool operator==(const Alarm& a, const Alarm& b) {
    return a.symbol == b.symbol && a.peer == b.peer;
  }
};

using AlarmSequence = std::vector<Alarm>;

/// "(b,p1)(a,p2)(c,p1)".
std::string AlarmSequenceToString(const AlarmSequence& alarms);

/// Convenience literal: {{"b","p1"},{"a","p2"}} from {{symbol, peer}...}.
AlarmSequence MakeAlarms(
    const std::vector<std::pair<std::string, std::string>>& pairs);

/// Per-peer subsequences A_p, preserving order (paper §4.2).
std::map<std::string, std::vector<std::string>> SplitByPeer(
    const AlarmSequence& alarms);

/// A ground-truth run and one possible supervisor observation of it.
struct GeneratedRun {
  std::vector<TransitionId> firing_sequence;
  AlarmSequence observation;  // observable alarms only, interleaved
};

/// Fires `num_firings` random enabled transitions from the initial marking
/// (stopping early at a dead marking), then produces an observation:
/// observable alarms grouped per peer in emission order, randomly
/// interleaved across peers.
StatusOr<GeneratedRun> GenerateRun(const PetriNet& net, size_t num_firings,
                                   Rng& rng);

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_ALARM_H_
