// Twin-plant verifier graph for diagnosability analysis (Brandán Briones/
// Madalinski/Ponce-de-León, arXiv 1502.07744 and 1502.07466; the marking-
// level construction goes back to Jiang et al. and Yoo–Lafortune).
//
// Two synchronized copies of the plant run side by side from the initial
// marking: the LEFT copy may fire any transition and tracks whether a
// fault transition has fired; the RIGHT copy is the fault-free plant
// (fault transitions are excluded). Unobservable transitions fire
// asynchronously in either copy; observable transitions fire as
// synchronized PAIRS (t_left, t_right) with equal (peer, alarm) — exactly
// the repo's observation model, where the supervisor sees per-peer alarm
// subsequences and nothing about the cross-peer interleaving.
//
// A verifier state (M_left, M_right, fault) is AMBIGUOUS when fault holds:
// the two copies have produced identical observations, yet only the left
// one has failed. The plant is NOT diagnosable iff some reachable
// ambiguous state lies on a cycle that advances the left (faulty) copy at
// least once — pumping the cycle yields an arbitrarily long faulty run
// whose observation is matched by a fault-free run, so no supervisor can
// ever announce the fault. (Deadlocking faulty runs do not violate
// diagnosability under this convention, matching the liveness assumption
// of the classical works.) Because the fault flag is monotone, every
// state on such a cycle is ambiguous, which makes the search a plain
// reachability problem — diagnosis/diagnosability.h encodes it as a
// Datalog program; petri/reference_verifier.h answers it by brute force.
#ifndef DQSQ_PETRI_VERIFIER_H_
#define DQSQ_PETRI_VERIFIER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "petri/net.h"

namespace dqsq::petri {

struct VerifierOptions {
  /// Twin-state budget; exceeded => RESOURCE_EXHAUSTED. The state space
  /// is bounded by (reachable markings)^2 * 2.
  size_t max_states = 200000;
};

/// How a verifier edge moves the two copies.
enum class VerifierMove : uint8_t {
  kSync,   // observable pair (left, right), equal (peer, alarm)
  kLeft,   // left copy fires an unobservable transition alone
  kRight,  // right copy fires an unobservable non-fault transition alone
};

struct VerifierState {
  Marking left;
  Marking right;
  bool fault = false;  // left copy has fired a fault transition
};

struct VerifierEdge {
  uint32_t from = 0;
  uint32_t to = 0;
  VerifierMove move = VerifierMove::kSync;
  TransitionId left = kInvalidId;   // set for kSync and kLeft
  TransitionId right = kInvalidId;  // set for kSync and kRight
  /// The peer of the firing transition(s); for kSync both sides share it
  /// by construction. This is the per-peer placement unit for the
  /// distributed Datalog encoding.
  PeerIndex peer = 0;

  /// True iff the edge extends the left (fault-tracking) copy's run —
  /// the progress requirement of the ambiguous-cycle condition.
  bool AdvancesFaultyCopy() const { return move != VerifierMove::kRight; }
};

/// One step of a witness trace: the edge's transition pair.
struct VerifierStep {
  VerifierMove move = VerifierMove::kSync;
  TransitionId left = kInvalidId;
  TransitionId right = kInvalidId;
};

/// A non-diagnosability witness: an ambiguous lasso. `prefix` leads from
/// the initial twin state to `anchor`; `cycle` returns to `anchor` and
/// advances the faulty copy at least once. Pumping `cycle` produces the
/// ambiguous pair of runs: left = faulty, right = fault-free, identical
/// per-peer observable alarm projections.
struct AmbiguousWitness {
  uint32_t anchor = 0;
  std::vector<VerifierStep> prefix;
  std::vector<VerifierStep> cycle;
};

/// The explicit twin-plant graph. States are discovered by BFS from
/// (M0, M0, false), so ids — and the Datalog constants "v<id>" derived
/// from them — are deterministic for a given net.
class VerifierNet {
 public:
  static StatusOr<VerifierNet> Build(const PetriNet& net,
                                     const VerifierOptions& options = {});

  const PetriNet& net() const { return *net_; }
  size_t num_states() const { return states_.size(); }
  const VerifierState& state(uint32_t s) const { return states_[s]; }
  uint32_t initial_state() const { return 0; }
  bool ambiguous(uint32_t s) const { return states_[s].fault; }
  const std::vector<VerifierEdge>& edges() const { return edges_; }
  /// Indices into edges() of the edges leaving `s`.
  const std::vector<uint32_t>& OutEdges(uint32_t s) const {
    return out_edges_[s];
  }

  /// Datalog constant naming a verifier state ("v12").
  static std::string StateName(uint32_t s) { return "v" + std::to_string(s); }
  /// Parses a StateName back, or kInvalidId.
  uint32_t FindState(const std::string& name) const;

  /// Extracts an ambiguous lasso anchored at `anchor`: a fault-advancing
  /// edge out of `anchor` followed by a path back to `anchor` through
  /// ambiguous states, plus a shortest path from the initial state to
  /// `anchor`. Fails if `anchor` admits no such cycle — i.e. callers pass
  /// anchors the cycle search (Datalog or oracle) certified.
  StatusOr<AmbiguousWitness> ExtractWitness(uint32_t anchor) const;

  /// Human-readable summary.
  std::string ToString() const;

 private:
  const PetriNet* net_ = nullptr;
  std::vector<VerifierState> states_;
  std::vector<VerifierEdge> edges_;
  std::vector<std::vector<uint32_t>> out_edges_;
};

/// Independently re-validates a witness against the net semantics: both
/// projected firing sequences replay through the token game, the left run
/// fires a fault and the right run never does, the per-peer observable
/// alarm projections coincide, the cycle returns to the anchor's marking
/// pair, and the cycle advances the left copy. Returns OK iff the witness
/// denotes a genuine ambiguous pair of runs.
Status ReplayWitness(const PetriNet& net, const AmbiguousWitness& witness);

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_VERIFIER_H_
