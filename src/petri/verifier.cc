#include "petri/verifier.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"

namespace dqsq::petri {

namespace {

/// Interning key for a twin state.
struct TwinKey {
  Marking left;
  Marking right;
  bool fault;

  friend bool operator==(const TwinKey& a, const TwinKey& b) {
    return a.fault == b.fault && a.left == b.left && a.right == b.right;
  }
};

struct TwinKeyHash {
  size_t operator()(const TwinKey& k) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (bool b : k.left) HashCombine(h, b ? 2 : 1);
    HashCombine(h, 7);
    for (bool b : k.right) HashCombine(h, b ? 2 : 1);
    HashCombine(h, k.fault ? 2 : 1);
    return h;
  }
};

}  // namespace

StatusOr<VerifierNet> VerifierNet::Build(const PetriNet& net,
                                         const VerifierOptions& options) {
  DQSQ_RETURN_IF_ERROR(net.Validate());
  VerifierNet v;
  v.net_ = &net;

  std::unordered_map<TwinKey, uint32_t, TwinKeyHash> index;
  auto intern = [&](TwinKey key) -> uint32_t {
    auto [it, inserted] = index.emplace(key, v.states_.size());
    if (inserted) {
      v.states_.push_back(VerifierState{std::move(key.left),
                                        std::move(key.right), key.fault});
      v.out_edges_.emplace_back();
    }
    return it->second;
  };

  intern(TwinKey{net.initial_marking(), net.initial_marking(), false});
  for (uint32_t s = 0; s < v.states_.size(); ++s) {
    if (v.states_.size() > options.max_states) {
      return ResourceExhaustedError(
          "verifier exceeded twin-state budget of " +
          std::to_string(options.max_states));
    }
    // Copy: intern() growing states_ invalidates references.
    const Marking left = v.states_[s].left;
    const Marking right = v.states_[s].right;
    const bool fault = v.states_[s].fault;

    auto add_edge = [&](TwinKey next, VerifierMove move, TransitionId tl,
                        TransitionId tr, PeerIndex peer) {
      uint32_t to = intern(std::move(next));
      uint32_t id = static_cast<uint32_t>(v.edges_.size());
      v.edges_.push_back(VerifierEdge{s, to, move, tl, tr, peer});
      v.out_edges_[s].push_back(id);
    };

    for (TransitionId tl = 0; tl < net.num_transitions(); ++tl) {
      const Transition& t1 = net.transition(tl);
      if (!net.IsEnabled(left, tl)) continue;
      DQSQ_ASSIGN_OR_RETURN(Marking left2, net.Fire(left, tl));
      if (!t1.observable) {
        // Left copy moves alone on unobservable transitions (faulty or
        // not); the observation is unchanged.
        add_edge(TwinKey{std::move(left2), right, fault || t1.fault},
                 VerifierMove::kLeft, tl, kInvalidId, t1.peer);
        continue;
      }
      // Observable: must pair with an observable non-fault transition of
      // the right copy carrying the same (peer, alarm) — the two runs
      // then extend their per-peer observations identically.
      for (TransitionId tr = 0; tr < net.num_transitions(); ++tr) {
        const Transition& t2 = net.transition(tr);
        if (!t2.observable || t2.fault) continue;
        if (t2.peer != t1.peer || t2.alarm != t1.alarm) continue;
        if (!net.IsEnabled(right, tr)) continue;
        DQSQ_ASSIGN_OR_RETURN(Marking right2, net.Fire(right, tr));
        add_edge(TwinKey{left2, std::move(right2), fault || t1.fault},
                 VerifierMove::kSync, tl, tr, t1.peer);
      }
    }
    for (TransitionId tr = 0; tr < net.num_transitions(); ++tr) {
      const Transition& t2 = net.transition(tr);
      if (t2.observable || t2.fault) continue;
      if (!net.IsEnabled(right, tr)) continue;
      DQSQ_ASSIGN_OR_RETURN(Marking right2, net.Fire(right, tr));
      add_edge(TwinKey{left, std::move(right2), fault}, VerifierMove::kRight,
               kInvalidId, tr, t2.peer);
    }
  }
  return v;
}

uint32_t VerifierNet::FindState(const std::string& name) const {
  if (name.size() < 2 || name[0] != 'v') return kInvalidId;
  uint32_t s = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return kInvalidId;
    s = s * 10 + static_cast<uint32_t>(name[i] - '0');
  }
  return s < states_.size() ? s : kInvalidId;
}

namespace {

/// Shortest edge path `from` -> `to` by BFS; empty when from == to.
StatusOr<std::vector<uint32_t>> EdgePath(const VerifierNet& v, uint32_t from,
                                         uint32_t to) {
  if (from == to) return std::vector<uint32_t>{};
  std::vector<uint32_t> pred_edge(v.num_states(), kInvalidId);
  std::vector<bool> seen(v.num_states(), false);
  seen[from] = true;
  std::deque<uint32_t> frontier{from};
  while (!frontier.empty()) {
    uint32_t s = frontier.front();
    frontier.pop_front();
    for (uint32_t e : v.OutEdges(s)) {
      uint32_t next = v.edges()[e].to;
      if (seen[next]) continue;
      seen[next] = true;
      pred_edge[next] = e;
      if (next == to) {
        std::vector<uint32_t> path;
        for (uint32_t cur = to; cur != from;) {
          path.push_back(pred_edge[cur]);
          cur = v.edges()[pred_edge[cur]].from;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return NotFoundError("no verifier path " + VerifierNet::StateName(from) +
                       " -> " + VerifierNet::StateName(to));
}

VerifierStep StepOf(const VerifierEdge& e) {
  return VerifierStep{e.move, e.left, e.right};
}

}  // namespace

StatusOr<AmbiguousWitness> VerifierNet::ExtractWitness(uint32_t anchor) const {
  if (anchor >= states_.size()) {
    return InvalidArgumentError("anchor state out of range");
  }
  if (!ambiguous(anchor)) {
    return FailedPreconditionError("witness anchor " + StateName(anchor) +
                                   " is not ambiguous");
  }
  AmbiguousWitness witness;
  witness.anchor = anchor;
  DQSQ_ASSIGN_OR_RETURN(std::vector<uint32_t> prefix,
                        EdgePath(*this, initial_state(), anchor));
  for (uint32_t e : prefix) witness.prefix.push_back(StepOf(edges_[e]));

  // A fault-advancing first edge, then back to the anchor. The fault flag
  // is monotone, so everything reachable from the (ambiguous) anchor stays
  // ambiguous — no filtering is needed on the return path.
  for (uint32_t e : out_edges_[anchor]) {
    const VerifierEdge& first = edges_[e];
    if (!first.AdvancesFaultyCopy()) continue;
    auto back = EdgePath(*this, first.to, anchor);
    if (!back.ok()) continue;
    witness.cycle.push_back(StepOf(first));
    for (uint32_t b : *back) witness.cycle.push_back(StepOf(edges_[b]));
    return witness;
  }
  return NotFoundError("no ambiguous cycle anchored at " + StateName(anchor));
}

std::string VerifierNet::ToString() const {
  std::string out = "VerifierNet{states=" + std::to_string(states_.size()) +
                    ", edges=" + std::to_string(edges_.size()) +
                    ", ambiguous=";
  size_t ambiguous_states = 0;
  for (uint32_t s = 0; s < states_.size(); ++s) {
    if (ambiguous(s)) ++ambiguous_states;
  }
  out += std::to_string(ambiguous_states) + "}";
  return out;
}

Status ReplayWitness(const PetriNet& net, const AmbiguousWitness& witness) {
  if (witness.cycle.empty()) {
    return FailedPreconditionError("witness cycle is empty");
  }
  Marking left = net.initial_marking();
  Marking right = net.initial_marking();
  bool left_fault = false;
  // Per-peer observable alarm projections, rebuilt independently for each
  // copy and compared at the end.
  std::map<PeerIndex, std::vector<std::string>> left_obs, right_obs;

  auto fire_left = [&](TransitionId t) -> Status {
    DQSQ_ASSIGN_OR_RETURN(left, net.Fire(left, t));
    const Transition& tr = net.transition(t);
    if (tr.fault) left_fault = true;
    if (tr.observable) left_obs[tr.peer].push_back(tr.alarm);
    return Status::Ok();
  };
  auto fire_right = [&](TransitionId t) -> Status {
    const Transition& tr = net.transition(t);
    if (tr.fault) {
      return FailedPreconditionError("right (fault-free) copy fires fault "
                                     "transition " + tr.name);
    }
    DQSQ_ASSIGN_OR_RETURN(right, net.Fire(right, t));
    if (tr.observable) right_obs[tr.peer].push_back(tr.alarm);
    return Status::Ok();
  };

  auto replay = [&](const std::vector<VerifierStep>& steps) -> Status {
    for (const VerifierStep& step : steps) {
      switch (step.move) {
        case VerifierMove::kSync: {
          const Transition& tl = net.transition(step.left);
          const Transition& tr = net.transition(step.right);
          if (!tl.observable || !tr.observable) {
            return FailedPreconditionError("sync step fires an unobservable "
                                           "transition");
          }
          if (tl.peer != tr.peer || tl.alarm != tr.alarm) {
            return FailedPreconditionError(
                "sync step pairs mismatched observations: " + tl.name +
                " vs " + tr.name);
          }
          DQSQ_RETURN_IF_ERROR(fire_left(step.left));
          DQSQ_RETURN_IF_ERROR(fire_right(step.right));
          break;
        }
        case VerifierMove::kLeft:
          if (net.transition(step.left).observable) {
            return FailedPreconditionError("solo left step is observable");
          }
          DQSQ_RETURN_IF_ERROR(fire_left(step.left));
          break;
        case VerifierMove::kRight:
          if (net.transition(step.right).observable) {
            return FailedPreconditionError("solo right step is observable");
          }
          DQSQ_RETURN_IF_ERROR(fire_right(step.right));
          break;
      }
    }
    return Status::Ok();
  };

  DQSQ_RETURN_IF_ERROR(replay(witness.prefix));
  if (!left_fault) {
    return FailedPreconditionError("witness prefix fires no fault in the "
                                   "left copy — the anchor is not ambiguous");
  }
  const Marking anchor_left = left;
  const Marking anchor_right = right;

  DQSQ_RETURN_IF_ERROR(replay(witness.cycle));
  if (left != anchor_left || right != anchor_right) {
    return FailedPreconditionError("witness cycle does not return to the "
                                   "anchor's marking pair");
  }
  bool advances = false;
  for (const VerifierStep& step : witness.cycle) {
    if (step.move != VerifierMove::kRight) advances = true;
  }
  if (!advances) {
    return FailedPreconditionError("witness cycle never advances the faulty "
                                   "copy");
  }
  if (left_obs != right_obs) {
    return FailedPreconditionError("witness runs have different per-peer "
                                   "observable projections");
  }
  return Status::Ok();
}

}  // namespace dqsq::petri
