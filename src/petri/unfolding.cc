#include "petri/unfolding.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace dqsq::petri {

// Incremental construction state. Not in an unnamed namespace: it is the
// friend of Unfolding declared in the header.
class UnfoldingBuilder {
 public:
  UnfoldingBuilder(const PetriNet& net, const UnfoldOptions& options)
      : net_(net), options_(options) {
    u_.net_ = &net;
  }

  StatusOr<Unfolding> Run() {
    ScopedTimer timer(TimeMetric("petri.unfold.wall_ns"));
    // Roots: one condition per initially marked place, pairwise concurrent.
    for (PlaceId p = 0; p < net_.num_places(); ++p) {
      if (!net_.initial_marking()[p]) continue;
      CondId c = AddCondition(p, kInvalidId);
      u_.roots_.push_back(c);
    }
    for (CondId a : u_.roots_) {
      for (CondId b : u_.roots_) {
        if (a != b) u_.co_[a].Set(b);
      }
    }
    for (CondId c : u_.roots_) pending_.push_back(c);
    if (options_.use_cutoffs) {
      // The empty configuration reaches the initial marking.
      markings_[net_.initial_marking()] = 0;
    }

    u_.complete_ = true;
    while (!pending_.empty()) {
      CondId c = pending_.front();
      pending_.pop_front();
      for (TransitionId t : net_.Consumers(u_.conditions_[c].place)) {
        if (!ExtendWith(t, c)) {
          u_.complete_ = false;
          pending_.clear();
          break;
        }
      }
    }
    FlushMetrics();
    return std::move(u_);
  }

 private:
  CondId AddCondition(PlaceId place, EventId producer) {
    CondId c = static_cast<CondId>(u_.conditions_.size());
    u_.conditions_.push_back(Condition{place, producer});
    u_.co_.emplace_back();
    conds_by_place_.resize(net_.num_places());
    conds_by_place_[place].push_back(c);
    return c;
  }

  // Enumerates all new events of transition `t` whose preset contains the
  // (new) condition `anchor`. Returns false if the event budget is hit.
  bool ExtendWith(TransitionId t, CondId anchor) {
    const Transition& tr = net_.transition(t);
    // Position of anchor's place in tr.pre (places are distinct).
    size_t anchor_pos = 0;
    while (tr.pre[anchor_pos] != u_.conditions_[anchor].place) ++anchor_pos;
    std::vector<CondId> chosen(tr.pre.size(), kInvalidId);
    chosen[anchor_pos] = anchor;
    return Enumerate(t, anchor_pos, 0, chosen);
  }

  // Recursive choice of co-set members for each preset position.
  bool Enumerate(TransitionId t, size_t anchor_pos, size_t pos,
                 std::vector<CondId>& chosen) {
    const Transition& tr = net_.transition(t);
    if (pos == tr.pre.size()) return AddEventIfNew(t, chosen);
    if (pos == anchor_pos) {
      return Enumerate(t, anchor_pos, pos + 1, chosen);
    }
    if (tr.pre[pos] >= conds_by_place_.size()) return true;  // no candidates
    // Candidates: conditions of the right place, concurrent with every
    // already-chosen condition. Index loop over a captured bound: deeper
    // recursion appends new conditions to this vector (they get their own
    // pending-queue pass).
    size_t num_candidates = conds_by_place_[tr.pre[pos]].size();
    for (size_t cand_idx = 0; cand_idx < num_candidates; ++cand_idx) {
      CondId cand = conds_by_place_[tr.pre[pos]][cand_idx];
      bool ok = true;
      for (size_t i = 0; i < tr.pre.size() && ok; ++i) {
        if (chosen[i] != kInvalidId && i != pos) {
          ok = u_.co_[cand].Test(chosen[i]);
        }
      }
      if (!ok) continue;
      chosen[pos] = cand;
      if (!Enumerate(t, anchor_pos, pos + 1, chosen)) return false;
      chosen[pos] = kInvalidId;
    }
    return true;
  }

  // Hot-loop accounting stays in plain members; FlushMetrics() pushes the
  // totals to the registry once per build.
  void FlushMetrics() {
    auto& registry = MetricsRegistry::Global();
    registry.GetCounter("petri.unfold.builds").Increment();
    registry.GetCounter("petri.unfold.events", {}, "events")
        .Increment(u_.events_.size());
    registry.GetCounter("petri.unfold.conditions", {}, "conditions")
        .Increment(u_.conditions_.size());
    registry.GetCounter("petri.unfold.pe_candidates", {}, "events")
        .Increment(pe_candidates_);
    registry.GetCounter("petri.unfold.cutoffs", {}, "events")
        .Increment(cutoff_hits_);
    if (!u_.complete_) registry.GetCounter("petri.unfold.truncated").Increment();
  }

  bool AddEventIfNew(TransitionId t, const std::vector<CondId>& preset) {
    ++pe_candidates_;
    // Dedup on (transition, preset-as-set).
    std::vector<CondId> key = preset;
    std::sort(key.begin(), key.end());
    if (!seen_events_.insert({t, key}).second) return true;

    // Depth = 1 + deepest producer.
    uint32_t depth = 1;
    for (CondId c : preset) {
      EventId producer = u_.conditions_[c].producer;
      if (producer != kInvalidId) {
        depth = std::max(depth, u_.events_[producer].depth + 1);
      }
    }
    if (options_.max_depth > 0 && depth > options_.max_depth) return true;

    if (options_.max_events > 0 && u_.events_.size() >= options_.max_events) {
      return false;  // budget exhausted; prefix is incomplete
    }

    EventId e = static_cast<EventId>(u_.events_.size());
    Event event;
    event.transition = t;
    event.preset = preset;
    event.depth = depth;

    DynBitset anc;
    for (CondId c : preset) {
      EventId producer = u_.conditions_[c].producer;
      if (producer != kInvalidId) {
        anc.UnionWith(u_.ancestors_[producer]);
        anc.Set(producer);
      }
    }

    // McMillan cut-off: compare the marking reached by [e] against earlier
    // local configurations.
    bool cutoff = false;
    if (options_.use_cutoffs) {
      size_t size = anc.PopCount() + 1;
      Marking mark = MarkingOfLocalConfig(anc, e, preset, t);
      auto it = markings_.find(mark);
      if (it != markings_.end() && it->second < size) {
        cutoff = true;
      } else if (it == markings_.end()) {
        markings_[mark] = size;
      } else {
        it->second = std::min(it->second, size);
      }
    }
    event.cutoff = cutoff;
    if (cutoff) ++cutoff_hits_;

    u_.events_.push_back(std::move(event));
    u_.ancestors_.push_back(std::move(anc));

    if (!cutoff) {
      // co-set of the event: conditions concurrent with every preset member.
      DynBitset co_e = u_.co_[preset[0]];
      for (size_t i = 1; i < preset.size(); ++i) {
        co_e.IntersectWith(u_.co_[preset[i]]);
      }
      for (CondId c : preset) co_e.Clear(c);

      const Transition& tr = net_.transition(t);
      std::vector<CondId> postset;
      for (PlaceId p : tr.post) postset.push_back(AddCondition(p, e));
      u_.events_[e].postset = postset;

      for (CondId c : postset) {
        u_.co_[c] = co_e;
        for (CondId sibling : postset) {
          if (sibling != c) u_.co_[c].Set(sibling);
        }
        for (uint32_t other : co_e.ToVector()) u_.co_[other].Set(c);
        pending_.push_back(c);
      }
    }
    return true;
  }

  // Marking reached by the local configuration [e] where e (not yet stored)
  // has ancestor set `anc` and preset `preset` of transition `t`.
  Marking MarkingOfLocalConfig(const DynBitset& anc, EventId /*e*/,
                               const std::vector<CondId>& preset,
                               TransitionId t) {
    // Consumed conditions: presets of all events in [e].
    std::set<CondId> consumed(preset.begin(), preset.end());
    std::vector<uint32_t> config = anc.ToVector();
    for (EventId f : config) {
      consumed.insert(u_.events_[f].preset.begin(),
                      u_.events_[f].preset.end());
    }
    Marking mark(net_.num_places(), false);
    // Produced: roots + postsets of [e]'s events + e's own postset (by
    // transition image, since conditions aren't created yet).
    for (CondId c : u_.roots_) {
      if (!consumed.contains(c)) mark[u_.conditions_[c].place] = true;
    }
    for (EventId f : config) {
      for (CondId c : u_.events_[f].postset) {
        if (!consumed.contains(c)) mark[u_.conditions_[c].place] = true;
      }
    }
    for (PlaceId p : net_.transition(t).post) mark[p] = true;
    return mark;
  }

  const PetriNet& net_;
  const UnfoldOptions& options_;
  Unfolding u_;
  std::vector<std::vector<CondId>> conds_by_place_;
  std::deque<CondId> pending_;
  std::set<std::pair<TransitionId, std::vector<CondId>>> seen_events_;
  std::map<Marking, size_t> markings_;  // marking -> smallest |[e]|
  size_t pe_candidates_ = 0;  // AddEventIfNew calls (possible extensions)
  size_t cutoff_hits_ = 0;    // events flagged cut-off by McMillan's test
};

StatusOr<Unfolding> Unfolding::Build(const PetriNet& net,
                                     const UnfoldOptions& options) {
  DQSQ_RETURN_IF_ERROR(net.Validate());
  UnfoldingBuilder builder(net, options);
  return builder.Run();
}

bool Unfolding::InConflict(EventId e1, EventId e2) const {
  if (e1 == e2) return false;
  if (CausallyPrecedes(e1, e2) || CausallyPrecedes(e2, e1)) return false;
  // Conflict iff distinct events a <= e1, b <= e2 consume a common
  // condition (Definition 4 with v = e1, u = e2).
  std::map<CondId, std::vector<EventId>> consumers;
  for (EventId f : LocalConfiguration(e1)) {
    for (CondId c : events_[f].preset) consumers[c].push_back(f);
  }
  for (EventId f : LocalConfiguration(e2)) {
    for (CondId c : events_[f].preset) {
      auto it = consumers.find(c);
      if (it == consumers.end()) continue;
      for (EventId g : it->second) {
        if (g != f) return true;
      }
    }
  }
  return false;
}

std::vector<EventId> Unfolding::ExtensionsOfCut(
    const std::vector<CondId>& cut) const {
  std::set<CondId> cut_set(cut.begin(), cut.end());
  std::vector<EventId> out;
  for (EventId e = 0; e < events_.size(); ++e) {
    bool ok = true;
    for (CondId c : events_[e].preset) {
      if (!cut_set.contains(c)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(e);
  }
  return out;
}

std::vector<EventId> Unfolding::LocalConfiguration(EventId e) const {
  std::vector<EventId> out = ancestors_[e].ToVector();
  out.push_back(e);
  std::sort(out.begin(), out.end());
  return out;
}

std::string Unfolding::ToString() const {
  std::string out = "Unfolding{conditions=" +
                    std::to_string(conditions_.size()) +
                    ", events=" + std::to_string(events_.size()) +
                    (complete_ ? ", complete" : ", truncated") + "}\n";
  for (EventId e = 0; e < events_.size(); ++e) {
    const Event& ev = events_[e];
    out += "  e" + std::to_string(e) + " [" +
           net_->transition(ev.transition).name + "]";
    if (ev.cutoff) out += " (cutoff)";
    out += ": {";
    for (size_t i = 0; i < ev.preset.size(); ++i) {
      if (i > 0) out += ",";
      out += "c" + std::to_string(ev.preset[i]);
    }
    out += "} -> {";
    for (size_t i = 0; i < ev.postset.size(); ++i) {
      if (i > 0) out += ",";
      out += "c" + std::to_string(ev.postset[i]);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace dqsq::petri
