#include "petri/alarm.h"

#include "common/logging.h"

namespace dqsq::petri {

std::string AlarmSequenceToString(const AlarmSequence& alarms) {
  std::string out;
  for (const Alarm& a : alarms) {
    out += "(" + a.symbol + "," + a.peer + ")";
  }
  return out;
}

AlarmSequence MakeAlarms(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  AlarmSequence out;
  out.reserve(pairs.size());
  for (const auto& [symbol, peer] : pairs) out.push_back(Alarm{symbol, peer});
  return out;
}

std::map<std::string, std::vector<std::string>> SplitByPeer(
    const AlarmSequence& alarms) {
  std::map<std::string, std::vector<std::string>> out;
  for (const Alarm& a : alarms) out[a.peer].push_back(a.symbol);
  return out;
}

StatusOr<GeneratedRun> GenerateRun(const PetriNet& net, size_t num_firings,
                                   Rng& rng) {
  GeneratedRun run;
  Marking m = net.initial_marking();
  // Per-peer emission queues (channel contents in order).
  std::vector<std::vector<Alarm>> queues(net.num_peers());
  for (size_t i = 0; i < num_firings; ++i) {
    std::vector<TransitionId> enabled = net.EnabledTransitions(m);
    if (enabled.empty()) break;  // dead marking
    TransitionId t = rng.Pick(enabled);
    DQSQ_ASSIGN_OR_RETURN(m, net.Fire(m, t));
    run.firing_sequence.push_back(t);
    const Transition& tr = net.transition(t);
    if (tr.observable) {
      queues[tr.peer].push_back(Alarm{tr.alarm, net.peer_name(tr.peer)});
    }
  }
  // Random merge of the per-peer queues: per-peer order preserved,
  // cross-peer order arbitrary (asynchronous delivery).
  std::vector<size_t> next(queues.size(), 0);
  size_t remaining = 0;
  for (const auto& q : queues) remaining += q.size();
  while (remaining > 0) {
    // Pick a nonempty queue uniformly weighted by remaining length so long
    // bursts do not starve.
    uint64_t pick = rng.NextBelow(remaining);
    for (size_t p = 0; p < queues.size(); ++p) {
      size_t left = queues[p].size() - next[p];
      if (pick < left) {
        run.observation.push_back(queues[p][next[p]++]);
        break;
      }
      pick -= left;
    }
    --remaining;
  }
  return run;
}

}  // namespace dqsq::petri
