// The dedicated diagnosis algorithm of Benveniste, Fabre, Haar, Jard
// ("Diagnosis of asynchronous discrete event systems: a net unfolding
// approach", IEEE TAC 2003 — the paper's reference [8] and the comparison
// point of its Theorem 4): build the product of the net with the alarm
// sequence, unfold the product, and extract the complete explanations.
// The size of the product unfolding, projected to original-net nodes, is
// the materialization measure dQSQ is compared against (experiment E1).
#ifndef DQSQ_PETRI_BFHJ_H_
#define DQSQ_PETRI_BFHJ_H_

#include <vector>

#include "common/status.h"
#include "petri/alarm.h"
#include "petri/configuration.h"
#include "petri/product.h"
#include "petri/unfolding.h"

namespace dqsq::petri {

struct BfhjOptions {
  /// Product-unfolding event budget.
  size_t max_events = 50000;
  /// Explanation-extraction DFS step budget.
  size_t max_steps = 1000000;
  /// Hidden-event cap per explanation (paper §4.4 extension).
  size_t max_unobservable = 8;
};

struct BfhjResult {
  /// Events of the product unfolding = instances of original transitions
  /// materialized while explaining the alarms (Theorem 4's measure).
  size_t events_materialized = 0;
  /// Conditions of the product unfolding that map to original places.
  size_t conditions_materialized = 0;
  /// True if the product unfolding reached its natural fixpoint.
  bool complete = false;
  /// Explanations as configurations of the *product* unfolding.
  std::vector<Configuration> product_explanations;
  /// Explanations replayed onto `original_unfolding` (only when one is
  /// supplied to BfhjDiagnose), canonical and deduplicated — directly
  /// comparable with ReferenceDiagnose output.
  std::vector<Configuration> explanations;
  /// The projection U\hat(N,M,A) of the product unfolding onto the
  /// original net, as canonical Skolem terms "f(tr_t, g(...), ...)" /
  /// "g(x, pl_s)" (chain nodes erased, duplicates collapsed). Directly
  /// comparable with the trans/places facts the Datalog engines
  /// materialize — the executable form of the paper's Theorem 4.
  std::vector<std::string> projected_event_terms;    // sorted, unique
  std::vector<std::string> projected_condition_terms;  // sorted, unique
};

/// Runs the BFHJ pipeline. When `original_unfolding` is non-null it must be
/// a prefix of Unfold(net) deep enough to contain every explanation; the
/// product explanations are then replayed onto it.
StatusOr<BfhjResult> BfhjDiagnose(const PetriNet& net,
                                  const AlarmSequence& alarms,
                                  const BfhjOptions& options,
                                  const Unfolding* original_unfolding);

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_BFHJ_H_
