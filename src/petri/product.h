// Product of a labeled Petri net with an alarm sequence (paper §4.3,
// sketching the algorithm of [8]): each peer's alarm subsequence A_p
// becomes a linear net q_{p,0} -> u_{p,1} -> q_{p,1} -> ...; every
// observable transition of peer p with alarm a synchronizes with each
// chain transition u_{p,i} carrying the same symbol. Runs of the product
// are exactly the runs of the original net compatible with the observation.
#ifndef DQSQ_PETRI_PRODUCT_H_
#define DQSQ_PETRI_PRODUCT_H_

#include <vector>

#include "common/status.h"
#include "petri/alarm.h"
#include "petri/net.h"

namespace dqsq::petri {

struct AlarmProduct {
  PetriNet product;
  /// For each product transition: the original transition it instantiates.
  std::vector<TransitionId> original_transition;
  /// For each product place: the original place, or kInvalidId for alarm
  /// chain places.
  std::vector<PlaceId> original_place;
  /// The final chain place of each peer (all must be marked for an
  /// explanation to be complete). One entry per peer of the original net.
  std::vector<PlaceId> chain_end;
};

/// Builds the product. Peers absent from `alarms` get an empty chain, which
/// correctly forbids their observable transitions (their alarms were not
/// observed). Unobservable transitions pass through unsynchronized.
StatusOr<AlarmProduct> BuildAlarmProduct(const PetriNet& net,
                                         const AlarmSequence& alarms);

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_PRODUCT_H_
