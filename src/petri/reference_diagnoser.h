// Exhaustive reference diagnoser: enumerates every configuration of a
// (prefix of the) unfolding that explains an alarm sequence, by depth-first
// search over cuts. Exponential — this is the oracle the optimized engines
// (supervisor Datalog program, BFHJ product unfolding) are validated
// against, mirroring the paper's problem statement in §2.
//
// Matching semantics: a configuration C explains A iff C has a
// linearization whose per-peer projection of (observable) alarms equals the
// per-peer subsequences of A. This is the semantics computed by both the
// paper's supervisor program (configPrefixes extends one alarm at a time)
// and the product construction of [8].
#ifndef DQSQ_PETRI_REFERENCE_DIAGNOSER_H_
#define DQSQ_PETRI_REFERENCE_DIAGNOSER_H_

#include <vector>

#include "common/status.h"
#include "petri/alarm.h"
#include "petri/configuration.h"
#include "petri/unfolding.h"

namespace dqsq::petri {

struct ReferenceOptions {
  /// DFS step budget; exceeded => RESOURCE_EXHAUSTED.
  size_t max_steps = 1000000;
  /// §4.4 hidden transitions: allow unobservable events in explanations
  /// (they consume no alarm). Explanations then contain the matched
  /// observable events plus any unobservable ones fired.
  bool allow_unobservable = false;
  /// Cap on unobservable events per explanation (loops of hidden events
  /// make the search infinite otherwise).
  size_t max_unobservable = 8;
};

struct ReferenceResult {
  std::vector<Configuration> explanations;  // canonical, deduplicated
  size_t steps = 0;
};

/// All explanations of `alarms` among configurations of `unfolding`.
/// `unfolding` must be deep enough to contain every explanation (e.g.
/// complete, or depth >= |alarms| plus the hidden budget).
StatusOr<ReferenceResult> ReferenceDiagnose(const Unfolding& unfolding,
                                            const AlarmSequence& alarms,
                                            const ReferenceOptions& options);

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_REFERENCE_DIAGNOSER_H_
