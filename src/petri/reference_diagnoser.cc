#include "petri/reference_diagnoser.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace dqsq::petri {

namespace {

class Searcher {
 public:
  Searcher(const Unfolding& u, const AlarmSequence& alarms,
           const ReferenceOptions& options)
      : u_(u), options_(options) {
    for (const Alarm& a : alarms) {
      PeerIndex p = u.net().FindPeer(a.peer);
      // Alarms from unknown peers can never be explained.
      if (p == kInvalidId) {
        impossible_ = true;
        return;
      }
      per_peer_.resize(u.net().num_peers());
      per_peer_[p].push_back(a.symbol);
    }
    per_peer_.resize(u.net().num_peers());
  }

  StatusOr<ReferenceResult> Run() {
    ReferenceResult result;
    if (impossible_) return result;
    std::vector<CondId> cut = u_.roots();
    std::vector<size_t> idx(per_peer_.size(), 0);
    std::vector<EventId> chosen;
    Status status =
        Dfs(cut, idx, chosen, /*unobservable_used=*/0, &result);
    DQSQ_RETURN_IF_ERROR(status);
    // Canonicalize and deduplicate (different interleavings produce the
    // same configuration).
    std::set<Configuration> unique;
    for (Configuration& c : result.explanations) {
      unique.insert(Canonical(std::move(c)));
    }
    result.explanations.assign(unique.begin(), unique.end());
    return result;
  }

 private:
  bool AllConsumed(const std::vector<size_t>& idx) const {
    for (size_t p = 0; p < per_peer_.size(); ++p) {
      if (idx[p] < per_peer_[p].size()) return false;
    }
    return true;
  }

  Status Dfs(std::vector<CondId>& cut, std::vector<size_t>& idx,
             std::vector<EventId>& chosen, size_t unobservable_used,
             ReferenceResult* result) {
    if (++result->steps > options_.max_steps) {
      return ResourceExhaustedError("reference diagnoser step budget");
    }
    if (AllConsumed(idx)) {
      result->explanations.emplace_back(chosen.begin(), chosen.end());
      // Continue: with hidden transitions longer explanations may also
      // match (they do not consume alarms), but without them every
      // extension consumes an alarm, so we can stop this branch.
      if (!options_.allow_unobservable) return Status::Ok();
    }
    for (EventId e : u_.ExtensionsOfCut(cut)) {
      const Transition& tr = u_.net().transition(u_.event(e).transition);
      bool observable = tr.observable;
      if (observable) {
        if (AllConsumed(idx)) continue;
        if (tr.peer >= per_peer_.size()) continue;
        const auto& expected = per_peer_[tr.peer];
        if (idx[tr.peer] >= expected.size()) continue;
        if (expected[idx[tr.peer]] != tr.alarm) continue;
      } else {
        if (!options_.allow_unobservable) continue;
        if (unobservable_used >= options_.max_unobservable) continue;
      }
      // Fire e.
      std::vector<CondId> new_cut;
      std::set<CondId> preset(u_.event(e).preset.begin(),
                              u_.event(e).preset.end());
      for (CondId c : cut) {
        if (!preset.contains(c)) new_cut.push_back(c);
      }
      new_cut.insert(new_cut.end(), u_.event(e).postset.begin(),
                     u_.event(e).postset.end());
      if (observable) ++idx[tr.peer];
      chosen.push_back(e);
      DQSQ_RETURN_IF_ERROR(Dfs(new_cut, idx,
                               chosen,
                               unobservable_used + (observable ? 0 : 1),
                               result));
      chosen.pop_back();
      if (observable) --idx[tr.peer];
    }
    return Status::Ok();
  }

  const Unfolding& u_;
  const ReferenceOptions& options_;
  std::vector<std::vector<std::string>> per_peer_;
  bool impossible_ = false;
};

}  // namespace

StatusOr<ReferenceResult> ReferenceDiagnose(const Unfolding& unfolding,
                                            const AlarmSequence& alarms,
                                            const ReferenceOptions& options) {
  Searcher searcher(unfolding, alarms, options);
  return searcher.Run();
}

}  // namespace dqsq::petri
