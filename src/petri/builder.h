// Fluent, name-based construction of labeled safe Petri nets.
#ifndef DQSQ_PETRI_BUILDER_H_
#define DQSQ_PETRI_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "petri/net.h"

namespace dqsq::petri {

class PetriNetBuilder {
 public:
  PetriNetBuilder& AddPeer(const std::string& name);

  /// Adds a place owned by `peer` (peer must exist), optionally initially
  /// marked.
  PetriNetBuilder& AddPlace(const std::string& name, const std::string& peer,
                            bool marked = false);

  /// Adds a transition with alarm label `alarm` consuming `pre` and
  /// producing `post` (place names). Unobservable transitions model the
  /// paper's §4.4 hidden alarms.
  PetriNetBuilder& AddTransition(const std::string& name,
                                 const std::string& peer,
                                 const std::string& alarm,
                                 const std::vector<std::string>& pre,
                                 const std::vector<std::string>& post,
                                 bool observable = true);

  /// Finalizes and validates the net. Name-resolution errors surface here.
  StatusOr<PetriNet> Build();

 private:
  Status first_error_;
  PetriNet net_;
  std::unordered_map<std::string, PeerIndex> peers_;
  std::unordered_map<std::string, PlaceId> places_;
  std::vector<PlaceId> marked_;

  void RecordError(Status status);
};

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_BUILDER_H_
