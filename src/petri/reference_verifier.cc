#include "petri/reference_verifier.h"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "common/logging.h"

namespace dqsq::petri {

namespace {

/// A twin state in the oracle's own representation: an ordered map key, so
/// interning needs no hash function and iteration order is canonical.
using TwinState = std::tuple<Marking, Marking, bool>;

struct OracleEdge {
  uint32_t to;
  bool advances_left;
  VerifierStep step;
};

/// All twin successors of `state`, straight from the written semantics:
/// solo unobservable moves per copy (the right copy skips faults) and
/// synchronized observable pairs with equal (peer, alarm).
StatusOr<std::vector<std::pair<TwinState, OracleEdge>>> Successors(
    const PetriNet& net, const TwinState& state) {
  const auto& [left, right, fault] = state;
  std::vector<std::pair<TwinState, OracleEdge>> out;
  for (TransitionId a : net.EnabledTransitions(left)) {
    const Transition& ta = net.transition(a);
    if (!ta.observable) {
      DQSQ_ASSIGN_OR_RETURN(Marking next, net.Fire(left, a));
      out.emplace_back(
          TwinState{std::move(next), right, fault || ta.fault},
          OracleEdge{0, true,
                     VerifierStep{VerifierMove::kLeft, a, kInvalidId}});
      continue;
    }
    for (TransitionId b : net.EnabledTransitions(right)) {
      const Transition& tb = net.transition(b);
      if (!tb.observable || tb.fault) continue;
      if (tb.peer != ta.peer || tb.alarm != ta.alarm) continue;
      DQSQ_ASSIGN_OR_RETURN(Marking next_left, net.Fire(left, a));
      DQSQ_ASSIGN_OR_RETURN(Marking next_right, net.Fire(right, b));
      out.emplace_back(
          TwinState{std::move(next_left), std::move(next_right),
                    fault || ta.fault},
          OracleEdge{0, true, VerifierStep{VerifierMove::kSync, a, b}});
    }
  }
  for (TransitionId b : net.EnabledTransitions(right)) {
    const Transition& tb = net.transition(b);
    if (tb.observable || tb.fault) continue;
    DQSQ_ASSIGN_OR_RETURN(Marking next, net.Fire(right, b));
    out.emplace_back(
        TwinState{left, std::move(next), fault},
        OracleEdge{0, false,
                   VerifierStep{VerifierMove::kRight, kInvalidId, b}});
  }
  return out;
}

/// Shortest step path `from` -> `to` (empty when equal) by BFS.
std::optional<std::vector<VerifierStep>> StepPath(
    const std::vector<std::vector<OracleEdge>>& adj, uint32_t from,
    uint32_t to) {
  if (from == to) return std::vector<VerifierStep>{};
  std::vector<int64_t> pred(adj.size(), -1);       // predecessor state
  std::vector<VerifierStep> via(adj.size());       // edge into the state
  std::deque<uint32_t> frontier{from};
  std::vector<bool> seen(adj.size(), false);
  seen[from] = true;
  while (!frontier.empty()) {
    uint32_t s = frontier.front();
    frontier.pop_front();
    for (const OracleEdge& e : adj[s]) {
      if (seen[e.to]) continue;
      seen[e.to] = true;
      pred[e.to] = s;
      via[e.to] = e.step;
      if (e.to == to) {
        std::vector<VerifierStep> path;
        for (uint32_t cur = to; cur != from;
             cur = static_cast<uint32_t>(pred[cur])) {
          path.push_back(via[cur]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(e.to);
    }
  }
  return std::nullopt;
}

}  // namespace

StatusOr<ReferenceVerifierResult> ReferenceDiagnosability(
    const PetriNet& net, const ReferenceVerifierOptions& options) {
  DQSQ_RETURN_IF_ERROR(net.Validate());

  // Phase 1: exhaustively materialize the reachable twin graph.
  std::map<TwinState, uint32_t> index;
  std::vector<TwinState> states;
  std::vector<std::vector<OracleEdge>> adj;
  std::vector<bool> ambiguous;
  auto intern = [&](TwinState s) -> uint32_t {
    auto [it, inserted] = index.emplace(s, states.size());
    if (inserted) {
      ambiguous.push_back(std::get<2>(s));
      states.push_back(std::move(s));
      adj.emplace_back();
    }
    return it->second;
  };
  intern(TwinState{net.initial_marking(), net.initial_marking(), false});
  size_t num_edges = 0;
  for (uint32_t s = 0; s < states.size(); ++s) {
    if (states.size() > options.max_states) {
      return ResourceExhaustedError(
          "reference verifier exceeded twin-state budget of " +
          std::to_string(options.max_states));
    }
    DQSQ_ASSIGN_OR_RETURN(auto successors, Successors(net, states[s]));
    for (auto& [next, edge] : successors) {
      edge.to = intern(std::move(next));
      adj[s].push_back(edge);
      ++num_edges;
    }
  }

  // Phase 2: iterative Tarjan SCC over the (entirely reachable) graph.
  const uint32_t n = static_cast<uint32_t>(states.size());
  std::vector<uint32_t> comp(n, 0), low(n, 0), order(n, 0);
  std::vector<bool> on_stack(n, false), visited(n, false);
  std::vector<uint32_t> stack;
  uint32_t next_order = 1, next_comp = 1;
  struct Frame {
    uint32_t state;
    size_t edge = 0;
  };
  for (uint32_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    std::vector<Frame> call{{root}};
    while (!call.empty()) {
      Frame& f = call.back();
      uint32_t s = f.state;
      if (f.edge == 0) {
        visited[s] = true;
        order[s] = low[s] = next_order++;
        stack.push_back(s);
        on_stack[s] = true;
      }
      if (f.edge < adj[s].size()) {
        uint32_t child = adj[s][f.edge++].to;
        if (!visited[child]) {
          call.push_back(Frame{child});
        } else if (on_stack[child]) {
          low[s] = std::min(low[s], order[child]);
        }
        continue;
      }
      if (low[s] == order[s]) {
        for (;;) {
          uint32_t member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          comp[member] = next_comp;
          if (member == s) break;
        }
        ++next_comp;
      }
      call.pop_back();
      if (!call.empty()) {
        low[call.back().state] =
            std::min(low[call.back().state], low[s]);
      }
    }
  }

  ReferenceVerifierResult result;
  result.states = states.size();
  result.edges = num_edges;

  // Phase 3: the condition. An intra-SCC left-advancing edge out of an
  // ambiguous state is a pumpable ambiguous cycle (a self-loop is an SCC
  // member edge with comp[u] == comp[v] too, but Tarjan assigns singleton
  // components to loop-free states — so require a cycle explicitly: either
  // u != v in one component, or a genuine self-loop).
  for (uint32_t u = 0; u < n && result.diagnosable; ++u) {
    if (!ambiguous[u]) continue;
    for (const OracleEdge& e : adj[u]) {
      if (!e.advances_left || comp[e.to] != comp[u]) continue;
      // Same SCC: a cycle through u and e.to exists (trivially for a
      // self-loop). Build the witness and stop.
      auto back = StepPath(adj, e.to, u);
      if (!back.has_value()) continue;  // singleton SCC, no self-loop
      auto prefix = StepPath(adj, 0, u);
      DQSQ_CHECK(prefix.has_value());  // every state was reached from 0
      AmbiguousWitness witness;
      witness.anchor = u;
      witness.prefix = *std::move(prefix);
      witness.cycle.push_back(e.step);
      for (const VerifierStep& step : *back) witness.cycle.push_back(step);
      result.diagnosable = false;
      result.witness = std::move(witness);
      break;
    }
  }
  return result;
}

}  // namespace dqsq::petri
