// Canonical example nets, including a reconstruction of the paper's
// running example (Figure 1).
#ifndef DQSQ_PETRI_EXAMPLES_H_
#define DQSQ_PETRI_EXAMPLES_H_

#include "petri/net.h"

namespace dqsq::petri {

/// The paper's Figure 1 net (reconstructed from the facts stated in the
/// text): two peers p1, p2; places 1-3 at p1, 4-7 at p2; initially marked
/// {1, 4, 7}; transitions
///   i  @p1 [b]: {1,7} -> {2,3}      (α(i)=b, φ(i)=p1, •i={1,7}, i•={2,3})
///   ii @p2 [a]: {4}   -> {5}
///   iii@p1 [c]: {2}   -> {1}
///   iv @p2 [c]: {5}   -> {6}
///   v  @p2 [b]: {7}   -> {6'}
/// so that transitions i, ii and v are enabled initially, i and v conflict
/// over place 7, Neighb(p1) = {p1, p2}, and the alarm sequences
/// (b,p1)(a,p2)(c,p1) and (b,p1)(c,p1)(a,p2) have the explanation
/// {i, ii, iii} while (c,p1)(b,p1)(a,p2) has none.
///
/// With `with_loop`, adds vi @p2 [a]: {6} -> {5}, making the unfolding
/// infinite (exercises prefix budgets).
PetriNet MakePaperNet(bool with_loop = false);

/// A tiny single-peer sequential net: s0 -[a]-> s1 -[b]-> s2 (cyclic back to
/// s0 with alarm c). Used in quickstart-style tests.
PetriNet MakeCycleNet();

/// Two peers running independent 2-state loops plus one synchronizing
/// transition consuming a local place of each peer. Exhibits concurrency
/// across peers with safe cross-peer interaction.
PetriNet MakeHandshakeNet();

}  // namespace dqsq::petri

#endif  // DQSQ_PETRI_EXAMPLES_H_
