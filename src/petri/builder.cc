#include "petri/builder.h"

namespace dqsq::petri {

void PetriNetBuilder::RecordError(Status status) {
  if (first_error_.ok()) first_error_ = std::move(status);
}

PetriNetBuilder& PetriNetBuilder::AddPeer(const std::string& name) {
  if (peers_.contains(name)) {
    RecordError(AlreadyExistsError("peer " + name));
    return *this;
  }
  peers_[name] = net_.AddPeer(name);
  return *this;
}

PetriNetBuilder& PetriNetBuilder::AddPlace(const std::string& name,
                                           const std::string& peer,
                                           bool marked) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    RecordError(NotFoundError("peer " + peer + " for place " + name));
    return *this;
  }
  if (places_.contains(name)) {
    RecordError(AlreadyExistsError("place " + name));
    return *this;
  }
  PlaceId p = net_.AddPlace(name, it->second);
  places_[name] = p;
  if (marked) marked_.push_back(p);
  return *this;
}

PetriNetBuilder& PetriNetBuilder::AddTransition(
    const std::string& name, const std::string& peer, const std::string& alarm,
    const std::vector<std::string>& pre, const std::vector<std::string>& post,
    bool observable) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    RecordError(NotFoundError("peer " + peer + " for transition " + name));
    return *this;
  }
  std::vector<PlaceId> pre_ids, post_ids;
  for (const std::string& p : pre) {
    auto pit = places_.find(p);
    if (pit == places_.end()) {
      RecordError(NotFoundError("place " + p + " in preset of " + name));
      return *this;
    }
    pre_ids.push_back(pit->second);
  }
  for (const std::string& p : post) {
    auto pit = places_.find(p);
    if (pit == places_.end()) {
      RecordError(NotFoundError("place " + p + " in postset of " + name));
      return *this;
    }
    post_ids.push_back(pit->second);
  }
  net_.AddTransition(name, it->second, alarm, std::move(pre_ids),
                     std::move(post_ids), observable);
  return *this;
}

StatusOr<PetriNet> PetriNetBuilder::Build() {
  DQSQ_RETURN_IF_ERROR(first_error_);
  net_.SetInitialMarking(marked_);
  DQSQ_RETURN_IF_ERROR(net_.Validate());
  return std::move(net_);
}

}  // namespace dqsq::petri
