#include "dist/cluster.h"

#include <set>

namespace dqsq::dist {

Status RootNode::OnMessage(const Message& message, SimNetwork& network) {
  if (message.kind == MessageKind::kAck) {
    ds_.OnReceiveAck();
    if (ds_.TryDisengage()) terminated_ = true;
    return Status::Ok();
  }
  // The root receives no data in these protocols, but DS requires every
  // basic message to be acknowledged.
  if (ds_.OnReceiveBasic(message.from)) {
    Message ack;
    ack.kind = MessageKind::kAck;
    ack.from = id_;
    ack.to = message.from;
    network.Send(std::move(ack));
  }
  return Status::Ok();
}

Cluster::Cluster(DatalogContext& ctx, const Program& program,
                 const ParsedQuery& query, uint64_t seed,
                 const EvalOptions& eval_options, Mode mode,
                 const FaultPlan& faults)
    : network_(seed, faults) {
  network_.SetPeerNamer(
      [ctx = &ctx](SymbolId id) { return ctx->symbols().Name(id); });
  std::set<SymbolId> peer_ids;
  peer_ids.insert(query.atom.rel.peer);
  for (const Rule& rule : program.rules) {
    peer_ids.insert(rule.head.rel.peer);
    for (const Atom& atom : rule.body) peer_ids.insert(atom.rel.peer);
  }
  for (SymbolId id : peer_ids) {
    auto peer = std::make_unique<DatalogPeer>(id, &ctx, eval_options);
    network_.Register(id, peer.get());
    peers_.emplace(id, std::move(peer));
  }
  root_ = std::make_unique<RootNode>(ctx.symbols().Intern("ds_root"));
  network_.Register(root_->id(), root_.get());
  for (const Rule& rule : program.rules) {
    DatalogPeer& owner = *peers_.at(rule.head.rel.peer);
    if (rule.IsFact()) {
      // Ground facts are extensional data, loaded directly.
      std::vector<TermId> tuple;
      for (const Pattern& p : rule.head.args) {
        tuple.push_back(GroundPattern(p, Substitution(), ctx.arena()));
      }
      owner.AddFact(rule.head.rel, tuple);
    } else if (mode == Mode::kEvaluate) {
      owner.InstallRule(rule);
    } else {
      owner.InstallSourceRule(rule);
    }
  }
}

Status Cluster::RunUntilTermination(size_t max_steps) {
  for (size_t i = 0; i < max_steps; ++i) {
    if (root_->terminated()) {
      // On a faulty wire transport residue (duplicate copies, acks,
      // retransmits of delivered messages) may still be in flight; the
      // algorithm's safety property is that no undelivered payload is.
      if (!network_.LogicallyQuiescent()) {
        return InternalError(
            "Dijkstra-Scholten detected termination on a non-quiescent "
            "network (safety violation)");
      }
      // A peer may still be down at detection (all its obligations were
      // already met pre-crash). Restore it now so answer extraction reads
      // a live database. (Termination implies nothing undelivered exists,
      // so the restarts enqueue only re-handshake hellos.)
      network_.RestoreDownPeers();
      return Status::Ok();
    }
    DQSQ_ASSIGN_OR_RETURN(bool delivered, network_.Step());
    if (!delivered) {
      return InternalError(
          "network quiesced before the root detected termination (lost "
          "acknowledgment)");
    }
  }
  return ResourceExhaustedError("network did not terminate within budget");
}

size_t Cluster::TotalFacts() const {
  size_t total = 0;
  for (const auto& [id, peer] : peers_) total += peer->db().TotalFacts();
  return total;
}

std::map<std::string, size_t> Cluster::RelationCounts() const {
  std::map<std::string, size_t> out;
  for (const auto& [id, peer] : peers_) {
    const Database& db = peer->db();
    for (const RelId& rel : db.Relations()) {
      out[db.ctx().PredicateName(rel.pred)] += db.Find(rel)->size();
    }
  }
  return out;
}

size_t Cluster::CountFactsMatching(
    const std::function<bool(const std::string&)>& filter) const {
  size_t total = 0;
  for (const auto& [id, peer] : peers_) {
    total += peer->db().CountFactsMatching(filter);
  }
  return total;
}

}  // namespace dqsq::dist
