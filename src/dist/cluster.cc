#include "dist/cluster.h"

#include <set>

#include "common/logging.h"
#include "datalog/adornment.h"
#include "datalog/qsq_rewrite.h"

namespace dqsq::dist {

std::set<SymbolId> ProgramPeers(const Program& program,
                                const ParsedQuery& query) {
  std::set<SymbolId> peer_ids;
  peer_ids.insert(query.atom.rel.peer);
  for (const Rule& rule : program.rules) {
    peer_ids.insert(rule.head.rel.peer);
    for (const Atom& atom : rule.body) peer_ids.insert(atom.rel.peer);
  }
  return peer_ids;
}

void InstallRuleAt(DatalogPeer& owner, const Rule& rule, Cluster::Mode mode,
                   DatalogContext& ctx) {
  if (rule.IsFact()) {
    // Ground facts are extensional data, loaded directly.
    std::vector<TermId> tuple;
    for (const Pattern& p : rule.head.args) {
      tuple.push_back(GroundPattern(p, Substitution(), ctx.arena()));
    }
    owner.AddFact(rule.head.rel, tuple);
  } else if (mode == Cluster::Mode::kEvaluate) {
    owner.InstallRule(rule);
  } else {
    owner.InstallSourceRule(rule);
  }
}

std::vector<Message> SeedDemandMessages(DatalogContext& ctx,
                                        const ParsedQuery& query,
                                        SymbolId root_id, Cluster::Mode mode) {
  std::vector<Message> out;
  if (mode == Cluster::Mode::kEvaluate) {
    Message m;
    m.kind = MessageKind::kActivate;
    m.from = root_id;
    m.to = query.atom.rel.peer;
    m.rel = query.atom.rel;
    m.subscriber = query.atom.rel.peer;  // self: activation only
    out.push_back(std::move(m));
    return out;
  }
  const RelId query_rel = query.atom.rel;
  Adornment adornment = QueryAdornment(query.atom);
  const std::string& base = ctx.PredicateName(query_rel.pred);
  uint32_t bound = 0;
  for (bool b : adornment) bound += b ? 1 : 0;
  PredicateId in_pred =
      ctx.InternPredicate(InputPredName(base, adornment), bound);
  Message sub;
  sub.kind = MessageKind::kSubquery;
  sub.from = root_id;
  sub.to = query_rel.peer;
  sub.rel = query_rel;
  sub.adornment = adornment;
  out.push_back(std::move(sub));
  std::vector<TermId> seed;
  for (size_t i = 0; i < query.atom.args.size(); ++i) {
    if (!adornment[i]) continue;
    seed.push_back(
        GroundPattern(query.atom.args[i], Substitution(), ctx.arena()));
  }
  Message data;
  data.kind = MessageKind::kTuples;
  data.from = root_id;
  data.to = query_rel.peer;
  data.rel = RelId{in_pred, query_rel.peer};
  data.tuples.push_back(std::move(seed));
  out.push_back(std::move(data));
  return out;
}

Atom AnswerAtom(DatalogContext& ctx, const ParsedQuery& query,
                Cluster::Mode mode) {
  if (mode == Cluster::Mode::kEvaluate) return query.atom;
  const RelId query_rel = query.atom.rel;
  Adornment adornment = QueryAdornment(query.atom);
  const std::string& base = ctx.PredicateName(query_rel.pred);
  PredicateId ans_pred = ctx.InternPredicate(
      AnswerPredName(base, adornment), ctx.PredicateArity(query_rel.pred));
  return Atom{RelId{ans_pred, query_rel.peer}, query.atom.args};
}

Status RootNode::OnMessage(const Message& message, Network& network) {
  if (message.kind == MessageKind::kAck) {
    ds_.OnReceiveAck();
    if (ds_.TryDisengage()) terminated_ = true;
    return Status::Ok();
  }
  // The root receives no data in these protocols, but DS requires every
  // basic message to be acknowledged.
  if (ds_.OnReceiveBasic(message.from)) {
    Message ack;
    ack.kind = MessageKind::kAck;
    ack.from = id_;
    ack.to = message.from;
    network.Send(std::move(ack));
  }
  return Status::Ok();
}

Cluster::Cluster(DatalogContext& ctx, const Program& program,
                 const ParsedQuery& query, uint64_t seed,
                 const EvalOptions& eval_options, Mode mode,
                 const FaultPlan& faults, size_t num_shards,
                 const WireBatchOptions& wire_batch)
    : network_(seed, faults),
      ctx_(&ctx),
      eval_options_(eval_options),
      wire_batch_(wire_batch) {
  network_.SetPeerNamer(
      [ctx = &ctx](SymbolId id) { return ctx->symbols().Name(id); });
  std::set<SymbolId> logical = ProgramPeers(program, query);
  if (num_shards > 1) {
    router_ = std::make_unique<ShardRouter>(ctx, logical, num_shards);
  }
  for (SymbolId id : logical) {
    // Shard 0's id is the logical id itself, so the unsharded layout is
    // the K=1 special case of this loop.
    const std::vector<SymbolId> group =
        router_ != nullptr ? router_->GroupOf(id)
                           : std::vector<SymbolId>{id};
    for (SymbolId shard : group) {
      auto peer = std::make_unique<DatalogPeer>(
          shard, &ctx, eval_options, router_.get(), wire_batch_);
      network_.Register(shard, peer.get());
      peers_.emplace(shard, std::move(peer));
    }
  }
  root_ = std::make_unique<RootNode>(ctx.symbols().Intern("ds_root"));
  network_.Register(root_->id(), root_.get());
  for (const Rule& rule : program.rules) {
    // Sharded: every group member carries the rule (facts partition by
    // hash inside DatalogPeer::AddFact; proper rules pivot-redirect).
    const SymbolId owner = rule.head.rel.peer;
    const std::vector<SymbolId> group =
        router_ != nullptr ? router_->GroupOf(owner)
                           : std::vector<SymbolId>{owner};
    for (SymbolId shard : group) {
      InstallRuleAt(*peers_.at(shard), rule, mode, ctx);
    }
  }
  // Live shard migration (SimNetwork::MigratePeer): hand the network a
  // factory for replacement peer objects; the old object is retired, not
  // destroyed, and the map entry swaps to the replacement.
  network_.SetMigrationFactory([this](SymbolId id) -> PeerNode* {
    auto replacement = std::make_unique<DatalogPeer>(
        id, ctx_, eval_options_, router_.get(), wire_batch_);
    DatalogPeer* raw = replacement.get();
    auto it = peers_.find(id);
    DQSQ_CHECK(it != peers_.end()) << "migration of unknown peer";
    retired_.push_back(std::move(it->second));
    it->second = std::move(replacement);
    return raw;
  });
}

std::vector<Message> ExpandSeedForShards(const ShardRouter* router,
                                         std::vector<Message> messages) {
  if (router == nullptr) return messages;
  std::vector<Message> out;
  for (Message& m : messages) {
    if (!router->Knows(m.to)) {
      out.push_back(std::move(m));
      continue;
    }
    const std::vector<SymbolId>& group =
        router->GroupOf(router->LogicalOf(m.to));
    if (m.kind == MessageKind::kTuples) {
      // Hash-route each payload tuple to its owning shard.
      std::map<SymbolId, std::vector<Tuple>> split;
      for (Tuple& t : m.tuples) {
        split[group[router->ShardOfTuple(t)]].push_back(std::move(t));
      }
      for (auto& [shard, tuples] : split) {
        Message copy = m;
        copy.to = shard;
        copy.tuples = std::move(tuples);
        out.push_back(std::move(copy));
      }
    } else {
      // Control plane: every shard of the group receives the demand. A
      // self-subscription (activation only) stays a self-subscription.
      const bool self_subscriber = m.subscriber == m.to;
      for (SymbolId shard : group) {
        Message copy = m;
        copy.to = shard;
        if (self_subscriber) copy.subscriber = shard;
        out.push_back(std::move(copy));
      }
    }
  }
  return out;
}

void Cluster::SeedDemand(std::vector<Message> messages) {
  for (Message& m : ExpandSeedForShards(router_.get(), std::move(messages))) {
    root_->SendBasic(std::move(m), network_);
  }
}

Status Cluster::RunUntilTermination(size_t max_steps) {
  for (size_t i = 0; i < max_steps; ++i) {
    if (root_->terminated()) {
      // On a faulty wire transport residue (duplicate copies, acks,
      // retransmits of delivered messages) may still be in flight; the
      // algorithm's safety property is that no undelivered payload is.
      if (!network_.LogicallyQuiescent()) {
        return InternalError(
            "Dijkstra-Scholten detected termination on a non-quiescent "
            "network (safety violation)");
      }
      // A peer may still be down at detection (all its obligations were
      // already met pre-crash). Restore it now so answer extraction reads
      // a live database. (Termination implies nothing undelivered exists,
      // so the restarts enqueue only re-handshake hellos.)
      network_.RestoreDownPeers();
      return Status::Ok();
    }
    DQSQ_ASSIGN_OR_RETURN(bool delivered, network_.Step());
    if (!delivered) {
      return InternalError(
          "network quiesced before the root detected termination (lost "
          "acknowledgment)");
    }
  }
  return ResourceExhaustedError("network did not terminate within budget");
}

size_t Cluster::TotalFacts() const {
  size_t total = 0;
  for (const auto& [id, peer] : peers_) total += peer->db().TotalFacts();
  return total;
}

std::map<std::string, size_t> Cluster::RelationCounts() const {
  std::map<std::string, size_t> out;
  for (const auto& [id, peer] : peers_) {
    const Database& db = peer->db();
    for (const RelId& rel : db.Relations()) {
      out[db.ctx().PredicateName(rel.pred)] += db.Find(rel)->size();
    }
  }
  return out;
}

size_t Cluster::CountFactsMatching(
    const std::function<bool(const std::string&)>& filter) const {
  size_t total = 0;
  for (const auto& [id, peer] : peers_) {
    total += peer->db().CountFactsMatching(filter);
  }
  return total;
}

}  // namespace dqsq::dist
