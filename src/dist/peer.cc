#include "dist/peer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "datalog/qsq_rewrite.h"
#include "dist/snapshot.h"

namespace dqsq::dist {

namespace {

Labels PeerLabels(DatalogContext* ctx, SymbolId id) {
  return Labels{{"peer", ctx->symbols().Name(id)}};
}

}  // namespace

DatalogPeer::DatalogPeer(SymbolId id, DatalogContext* ctx,
                         EvalOptions eval_options, const ShardRouter* router,
                         const WireBatchOptions& batch)
    : id_(id),
      logical_id_(router != nullptr ? router->LogicalOf(id) : id),
      router_(router),
      sharded_(router != nullptr && router->num_shards() > 1),
      batch_(batch),
      ctx_(ctx),
      eval_options_(eval_options),
      db_(ctx) {}

RelId DatalogPeer::OwnShadow(const RelId& rel) const {
  PredicateId own = ctx_->InternPredicate(
      "own$" + ctx_->PredicateName(rel.pred), ctx_->PredicateArity(rel.pred));
  return RelId{own, logical_id_};
}

bool DatalogPeer::IsOwnShadow(const RelId& rel) const {
  return ctx_->PredicateName(rel.pred).rfind("own$", 0) == 0;
}

RelId DatalogPeer::ShadowBase(const RelId& shadow) const {
  const std::string& name = ctx_->PredicateName(shadow.pred);
  DQSQ_CHECK(name.rfind("own$", 0) == 0);
  PredicateId base = ctx_->InternPredicate(
      name.substr(4), ctx_->PredicateArity(shadow.pred));
  return RelId{base, logical_id_};
}

std::vector<SymbolId> DatalogPeer::Siblings() const {
  std::vector<SymbolId> out;
  if (!sharded_) return out;
  for (SymbolId shard : router_->GroupOf(logical_id_)) {
    if (shard != id_) out.push_back(shard);
  }
  return out;
}

void DatalogPeer::InstallRule(const Rule& rule) {
  program_.rules.push_back(rule);
  if (sharded_) {
    // Pivot redirect: point the first locally-owned body atom at its own$
    // shadow, so each shard joins only the rows it hash-owns against the
    // full replicas of the other atoms — the group's fixpoints partition
    // the work with no duplicate derivations. Rules with no locally-owned
    // body atom run unredirected on every shard (duplicate derivations,
    // deduplicated by insertion downstream — sound).
    Rule& installed = program_.rules.back();
    for (Atom& atom : installed.body) {
      if (atom.rel.peer == logical_id_ && !IsOwnShadow(atom.rel)) {
        atom.rel = OwnShadow(atom.rel);
        break;
      }
    }
  }
  CountMetric("dist.peer.rules_installed", 1, PeerLabels(ctx_, id_), "rules");
}

void DatalogPeer::InstallSourceRule(const Rule& rule) {
  source_rules_.rules.push_back(rule);
}

void DatalogPeer::AddFact(const RelId& rel, std::span<const TermId> tuple) {
  db_.Insert(rel, tuple);
  if (sharded_ && rel.peer == logical_id_ && !IsOwnShadow(rel)) {
    // Setup facts load as full replicas on every group member; only the
    // hash-owner also claims the row into its own$ partition. Non-owners
    // mark it received so the exchange never re-ships what every shard
    // already has.
    if (router_->OwnerOf(logical_id_, tuple) == id_) {
      db_.Insert(OwnShadow(rel), tuple);
    } else {
      received_replica_[rel].insert(Tuple(tuple.begin(), tuple.end()));
    }
  }
}

bool DatalogPeer::HasRulesFor(const RelId& rel) const {
  for (const Rule& r : source_rules_.rules) {
    if (r.head.rel == rel) return true;
  }
  for (const Rule& r : program_.rules) {
    if (r.head.rel == rel) return true;
  }
  return false;
}

Status DatalogPeer::OnMessage(const Message& message, Network& network) {
  DQSQ_CHECK(!crashed_) << "message delivered to a crashed peer "
                        << ctx_->symbols().Name(id_)
                        << " (deliveries to down peers must be dropped at "
                           "the wire)";
  if (message.kind == MessageKind::kAck) {
    ds_.OnReceiveAck();
    MaybeDisengage(network);
    return Status::Ok();
  }
  // Basic message: engage (deferring the ack to disengagement) or ack
  // immediately when already engaged.
  bool ack_now = ds_.OnReceiveBasic(message.from);
  if (!ack_now) CountMetric("dist.ds.engagements", 1, PeerLabels(ctx_, id_));
  Status status = Dispatch(message, network);
  if (ack_now) SendAck(message.from, network);
  MaybeDisengage(network);
  return status;
}

void DatalogPeer::IngestTuples(const RelId& rel,
                               const std::vector<Tuple>& tuples,
                               bool shard_replica) {
  if (sharded_ && rel.peer == logical_id_) {
    if (shard_replica) {
      // Sibling broadcast of rows another shard hash-owns: store into the
      // full replica only, and remember them so the exchange skips them.
      for (const Tuple& t : tuples) {
        if (db_.Insert(rel, t)) received_replica_[rel].insert(t);
      }
    } else {
      // Primary delivery: the sender hash-routed these rows here, so this
      // shard owns them — claim them into the own$ partition (it will
      // broadcast them to the siblings on the next flush).
      const RelId shadow = OwnShadow(rel);
      for (const Tuple& t : tuples) {
        db_.Insert(rel, t);
        db_.Insert(shadow, t);
      }
    }
    return;
  }
  const bool remote_owned = rel.peer != logical_id_;
  for (const Tuple& t : tuples) {
    if (db_.Insert(rel, t) && remote_owned) {
      received_[rel].insert(t);
    }
  }
}

Status DatalogPeer::Dispatch(const Message& message, Network& network) {
  switch (message.kind) {
    case MessageKind::kTuples: {
      IngestTuples(message.rel, message.tuples, message.shard_replica);
      for (const TupleSection& s : message.sections) {
        IngestTuples(s.rel, s.tuples, message.shard_replica);
      }
      return RunFixpointAndFlush(network);
    }
    case MessageKind::kActivate:
      DQSQ_RETURN_IF_ERROR(
          Activate(message.rel, message.subscriber,
                   /*has_subscriber=*/true, network));
      return RunFixpointAndFlush(network);
    case MessageKind::kSubquery:
      DQSQ_RETURN_IF_ERROR(OnSubquery(message.rel, message.adornment,
                                      network));
      return RunFixpointAndFlush(network);
    case MessageKind::kInstall:
      for (const Rule& rule : message.rules) {
        if (sharded_) {
          // Every sibling of the rewriting shard ships the same remainder
          // rules; install each exactly once.
          SnapshotWriter w;
          EncodeRule(rule, w);
          if (!installed_keys_.insert(w.Take()).second) continue;
        }
        InstallRule(rule);
      }
      return RunFixpointAndFlush(network);
    case MessageKind::kAck:
      return InternalError("ack handled before dispatch");
    case MessageKind::kTransportAck:
      return InternalError("transport ack leaked through the network shim");
    case MessageKind::kTransportHello:
      return InternalError("transport hello leaked through the network shim");
  }
  return InternalError("unknown message kind");
}

Status DatalogPeer::Activate(const RelId& rel, SymbolId subscriber,
                             bool has_subscriber, Network& network) {
  DQSQ_CHECK_EQ(rel.peer, logical_id_) << "activation routed to the wrong peer";
  if (has_subscriber && subscriber != id_) {
    subscribers_[rel].insert(subscriber);
    // Sharded: each shard streams only its own$ partition; the subscriber
    // receives the union of the group's flushes.
    if (sharded_) {
      FlushOwnPartitionTo(rel, subscriber, network);
    } else {
      FlushRelationTo(rel, subscriber, network);
    }
  }
  if (active_.contains(rel)) return Status::Ok();
  active_.insert(rel);
  for (const Rule& rule : program_.rules) {
    if (!(rule.head.rel == rel)) continue;
    for (const Atom& atom : rule.body) {
      if (IsOwnShadow(atom.rel)) {
        // Pivot-redirected atom: activation follows the base relation,
        // which is locally owned by construction.
        DQSQ_RETURN_IF_ERROR(Activate(ShadowBase(atom.rel), id_,
                                      /*has_subscriber=*/false, network));
        continue;
      }
      if (atom.rel.peer == logical_id_) {
        DQSQ_RETURN_IF_ERROR(
            Activate(atom.rel, id_, /*has_subscriber=*/false, network));
      } else {
        Message m;
        m.kind = MessageKind::kActivate;
        m.from = id_;
        m.to = atom.rel.peer;
        m.rel = atom.rel;
        m.subscriber = id_;
        SendBasicToGroup(std::move(m), network);
      }
    }
  }
  return Status::Ok();
}

Status DatalogPeer::OnSubquery(const RelId& rel, const Adornment& adornment,
                               Network& network) {
  DQSQ_CHECK_EQ(rel.peer, logical_id_) << "subquery routed to the wrong peer";
  CountMetric("dist.peer.subqueries_received", 1, PeerLabels(ctx_, id_));
  return RewriteForPattern(rel, adornment, network);
}

Status DatalogPeer::RewriteForPattern(const RelId& rel,
                                      const Adornment& adornment,
                                      Network& network) {
  auto key = std::make_pair(rel.pred, adornment);
  if (rewritten_.contains(key)) return Status::Ok();  // reuse machinery
  rewritten_.insert(key);
  CountMetric("dist.peer.rewrites", 1, PeerLabels(ctx_, id_));

  const std::string& base = ctx_->PredicateName(rel.pred);
  uint32_t arity = ctx_->PredicateArity(rel.pred);

  {
    // Bridge stored facts of the relation into the adorned answers:
    //   R__a(v1..vn) :- in__R__a(v_bound...), R(v1..vn).
    // This serves purely extensional relations and the extensional part of
    // mixed ones; for rule-only relations R@self is empty and the bridge
    // is inert.
    Rule bridge;
    bridge.num_vars = arity;
    for (uint32_t i = 0; i < arity; ++i) {
      bridge.var_names.push_back("V" + std::to_string(i));
    }
    std::vector<Pattern> all_vars;
    std::vector<Pattern> bound_vars;
    for (uint32_t i = 0; i < arity; ++i) {
      all_vars.push_back(Pattern::Var(i));
      if (adornment[i]) bound_vars.push_back(Pattern::Var(i));
    }
    PredicateId ans = ctx_->InternPredicate(AnswerPredName(base, adornment),
                                            arity);
    PredicateId in = ctx_->InternPredicate(
        InputPredName(base, adornment),
        static_cast<uint32_t>(bound_vars.size()));
    bridge.head = Atom{RelId{ans, logical_id_}, all_vars};
    bridge.body.push_back(Atom{RelId{in, logical_id_}, std::move(bound_vars)});
    bridge.body.push_back(Atom{rel, std::move(all_vars)});
    InstallRule(bridge);
  }
  if (!HasRulesFor(rel)) return Status::Ok();

  // Adorn this peer's rules for the pattern — only local knowledge is
  // used (the paper's dQSQ locality property).
  AdornedProgram adorned;
  std::vector<std::pair<RelId, Adornment>> propagate;
  for (size_t idx = 0; idx < source_rules_.rules.size(); ++idx) {
    const Rule& rule = source_rules_.rules[idx];
    if (!(rule.head.rel == rel)) continue;
    AdornedRule ar;
    ar.rule = &source_rules_.rules[idx];
    ar.rule_index = idx;
    ar.head_adornment = adornment;
    std::vector<bool> bound_vars(rule.num_vars, false);
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      if (!adornment[i]) continue;
      std::vector<VarId> vars;
      rule.head.args[i].CollectVars(&vars);
      for (VarId v : vars) bound_vars[v] = true;
    }
    for (const Atom& atom : rule.body) {
      Adornment a = AdornAtom(atom, bound_vars);
      // Local atoms are intensional iff this peer defines them; remote
      // atoms are demanded via subqueries either way (their owner bridges
      // extensional relations).
      bool idb = atom.rel.peer != logical_id_ || HasRulesFor(atom.rel);
      ar.body_adornments.push_back(a);
      ar.body_is_idb.push_back(idb);
      if (idb) propagate.emplace_back(atom.rel, a);
      std::vector<VarId> vars;
      for (const Pattern& p : atom.args) p.CollectVars(&vars);
      for (VarId v : vars) bound_vars[v] = true;
    }
    adorned.rules.push_back(std::move(ar));
  }

  QsqOptions qopts;
  qopts.distribute_sups = true;
  // The prefix uses the LOGICAL name so all shards of a group generate
  // identical rewrites — remainder rules shipped by sibling shards then
  // deduplicate byte-for-byte at the receiver (installed_keys_).
  qopts.sup_prefix = ctx_->symbols().Name(logical_id_) + "_";
  DQSQ_ASSIGN_OR_RETURN(
      RewriteResult rewrite,
      QsqRewrite(adorned, rel, adornment, *ctx_, qopts));

  // Keep local-body rules; ship each remainder to the peer owning its
  // body (the paper's rule (†)).
  std::map<SymbolId, std::vector<Rule>> remote;
  for (Rule& rule : rewrite.program.rules) {
    DQSQ_CHECK(!rule.body.empty());
    SymbolId body_peer = rule.body[0].rel.peer;
    if (body_peer == logical_id_) {
      InstallRule(rule);
    } else {
      remote[body_peer].push_back(std::move(rule));
    }
  }
  for (auto& [peer, rules] : remote) {
    Message m;
    m.kind = MessageKind::kInstall;
    m.from = id_;
    m.to = peer;
    m.rules = std::move(rules);
    SendBasicToGroup(std::move(m), network);
  }

  // Propagate demand for callee call patterns.
  for (const auto& [callee, a] : propagate) {
    if (callee.peer == logical_id_) {
      DQSQ_RETURN_IF_ERROR(RewriteForPattern(callee, a, network));
    } else {
      Message m;
      m.kind = MessageKind::kSubquery;
      m.from = id_;
      m.to = callee.peer;
      m.rel = callee;
      m.adornment = a;
      SendBasicToGroup(std::move(m), network);
    }
  }
  return Status::Ok();
}

Status DatalogPeer::RunFixpointAndFlush(Network& network) {
  CountMetric("dist.peer.fixpoints", 1, PeerLabels(ctx_, id_));
  // Sharded: an exchange can claim locally-derived rows into a local own$
  // shadow, which the pivot-redirected rules join over — iterate until the
  // exchange claims nothing new.
  for (;;) {
    DQSQ_RETURN_IF_ERROR(Evaluate(program_, db_, eval_options_).status());
    if (!sharded_ || !ExchangeOwnedRows(network)) break;
  }
  // Stream owned relations to their subscribers (dnaive data flow). Each
  // shard of a group streams only its own$ partition; the subscriber
  // assembles the union.
  for (const auto& [rel, subs] : subscribers_) {
    for (SymbolId target : subs) {
      if (sharded_) {
        FlushOwnPartitionTo(rel, target, network);
      } else {
        FlushRelationTo(rel, target, network);
      }
    }
  }
  // Ship derived tuples of remote-owned relations to their owner (dQSQ
  // binding/answer flow and remainder-rule heads).
  std::vector<RelId> rels = db_.Relations();
  std::sort(rels.begin(), rels.end(), [](const RelId& a, const RelId& b) {
    return a.pred != b.pred ? a.pred < b.pred : a.peer < b.peer;
  });
  for (const RelId& rel : rels) {
    if (rel.peer == logical_id_) continue;
    if (sharded_) {
      FlushRemoteSharded(rel, network);
    } else {
      FlushRelationTo(rel, rel.peer, network);
    }
  }
  if (sharded_) FlushOwnPartitions(network);
  DrainOutbox(network);
  return Status::Ok();
}

void DatalogPeer::FlushRelationTo(const RelId& rel, SymbolId target,
                                  Network& network) {
  if (target == id_) return;
  const Relation* relation = db_.Find(rel);
  if (relation == nullptr) return;
  size_t& watermark = shipped_[{rel, target}];
  if (watermark >= relation->size()) return;
  const std::set<Tuple>* skip = nullptr;
  if (rel.peer == target) {
    auto it = received_.find(rel);
    if (it != received_.end()) skip = &it->second;
  }
  std::vector<Tuple> tuples;
  for (size_t row = watermark; row < relation->size(); ++row) {
    auto r = relation->Row(row);
    Tuple t(r.begin(), r.end());
    if (skip != nullptr && skip->contains(t)) continue;
    tuples.push_back(std::move(t));
  }
  watermark = relation->size();
  EmitTuples(target, rel, std::move(tuples), /*shard_replica=*/false, network);
}

bool DatalogPeer::ExchangeOwnedRows(Network& network) {
  bool claimed = false;
  std::vector<RelId> rels = db_.Relations();
  std::sort(rels.begin(), rels.end(), [](const RelId& a, const RelId& b) {
    return a.pred != b.pred ? a.pred < b.pred : a.peer < b.peer;
  });
  for (const RelId& rel : rels) {
    if (rel.peer != logical_id_ || IsOwnShadow(rel)) continue;
    const Relation* relation = db_.Find(rel);
    size_t& watermark = exchanged_[rel];
    if (watermark >= relation->size()) continue;
    const RelId shadow = OwnShadow(rel);
    const std::set<Tuple>* replica = nullptr;
    auto it = received_replica_.find(rel);
    if (it != received_replica_.end()) replica = &it->second;
    std::map<SymbolId, std::vector<Tuple>> outgoing;
    for (size_t row = watermark; row < relation->size(); ++row) {
      auto r = relation->Row(row);
      Tuple t(r.begin(), r.end());
      // Rows a sibling broadcast here are that sibling's partition; rows
      // already claimed (primary ingest, setup facts) are ours already.
      if (replica != nullptr && replica->contains(t)) continue;
      SymbolId owner = router_->OwnerOf(logical_id_, t);
      if (owner == id_) {
        if (db_.Insert(shadow, t)) claimed = true;
      } else {
        outgoing[owner].push_back(std::move(t));
      }
    }
    watermark = relation->size();
    for (auto& [owner, tuples] : outgoing) {
      EmitTuples(owner, rel, std::move(tuples), /*shard_replica=*/false,
                 network);
    }
  }
  if (claimed) {
    CountMetric("dist.shard.exchange_rounds", 1, PeerLabels(ctx_, id_));
  }
  return claimed;
}

void DatalogPeer::FlushOwnPartitions(Network& network) {
  std::vector<RelId> rels = db_.Relations();
  std::sort(rels.begin(), rels.end(), [](const RelId& a, const RelId& b) {
    return a.pred != b.pred ? a.pred < b.pred : a.peer < b.peer;
  });
  for (const RelId& rel : rels) {
    if (rel.peer != logical_id_ || IsOwnShadow(rel)) continue;
    if (db_.Find(OwnShadow(rel)) == nullptr) continue;
    for (SymbolId sibling : Siblings()) {
      FlushOwnPartitionTo(rel, sibling, network);
    }
  }
}

void DatalogPeer::FlushOwnPartitionTo(const RelId& rel, SymbolId target,
                                      Network& network) {
  if (target == id_) return;
  const RelId shadow = OwnShadow(rel);
  const Relation* relation = db_.Find(shadow);
  if (relation == nullptr) return;
  // Watermarks key on the SHADOW relation, so subscriber streams and
  // sibling broadcasts of the same base relation do not collide with the
  // unsharded shipped_ keys.
  size_t& watermark = shipped_[{shadow, target}];
  if (watermark >= relation->size()) return;
  std::vector<Tuple> tuples;
  for (size_t row = watermark; row < relation->size(); ++row) {
    auto r = relation->Row(row);
    tuples.emplace_back(r.begin(), r.end());
  }
  watermark = relation->size();
  // Siblings receive replica broadcasts; subscribers of other logical
  // peers receive ordinary remote-owned tuples.
  bool replica = router_->LogicalOf(target) == logical_id_;
  EmitTuples(target, rel, std::move(tuples), replica, network);
}

void DatalogPeer::FlushRemoteSharded(const RelId& rel, Network& network) {
  const Relation* relation = db_.Find(rel);
  if (relation == nullptr) return;
  const std::vector<SymbolId>& group = router_->GroupOf(rel.peer);
  // Watermark keyed on the LOGICAL owner — partitioned sends to the
  // group's shards all advance the same scan position.
  size_t& watermark = shipped_[{rel, rel.peer}];
  if (watermark >= relation->size()) return;
  const std::set<Tuple>* skip = nullptr;
  auto it = received_.find(rel);
  if (it != received_.end()) skip = &it->second;
  std::map<SymbolId, std::vector<Tuple>> outgoing;
  for (size_t row = watermark; row < relation->size(); ++row) {
    auto r = relation->Row(row);
    Tuple t(r.begin(), r.end());
    if (skip != nullptr && skip->contains(t)) continue;
    SymbolId owner = group[router_->ShardOfTuple(t)];
    outgoing[owner].push_back(std::move(t));
  }
  watermark = relation->size();
  for (auto& [owner, tuples] : outgoing) {
    EmitTuples(owner, rel, std::move(tuples), /*shard_replica=*/false,
               network);
  }
}

void DatalogPeer::SendBasicToGroup(Message m, Network& network) {
  if (!sharded_ || !router_->Knows(m.to)) {
    SendBasic(std::move(m), network);
    return;
  }
  const std::vector<SymbolId>& group = router_->GroupOf(m.to);
  for (size_t i = 0; i + 1 < group.size(); ++i) {
    Message copy = m;
    copy.to = group[i];
    SendBasic(std::move(copy), network);
  }
  m.to = group.back();
  SendBasic(std::move(m), network);
}

void DatalogPeer::EmitTuples(SymbolId target, const RelId& rel,
                             std::vector<Tuple> tuples, bool shard_replica,
                             Network& network) {
  if (tuples.empty() || target == id_) return;
  if (!batch_.enable) {
    // Default path: one message per flush, byte-identical to the
    // pre-batching wire.
    Message m;
    m.kind = MessageKind::kTuples;
    m.from = id_;
    m.to = target;
    m.rel = rel;
    m.tuples = std::move(tuples);
    m.shard_replica = shard_replica;
    SendBasic(std::move(m), network);
    return;
  }
  outbox_.push_back(
      OutboxEntry{target, rel, std::move(tuples), shard_replica});
}

void DatalogPeer::DrainOutbox(Network& network) {
  if (outbox_.empty()) return;
  std::vector<OutboxEntry> entries = std::move(outbox_);
  outbox_.clear();
  // Group by (target, shard_replica) in first-appearance order — the
  // replica flag is per-message, so replica and primary flushes to the
  // same target cannot share one envelope.
  using GroupKey = std::pair<SymbolId, bool>;
  std::vector<GroupKey> order;
  std::map<GroupKey, std::vector<OutboxEntry*>> groups;
  for (OutboxEntry& e : entries) {
    GroupKey key{e.target, e.shard_replica};
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.push_back(&e);
  }
  size_t batched_rows = 0;
  size_t split_messages = 0;
  for (const GroupKey& key : order) {
    Message m;
    size_t est = 0;  // running estimate, mirrors ApproxWireBytes pricing
    auto reset = [&]() {
      m = Message{};
      m.kind = MessageKind::kTuples;
      m.from = id_;
      m.to = key.first;
      m.shard_replica = key.second;
      est = 16;
    };
    reset();
    for (OutboxEntry* e : groups[key]) {
      std::vector<Tuple>* slot = nullptr;  // this entry's rows in m
      for (Tuple& t : e->tuples) {
        size_t row_cost = 4 * t.size();
        bool empty = m.tuples.empty() && m.sections.empty();
        size_t open_cost = (slot == nullptr && !empty) ? 8 : 0;
        if (!empty && est + open_cost + row_cost > batch_.max_bytes) {
          // Over budget: ship what we have (a message always carries at
          // least one row). A payload continuing into the next message is
          // a split — the extra message is what the counter prices.
          if (slot != nullptr) ++split_messages;
          SendBasic(std::move(m), network);
          reset();
          slot = nullptr;
        }
        if (slot == nullptr) {
          if (m.tuples.empty() && m.sections.empty()) {
            m.rel = e->rel;
            slot = &m.tuples;
          } else {
            m.sections.push_back(TupleSection{e->rel, {}});
            slot = &m.sections.back().tuples;
            est += 8;
          }
        }
        if (slot != &m.tuples) ++batched_rows;
        slot->push_back(std::move(t));
        est += row_cost;
      }
      slot = nullptr;
    }
    if (!m.tuples.empty() || !m.sections.empty()) {
      SendBasic(std::move(m), network);
    }
  }
  if (batched_rows > 0) {
    CountMetric("dist.net.batched_tuples", batched_rows,
                PeerLabels(ctx_, id_), "rows");
  }
  if (split_messages > 0) {
    CountMetric("dist.net.split_tuples", split_messages,
                PeerLabels(ctx_, id_), "messages");
  }
}

void DatalogPeer::SendBasic(Message message, Network& network) {
  ds_.OnSendBasic();
  network.Send(std::move(message));
}

void DatalogPeer::SendAck(SymbolId target, Network& network) {
  Message ack;
  ack.kind = MessageKind::kAck;
  ack.from = id_;
  ack.to = target;
  network.Send(std::move(ack));
}

void DatalogPeer::MaybeDisengage(Network& network) {
  // Our peers are passive whenever they are not processing a message, so
  // a zero deficit lets them disengage and ack the tree parent.
  if (ds_.TryDisengage()) {
    DQSQ_CHECK_NE(ds_.parent(), kNoNode);
    CountMetric("dist.ds.disengagements", 1, PeerLabels(ctx_, id_));
    SendAck(ds_.parent(), network);
  }
}

namespace {

void EncodeRelId(const RelId& rel, SnapshotWriter& w) {
  w.U32(rel.pred);
  w.U32(rel.peer);
}

RelId DecodeRelId(SnapshotReader& r) {
  RelId rel;
  rel.pred = r.U32();
  rel.peer = r.U32();
  return rel;
}

void EncodePeerTuple(std::span<const TermId> t, SnapshotWriter& w) {
  w.U64(t.size());
  for (TermId id : t) w.U32(id);
}

Tuple DecodePeerTuple(SnapshotReader& r) {
  uint64_t n = r.U64();
  Tuple t;
  t.reserve(n);
  for (uint64_t i = 0; i < n; ++i) t.push_back(r.U32());
  return t;
}

void EncodeAdornmentBits(const Adornment& a, SnapshotWriter& w) {
  w.U64(a.size());
  for (bool b : a) w.Bool(b);
}

Adornment DecodeAdornmentBits(SnapshotReader& r) {
  uint64_t n = r.U64();
  Adornment a;
  a.reserve(n);
  for (uint64_t i = 0; i < n; ++i) a.push_back(r.Bool());
  return a;
}

}  // namespace

std::string DatalogPeer::SaveState() const {
  SnapshotWriter w;
  // Dijkstra–Scholten engagement: a restarted peer resumes exactly the
  // deficit/parent it had, so the deferred ack to its tree parent is still
  // owed and no sender's deficit underflows.
  w.Bool(ds_.engaged());
  w.U64(ds_.deficit());
  w.U32(ds_.parent());
  w.U64(program_.rules.size());
  for (const Rule& rule : program_.rules) EncodeRule(rule, w);
  w.U64(source_rules_.rules.size());
  for (const Rule& rule : source_rules_.rules) EncodeRule(rule, w);
  // Relations sorted by (pred, peer); rows in insertion order, which the
  // ship watermarks in shipped_ index into.
  std::vector<RelId> rels = db_.Relations();
  std::sort(rels.begin(), rels.end(), [](const RelId& a, const RelId& b) {
    return a.pred != b.pred ? a.pred < b.pred : a.peer < b.peer;
  });
  w.U64(rels.size());
  for (const RelId& rel : rels) {
    EncodeRelId(rel, w);
    const Relation* relation = db_.Find(rel);
    w.U64(relation->size());
    for (size_t row = 0; row < relation->size(); ++row) {
      EncodePeerTuple(relation->Row(row), w);
    }
  }
  w.U64(active_.size());
  for (const RelId& rel : active_) EncodeRelId(rel, w);
  w.U64(subscribers_.size());
  for (const auto& [rel, subs] : subscribers_) {
    EncodeRelId(rel, w);
    w.U64(subs.size());
    for (SymbolId sub : subs) w.U32(sub);
  }
  w.U64(shipped_.size());
  for (const auto& [key, watermark] : shipped_) {
    EncodeRelId(key.first, w);
    w.U32(key.second);
    w.U64(watermark);
  }
  w.U64(received_.size());
  for (const auto& [rel, tuples] : received_) {
    EncodeRelId(rel, w);
    w.U64(tuples.size());
    for (const Tuple& t : tuples) EncodePeerTuple(t, w);
  }
  w.U64(rewritten_.size());
  for (const auto& [pred, adornment] : rewritten_) {
    w.U32(pred);
    EncodeAdornmentBits(adornment, w);
  }
  // Sharded-only section: absent at K=1 so unsharded snapshots stay
  // byte-identical to the pre-sharding format.
  if (sharded_) {
    w.U64(received_replica_.size());
    for (const auto& [rel, tuples] : received_replica_) {
      EncodeRelId(rel, w);
      w.U64(tuples.size());
      for (const Tuple& t : tuples) EncodePeerTuple(t, w);
    }
    w.U64(exchanged_.size());
    for (const auto& [rel, watermark] : exchanged_) {
      EncodeRelId(rel, w);
      w.U64(watermark);
    }
    w.U64(installed_keys_.size());
    for (const std::string& key : installed_keys_) w.Str(key);
  }
  return w.Take();
}

void DatalogPeer::RestoreState(const std::string& state) {
  Crash();  // start from a blank slate
  crashed_ = false;
  SnapshotReader r(state);
  bool engaged = r.Bool();
  uint64_t deficit = r.U64();
  NodeId parent = r.U32();
  ds_.RestoreState(engaged, deficit, parent);
  uint64_t n = r.U64();
  program_.rules.reserve(n);
  for (uint64_t i = 0; i < n; ++i) program_.rules.push_back(DecodeRule(r));
  n = r.U64();
  source_rules_.rules.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    source_rules_.rules.push_back(DecodeRule(r));
  }
  n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    RelId rel = DecodeRelId(r);
    uint64_t rows = r.U64();
    // GetOrCreate materializes empty relations too — their existence (and
    // row order in non-empty ones) must survive the round trip exactly,
    // since ship watermarks index into it.
    db_.GetOrCreate(rel).Reserve(rows);
    for (uint64_t row = 0; row < rows; ++row) {
      db_.Insert(rel, DecodePeerTuple(r));
    }
  }
  n = r.U64();
  for (uint64_t i = 0; i < n; ++i) active_.insert(DecodeRelId(r));
  n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    RelId rel = DecodeRelId(r);
    uint64_t subs = r.U64();
    auto& set = subscribers_[rel];
    for (uint64_t j = 0; j < subs; ++j) set.insert(r.U32());
  }
  n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    RelId rel = DecodeRelId(r);
    SymbolId target = r.U32();
    shipped_[{rel, target}] = r.U64();
  }
  n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    RelId rel = DecodeRelId(r);
    uint64_t tuples = r.U64();
    auto& set = received_[rel];
    for (uint64_t j = 0; j < tuples; ++j) set.insert(DecodePeerTuple(r));
  }
  n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    PredicateId pred = r.U32();
    rewritten_.emplace(pred, DecodeAdornmentBits(r));
  }
  if (sharded_) {
    n = r.U64();
    for (uint64_t i = 0; i < n; ++i) {
      RelId rel = DecodeRelId(r);
      uint64_t tuples = r.U64();
      auto& set = received_replica_[rel];
      for (uint64_t j = 0; j < tuples; ++j) set.insert(DecodePeerTuple(r));
    }
    n = r.U64();
    for (uint64_t i = 0; i < n; ++i) {
      RelId rel = DecodeRelId(r);
      exchanged_[rel] = r.U64();
    }
    n = r.U64();
    for (uint64_t i = 0; i < n; ++i) installed_keys_.insert(r.Str());
  }
  DQSQ_CHECK(r.AtEnd()) << "trailing bytes after peer state";
  CountMetric("dist.peer.restores", 1, PeerLabels(ctx_, id_));
}

void DatalogPeer::Crash() {
  db_.Clear();
  program_.rules.clear();
  source_rules_.rules.clear();
  active_.clear();
  subscribers_.clear();
  shipped_.clear();
  received_.clear();
  rewritten_.clear();
  received_replica_.clear();
  exchanged_.clear();
  installed_keys_.clear();
  // The outbox is always drained before OnMessage returns, so a crash
  // never loses queued flushes; clear defensively anyway.
  outbox_.clear();
  ds_.RestoreState(/*engaged=*/false, /*deficit=*/0, kNoNode);
  crashed_ = true;
}

}  // namespace dqsq::dist
