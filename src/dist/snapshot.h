// Durable peer state for crash-restart recovery (cf. the rollback-recovery
// protocols surveyed by Elnozahy et al., PAPERS.md): a PeerSnapshot is a
// consistent cut of everything one peer would lose in a crash — its
// transport channel state (per-channel next_seq / cumulative ack /
// out-of-order set, plus the payloads still unacknowledged or queued
// behind the flow-control window), its Dijkstra–Scholten engagement and
// its materialized relations (the opaque `peer_state` blob produced by
// PeerNode::SaveState).
//
// SimNetwork persists snapshots through the DurableStore interface on
// configurable write-ahead points: every wire delivery to a restartable
// peer is appended to that peer's write-ahead log BEFORE it is processed
// (pessimistic message logging), and a full snapshot is taken — truncating
// the log — every CrashPlan::checkpoint_every deliveries. Recovery is
// snapshot restore + deterministic replay of the logged deliveries; the
// replayed sends regenerate byte-identical wire messages (same sequence
// numbers, same payloads), which is CHECKed at restart.
//
// The serialization is a little-endian byte codec with no alignment or
// versioning — snapshots live only as long as the simulation process, so
// byte-stability within a build (serialize∘deserialize∘serialize is the
// identity) is the contract, not cross-version compatibility.
#ifndef DQSQ_DIST_SNAPSHOT_H_
#define DQSQ_DIST_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dist/message.h"

namespace dqsq::dist {

/// Append-only little-endian encoder for snapshot blobs.
class SnapshotWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Cursor-based decoder; aborts (DQSQ_CHECK) on truncated input, so a
/// corrupt snapshot fails loudly instead of restoring garbage state.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view in) : in_(in) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  bool Bool() { return U8() != 0; }
  std::string Str();

  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  std::string_view in_;
  size_t pos_ = 0;
};

// Codec for the datalog payload types carried by messages (patterns,
// rules) and for full wire messages — the write-ahead log stores every
// delivered message verbatim.
void EncodePattern(const Pattern& p, SnapshotWriter& w);
Pattern DecodePattern(SnapshotReader& r);
void EncodeRule(const Rule& rule, SnapshotWriter& w);
Rule DecodeRule(SnapshotReader& r);
void EncodeMessage(const Message& m, SnapshotWriter& w);
Message DecodeMessage(SnapshotReader& r);

/// Sender half of one directed transport channel owned by the snapshotted
/// peer. Only protocol state is persisted: retransmit timers, backoff and
/// RTT-estimator state are timing hygiene and are rebuilt fresh after a
/// restart (exactly as a real transport re-estimates after reboot).
struct ChannelSenderState {
  SymbolId to = 0;
  uint64_t next_seq = 0;
  std::vector<Message> unacked;  // stamped, in-window, unacknowledged
  std::vector<Message> pending;  // stamped, queued behind the window (FIFO)
};

/// Receiver half of one directed transport channel into the peer.
struct ChannelReceiverState {
  SymbolId from = 0;
  uint64_t cum = 0;                     // all seqs <= cum delivered
  std::vector<uint64_t> out_of_order;   // delivered seqs > cum, ascending
};

struct PeerSnapshot {
  SymbolId peer = 0;
  uint64_t epoch = 0;  // incarnation the snapshot was taken in
  std::vector<ChannelSenderState> senders;      // ascending by `to`
  std::vector<ChannelReceiverState> receivers;  // ascending by `from`
  std::string peer_state;  // opaque PeerNode::SaveState() blob
};

std::string SerializePeerSnapshot(const PeerSnapshot& snap);
PeerSnapshot DeserializePeerSnapshot(std::string_view bytes);

/// Minimal durable-store interface the network checkpoints through: a
/// keyed blob store plus per-key append-only logs (the write-ahead logs).
class DurableStore {
 public:
  virtual ~DurableStore() = default;

  virtual void Put(const std::string& key, std::string value) = 0;
  virtual std::optional<std::string> Get(const std::string& key) const = 0;

  virtual void Append(const std::string& key, std::string record) = 0;
  virtual const std::vector<std::string>& ReadLog(
      const std::string& key) const = 0;
  virtual void TruncateLog(const std::string& key) = 0;

  /// Total bytes handed to Put/Append — the durability write volume.
  virtual size_t bytes_written() const = 0;
};

/// In-process store modeling a local disk: state written here survives a
/// simulated peer crash (which wipes only the peer's volatile state).
class InMemoryDurableStore : public DurableStore {
 public:
  void Put(const std::string& key, std::string value) override;
  std::optional<std::string> Get(const std::string& key) const override;
  void Append(const std::string& key, std::string record) override;
  const std::vector<std::string>& ReadLog(
      const std::string& key) const override;
  void TruncateLog(const std::string& key) override;
  size_t bytes_written() const override { return bytes_written_; }

 private:
  std::map<std::string, std::string> blobs_;
  std::map<std::string, std::vector<std::string>> logs_;
  size_t bytes_written_ = 0;
  static const std::vector<std::string> kEmptyLog;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_SNAPSHOT_H_
