// Dijkstra–Scholten termination detection for diffusing computations —
// the "standard termination detection algorithm for distributed
// computing" the paper invokes in §3.1 for the distributed fixpoint
// (detecting that all peers are idle; cf. its references [19, 33]).
//
// The protocol: the computation starts at a root. Every basic message
// increases the sender's deficit; the first basic message a node receives
// engages it with the sender as its tree parent. A node acknowledges every
// other message immediately, and acknowledges its parent (disengaging)
// once it is passive and its own deficit is zero. The root detects global
// termination when it is passive with deficit zero — at that instant no
// basic message is in flight anywhere.
//
// The detector is expressed against an abstract transport so it can be
// verified against the simulator's god's-eye quiescence in tests and used
// to terminate distributed evaluations without global knowledge.
#ifndef DQSQ_DIST_TERMINATION_H_
#define DQSQ_DIST_TERMINATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"

namespace dqsq::dist {

using NodeId = uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;

/// One participant's Dijkstra–Scholten state machine. The host delivers
/// events (basic message received, ack received, work finished) and the
/// tracker says which control actions to take.
///
/// The protocol assumes an exactly-once transport: a node acks every
/// delivered basic message, so a duplicated delivery produces a second ack
/// and underflows the sender's deficit (aborting via DQSQ_CHECK), and a
/// dropped one strands the sender's deficit above zero forever. On a
/// faulty wire the reliable-delivery shim (dist/reliable.h) restores this
/// guarantee by deduplicating before the DsNode sees the message — acks
/// are counted against first deliveries only. Note the shim's flow-control
/// window may hold a sent basic message in a sender-side queue before it
/// ever reaches the wire; the sender's deficit already counts it, so the
/// detector stays sound, and SimNetwork::LogicallyQuiescent treats such
/// queued payload as undelivered (a detection while one exists is a
/// safety violation, exactly as for an in-flight first copy).
class DsNode {
 public:
  explicit DsNode(bool is_root) : engaged_(is_root) {}

  bool engaged() const { return engaged_; }
  uint64_t deficit() const { return deficit_; }
  NodeId parent() const { return parent_; }

  /// The node sends a basic message: its deficit grows.
  void OnSendBasic() { ++deficit_; }

  /// A basic message arrived from `from`. Returns true if the message must
  /// be acknowledged immediately (the node was already engaged); false if
  /// the sender became this node's parent (ack deferred to disengage).
  bool OnReceiveBasic(NodeId from) {
    if (engaged_) return true;
    engaged_ = true;
    parent_ = from;
    return false;
  }

  /// An acknowledgment arrived.
  void OnReceiveAck() {
    DQSQ_CHECK_GT(deficit_, 0u);
    --deficit_;
  }

  /// Called when the node is passive (no local work). Returns true if the
  /// node disengages now — the host must then send the deferred ack to
  /// parent() (non-root) or declare termination (root).
  bool TryDisengage() {
    if (!engaged_ || deficit_ != 0) return false;
    engaged_ = false;
    return true;
  }

  /// Reinstates state captured in a crash-restart snapshot (dist/snapshot.h).
  /// A restarted peer resumes exactly the engagement/deficit/parent it had
  /// at the recovery point, so the deferred ack to its tree parent is still
  /// owed and the sender-side deficits it participates in stay balanced —
  /// this is what keeps a restart from ack-underflowing the tree.
  void RestoreState(bool engaged, uint64_t deficit, NodeId parent) {
    engaged_ = engaged;
    deficit_ = deficit;
    parent_ = parent;
  }

 private:
  bool engaged_;
  uint64_t deficit_ = 0;
  NodeId parent_ = kNoNode;
};

/// A randomized diffusing computation executed over a simulated message
/// transport with Dijkstra–Scholten detection layered on it; used to test
/// the detector: when the root declares termination, the transport must be
/// quiescent.
struct DiffusionResult {
  size_t basic_messages = 0;
  size_t ack_messages = 0;
  size_t work_items = 0;
  /// True iff at the instant of detection no message was in flight.
  bool quiescent_at_detection = false;
  bool detected = false;
};

/// Runs a random fan-out computation over `num_nodes` nodes: the root
/// spawns work; each work item spawns 0..max_fanout children at random
/// nodes until `total_work` items executed.
StatusOr<DiffusionResult> RunDiffusingComputation(uint32_t num_nodes,
                                                  size_t total_work,
                                                  uint32_t max_fanout,
                                                  uint64_t seed);

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_TERMINATION_H_
