#include "dist/dnaive.h"

#include <unordered_set>

#include "common/metrics.h"
#include "dist/cluster.h"

namespace dqsq::dist {

namespace {

// IDB relation names of the original program (for answer-fact accounting).
std::unordered_set<std::string> IdbNames(const Program& program,
                                         const DatalogContext& ctx) {
  std::unordered_set<std::string> names;
  for (const Rule& rule : program.rules) {
    if (!rule.IsFact()) names.insert(ctx.PredicateName(rule.head.rel.pred));
  }
  return names;
}

}  // namespace

StatusOr<DistResult> DistNaiveSolve(DatalogContext& ctx,
                                    const Program& program,
                                    const ParsedQuery& query,
                                    const DistOptions& options) {
  DQSQ_RETURN_IF_ERROR(ValidateProgram(program, ctx));
  for (const Rule& rule : program.rules) {
    if (!rule.negative.empty()) {
      return UnimplementedError(
          "distributed evaluation supports positive dDatalog only: global "
          "stratification cannot be enforced per-message (paper Remark 4)");
    }
  }
  Labels engine{{"engine", "dnaive"}};
  CountMetric("dist.solve.queries", 1, engine);
  ScopedTimer timer(TimeMetric("dist.solve.wall_ns", engine));
  Cluster cluster(ctx, program, query, options.seed, options.eval,
                  Cluster::Mode::kEvaluate, options.faults,
                  options.num_shards, options.wire_batch);

  // The driver seeds the computation as the root of a Dijkstra-Scholten
  // diffusing computation: it sends the activation request and then just
  // delivers messages until its own deficit hits zero — no god's-eye view
  // of the channels is needed to know the fixpoint has been reached.
  cluster.SeedDemand(SeedDemandMessages(ctx, query, cluster.root().id(),
                                        Cluster::Mode::kEvaluate));
  DQSQ_RETURN_IF_ERROR(
      cluster.RunUntilTermination(options.max_network_steps));

  DistResult result;
  // RunUntilTermination fails the solve on a safety violation, so reaching
  // this point certifies quiescence at the instant of detection.
  result.quiescent_at_detection = true;
  // The owner is looked up AFTER the run: a live migration mid-evaluation
  // replaces the peer object, and answers live in the replacement.
  DatalogPeer& owner = cluster.peer(query.atom.rel.peer);
  result.answers = Ask(owner.db(), query.atom, query.num_vars);
  result.net_stats = cluster.network().stats();
  result.total_facts = cluster.TotalFacts();
  auto idb = IdbNames(program, ctx);
  result.answer_facts = cluster.CountFactsMatching(
      [&](const std::string& name) { return idb.contains(name); });
  result.num_peers = cluster.num_peers();
  result.relation_counts = cluster.RelationCounts();
  CountMetric("dist.solve.total_facts", result.total_facts, engine, "facts");
  CountMetric("dist.solve.answer_facts", result.answer_facts, engine, "facts");
  return result;
}

}  // namespace dqsq::dist
