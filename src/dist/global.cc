#include "dist/global.h"

namespace dqsq::dist {

namespace {

Atom TranslateAtom(const Atom& atom, DatalogContext& ctx) {
  Atom out;
  out.rel.pred = ctx.InternPredicate(
      ctx.PredicateName(atom.rel.pred) + "_g",
      static_cast<uint32_t>(atom.args.size()) + 1);
  out.rel.peer = ctx.local_peer();
  out.args = atom.args;
  out.args.push_back(Pattern::Const(atom.rel.peer));
  return out;
}

}  // namespace

StatusOr<Program> GlobalProgram(const Program& program, DatalogContext& ctx) {
  DQSQ_RETURN_IF_ERROR(ValidateProgram(program, ctx));
  Program out;
  for (const Rule& rule : program.rules) {
    Rule translated;
    translated.head = TranslateAtom(rule.head, ctx);
    for (const Atom& atom : rule.body) {
      translated.body.push_back(TranslateAtom(atom, ctx));
    }
    translated.diseqs = rule.diseqs;
    translated.num_vars = rule.num_vars;
    translated.var_names = rule.var_names;
    out.rules.push_back(std::move(translated));
  }
  DQSQ_RETURN_IF_ERROR(ValidateProgram(out, ctx));
  return out;
}

StatusOr<ParsedQuery> GlobalQuery(const ParsedQuery& query,
                                  DatalogContext& ctx) {
  ParsedQuery out;
  out.atom = TranslateAtom(query.atom, ctx);
  out.num_vars = query.num_vars;
  out.var_names = query.var_names;
  return out;
}

}  // namespace dqsq::dist
