// Shared driver plumbing: builds a simulated cluster of DatalogPeers from
// a distributed program (rules and facts installed at the peers owning
// their heads) and aggregates cross-peer statistics.
#ifndef DQSQ_DIST_CLUSTER_H_
#define DQSQ_DIST_CLUSTER_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "datalog/eval.h"
#include "datalog/parser.h"
#include "dist/network.h"
#include "dist/peer.h"
#include "dist/termination.h"

namespace dqsq::dist {

/// The driver's endpoint in the network: the root of the Dijkstra–Scholten
/// diffusing computation. It only sends the initial demand and collects
/// acknowledgments; global termination is detected when it is passive with
/// deficit zero — without any god's-eye view of the channels.
class RootNode : public PeerNode {
 public:
  explicit RootNode(SymbolId id) : id_(id), ds_(/*is_root=*/true) {}

  SymbolId id() const { return id_; }
  bool terminated() const { return terminated_; }

  /// Sends a basic message on behalf of the driver.
  void SendBasic(Message message, Network& network) {
    ds_.OnSendBasic();
    network.Send(std::move(message));
  }

  Status OnMessage(const Message& message, Network& network) override;

 private:
  SymbolId id_;
  DsNode ds_;
  bool terminated_ = false;
};

class Cluster {
 public:
  enum class Mode {
    kEvaluate,    // dnaive: rules evaluated bottom-up at their head peer
    kSourceOnly,  // dQSQ: rules feed demand-driven rewriting only
  };

  /// Creates one peer per peer name occurring in `program` or `query` —
  /// or, with `num_shards` > 1, that many worker shards per logical peer
  /// (dist/shard.h), every shard carrying the full rule set with its pivot
  /// atoms redirected to the shard's hash partition. Ground facts load
  /// into the owning peer's database; proper rules are installed according
  /// to `mode`. An active `faults` plan runs the network with fault
  /// injection plus the reliable-delivery shim. `wire_batch` enables
  /// section-batched kTuples flushes (default off: byte-identical wire).
  Cluster(DatalogContext& ctx, const Program& program,
          const ParsedQuery& query, uint64_t seed,
          const EvalOptions& eval_options, Mode mode,
          const FaultPlan& faults = {}, size_t num_shards = 1,
          const WireBatchOptions& wire_batch = {});

  SimNetwork& network() { return network_; }
  /// By logical id this returns shard 0 (whose id IS the logical id).
  DatalogPeer& peer(SymbolId id) { return *peers_.at(id); }
  bool has_peer(SymbolId id) const { return peers_.contains(id); }
  RootNode& root() { return *root_; }
  /// Null when unsharded.
  const ShardRouter* router() const { return router_.get(); }

  /// Sends the driver's seed messages, expanded for sharding: control
  /// messages broadcast to the target's shard group, tuple payloads
  /// hash-route to the owning shard. Unsharded this is a plain send.
  void SeedDemand(std::vector<Message> messages);

  /// Delivers messages until the root's Dijkstra–Scholten detection fires
  /// (or `max_steps` deliveries). On success the network is also checked
  /// to be quiescent — the algorithm's safety property, verified on every
  /// run.
  Status RunUntilTermination(size_t max_steps);

  size_t num_peers() const { return peers_.size(); }
  size_t TotalFacts() const;
  /// Facts per predicate name, summed across peers.
  std::map<std::string, size_t> RelationCounts() const;
  /// Sum over peers of facts whose predicate passes `filter`.
  size_t CountFactsMatching(
      const std::function<bool(const std::string&)>& filter) const;

 private:
  SimNetwork network_;
  DatalogContext* ctx_;
  EvalOptions eval_options_;
  WireBatchOptions wire_batch_;
  std::unique_ptr<ShardRouter> router_;  // null when num_shards <= 1
  std::unique_ptr<RootNode> root_;
  std::map<SymbolId, std::unique_ptr<DatalogPeer>> peers_;
  // Peers replaced by live migration: kept alive (crashed, fenced) so any
  // outstanding raw pointers in the turn that triggered the migration stay
  // valid; answer extraction reads the replacements in peers_.
  std::vector<std::unique_ptr<DatalogPeer>> retired_;
};

// ---- Shared driver plumbing ----------------------------------------------
// Used by the simulated Cluster above AND the multi-process runner
// (dist/cluster_main.cc), so both build identical peer state, pose
// identical demand and extract answers from the same relation.

/// Peer names occurring in `program` or `query`: the unit of placement.
/// The simulated Cluster hosts all of them in one process; the cluster
/// runner partitions them across OS processes.
std::set<SymbolId> ProgramPeers(const Program& program,
                                const ParsedQuery& query);

/// Installs one program rule at the peer owning its head: ground facts
/// load as extensional data, proper rules install per `mode`.
void InstallRuleAt(DatalogPeer& owner, const Rule& rule, Cluster::Mode mode,
                   DatalogContext& ctx);

/// The demand the root sends to start the computation: one kActivate for
/// distributed naive, or a kSubquery followed by the seed input tuple for
/// dQSQ (per-channel FIFO keeps the pair ordered).
std::vector<Message> SeedDemandMessages(DatalogContext& ctx,
                                        const ParsedQuery& query,
                                        SymbolId root_id, Cluster::Mode mode);

/// The atom whose facts at the query-owner peer are the final answers:
/// the query atom itself under kEvaluate, the adorned answer relation
/// under kSourceOnly.
Atom AnswerAtom(DatalogContext& ctx, const ParsedQuery& query,
                Cluster::Mode mode);

/// Expands root seed messages for a sharded topology: kTuples payloads
/// hash-route per tuple to the owning shard, control messages broadcast to
/// every shard of the target's group (a self-subscription follows its
/// shard). Identity when `router` is null or the target is unknown to it.
/// Shared by the simulated Cluster and the multi-process supervisor so
/// both pose byte-identical demand.
std::vector<Message> ExpandSeedForShards(const ShardRouter* router,
                                         std::vector<Message> messages);

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_CLUSTER_H_
