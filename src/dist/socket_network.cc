#include "dist/socket_network.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"

namespace dqsq::dist {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Nonblocking for the poll loop; close-on-exec so the supervisor's
/// sockets do not leak into the peer processes it forks.
Status MakeNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return InternalError(Errno("fcntl(O_NONBLOCK)"));
  }
  if (fcntl(fd, F_SETFD, FD_CLOEXEC) < 0) {
    return InternalError(Errno("fcntl(FD_CLOEXEC)"));
  }
  return Status::Ok();
}

/// Numeric IPv4 only, with "localhost" as a convenience alias — cluster
/// peers are addressed by the supervisor, not by DNS.
StatusOr<in_addr> ParseHost(const std::string& host) {
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (inet_pton(AF_INET, resolved.c_str(), &addr) != 1) {
    return InvalidArgumentError("unparsable IPv4 host '" + host + "'");
  }
  return addr;
}

}  // namespace

SocketNetwork::SocketNetwork(DatalogContext& ctx, SocketNetworkOptions options,
                             Clock* clock)
    : ctx_(ctx), options_(options), clock_(clock) {}

SocketNetwork::~SocketNetwork() {
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
}

Status SocketNetwork::Listen(const std::string& host, uint16_t port) {
  DQSQ_CHECK_LT(listen_fd_, 0) << "Listen called twice";
  DQSQ_ASSIGN_OR_RETURN(in_addr host_addr, ParseHost(host));
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return InternalError(Errno("socket"));
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = host_addr;
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = InternalError(
        Errno("bind " + host + ":" + std::to_string(port)));
    close(fd);
    return status;
  }
  if (listen(fd, SOMAXCONN) < 0) {
    Status status = InternalError(Errno("listen"));
    close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status status = InternalError(Errno("getsockname"));
    close(fd);
    return status;
  }
  DQSQ_RETURN_IF_ERROR(MakeNonBlocking(fd));
  listen_fd_ = fd;
  listen_port_ = ntohs(addr.sin_port);
  return Status::Ok();
}

void SocketNetwork::Register(SymbolId id, PeerNode* peer) {
  DQSQ_CHECK(peers_.emplace(id, peer).second) << "duplicate peer id " << id;
}

void SocketNetwork::SetAddress(const std::string& peer_name,
                               const SocketAddress& address) {
  address_book_[peer_name] = address;
}

void SocketNetwork::Defer(Status status) {
  if (deferred_error_.ok() && !status.ok()) deferred_error_ = status;
}

void SocketNetwork::Send(Message message) {
  if (peers_.contains(message.to)) {
    inbox_.push_back(std::move(message));
    return;
  }
  const std::string& to_name = ctx_.symbols().Name(message.to);
  auto it = address_book_.find(to_name);
  if (it == address_book_.end()) {
    Defer(InvalidArgumentError("send to peer '" + to_name +
                               "': not local and not in the address book"));
    return;
  }
  auto conn = ConnectionTo(it->second);
  if (!conn.ok()) {
    Defer(conn.status());
    return;
  }
  QueueFrame(**conn, FrameType::kPeerMessage,
             EncodeWireMessage(message, ctx_));
  // Opportunistic flush so steady-state sends do not wait for the next
  // poll round; leftovers stay buffered for Pump.
  Defer(FlushConnection(**conn));
}

Status SocketNetwork::SendControl(const SocketAddress& to, FrameType type,
                                  std::string_view payload) {
  DQSQ_ASSIGN_OR_RETURN(Connection * conn, ConnectionTo(to));
  QueueFrame(*conn, type, payload);
  return FlushConnection(*conn);
}

Status SocketNetwork::SendControlOn(uint64_t conn_id, FrameType type,
                                    std::string_view payload) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return InvalidArgumentError("reply on a closed connection");
  }
  QueueFrame(*it->second, type, payload);
  return FlushConnection(*it->second);
}

void SocketNetwork::QueueFrame(Connection& conn, FrameType type,
                               std::string_view payload) {
  conn.outbuf.append(EncodeFrame(type, payload));
  ++stats_.frames_sent;
  CountMetric("dist.net.real_frames_sent", 1, {}, "frames");
}

StatusOr<SocketNetwork::Connection*> SocketNetwork::ConnectionTo(
    const SocketAddress& address) {
  auto it = outbound_.find(address.ToString());
  if (it != outbound_.end()) return conns_.at(it->second).get();
  return Dial(address);
}

StatusOr<SocketNetwork::Connection*> SocketNetwork::Dial(
    const SocketAddress& address) {
  DQSQ_ASSIGN_OR_RETURN(in_addr host_addr, ParseHost(address.host));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = host_addr;
  addr.sin_port = htons(address.port);
  const uint64_t start_ns = clock_->NowNs();
  const uint64_t deadline_ns =
      start_ns + uint64_t{1'000'000} * options_.connect_timeout_ms;
  size_t attempts = 0;
  for (;;) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return InternalError(Errno("socket"));
    ++attempts;
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (options_.sndbuf_bytes > 0) {
        setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
      }
      Status status = MakeNonBlocking(fd);
      if (!status.ok()) {
        close(fd);
        return status;
      }
      TimeMetric("dist.net.real_connect_ns").Record(clock_->NowNs() - start_ns);
      if (attempts > 1) {
        CountMetric("dist.net.real_connect_retries", attempts - 1, {},
                    "attempts");
      }
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->remote = address.ToString();
      Connection* raw = conn.get();
      uint64_t id = next_conn_id_++;
      conns_.emplace(id, std::move(conn));
      outbound_.emplace(address.ToString(), id);
      ++stats_.connects;
      return raw;
    }
    close(fd);
    // ECONNREFUSED during bootstrap just means the remote has not bound
    // its listen socket yet; retry within the budget.
    if (clock_->NowNs() >= deadline_ns) {
      return InternalError("connect " + address.ToString() + " timed out (" +
                           std::to_string(attempts) + " attempts over " +
                           std::to_string(options_.connect_timeout_ms) +
                           "ms): " + std::strerror(errno));
    }
    timespec wait{options_.connect_retry_ms / 1000,
                  (options_.connect_retry_ms % 1000) * 1'000'000L};
    nanosleep(&wait, nullptr);
  }
}

Status SocketNetwork::FlushConnection(Connection& conn) {
  while (conn.outbuf_off < conn.outbuf.size()) {
    ssize_t n = send(conn.fd, conn.outbuf.data() + conn.outbuf_off,
                     conn.outbuf.size() - conn.outbuf_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // poll for POLLOUT
      if (errno == EINTR) continue;
      return InternalError(Errno("send to " + conn.remote));
    }
    conn.outbuf_off += static_cast<size_t>(n);
    stats_.bytes_sent += static_cast<size_t>(n);
    CountMetric("dist.net.real_sent_bytes", static_cast<uint64_t>(n), {},
                "bytes");
  }
  if (conn.outbuf_off == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outbuf_off = 0;
  } else if (conn.outbuf_off >= 64 * 1024) {
    // Partial flush on a slow receiver: drop the already-sent prefix so a
    // long EAGAIN streak cannot pin the whole send history in memory
    // (QueueFrame keeps appending behind the offset).
    conn.outbuf.erase(0, conn.outbuf_off);
    conn.outbuf_off = 0;
  }
  return Status::Ok();
}

Status SocketNetwork::AcceptReady() {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    int fd = accept(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
      if (errno == EINTR) continue;
      return InternalError(Errno("accept"));
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.sndbuf_bytes > 0) {
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                 sizeof(options_.sndbuf_bytes));
    }
    Status status = MakeNonBlocking(fd);
    if (!status.ok()) {
      close(fd);
      return status;
    }
    char host[INET_ADDRSTRLEN] = "?";
    inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->remote = std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
    conns_.emplace(next_conn_id_++, std::move(conn));
    ++stats_.accepts;
    CountMetric("dist.net.real_accepts", 1, {}, "connections");
  }
}

void SocketNetwork::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  close(it->second->fd);
  for (auto out = outbound_.begin(); out != outbound_.end(); ++out) {
    if (out->second == conn_id) {
      outbound_.erase(out);
      break;
    }
  }
  conns_.erase(it);
}

Status SocketNetwork::Deliver(const Message& message) {
  auto it = peers_.find(message.to);
  if (it == peers_.end()) {
    return InternalError("message for peer '" +
                         ctx_.symbols().Name(message.to) +
                         "' routed to a process not hosting it");
  }
  ++stats_.messages_delivered;
  if (message.kind == MessageKind::kTuples) {
    stats_.tuples_shipped += message.tuples.size();
  }
  CountMetric("dist.net.real_messages_delivered", 1, {}, "messages");
  return it->second->OnMessage(message, *this);
}

Status SocketNetwork::DispatchFrame(Frame frame, uint64_t conn_id) {
  ++stats_.frames_received;
  CountMetric("dist.net.real_frames_recv", 1, {}, "frames");
  if (frame.type == FrameType::kPeerMessage) {
    return Deliver(DecodeWireMessage(frame.payload, ctx_));
  }
  if (control_handler_ == nullptr) {
    return InternalError("control frame received with no handler installed");
  }
  return control_handler_(frame, conn_id);
}

Status SocketNetwork::DrainConnection(uint64_t conn_id) {
  char buf[64 * 1024];
  for (;;) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return Status::Ok();  // closed by a handler
    Connection& conn = *it->second;
    ssize_t n = recv(conn.fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
      if (errno == EINTR) continue;
      return InternalError(Errno("recv from " + conn.remote));
    }
    if (n == 0) {
      // Orderly remote close. Losing buffered outbound bytes would be a
      // silent message drop — surface it.
      Status status = Status::Ok();
      if (conn.outbuf_off < conn.outbuf.size()) {
        status = InternalError("connection to " + conn.remote +
                               " closed with unsent bytes");
      }
      CloseConnection(conn_id);
      return status;
    }
    stats_.bytes_received += static_cast<size_t>(n);
    CountMetric("dist.net.real_recv_bytes", static_cast<uint64_t>(n), {},
                "bytes");
    conn.decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    for (;;) {
      auto next = conn.decoder.Next();
      if (!next.ok()) {
        ++stats_.framing_errors;
        CountMetric("dist.net.real_framing_errors", 1, {}, "frames");
        std::string remote = conn.remote;
        CloseConnection(conn_id);
        return InternalError(next.status().message() + " (from " + remote +
                             ")");
      }
      if (!next->has_value()) break;
      DQSQ_RETURN_IF_ERROR(DispatchFrame(std::move(**next), conn_id));
      // The handler may have closed this connection; re-check.
      if (!conns_.contains(conn_id)) return Status::Ok();
    }
  }
}

Status SocketNetwork::Pump(int timeout_ms) {
  if (!deferred_error_.ok()) {
    Status status = deferred_error_;
    deferred_error_ = Status::Ok();
    return status;
  }
  // Loopback deliveries first: they may enqueue socket writes below.
  while (!inbox_.empty()) {
    Message m = std::move(inbox_.front());
    inbox_.pop_front();
    DQSQ_RETURN_IF_ERROR(Deliver(m));
  }

  std::vector<pollfd> fds;
  std::vector<uint64_t> ids;  // ids[i] corresponds to fds[i]; 0 = listener
  if (listen_fd_ >= 0) {
    fds.push_back({listen_fd_, POLLIN, 0});
    ids.push_back(0);
  }
  for (const auto& [id, conn] : conns_) {
    short events = POLLIN;
    if (conn->outbuf_off < conn->outbuf.size()) events |= POLLOUT;
    fds.push_back({conn->fd, events, 0});
    ids.push_back(id);
  }
  if (fds.empty()) return Status::Ok();
  int ready = poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Status::Ok();
    return InternalError(Errno("poll"));
  }
  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    if (ids[i] == 0) {
      DQSQ_RETURN_IF_ERROR(AcceptReady());
      continue;
    }
    auto it = conns_.find(ids[i]);
    if (it == conns_.end()) continue;  // closed earlier this round
    if (fds[i].revents & POLLOUT) {
      DQSQ_RETURN_IF_ERROR(FlushConnection(*it->second));
    }
    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      DQSQ_RETURN_IF_ERROR(DrainConnection(ids[i]));
    }
  }
  // Dispatches may have queued loopback messages or writes; deliver the
  // former now so PumpUntil predicates observe them.
  while (!inbox_.empty()) {
    Message m = std::move(inbox_.front());
    inbox_.pop_front();
    DQSQ_RETURN_IF_ERROR(Deliver(m));
  }
  if (!deferred_error_.ok()) {
    Status status = deferred_error_;
    deferred_error_ = Status::Ok();
    return status;
  }
  return Status::Ok();
}

Status SocketNetwork::PumpUntil(const std::function<bool()>& pred,
                                int timeout_ms) {
  const uint64_t deadline_ns =
      clock_->NowNs() + uint64_t{1'000'000} * timeout_ms;
  while (!pred()) {
    uint64_t now_ns = clock_->NowNs();
    if (now_ns >= deadline_ns) {
      return ResourceExhaustedError("PumpUntil timed out after " +
                                    std::to_string(timeout_ms) + "ms");
    }
    uint64_t slice_ms = (deadline_ns - now_ns) / 1'000'000;
    DQSQ_RETURN_IF_ERROR(
        Pump(static_cast<int>(std::min<uint64_t>(slice_ms + 1, 20))));
  }
  return Status::Ok();
}

}  // namespace dqsq::dist
