#include "dist/dqsq.h"

#include <unordered_set>

#include "common/metrics.h"
#include "datalog/adornment.h"
#include "datalog/qsq_rewrite.h"
#include "dist/cluster.h"

namespace dqsq::dist {

StatusOr<DistResult> DistQsqSolve(DatalogContext& ctx, const Program& program,
                                  const ParsedQuery& query,
                                  const DistOptions& options) {
  DQSQ_RETURN_IF_ERROR(ValidateProgram(program, ctx));
  for (const Rule& rule : program.rules) {
    if (!rule.negative.empty()) {
      return UnimplementedError(
          "distributed evaluation supports positive dDatalog only: global "
          "stratification cannot be enforced per-message (paper Remark 4)");
    }
  }
  Labels engine{{"engine", "dqsq"}};
  CountMetric("dist.solve.queries", 1, engine);
  ScopedTimer timer(TimeMetric("dist.solve.wall_ns", engine));
  Cluster cluster(ctx, program, query, options.seed, options.eval,
                  Cluster::Mode::kSourceOnly, options.faults);

  const RelId query_rel = query.atom.rel;
  Adornment adornment = QueryAdornment(query.atom);
  const std::string& base = ctx.PredicateName(query_rel.pred);

  // Interface relations of the query's call pattern.
  uint32_t bound = 0;
  for (bool b : adornment) bound += b ? 1 : 0;
  PredicateId in_pred =
      ctx.InternPredicate(InputPredName(base, adornment), bound);
  PredicateId ans_pred = ctx.InternPredicate(
      AnswerPredName(base, adornment), ctx.PredicateArity(query_rel.pred));
  RelId input_rel{in_pred, query_rel.peer};
  RelId answer_rel{ans_pred, query_rel.peer};

  // Pose the query at the owner as the Dijkstra-Scholten root: a subquery
  // message carrying the call pattern, then the bound arguments (FIFO on
  // the same channel keeps them ordered). Termination is detected by the
  // root's deficit, not by inspecting the channels.
  DatalogPeer& owner = cluster.peer(query_rel.peer);
  {
    Message sub;
    sub.kind = MessageKind::kSubquery;
    sub.from = cluster.root().id();
    sub.to = query_rel.peer;
    sub.rel = query_rel;
    sub.adornment = adornment;
    cluster.root().SendBasic(std::move(sub), cluster.network());
  }
  {
    std::vector<TermId> seed;
    for (size_t i = 0; i < query.atom.args.size(); ++i) {
      if (!adornment[i]) continue;
      seed.push_back(
          GroundPattern(query.atom.args[i], Substitution(), ctx.arena()));
    }
    Message data;
    data.kind = MessageKind::kTuples;
    data.from = cluster.root().id();
    data.to = query_rel.peer;
    data.rel = input_rel;
    data.tuples.push_back(std::move(seed));
    cluster.root().SendBasic(std::move(data), cluster.network());
  }
  DQSQ_RETURN_IF_ERROR(
      cluster.RunUntilTermination(options.max_network_steps));

  DistResult result;
  // RunUntilTermination fails the solve on a safety violation, so reaching
  // this point certifies quiescence at the instant of detection.
  result.quiescent_at_detection = true;
  Atom answer_query{answer_rel, query.atom.args};
  result.answers = Ask(owner.db(), answer_query, query.num_vars);
  result.net_stats = cluster.network().stats();
  result.total_facts = cluster.TotalFacts();

  // Adorned-answer facts across peers: relations named "X__<adornment>"
  // that are neither sup/in bookkeeping nor inputs.
  result.answer_facts = cluster.CountFactsMatching(
      [&](const std::string& name) {
        if (name.rfind("in__", 0) == 0) return false;
        if (name.find("sup__") != std::string::npos) return false;
        if (name.find("supall__") != std::string::npos) return false;
        return name.find("__") != std::string::npos;
      });
  result.num_peers = cluster.num_peers();
  result.relation_counts = cluster.RelationCounts();
  CountMetric("dist.solve.total_facts", result.total_facts, engine, "facts");
  CountMetric("dist.solve.answer_facts", result.answer_facts, engine, "facts");
  return result;
}

}  // namespace dqsq::dist
