#include "dist/dqsq.h"

#include <unordered_set>

#include "common/metrics.h"
#include "dist/cluster.h"

namespace dqsq::dist {

StatusOr<DistResult> DistQsqSolve(DatalogContext& ctx, const Program& program,
                                  const ParsedQuery& query,
                                  const DistOptions& options) {
  DQSQ_RETURN_IF_ERROR(ValidateProgram(program, ctx));
  for (const Rule& rule : program.rules) {
    if (!rule.negative.empty()) {
      return UnimplementedError(
          "distributed evaluation supports positive dDatalog only: global "
          "stratification cannot be enforced per-message (paper Remark 4)");
    }
  }
  Labels engine{{"engine", "dqsq"}};
  CountMetric("dist.solve.queries", 1, engine);
  ScopedTimer timer(TimeMetric("dist.solve.wall_ns", engine));
  Cluster cluster(ctx, program, query, options.seed, options.eval,
                  Cluster::Mode::kSourceOnly, options.faults,
                  options.num_shards, options.wire_batch);

  // Pose the query at the owner as the Dijkstra-Scholten root: a subquery
  // message carrying the call pattern, then the bound arguments (FIFO on
  // the same channel keeps them ordered). Termination is detected by the
  // root's deficit, not by inspecting the channels.
  cluster.SeedDemand(SeedDemandMessages(ctx, query, cluster.root().id(),
                                        Cluster::Mode::kSourceOnly));
  DQSQ_RETURN_IF_ERROR(
      cluster.RunUntilTermination(options.max_network_steps));

  DistResult result;
  // RunUntilTermination fails the solve on a safety violation, so reaching
  // this point certifies quiescence at the instant of detection.
  result.quiescent_at_detection = true;
  // The owner is looked up AFTER the run: a live migration mid-evaluation
  // replaces the peer object, and answers live in the replacement.
  DatalogPeer& owner = cluster.peer(query.atom.rel.peer);
  result.answers = Ask(owner.db(), AnswerAtom(ctx, query, Cluster::Mode::kSourceOnly),
                       query.num_vars);
  result.net_stats = cluster.network().stats();
  result.total_facts = cluster.TotalFacts();

  // Adorned-answer facts across peers: relations named "X__<adornment>"
  // that are neither sup/in bookkeeping nor inputs.
  result.answer_facts = cluster.CountFactsMatching(
      [&](const std::string& name) {
        // own$ shadow partitions (sharding) duplicate rows of their base
        // relation and must not count (own$in__X etc. contain "__").
        if (name.rfind("own$", 0) == 0) return false;
        if (name.rfind("in__", 0) == 0) return false;
        if (name.find("sup__") != std::string::npos) return false;
        if (name.find("supall__") != std::string::npos) return false;
        return name.find("__") != std::string::npos;
      });
  result.num_peers = cluster.num_peers();
  result.relation_counts = cluster.RelationCounts();
  CountMetric("dist.solve.total_facts", result.total_facts, engine, "facts");
  CountMetric("dist.solve.answer_facts", result.answer_facts, engine, "facts");
  return result;
}

}  // namespace dqsq::dist
