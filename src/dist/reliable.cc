#include "dist/reliable.h"

#include <algorithm>

#include "common/logging.h"

namespace dqsq::dist {

uint64_t ReliableTransport::Rto(const SenderState& sender) const {
  if (!config_.adaptive_rto || !sender.has_rtt) {
    return config_.retransmit_timeout;
  }
  uint64_t rto = sender.srtt + std::max<uint64_t>(4 * sender.rttvar, 1);
  return std::clamp(rto, config_.rto_min, config_.rto_max);
}

void ReliableTransport::SampleRtt(SenderState& sender, uint64_t rtt) {
  if (!config_.adaptive_rto) return;
  ++stats_.rtt_samples;
  if (!sender.has_rtt) {
    // RFC 6298 initialization: SRTT = R, RTTVAR = R/2.
    sender.has_rtt = true;
    sender.srtt = rtt;
    sender.rttvar = rtt / 2;
  } else {
    // SRTT = 7/8·SRTT + 1/8·R, RTTVAR = 3/4·RTTVAR + 1/4·|SRTT - R|.
    uint64_t err = sender.srtt > rtt ? sender.srtt - rtt : rtt - sender.srtt;
    sender.rttvar = (3 * sender.rttvar + err) / 4;
    sender.srtt = (7 * sender.srtt + rtt) / 8;
  }
  stats_.last_rto = Rto(sender);
}

std::vector<SackBlock> ReliableTransport::EncodeSack(
    const ReceiverState& receiver) const {
  std::vector<SackBlock> blocks;
  if (config_.max_sack_blocks == 0) return blocks;
  for (uint64_t seq : receiver.out_of_order) {
    if (!blocks.empty() && seq == blocks.back().last + 1) {
      blocks.back().last = seq;
    } else if (blocks.size() < config_.max_sack_blocks) {
      blocks.push_back({seq, seq});
    } else {
      break;  // bounded: the lowest ranges repair the oldest holes first
    }
  }
  return blocks;
}

void ReliableTransport::AttachAck(const ChannelKey& reverse, Message& m,
                                  uint64_t now) {
  ReceiverState& receiver = receivers_[reverse];
  m.ack = receiver.cum;
  m.sack = EncodeSack(receiver);
  // Sending an ack does NOT discharge the debt: the carrier may still be
  // dropped by the fault plan. Re-arm the standalone-ack timer; the owed
  // state clears when a delivery confirms an ack at least this high
  // (OnWireDelivery), so a lost carrier costs one standalone ack instead
  // of a spurious retransmit round trip.
  if (receiver.ack_owed) receiver.owed_since = now;
}

void ReliableTransport::Transmit(const ChannelKey& channel,
                                 SenderState& sender, Message& m,
                                 uint64_t now) {
  AttachAck(ChannelKey{channel.second, channel.first}, m, now);
  m.retransmit = false;
  sender.unacked.emplace(
      m.seq, Unacked{m, now + Rto(sender), /*backoff=*/1, /*sent_at=*/now,
                     /*transmissions=*/1});
}

bool ReliableTransport::StampOutgoing(Message& m, uint64_t now) {
  ChannelKey channel{m.from, m.to};
  SenderState& sender = senders_[channel];
  m.seq = ++sender.next_seq;
  if ((config_.window > 0 && sender.unacked.size() >= config_.window) ||
      !sender.pending.empty()) {
    // Window full — or a stalled backlog exists, which must drain first to
    // keep the channel's transmission order FIFO: queue sender-side. The
    // ack and SACK blocks are attached at actual transmission time.
    ++stats_.window_stalls;
    m.retransmit = false;
    sender.pending.push_back(m);
    return false;
  }
  Transmit(channel, sender, m, now);
  return true;
}

void ReliableTransport::ApplyAck(SenderState& sender, const Message& m,
                                 uint64_t now) {
  auto sample_and_erase = [&](std::map<uint64_t, Unacked>::iterator it) {
    // Karn's rule: a retransmitted entry's ack is ambiguous (it may
    // acknowledge any transmission), so only never-retransmitted entries
    // contribute RTT samples.
    if (it->second.transmissions == 1) {
      SampleRtt(sender, now - it->second.sent_at);
    }
    return sender.unacked.erase(it);
  };
  for (auto it = sender.unacked.begin();
       it != sender.unacked.end() && it->first <= m.ack;) {
    it = sample_and_erase(it);
  }
  for (const SackBlock& block : m.sack) {
    for (auto it = sender.unacked.lower_bound(block.first);
         it != sender.unacked.end() && it->first <= block.last;) {
      ++stats_.sacked;
      it = sample_and_erase(it);
    }
  }
}

ReliableTransport::Disposition ReliableTransport::OnWireDelivery(
    const Message& m, uint64_t now) {
  // The ack concerns messages the receiver (m.to) previously sent to m.from.
  if (m.ack > 0 || !m.sack.empty()) {
    ChannelKey data_channel{m.to, m.from};
    if (auto it = senders_.find(data_channel); it != senders_.end()) {
      ApplyAck(it->second, m, now);
    }
    // This delivery also proves the ack reached its destination: the
    // receiver end of data_channel stops owing one, provided the delivered
    // ack covers everything it has received since (cumulative and
    // out-of-order alike).
    if (auto it = receivers_.find(data_channel); it != receivers_.end()) {
      ReceiverState& receiver = it->second;
      if (receiver.ack_owed && m.ack >= receiver.cum) {
        bool covered = true;
        for (uint64_t seq : receiver.out_of_order) {
          covered = std::any_of(m.sack.begin(), m.sack.end(),
                                [seq](const SackBlock& b) {
                                  return b.first <= seq && seq <= b.last;
                                });
          if (!covered) break;
        }
        if (covered) receiver.ack_owed = false;
      }
    }
  }
  if (m.kind == MessageKind::kTransportAck) return Disposition::kControl;
  DQSQ_CHECK_GT(m.seq, 0u) << "unsequenced message on a reliable channel";

  ReceiverState& receiver = receivers_[ChannelKey{m.from, m.to}];
  if (receiver.Saw(m.seq)) {
    // Spurious (our ack was lost or is in flight): owe a fresh ack so the
    // sender's retransmit loop terminates.
    if (!receiver.ack_owed) {
      receiver.ack_owed = true;
      receiver.owed_since = now;
    }
    return Disposition::kDuplicate;
  }
  if (m.seq == receiver.cum + 1) {
    ++receiver.cum;
    while (receiver.out_of_order.erase(receiver.cum + 1) > 0) ++receiver.cum;
  } else {
    receiver.out_of_order.insert(m.seq);
  }
  if (!receiver.ack_owed) {
    receiver.ack_owed = true;
    receiver.owed_since = now;
  }
  return Disposition::kDeliverFirst;
}

std::vector<Message> ReliableTransport::PollWire(uint64_t now) {
  std::vector<Message> out;
  for (auto& [channel, sender] : senders_) {
    for (auto& [seq, entry] : sender.unacked) {
      if (entry.due > now) continue;
      entry.backoff = std::min(entry.backoff * 2, config_.max_backoff);
      entry.due = now + Rto(sender) * entry.backoff;
      ++entry.transmissions;  // Karn: this entry's RTT is now ambiguous
      Message copy = entry.copy;
      copy.retransmit = true;
      // Refresh the piggybacked ack + SACK blocks: the reverse channel may
      // have advanced since the original send.
      AttachAck(ChannelKey{channel.second, channel.first}, copy, now);
      out.push_back(std::move(copy));
    }
    // Drain window-stalled sends as acks open the window.
    while (!sender.pending.empty() &&
           (config_.window == 0 || sender.unacked.size() < config_.window)) {
      Message m = std::move(sender.pending.front());
      sender.pending.pop_front();
      ++stats_.window_drained;
      Transmit(channel, sender, m, now);
      out.push_back(std::move(m));
    }
  }
  for (auto& [channel, receiver] : receivers_) {
    if (!receiver.ack_owed || now < receiver.owed_since + config_.ack_delay) {
      continue;
    }
    // Re-arm instead of clearing: the debt is discharged only when some
    // delivery confirms the ack arrived. If this standalone ack is dropped,
    // another flushes after ack_delay more steps of silence.
    receiver.owed_since = now;
    Message ack;
    ack.kind = MessageKind::kTransportAck;
    ack.from = channel.second;  // receiver end of the data channel
    ack.to = channel.first;
    ack.ack = receiver.cum;
    ack.sack = EncodeSack(receiver);
    out.push_back(std::move(ack));
  }
  return out;
}

std::optional<uint64_t> ReliableTransport::NextDue() const {
  std::optional<uint64_t> due;
  auto consider = [&due](uint64_t t) {
    if (!due.has_value() || t < *due) due = t;
  };
  for (const auto& [channel, sender] : senders_) {
    for (const auto& [seq, entry] : sender.unacked) consider(entry.due);
    if (!sender.pending.empty() &&
        (config_.window == 0 || sender.unacked.size() < config_.window)) {
      consider(0);  // the window is open: the next PollWire drains
    }
  }
  for (const auto& [channel, receiver] : receivers_) {
    if (receiver.ack_owed) consider(receiver.owed_since + config_.ack_delay);
  }
  return due;
}

bool ReliableTransport::Seen(const ChannelKey& channel, uint64_t seq) const {
  auto it = receivers_.find(channel);
  return it != receivers_.end() && it->second.Saw(seq);
}

bool ReliableTransport::HasUnacked() const {
  for (const auto& [channel, sender] : senders_) {
    if (!sender.unacked.empty() || !sender.pending.empty()) return true;
  }
  return false;
}

bool ReliableTransport::AllPayloadDelivered() const {
  for (const auto& [channel, sender] : senders_) {
    if (!sender.pending.empty()) return false;  // never even transmitted
    for (const auto& [seq, entry] : sender.unacked) {
      if (!Seen(channel, seq)) return false;
    }
  }
  return true;
}

}  // namespace dqsq::dist
