#include "dist/reliable.h"

#include <algorithm>
#include <iterator>

#include "common/logging.h"

namespace dqsq::dist {

uint64_t ReliableTransport::Rto(const SenderState& sender) const {
  if (!config_.adaptive_rto || !sender.has_rtt) {
    return config_.retransmit_timeout;
  }
  uint64_t rto = sender.srtt + std::max<uint64_t>(4 * sender.rttvar, 1);
  return std::clamp(rto, config_.rto_min, config_.rto_max);
}

void ReliableTransport::SampleRtt(SenderState& sender, uint64_t rtt) {
  if (!config_.adaptive_rto) return;
  // Replayed deliveries carry no timing information (their "RTT" is the
  // replay loop's zero-width clock): keep them out of the estimator.
  if (replaying_) return;
  ++stats_.rtt_samples;
  if (!sender.has_rtt) {
    // RFC 6298 initialization: SRTT = R, RTTVAR = R/2.
    sender.has_rtt = true;
    sender.srtt = rtt;
    sender.rttvar = rtt / 2;
  } else {
    // SRTT = 7/8·SRTT + 1/8·R, RTTVAR = 3/4·RTTVAR + 1/4·|SRTT - R|.
    uint64_t err = sender.srtt > rtt ? sender.srtt - rtt : rtt - sender.srtt;
    sender.rttvar = (3 * sender.rttvar + err) / 4;
    sender.srtt = (7 * sender.srtt + rtt) / 8;
  }
  stats_.last_rto = Rto(sender);
}

std::vector<SackBlock> ReliableTransport::EncodeSack(
    const ReceiverState& receiver) const {
  std::vector<SackBlock> blocks;
  if (config_.max_sack_blocks == 0) return blocks;
  for (uint64_t seq : receiver.out_of_order) {
    if (!blocks.empty() && seq == blocks.back().last + 1) {
      blocks.back().last = seq;
    } else if (blocks.size() < config_.max_sack_blocks) {
      blocks.push_back({seq, seq});
    } else {
      break;  // bounded: the lowest ranges repair the oldest holes first
    }
  }
  return blocks;
}

void ReliableTransport::AttachAck(const ChannelKey& reverse, Message& m,
                                  uint64_t now) {
  ReceiverState& receiver = receivers_[reverse];
  m.ack = receiver.cum;
  m.sack = EncodeSack(receiver);
  // Sending an ack does NOT discharge the debt: the carrier may still be
  // dropped by the fault plan. Re-arm the standalone-ack timer; the owed
  // state clears when a delivery confirms an ack at least this high
  // (OnWireDelivery), so a lost carrier costs one standalone ack instead
  // of a spurious retransmit round trip.
  if (receiver.ack_owed) receiver.owed_since = now;
}

void ReliableTransport::Transmit(const ChannelKey& channel,
                                 SenderState& sender, Message& m,
                                 uint64_t now) {
  AttachAck(ChannelKey{channel.second, channel.first}, m, now);
  m.retransmit = false;
  m.epoch = EpochOf(channel.first);
  sender.unacked.emplace(
      m.seq, Unacked{m, now + Rto(sender), /*backoff=*/1, /*sent_at=*/now,
                     /*transmissions=*/1});
}

bool ReliableTransport::StampOutgoing(Message& m, uint64_t now) {
  ChannelKey channel{m.from, m.to};
  SenderState& sender = senders_[channel];
  m.seq = ++sender.next_seq;
  if ((config_.window > 0 && sender.unacked.size() >= config_.window) ||
      !sender.pending.empty()) {
    // Window full — or a stalled backlog exists, which must drain first to
    // keep the channel's transmission order FIFO: queue sender-side. The
    // ack and SACK blocks are attached at actual transmission time.
    ++stats_.window_stalls;
    m.retransmit = false;
    sender.pending.push_back(m);
    return false;
  }
  Transmit(channel, sender, m, now);
  return true;
}

void ReliableTransport::ApplyAck(SenderState& sender, const Message& m,
                                 uint64_t now) {
  bool erased_any = false;
  auto sample_and_erase = [&](std::map<uint64_t, Unacked>::iterator it) {
    // Karn's rule: a retransmitted entry's ack is ambiguous (it may
    // acknowledge any transmission), so only never-retransmitted entries
    // contribute RTT samples.
    if (it->second.transmissions == 1) {
      SampleRtt(sender, now - it->second.sent_at);
    }
    erased_any = true;
    return sender.unacked.erase(it);
  };
  for (auto it = sender.unacked.begin();
       it != sender.unacked.end() && it->first <= m.ack;) {
    it = sample_and_erase(it);
  }
  for (const SackBlock& block : m.sack) {
    for (auto it = sender.unacked.lower_bound(block.first);
         it != sender.unacked.end() && it->first <= block.last;) {
      ++stats_.sacked;
      it = sample_and_erase(it);
    }
  }
  // Forward progress restarts the channel's retransmit timers (RFC 6298
  // §5.7-style): the round trip demonstrably works, so survivors owe their
  // (possibly deeply backed-off) congestion pessimism nothing — retry one
  // RTO from now. Bounded by ack arrivals, which are bounded by deliveries.
  if (erased_any) {
    for (auto& [seq, entry] : sender.unacked) {
      entry.backoff = 1;
      entry.due = std::min(entry.due, now + Rto(sender));
    }
  }
  // Fast retransmit: every surviving entry below the highest SACKed
  // sequence number is a hole the receiver can see — it holds later data
  // while this seq is missing. Enough independent pieces of such evidence
  // (config_.fast_retransmit_dupacks) mean the wire copy is almost
  // certainly lost, not reordered: make the entry due immediately so the
  // next PollWire resends it without waiting out the RTO. One early resend
  // per entry; afterwards the timeout/backoff path takes over as usual.
  if (config_.fast_retransmit_dupacks > 0 && !m.sack.empty()) {
    uint64_t highest_sacked = 0;
    for (const SackBlock& b : m.sack) {
      highest_sacked = std::max(highest_sacked, b.last);
    }
    for (auto& [seq, entry] : sender.unacked) {
      if (seq >= highest_sacked) break;  // map is ordered by seq
      if (entry.fast_retx_done) continue;
      if (++entry.dup_evidence >= config_.fast_retransmit_dupacks) {
        entry.fast_retx_done = true;
        entry.due = now;
        ++stats_.fast_retransmits;
      }
    }
  }
  // Covered window-stalled entries are erased too. A live receiver cannot
  // acknowledge a sequence number that was never transmitted, so this
  // branch is unreachable in live operation; during write-ahead-log
  // replay, however, an ack can replay before the PollWire drain that
  // originally put its target on the wire, leaving the (already
  // delivered) entry stranded in the pending queue.
  if (!sender.pending.empty()) {
    auto covered = [&m](const Message& p) {
      if (p.seq <= m.ack) return true;
      return std::any_of(m.sack.begin(), m.sack.end(),
                         [&p](const SackBlock& b) {
                           return b.first <= p.seq && p.seq <= b.last;
                         });
    };
    std::erase_if(sender.pending, covered);
  }
}

ReliableTransport::Disposition ReliableTransport::OnWireDelivery(
    const Message& m, uint64_t now) {
  // Every delivery teaches the channel the sender's incarnation, so a
  // dropped kTransportHello self-heals: the next data message or
  // retransmit (all re-stamped with the current epoch) carries the news.
  if (m.epoch > 0) {
    uint64_t& known = known_epoch_[ChannelKey{m.from, m.to}];
    known = std::max(known, m.epoch);
  }
  // The ack concerns messages the receiver (m.to) previously sent to m.from.
  if (m.ack > 0 || !m.sack.empty()) {
    ChannelKey data_channel{m.to, m.from};
    if (auto it = senders_.find(data_channel); it != senders_.end()) {
      ApplyAck(it->second, m, now);
    }
    // This delivery also proves the ack reached its destination: the
    // receiver end of data_channel stops owing one, provided the delivered
    // ack covers everything it has received since (cumulative and
    // out-of-order alike).
    if (auto it = receivers_.find(data_channel); it != receivers_.end()) {
      ReceiverState& receiver = it->second;
      if (receiver.ack_owed && m.ack >= receiver.cum) {
        bool covered = true;
        for (uint64_t seq : receiver.out_of_order) {
          covered = std::any_of(m.sack.begin(), m.sack.end(),
                                [seq](const SackBlock& b) {
                                  return b.first <= seq && seq <= b.last;
                                });
          if (!covered) break;
        }
        if (covered) {
          receiver.ack_owed = false;
          receiver.ack_backoff = 1;
        }
      }
    }
  }
  if (m.kind == MessageKind::kTransportAck ||
      m.kind == MessageKind::kTransportHello) {
    return Disposition::kControl;
  }
  DQSQ_CHECK_GT(m.seq, 0u) << "unsequenced message on a reliable channel";

  ReceiverState& receiver = receivers_[ChannelKey{m.from, m.to}];
  if (receiver.Saw(m.seq)) {
    // Spurious (our ack was lost or is in flight): owe a fresh ack so the
    // sender's retransmit loop terminates. The duplicate is live evidence
    // the sender is still retransmitting, so answer promptly — reset the
    // standalone-ack backoff and timer. The re-acceleration is bounded by
    // the sender's own retransmit backoff (>= rto_min per duplicate).
    receiver.ack_owed = true;
    receiver.owed_since = now;
    receiver.ack_backoff = 1;
    return Disposition::kDuplicate;
  }
  if (m.seq == receiver.cum + 1) {
    ++receiver.cum;
    while (receiver.out_of_order.erase(receiver.cum + 1) > 0) ++receiver.cum;
  } else {
    receiver.out_of_order.insert(m.seq);
  }
  // Fresh data: ack promptly even if an earlier (backed-off) debt is
  // outstanding. The timer is NOT re-armed when already owed — the ack is
  // due ack_delay after the debt was first incurred.
  receiver.ack_backoff = 1;
  if (!receiver.ack_owed) {
    receiver.ack_owed = true;
    receiver.owed_since = now;
  }
  return Disposition::kDeliverFirst;
}

std::vector<Message> ReliableTransport::PollWire(uint64_t now) {
  std::vector<Message> out;
  for (auto& [channel, sender] : senders_) {
    if (down_.contains(channel.first)) continue;  // frozen: crashed sender
    for (auto& [seq, entry] : sender.unacked) {
      if (entry.due > now) continue;
      entry.backoff *= 2;
      if (config_.max_backoff > 0) {
        entry.backoff = std::min(entry.backoff, config_.max_backoff);
      }
      entry.due = now + Rto(sender) * entry.backoff;
      ++entry.transmissions;  // Karn: this entry's RTT is now ambiguous
      Message copy = entry.copy;
      copy.retransmit = true;
      // Refresh the piggybacked ack + SACK blocks and the epoch stamp: the
      // reverse channel may have advanced — and the sender may have
      // restarted — since the original send.
      AttachAck(ChannelKey{channel.second, channel.first}, copy, now);
      copy.epoch = EpochOf(channel.first);
      out.push_back(std::move(copy));
    }
    // Drain window-stalled sends as acks open the window.
    while (!sender.pending.empty() &&
           (config_.window == 0 || sender.unacked.size() < config_.window)) {
      Message m = std::move(sender.pending.front());
      sender.pending.pop_front();
      ++stats_.window_drained;
      Transmit(channel, sender, m, now);
      out.push_back(std::move(m));
    }
  }
  for (auto& [channel, receiver] : receivers_) {
    if (down_.contains(channel.second)) continue;  // frozen: crashed receiver
    if (!receiver.ack_owed ||
        now < receiver.owed_since + config_.ack_delay * receiver.ack_backoff) {
      continue;
    }
    // Re-arm instead of clearing: the debt is discharged only when some
    // delivery confirms the ack arrived. If this standalone ack is dropped,
    // another flushes after a backed-off silence. The backoff is UNcapped
    // (unlike the retransmit backoff): per owed episode a channel emits
    // O(log horizon) standalone acks total, so production stays below the
    // wire's drain rate no matter how many channels owe at once — with a
    // cap, ~cap·ack_delay owed channels (reachable under intra-peer
    // sharding, which multiplies channels by K²) produce acks faster than
    // the wire drains and the discharging acks never escape the flood.
    // Liveness never rests on this timer: whenever the ack still matters,
    // the sender's capped retransmit loop delivers a duplicate, which
    // resets the backoff to prompt.
    receiver.owed_since = now;
    receiver.ack_backoff *= 2;
    Message ack;
    ack.kind = MessageKind::kTransportAck;
    ack.from = channel.second;  // receiver end of the data channel
    ack.to = channel.first;
    ack.ack = receiver.cum;
    ack.sack = EncodeSack(receiver);
    ack.epoch = EpochOf(channel.second);
    out.push_back(std::move(ack));
  }
  return out;
}

std::optional<uint64_t> ReliableTransport::NextDue() const {
  std::optional<uint64_t> due;
  auto consider = [&due](uint64_t t) {
    if (!due.has_value() || t < *due) due = t;
  };
  for (const auto& [channel, sender] : senders_) {
    if (down_.contains(channel.first)) continue;
    for (const auto& [seq, entry] : sender.unacked) consider(entry.due);
    if (!sender.pending.empty() &&
        (config_.window == 0 || sender.unacked.size() < config_.window)) {
      consider(0);  // the window is open: the next PollWire drains
    }
  }
  for (const auto& [channel, receiver] : receivers_) {
    if (down_.contains(channel.second)) continue;
    if (receiver.ack_owed) {
      consider(receiver.owed_since + config_.ack_delay * receiver.ack_backoff);
    }
  }
  return due;
}

bool ReliableTransport::Seen(const ChannelKey& channel, uint64_t seq) const {
  auto it = receivers_.find(channel);
  return it != receivers_.end() && it->second.Saw(seq);
}

bool ReliableTransport::HasUnacked() const {
  for (const auto& [channel, sender] : senders_) {
    if (!sender.unacked.empty() || !sender.pending.empty()) return true;
  }
  return false;
}

bool ReliableTransport::AllPayloadDelivered() const {
  for (const auto& [channel, sender] : senders_) {
    if (!sender.pending.empty()) return false;  // never even transmitted
    for (const auto& [seq, entry] : sender.unacked) {
      if (!Seen(channel, seq)) return false;
    }
  }
  return true;
}

uint64_t ReliableTransport::EpochOf(SymbolId peer) const {
  auto it = epochs_.find(peer);
  return it == epochs_.end() ? 0 : it->second;
}

bool ReliableTransport::IsStale(const Message& m) const {
  auto it = known_epoch_.find(ChannelKey{m.from, m.to});
  return it != known_epoch_.end() && m.epoch < it->second;
}

void ReliableTransport::SetPeerDown(SymbolId peer, bool down) {
  if (down) {
    down_.insert(peer);
  } else {
    down_.erase(peer);
  }
}

void ReliableTransport::ExportPeer(SymbolId peer, PeerSnapshot* snap) const {
  snap->peer = peer;
  snap->epoch = EpochOf(peer);
  snap->senders.clear();
  snap->receivers.clear();
  // Map iteration order is ascending by (from, to); with one side fixed to
  // `peer` the exported channels are ascending by counterpart, which makes
  // the serialized snapshot byte-stable.
  for (const auto& [channel, sender] : senders_) {
    if (channel.first != peer) continue;
    ChannelSenderState s;
    s.to = channel.second;
    s.next_seq = sender.next_seq;
    for (const auto& [seq, entry] : sender.unacked) {
      s.unacked.push_back(entry.copy);
    }
    s.pending.assign(sender.pending.begin(), sender.pending.end());
    snap->senders.push_back(std::move(s));
  }
  for (const auto& [channel, receiver] : receivers_) {
    if (channel.second != peer) continue;
    ChannelReceiverState r;
    r.from = channel.first;
    r.cum = receiver.cum;
    r.out_of_order.assign(receiver.out_of_order.begin(),
                          receiver.out_of_order.end());
    snap->receivers.push_back(std::move(r));
  }
}

void ReliableTransport::RestorePeer(const PeerSnapshot& snap,
                                    uint64_t new_epoch, uint64_t now) {
  SymbolId peer = snap.peer;
  DQSQ_CHECK_GT(new_epoch, EpochOf(peer))
      << "epoch regressed on restore: peer restarted into an incarnation "
         "it already passed through";
  DQSQ_CHECK_GT(new_epoch, snap.epoch)
      << "epoch regressed on restore: snapshot taken in a later incarnation";
  epochs_[peer] = new_epoch;
  for (auto it = senders_.begin(); it != senders_.end();) {
    it = it->first.first == peer ? senders_.erase(it) : std::next(it);
  }
  for (auto it = receivers_.begin(); it != receivers_.end();) {
    it = it->first.second == peer ? receivers_.erase(it) : std::next(it);
  }
  for (const ChannelSenderState& s : snap.senders) {
    SenderState& sender = senders_[ChannelKey{peer, s.to}];
    sender.next_seq = s.next_seq;
    for (const Message& m : s.unacked) {
      // Due immediately: the wire copy may have died with the old
      // incarnation. transmissions=2 poisons the entry for Karn (an ack
      // may answer either the pre-crash or the post-restart copy). The
      // retransmit path re-stamps ack/SACK/epoch at emission time.
      sender.unacked.emplace(
          m.seq, Unacked{m, /*due=*/now, /*backoff=*/1, /*sent_at=*/now,
                         /*transmissions=*/2});
    }
    // Pending entries drain through Transmit (PollWire), which re-stamps
    // the piggybacked cumulative ack, SACK blocks and epoch — restored
    // queue entries never hit the wire with their stored (stale) stamps.
    sender.pending.assign(s.pending.begin(), s.pending.end());
  }
  for (const ChannelReceiverState& r : snap.receivers) {
    ReceiverState& receiver = receivers_[ChannelKey{r.from, peer}];
    receiver.cum = r.cum;
    receiver.out_of_order.clear();
    receiver.out_of_order.insert(r.out_of_order.begin(),
                                 r.out_of_order.end());
    // Re-advertise the resume point promptly: counterparts may have lost
    // acks in the crash window and be retransmitting delivered payload.
    receiver.ack_owed = true;
    receiver.owed_since = now;
  }
}

std::vector<Message> ReliableTransport::MakeHellos(SymbolId peer,
                                                   uint64_t /*now*/) {
  std::set<SymbolId> counterparts;
  for (const auto& [channel, sender] : senders_) {
    if (channel.first == peer) counterparts.insert(channel.second);
  }
  for (const auto& [channel, receiver] : receivers_) {
    if (channel.second == peer) counterparts.insert(channel.first);
  }
  std::vector<Message> hellos;
  for (SymbolId other : counterparts) {
    Message hello;
    hello.kind = MessageKind::kTransportHello;
    hello.from = peer;
    hello.to = other;
    hello.epoch = EpochOf(peer);
    // Carry the restored receiver-side resume point for the reverse
    // channel, exactly like a standalone ack.
    if (auto it = receivers_.find(ChannelKey{other, peer});
        it != receivers_.end()) {
      hello.ack = it->second.cum;
      hello.sack = EncodeSack(it->second);
    }
    hellos.push_back(std::move(hello));
  }
  return hellos;
}

std::string ReliableTransport::ProtocolImage(SymbolId peer) const {
  SnapshotWriter w;
  for (const auto& [channel, sender] : senders_) {
    if (channel.first != peer) continue;
    w.U8(1);  // sender-channel tag
    w.U32(channel.second);
    w.U64(sender.next_seq);
    // The unacked/pending partition is timing-dependent (replay performs
    // no window drains), but the merged outstanding set must match the
    // pre-crash state exactly. Scrub the stamps attached at (re)emission
    // time — piggybacked acks, SACK blocks, retransmit flag, epoch — which
    // legitimately differ between the original run and the reconstruction.
    std::map<uint64_t, const Message*> outstanding;
    for (const auto& [seq, entry] : sender.unacked) {
      outstanding[seq] = &entry.copy;
    }
    for (const Message& m : sender.pending) outstanding[m.seq] = &m;
    w.U64(outstanding.size());
    for (const auto& [seq, m] : outstanding) {
      Message scrubbed = *m;
      scrubbed.ack = 0;
      scrubbed.sack.clear();
      scrubbed.retransmit = false;
      scrubbed.epoch = 0;
      EncodeMessage(scrubbed, w);
    }
  }
  for (const auto& [channel, receiver] : receivers_) {
    if (channel.second != peer) continue;
    w.U8(2);  // receiver-channel tag
    w.U32(channel.first);
    w.U64(receiver.cum);
    w.U64(receiver.out_of_order.size());
    for (uint64_t seq : receiver.out_of_order) w.U64(seq);
  }
  return w.Take();
}

}  // namespace dqsq::dist
