#include "dist/reliable.h"

#include <algorithm>

#include "common/logging.h"

namespace dqsq::dist {

void ReliableTransport::StampOutgoing(Message& m, uint64_t now) {
  ChannelKey channel{m.from, m.to};
  SenderState& sender = senders_[channel];
  m.seq = ++sender.next_seq;
  // Piggyback the cumulative ack for the reverse channel; any reverse
  // traffic carries it, so a standalone ack is only needed on silence.
  ReceiverState& reverse = receivers_[ChannelKey{m.to, m.from}];
  m.ack = reverse.cum;
  reverse.ack_owed = false;
  m.retransmit = false;
  sender.unacked.emplace(
      m.seq, Unacked{m, now + config_.retransmit_timeout, /*backoff=*/1});
}

ReliableTransport::Disposition ReliableTransport::OnWireDelivery(
    const Message& m, uint64_t now) {
  // The ack concerns messages the receiver (m.to) previously sent to m.from.
  if (m.ack > 0) {
    auto it = senders_.find(ChannelKey{m.to, m.from});
    if (it != senders_.end()) {
      std::map<uint64_t, Unacked>& unacked = it->second.unacked;
      unacked.erase(unacked.begin(), unacked.upper_bound(m.ack));
    }
  }
  if (m.kind == MessageKind::kTransportAck) return Disposition::kControl;
  DQSQ_CHECK_GT(m.seq, 0u) << "unsequenced message on a reliable channel";

  ReceiverState& receiver = receivers_[ChannelKey{m.from, m.to}];
  if (receiver.Saw(m.seq)) {
    // Spurious (our ack was lost or is in flight): owe a fresh ack so the
    // sender's retransmit loop terminates.
    if (!receiver.ack_owed) {
      receiver.ack_owed = true;
      receiver.owed_since = now;
    }
    return Disposition::kDuplicate;
  }
  if (m.seq == receiver.cum + 1) {
    ++receiver.cum;
    while (receiver.out_of_order.erase(receiver.cum + 1) > 0) ++receiver.cum;
  } else {
    receiver.out_of_order.insert(m.seq);
  }
  if (!receiver.ack_owed) {
    receiver.ack_owed = true;
    receiver.owed_since = now;
  }
  return Disposition::kDeliverFirst;
}

std::vector<Message> ReliableTransport::PollWire(uint64_t now) {
  std::vector<Message> out;
  for (auto& [channel, sender] : senders_) {
    for (auto& [seq, entry] : sender.unacked) {
      if (entry.due > now) continue;
      entry.backoff = std::min(entry.backoff * 2, config_.max_backoff);
      entry.due = now + config_.retransmit_timeout * entry.backoff;
      Message copy = entry.copy;
      copy.retransmit = true;
      // Refresh the piggybacked ack: the reverse channel may have advanced
      // since the original send.
      copy.ack = receivers_[ChannelKey{channel.second, channel.first}].cum;
      out.push_back(std::move(copy));
    }
  }
  for (auto& [channel, receiver] : receivers_) {
    if (!receiver.ack_owed || now < receiver.owed_since + config_.ack_delay) {
      continue;
    }
    receiver.ack_owed = false;
    Message ack;
    ack.kind = MessageKind::kTransportAck;
    ack.from = channel.second;  // receiver end of the data channel
    ack.to = channel.first;
    ack.ack = receiver.cum;
    out.push_back(std::move(ack));
  }
  return out;
}

std::optional<uint64_t> ReliableTransport::NextDue() const {
  std::optional<uint64_t> due;
  auto consider = [&due](uint64_t t) {
    if (!due.has_value() || t < *due) due = t;
  };
  for (const auto& [channel, sender] : senders_) {
    for (const auto& [seq, entry] : sender.unacked) consider(entry.due);
  }
  for (const auto& [channel, receiver] : receivers_) {
    if (receiver.ack_owed) consider(receiver.owed_since + config_.ack_delay);
  }
  return due;
}

bool ReliableTransport::Seen(const ChannelKey& channel, uint64_t seq) const {
  auto it = receivers_.find(channel);
  return it != receivers_.end() && it->second.Saw(seq);
}

bool ReliableTransport::HasUnacked() const {
  for (const auto& [channel, sender] : senders_) {
    if (!sender.unacked.empty()) return true;
  }
  return false;
}

bool ReliableTransport::AllPayloadDelivered() const {
  for (const auto& [channel, sender] : senders_) {
    for (const auto& [seq, entry] : sender.unacked) {
      if (!Seen(channel, seq)) return false;
    }
  }
  return true;
}

}  // namespace dqsq::dist
