// Reliable-delivery shim between dDatalog peers and the raw simulated
// network. The raw wire may drop, duplicate or delay-reorder messages (a
// FaultPlan, see dist/network.h); this layer restores the exactly-once,
// per-channel-FIFO-modulo-reordering delivery the distributed fixpoint
// (§3.1) and Dijkstra–Scholten termination detection assume:
//
//  * every outgoing message is stamped with a 1-based per-(from,to)-channel
//    sequence number and recorded in a sender-side retransmit queue;
//  * the receiver deduplicates — only the FIRST delivery of a sequence
//    number is handed to the peer, so Dijkstra–Scholten acks exactly the
//    messages that were logically sent;
//  * unacknowledged entries are retransmitted after a virtual-time timeout
//    with exponential backoff;
//  * acknowledgments are cumulative and piggybacked on reverse-channel
//    traffic; a channel with no reverse traffic flushes a standalone
//    kTransportAck after a short delay.
//
// The transport is a single object owned by SimNetwork (the simulator sees
// both endpoints), but the protocol state is strictly per directed channel,
// exactly as a per-process implementation would keep it.
#ifndef DQSQ_DIST_RELIABLE_H_
#define DQSQ_DIST_RELIABLE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "dist/message.h"

namespace dqsq::dist {

struct ReliableConfig {
  // Virtual-time steps (network deliveries) before the first retransmit of
  // an unacknowledged message.
  uint64_t retransmit_timeout = 16;
  // Backoff doubles per retransmit of the same entry, capped at
  // retransmit_timeout * max_backoff.
  uint64_t max_backoff = 16;
  // An owed acknowledgment is flushed as a standalone kTransportAck after
  // this many steps without reverse traffic to piggyback on.
  uint64_t ack_delay = 4;
};

class ReliableTransport {
 public:
  using ChannelKey = std::pair<SymbolId, SymbolId>;  // (from, to)

  enum class Disposition {
    kDeliverFirst,  // first delivery: hand the message to the peer
    kDuplicate,     // already delivered: suppress (spurious retransmit)
    kControl,       // transport-internal (kTransportAck): consume silently
  };

  explicit ReliableTransport(ReliableConfig config = {}) : config_(config) {}

  /// Sender side: stamps `m` with the next sequence number of its channel,
  /// piggybacks the cumulative ack owed on the reverse channel, and records
  /// a retransmit entry due at `now + retransmit_timeout`.
  void StampOutgoing(Message& m, uint64_t now);

  /// Receiver side: applies the (piggybacked or standalone) ack, then
  /// deduplicates. Call for every wire delivery before dispatching.
  Disposition OnWireDelivery(const Message& m, uint64_t now);

  /// Wire traffic the transport owes at `now`: copies of unacknowledged
  /// messages whose timeout expired (`retransmit == true`) and standalone
  /// kTransportAcks for channels whose owed ack outlived `ack_delay`.
  /// The caller puts them on the wire (where faults may hit them again).
  std::vector<Message> PollWire(uint64_t now);

  /// Earliest virtual time at which PollWire() will produce traffic, or
  /// nullopt when no retransmit or ack is pending.
  std::optional<uint64_t> NextDue() const;

  /// True iff the receiver of `channel` has already seen `seq`.
  bool Seen(const ChannelKey& channel, uint64_t seq) const;

  /// True iff some sent message was never acknowledged (its wire copy may
  /// be lost and a retransmit pending).
  bool HasUnacked() const;

  /// True iff every unacknowledged entry has in fact been delivered (only
  /// its ack is outstanding) — no payload is missing anywhere.
  bool AllPayloadDelivered() const;

 private:
  struct Unacked {
    Message copy;
    uint64_t due;      // next retransmit time
    uint64_t backoff;  // current multiplier on retransmit_timeout
  };
  struct SenderState {
    uint64_t next_seq = 0;
    std::map<uint64_t, Unacked> unacked;  // seq -> entry
  };
  struct ReceiverState {
    uint64_t cum = 0;                  // all seqs <= cum received
    std::set<uint64_t> out_of_order;   // received seqs > cum
    bool ack_owed = false;
    uint64_t owed_since = 0;

    bool Saw(uint64_t seq) const {
      return seq <= cum || out_of_order.contains(seq);
    }
  };

  ReliableConfig config_;
  std::map<ChannelKey, SenderState> senders_;
  std::map<ChannelKey, ReceiverState> receivers_;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_RELIABLE_H_
