// Reliable-delivery shim between dDatalog peers and the raw simulated
// network. The raw wire may drop, duplicate or delay-reorder messages (a
// FaultPlan, see dist/network.h); this layer restores the exactly-once,
// per-channel-FIFO-modulo-reordering delivery the distributed fixpoint
// (§3.1) and Dijkstra–Scholten termination detection assume:
//
//  * every outgoing message is stamped with a 1-based per-(from,to)-channel
//    sequence number and recorded in a sender-side retransmit queue;
//  * a per-channel flow-control window bounds the unacknowledged entries a
//    sender keeps in flight; excess sends queue sender-side (already
//    sequenced, preserving FIFO) and drain through PollWire as acks open
//    the window — bounding transport memory and modeling backpressure;
//  * the receiver deduplicates — only the FIRST delivery of a sequence
//    number is handed to the peer, so Dijkstra–Scholten acks exactly the
//    messages that were logically sent;
//  * acknowledgments are cumulative plus a bounded list of selective-ack
//    (SACK) blocks covering the receiver's out-of-order set; the sender
//    erases exactly the acked entries, so one lost message retransmits one
//    message, not every later in-flight one;
//  * unacknowledged entries are retransmitted after an adaptive
//    (Jacobson/Karels SRTT/RTTVAR over the virtual clock, Karn's rule for
//    samples) timeout with exponential backoff;
//  * acknowledgments are piggybacked on reverse-channel traffic; a channel
//    with no reverse traffic flushes a standalone kTransportAck after a
//    short delay. Sending an ack (piggybacked or standalone) only re-arms
//    that delay — the owed state is cleared when a message carrying the
//    ack is known to have been DELIVERED, so a dropped carrier costs one
//    extra standalone ack, never a spurious retransmit round trip.
//
// The transport is a single object owned by SimNetwork (the simulator sees
// both endpoints), but the protocol state is strictly per directed channel,
// exactly as a per-process implementation would keep it.
#ifndef DQSQ_DIST_RELIABLE_H_
#define DQSQ_DIST_RELIABLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dist/message.h"
#include "dist/snapshot.h"

namespace dqsq::dist {

struct ReliableConfig {
  // Retransmission timeout (virtual-time steps, i.e. network deliveries)
  // used before the first RTT sample; also the fixed RTO when
  // adaptive_rto is off.
  uint64_t retransmit_timeout = 16;
  // Backoff doubles per retransmit of the same entry; 0 = uncapped (the
  // default), a nonzero value caps the multiplier on the current RTO.
  // Uncapped matters for stability, not just tuning: the virtual wire
  // drains one delivery per step however many channels exist, so any
  // capped (i.e. eventually constant-rate) per-entry retransmit schedule
  // is outrun once enough entries are in flight at once — reachable under
  // intra-peer sharding, which multiplies channels by K². Karn's rule
  // keeps the RTO estimator blind during such an episode (retransmitted
  // entries never sample), so the backoff is the only mechanism that can
  // slow the sender down. Uncapped doubling emits O(log horizon) copies
  // per entry, which converges for any channel count; forward progress
  // restores promptness, because any ack that erases an entry resets its
  // channel's surviving backoffs (TCP-style timer restart).
  uint64_t max_backoff = 0;
  // An owed acknowledgment is flushed as a standalone kTransportAck after
  // this many steps without (confirmed-delivered) traffic carrying it.
  uint64_t ack_delay = 4;
  // Flow-control window: maximum unacknowledged entries per channel.
  // Further sends queue sender-side until acks open the window.
  // 0 = unbounded (the pre-window behavior).
  size_t window = 32;
  // Maximum SACK blocks advertised per ack. 0 disables SACK entirely
  // (cumulative-only acks, the pre-SACK behavior).
  size_t max_sack_blocks = 4;
  // Fast retransmit: an entry still unacknowledged after this many acks
  // whose SACK blocks cover LATER sequence numbers (the receiver has data
  // above the hole, so the wire copy is almost certainly lost) is
  // retransmitted immediately instead of waiting out its RTO. One fast
  // retransmit per entry; afterwards the normal timeout path takes over.
  // 0 disables (pure timeout-driven recovery, the prior behavior).
  size_t fast_retransmit_dupacks = 3;
  // Jacobson/Karels RTO estimation over the virtual clock. When off, the
  // fixed retransmit_timeout is used.
  bool adaptive_rto = true;
  // Clamp on the adaptive RTO before backoff is applied.
  uint64_t rto_min = 16;
  uint64_t rto_max = 1024;
};

/// Transport-internal counters, mirrored into dist.net.* metrics by
/// SimNetwork (see docs/METRICS.md).
struct TransportStats {
  size_t sacked = 0;            // unacked entries erased by SACK blocks
  size_t fast_retransmits = 0;  // entries resent early on dup-SACK evidence
  size_t window_stalls = 0;     // sends deferred because the window was full
  size_t window_drained = 0;  // deferred sends released as the window opened
  size_t rtt_samples = 0;     // RTT measurements taken (Karn-eligible only)
  uint64_t last_rto = 0;      // most recent adaptive RTO (0 = no sample yet)
};

class ReliableTransport {
 public:
  using ChannelKey = std::pair<SymbolId, SymbolId>;  // (from, to)

  enum class Disposition {
    kDeliverFirst,  // first delivery: hand the message to the peer
    kDuplicate,     // already delivered: suppress (spurious retransmit)
    kControl,       // transport-internal (kTransportAck / kTransportHello):
                    // consume silently
  };

  explicit ReliableTransport(ReliableConfig config = {}) : config_(config) {}

  /// Sender side: stamps `m` with the next sequence number of its channel
  /// and either admits it to the window (piggybacking the owed cumulative
  /// ack + SACK blocks and recording a retransmit entry) or queues it
  /// sender-side when the window is full. Returns true iff the caller
  /// should put `m` on the wire now; a queued message is emitted by a
  /// later PollWire once acks open the window.
  bool StampOutgoing(Message& m, uint64_t now);

  /// Receiver side: applies the (piggybacked or standalone) cumulative ack
  /// and SACK blocks, then deduplicates. Call for every wire delivery
  /// before dispatching.
  Disposition OnWireDelivery(const Message& m, uint64_t now);

  /// Wire traffic the transport owes at `now`: copies of unacknowledged
  /// messages whose timeout expired (`retransmit == true`), queued sends
  /// admitted by a newly opened window, and standalone kTransportAcks for
  /// channels whose owed ack outlived `ack_delay`. The caller puts them on
  /// the wire (where faults may hit them again).
  std::vector<Message> PollWire(uint64_t now);

  /// Earliest virtual time at which PollWire() will produce traffic, or
  /// nullopt when no retransmit, window-opening drain, or ack is pending.
  std::optional<uint64_t> NextDue() const;

  /// True iff the receiver of `channel` has already seen `seq`.
  bool Seen(const ChannelKey& channel, uint64_t seq) const;

  /// True iff some sent message was never acknowledged (its wire copy may
  /// be lost and a retransmit pending) or waits in a window-stalled queue.
  bool HasUnacked() const;

  /// True iff every unacknowledged entry has in fact been delivered (only
  /// its ack is outstanding) — no payload is missing anywhere. A
  /// window-stalled queued send is undelivered payload by definition.
  bool AllPayloadDelivered() const;

  const TransportStats& stats() const { return stats_; }

  // ---- Crash-restart support (see dist/snapshot.h) -----------------------

  /// Current incarnation of `peer` (0 = never restarted).
  uint64_t EpochOf(SymbolId peer) const;

  /// True iff `m` carries an epoch older than the highest its channel has
  /// witnessed — a wire copy emitted by a previous incarnation of the
  /// sender. Stale copies are dropped by the network before delivery
  /// (hygiene: deduplication would absorb them anyway).
  bool IsStale(const Message& m) const;

  /// Freezes (down) or unfreezes a crashed peer's channel state: down
  /// channels neither retransmit, drain their pending queue, nor flush
  /// standalone acks. The frozen state is NOT wiped — it is the simulator's
  /// god's-eye reference (Seen / AllPayloadDelivered stay accurate while
  /// the peer is down) and the oracle the restored state is CHECKed
  /// against (ProtocolImage).
  void SetPeerDown(SymbolId peer, bool down);

  /// Exports `peer`'s channel state (every sender channel it owns and
  /// every receiver channel into it, ascending by counterpart) plus its
  /// epoch into `snap`. Does not touch `snap->peer_state`.
  void ExportPeer(SymbolId peer, PeerSnapshot* snap) const;

  /// Discards `peer`'s channel state and reinstates `snap` under the new
  /// incarnation `new_epoch`. CHECK-fails on a regressed epoch (new_epoch
  /// must exceed both the peer's current epoch and the snapshot's).
  /// Restored unacked entries are due for immediate retransmission and
  /// Karn-poisoned (their RTT is ambiguous across the crash); the RTT
  /// estimator restarts fresh; restored receivers immediately owe an ack
  /// (re-advertising the resume point).
  void RestorePeer(const PeerSnapshot& snap, uint64_t new_epoch,
                   uint64_t now);

  /// Epoch re-handshake: one kTransportHello from the (just restarted)
  /// `peer` to every counterpart it shares channel state with, announcing
  /// the new epoch and carrying the restored receiver-side resume point as
  /// a cumulative ack + SACK blocks. Sent unreliably — a lost hello
  /// self-heals because every wire emission re-stamps the current epoch.
  std::vector<Message> MakeHellos(SymbolId peer, uint64_t now);

  /// Canonical timing-free serialization of `peer`'s protocol state: per
  /// sender channel the counterpart, next_seq and the merged outstanding
  /// set (unacked ∪ pending, by seq, ack/sack/retransmit/epoch stamps
  /// scrubbed); per receiver channel the counterpart, cum and out-of-order
  /// set. Restart compares the image of the frozen pre-crash state against
  /// the snapshot+WAL reconstruction — a mismatch means replay diverged
  /// (nondeterminism) and aborts loudly.
  std::string ProtocolImage(SymbolId peer) const;

  /// Replay mode: suppresses RTT sampling (replayed deliveries carry no
  /// timing information).
  void set_replaying(bool replaying) { replaying_ = replaying; }

 private:
  struct Unacked {
    Message copy;
    uint64_t due;            // next retransmit time
    uint64_t backoff;        // current multiplier on the RTO
    uint64_t sent_at;        // first transmission time (RTT measurement)
    uint64_t transmissions;  // Karn's rule: sample RTT only when == 1
    // Fast-retransmit state: acks seen whose SACK blocks cover sequence
    // numbers above this entry while it stayed unacknowledged, and whether
    // the one-shot early retransmit already fired.
    uint64_t dup_evidence = 0;
    bool fast_retx_done = false;
  };
  struct SenderState {
    uint64_t next_seq = 0;
    std::map<uint64_t, Unacked> unacked;  // seq -> entry, bounded by window
    std::deque<Message> pending;          // stamped, waiting for the window
    // Jacobson/Karels estimator state (virtual-clock steps).
    bool has_rtt = false;
    uint64_t srtt = 0;
    uint64_t rttvar = 0;
  };
  struct ReceiverState {
    uint64_t cum = 0;                  // all seqs <= cum received
    std::set<uint64_t> out_of_order;   // received seqs > cum
    bool ack_owed = false;
    uint64_t owed_since = 0;
    // Backoff multiplier on ack_delay for the NEXT standalone ack, doubled
    // per standalone emission (uncapped — sender retransmits are the
    // liveness fallback and reset it) and reset to 1 by any data delivery
    // on the channel. Without it every owed channel emits a standalone ack
    // each ack_delay steps forever; past ~ack_delay owed channels that
    // constant production outruns the wire, the acks that would discharge
    // the debts queue behind the flood they created, and the network
    // livelocks (observed under intra-peer sharding, which multiplies the
    // channel count by K²).
    uint64_t ack_backoff = 1;

    bool Saw(uint64_t seq) const {
      return seq <= cum || out_of_order.contains(seq);
    }
  };

  /// Current per-channel RTO: SRTT + 4·RTTVAR clamped to
  /// [rto_min, rto_max], or retransmit_timeout before any sample.
  uint64_t Rto(const SenderState& sender) const;
  /// Folds one Karn-eligible RTT measurement into the channel estimator.
  void SampleRtt(SenderState& sender, uint64_t rtt);
  /// Fills `m.ack`/`m.sack` from the reverse-channel receiver state and
  /// re-arms (never clears) the standalone-ack timer.
  void AttachAck(const ChannelKey& reverse, Message& m, uint64_t now);
  /// Admits `m` to the window: attaches the ack and records the entry.
  void Transmit(const ChannelKey& channel, SenderState& sender, Message& m,
                uint64_t now);
  /// Erases acked entries (cumulative + SACK), sampling RTTs per Karn.
  /// Also erases covered window-stalled pending entries — a live receiver
  /// can never ack an untransmitted sequence number, so this only fires
  /// during write-ahead-log replay, where an ack can replay before the
  /// window drain that originally transmitted its target.
  void ApplyAck(SenderState& sender, const Message& m, uint64_t now);
  /// Bounded SACK block list covering the receiver's out-of-order set.
  std::vector<SackBlock> EncodeSack(const ReceiverState& receiver) const;

  ReliableConfig config_;
  TransportStats stats_;
  std::map<ChannelKey, SenderState> senders_;
  std::map<ChannelKey, ReceiverState> receivers_;
  // Crash-restart state. epochs_: current incarnation per peer (absent =
  // 0, the only value on a crash-free run — epoch stamps then stay 0 and
  // the wire is byte-identical to the pre-crash-support transport).
  // known_epoch_: highest epoch witnessed per directed channel, learned
  // from every delivery (IsStale reference). down_: crashed peers whose
  // frozen channels PollWire/NextDue skip.
  std::map<SymbolId, uint64_t> epochs_;
  std::map<ChannelKey, uint64_t> known_epoch_;
  std::set<SymbolId> down_;
  bool replaying_ = false;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_RELIABLE_H_
