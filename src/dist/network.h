// Simulated asynchronous peer-to-peer network. Channels are FIFO per
// ordered peer pair (the paper's per-peer alarm-order assumption is the
// same property); the cross-channel delivery order is chosen by a seeded
// RNG, modeling arbitrary asynchrony deterministically. Message and tuple
// accounting feeds the communication experiments (E3).
//
// A FaultPlan turns the loss-free wire into a faulty one: per-message drop,
// duplication and delay-reorder probabilities, drawn from a dedicated RNG
// so the scheduler's trajectory is untouched when every probability is 0.
// An active plan engages the ReliableTransport shim (dist/reliable.h)
// between the peers and the raw wire, restoring exactly-once delivery; the
// loss-free default bypasses the shim entirely (zero overhead).
#ifndef DQSQ_DIST_NETWORK_H_
#define DQSQ_DIST_NETWORK_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "dist/message.h"
#include "dist/reliable.h"

namespace dqsq::dist {

class PeerNode;

/// Per-message fault probabilities applied to every wire enqueue
/// (including retransmits and transport acks). All-zero means a perfect
/// wire and no reliability shim.
struct FaultPlan {
  double drop = 0.0;       // message vanishes in transit
  double duplicate = 0.0;  // a second wire copy is enqueued
  double delay = 0.0;      // message held back 1..max_delay_steps deliveries
                           // (breaks per-channel FIFO: reordering)
  uint32_t max_delay_steps = 8;
  ReliableConfig reliable;  // shim tuning, used when the plan is active

  bool active() const { return drop > 0.0 || duplicate > 0.0 || delay > 0.0; }
};

struct NetworkStats {
  // First-delivery (logical) series: what the peers actually consumed.
  // Duplicate and retransmit copies the transport deduplicates, and
  // transport-internal acks, are excluded — on a lossy wire these counters
  // match the lossless run of the same workload.
  size_t messages_delivered = 0;
  size_t tuples_shipped = 0;     // sum of kTuples payload sizes
  size_t control_messages = 0;   // activate/subquery/install/ack
  size_t rules_shipped = 0;      // total rules in kInstall messages
  // Wire-level series: every copy the wire delivered, including duplicates,
  // retransmits and transport acks. Equal to the logical series on a
  // perfect wire without the shim.
  size_t wire_messages = 0;
  size_t wire_bytes = 0;         // ApproxWireBytes over all wire deliveries
  // Fault-injection and reliable-delivery accounting (0 on a perfect wire).
  size_t dropped = 0;            // messages destroyed by the fault plan
  size_t duplicated = 0;         // extra wire copies injected
  size_t delayed = 0;            // messages delay-reordered
  size_t retransmits = 0;        // timeout-driven resends by the shim
  size_t spurious = 0;           // deliveries suppressed by receiver dedup
  size_t transport_acks = 0;     // standalone kTransportAck messages sent
  // Mirrored from the shim's TransportStats (dist/reliable.h).
  size_t sacked = 0;             // retransmit entries erased by SACK blocks
  size_t window_stalls = 0;      // sends deferred by a full window
  size_t window_drained = 0;     // deferred sends released by acks
  size_t rtt_samples = 0;        // Karn-eligible RTT measurements
};

class SimNetwork {
 public:
  /// `force_reliable` engages the shim even under an inactive plan (used to
  /// measure the shim's own overhead on a perfect wire).
  explicit SimNetwork(uint64_t seed, const FaultPlan& faults = {},
                      bool force_reliable = false);
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers a peer; the network does not own it.
  void Register(SymbolId id, PeerNode* peer);

  /// Enqueues a message on the (from, to) FIFO channel. Both endpoints
  /// must be registered: an unregistered sender would corrupt
  /// Dijkstra-Scholten ack routing at the receiver. With the reliable
  /// shim engaged, a send that exceeds the channel's flow-control window
  /// is queued sender-side and reaches the wire once acks open the window.
  void Send(Message message);

  /// Delivers one message from a randomly chosen non-empty channel.
  /// Returns false if no traffic exists or is pending; may return true
  /// without a delivery when only delayed/retransmit traffic is pending
  /// (the virtual clock advances to its due time).
  StatusOr<bool> Step();

  /// Delivers messages until quiescence (no in-flight messages — the
  /// "god's view" fixpoint of §3.1) or until `max_steps` deliveries.
  Status RunToQuiescence(size_t max_steps = 10'000'000);

  /// True iff Step() has nothing left to do: channels and the delay queue
  /// are empty and the shim owes no retransmits or acks.
  bool Quiescent() const;

  /// True iff no undelivered payload exists anywhere: every in-flight or
  /// retransmit-pending message is transport residue (a duplicate the
  /// receiver already saw, or an ack). On a perfect wire this is
  /// Quiescent(). This is the invariant Dijkstra-Scholten guarantees at
  /// the instant of detection.
  bool LogicallyQuiescent() const;

  bool reliable() const { return transport_ != nullptr; }
  const NetworkStats& stats() const { return stats_; }
  size_t num_peers() const { return peers_.size(); }

  /// Names peers in metric labels (dist.net.channel_messages{from=,to=}).
  /// Defaults to "peer<id>". Set before the first Send/Step: channel
  /// counters are registered once and keep their labels.
  void SetPeerNamer(std::function<std::string(SymbolId)> namer) {
    namer_ = std::move(namer);
  }

 private:
  using ChannelKey = std::pair<SymbolId, SymbolId>;

  std::string PeerLabel(SymbolId id) const;
  /// Wire-level accounting: every delivered copy, pre-deduplication.
  void RecordWireDelivery(const Message& message,
                          const ChannelKey& channel_key);
  /// First-delivery accounting: only messages handed to a peer.
  void RecordDelivery(const Message& message);
  /// Mirrors the shim's TransportStats into stats_ and dist.net.* metrics.
  void SyncTransportStats();

  /// Applies the fault plan and puts `m` on the wire (or drops it).
  void EnqueueWire(Message m);
  /// Delay-reorder leg of fault injection; appends to a channel otherwise.
  void DeliverOrDelay(Message m);
  /// Appends to the (from,to) channel, maintaining the non-empty index.
  void PushToChannel(Message m);
  /// Moves delayed messages whose release time has come onto channels.
  void ReleaseDelayed();
  /// Enqueues the shim's due retransmits and standalone acks.
  void PumpTransport();

  Rng rng_;        // scheduler: cross-channel interleaving only
  Rng fault_rng_;  // fault draws; never consulted when the plan is inactive
  FaultPlan faults_;
  std::unique_ptr<ReliableTransport> transport_;  // engaged iff plan active
  uint64_t now_ = 0;  // virtual time: one tick per Step()
  std::map<SymbolId, PeerNode*> peers_;
  std::map<ChannelKey, std::deque<Message>> channels_;
  // Non-empty channels, sorted by key — maintained incrementally so Step()
  // picks in O(1) instead of rescanning every channel (the scan was
  // quadratic-ish on E3 chains). Deque pointers are stable (map values).
  std::vector<std::pair<ChannelKey, std::deque<Message>*>> nonempty_;
  std::multimap<uint64_t, Message> delayed_;  // release time -> message
  NetworkStats stats_;
  std::function<std::string(SymbolId)> namer_;
  // Per-channel registry counters, resolved once per channel.
  std::map<ChannelKey, Counter*> channel_counters_;
};

/// Interface implemented by dDatalog peers (and test doubles).
class PeerNode {
 public:
  virtual ~PeerNode() = default;
  /// Handles one delivered message; may Send on `network`.
  virtual Status OnMessage(const Message& message, SimNetwork& network) = 0;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_NETWORK_H_
