// Simulated asynchronous peer-to-peer network. Channels are FIFO per
// ordered peer pair (the paper's per-peer alarm-order assumption is the
// same property); the cross-channel delivery order is chosen by a seeded
// RNG, modeling arbitrary asynchrony deterministically. Message and tuple
// accounting feeds the communication experiments (E3).
#ifndef DQSQ_DIST_NETWORK_H_
#define DQSQ_DIST_NETWORK_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "dist/message.h"

namespace dqsq::dist {

class PeerNode;

struct NetworkStats {
  size_t messages_delivered = 0;
  size_t tuples_shipped = 0;     // sum of kTuples payload sizes
  size_t control_messages = 0;   // activate/subquery/install/ack
  size_t rules_shipped = 0;      // total rules in kInstall messages
};

class SimNetwork {
 public:
  explicit SimNetwork(uint64_t seed) : rng_(seed) {}
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers a peer; the network does not own it.
  void Register(SymbolId id, PeerNode* peer);

  /// Enqueues a message on the (from, to) FIFO channel.
  void Send(Message message);

  /// Delivers one message from a randomly chosen non-empty channel.
  /// Returns false if every channel is empty.
  StatusOr<bool> Step();

  /// Delivers messages until quiescence (no in-flight messages — the
  /// "god's view" fixpoint of §3.1) or until `max_steps` deliveries.
  Status RunToQuiescence(size_t max_steps = 10'000'000);

  bool Quiescent() const;
  const NetworkStats& stats() const { return stats_; }
  size_t num_peers() const { return peers_.size(); }

  /// Names peers in metric labels (dist.net.channel_messages{from=,to=}).
  /// Defaults to "peer<id>". Set before the first Send/Step: channel
  /// counters are registered once and keep their labels.
  void SetPeerNamer(std::function<std::string(SymbolId)> namer) {
    namer_ = std::move(namer);
  }

 private:
  std::string PeerLabel(SymbolId id) const;
  void RecordDelivery(const Message& message,
                      const std::pair<SymbolId, SymbolId>& channel_key);

  Rng rng_;
  std::map<SymbolId, PeerNode*> peers_;
  std::map<std::pair<SymbolId, SymbolId>, std::deque<Message>> channels_;
  NetworkStats stats_;
  std::function<std::string(SymbolId)> namer_;
  // Per-channel registry counters, resolved once per channel.
  std::map<std::pair<SymbolId, SymbolId>, Counter*> channel_counters_;
};

/// Interface implemented by dDatalog peers (and test doubles).
class PeerNode {
 public:
  virtual ~PeerNode() = default;
  /// Handles one delivered message; may Send on `network`.
  virtual Status OnMessage(const Message& message, SimNetwork& network) = 0;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_NETWORK_H_
