// Simulated asynchronous peer-to-peer network. Channels are FIFO per
// ordered peer pair (the paper's per-peer alarm-order assumption is the
// same property); the cross-channel delivery order is chosen by a seeded
// RNG, modeling arbitrary asynchrony deterministically. Message and tuple
// accounting feeds the communication experiments (E3).
//
// A FaultPlan turns the loss-free wire into a faulty one: per-message drop,
// duplication and delay-reorder probabilities, drawn from a dedicated RNG
// so the scheduler's trajectory is untouched when every probability is 0.
// An active plan engages the ReliableTransport shim (dist/reliable.h)
// between the peers and the raw wire, restoring exactly-once delivery; the
// loss-free default bypasses the shim entirely (zero overhead).
#ifndef DQSQ_DIST_NETWORK_H_
#define DQSQ_DIST_NETWORK_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "dist/message.h"
#include "dist/reliable.h"
#include "dist/snapshot.h"

namespace dqsq::dist {

class PeerNode;

/// The peer-facing transport surface: peers and drivers hand messages to
/// Send() and receive deliveries through PeerNode::OnMessage. Implemented
/// by the in-process SimNetwork below (virtual clock, seeded interleaving,
/// fault injection) and by SocketNetwork (dist/socket_network.h: TCP
/// between OS processes on the steady clock). Everything above the wire —
/// the Datalog peers, both demand protocols, Dijkstra-Scholten termination
/// — is written against this interface and runs unchanged on either one.
class Network {
 public:
  virtual ~Network() = default;

  /// Enqueues `message` for asynchronous delivery to `message.to`.
  /// Delivery is exactly-once and FIFO per directed (from, to) channel;
  /// cross-channel order is arbitrary.
  virtual void Send(Message message) = 0;
};

/// One scheduled peer crash: at virtual time `at_step` the `peer_index`-th
/// restartable peer (ascending SymbolId order) loses its volatile state.
struct CrashEvent {
  uint64_t at_step = 0;
  size_t peer_index = 0;
};

/// Modeled wire size of a message (header + payload terms + transport
/// envelope; see the definition in network.cc and docs/METRICS.md). Shared
/// with the peers' wire batcher, which packs kTuples sections up to a byte
/// budget priced by this same convention.
size_t ApproxWireBytes(const Message& m);

/// Opt-in kTuples batching (ROADMAP wire-efficiency item): at the end of
/// each fixpoint flush a peer packs its small kTuples payloads per target
/// into one message (extra payloads ride as Message::sections) and splits
/// payloads larger than `max_bytes` across messages. Off by default — the
/// unbatched trajectory is byte-identical to the pre-batching network.
struct WireBatchOptions {
  bool enable = false;
  size_t max_bytes = 4096;  // ApproxWireBytes budget per packed message
};

/// Crash-restart schedule layered on a FaultPlan. A crashed peer's
/// volatile state (transport channels, Dijkstra–Scholten engagement,
/// materialized relations) is wiped and reconstructed `down_for` steps
/// later from its last durable snapshot plus write-ahead-log replay
/// (dist/snapshot.h); while down, wire deliveries to it are lost.
struct CrashPlan {
  std::vector<CrashEvent> crash_at_step;  // deterministic schedule
  double random_crash = 0.0;       // per-step crash probability (seeded)
  size_t max_random_crashes = 0;   // cap on random crashes
  uint64_t down_for = 32;          // steps between crash and restart
  // A full snapshot is taken (truncating the write-ahead log) every this
  // many logged deliveries. 1 = checkpoint on every delivery.
  size_t checkpoint_every = 1;
  // Live migrations: at `at_step` the `peer_index`-th restartable peer is
  // fenced (epoch bump), its state handed to a replacement object built by
  // the migration factory, and the replacement recovered from snapshot +
  // WAL replay — all within one Step, so evaluation continues unchanged.
  // Requires SimNetwork::SetMigrationFactory.
  std::vector<CrashEvent> migrate_at_step;

  bool active() const {
    return !crash_at_step.empty() || !migrate_at_step.empty() ||
           (random_crash > 0.0 && max_random_crashes > 0);
  }
};

/// Per-message fault probabilities applied to every wire enqueue
/// (including retransmits and transport acks). All-zero means a perfect
/// wire and no reliability shim.
struct FaultPlan {
  double drop = 0.0;       // message vanishes in transit
  double duplicate = 0.0;  // a second wire copy is enqueued
  double delay = 0.0;      // message held back 1..max_delay_steps deliveries
                           // (breaks per-channel FIFO: reordering)
  uint32_t max_delay_steps = 8;
  ReliableConfig reliable;  // shim tuning, used when the plan is active
  CrashPlan crash;          // peer crash-restart schedule

  bool active() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || crash.active();
  }
};

struct NetworkStats {
  // First-delivery (logical) series: what the peers actually consumed.
  // Duplicate and retransmit copies the transport deduplicates, and
  // transport-internal acks, are excluded — on a lossy wire these counters
  // match the lossless run of the same workload.
  size_t messages_delivered = 0;
  size_t tuples_shipped = 0;     // sum of kTuples payload sizes
  size_t control_messages = 0;   // activate/subquery/install/ack
  size_t rules_shipped = 0;      // total rules in kInstall messages
  // Wire-level series: every copy the wire delivered, including duplicates,
  // retransmits and transport acks. Equal to the logical series on a
  // perfect wire without the shim.
  size_t wire_messages = 0;
  size_t wire_bytes = 0;         // ApproxWireBytes over all wire deliveries
  // Fault-injection and reliable-delivery accounting (0 on a perfect wire).
  size_t dropped = 0;            // messages destroyed by the fault plan
  size_t duplicated = 0;         // extra wire copies injected
  size_t delayed = 0;            // messages delay-reordered
  size_t retransmits = 0;        // timeout-driven resends by the shim
  size_t spurious = 0;           // deliveries suppressed by receiver dedup
  size_t transport_acks = 0;     // standalone kTransportAck messages sent
  size_t coalesced = 0;          // queued wire copies superseded in place
                                 // by a fresher ack/retransmit copy
  // Mirrored from the shim's TransportStats (dist/reliable.h).
  size_t sacked = 0;             // retransmit entries erased by SACK blocks
  size_t fast_retransmits = 0;   // early resends on dup-SACK evidence
  size_t window_stalls = 0;      // sends deferred by a full window
  size_t window_drained = 0;     // deferred sends released by acks
  size_t rtt_samples = 0;        // Karn-eligible RTT measurements
  // Crash-restart accounting (0 unless the plan schedules crashes).
  size_t crashes = 0;            // peers that lost their volatile state
  size_t restarts = 0;           // recoveries from snapshot + WAL replay
  size_t stale_epoch_drops = 0;  // wire copies from a dead incarnation
  size_t crash_drops = 0;        // wire deliveries lost at a down peer
  size_t snapshot_bytes = 0;     // serialized checkpoint volume
  size_t wal_records = 0;        // write-ahead-logged deliveries
  size_t migrations = 0;         // live shard hand-offs (dist.shard.migrations)
};

class SimNetwork : public Network {
 public:
  /// `force_reliable` engages the shim even under an inactive plan (used to
  /// measure the shim's own overhead on a perfect wire).
  explicit SimNetwork(uint64_t seed, const FaultPlan& faults = {},
                      bool force_reliable = false);
  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers a peer; the network does not own it.
  void Register(SymbolId id, PeerNode* peer);

  /// Enqueues a message on the (from, to) FIFO channel. Both endpoints
  /// must be registered: an unregistered sender would corrupt
  /// Dijkstra-Scholten ack routing at the receiver. With the reliable
  /// shim engaged, a send that exceeds the channel's flow-control window
  /// is queued sender-side and reaches the wire once acks open the window.
  void Send(Message message) override;

  /// Delivers one message from a randomly chosen non-empty channel.
  /// Returns false if no traffic exists or is pending; may return true
  /// without a delivery when only delayed/retransmit traffic is pending
  /// (the virtual clock advances to its due time).
  StatusOr<bool> Step();

  /// Delivers messages until quiescence (no in-flight messages — the
  /// "god's view" fixpoint of §3.1) or until `max_steps` deliveries.
  Status RunToQuiescence(size_t max_steps = 10'000'000);

  /// True iff Step() has nothing left to do: channels and the delay queue
  /// are empty and the shim owes no retransmits or acks.
  bool Quiescent() const;

  /// True iff no undelivered payload exists anywhere: every in-flight or
  /// retransmit-pending message is transport residue (a duplicate the
  /// receiver already saw, or an ack). On a perfect wire this is
  /// Quiescent(). This is the invariant Dijkstra-Scholten guarantees at
  /// the instant of detection.
  bool LogicallyQuiescent() const;

  bool reliable() const { return transport_ != nullptr; }
  bool crash_enabled() const { return crash_enabled_; }
  const NetworkStats& stats() const { return stats_; }
  size_t num_peers() const { return peers_.size(); }

  /// Force-restarts every currently down peer (snapshot + WAL replay +
  /// re-handshake), without waiting out its down_for window. Called after
  /// termination detection so answer extraction reads restored databases;
  /// also useful in tests.
  void RestoreDownPeers();

  /// Installs the factory that builds a fresh (blank) peer object for a
  /// live migration. The returned object replaces the registered peer; the
  /// caller keeps ownership of both (SimNetwork never owned peers).
  void SetMigrationFactory(std::function<PeerNode*(SymbolId)> factory) {
    migration_factory_ = std::move(factory);
  }

  /// Live shard hand-off: fences `peer` under a bumped epoch (the old
  /// owner's volatile state is wiped so it can never answer again), swaps
  /// in a replacement object from the migration factory, and recovers it
  /// through the ordinary snapshot + WAL-replay path — including the
  /// determinism CHECK and the re-handshake hellos. Works on a currently
  /// down peer too (the replacement simply restores instead of it).
  void MigratePeer(SymbolId peer);

  /// The store checkpoints and write-ahead logs are persisted to.
  const DurableStore& durable_store() const { return store_; }

  /// Names peers in metric labels (dist.net.channel_messages{from=,to=}).
  /// Defaults to "peer<id>". Set before the first Send/Step: channel
  /// counters are registered once and keep their labels.
  void SetPeerNamer(std::function<std::string(SymbolId)> namer) {
    namer_ = std::move(namer);
  }

 private:
  using ChannelKey = std::pair<SymbolId, SymbolId>;

  std::string PeerLabel(SymbolId id) const;
  /// Wire-level accounting: every delivered copy, pre-deduplication.
  void RecordWireDelivery(const Message& message,
                          const ChannelKey& channel_key);
  /// First-delivery accounting: only messages handed to a peer.
  void RecordDelivery(const Message& message);
  /// Mirrors the shim's TransportStats into stats_ and dist.net.* metrics.
  void SyncTransportStats();

  /// Applies the fault plan and puts `m` on the wire (or drops it).
  void EnqueueWire(Message m);
  /// Delay-reorder leg of fault injection; appends to a channel otherwise.
  void DeliverOrDelay(Message m);
  /// Appends to the (from,to) channel, maintaining the non-empty index.
  void PushToChannel(Message m);
  /// Moves delayed messages whose release time has come onto channels.
  void ReleaseDelayed();
  /// Enqueues the shim's due retransmits and standalone acks.
  void PumpTransport();

  // ---- Crash-restart machinery (dist/snapshot.h) ------------------------

  /// Checkpoints every restartable peer once, before the first delivery,
  /// so a crash at any step has a snapshot to recover from.
  void EnsureInitialCheckpoints();
  /// Fires due restarts, then due deterministic crash events, then at most
  /// one seeded random crash.
  void ProcessCrashSchedule();
  /// Wipes `peer`'s volatile state (PeerNode::Crash) and freezes its
  /// transport channels; deliveries to it are lost until restart.
  void CrashPeer(SymbolId peer);
  /// Restores `peer` from its last snapshot under a fresh epoch, replays
  /// its write-ahead log, CHECKs the reconstruction against the frozen
  /// pre-crash protocol image, re-checkpoints, and sends hellos.
  void RestartPeer(SymbolId peer);
  /// The shared recovery tail of RestartPeer and MigratePeer: snapshot
  /// restore + epoch bump + WAL replay + determinism CHECK against
  /// `frozen_image` + re-checkpoint + hellos.
  void RecoverPeer(SymbolId peer, const std::string& frozen_image);
  /// Serializes `peer`'s full state to the store and truncates its WAL.
  void CheckpointPeer(SymbolId peer);
  /// Appends one delivered message to `peer`'s write-ahead log.
  void WalAppend(SymbolId peer, const Message& message);
  /// Checkpoints `peer` when its WAL reached CrashPlan::checkpoint_every.
  void MaybeCheckpoint(SymbolId peer);

  Rng rng_;        // scheduler: cross-channel interleaving only
  Rng fault_rng_;  // fault draws; never consulted when the plan is inactive
  FaultPlan faults_;
  std::unique_ptr<ReliableTransport> transport_;  // engaged iff plan active
  ManualClock clock_;  // virtual time: one tick per Step()
  std::map<SymbolId, PeerNode*> peers_;
  std::map<ChannelKey, std::deque<Message>> channels_;
  // Non-empty channels, sorted by key — maintained incrementally so Step()
  // picks in O(1) instead of rescanning every channel (the scan was
  // quadratic-ish on E3 chains). Deque pointers are stable (map values).
  std::vector<std::pair<ChannelKey, std::deque<Message>*>> nonempty_;
  std::multimap<uint64_t, Message> delayed_;  // release time -> message
  NetworkStats stats_;
  std::function<std::string(SymbolId)> namer_;
  // Per-channel registry counters, resolved once per channel.
  std::map<ChannelKey, Counter*> channel_counters_;
  // Crash-restart state: the durable store, the restartable peers in
  // ascending id order (CrashEvent::peer_index indexes this), down peers
  // with their restart times, per-peer WAL lengths since the last
  // checkpoint, fired deterministic events, and the replay flag that
  // suppresses wire traffic while a restarted peer re-executes logged
  // deliveries.
  bool crash_enabled_ = false;
  InMemoryDurableStore store_;
  std::vector<SymbolId> restartable_;
  bool initial_checkpoints_done_ = false;
  std::map<SymbolId, uint64_t> down_;  // peer -> restart due time
  std::map<SymbolId, size_t> wal_len_;
  std::set<size_t> fired_;
  std::set<size_t> migrate_fired_;
  size_t random_crashes_fired_ = 0;
  bool replaying_ = false;
  std::function<PeerNode*(SymbolId)> migration_factory_;
};

/// Interface implemented by dDatalog peers (and test doubles).
class PeerNode {
 public:
  virtual ~PeerNode() = default;
  /// Handles one delivered message; may Send on `network`.
  virtual Status OnMessage(const Message& message, Network& network) = 0;

  // Crash-restart hooks (dist/snapshot.h). The default implementation
  // opts out: only peers that can serialize their full volatile state may
  // be crashed by a CrashPlan.
  virtual bool Restartable() const { return false; }
  /// Serializes the peer's volatile state (an opaque blob stored as
  /// PeerSnapshot::peer_state).
  virtual std::string SaveState() const { return {}; }
  /// Reinstates a SaveState() blob after a crash.
  virtual void RestoreState(const std::string& state) { (void)state; }
  /// Wipes the peer's volatile state (the crash itself). A crashed peer
  /// must not process messages until RestoreState.
  virtual void Crash() {}
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_NETWORK_H_
