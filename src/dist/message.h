// Messages exchanged by dDatalog peers over the simulated asynchronous
// network. Four kinds: tuple batches (data flow), relation activation
// requests with a subscription (distributed naive evaluation, paper §3.1),
// subquery requests carrying a call pattern (dQSQ demand propagation,
// §3.2), rule installations (the shipped "remainder" rules of rule (†)),
// plus acknowledgments for Dijkstra-Scholten termination detection.
#ifndef DQSQ_DIST_MESSAGE_H_
#define DQSQ_DIST_MESSAGE_H_

#include <vector>

#include "datalog/ast.h"
#include "datalog/relation.h"

namespace dqsq::dist {

/// One selective-acknowledgment block: the inclusive sequence range
/// [first, last] of the reverse channel has been received out of order
/// (beyond the cumulative ack). Bounded per message by
/// ReliableConfig::max_sack_blocks.
struct SackBlock {
  uint64_t first = 0;
  uint64_t last = 0;
  friend bool operator==(const SackBlock&, const SackBlock&) = default;
};

enum class MessageKind {
  kTuples,        // data for `rel` (owned by the receiver or a replica there)
  kActivate,      // activate `rel`; stream its tuples to `subscriber`
  kSubquery,      // demand for the call pattern (rel, adornment)
  kInstall,       // install `rules` at the receiver (their bodies are local)
  kAck,            // termination-detection acknowledgment
  kTransportAck,   // reliable-delivery cumulative ack; never reaches peers
  kTransportHello,  // epoch re-handshake after a crash-restart; never
                    // reaches peers (announces the sender's new epoch and
                    // carries its receiver-side resume point as an ack)
};

/// One batched kTuples payload: a relation plus its rows. A message whose
/// `sections` is non-empty carries several relations' flushes in one wire
/// frame (dist.net.batched_tuples); the primary rel/tuples fields still
/// hold the first flush so unbatched consumers and accounting see it.
struct TupleSection {
  RelId rel;
  std::vector<Tuple> tuples;
  friend bool operator==(const TupleSection&, const TupleSection&) = default;
};

struct Message {
  MessageKind kind;
  SymbolId from = 0;
  SymbolId to = 0;

  RelId rel;                     // kTuples / kActivate / kSubquery
  std::vector<Tuple> tuples;     // kTuples
  SymbolId subscriber = 0;       // kActivate
  std::vector<bool> adornment;   // kSubquery
  std::vector<Rule> rules;       // kInstall
  // Sharding (dist/shard.h): a kTuples batch flagged shard_replica carries
  // rows the hash-owner shard broadcasts to its group siblings — the
  // receiver stores them as replica data and never re-exchanges them.
  bool shard_replica = false;
  // Additional kTuples payloads batched into this frame (wire batching,
  // DistOptions::wire_batch). Empty on the default unbatched path.
  std::vector<TupleSection> sections;

  // Reliable-delivery envelope, stamped by the transport shim when the
  // network runs with fault injection; all zero on a loss-free network.
  uint64_t seq = 0;          // 1-based per-(from,to)-channel sequence number
  uint64_t ack = 0;          // piggybacked cumulative ack: every message of
                             // the reverse (to,from) channel with seq <= ack
                             // has been received (0 = nothing acked yet)
  std::vector<SackBlock> sack;  // selective acks: reverse-channel ranges
                                // received beyond `ack` (bounded list)
  bool retransmit = false;   // wire copy resent after a timeout
  // Sender incarnation number, stamped on every wire emission when the
  // network runs with crash-restart support (0 otherwise). A restarted
  // peer begins a new epoch via kTransportHello; receivers discard
  // stale-epoch wire copies (hygiene — correctness rests on the durable
  // snapshot + write-ahead log, see dist/snapshot.h).
  uint64_t epoch = 0;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_MESSAGE_H_
