// Messages exchanged by dDatalog peers over the simulated asynchronous
// network. Four kinds: tuple batches (data flow), relation activation
// requests with a subscription (distributed naive evaluation, paper §3.1),
// subquery requests carrying a call pattern (dQSQ demand propagation,
// §3.2), rule installations (the shipped "remainder" rules of rule (†)),
// plus acknowledgments for Dijkstra-Scholten termination detection.
#ifndef DQSQ_DIST_MESSAGE_H_
#define DQSQ_DIST_MESSAGE_H_

#include <vector>

#include "datalog/ast.h"
#include "datalog/relation.h"

namespace dqsq::dist {

enum class MessageKind {
  kTuples,     // data for `rel` (owned by the receiver or a replica there)
  kActivate,   // activate `rel`; stream its tuples to `subscriber`
  kSubquery,   // demand for the call pattern (rel, adornment)
  kInstall,    // install `rules` at the receiver (their bodies are local)
  kAck,        // termination-detection acknowledgment
};

struct Message {
  MessageKind kind;
  SymbolId from = 0;
  SymbolId to = 0;

  RelId rel;                     // kTuples / kActivate / kSubquery
  std::vector<Tuple> tuples;     // kTuples
  SymbolId subscriber = 0;       // kActivate
  std::vector<bool> adornment;   // kSubquery
  std::vector<Rule> rules;       // kInstall
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_MESSAGE_H_
