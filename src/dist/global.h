// The canonical translation P ↦ P^g of a distributed program into a plain
// Datalog program (paper §3, "Models and Semantics"): every n-ary R@p atom
// becomes an (n+1)-ary R_g atom whose extra argument is the peer-name
// constant. The semantics of P is the minimal model of P^g; the test suite
// uses this to validate that the distributed engines compute exactly the
// centralized semantics.
#ifndef DQSQ_DIST_GLOBAL_H_
#define DQSQ_DIST_GLOBAL_H_

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/parser.h"

namespace dqsq::dist {

/// Builds P^g. Every relation R of arity n maps to "R_g" of arity n+1 with
/// the peer appended as last argument; all atoms of P^g live at the local
/// peer.
StatusOr<Program> GlobalProgram(const Program& program, DatalogContext& ctx);

/// Translates a query atom the same way.
StatusOr<ParsedQuery> GlobalQuery(const ParsedQuery& query,
                                  DatalogContext& ctx);

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_GLOBAL_H_
