// Elastic intra-peer sharding (ROADMAP item 3). The paper's P ↦ P^g
// translation localizes every rule at one logical peer, so the unit of
// distribution can be subdivided further: a logical peer's owned
// relations are hash-partitioned across K worker shards, with routing a
// pure tuple-hash over per-term content fingerprints — no rule rewriting
// is needed beyond redirecting each rule's pivot body atom to the owning
// shard's partition (dist/peer.h). Fingerprints hash the term's symbolic
// content (not its arena id): interning orders differ between the OS
// processes of a real-wire cluster, and ownership decisions must agree
// everywhere or a row loaded as a full replica is claimed by no shard.
//
// The ShardRouter is the single source of truth for the shard topology:
// every process of a cluster builds it from the same sorted logical peer
// set and shard count, so tuple routing agrees everywhere without
// coordination. Shard 0 of each group keeps the logical peer's name
// (K=1 collapses to the unsharded cluster byte-for-byte); shards i >= 1
// are named "<peer>#i".
#ifndef DQSQ_DIST_SHARD_H_
#define DQSQ_DIST_SHARD_H_

#include <cstddef>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "datalog/ast.h"
#include "datalog/relation.h"

namespace dqsq::dist {

class ShardRouter {
 public:
  /// Builds the topology: `num_shards` shard peers per logical peer in
  /// `logical_peers`, interning the "<peer>#i" shard names in `ctx`.
  /// `num_shards` 0 is treated as 1.
  ShardRouter(DatalogContext& ctx, const std::set<SymbolId>& logical_peers,
              size_t num_shards);

  size_t num_shards() const { return num_shards_; }

  /// All shard peer ids of `logical`, index i = shard i (index 0 is the
  /// logical id itself). Aborts if `logical` is not a logical peer.
  const std::vector<SymbolId>& GroupOf(SymbolId logical) const;

  /// The logical peer a shard id belongs to (identity for shard 0 /
  /// unknown ids, so non-sharded peers pass through).
  SymbolId LogicalOf(SymbolId shard) const;

  /// True iff `id` is a shard (or logical) peer of a known group.
  bool Knows(SymbolId id) const { return logical_of_.contains(id); }

  /// Shard index owning `tuple` within its logical peer's group:
  /// FNV-seeded hash over the terms' content fingerprints, mod num_shards
  /// — the same function every process and the bench use.
  size_t ShardOfTuple(std::span<const TermId> tuple) const;

  /// Process-independent fingerprint of a term: FNV-1a over its symbol
  /// name, recursively combined with argument fingerprints for function
  /// applications. Cached per arena id, so steady-state routing is one
  /// table load per term. Never zero.
  uint64_t TermFingerprint(TermId term) const;

  /// The shard peer id owning `tuple` of a relation at `logical`.
  SymbolId OwnerOf(SymbolId logical, std::span<const TermId> tuple) const {
    return GroupOf(logical)[ShardOfTuple(tuple)];
  }

  /// Partitions every row of `relation` by ShardOfTuple, appending row ids
  /// to `out[shard]` (resized to num_shards, not cleared). The hot loop
  /// reads the columnar row-major mirror directly. Returns rows routed.
  size_t PartitionRows(const Relation& relation,
                       std::vector<std::vector<uint32_t>>& out) const;

  /// Every shard peer id, over all groups (placement in cluster_main).
  std::vector<SymbolId> AllShards() const;

 private:
  const DatalogContext* ctx_;
  size_t num_shards_;
  std::map<SymbolId, std::vector<SymbolId>> groups_;   // logical -> shards
  std::map<SymbolId, SymbolId> logical_of_;            // shard -> logical
  // Fingerprint cache indexed by TermId; 0 = not yet computed.
  mutable std::vector<uint64_t> term_fp_;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_SHARD_H_
