#include "dist/shard.h"

#include "common/hash.h"
#include "common/logging.h"

namespace dqsq::dist {

ShardRouter::ShardRouter(DatalogContext& ctx,
                         const std::set<SymbolId>& logical_peers,
                         size_t num_shards)
    : ctx_(&ctx), num_shards_(num_shards == 0 ? 1 : num_shards) {
  for (SymbolId logical : logical_peers) {
    std::vector<SymbolId> group;
    group.reserve(num_shards_);
    group.push_back(logical);
    const std::string base(ctx.symbols().Name(logical));
    for (size_t i = 1; i < num_shards_; ++i) {
      group.push_back(ctx.symbols().Intern(base + "#" + std::to_string(i)));
    }
    for (SymbolId shard : group) logical_of_.emplace(shard, logical);
    groups_.emplace(logical, std::move(group));
  }
}

const std::vector<SymbolId>& ShardRouter::GroupOf(SymbolId logical) const {
  auto it = groups_.find(logical);
  DQSQ_CHECK(it != groups_.end())
      << "shard group requested for unknown logical peer " << logical;
  return it->second;
}

SymbolId ShardRouter::LogicalOf(SymbolId shard) const {
  auto it = logical_of_.find(shard);
  return it == logical_of_.end() ? shard : it->second;
}

uint64_t ShardRouter::TermFingerprint(TermId term) const {
  if (term < term_fp_.size() && term_fp_[term] != 0) return term_fp_[term];
  // FNV-1a over the symbolic content: arena ids depend on each process's
  // interning order and MUST NOT leak into routing decisions.
  uint64_t h = 0xcbf29ce484222325ULL;
  const TermArena& arena = ctx_->arena();
  for (char c : ctx_->symbols().Name(arena.Symbol(term))) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  if (arena.IsApp(term)) {
    for (TermId arg : arena.Args(term)) {
      h = (h ^ TermFingerprint(arg)) * 0x100000001b3ULL;
    }
  }
  if (h == 0) h = 0x9e3779b97f4a7c15ULL;  // keep 0 as the "uncached" mark
  if (term >= term_fp_.size()) term_fp_.resize(term + 1, 0);
  term_fp_[term] = h;
  return h;
}

size_t ShardRouter::ShardOfTuple(std::span<const TermId> tuple) const {
  if (num_shards_ == 1) return 0;
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (TermId id : tuple) {
    HashCombine(seed, static_cast<std::size_t>(TermFingerprint(id)));
  }
  return seed % num_shards_;
}

size_t ShardRouter::PartitionRows(
    const Relation& relation, std::vector<std::vector<uint32_t>>& out) const {
  out.resize(num_shards_);
  const uint32_t arity = relation.arity();
  const size_t rows = relation.size();
  for (size_t row = 0; row < rows; ++row) {
    std::span<const TermId> t = relation.Row(row);
    std::size_t seed = 0xcbf29ce484222325ULL;
    for (uint32_t c = 0; c < arity; ++c) {
      HashCombine(seed, static_cast<std::size_t>(TermFingerprint(t[c])));
    }
    out[num_shards_ == 1 ? 0 : seed % num_shards_].push_back(
        static_cast<uint32_t>(row));
  }
  return rows;
}

std::vector<SymbolId> ShardRouter::AllShards() const {
  std::vector<SymbolId> all;
  for (const auto& [logical, group] : groups_) {
    all.insert(all.end(), group.begin(), group.end());
  }
  return all;
}

}  // namespace dqsq::dist
