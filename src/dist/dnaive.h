// Driver for distributed naive evaluation (paper §3.1): rules are
// installed at the peers owning their heads, the query relation is
// activated at its owner, activations cascade through rule bodies with
// subscriptions replicating remote relations, and tuples flow until the
// network quiesces — "the result is exactly as in the centralized case".
#ifndef DQSQ_DIST_DNAIVE_H_
#define DQSQ_DIST_DNAIVE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "dist/network.h"

namespace dqsq::dist {

struct DistResult {
  std::vector<Tuple> answers;
  NetworkStats net_stats;
  /// Facts materialized across every peer (replicas included — replicated
  /// storage is real storage).
  size_t total_facts = 0;
  /// Facts of original / adorned-answer relations across peers.
  size_t answer_facts = 0;
  size_t num_peers = 0;
  /// Facts per predicate name, summed across peers (for materialization
  /// accounting by the diagnosis layer and the benchmarks).
  std::map<std::string, size_t> relation_counts;
  /// True iff at the instant Dijkstra-Scholten detection fired no
  /// undelivered payload was in flight (verified on every successful run;
  /// a violation fails the solve instead of returning false here).
  bool quiescent_at_detection = false;
};

struct DistOptions {
  uint64_t seed = 1;
  EvalOptions eval;
  size_t max_network_steps = 1'000'000;
  /// Fault injection for the simulated wire. An active plan engages the
  /// reliable-delivery shim; the default loss-free plan adds no traffic.
  FaultPlan faults;
  /// Worker shards per logical peer (dist/shard.h). 1 = unsharded, and
  /// runs byte-identical to the pre-sharding cluster.
  size_t num_shards = 1;
  /// Section-batching of small kTuples flushes. Default off (unchanged
  /// wire); see WireBatchOptions.
  WireBatchOptions wire_batch;
};

/// Evaluates `query` over the distributed program. Facts may be given as
/// empty-body rules in `program`; rules and facts are installed at the
/// peers owning their heads.
StatusOr<DistResult> DistNaiveSolve(DatalogContext& ctx,
                                    const Program& program,
                                    const ParsedQuery& query,
                                    const DistOptions& options);

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_DNAIVE_H_
