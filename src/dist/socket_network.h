// A real transport behind the Network interface: TCP between OS processes,
// length-prefixed frames over the symbolic wire codec, timeouts on the OS
// steady clock. SimNetwork and SocketNetwork satisfy the same peer-facing
// contract (exactly-once, per-channel FIFO delivery into PeerNode::
// OnMessage), so the Datalog peers, both demand protocols and
// Dijkstra-Scholten termination run unchanged across processes — TCP
// provides per-channel reliability and ordering where the simulator's
// lossy wire needed the ReliableTransport shim.
//
// Deployment shape (see docs/CLUSTER.md): every process runs one
// SocketNetwork hosting its local PeerNodes. The network listens on one
// TCP port; an *address book* maps peer names to the host:port of the
// process hosting them. Sends to a local peer loop back through an
// in-process inbox; sends to a remote peer are framed and written to a
// lazily-dialed outbound connection (one per destination process).
// Inbound connections are accepted and read symmetrically — a directed
// process pair communicates over the dialer's connection, so per-channel
// FIFO is inherited from TCP's byte-stream ordering.
//
// Single-threaded: Pump() runs one poll(2) round — accept, read, decode,
// deliver, flush — and every delivery happens on the calling thread.
// Sends from inside OnMessage are buffered and flushed by the same or the
// next Pump. Control frames (cluster bootstrap, report collection,
// shutdown — dist/cluster_main.cc) bypass peer delivery and are handed to
// a ControlHandler.
#ifndef DQSQ_DIST_SOCKET_NETWORK_H_
#define DQSQ_DIST_SOCKET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "dist/network.h"
#include "dist/wire_codec.h"

namespace dqsq::dist {

struct SocketAddress {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
  friend bool operator==(const SocketAddress&, const SocketAddress&) = default;
};

struct SocketNetworkOptions {
  /// Budget for establishing one outbound connection, retries included
  /// (covers the bootstrap race where the remote has not bound yet).
  int connect_timeout_ms = 5000;
  /// Delay between connect attempts within the budget.
  int connect_retry_ms = 50;
  /// SO_SNDBUF for every connection, 0 = kernel default. Small values
  /// force short writes / EAGAIN in FlushConnection — the partial-write
  /// regression tests pin the resume-at-offset path with this.
  int sndbuf_bytes = 0;
};

/// Wire- and delivery-level accounting, the real-wire analogue of
/// NetworkStats. Socket byte counts include frame headers.
struct SocketStats {
  size_t messages_delivered = 0;  // peer messages handed to local nodes
  size_t tuples_shipped = 0;      // sum of delivered kTuples payload sizes
  size_t frames_sent = 0;         // all frames, control included
  size_t frames_received = 0;
  size_t bytes_sent = 0;
  size_t bytes_received = 0;
  size_t connects = 0;            // outbound connections established
  size_t accepts = 0;             // inbound connections accepted
  size_t framing_errors = 0;      // poisoned streams (connection dropped)
};

class SocketNetwork : public Network {
 public:
  /// Handles one control-plane frame; `conn_id` identifies the connection
  /// it arrived on, for SendControlOn replies.
  using ControlHandler = std::function<Status(const Frame& frame,
                                              uint64_t conn_id)>;

  explicit SocketNetwork(DatalogContext& ctx, SocketNetworkOptions options = {},
                         Clock* clock = &SteadyClock::Default());
  ~SocketNetwork() override;
  SocketNetwork(const SocketNetwork&) = delete;
  SocketNetwork& operator=(const SocketNetwork&) = delete;

  /// Binds and listens. Port 0 lets the kernel pick; the bound port is
  /// then available from listen_port() (how the cluster launcher avoids
  /// port collisions entirely).
  Status Listen(const std::string& host, uint16_t port);
  uint16_t listen_port() const { return listen_port_; }

  /// Registers a locally-hosted peer; the network does not own it.
  void Register(SymbolId id, PeerNode* peer);

  /// Maps `peer_name` to the process serving it. Sends to unregistered,
  /// unmapped peers fail (surfaced by the next Pump).
  void SetAddress(const std::string& peer_name, const SocketAddress& address);

  void SetControlHandler(ControlHandler handler) {
    control_handler_ = std::move(handler);
  }

  /// Network interface: local destinations loop back through the inbox,
  /// remote ones are framed onto the destination process's connection.
  /// I/O failures are deferred and returned by the next Pump().
  void Send(Message message) override;

  /// Frames a control payload to a process address (dialing if needed).
  Status SendControl(const SocketAddress& to, FrameType type,
                     std::string_view payload);
  /// Frames a control payload back on the connection a frame arrived on.
  Status SendControlOn(uint64_t conn_id, FrameType type,
                       std::string_view payload);

  /// One event-loop round: delivers queued loopback messages, polls up to
  /// `timeout_ms` (0 = nonblocking), accepts, reads and dispatches
  /// complete frames, flushes pending writes. Returns the first transport
  /// error (deferred send failures included).
  Status Pump(int timeout_ms);

  /// Pumps until `pred()` holds or `timeout_ms` elapses on the clock.
  Status PumpUntil(const std::function<bool()>& pred, int timeout_ms);

  const SocketStats& stats() const { return stats_; }
  size_t num_local_peers() const { return peers_.size(); }

 private:
  struct Connection {
    int fd = -1;
    std::string remote;       // description for errors
    FrameDecoder decoder;
    std::string outbuf;       // bytes not yet accepted by the kernel
    size_t outbuf_off = 0;
  };

  /// Established outbound connection to `address`, dialing on first use.
  StatusOr<Connection*> ConnectionTo(const SocketAddress& address);
  StatusOr<Connection*> Dial(const SocketAddress& address);
  void QueueFrame(Connection& conn, FrameType type, std::string_view payload);
  /// write()s as much of conn.outbuf as the kernel takes.
  Status FlushConnection(Connection& conn);
  /// Reads everything available; decodes and dispatches complete frames.
  Status DrainConnection(uint64_t conn_id);
  Status DispatchFrame(Frame frame, uint64_t conn_id);
  /// Hands a decoded message to its local PeerNode.
  Status Deliver(const Message& message);
  Status AcceptReady();
  void CloseConnection(uint64_t conn_id);
  void Defer(Status status);

  DatalogContext& ctx_;
  SocketNetworkOptions options_;
  Clock* clock_;
  int listen_fd_ = -1;
  uint16_t listen_port_ = 0;
  std::map<SymbolId, PeerNode*> peers_;           // local
  std::map<std::string, SocketAddress> address_book_;  // peer name -> process
  // Established connections by id; outbound ones also indexed by address.
  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, std::unique_ptr<Connection>> conns_;
  std::map<std::string, uint64_t> outbound_;      // address key -> conn id
  std::deque<Message> inbox_;                     // loopback deliveries
  ControlHandler control_handler_;
  Status deferred_error_ = Status::Ok();
  SocketStats stats_;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_SOCKET_NETWORK_H_
