#include "dist/network.h"

#include "common/logging.h"

namespace dqsq::dist {

namespace {

const char* KindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kTuples:
      return "tuples";
    case MessageKind::kActivate:
      return "activate";
    case MessageKind::kSubquery:
      return "subquery";
    case MessageKind::kInstall:
      return "install";
    case MessageKind::kAck:
      return "ack";
  }
  return "unknown";
}

// Approximate wire size: a fixed header plus payload terms at four bytes
// each and rules at sixteen bytes per atom. The network is simulated, so
// this is a modeling convention (documented in docs/METRICS.md), not a
// codec.
size_t ApproxWireBytes(const Message& m) {
  size_t bytes = 16;
  for (const Tuple& t : m.tuples) bytes += 4 * t.size();
  bytes += (m.adornment.size() + 7) / 8;
  for (const Rule& r : m.rules) bytes += 16 * (1 + r.body.size());
  return bytes;
}

}  // namespace

void SimNetwork::Register(SymbolId id, PeerNode* peer) {
  DQSQ_CHECK(peers_.emplace(id, peer).second) << "duplicate peer id " << id;
}

void SimNetwork::Send(Message message) {
  DQSQ_CHECK(peers_.contains(message.to))
      << "send to unregistered peer " << message.to;
  auto key = std::make_pair(message.from, message.to);
  channels_[key].push_back(std::move(message));
}

StatusOr<bool> SimNetwork::Step() {
  // Collect non-empty channels, pick one uniformly.
  std::vector<std::deque<Message>*> nonempty;
  for (auto& [key, channel] : channels_) {
    if (!channel.empty()) nonempty.push_back(&channel);
  }
  if (nonempty.empty()) return false;
  auto* channel = nonempty[rng_.NextBelow(nonempty.size())];
  Message message = std::move(channel->front());
  channel->pop_front();

  ++stats_.messages_delivered;
  if (message.kind == MessageKind::kTuples) {
    stats_.tuples_shipped += message.tuples.size();
  } else {
    ++stats_.control_messages;
    if (message.kind == MessageKind::kInstall) {
      stats_.rules_shipped += message.rules.size();
    }
  }
  RecordDelivery(message, std::make_pair(message.from, message.to));

  PeerNode* peer = peers_.at(message.to);
  DQSQ_RETURN_IF_ERROR(peer->OnMessage(message, *this));
  return true;
}

std::string SimNetwork::PeerLabel(SymbolId id) const {
  if (namer_) return namer_(id);
  return "peer" + std::to_string(id);
}

void SimNetwork::RecordDelivery(
    const Message& message, const std::pair<SymbolId, SymbolId>& channel_key) {
  auto& registry = MetricsRegistry::Global();
  registry
      .GetCounter("dist.net.messages_delivered",
                  {{"kind", KindName(message.kind)}}, "messages")
      .Increment();
  registry.GetCounter("dist.net.bytes", {}, "bytes")
      .Increment(ApproxWireBytes(message));
  if (message.kind == MessageKind::kTuples) {
    registry.GetCounter("dist.net.tuples_shipped", {}, "rows")
        .Increment(message.tuples.size());
  } else if (message.kind == MessageKind::kInstall) {
    registry.GetCounter("dist.net.rules_shipped", {}, "rules")
        .Increment(message.rules.size());
  }
  Counter*& channel = channel_counters_[channel_key];
  if (channel == nullptr) {
    channel = &registry.GetCounter(
        "dist.net.channel_messages",
        {{"from", PeerLabel(channel_key.first)},
         {"to", PeerLabel(channel_key.second)}},
        "messages");
  }
  channel->Increment();
}

Status SimNetwork::RunToQuiescence(size_t max_steps) {
  for (size_t i = 0; i < max_steps; ++i) {
    DQSQ_ASSIGN_OR_RETURN(bool delivered, Step());
    if (!delivered) return Status::Ok();
  }
  return ResourceExhaustedError("network did not quiesce within budget");
}

bool SimNetwork::Quiescent() const {
  for (const auto& [key, channel] : channels_) {
    if (!channel.empty()) return false;
  }
  return true;
}

}  // namespace dqsq::dist
