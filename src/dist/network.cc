#include "dist/network.h"

#include "common/logging.h"

namespace dqsq::dist {

void SimNetwork::Register(SymbolId id, PeerNode* peer) {
  DQSQ_CHECK(peers_.emplace(id, peer).second) << "duplicate peer id " << id;
}

void SimNetwork::Send(Message message) {
  DQSQ_CHECK(peers_.contains(message.to))
      << "send to unregistered peer " << message.to;
  auto key = std::make_pair(message.from, message.to);
  channels_[key].push_back(std::move(message));
}

StatusOr<bool> SimNetwork::Step() {
  // Collect non-empty channels, pick one uniformly.
  std::vector<std::deque<Message>*> nonempty;
  for (auto& [key, channel] : channels_) {
    if (!channel.empty()) nonempty.push_back(&channel);
  }
  if (nonempty.empty()) return false;
  auto* channel = nonempty[rng_.NextBelow(nonempty.size())];
  Message message = std::move(channel->front());
  channel->pop_front();

  ++stats_.messages_delivered;
  if (message.kind == MessageKind::kTuples) {
    stats_.tuples_shipped += message.tuples.size();
  } else {
    ++stats_.control_messages;
    if (message.kind == MessageKind::kInstall) {
      stats_.rules_shipped += message.rules.size();
    }
  }

  PeerNode* peer = peers_.at(message.to);
  DQSQ_RETURN_IF_ERROR(peer->OnMessage(message, *this));
  return true;
}

Status SimNetwork::RunToQuiescence(size_t max_steps) {
  for (size_t i = 0; i < max_steps; ++i) {
    DQSQ_ASSIGN_OR_RETURN(bool delivered, Step());
    if (!delivered) return Status::Ok();
  }
  return ResourceExhaustedError("network did not quiesce within budget");
}

bool SimNetwork::Quiescent() const {
  for (const auto& [key, channel] : channels_) {
    if (!channel.empty()) return false;
  }
  return true;
}

}  // namespace dqsq::dist
