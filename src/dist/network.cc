#include "dist/network.h"

#include <algorithm>

#include "common/logging.h"

namespace dqsq::dist {

namespace {

const char* KindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kTuples:
      return "tuples";
    case MessageKind::kActivate:
      return "activate";
    case MessageKind::kSubquery:
      return "subquery";
    case MessageKind::kInstall:
      return "install";
    case MessageKind::kAck:
      return "ack";
    case MessageKind::kTransportAck:
      return "transport_ack";
  }
  return "unknown";
}

// Approximate wire size: a fixed header plus payload terms at four bytes
// each and rules at sixteen bytes per atom. Messages stamped by the
// reliable shim additionally pay a transport envelope — seq + cumulative
// ack (8 bytes each) plus flags/SACK count (4), and 16 bytes per SACK
// block (two 8-byte bounds) — so lossy runs price the traffic the
// transport itself adds. The network is simulated, so this is a modeling
// convention (documented in docs/METRICS.md), not a codec.
size_t ApproxWireBytes(const Message& m) {
  size_t bytes = 16;
  for (const Tuple& t : m.tuples) bytes += 4 * t.size();
  bytes += (m.adornment.size() + 7) / 8;
  for (const Rule& r : m.rules) bytes += 16 * (1 + r.body.size());
  if (m.seq > 0 || m.kind == MessageKind::kTransportAck) {
    bytes += 20 + 16 * m.sack.size();
  }
  return bytes;
}

}  // namespace

SimNetwork::SimNetwork(uint64_t seed, const FaultPlan& faults,
                       bool force_reliable)
    : rng_(seed), fault_rng_(seed ^ 0x5eed5eed5eed5eedULL), faults_(faults) {
  if (faults_.active() || force_reliable) {
    transport_ = std::make_unique<ReliableTransport>(faults_.reliable);
  }
}

void SimNetwork::Register(SymbolId id, PeerNode* peer) {
  DQSQ_CHECK(peers_.emplace(id, peer).second) << "duplicate peer id " << id;
}

void SimNetwork::Send(Message message) {
  DQSQ_CHECK(peers_.contains(message.to))
      << "send to unregistered peer " << message.to;
  DQSQ_CHECK(peers_.contains(message.from))
      << "send from unregistered peer " << message.from;
  if (transport_ != nullptr && !transport_->StampOutgoing(message, now_)) {
    // Window full: the transport queued the message sender-side; PollWire
    // emits it once acks open the window.
    SyncTransportStats();
    return;
  }
  EnqueueWire(std::move(message));
}

void SimNetwork::EnqueueWire(Message m) {
  if (!faults_.active()) {
    PushToChannel(std::move(m));
    return;
  }
  if (fault_rng_.NextBool(faults_.drop)) {
    ++stats_.dropped;
    CountMetric("dist.net.dropped", 1, {}, "messages");
    return;
  }
  if (fault_rng_.NextBool(faults_.duplicate)) {
    ++stats_.duplicated;
    CountMetric("dist.net.duplicated", 1, {}, "messages");
    DeliverOrDelay(m);  // the extra copy takes its own delay draw
  }
  DeliverOrDelay(std::move(m));
}

void SimNetwork::DeliverOrDelay(Message m) {
  if (faults_.delay > 0.0 && fault_rng_.NextBool(faults_.delay)) {
    ++stats_.delayed;
    CountMetric("dist.net.delayed", 1, {}, "messages");
    uint32_t window = std::max<uint32_t>(faults_.max_delay_steps, 1);
    delayed_.emplace(now_ + 1 + fault_rng_.NextBelow(window), std::move(m));
    return;
  }
  PushToChannel(std::move(m));
}

void SimNetwork::PushToChannel(Message m) {
  ChannelKey key{m.from, m.to};
  auto [it, inserted] = channels_.try_emplace(key);
  std::deque<Message>& channel = it->second;
  if (channel.empty()) {
    auto pos = std::lower_bound(
        nonempty_.begin(), nonempty_.end(), key,
        [](const auto& entry, const ChannelKey& k) { return entry.first < k; });
    nonempty_.insert(pos, {key, &channel});
  }
  channel.push_back(std::move(m));
}

void SimNetwork::ReleaseDelayed() {
  while (!delayed_.empty() && delayed_.begin()->first <= now_) {
    Message m = std::move(delayed_.begin()->second);
    delayed_.erase(delayed_.begin());
    PushToChannel(std::move(m));
  }
}

void SimNetwork::PumpTransport() {
  for (Message& m : transport_->PollWire(now_)) {
    if (m.kind == MessageKind::kTransportAck) {
      ++stats_.transport_acks;
      CountMetric("dist.net.transport_acks", 1, {}, "messages");
    } else if (m.retransmit) {
      ++stats_.retransmits;
      CountMetric("dist.net.retransmits", 1, {}, "messages");
    }
    // else: a window-stalled original send draining as the window opened;
    // counted via dist.net.window_drained in SyncTransportStats.
    EnqueueWire(std::move(m));
  }
  SyncTransportStats();
}

StatusOr<bool> SimNetwork::Step() {
  ++now_;
  if (!delayed_.empty()) ReleaseDelayed();
  if (transport_ != nullptr) PumpTransport();
  if (nonempty_.empty()) {
    // Nothing on the wire. Timeouts run on virtual time, so fast-forward
    // the clock to the next delayed release or shim deadline, if any.
    uint64_t next = 0;
    bool pending = false;
    if (!delayed_.empty()) {
      next = delayed_.begin()->first;
      pending = true;
    }
    if (transport_ != nullptr) {
      if (auto due = transport_->NextDue(); due.has_value()) {
        next = pending ? std::min(next, *due) : *due;
        pending = true;
      }
    }
    if (!pending) return false;
    now_ = std::max(now_, next);
    ReleaseDelayed();
    if (transport_ != nullptr) PumpTransport();
    // The injected traffic may itself have been dropped by the fault plan;
    // report progress and let the caller's step budget bound the retries.
    if (nonempty_.empty()) return true;
  }

  size_t pick = rng_.NextBelow(nonempty_.size());
  auto [key, channel] = nonempty_[pick];
  Message message = std::move(channel->front());
  channel->pop_front();
  if (channel->empty()) nonempty_.erase(nonempty_.begin() + pick);

  RecordWireDelivery(message, key);

  if (transport_ != nullptr) {
    ReliableTransport::Disposition disposition =
        transport_->OnWireDelivery(message, now_);
    SyncTransportStats();
    switch (disposition) {
      case ReliableTransport::Disposition::kControl:
        return true;
      case ReliableTransport::Disposition::kDuplicate:
        ++stats_.spurious;
        CountMetric("dist.net.spurious", 1, {}, "messages");
        return true;
      case ReliableTransport::Disposition::kDeliverFirst:
        break;  // exactly-once: the peer sees only first deliveries
    }
  }

  // Logical (first-delivery) accounting: only messages a peer consumes.
  ++stats_.messages_delivered;
  if (message.kind == MessageKind::kTuples) {
    stats_.tuples_shipped += message.tuples.size();
  } else {
    ++stats_.control_messages;
    if (message.kind == MessageKind::kInstall) {
      stats_.rules_shipped += message.rules.size();
    }
  }
  RecordDelivery(message);

  PeerNode* peer = peers_.at(message.to);
  DQSQ_RETURN_IF_ERROR(peer->OnMessage(message, *this));
  return true;
}

std::string SimNetwork::PeerLabel(SymbolId id) const {
  if (namer_) return namer_(id);
  return "peer" + std::to_string(id);
}

void SimNetwork::RecordWireDelivery(const Message& message,
                                    const ChannelKey& channel_key) {
  const size_t bytes = ApproxWireBytes(message);
  ++stats_.wire_messages;
  stats_.wire_bytes += bytes;
  auto& registry = MetricsRegistry::Global();
  if (transport_ != nullptr) {
    // The wire-level series only exists when the shim is engaged; on the
    // shimless lossless default wire == logical and the counters below
    // would be pure duplication (and would perturb the seed-pinned
    // lossless snapshot).
    registry.GetCounter("dist.net.wire_messages", {}, "messages").Increment();
    registry.GetCounter("dist.net.wire_bytes", {}, "bytes").Increment(bytes);
  }
  Counter*& channel = channel_counters_[channel_key];
  if (channel == nullptr) {
    channel = &registry.GetCounter(
        "dist.net.channel_messages",
        {{"from", PeerLabel(channel_key.first)},
         {"to", PeerLabel(channel_key.second)}},
        "messages");
  }
  channel->Increment();
}

void SimNetwork::RecordDelivery(const Message& message) {
  auto& registry = MetricsRegistry::Global();
  registry
      .GetCounter("dist.net.messages_delivered",
                  {{"kind", KindName(message.kind)}}, "messages")
      .Increment();
  registry.GetCounter("dist.net.bytes", {}, "bytes")
      .Increment(ApproxWireBytes(message));
  if (message.kind == MessageKind::kTuples) {
    registry.GetCounter("dist.net.tuples_shipped", {}, "rows")
        .Increment(message.tuples.size());
  } else if (message.kind == MessageKind::kInstall) {
    registry.GetCounter("dist.net.rules_shipped", {}, "rules")
        .Increment(message.rules.size());
  }
}

void SimNetwork::SyncTransportStats() {
  const TransportStats& t = transport_->stats();
  if (t.sacked > stats_.sacked) {
    CountMetric("dist.net.sacked", t.sacked - stats_.sacked, {}, "messages");
    stats_.sacked = t.sacked;
  }
  if (t.window_stalls > stats_.window_stalls) {
    CountMetric("dist.net.window_stalls", t.window_stalls -
                stats_.window_stalls, {}, "messages");
    stats_.window_stalls = t.window_stalls;
  }
  if (t.window_drained > stats_.window_drained) {
    CountMetric("dist.net.window_drained",
                t.window_drained - stats_.window_drained, {}, "messages");
    stats_.window_drained = t.window_drained;
  }
  if (t.rtt_samples > stats_.rtt_samples) {
    CountMetric("dist.net.rto_samples", t.rtt_samples - stats_.rtt_samples,
                {}, "samples");
    stats_.rtt_samples = t.rtt_samples;
    MetricsRegistry::Global()
        .GetGauge("dist.net.rto_last", {}, "steps")
        .Set(static_cast<int64_t>(t.last_rto));
  }
}

Status SimNetwork::RunToQuiescence(size_t max_steps) {
  for (size_t i = 0; i < max_steps; ++i) {
    DQSQ_ASSIGN_OR_RETURN(bool delivered, Step());
    if (!delivered) return Status::Ok();
  }
  // The budget may be exhausted by exactly the delivery that reached
  // quiescence; only a network with work left is an error.
  if (Quiescent()) return Status::Ok();
  return ResourceExhaustedError("network did not quiesce within budget");
}

bool SimNetwork::Quiescent() const {
  if (!nonempty_.empty() || !delayed_.empty()) return false;
  return transport_ == nullptr || !transport_->NextDue().has_value();
}

bool SimNetwork::LogicallyQuiescent() const {
  if (transport_ == nullptr) return Quiescent();
  auto undelivered = [&](const Message& m) {
    return m.kind != MessageKind::kTransportAck &&
           !transport_->Seen({m.from, m.to}, m.seq);
  };
  for (const auto& [key, channel] : channels_) {
    for (const Message& m : channel) {
      if (undelivered(m)) return false;
    }
  }
  for (const auto& [release, m] : delayed_) {
    if (undelivered(m)) return false;
  }
  return transport_->AllPayloadDelivered();
}

}  // namespace dqsq::dist
