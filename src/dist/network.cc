#include "dist/network.h"

#include <algorithm>

#include "common/logging.h"

namespace dqsq::dist {

namespace {

const char* KindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kTuples:
      return "tuples";
    case MessageKind::kActivate:
      return "activate";
    case MessageKind::kSubquery:
      return "subquery";
    case MessageKind::kInstall:
      return "install";
    case MessageKind::kAck:
      return "ack";
    case MessageKind::kTransportAck:
      return "transport_ack";
    case MessageKind::kTransportHello:
      return "transport_hello";
  }
  return "unknown";
}

}  // namespace

// Approximate wire size: a fixed header plus payload terms at four bytes
// each and rules at sixteen bytes per atom. Messages stamped by the
// reliable shim additionally pay a transport envelope — seq + cumulative
// ack (8 bytes each) plus flags/SACK count (4), and 16 bytes per SACK
// block (two 8-byte bounds) — so lossy runs price the traffic the
// transport itself adds. The network is simulated, so this is a modeling
// convention (documented in docs/METRICS.md), not a codec.
size_t ApproxWireBytes(const Message& m) {
  size_t bytes = 16;
  for (const Tuple& t : m.tuples) bytes += 4 * t.size();
  bytes += (m.adornment.size() + 7) / 8;
  for (const Rule& r : m.rules) bytes += 16 * (1 + r.body.size());
  // Batched kTuples sections (wire batching): an 8-byte section header
  // (relation id) plus the rows. Absent on the unbatched default path.
  for (const TupleSection& s : m.sections) {
    bytes += 8;
    for (const Tuple& t : s.tuples) bytes += 4 * t.size();
  }
  if (m.seq > 0 || m.kind == MessageKind::kTransportAck ||
      m.kind == MessageKind::kTransportHello) {
    bytes += 20 + 16 * m.sack.size();
  }
  // The epoch field is only ever non-zero after a crash-restart, so
  // crash-free runs price the wire exactly as before crash support.
  if (m.epoch > 0) bytes += 8;
  return bytes;
}

SimNetwork::SimNetwork(uint64_t seed, const FaultPlan& faults,
                       bool force_reliable)
    : rng_(seed), fault_rng_(seed ^ 0x5eed5eed5eed5eedULL), faults_(faults) {
  if (faults_.active() || force_reliable) {
    transport_ = std::make_unique<ReliableTransport>(faults_.reliable);
  }
  crash_enabled_ = faults_.crash.active();
}

void SimNetwork::Register(SymbolId id, PeerNode* peer) {
  DQSQ_CHECK(peers_.emplace(id, peer).second) << "duplicate peer id " << id;
}

void SimNetwork::Send(Message message) {
  DQSQ_CHECK(peers_.contains(message.to))
      << "send to unregistered peer " << message.to;
  DQSQ_CHECK(peers_.contains(message.from))
      << "send from unregistered peer " << message.from;
  if (replaying_) {
    // Write-ahead-log replay: the restarting peer re-executes its logged
    // deliveries, re-issuing the sends it made after the snapshot. The
    // transport re-stamps them — deterministic replay regenerates the
    // exact pre-crash sequence numbers, rebuilding the retransmit queue —
    // but nothing reaches the wire: receivers already saw the original
    // copies (or will, via the frozen copies' retransmits).
    transport_->StampOutgoing(message, clock_.now());
    return;
  }
  if (transport_ != nullptr && !transport_->StampOutgoing(message, clock_.now())) {
    // Window full: the transport queued the message sender-side; PollWire
    // emits it once acks open the window.
    SyncTransportStats();
    return;
  }
  EnqueueWire(std::move(message));
}

void SimNetwork::EnqueueWire(Message m) {
  if (!faults_.active()) {
    PushToChannel(std::move(m));
    return;
  }
  if (fault_rng_.NextBool(faults_.drop)) {
    ++stats_.dropped;
    CountMetric("dist.net.dropped", 1, {}, "messages");
    return;
  }
  if (fault_rng_.NextBool(faults_.duplicate)) {
    ++stats_.duplicated;
    CountMetric("dist.net.duplicated", 1, {}, "messages");
    DeliverOrDelay(m);  // the extra copy takes its own delay draw
  }
  DeliverOrDelay(std::move(m));
}

void SimNetwork::DeliverOrDelay(Message m) {
  if (faults_.delay > 0.0 && fault_rng_.NextBool(faults_.delay)) {
    ++stats_.delayed;
    CountMetric("dist.net.delayed", 1, {}, "messages");
    uint32_t window = std::max<uint32_t>(faults_.max_delay_steps, 1);
    delayed_.emplace(clock_.now() + 1 + fault_rng_.NextBelow(window), std::move(m));
    return;
  }
  PushToChannel(std::move(m));
}

void SimNetwork::PushToChannel(Message m) {
  ChannelKey key{m.from, m.to};
  auto [it, inserted] = channels_.try_emplace(key);
  std::deque<Message>& channel = it->second;
  // Coalesce superseded transport-maintenance traffic in the queue: an
  // undelivered standalone ack is strictly dominated by a newer one for
  // the same channel (the cumulative ack only grows), and an undelivered
  // wire copy of seq N is dominated by its own retransmit copy (identical
  // payload, fresher ack/SACK/epoch stamps). Keeping both copies is worse
  // than useless — whenever transport timers outrun the wire's one-
  // delivery-per-step drain rate (reachable under intra-peer sharding,
  // which multiplies channels by K²), the queue depth grows without
  // bound, and the acks that would quench the retransmit loops are stuck
  // behind the very copies they supersede: a livelock. With coalescing a
  // channel's queue holds at most one copy per sequence number plus one
  // standalone ack, so the backlog is bounded by the flow-control window.
  // Real stacks behave the same way (ack coalescing, qdisc-level
  // superseding of requeued segments); the socket backend gets equivalent
  // backpressure from its bounded send buffer. The queue position of the
  // superseded copy is kept, never its content; of the two stamps the
  // higher cumulative ack wins (a delayed-release older copy must not
  // roll back a fresher one).
  const bool is_ack = m.kind == MessageKind::kTransportAck;
  if (is_ack || (m.retransmit && m.seq > 0)) {
    for (Message& queued : channel) {
      const bool same =
          is_ack ? queued.kind == MessageKind::kTransportAck
                 : queued.seq == m.seq &&
                       queued.kind != MessageKind::kTransportAck &&
                       queued.kind != MessageKind::kTransportHello;
      if (!same) continue;
      if (m.ack >= queued.ack) queued = std::move(m);
      ++stats_.coalesced;
      CountMetric("dist.net.coalesced", 1,
                  {{"kind", is_ack ? "ack" : "retransmit"}}, "messages");
      return;
    }
  }
  if (channel.empty()) {
    auto pos = std::lower_bound(
        nonempty_.begin(), nonempty_.end(), key,
        [](const auto& entry, const ChannelKey& k) { return entry.first < k; });
    nonempty_.insert(pos, {key, &channel});
  }
  channel.push_back(std::move(m));
}

void SimNetwork::ReleaseDelayed() {
  while (!delayed_.empty() && delayed_.begin()->first <= clock_.now()) {
    Message m = std::move(delayed_.begin()->second);
    delayed_.erase(delayed_.begin());
    PushToChannel(std::move(m));
  }
}

void SimNetwork::PumpTransport() {
  for (Message& m : transport_->PollWire(clock_.now())) {
    if (m.kind == MessageKind::kTransportAck) {
      ++stats_.transport_acks;
      CountMetric("dist.net.transport_acks", 1, {}, "messages");
    } else if (m.retransmit) {
      ++stats_.retransmits;
      CountMetric("dist.net.retransmits", 1, {}, "messages");
    }
    // else: a window-stalled original send draining as the window opened;
    // counted via dist.net.window_drained in SyncTransportStats.
    EnqueueWire(std::move(m));
  }
  SyncTransportStats();
}

StatusOr<bool> SimNetwork::Step() {
  clock_.Advance();
  if (crash_enabled_) {
    EnsureInitialCheckpoints();
    ProcessCrashSchedule();
  }
  if (!delayed_.empty()) ReleaseDelayed();
  if (transport_ != nullptr) PumpTransport();
  if (nonempty_.empty()) {
    // Nothing on the wire. Timeouts run on virtual time, so fast-forward
    // the clock to the next delayed release, shim deadline, or peer
    // restart, if any.
    uint64_t next = 0;
    bool pending = false;
    auto consider = [&next, &pending](uint64_t t) {
      next = pending ? std::min(next, t) : t;
      pending = true;
    };
    if (!delayed_.empty()) consider(delayed_.begin()->first);
    if (transport_ != nullptr) {
      if (auto due = transport_->NextDue(); due.has_value()) consider(*due);
    }
    for (const auto& [peer, at] : down_) consider(at);
    if (!pending) return false;
    clock_.AdvanceTo(next);
    if (crash_enabled_) ProcessCrashSchedule();
    ReleaseDelayed();
    if (transport_ != nullptr) PumpTransport();
    // The injected traffic may itself have been dropped by the fault plan;
    // report progress and let the caller's step budget bound the retries.
    if (nonempty_.empty()) return true;
  }

  size_t pick = rng_.NextBelow(nonempty_.size());
  auto [key, channel] = nonempty_[pick];
  Message message = std::move(channel->front());
  channel->pop_front();
  if (channel->empty()) nonempty_.erase(nonempty_.begin() + pick);

  RecordWireDelivery(message, key);

  // A down peer loses everything the wire hands it: the copies are
  // retransmitted (or superseded by the recovery handshake) after restart.
  if (down_.contains(message.to)) {
    ++stats_.crash_drops;
    CountMetric("dist.net.crash_drops", 1, {}, "messages");
    return true;
  }
  // Wire copies stamped by a previous incarnation of the sender are
  // discarded (the restarted sender re-emits everything that matters
  // under its new epoch).
  if (transport_ != nullptr && transport_->IsStale(message)) {
    ++stats_.stale_epoch_drops;
    CountMetric("dist.net.stale_epoch_drops", 1, {}, "messages");
    return true;
  }
  // Pessimistic message logging: persist the delivery BEFORE any of its
  // effects, so a later crash can replay it deterministically.
  if (crash_enabled_ && peers_.at(message.to)->Restartable()) {
    WalAppend(message.to, message);
  }

  if (transport_ != nullptr) {
    ReliableTransport::Disposition disposition =
        transport_->OnWireDelivery(message, clock_.now());
    SyncTransportStats();
    switch (disposition) {
      case ReliableTransport::Disposition::kControl:
        MaybeCheckpoint(message.to);
        return true;
      case ReliableTransport::Disposition::kDuplicate:
        ++stats_.spurious;
        CountMetric("dist.net.spurious", 1, {}, "messages");
        MaybeCheckpoint(message.to);
        return true;
      case ReliableTransport::Disposition::kDeliverFirst:
        break;  // exactly-once: the peer sees only first deliveries
    }
  }

  // Logical (first-delivery) accounting: only messages a peer consumes.
  ++stats_.messages_delivered;
  if (message.kind == MessageKind::kTuples) {
    stats_.tuples_shipped += message.tuples.size();
    for (const TupleSection& s : message.sections) {
      stats_.tuples_shipped += s.tuples.size();
    }
  } else {
    ++stats_.control_messages;
    if (message.kind == MessageKind::kInstall) {
      stats_.rules_shipped += message.rules.size();
    }
  }
  RecordDelivery(message);

  PeerNode* peer = peers_.at(message.to);
  DQSQ_RETURN_IF_ERROR(peer->OnMessage(message, *this));
  MaybeCheckpoint(message.to);
  return true;
}

std::string SimNetwork::PeerLabel(SymbolId id) const {
  if (namer_) return namer_(id);
  return "peer" + std::to_string(id);
}

void SimNetwork::RecordWireDelivery(const Message& message,
                                    const ChannelKey& channel_key) {
  const size_t bytes = ApproxWireBytes(message);
  ++stats_.wire_messages;
  stats_.wire_bytes += bytes;
  auto& registry = MetricsRegistry::Global();
  if (transport_ != nullptr) {
    // The wire-level series only exists when the shim is engaged; on the
    // shimless lossless default wire == logical and the counters below
    // would be pure duplication (and would perturb the seed-pinned
    // lossless snapshot).
    registry.GetCounter("dist.net.wire_messages", {}, "messages").Increment();
    registry.GetCounter("dist.net.wire_bytes", {}, "bytes").Increment(bytes);
  }
  Counter*& channel = channel_counters_[channel_key];
  if (channel == nullptr) {
    channel = &registry.GetCounter(
        "dist.net.channel_messages",
        {{"from", PeerLabel(channel_key.first)},
         {"to", PeerLabel(channel_key.second)}},
        "messages");
  }
  channel->Increment();
}

void SimNetwork::RecordDelivery(const Message& message) {
  auto& registry = MetricsRegistry::Global();
  registry
      .GetCounter("dist.net.messages_delivered",
                  {{"kind", KindName(message.kind)}}, "messages")
      .Increment();
  registry.GetCounter("dist.net.bytes", {}, "bytes")
      .Increment(ApproxWireBytes(message));
  if (message.kind == MessageKind::kTuples) {
    size_t rows = message.tuples.size();
    for (const TupleSection& s : message.sections) rows += s.tuples.size();
    registry.GetCounter("dist.net.tuples_shipped", {}, "rows")
        .Increment(rows);
  } else if (message.kind == MessageKind::kInstall) {
    registry.GetCounter("dist.net.rules_shipped", {}, "rules")
        .Increment(message.rules.size());
  }
}

void SimNetwork::SyncTransportStats() {
  const TransportStats& t = transport_->stats();
  if (t.sacked > stats_.sacked) {
    CountMetric("dist.net.sacked", t.sacked - stats_.sacked, {}, "messages");
    stats_.sacked = t.sacked;
  }
  if (t.fast_retransmits > stats_.fast_retransmits) {
    CountMetric("dist.net.fast_retransmits",
                t.fast_retransmits - stats_.fast_retransmits, {}, "messages");
    stats_.fast_retransmits = t.fast_retransmits;
  }
  if (t.window_stalls > stats_.window_stalls) {
    CountMetric("dist.net.window_stalls", t.window_stalls -
                stats_.window_stalls, {}, "messages");
    stats_.window_stalls = t.window_stalls;
  }
  if (t.window_drained > stats_.window_drained) {
    CountMetric("dist.net.window_drained",
                t.window_drained - stats_.window_drained, {}, "messages");
    stats_.window_drained = t.window_drained;
  }
  if (t.rtt_samples > stats_.rtt_samples) {
    CountMetric("dist.net.rto_samples", t.rtt_samples - stats_.rtt_samples,
                {}, "samples");
    stats_.rtt_samples = t.rtt_samples;
    MetricsRegistry::Global()
        .GetGauge("dist.net.rto_last", {}, "steps")
        .Set(static_cast<int64_t>(t.last_rto));
  }
}

Status SimNetwork::RunToQuiescence(size_t max_steps) {
  for (size_t i = 0; i < max_steps; ++i) {
    DQSQ_ASSIGN_OR_RETURN(bool delivered, Step());
    if (!delivered) return Status::Ok();
  }
  // The budget may be exhausted by exactly the delivery that reached
  // quiescence; only a network with work left is an error.
  if (Quiescent()) return Status::Ok();
  return ResourceExhaustedError("network did not quiesce within budget");
}

bool SimNetwork::Quiescent() const {
  // A down peer is pending work by definition: its restart will replay,
  // re-handshake and retransmit.
  if (!down_.empty()) return false;
  if (!nonempty_.empty() || !delayed_.empty()) return false;
  return transport_ == nullptr || !transport_->NextDue().has_value();
}

namespace {

std::string SnapKey(SymbolId peer) { return "snap/" + std::to_string(peer); }
std::string WalKey(SymbolId peer) { return "wal/" + std::to_string(peer); }
std::string EpochKey(SymbolId peer) {
  return "epoch/" + std::to_string(peer);
}

}  // namespace

void SimNetwork::EnsureInitialCheckpoints() {
  if (initial_checkpoints_done_) return;
  initial_checkpoints_done_ = true;
  DQSQ_CHECK(transport_ != nullptr)
      << "a crash plan requires the reliable transport";
  for (const auto& [id, peer] : peers_) {
    if (peer->Restartable()) restartable_.push_back(id);
  }
  DQSQ_CHECK(!restartable_.empty())
      << "crash plan scheduled but no peer is restartable";
  for (SymbolId peer : restartable_) CheckpointPeer(peer);
}

void SimNetwork::ProcessCrashSchedule() {
  // Restarts first: a peer down exactly down_for steps comes back before
  // this step's deliveries (and before any fresh crash could target it).
  if (!down_.empty()) {
    std::vector<SymbolId> due;
    for (const auto& [peer, at] : down_) {
      if (at <= clock_.now()) due.push_back(peer);
    }
    for (SymbolId peer : due) RestartPeer(peer);
  }
  const CrashPlan& plan = faults_.crash;
  for (size_t i = 0; i < plan.crash_at_step.size(); ++i) {
    if (fired_.contains(i)) continue;
    const CrashEvent& event = plan.crash_at_step[i];
    if (event.at_step > clock_.now()) continue;
    fired_.insert(i);
    DQSQ_CHECK_LT(event.peer_index, restartable_.size())
        << "crash event targets a nonexistent restartable peer";
    SymbolId peer = restartable_[event.peer_index];
    if (!down_.contains(peer)) CrashPeer(peer);
  }
  for (size_t i = 0; i < plan.migrate_at_step.size(); ++i) {
    if (migrate_fired_.contains(i)) continue;
    const CrashEvent& event = plan.migrate_at_step[i];
    if (event.at_step > clock_.now()) continue;
    migrate_fired_.insert(i);
    DQSQ_CHECK_LT(event.peer_index, restartable_.size())
        << "migrate event targets a nonexistent restartable peer";
    MigratePeer(restartable_[event.peer_index]);
  }
  if (plan.random_crash > 0.0 &&
      random_crashes_fired_ < plan.max_random_crashes &&
      fault_rng_.NextBool(plan.random_crash)) {
    std::vector<SymbolId> alive;
    for (SymbolId peer : restartable_) {
      if (!down_.contains(peer)) alive.push_back(peer);
    }
    if (!alive.empty()) {
      ++random_crashes_fired_;
      CrashPeer(alive[fault_rng_.NextBelow(
          static_cast<uint32_t>(alive.size()))]);
    }
  }
}

void SimNetwork::CrashPeer(SymbolId peer) {
  ++stats_.crashes;
  CountMetric("dist.net.crashes", 1, {{"peer", PeerLabel(peer)}}, "crashes");
  // The peer loses its volatile state; the transport's view of its
  // channels is frozen (not wiped) — it is the god's-eye reference the
  // snapshot+WAL reconstruction is CHECKed against at restart, and it
  // keeps Seen()/AllPayloadDelivered() truthful while the peer is down.
  peers_.at(peer)->Crash();
  transport_->SetPeerDown(peer, true);
  down_[peer] = clock_.now() + faults_.crash.down_for;
}

void SimNetwork::RestartPeer(SymbolId peer) {
  // The frozen pre-crash transport state is, by construction, exactly what
  // snapshot + write-ahead-log replay must reproduce. Capture its
  // canonical image before wiping it.
  std::string frozen_image = transport_->ProtocolImage(peer);
  RecoverPeer(peer, frozen_image);
  ++stats_.restarts;
  CountMetric("dist.net.restarts", 1, {{"peer", PeerLabel(peer)}},
              "restarts");
}

void SimNetwork::MigratePeer(SymbolId peer) {
  DQSQ_CHECK(migration_factory_)
      << "MigratePeer requires a migration factory (SetMigrationFactory)";
  DQSQ_CHECK(transport_ != nullptr)
      << "live migration requires the reliable transport";
  DQSQ_CHECK(crash_enabled_)
      << "live migration requires an active crash plan (the WAL and "
         "checkpoint cadence it hands off through only run then)";
  DQSQ_CHECK(peers_.at(peer)->Restartable())
      << "migration target is not restartable";
  EnsureInitialCheckpoints();
  // The frozen transport channels are the reference the new owner's
  // reconstruction is CHECKed against — capture before fencing.
  std::string frozen_image = transport_->ProtocolImage(peer);
  if (!down_.contains(peer)) {
    // Fence the old owner: wipe its volatile state so it can never process
    // another delivery (a delivery reaching it would CHECK-fail), and
    // freeze its transport channels. The epoch bump inside RecoverPeer
    // invalidates any wire copy the old incarnation still has in flight;
    // the kTransportHello re-handshake announces the new owner.
    peers_.at(peer)->Crash();
    transport_->SetPeerDown(peer, true);
    down_[peer] = clock_.now();  // transiently down; recovered below
  }
  PeerNode* replacement = migration_factory_(peer);
  DQSQ_CHECK(replacement != nullptr) << "migration factory returned null";
  peers_[peer] = replacement;
  RecoverPeer(peer, frozen_image);
  ++stats_.migrations;
  CountMetric("dist.shard.migrations", 1, {{"peer", PeerLabel(peer)}},
              "migrations");
}

void SimNetwork::RecoverPeer(SymbolId peer, const std::string& frozen_image) {
  auto blob = store_.Get(SnapKey(peer));
  DQSQ_CHECK(blob.has_value()) << "no snapshot for restarting peer " << peer;
  PeerSnapshot snap = DeserializePeerSnapshot(*blob);
  DQSQ_CHECK_EQ(snap.peer, peer);

  // The new incarnation must exceed every epoch this peer has ever run
  // in. The epoch is persisted under its own key so it survives even a
  // crash that outruns the snapshot cadence.
  uint64_t stored_epoch = 0;
  if (auto e = store_.Get(EpochKey(peer)); e.has_value()) {
    SnapshotReader r(*e);
    stored_epoch = r.U64();
  }
  uint64_t new_epoch = std::max(snap.epoch, stored_epoch) + 1;
  {
    SnapshotWriter w;
    w.U64(new_epoch);
    store_.Put(EpochKey(peer), w.Take());
  }

  transport_->RestorePeer(snap, new_epoch, clock_.now());
  peers_.at(peer)->RestoreState(snap.peer_state);
  down_.erase(peer);
  transport_->SetPeerDown(peer, false);

  // Replay the deliveries logged after the snapshot, in order. The peer's
  // handlers re-issue their sends; Send() suppresses the wire but lets the
  // transport re-stamp them, regenerating the pre-crash sequence numbers.
  replaying_ = true;
  transport_->set_replaying(true);
  for (const std::string& record : store_.ReadLog(WalKey(peer))) {
    SnapshotReader r(record);
    Message m = DecodeMessage(r);
    ReliableTransport::Disposition disposition =
        transport_->OnWireDelivery(m, clock_.now());
    if (disposition == ReliableTransport::Disposition::kDeliverFirst) {
      // The original processing succeeded; deterministic replay must too.
      DQSQ_CHECK_OK(peers_.at(peer)->OnMessage(m, *this));
    }
  }
  transport_->set_replaying(false);
  replaying_ = false;

  // Determinism is the load-bearing wall of this recovery scheme (replay
  // regenerates the exact messages whose originals may still be acked or
  // delivered): verify the reconstruction matches the frozen truth.
  DQSQ_CHECK(transport_->ProtocolImage(peer) == frozen_image)
      << "snapshot + WAL replay diverged from the pre-crash state of peer "
      << peer << " (nondeterministic replay)";

  CheckpointPeer(peer);

  // Epoch re-handshake: announce the new incarnation and the restored
  // resume points. Hellos travel the faulty wire unreliably — a lost one
  // self-heals because every subsequent emission re-stamps the epoch.
  for (Message& hello : transport_->MakeHellos(peer, clock_.now())) {
    EnqueueWire(std::move(hello));
  }
}

void SimNetwork::CheckpointPeer(SymbolId peer) {
  PeerSnapshot snap;
  transport_->ExportPeer(peer, &snap);
  snap.peer_state = peers_.at(peer)->SaveState();
  std::string bytes = SerializePeerSnapshot(snap);
  stats_.snapshot_bytes += bytes.size();
  CountMetric("dist.net.snapshot_bytes", bytes.size(),
              {{"peer", PeerLabel(peer)}}, "bytes");
  store_.Put(SnapKey(peer), std::move(bytes));
  store_.TruncateLog(WalKey(peer));
  wal_len_[peer] = 0;
}

void SimNetwork::WalAppend(SymbolId peer, const Message& message) {
  SnapshotWriter w;
  EncodeMessage(message, w);
  store_.Append(WalKey(peer), w.Take());
  ++wal_len_[peer];
  ++stats_.wal_records;
  CountMetric("dist.net.wal_records", 1, {}, "records");
}

void SimNetwork::MaybeCheckpoint(SymbolId peer) {
  if (!crash_enabled_) return;
  auto it = wal_len_.find(peer);
  if (it == wal_len_.end() || it->second < faults_.crash.checkpoint_every) {
    return;
  }
  CheckpointPeer(peer);
}

void SimNetwork::RestoreDownPeers() {
  while (!down_.empty()) RestartPeer(down_.begin()->first);
}

bool SimNetwork::LogicallyQuiescent() const {
  if (transport_ == nullptr) return Quiescent();
  auto undelivered = [&](const Message& m) {
    return m.kind != MessageKind::kTransportAck &&
           m.kind != MessageKind::kTransportHello &&
           !transport_->Seen({m.from, m.to}, m.seq);
  };
  for (const auto& [key, channel] : channels_) {
    for (const Message& m : channel) {
      if (undelivered(m)) return false;
    }
  }
  for (const auto& [release, m] : delayed_) {
    if (undelivered(m)) return false;
  }
  return transport_->AllPayloadDelivered();
}

}  // namespace dqsq::dist
