// Cross-process wire format for dDatalog peer messages.
//
// Two layers:
//
//  * A *symbolic* message codec. The in-process snapshot codec
//    (dist/snapshot.h) persists raw SymbolId / PredicateId / TermId values,
//    which are only meaningful inside the DatalogContext that interned
//    them. Across OS processes no such shared arena exists, so the wire
//    codec encodes every identifier by name — peers, predicates (with
//    arity), constants and function terms (recursively) — and the decoder
//    re-interns them into the receiving context. Two processes that parsed
//    different fragments of the same program therefore exchange messages
//    that mean the same thing, regardless of interning order.
//
//  * Length-prefixed *framing* over a byte stream (TCP). Each frame is
//      magic(4) | type(1) | payload_len(4) | fnv1a(payload)(4) | payload
//    little-endian. FrameDecoder consumes an arbitrary chunking of the
//    stream and yields complete frames; a bad magic, an oversized length
//    or a checksum mismatch is reported as a Status error (the connection
//    is poisoned — a byte stream that lost sync cannot be resynchronized).
//
// Trust model: frames are integrity-checked (length bound + checksum)
// before the payload decoder runs, so framing survives line noise and
// truncated peers; the payload decoder itself assumes a well-formed
// payload from a cooperating peer and CHECK-fails on structural garbage,
// exactly like the snapshot codec it mirrors.
#ifndef DQSQ_DIST_WIRE_CODEC_H_
#define DQSQ_DIST_WIRE_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "datalog/ast.h"
#include "dist/message.h"
#include "dist/snapshot.h"

namespace dqsq::dist {

// ---- Symbolic payload codec ----------------------------------------------

/// Encodes `m` so any process can decode it: identifiers travel as names.
/// The transport envelope (seq/ack/sack/retransmit/epoch) is carried
/// verbatim, so a reliability shim or the crash machinery can run over
/// this codec unchanged.
std::string EncodeWireMessage(const Message& m, const DatalogContext& ctx);

/// Decodes an EncodeWireMessage payload, interning every name into `ctx`.
Message DecodeWireMessage(std::string_view payload, DatalogContext& ctx);

/// Symbolic term codec, exposed for report payloads and tests.
void EncodeWireTerm(TermId term, const DatalogContext& ctx, SnapshotWriter& w);
TermId DecodeWireTerm(SnapshotReader& r, DatalogContext& ctx);

// ---- Framing -------------------------------------------------------------

/// Frame type tags. kPeerMessage carries an EncodeWireMessage payload; the
/// rest form the cluster control plane (dist/cluster_main.cc): bootstrap
/// hellos, the supervisor's start/report/shutdown requests and their
/// replies. Payload schemas for control frames are owned by cluster_main.
enum class FrameType : uint8_t {
  kHello = 1,          // peer process -> supervisor: name, listen address
  kStart = 2,          // supervisor -> peer: address book + peer assignment
  kPeerMessage = 3,    // a framed dDatalog Message
  kReportRequest = 4,  // supervisor -> peer: send answers/stats/metrics
  kReportReply = 5,    // peer -> supervisor
  kShutdown = 6,       // supervisor -> peer: exit cleanly
};

inline constexpr uint32_t kFrameMagic = 0x46'57'51'44;  // "DQWF" on the wire
inline constexpr size_t kFrameHeaderBytes = 13;
/// Hard payload bound: a length beyond this is stream desync, not data.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// FNV-1a over the payload (framing checksum; not cryptographic).
uint32_t WireChecksum(std::string_view payload);

/// One complete frame: header + payload, ready to write to a stream.
std::string EncodeFrame(FrameType type, std::string_view payload);

struct Frame {
  FrameType type;
  std::string payload;
};

/// Incremental frame parser. Feed() raw bytes in any chunking; Next()
/// yields frames in order, std::nullopt when more bytes are needed, or a
/// Status error on a corrupt stream (bad magic / oversized length /
/// checksum mismatch / unknown type). After an error the decoder is
/// poisoned: every further Next() returns the same error and the caller
/// must drop the connection.
class FrameDecoder {
 public:
  void Feed(std::string_view bytes);

  StatusOr<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already parsed
  std::optional<Status> poisoned_;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_WIRE_CODEC_H_
