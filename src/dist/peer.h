// A dDatalog peer: hosts the rules whose heads live at this peer (paper
// §3), evaluates installed rules over its local database to a fixpoint
// whenever new information arrives, and ships derived tuples whose head
// relation is owned elsewhere. Two demand protocols run over the same
// machinery:
//
//  * distributed naive evaluation (§3.1): activation requests propagate
//    through rule bodies; remote body relations are subscribed to and
//    replicated locally, so every rule joins over local data;
//  * dQSQ (§3.2): subquery requests carry a call pattern (R, adornment);
//    the peer rewrites ITS OWN rules for that pattern — only local
//    knowledge is needed — keeps the rewritten rules whose bodies are
//    local, and ships each remainder rule to the peer owning its body
//    (rule (†) of the paper). Binding flow (in_ relations) and answers then
//    move as ordinary tuples.
#ifndef DQSQ_DIST_PEER_H_
#define DQSQ_DIST_PEER_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "datalog/adornment.h"
#include "datalog/database.h"
#include "datalog/eval.h"
#include "dist/network.h"
#include "dist/shard.h"
#include "dist/termination.h"

namespace dqsq::dist {

// Sharded operation (dist/shard.h): a DatalogPeer may be one of K worker
// shards of a logical peer. Ownership is decided against the LOGICAL id —
// every shard accepts the whole group's relations — while the data is
// split by tuple hash: each shard keeps, next to the full replica of an
// owned relation R, a shadow partition own$R holding exactly the rows it
// hash-owns. Rules are installed on every shard with their pivot body atom
// (the first locally-owned one) redirected to its own$ shadow, so the
// group's fixpoints partition the join work without rewriting the program.
// Rows a shard derives for a relation it does not hash-own are exchanged
// to the owning sibling after each fixpoint; rows landing in own$R are
// broadcast to the siblings as shard_replica tuples, keeping every replica
// complete. With K=1 none of this machinery engages and the peer is
// byte-identical to the unsharded implementation.
class DatalogPeer : public PeerNode {
 public:
  /// `router` may be null (unsharded). When given, `id` may be a shard id;
  /// ownership tests use router->LogicalOf(id).
  DatalogPeer(SymbolId id, DatalogContext* ctx, EvalOptions eval_options,
              const ShardRouter* router = nullptr,
              const WireBatchOptions& batch = {});

  SymbolId id() const { return id_; }
  /// The logical peer this shard belongs to (== id() when unsharded).
  SymbolId logical_id() const { return logical_id_; }
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// Installs a rule for evaluation (setup time or via kInstall). The
  /// rule's head must be owned by this peer OR its body must be local.
  void InstallRule(const Rule& rule);

  /// Installs a source rule: input to demand-driven rewriting (dQSQ) but
  /// never evaluated directly. dnaive installs rules with InstallRule;
  /// dQSQ peers hold their original rules here and evaluate only the
  /// rewritten ones.
  void InstallSourceRule(const Rule& rule);

  /// Adds a local extensional fact.
  void AddFact(const RelId& rel, std::span<const TermId> tuple);

  Status OnMessage(const Message& message, Network& network) override;

  // Crash-restart hooks (dist/snapshot.h): a DatalogPeer serializes its
  // complete volatile state — materialized relations, installed and
  // source rules, activation/subscription/ship-watermark/replica/rewrite
  // bookkeeping, and its Dijkstra–Scholten engagement — so SimNetwork can
  // checkpoint and reconstruct it after an injected crash.
  bool Restartable() const override { return true; }
  std::string SaveState() const override;
  void RestoreState(const std::string& state) override;
  void Crash() override;

  /// Dijkstra–Scholten state (peers start passive and unengaged; the
  /// driver is the diffusing computation's root).
  const DsNode& ds() const { return ds_; }

  /// Entry point used by drivers: activate `rel` here (dnaive).
  Status Activate(const RelId& rel, SymbolId subscriber, bool has_subscriber,
                  Network& network);

  /// Entry point used by drivers: process a subquery (dQSQ).
  Status OnSubquery(const RelId& rel, const Adornment& adornment,
                    Network& network);

  /// Runs the local fixpoint and ships what must move. Drivers call this
  /// once after seeding facts.
  Status RunFixpointAndFlush(Network& network);

  size_t num_installed_rules() const { return program_.rules.size(); }

 private:
  struct RelKeyLess {
    bool operator()(const RelId& a, const RelId& b) const {
      return a.pred != b.pred ? a.pred < b.pred : a.peer < b.peer;
    }
  };

  /// Rows of `rel` not yet shipped to `target` are sent as kTuples.
  void FlushRelationTo(const RelId& rel, SymbolId target,
                       Network& network);

  /// Sends a basic (non-ack) message, bumping the DS deficit.
  void SendBasic(Message message, Network& network);

  /// Sends an acknowledgment to `target`.
  void SendAck(SymbolId target, Network& network);

  /// Disengages (acking the tree parent) when passive with deficit 0.
  void MaybeDisengage(Network& network);

  /// Handles one basic message (kAck is handled by OnMessage).
  Status Dispatch(const Message& message, Network& network);

  /// Inserts one kTuples payload (or section), applying the sharded
  /// ownership cases: shard_replica → replica only; primary owned →
  /// replica + own$ claim; remote-owned → replica + received_ marking.
  void IngestTuples(const RelId& rel, const std::vector<Tuple>& tuples,
                    bool shard_replica);

  /// True iff this peer has a source or evaluated rule whose head is
  /// `rel` (source rules take precedence for rewriting decisions).
  bool HasRulesFor(const RelId& rel) const;

  /// Rewrites this peer's rules for the call pattern and distributes the
  /// results (kInstall for remote bodies, recursive handling for local
  /// subqueries, kSubquery for remote ones).
  Status RewriteForPattern(const RelId& rel, const Adornment& adornment,
                           Network& network);

  // ---- Sharding (no-ops when sharded_ is false) ---------------------------

  /// True iff this peer runs as one of K>1 shards of its logical peer.
  bool sharded() const { return sharded_; }
  /// The own$ shadow of owned relation `rel` (interning "own$<name>").
  RelId OwnShadow(const RelId& rel) const;
  /// True iff `rel` is an own$ shadow partition.
  bool IsOwnShadow(const RelId& rel) const;
  /// The base relation of an own$ shadow (inverse of OwnShadow).
  RelId ShadowBase(const RelId& shadow) const;
  /// Group siblings of this shard (excluding itself).
  std::vector<SymbolId> Siblings() const;
  /// Hash-routes owned rows appended since the last pass: rows this shard
  /// hash-owns land in their own$ shadow, others ship to the owning
  /// sibling as primary kTuples. Returns true iff a local own$ shadow
  /// gained rows (the fixpoint must then re-run — the pivot-redirected
  /// rules may fire on them).
  bool ExchangeOwnedRows(Network& network);
  /// Broadcasts new own$ rows to every sibling as shard_replica kTuples.
  void FlushOwnPartitions(Network& network);
  /// Streams new rows of own$`rel` (labeled `rel`) to `target` — the
  /// sharded subscriber flush: each shard ships only its partition, the
  /// subscriber receives the union.
  void FlushOwnPartitionTo(const RelId& rel, SymbolId target,
                           Network& network);
  /// Hash-partitions new rows of remote-owned `rel` across the owner's
  /// shard group (collapses to FlushRelationTo at group size 1).
  void FlushRemoteSharded(const RelId& rel, Network& network);
  /// Sends `m` to every shard of the logical peer `m.to` (control-plane
  /// broadcast); plain Send when the target is unsharded.
  void SendBasicToGroup(Message m, Network& network);

  // ---- Wire batching (engaged only when batch_.enable) --------------------

  struct OutboxEntry {
    SymbolId target;
    RelId rel;
    std::vector<Tuple> tuples;
    bool shard_replica = false;
  };
  /// Queues or immediately sends one kTuples flush depending on batch_.
  void EmitTuples(SymbolId target, const RelId& rel,
                  std::vector<Tuple> tuples, bool shard_replica,
                  Network& network);
  /// Packs queued flushes per target into section-batched messages,
  /// splitting payloads above batch_.max_bytes. Called at the end of every
  /// RunFixpointAndFlush.
  void DrainOutbox(Network& network);

  SymbolId id_;
  SymbolId logical_id_;
  const ShardRouter* router_;
  bool sharded_ = false;
  WireBatchOptions batch_;
  DatalogContext* ctx_;
  DsNode ds_{/*is_root=*/false};
  EvalOptions eval_options_;
  Database db_;
  Program program_;         // evaluated every fixpoint
  Program source_rules_;    // rewriting input only (dQSQ)

  std::set<RelId, RelKeyLess> active_;
  std::map<RelId, std::set<SymbolId>, RelKeyLess> subscribers_;
  // Ship watermark per (relation, target peer): rows below it were sent.
  std::map<std::pair<RelId, SymbolId>,
           size_t,
           bool (*)(const std::pair<RelId, SymbolId>&,
                    const std::pair<RelId, SymbolId>&)>
      shipped_{[](const std::pair<RelId, SymbolId>& a,
                  const std::pair<RelId, SymbolId>& b) {
        if (a.first.pred != b.first.pred) return a.first.pred < b.first.pred;
        if (a.first.peer != b.first.peer) return a.first.peer < b.first.peer;
        return a.second < b.second;
      }};
  // Rows of remote-owned relations that were received (replicas) rather
  // than derived — never shipped back to the owner.
  std::map<RelId, std::set<Tuple>, RelKeyLess> received_;
  // Call patterns already rewritten (pred + adornment; "the same machinery
  // is reused" for repeated requests).
  std::set<std::pair<PredicateId, Adornment>> rewritten_;
  // ---- Sharded-only bookkeeping (empty, and not serialized, at K=1) ------
  // Owned rows received as shard_replica broadcasts: complete replicas
  // that this shard does not hash-own and must never re-exchange.
  std::map<RelId, std::set<Tuple>, RelKeyLess> received_replica_;
  // Exchange watermark per owned relation: rows below it were hash-routed.
  std::map<RelId, size_t, RelKeyLess> exchanged_;
  // Encoded kInstall rules already installed — the same remainder arrives
  // once per rewriting sibling shard; duplicates are dropped.
  std::set<std::string> installed_keys_;
  // Pending batched kTuples flushes (wire batching; always drained before
  // OnMessage returns, so never serialized).
  std::vector<OutboxEntry> outbox_;
  // Set by Crash(), cleared by RestoreState(): a crashed peer must not
  // process messages (the network drops deliveries to down peers — a
  // delivery reaching a crashed peer is a simulator bug).
  bool crashed_ = false;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_PEER_H_
