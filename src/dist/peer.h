// A dDatalog peer: hosts the rules whose heads live at this peer (paper
// §3), evaluates installed rules over its local database to a fixpoint
// whenever new information arrives, and ships derived tuples whose head
// relation is owned elsewhere. Two demand protocols run over the same
// machinery:
//
//  * distributed naive evaluation (§3.1): activation requests propagate
//    through rule bodies; remote body relations are subscribed to and
//    replicated locally, so every rule joins over local data;
//  * dQSQ (§3.2): subquery requests carry a call pattern (R, adornment);
//    the peer rewrites ITS OWN rules for that pattern — only local
//    knowledge is needed — keeps the rewritten rules whose bodies are
//    local, and ships each remainder rule to the peer owning its body
//    (rule (†) of the paper). Binding flow (in_ relations) and answers then
//    move as ordinary tuples.
#ifndef DQSQ_DIST_PEER_H_
#define DQSQ_DIST_PEER_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "datalog/adornment.h"
#include "datalog/database.h"
#include "datalog/eval.h"
#include "dist/network.h"
#include "dist/termination.h"

namespace dqsq::dist {

class DatalogPeer : public PeerNode {
 public:
  DatalogPeer(SymbolId id, DatalogContext* ctx, EvalOptions eval_options);

  SymbolId id() const { return id_; }
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// Installs a rule for evaluation (setup time or via kInstall). The
  /// rule's head must be owned by this peer OR its body must be local.
  void InstallRule(const Rule& rule);

  /// Installs a source rule: input to demand-driven rewriting (dQSQ) but
  /// never evaluated directly. dnaive installs rules with InstallRule;
  /// dQSQ peers hold their original rules here and evaluate only the
  /// rewritten ones.
  void InstallSourceRule(const Rule& rule);

  /// Adds a local extensional fact.
  void AddFact(const RelId& rel, std::span<const TermId> tuple);

  Status OnMessage(const Message& message, Network& network) override;

  // Crash-restart hooks (dist/snapshot.h): a DatalogPeer serializes its
  // complete volatile state — materialized relations, installed and
  // source rules, activation/subscription/ship-watermark/replica/rewrite
  // bookkeeping, and its Dijkstra–Scholten engagement — so SimNetwork can
  // checkpoint and reconstruct it after an injected crash.
  bool Restartable() const override { return true; }
  std::string SaveState() const override;
  void RestoreState(const std::string& state) override;
  void Crash() override;

  /// Dijkstra–Scholten state (peers start passive and unengaged; the
  /// driver is the diffusing computation's root).
  const DsNode& ds() const { return ds_; }

  /// Entry point used by drivers: activate `rel` here (dnaive).
  Status Activate(const RelId& rel, SymbolId subscriber, bool has_subscriber,
                  Network& network);

  /// Entry point used by drivers: process a subquery (dQSQ).
  Status OnSubquery(const RelId& rel, const Adornment& adornment,
                    Network& network);

  /// Runs the local fixpoint and ships what must move. Drivers call this
  /// once after seeding facts.
  Status RunFixpointAndFlush(Network& network);

  size_t num_installed_rules() const { return program_.rules.size(); }

 private:
  struct RelKeyLess {
    bool operator()(const RelId& a, const RelId& b) const {
      return a.pred != b.pred ? a.pred < b.pred : a.peer < b.peer;
    }
  };

  /// Rows of `rel` not yet shipped to `target` are sent as kTuples.
  void FlushRelationTo(const RelId& rel, SymbolId target,
                       Network& network);

  /// Sends a basic (non-ack) message, bumping the DS deficit.
  void SendBasic(Message message, Network& network);

  /// Sends an acknowledgment to `target`.
  void SendAck(SymbolId target, Network& network);

  /// Disengages (acking the tree parent) when passive with deficit 0.
  void MaybeDisengage(Network& network);

  /// Handles one basic message (kAck is handled by OnMessage).
  Status Dispatch(const Message& message, Network& network);

  /// True iff this peer has a source or evaluated rule whose head is
  /// `rel` (source rules take precedence for rewriting decisions).
  bool HasRulesFor(const RelId& rel) const;

  /// Rewrites this peer's rules for the call pattern and distributes the
  /// results (kInstall for remote bodies, recursive handling for local
  /// subqueries, kSubquery for remote ones).
  Status RewriteForPattern(const RelId& rel, const Adornment& adornment,
                           Network& network);

  SymbolId id_;
  DatalogContext* ctx_;
  DsNode ds_{/*is_root=*/false};
  EvalOptions eval_options_;
  Database db_;
  Program program_;         // evaluated every fixpoint
  Program source_rules_;    // rewriting input only (dQSQ)

  std::set<RelId, RelKeyLess> active_;
  std::map<RelId, std::set<SymbolId>, RelKeyLess> subscribers_;
  // Ship watermark per (relation, target peer): rows below it were sent.
  std::map<std::pair<RelId, SymbolId>,
           size_t,
           bool (*)(const std::pair<RelId, SymbolId>&,
                    const std::pair<RelId, SymbolId>&)>
      shipped_{[](const std::pair<RelId, SymbolId>& a,
                  const std::pair<RelId, SymbolId>& b) {
        if (a.first.pred != b.first.pred) return a.first.pred < b.first.pred;
        if (a.first.peer != b.first.peer) return a.first.peer < b.first.peer;
        return a.second < b.second;
      }};
  // Rows of remote-owned relations that were received (replicas) rather
  // than derived — never shipped back to the owner.
  std::map<RelId, std::set<Tuple>, RelKeyLess> received_;
  // Call patterns already rewritten (pred + adornment; "the same machinery
  // is reused" for repeated requests).
  std::set<std::pair<PredicateId, Adornment>> rewritten_;
  // Set by Crash(), cleared by RestoreState(): a crashed peer must not
  // process messages (the network drops deliveries to down peers — a
  // delivery reaching a crashed peer is a simulator bug).
  bool crashed_ = false;
};

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_PEER_H_
