#include "dist/snapshot.h"

#include <utility>

#include "common/logging.h"

namespace dqsq::dist {

void SnapshotWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::Str(std::string_view s) {
  U64(s.size());
  out_.append(s.data(), s.size());
}

uint8_t SnapshotReader::U8() {
  DQSQ_CHECK_LT(pos_, in_.size()) << "truncated snapshot";
  return static_cast<uint8_t>(in_[pos_++]);
}

uint32_t SnapshotReader::U32() {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(U8()) << (8 * i);
  return v;
}

uint64_t SnapshotReader::U64() {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(U8()) << (8 * i);
  return v;
}

std::string SnapshotReader::Str() {
  uint64_t n = U64();
  DQSQ_CHECK_LE(pos_ + n, in_.size()) << "truncated snapshot";
  std::string s(in_.substr(pos_, n));
  pos_ += n;
  return s;
}

void EncodePattern(const Pattern& p, SnapshotWriter& w) {
  w.U8(static_cast<uint8_t>(p.kind()));
  switch (p.kind()) {
    case Pattern::Kind::kVar:
      w.U32(p.var());
      break;
    case Pattern::Kind::kConst:
      w.U32(p.symbol());
      break;
    case Pattern::Kind::kApp:
      w.U32(p.symbol());
      w.U64(p.args().size());
      for (const Pattern& a : p.args()) EncodePattern(a, w);
      break;
  }
}

Pattern DecodePattern(SnapshotReader& r) {
  auto kind = static_cast<Pattern::Kind>(r.U8());
  switch (kind) {
    case Pattern::Kind::kVar:
      return Pattern::Var(r.U32());
    case Pattern::Kind::kConst:
      return Pattern::Const(r.U32());
    case Pattern::Kind::kApp: {
      SymbolId fn = r.U32();
      uint64_t n = r.U64();
      std::vector<Pattern> args;
      args.reserve(n);
      for (uint64_t i = 0; i < n; ++i) args.push_back(DecodePattern(r));
      return Pattern::App(fn, std::move(args));
    }
  }
  DQSQ_CHECK(false) << "corrupt pattern kind in snapshot";
  return Pattern::Const(0);
}

namespace {

void EncodeAtom(const Atom& atom, SnapshotWriter& w) {
  w.U32(atom.rel.pred);
  w.U32(atom.rel.peer);
  w.U64(atom.args.size());
  for (const Pattern& p : atom.args) EncodePattern(p, w);
}

Atom DecodeAtom(SnapshotReader& r) {
  Atom atom;
  atom.rel.pred = r.U32();
  atom.rel.peer = r.U32();
  uint64_t n = r.U64();
  atom.args.reserve(n);
  for (uint64_t i = 0; i < n; ++i) atom.args.push_back(DecodePattern(r));
  return atom;
}

void EncodeTuple(const Tuple& t, SnapshotWriter& w) {
  w.U64(t.size());
  for (TermId id : t) w.U32(id);
}

Tuple DecodeTuple(SnapshotReader& r) {
  uint64_t n = r.U64();
  Tuple t;
  t.reserve(n);
  for (uint64_t i = 0; i < n; ++i) t.push_back(r.U32());
  return t;
}

}  // namespace

void EncodeRule(const Rule& rule, SnapshotWriter& w) {
  EncodeAtom(rule.head, w);
  w.U64(rule.body.size());
  for (const Atom& a : rule.body) EncodeAtom(a, w);
  w.U64(rule.negative.size());
  for (const Atom& a : rule.negative) EncodeAtom(a, w);
  w.U64(rule.diseqs.size());
  for (const Diseq& d : rule.diseqs) {
    EncodePattern(d.lhs, w);
    EncodePattern(d.rhs, w);
  }
  w.U32(rule.num_vars);
  w.U64(rule.var_names.size());
  for (const std::string& name : rule.var_names) w.Str(name);
}

Rule DecodeRule(SnapshotReader& r) {
  Rule rule;
  rule.head = DecodeAtom(r);
  uint64_t n = r.U64();
  rule.body.reserve(n);
  for (uint64_t i = 0; i < n; ++i) rule.body.push_back(DecodeAtom(r));
  n = r.U64();
  rule.negative.reserve(n);
  for (uint64_t i = 0; i < n; ++i) rule.negative.push_back(DecodeAtom(r));
  n = r.U64();
  rule.diseqs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Diseq d;
    d.lhs = DecodePattern(r);
    d.rhs = DecodePattern(r);
    rule.diseqs.push_back(std::move(d));
  }
  rule.num_vars = r.U32();
  n = r.U64();
  rule.var_names.reserve(n);
  for (uint64_t i = 0; i < n; ++i) rule.var_names.push_back(r.Str());
  return rule;
}

void EncodeMessage(const Message& m, SnapshotWriter& w) {
  w.U8(static_cast<uint8_t>(m.kind));
  w.U32(m.from);
  w.U32(m.to);
  w.U32(m.rel.pred);
  w.U32(m.rel.peer);
  w.U64(m.tuples.size());
  for (const Tuple& t : m.tuples) EncodeTuple(t, w);
  w.U32(m.subscriber);
  w.U64(m.adornment.size());
  for (bool b : m.adornment) w.Bool(b);
  w.U64(m.rules.size());
  for (const Rule& rule : m.rules) EncodeRule(rule, w);
  w.U64(m.seq);
  w.U64(m.ack);
  w.U64(m.sack.size());
  for (const SackBlock& s : m.sack) {
    w.U64(s.first);
    w.U64(s.last);
  }
  // Flags byte (was a plain retransmit Bool): bit0 = retransmit, bit1 =
  // shard_replica, bit2 = batched sections follow. With sharding and
  // batching off every bit above 0 is clear, so the encoding — and the
  // pinned snapshot_bytes baselines — are byte-identical to the
  // pre-sharding codec.
  uint8_t flags = 0;
  if (m.retransmit) flags |= 1;
  if (m.shard_replica) flags |= 2;
  if (!m.sections.empty()) flags |= 4;
  w.U8(flags);
  w.U64(m.epoch);
  if (!m.sections.empty()) {
    w.U64(m.sections.size());
    for (const TupleSection& s : m.sections) {
      w.U32(s.rel.pred);
      w.U32(s.rel.peer);
      w.U64(s.tuples.size());
      for (const Tuple& t : s.tuples) EncodeTuple(t, w);
    }
  }
}

Message DecodeMessage(SnapshotReader& r) {
  Message m;
  m.kind = static_cast<MessageKind>(r.U8());
  m.from = r.U32();
  m.to = r.U32();
  m.rel.pred = r.U32();
  m.rel.peer = r.U32();
  uint64_t n = r.U64();
  m.tuples.reserve(n);
  for (uint64_t i = 0; i < n; ++i) m.tuples.push_back(DecodeTuple(r));
  m.subscriber = r.U32();
  n = r.U64();
  m.adornment.reserve(n);
  for (uint64_t i = 0; i < n; ++i) m.adornment.push_back(r.Bool());
  n = r.U64();
  m.rules.reserve(n);
  for (uint64_t i = 0; i < n; ++i) m.rules.push_back(DecodeRule(r));
  m.seq = r.U64();
  m.ack = r.U64();
  n = r.U64();
  m.sack.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SackBlock s;
    s.first = r.U64();
    s.last = r.U64();
    m.sack.push_back(s);
  }
  uint8_t flags = r.U8();
  m.retransmit = (flags & 1) != 0;
  m.shard_replica = (flags & 2) != 0;
  m.epoch = r.U64();
  if ((flags & 4) != 0) {
    uint64_t sections = r.U64();
    m.sections.reserve(sections);
    for (uint64_t i = 0; i < sections; ++i) {
      TupleSection s;
      s.rel.pred = r.U32();
      s.rel.peer = r.U32();
      uint64_t rows = r.U64();
      s.tuples.reserve(rows);
      for (uint64_t j = 0; j < rows; ++j) s.tuples.push_back(DecodeTuple(r));
      m.sections.push_back(std::move(s));
    }
  }
  return m;
}

std::string SerializePeerSnapshot(const PeerSnapshot& snap) {
  SnapshotWriter w;
  w.U32(snap.peer);
  w.U64(snap.epoch);
  w.U64(snap.senders.size());
  for (const ChannelSenderState& s : snap.senders) {
    w.U32(s.to);
    w.U64(s.next_seq);
    w.U64(s.unacked.size());
    for (const Message& m : s.unacked) EncodeMessage(m, w);
    w.U64(s.pending.size());
    for (const Message& m : s.pending) EncodeMessage(m, w);
  }
  w.U64(snap.receivers.size());
  for (const ChannelReceiverState& r : snap.receivers) {
    w.U32(r.from);
    w.U64(r.cum);
    w.U64(r.out_of_order.size());
    for (uint64_t seq : r.out_of_order) w.U64(seq);
  }
  w.Str(snap.peer_state);
  return w.Take();
}

PeerSnapshot DeserializePeerSnapshot(std::string_view bytes) {
  SnapshotReader r(bytes);
  PeerSnapshot snap;
  snap.peer = r.U32();
  snap.epoch = r.U64();
  uint64_t n = r.U64();
  snap.senders.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ChannelSenderState s;
    s.to = r.U32();
    s.next_seq = r.U64();
    uint64_t k = r.U64();
    s.unacked.reserve(k);
    for (uint64_t j = 0; j < k; ++j) s.unacked.push_back(DecodeMessage(r));
    k = r.U64();
    s.pending.reserve(k);
    for (uint64_t j = 0; j < k; ++j) s.pending.push_back(DecodeMessage(r));
    snap.senders.push_back(std::move(s));
  }
  n = r.U64();
  snap.receivers.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ChannelReceiverState recv;
    recv.from = r.U32();
    recv.cum = r.U64();
    uint64_t k = r.U64();
    recv.out_of_order.reserve(k);
    for (uint64_t j = 0; j < k; ++j) recv.out_of_order.push_back(r.U64());
    snap.receivers.push_back(std::move(recv));
  }
  snap.peer_state = r.Str();
  DQSQ_CHECK(r.AtEnd()) << "trailing bytes after snapshot";
  return snap;
}

const std::vector<std::string> InMemoryDurableStore::kEmptyLog;

void InMemoryDurableStore::Put(const std::string& key, std::string value) {
  bytes_written_ += value.size();
  blobs_[key] = std::move(value);
}

std::optional<std::string> InMemoryDurableStore::Get(
    const std::string& key) const {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

void InMemoryDurableStore::Append(const std::string& key,
                                  std::string record) {
  bytes_written_ += record.size();
  logs_[key].push_back(std::move(record));
}

const std::vector<std::string>& InMemoryDurableStore::ReadLog(
    const std::string& key) const {
  auto it = logs_.find(key);
  if (it == logs_.end()) return kEmptyLog;
  return it->second;
}

void InMemoryDurableStore::TruncateLog(const std::string& key) {
  logs_.erase(key);
}

}  // namespace dqsq::dist
