// Multi-process cluster runner: the real-wire counterpart of the simulated
// Cluster driver. One binary, three modes (docs/CLUSTER.md):
//
//  * --mode=supervisor (default): spawns N peer processes (fork + execv of
//    this binary), collects their kHello frames (each peer listens on a
//    kernel-assigned port, so there are no port collisions by
//    construction), partitions the program's peer names across processes
//    round-robin over the sorted name list, ships every process the full
//    program text plus the address book in a kStart frame, seeds the
//    demand as the Dijkstra-Scholten root, pumps until the root detects
//    termination, gathers kReportReply frames (answers, fact counts,
//    socket stats, metrics) and prints a JSON report. With
//    --check-against-sim the same seeded workload is also solved on the
//    in-process SimNetwork and the sorted rendered answers are compared
//    byte for byte.
//
//  * --mode=peer: one worker process. Listens on port 0, says hello to
//    the supervisor, builds its assigned DatalogPeers from the kStart
//    payload (parsing the program into its own DatalogContext — the wire
//    codec's symbolic encoding makes the per-process interning orders
//    irrelevant), then pumps until kShutdown.
//
//  * --mode=bench: the E3_realwire experiment — runs the seeded chain
//    workload on the simulated wire and on real sockets for both engines
//    and writes BENCH_E3_realwire.json (deterministic counts only; wall
//    times go into *_ns params, which the baseline guard excludes).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "diagnosis/diagnosability.h"
#include "dist/cluster.h"
#include "dist/dnaive.h"
#include "dist/dqsq.h"
#include "dist/shard.h"
#include "dist/socket_network.h"
#include "petri/random_net.h"
#include "petri/verifier.h"

namespace dqsq::dist {
namespace {

// ---- Command line --------------------------------------------------------

struct Args {
  std::string mode = "supervisor";
  std::string engine = "dqsq";       // dnaive | dqsq
  std::string host = "127.0.0.1";
  int port = 0;                      // supervisor listen port (0 = kernel)
  int procs = 4;                     // peer processes to spawn
  int shards = 1;                    // worker shards per logical peer
  std::string program_path;          // program file; empty = generated
  std::string workload = "chain";    // chain | diag (generated programs)
  std::string query = "path@peer0(v0, Y)";
  int chain_peers = 6;               // generated workload shape
  int chain_edges = 4;
  int net_peers = 3;                 // diag workload: random net shape
  int net_transitions = 5;
  double fault_fraction = 0.25;      // diag workload: fault density
  uint64_t seed = 1;
  int timeout_ms = 60000;            // per supervisor phase
  bool check_against_sim = false;
  // Peer mode.
  std::string supervisor;            // host:port to dial
  int index = -1;
};

std::optional<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&](const char* flag, std::string* out) {
      std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      *out = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    if (eat("--mode", &args.mode) || eat("--engine", &args.engine) ||
        eat("--host", &args.host) || eat("--program", &args.program_path) ||
        eat("--workload", &args.workload) || eat("--query", &args.query) ||
        eat("--supervisor", &args.supervisor)) {
      continue;
    } else if (eat("--net-peers", &value)) {
      args.net_peers = std::stoi(value);
    } else if (eat("--net-transitions", &value)) {
      args.net_transitions = std::stoi(value);
    } else if (eat("--fault-fraction", &value)) {
      args.fault_fraction = std::stod(value);
    } else if (eat("--port", &value)) {
      args.port = std::stoi(value);
    } else if (eat("--procs", &value)) {
      args.procs = std::stoi(value);
    } else if (eat("--shards", &value)) {
      args.shards = std::stoi(value);
    } else if (eat("--chain-peers", &value)) {
      args.chain_peers = std::stoi(value);
    } else if (eat("--chain-edges", &value)) {
      args.chain_edges = std::stoi(value);
    } else if (eat("--seed", &value)) {
      args.seed = std::stoull(value);
    } else if (eat("--timeout-ms", &value)) {
      args.timeout_ms = std::stoi(value);
    } else if (eat("--index", &value)) {
      args.index = std::stoi(value);
    } else if (arg == "--check-against-sim") {
      args.check_against_sim = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (see docs/CLUSTER.md)\n",
                   arg.c_str());
      return std::nullopt;
    }
  }
  return args;
}

StatusOr<SocketAddress> ParseAddress(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return InvalidArgumentError("address must be host:port, got '" + spec +
                                "'");
  }
  SocketAddress addr;
  addr.host = spec.substr(0, colon);
  addr.port = static_cast<uint16_t>(std::stoi(spec.substr(colon + 1)));
  return addr;
}

/// The E3 distributed-chain workload shape (bench/bench_util.h): per-peer
/// edge facts, local path rules and a hop rule into the next peer.
/// Generated as text because the peers re-parse it from the kStart frame.
std::string ChainProgramText(int peers, int per_peer) {
  std::string program;
  for (int p = 0; p < peers; ++p) {
    for (int i = 0; i < per_peer; ++i) {
      int from = p * per_peer + i;
      program += "edge@peer" + std::to_string(p) + "(v" +
                 std::to_string(from) + ", v" + std::to_string(from + 1) +
                 ").\n";
    }
  }
  for (int p = 0; p < peers; ++p) {
    std::string self = "peer" + std::to_string(p);
    program += "path@" + self + "(X, Y) :- edge@" + self + "(X, Y).\n";
    program += "path@" + self + "(X, Y) :- edge@" + self + "(X, Z), path@" +
               self + "(Z, Y).\n";
    if (p + 1 < peers) {
      std::string next = "peer" + std::to_string(p + 1);
      program += "path@" + self + "(X, Y) :- edge@" + self +
                 "(X, Z), path@" + next + "(Z, Y).\n";
    }
  }
  return program;
}

// ---- Shared rendering ----------------------------------------------------

/// Canonical answer rendering: identical in every process, so sorted
/// answer lists can be compared byte for byte across sim and real wire.
std::string RenderTuple(const Tuple& tuple, const DatalogContext& ctx) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ",";
    out += ctx.arena().ToString(tuple[i], ctx.symbols());
  }
  out += ")";
  return out;
}

std::vector<std::string> RenderAnswers(const std::vector<Tuple>& answers,
                                       const DatalogContext& ctx) {
  std::vector<std::string> out;
  out.reserve(answers.size());
  for (const Tuple& t : answers) out.push_back(RenderTuple(t, ctx));
  std::sort(out.begin(), out.end());
  return out;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

// ---- Control-plane payloads ----------------------------------------------
// SnapshotWriter/Reader little-endian codecs; one struct per FrameType.

struct HelloPayload {
  uint32_t index = 0;
  std::string host;
  uint32_t port = 0;
};

std::string EncodeHello(const HelloPayload& h) {
  SnapshotWriter w;
  w.U32(h.index);
  w.Str(h.host);
  w.U32(h.port);
  return w.Take();
}

HelloPayload DecodeHello(std::string_view payload) {
  SnapshotReader r(payload);
  HelloPayload h;
  h.index = r.U32();
  h.host = r.Str();
  h.port = r.U32();
  DQSQ_CHECK(r.AtEnd());
  return h;
}

struct StartPayload {
  uint8_t engine = 1;  // 0 = dnaive, 1 = dqsq
  uint32_t num_shards = 1;  // worker shards per logical peer (dist/shard.h)
  std::string program_text;
  std::string query_text;
  std::vector<SocketAddress> procs;   // index -> process address
  SocketAddress supervisor;           // hosts the ds_root node
  // peer name -> process index, over all SHARD names of the program's
  // peers ("peer0", "peer0#1", ... — shard 0 keeps the logical name).
  std::vector<std::pair<std::string, uint32_t>> placement;
  uint32_t your_index = 0;
};

std::string EncodeStart(const StartPayload& s) {
  SnapshotWriter w;
  w.U8(s.engine);
  w.U32(s.num_shards);
  w.Str(s.program_text);
  w.Str(s.query_text);
  w.U32(static_cast<uint32_t>(s.procs.size()));
  for (const SocketAddress& a : s.procs) {
    w.Str(a.host);
    w.U32(a.port);
  }
  w.Str(s.supervisor.host);
  w.U32(s.supervisor.port);
  w.U32(static_cast<uint32_t>(s.placement.size()));
  for (const auto& [name, proc] : s.placement) {
    w.Str(name);
    w.U32(proc);
  }
  w.U32(s.your_index);
  return w.Take();
}

StartPayload DecodeStart(std::string_view payload) {
  SnapshotReader r(payload);
  StartPayload s;
  s.engine = r.U8();
  s.num_shards = r.U32();
  s.program_text = r.Str();
  s.query_text = r.Str();
  uint32_t n_procs = r.U32();
  for (uint32_t i = 0; i < n_procs; ++i) {
    SocketAddress a;
    a.host = r.Str();
    a.port = static_cast<uint16_t>(r.U32());
    s.procs.push_back(std::move(a));
  }
  s.supervisor.host = r.Str();
  s.supervisor.port = static_cast<uint16_t>(r.U32());
  uint32_t n_names = r.U32();
  for (uint32_t i = 0; i < n_names; ++i) {
    std::string name = r.Str();
    uint32_t proc = r.U32();
    s.placement.emplace_back(std::move(name), proc);
  }
  s.your_index = r.U32();
  DQSQ_CHECK(r.AtEnd());
  return s;
}

struct ReportPayload {
  uint32_t index = 0;
  std::vector<std::string> answers;  // rendered + sorted; empty unless the
                                     // process hosts the query-owner peer
  uint64_t total_facts = 0;
  std::vector<std::pair<std::string, uint64_t>> relation_counts;
  uint64_t messages_delivered = 0;
  uint64_t tuples_shipped = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t framing_errors = 0;
  std::string metrics_json;
};

std::string EncodeReport(const ReportPayload& p) {
  SnapshotWriter w;
  w.U32(p.index);
  w.U32(static_cast<uint32_t>(p.answers.size()));
  for (const std::string& a : p.answers) w.Str(a);
  w.U64(p.total_facts);
  w.U32(static_cast<uint32_t>(p.relation_counts.size()));
  for (const auto& [name, count] : p.relation_counts) {
    w.Str(name);
    w.U64(count);
  }
  w.U64(p.messages_delivered);
  w.U64(p.tuples_shipped);
  w.U64(p.frames_sent);
  w.U64(p.frames_received);
  w.U64(p.bytes_sent);
  w.U64(p.bytes_received);
  w.U64(p.framing_errors);
  w.Str(p.metrics_json);
  return w.Take();
}

ReportPayload DecodeReport(std::string_view payload) {
  SnapshotReader r(payload);
  ReportPayload p;
  p.index = r.U32();
  uint32_t n_answers = r.U32();
  for (uint32_t i = 0; i < n_answers; ++i) p.answers.push_back(r.Str());
  p.total_facts = r.U64();
  uint32_t n_rels = r.U32();
  for (uint32_t i = 0; i < n_rels; ++i) {
    std::string name = r.Str();
    uint64_t count = r.U64();
    p.relation_counts.emplace_back(std::move(name), count);
  }
  p.messages_delivered = r.U64();
  p.tuples_shipped = r.U64();
  p.frames_sent = r.U64();
  p.frames_received = r.U64();
  p.bytes_sent = r.U64();
  p.bytes_received = r.U64();
  p.framing_errors = r.U64();
  p.metrics_json = r.Str();
  DQSQ_CHECK(r.AtEnd());
  return p;
}

// ---- Peer mode -----------------------------------------------------------

int RunPeer(const Args& args) {
  if (args.index < 0 || args.supervisor.empty()) {
    std::fprintf(stderr, "peer mode needs --index and --supervisor\n");
    return 2;
  }
  auto sup = ParseAddress(args.supervisor);
  if (!sup.ok()) {
    std::fprintf(stderr, "%s\n", sup.status().ToString().c_str());
    return 2;
  }

  DatalogContext ctx;
  SocketNetwork net(ctx);
  Status status = net.Listen("127.0.0.1", 0);
  if (!status.ok()) {
    std::fprintf(stderr, "peer %d: %s\n", args.index,
                 status.ToString().c_str());
    return 1;
  }

  // State built when kStart arrives.
  std::map<SymbolId, std::unique_ptr<DatalogPeer>> local;
  std::unique_ptr<ShardRouter> router;  // null when the cluster is unsharded
  std::optional<ParsedQuery> query;
  Cluster::Mode mode = Cluster::Mode::kSourceOnly;
  bool done = false;

  net.SetControlHandler([&](const Frame& frame, uint64_t conn_id) -> Status {
    switch (frame.type) {
      case FrameType::kStart: {
        StartPayload start = DecodeStart(frame.payload);
        mode = start.engine == 0 ? Cluster::Mode::kEvaluate
                                 : Cluster::Mode::kSourceOnly;
        DQSQ_ASSIGN_OR_RETURN(Program program,
                              ParseProgram(start.program_text, ctx));
        DQSQ_ASSIGN_OR_RETURN(ParsedQuery parsed,
                              ParseQuery(start.query_text, ctx));
        query = std::move(parsed);
        // Every process derives the SAME shard topology from the program
        // text it was shipped (sorted logical peer set + shard count), so
        // tuple routing agrees cluster-wide without coordination.
        if (start.num_shards > 1) {
          router = std::make_unique<ShardRouter>(
              ctx, ProgramPeers(program, *query), start.num_shards);
        }
        for (const auto& [name, proc] : start.placement) {
          SymbolId id = ctx.symbols().Intern(name);
          if (proc == start.your_index) {
            auto peer = std::make_unique<DatalogPeer>(id, &ctx, EvalOptions(),
                                                      router.get());
            net.Register(id, peer.get());
            local.emplace(id, std::move(peer));
          } else {
            net.SetAddress(name, start.procs.at(proc));
          }
        }
        net.SetAddress("ds_root", start.supervisor);
        for (const Rule& rule : program.rules) {
          // Sharded: every local shard of the head's logical owner carries
          // the rule (mirrors the simulated Cluster's install loop).
          for (auto& [id, peer] : local) {
            SymbolId logical = router != nullptr ? router->LogicalOf(id) : id;
            if (logical == rule.head.rel.peer) {
              InstallRuleAt(*peer, rule, mode, ctx);
            }
          }
        }
        return Status::Ok();
      }
      case FrameType::kReportRequest: {
        ReportPayload report;
        report.index = static_cast<uint32_t>(args.index);
        if (query.has_value()) {
          auto owner = local.find(query->atom.rel.peer);
          if (owner != local.end()) {
            report.answers = RenderAnswers(
                Ask(owner->second->db(), AnswerAtom(ctx, *query, mode),
                    query->num_vars),
                ctx);
          }
        }
        for (const auto& [id, peer] : local) {
          const Database& db = peer->db();
          report.total_facts += db.TotalFacts();
          for (const RelId& rel : db.Relations()) {
            report.relation_counts.emplace_back(
                ctx.PredicateName(rel.pred) + "@" + ctx.symbols().Name(id),
                db.Find(rel)->size());
          }
        }
        const SocketStats& stats = net.stats();
        report.messages_delivered = stats.messages_delivered;
        report.tuples_shipped = stats.tuples_shipped;
        report.frames_sent = stats.frames_sent;
        report.frames_received = stats.frames_received;
        report.bytes_sent = stats.bytes_sent;
        report.bytes_received = stats.bytes_received;
        report.framing_errors = stats.framing_errors;
        report.metrics_json = MetricsRegistry::Global().Snapshot().ToJson();
        return net.SendControlOn(conn_id, FrameType::kReportReply,
                                 EncodeReport(report));
      }
      case FrameType::kShutdown:
        done = true;
        return Status::Ok();
      default:
        return InvalidArgumentError("peer got unexpected control frame type " +
                                    std::to_string(int(frame.type)));
    }
  });

  HelloPayload hello{static_cast<uint32_t>(args.index), "127.0.0.1",
                     net.listen_port()};
  status = net.SendControl(*sup, FrameType::kHello, EncodeHello(hello));
  while (status.ok() && !done) status = net.Pump(50);
  if (!status.ok()) {
    std::fprintf(stderr, "peer %d: %s\n", args.index,
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

// ---- Supervisor mode -----------------------------------------------------

struct ChildProc {
  pid_t pid = -1;
  bool alive = true;
};

Status CheckChildren(std::vector<ChildProc>& children) {
  for (ChildProc& child : children) {
    if (!child.alive) continue;
    int wstatus = 0;
    if (waitpid(child.pid, &wstatus, WNOHANG) == child.pid) {
      child.alive = false;
      return InternalError("peer process " + std::to_string(child.pid) +
                           " exited prematurely (wait status " +
                           std::to_string(wstatus) + ")");
    }
  }
  return Status::Ok();
}

/// Pumps the supervisor's network until `pred` holds, watching the clock
/// and the children: a dead peer process fails the phase immediately
/// instead of timing out.
Status PumpPhase(SocketNetwork& net, std::vector<ChildProc>& children,
                 const std::function<bool()>& pred, int timeout_ms,
                 const std::string& what) {
  const uint64_t deadline_ns =
      SteadyClock::Default().NowNs() + uint64_t{1'000'000} * timeout_ms;
  while (!pred()) {
    DQSQ_RETURN_IF_ERROR(CheckChildren(children));
    if (SteadyClock::Default().NowNs() >= deadline_ns) {
      return ResourceExhaustedError(what + " timed out after " +
                                    std::to_string(timeout_ms) + "ms");
    }
    DQSQ_RETURN_IF_ERROR(net.Pump(20));
  }
  return Status::Ok();
}

StatusOr<pid_t> SpawnPeer(const std::string& supervisor_address, int index) {
  pid_t pid = fork();
  if (pid < 0) return InternalError("fork: " + std::string(strerror(errno)));
  if (pid == 0) {
    std::string sup = "--supervisor=" + supervisor_address;
    std::string idx = "--index=" + std::to_string(index);
    const char* child_argv[] = {"cluster_main", "--mode=peer", sup.c_str(),
                                idx.c_str(), nullptr};
    execv("/proc/self/exe", const_cast<char**>(child_argv));
    std::fprintf(stderr, "execv(/proc/self/exe): %s\n", strerror(errno));
    _exit(127);
  }
  return pid;
}

void ShutdownChildren(SocketNetwork& net,
                      const std::map<uint32_t, uint64_t>& hello_conns,
                      std::vector<ChildProc>& children) {
  for (const auto& [index, conn_id] : hello_conns) {
    (void)net.SendControlOn(conn_id, FrameType::kShutdown, "");
  }
  const uint64_t deadline_ns =
      SteadyClock::Default().NowNs() + uint64_t{2'000'000'000};
  auto any_alive = [&] {
    for (ChildProc& child : children) {
      if (!child.alive) continue;
      if (waitpid(child.pid, nullptr, WNOHANG) == child.pid) {
        child.alive = false;
      }
    }
    for (const ChildProc& child : children) {
      if (child.alive) return true;
    }
    return false;
  };
  while (any_alive() && SteadyClock::Default().NowNs() < deadline_ns) {
    (void)net.Pump(10);  // flush the shutdown frames
  }
  for (ChildProc& child : children) {
    if (!child.alive) continue;
    kill(child.pid, SIGKILL);
    waitpid(child.pid, nullptr, 0);
    child.alive = false;
  }
}

struct ClusterRunResult {
  std::vector<std::string> answers;  // sorted rendered tuples
  uint64_t total_facts = 0;
  std::vector<ReportPayload> reports;       // one per process, by index
  SocketStats supervisor_stats;
  uint64_t wall_ns = 0;
};

/// The whole supervisor protocol: spawn, hello, start, seed, terminate,
/// report, shutdown. `args.procs` peer processes on localhost.
StatusOr<ClusterRunResult> RunCluster(const Args& args,
                                      const std::string& program_text,
                                      Cluster::Mode mode) {
  const auto wall_start = std::chrono::steady_clock::now();
  DatalogContext ctx;
  DQSQ_ASSIGN_OR_RETURN(Program program, ParseProgram(program_text, ctx));
  DQSQ_RETURN_IF_ERROR(ValidateProgram(program, ctx));
  DQSQ_ASSIGN_OR_RETURN(ParsedQuery query, ParseQuery(args.query, ctx));
  for (const Rule& rule : program.rules) {
    if (!rule.negative.empty()) {
      return UnimplementedError(
          "distributed evaluation supports positive dDatalog only");
    }
  }

  SocketNetwork net(ctx);
  DQSQ_RETURN_IF_ERROR(
      net.Listen(args.host, static_cast<uint16_t>(args.port)));
  SocketAddress self{args.host, net.listen_port()};

  RootNode root(ctx.symbols().Intern("ds_root"));
  net.Register(root.id(), &root);

  // Shard topology (dist/shard.h): built over the same sorted logical
  // peer set every peer process derives from the program text, so the
  // supervisor's routing of the seed tuples agrees with the workers'.
  std::unique_ptr<ShardRouter> router;
  if (args.shards > 1) {
    router = std::make_unique<ShardRouter>(ctx, ProgramPeers(program, query),
                                           static_cast<size_t>(args.shards));
  }

  std::map<uint32_t, SocketAddress> peer_addresses;  // index -> address
  std::map<uint32_t, uint64_t> hello_conns;          // index -> connection
  std::vector<ReportPayload> reports;
  net.SetControlHandler([&](const Frame& frame, uint64_t conn_id) -> Status {
    switch (frame.type) {
      case FrameType::kHello: {
        HelloPayload hello = DecodeHello(frame.payload);
        peer_addresses[hello.index] =
            SocketAddress{hello.host, static_cast<uint16_t>(hello.port)};
        hello_conns[hello.index] = conn_id;
        return Status::Ok();
      }
      case FrameType::kReportReply:
        reports.push_back(DecodeReport(frame.payload));
        return Status::Ok();
      default:
        return InvalidArgumentError(
            "supervisor got unexpected control frame type " +
            std::to_string(int(frame.type)));
    }
  });

  std::vector<ChildProc> children;
  for (int i = 0; i < args.procs; ++i) {
    DQSQ_ASSIGN_OR_RETURN(pid_t pid, SpawnPeer(self.ToString(), i));
    children.push_back(ChildProc{pid});
  }
  Status status = PumpPhase(
      net, children,
      [&] { return peer_addresses.size() == size_t(args.procs); },
      args.timeout_ms, "peer handshake");

  if (status.ok()) {
    // Deterministic placement: round-robin over the sorted peer names —
    // with sharding, over every shard of each logical peer in order, so
    // a logical peer's shards spread across consecutive processes.
    std::vector<std::string> logical_names;
    for (SymbolId id : ProgramPeers(program, query)) {
      logical_names.push_back(ctx.symbols().Name(id));
    }
    std::sort(logical_names.begin(), logical_names.end());
    std::vector<std::string> names;
    for (const std::string& name : logical_names) {
      if (router == nullptr) {
        names.push_back(name);
        continue;
      }
      for (SymbolId shard : router->GroupOf(ctx.symbols().Intern(name))) {
        names.push_back(ctx.symbols().Name(shard));
      }
    }
    StartPayload start;
    start.engine = mode == Cluster::Mode::kEvaluate ? 0 : 1;
    start.num_shards = static_cast<uint32_t>(std::max(args.shards, 1));
    start.program_text = program_text;
    start.query_text = args.query;
    for (int i = 0; i < args.procs; ++i) {
      start.procs.push_back(peer_addresses.at(i));
    }
    start.supervisor = self;
    for (size_t i = 0; i < names.size(); ++i) {
      uint32_t proc = static_cast<uint32_t>(i % args.procs);
      start.placement.emplace_back(names[i], proc);
      net.SetAddress(names[i], peer_addresses.at(proc));
    }
    for (int i = 0; i < args.procs && status.ok(); ++i) {
      start.your_index = static_cast<uint32_t>(i);
      status = net.SendControlOn(hello_conns.at(i), FrameType::kStart,
                                 EncodeStart(start));
    }
  }

  if (status.ok()) {
    for (Message& m : ExpandSeedForShards(
             router.get(), SeedDemandMessages(ctx, query, root.id(), mode))) {
      root.SendBasic(std::move(m), net);
    }
    status = PumpPhase(net, children, [&] { return root.terminated(); },
                       args.timeout_ms, "termination detection");
  }

  if (status.ok()) {
    for (int i = 0; i < args.procs && status.ok(); ++i) {
      status = net.SendControlOn(hello_conns.at(i), FrameType::kReportRequest,
                                 std::string_view());
    }
  }
  if (status.ok()) {
    status = PumpPhase(net, children,
                       [&] { return reports.size() == size_t(args.procs); },
                       args.timeout_ms, "report collection");
  }

  ShutdownChildren(net, hello_conns, children);
  DQSQ_RETURN_IF_ERROR(status);

  ClusterRunResult result;
  std::sort(reports.begin(), reports.end(),
            [](const ReportPayload& a, const ReportPayload& b) {
              return a.index < b.index;
            });
  for (const ReportPayload& report : reports) {
    result.answers.insert(result.answers.end(), report.answers.begin(),
                          report.answers.end());
    result.total_facts += report.total_facts;
  }
  std::sort(result.answers.begin(), result.answers.end());
  result.reports = std::move(reports);
  result.supervisor_stats = net.stats();
  result.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return result;
}

// ---- Simulated reference run ---------------------------------------------

struct SimRun {
  std::vector<std::string> answers;  // sorted rendered tuples
  DistResult result;
  uint64_t wall_ns = 0;
};

StatusOr<SimRun> RunSim(const Args& args, const std::string& program_text,
                        Cluster::Mode mode) {
  const auto wall_start = std::chrono::steady_clock::now();
  DatalogContext ctx;
  DQSQ_ASSIGN_OR_RETURN(Program program, ParseProgram(program_text, ctx));
  DQSQ_ASSIGN_OR_RETURN(ParsedQuery query, ParseQuery(args.query, ctx));
  DistOptions options;
  options.seed = args.seed;
  SimRun run;
  if (mode == Cluster::Mode::kEvaluate) {
    DQSQ_ASSIGN_OR_RETURN(run.result,
                          DistNaiveSolve(ctx, program, query, options));
  } else {
    DQSQ_ASSIGN_OR_RETURN(run.result,
                          DistQsqSolve(ctx, program, query, options));
  }
  run.answers = RenderAnswers(run.result.answers, ctx);
  run.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return run;
}

/// The E6 distributed-diagnosability workload: a seeded random net with
/// fault transitions, compiled to the twin-plant verifier program
/// (diagnosis/diagnosability.h). Sets args.query to the witness query —
/// the run answers "diagnosable?" with answers == 0 meaning yes.
std::string DiagProgramText(Args& args) {
  petri::RandomNetOptions options;
  options.num_peers = static_cast<uint32_t>(args.net_peers);
  options.transitions_per_peer = static_cast<uint32_t>(args.net_transitions);
  options.hidden_probability = 0.3;
  options.fault_fraction = args.fault_fraction;
  Rng rng(args.seed);
  petri::PetriNet net = petri::MakeRandomNet(options, rng);
  auto verifier = petri::VerifierNet::Build(net);
  DQSQ_CHECK_OK(verifier.status());
  auto text = diagnosis::BuildVerifierProgramText(*verifier);
  DQSQ_CHECK_OK(text.status());
  args.query = text->query;
  return text->program;
}

std::string LoadProgramText(Args& args) {
  if (!args.program_path.empty()) {
    std::ifstream in(args.program_path);
    DQSQ_CHECK(in.good()) << "cannot read program file " << args.program_path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
  if (args.workload == "diag") return DiagProgramText(args);
  DQSQ_CHECK(args.workload == "chain")
      << "unknown --workload=" << args.workload;
  return ChainProgramText(args.chain_peers, args.chain_edges);
}

int RunSupervisor(const Args& args_in) {
  Args args = args_in;
  Cluster::Mode mode = args.engine == "dnaive" ? Cluster::Mode::kEvaluate
                                               : Cluster::Mode::kSourceOnly;
  std::string program_text = LoadProgramText(args);
  auto real = RunCluster(args, program_text, mode);
  if (!real.ok()) {
    std::fprintf(stderr, "cluster run failed: %s\n",
                 real.status().ToString().c_str());
    return 1;
  }

  bool checked = false;
  bool answers_match = false;
  uint64_t sim_answers = 0;
  if (args.check_against_sim) {
    auto sim = RunSim(args, program_text, mode);
    if (!sim.ok()) {
      std::fprintf(stderr, "sim reference run failed: %s\n",
                   sim.status().ToString().c_str());
      return 1;
    }
    checked = true;
    answers_match = sim->answers == real->answers;
    sim_answers = sim->answers.size();
  }

  // JSON report on stdout: the cluster launcher and the CI smoke job
  // parse this.
  std::string json = "{\n";
  json += "  \"engine\": \"" + EscapeJson(args.engine) + "\",\n";
  json += "  \"procs\": " + std::to_string(args.procs) + ",\n";
  json += "  \"shards\": " + std::to_string(args.shards) + ",\n";
  json += "  \"query\": \"" + EscapeJson(args.query) + "\",\n";
  json += "  \"answers\": " + std::to_string(real->answers.size()) + ",\n";
  json += "  \"total_facts\": " + std::to_string(real->total_facts) + ",\n";
  uint64_t bytes_sent = real->supervisor_stats.bytes_sent;
  uint64_t frames_sent = real->supervisor_stats.frames_sent;
  uint64_t framing_errors = real->supervisor_stats.framing_errors;
  for (const ReportPayload& report : real->reports) {
    bytes_sent += report.bytes_sent;
    frames_sent += report.frames_sent;
    framing_errors += report.framing_errors;
  }
  json += "  \"wire_bytes_sent\": " + std::to_string(bytes_sent) + ",\n";
  json += "  \"wire_frames_sent\": " + std::to_string(frames_sent) + ",\n";
  json += "  \"framing_errors\": " + std::to_string(framing_errors) + ",\n";
  if (checked) {
    json += "  \"sim_answers\": " + std::to_string(sim_answers) + ",\n";
    json += std::string("  \"answers_match_sim\": ") +
            (answers_match ? "true" : "false") + ",\n";
  }
  json += "  \"wall_ns\": " + std::to_string(real->wall_ns) + "\n";
  json += "}\n";
  std::fputs(json.c_str(), stdout);

  if (checked && !answers_match) {
    std::fprintf(stderr,
                 "ANSWER MISMATCH: real wire produced %zu answers, sim "
                 "produced %llu\n",
                 real->answers.size(),
                 static_cast<unsigned long long>(sim_answers));
    for (const ReportPayload& report : real->reports) {
      for (const auto& [name, count] : report.relation_counts) {
        std::fprintf(stderr, "  proc %u: %s = %llu\n", report.index,
                     name.c_str(), static_cast<unsigned long long>(count));
      }
    }
    return 1;
  }
  return 0;
}

// ---- Bench mode: the E3_realwire experiment ------------------------------

int RunBench(const Args& args_in) {
  Args args = args_in;
  struct EngineRow {
    std::string engine;
    SimRun sim;
    ClusterRunResult real;
    bool match = false;
  };
  std::vector<EngineRow> rows;
  for (const std::string& engine : {std::string("dnaive"),
                                    std::string("dqsq")}) {
    args.engine = engine;
    Cluster::Mode mode = engine == "dnaive" ? Cluster::Mode::kEvaluate
                                            : Cluster::Mode::kSourceOnly;
    std::string program_text = LoadProgramText(args);
    auto sim = RunSim(args, program_text, mode);
    if (!sim.ok()) {
      std::fprintf(stderr, "sim %s failed: %s\n", engine.c_str(),
                   sim.status().ToString().c_str());
      return 1;
    }
    auto real = RunCluster(args, program_text, mode);
    if (!real.ok()) {
      std::fprintf(stderr, "real-wire %s failed: %s\n", engine.c_str(),
                   real.status().ToString().c_str());
      return 1;
    }
    EngineRow row{engine, std::move(*sim), std::move(*real)};
    row.match = row.sim.answers == row.real.answers;
    rows.push_back(std::move(row));
    std::fprintf(stderr,
                 "E3_realwire %s: %zu answers (match=%d), real wire %zu "
                 "bytes / %zu frames from supervisor, wall sim=%lluns "
                 "real=%lluns\n",
                 engine.c_str(), rows.back().real.answers.size(),
                 rows.back().match, rows.back().real.supervisor_stats.bytes_sent,
                 rows.back().real.supervisor_stats.frames_sent,
                 static_cast<unsigned long long>(rows.back().sim.wall_ns),
                 static_cast<unsigned long long>(rows.back().real.wall_ns));
  }

  // Hand-written report in the BenchReporter schema (docs/METRICS.md).
  // Only deterministic values outside *_ns params: the simulated counts
  // are seeded and exact, real-wire byte/message counts depend on OS
  // scheduling and stay out of the baseline (they are printed above).
  const DistResult& dnaive = rows[0].sim.result;
  std::string json = "{\n  \"schema_version\": 1,\n";
  json += "  \"experiment\": \"E3_realwire\",\n";
  json += "  \"params\": {";
  json += "\"workload\": \"distributed_chain\", ";
  json += "\"query\": \"" + EscapeJson(args.query) + "\", ";
  json += "\"procs\": " + std::to_string(args.procs) + ", ";
  json += "\"chain_peers\": " + std::to_string(args.chain_peers) + ", ";
  json += "\"chain_edges\": " + std::to_string(args.chain_edges) + ", ";
  json += "\"seed\": " + std::to_string(args.seed) + ", ";
  for (const EngineRow& row : rows) {
    json += "\"answers_" + row.engine + "\": " +
            std::to_string(row.real.answers.size()) + ", ";
    json += "\"answers_match_" + row.engine + "\": " +
            (row.match ? std::string("true") : std::string("false")) + ", ";
    json += "\"sim_" + row.engine + "_ns\": " +
            std::to_string(row.sim.wall_ns) + ", ";
    json += "\"real_" + row.engine + "_ns\": " +
            std::to_string(row.real.wall_ns) + ", ";
  }
  json.resize(json.size() - 2);  // trailing ", "
  json += "},\n";
  uint64_t wall = 0;
  for (const EngineRow& row : rows) wall += row.sim.wall_ns + row.real.wall_ns;
  json += "  \"wall_time_ns\": " + std::to_string(wall) + ",\n";
  json += "  \"summary\": {\n";
  json += "    \"facts_derived\": " + std::to_string(dnaive.total_facts) +
          ",\n";
  json += "    \"unfolding_events\": 0,\n";
  json += "    \"unfolding_conditions\": 0,\n";
  json += "    \"messages_delivered\": " +
          std::to_string(dnaive.net_stats.messages_delivered) + ",\n";
  json += "    \"tuples_shipped\": " +
          std::to_string(dnaive.net_stats.tuples_shipped) + ",\n";
  json += "    \"per_peer_messages\": {}\n";
  json += "  },\n";
  json += "  \"metrics\": {\"schema_version\":1,\"metrics\":[]}\n";
  json += "}\n";

  const char* out_dir = getenv("DQSQ_BENCH_OUT_DIR");
  std::string path = std::string(out_dir != nullptr ? out_dir : ".") +
                     "/BENCH_E3_realwire.json";
  std::ofstream out(path);
  DQSQ_CHECK(out.good()) << "cannot write " << path;
  out << json;
  out.close();
  std::fprintf(stderr, "wrote %s\n", path.c_str());

  for (const EngineRow& row : rows) {
    if (!row.match) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dqsq::dist

int main(int argc, char** argv) {
  auto args = dqsq::dist::ParseArgs(argc, argv);
  if (!args.has_value()) return 2;
  if (args->mode == "peer") return dqsq::dist::RunPeer(*args);
  if (args->mode == "supervisor") return dqsq::dist::RunSupervisor(*args);
  if (args->mode == "bench") return dqsq::dist::RunBench(*args);
  std::fprintf(stderr, "unknown --mode=%s (peer|supervisor|bench)\n",
               args->mode.c_str());
  return 2;
}
