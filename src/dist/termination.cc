#include "dist/termination.h"

namespace dqsq::dist {

namespace {

struct BasicMessage {
  NodeId from;
  NodeId to;
  size_t spawn_budget;  // unused payload (kept for debuggability)
};

struct AckMessage {
  NodeId from;
  NodeId to;
};

}  // namespace

StatusOr<DiffusionResult> RunDiffusingComputation(uint32_t num_nodes,
                                                  size_t total_work,
                                                  uint32_t max_fanout,
                                                  uint64_t seed) {
  if (num_nodes == 0) return InvalidArgumentError("need at least one node");
  Rng rng(seed);
  DiffusionResult result;

  std::vector<DsNode> nodes;
  nodes.reserve(num_nodes);
  nodes.emplace_back(/*is_root=*/true);
  for (uint32_t i = 1; i < num_nodes; ++i) nodes.emplace_back(false);
  // Each node's pending local work (spawn budgets of accepted items).
  std::vector<std::deque<size_t>> work(num_nodes);
  std::deque<BasicMessage> basic_in_flight;
  std::deque<AckMessage> acks_in_flight;
  size_t work_spawned = 0;

  // The root seeds itself with one work item.
  work[0].push_back(max_fanout);
  ++work_spawned;

  size_t budget = 10'000'000;
  while (budget-- > 0) {
    // Nondeterministically pick an enabled action: execute work, deliver a
    // basic message, or deliver an ack. Also let passive nodes disengage.
    // Disengagement is checked eagerly for every node.
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (!work[n].empty()) continue;  // active
      if (nodes[n].TryDisengage()) {
        if (n == 0) {
          result.detected = true;
          result.quiescent_at_detection =
              basic_in_flight.empty() && acks_in_flight.empty();
          return result;
        }
        acks_in_flight.push_back(AckMessage{n, nodes[n].parent()});
        ++result.ack_messages;
      }
    }

    enum Action { kWork, kBasic, kAck };
    std::vector<std::pair<Action, NodeId>> actions;
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (!work[n].empty()) actions.push_back({kWork, n});
    }
    if (!basic_in_flight.empty()) actions.push_back({kBasic, 0});
    if (!acks_in_flight.empty()) actions.push_back({kAck, 0});
    if (actions.empty()) {
      // Nothing runnable and the root did not detect termination: the
      // protocol is stuck, which would be a bug.
      return InternalError("diffusing computation wedged");
    }
    auto [action, node] = actions[rng.NextBelow(actions.size())];
    switch (action) {
      case kWork: {
        work[node].pop_front();
        ++result.work_items;
        // Spawn 1..max_fanout children while global work remains, so the
        // computation reliably reaches total_work items before draining.
        size_t children = 1 + rng.NextBelow(max_fanout);
        for (size_t c = 0; c < children && work_spawned < total_work; ++c) {
          NodeId target = static_cast<NodeId>(rng.NextBelow(num_nodes));
          nodes[node].OnSendBasic();
          basic_in_flight.push_back(BasicMessage{node, target, 0});
          ++result.basic_messages;
          ++work_spawned;
        }
        break;
      }
      case kBasic: {
        size_t pick = rng.NextBelow(basic_in_flight.size());
        BasicMessage m = basic_in_flight[pick];
        basic_in_flight.erase(basic_in_flight.begin() + pick);
        bool ack_now = nodes[m.to].OnReceiveBasic(m.from);
        if (ack_now) {
          acks_in_flight.push_back(AckMessage{m.to, m.from});
          ++result.ack_messages;
        }
        work[m.to].push_back(m.spawn_budget);
        break;
      }
      case kAck: {
        size_t pick = rng.NextBelow(acks_in_flight.size());
        AckMessage m = acks_in_flight[pick];
        acks_in_flight.erase(acks_in_flight.begin() + pick);
        nodes[m.to].OnReceiveAck();
        break;
      }
    }
  }
  return ResourceExhaustedError("diffusing computation budget exhausted");
}

}  // namespace dqsq::dist
