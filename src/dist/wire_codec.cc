#include "dist/wire_codec.h"

#include <cstring>

#include "common/logging.h"

namespace dqsq::dist {

namespace {

// ---- Symbolic building blocks. Every identifier travels as a name and is
// re-interned by the decoder, so the two contexts never need to agree on
// ids — only on the program text they were grown from.

void EncodeSymbol(SymbolId id, const DatalogContext& ctx, SnapshotWriter& w) {
  w.Str(ctx.symbols().Name(id));
}

SymbolId DecodeSymbol(SnapshotReader& r, DatalogContext& ctx) {
  return ctx.symbols().Intern(r.Str());
}

void EncodeRel(const RelId& rel, const DatalogContext& ctx,
               SnapshotWriter& w) {
  w.Str(ctx.PredicateName(rel.pred));
  w.U32(ctx.PredicateArity(rel.pred));
  EncodeSymbol(rel.peer, ctx, w);
}

RelId DecodeRel(SnapshotReader& r, DatalogContext& ctx) {
  std::string pred = r.Str();
  uint32_t arity = r.U32();
  RelId rel;
  rel.pred = ctx.InternPredicate(pred, arity);
  rel.peer = DecodeSymbol(r, ctx);
  return rel;
}

void EncodeWirePattern(const Pattern& p, const DatalogContext& ctx,
                       SnapshotWriter& w) {
  w.U8(static_cast<uint8_t>(p.kind()));
  switch (p.kind()) {
    case Pattern::Kind::kVar:
      w.U32(p.var());
      return;
    case Pattern::Kind::kConst:
      EncodeSymbol(p.symbol(), ctx, w);
      return;
    case Pattern::Kind::kApp:
      EncodeSymbol(p.symbol(), ctx, w);
      w.U32(static_cast<uint32_t>(p.args().size()));
      for (const Pattern& a : p.args()) EncodeWirePattern(a, ctx, w);
      return;
  }
  DQSQ_CHECK(false) << "unencodable pattern kind";
}

Pattern DecodeWirePattern(SnapshotReader& r, DatalogContext& ctx) {
  switch (static_cast<Pattern::Kind>(r.U8())) {
    case Pattern::Kind::kVar:
      return Pattern::Var(r.U32());
    case Pattern::Kind::kConst:
      return Pattern::Const(DecodeSymbol(r, ctx));
    case Pattern::Kind::kApp: {
      SymbolId fn = DecodeSymbol(r, ctx);
      uint32_t n = r.U32();
      std::vector<Pattern> args;
      args.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        args.push_back(DecodeWirePattern(r, ctx));
      }
      return Pattern::App(fn, std::move(args));
    }
  }
  DQSQ_CHECK(false) << "corrupt pattern kind on the wire";
  return Pattern::Const(0);
}

void EncodeWireAtom(const Atom& atom, const DatalogContext& ctx,
                    SnapshotWriter& w) {
  EncodeRel(atom.rel, ctx, w);
  w.U32(static_cast<uint32_t>(atom.args.size()));
  for (const Pattern& p : atom.args) EncodeWirePattern(p, ctx, w);
}

Atom DecodeWireAtom(SnapshotReader& r, DatalogContext& ctx) {
  Atom atom;
  atom.rel = DecodeRel(r, ctx);
  uint32_t n = r.U32();
  atom.args.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    atom.args.push_back(DecodeWirePattern(r, ctx));
  }
  return atom;
}

void EncodeWireRule(const Rule& rule, const DatalogContext& ctx,
                    SnapshotWriter& w) {
  EncodeWireAtom(rule.head, ctx, w);
  w.U32(static_cast<uint32_t>(rule.body.size()));
  for (const Atom& a : rule.body) EncodeWireAtom(a, ctx, w);
  w.U32(static_cast<uint32_t>(rule.negative.size()));
  for (const Atom& a : rule.negative) EncodeWireAtom(a, ctx, w);
  w.U32(static_cast<uint32_t>(rule.diseqs.size()));
  for (const Diseq& d : rule.diseqs) {
    EncodeWirePattern(d.lhs, ctx, w);
    EncodeWirePattern(d.rhs, ctx, w);
  }
  w.U32(rule.num_vars);
  w.U32(static_cast<uint32_t>(rule.var_names.size()));
  for (const std::string& name : rule.var_names) w.Str(name);
}

Rule DecodeWireRule(SnapshotReader& r, DatalogContext& ctx) {
  Rule rule;
  rule.head = DecodeWireAtom(r, ctx);
  uint32_t n = r.U32();
  rule.body.reserve(n);
  for (uint32_t i = 0; i < n; ++i) rule.body.push_back(DecodeWireAtom(r, ctx));
  n = r.U32();
  rule.negative.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    rule.negative.push_back(DecodeWireAtom(r, ctx));
  }
  n = r.U32();
  rule.diseqs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Diseq d;
    d.lhs = DecodeWirePattern(r, ctx);
    d.rhs = DecodeWirePattern(r, ctx);
    rule.diseqs.push_back(std::move(d));
  }
  rule.num_vars = r.U32();
  n = r.U32();
  rule.var_names.reserve(n);
  for (uint32_t i = 0; i < n; ++i) rule.var_names.push_back(r.Str());
  return rule;
}

/// True for kinds whose `rel` field is meaningful (the default-constructed
/// RelId of acks/hellos need not name an interned predicate).
bool HasRel(MessageKind kind) {
  return kind == MessageKind::kTuples || kind == MessageKind::kActivate ||
         kind == MessageKind::kSubquery;
}

}  // namespace

void EncodeWireTerm(TermId term, const DatalogContext& ctx,
                    SnapshotWriter& w) {
  const TermArena& arena = ctx.arena();
  if (arena.IsApp(term)) {
    w.U8(1);
    EncodeSymbol(arena.Symbol(term), ctx, w);
    auto args = arena.Args(term);
    w.U32(static_cast<uint32_t>(args.size()));
    for (TermId a : args) EncodeWireTerm(a, ctx, w);
  } else {
    w.U8(0);
    EncodeSymbol(arena.Symbol(term), ctx, w);
  }
}

TermId DecodeWireTerm(SnapshotReader& r, DatalogContext& ctx) {
  if (r.U8() == 0) {
    return ctx.arena().MakeConstant(DecodeSymbol(r, ctx));
  }
  SymbolId fn = DecodeSymbol(r, ctx);
  uint32_t n = r.U32();
  std::vector<TermId> args;
  args.reserve(n);
  for (uint32_t i = 0; i < n; ++i) args.push_back(DecodeWireTerm(r, ctx));
  return ctx.arena().MakeApp(fn, args);
}

std::string EncodeWireMessage(const Message& m, const DatalogContext& ctx) {
  SnapshotWriter w;
  w.U8(static_cast<uint8_t>(m.kind));
  EncodeSymbol(m.from, ctx, w);
  EncodeSymbol(m.to, ctx, w);
  if (HasRel(m.kind)) EncodeRel(m.rel, ctx, w);
  w.U32(static_cast<uint32_t>(m.tuples.size()));
  for (const Tuple& t : m.tuples) {
    w.U32(static_cast<uint32_t>(t.size()));
    for (TermId term : t) EncodeWireTerm(term, ctx, w);
  }
  if (m.kind == MessageKind::kActivate) EncodeSymbol(m.subscriber, ctx, w);
  w.U32(static_cast<uint32_t>(m.adornment.size()));
  for (bool b : m.adornment) w.Bool(b);
  w.U32(static_cast<uint32_t>(m.rules.size()));
  for (const Rule& rule : m.rules) EncodeWireRule(rule, ctx, w);
  // Transport envelope, verbatim: sequence numbers and epochs are
  // channel-local protocol state, not arena identifiers.
  w.U64(m.seq);
  w.U64(m.ack);
  w.U32(static_cast<uint32_t>(m.sack.size()));
  for (const SackBlock& s : m.sack) {
    w.U64(s.first);
    w.U64(s.last);
  }
  // Flags byte (was a plain retransmit Bool): bit0 = retransmit, bit1 =
  // shard_replica, bit2 = batched sections follow. Byte-identical to the
  // pre-sharding codec when both features are off.
  uint8_t flags = 0;
  if (m.retransmit) flags |= 1;
  if (m.shard_replica) flags |= 2;
  if (!m.sections.empty()) flags |= 4;
  w.U8(flags);
  w.U64(m.epoch);
  if (!m.sections.empty()) {
    w.U32(static_cast<uint32_t>(m.sections.size()));
    for (const TupleSection& s : m.sections) {
      EncodeRel(s.rel, ctx, w);
      w.U32(static_cast<uint32_t>(s.tuples.size()));
      for (const Tuple& t : s.tuples) {
        w.U32(static_cast<uint32_t>(t.size()));
        for (TermId term : t) EncodeWireTerm(term, ctx, w);
      }
    }
  }
  return w.Take();
}

Message DecodeWireMessage(std::string_view payload, DatalogContext& ctx) {
  SnapshotReader r(payload);
  Message m;
  m.kind = static_cast<MessageKind>(r.U8());
  m.from = DecodeSymbol(r, ctx);
  m.to = DecodeSymbol(r, ctx);
  if (HasRel(m.kind)) m.rel = DecodeRel(r, ctx);
  uint32_t n = r.U32();
  m.tuples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t arity = r.U32();
    Tuple t;
    t.reserve(arity);
    for (uint32_t j = 0; j < arity; ++j) {
      t.push_back(DecodeWireTerm(r, ctx));
    }
    m.tuples.push_back(std::move(t));
  }
  if (m.kind == MessageKind::kActivate) m.subscriber = DecodeSymbol(r, ctx);
  n = r.U32();
  m.adornment.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.adornment.push_back(r.Bool());
  n = r.U32();
  m.rules.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.rules.push_back(DecodeWireRule(r, ctx));
  m.seq = r.U64();
  m.ack = r.U64();
  n = r.U32();
  m.sack.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SackBlock s;
    s.first = r.U64();
    s.last = r.U64();
    m.sack.push_back(s);
  }
  uint8_t flags = r.U8();
  m.retransmit = (flags & 1) != 0;
  m.shard_replica = (flags & 2) != 0;
  m.epoch = r.U64();
  if ((flags & 4) != 0) {
    uint32_t sections = r.U32();
    m.sections.reserve(sections);
    for (uint32_t i = 0; i < sections; ++i) {
      TupleSection s;
      s.rel = DecodeRel(r, ctx);
      uint32_t rows = r.U32();
      s.tuples.reserve(rows);
      for (uint32_t j = 0; j < rows; ++j) {
        uint32_t arity = r.U32();
        Tuple t;
        t.reserve(arity);
        for (uint32_t k = 0; k < arity; ++k) {
          t.push_back(DecodeWireTerm(r, ctx));
        }
        s.tuples.push_back(std::move(t));
      }
      m.sections.push_back(std::move(s));
    }
  }
  DQSQ_CHECK(r.AtEnd()) << "trailing bytes after wire message";
  return m;
}

// ---- Framing -------------------------------------------------------------

uint32_t WireChecksum(std::string_view payload) {
  uint32_t h = 2166136261u;
  for (char c : payload) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

namespace {

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kShutdown);
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  DQSQ_CHECK_LE(payload.size(), kMaxFramePayload) << "oversized frame";
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(out, kFrameMagic);
  out.push_back(static_cast<char>(type));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, WireChecksum(payload));
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact lazily: drop the consumed prefix once it dominates the buffer,
  // keeping Feed amortized O(bytes).
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

StatusOr<std::optional<Frame>> FrameDecoder::Next() {
  if (poisoned_.has_value()) return *poisoned_;
  auto poison = [this](Status status) {
    poisoned_ = status;
    return status;
  };
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::optional<Frame>();
  const char* header = buffer_.data() + consumed_;
  if (GetU32(header) != kFrameMagic) {
    return poison(InvalidArgumentError(
        "wire framing error: bad magic (stream out of sync)"));
  }
  const uint8_t type = static_cast<uint8_t>(header[4]);
  if (!ValidFrameType(type)) {
    return poison(InvalidArgumentError("wire framing error: unknown type " +
                                       std::to_string(type)));
  }
  const uint32_t len = GetU32(header + 5);
  if (len > kMaxFramePayload) {
    return poison(InvalidArgumentError(
        "wire framing error: payload length " + std::to_string(len) +
        " exceeds bound (stream out of sync)"));
  }
  if (available < kFrameHeaderBytes + len) return std::optional<Frame>();
  const uint32_t checksum = GetU32(header + 9);
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(buffer_, consumed_ + kFrameHeaderBytes, len);
  if (WireChecksum(frame.payload) != checksum) {
    return poison(
        InvalidArgumentError("wire framing error: payload checksum mismatch"));
  }
  consumed_ += kFrameHeaderBytes + len;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace dqsq::dist
