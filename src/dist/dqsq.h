// Driver for distributed QSQ (paper §3.2): each peer rewrites its own
// rules on demand; the driver seeds the query's call pattern (kSubquery)
// and its bound arguments (the in_ relation) at the query relation's
// owner, runs the network to quiescence, and reads the adorned answers.
#ifndef DQSQ_DIST_DQSQ_H_
#define DQSQ_DIST_DQSQ_H_

#include "dist/dnaive.h"

namespace dqsq::dist {

/// Evaluates `query` with dQSQ. Returns the same answers as centralized
/// QSQ / naive evaluation (paper Theorem 1), materializing only demanded
/// facts.
StatusOr<DistResult> DistQsqSolve(DatalogContext& ctx, const Program& program,
                                  const ParsedQuery& query,
                                  const DistOptions& options);

}  // namespace dqsq::dist

#endif  // DQSQ_DIST_DQSQ_H_
