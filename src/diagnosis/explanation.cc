#include "diagnosis/explanation.h"

#include <algorithm>

namespace dqsq::diagnosis {

std::string ExplanationToString(const Explanation& explanation) {
  std::string out;
  for (const std::string& e : explanation.events) {
    out += e;
    out += "\n";
  }
  return out;
}

std::string TransitionConstant(const petri::PetriNet& net,
                               petri::TransitionId t) {
  return petri::TransitionConstantName(net, t);
}

std::string PlaceConstant(const petri::PetriNet& net, petri::PlaceId p) {
  return petri::PlaceConstantName(net, p);
}

namespace {

std::string ConditionTerm(const petri::Unfolding& u, petri::CondId c) {
  const petri::Condition& cond = u.condition(c);
  std::string producer = cond.producer == petri::kInvalidId
                             ? "r"
                             : EventTerm(u, cond.producer);
  return "g(" + producer + "," + PlaceConstant(u.net(), cond.place) + ")";
}

}  // namespace

std::string EventTerm(const petri::Unfolding& u, petri::EventId e) {
  const petri::Event& event = u.event(e);
  std::string out =
      "f(" + TransitionConstant(u.net(), event.transition);
  for (petri::CondId c : event.preset) {
    out += ",";
    out += ConditionTerm(u, c);
  }
  out += ")";
  return out;
}

Explanation FromConfiguration(const petri::Unfolding& u,
                              const petri::Configuration& config) {
  Explanation out;
  for (petri::EventId e : config) out.events.push_back(EventTerm(u, e));
  std::sort(out.events.begin(), out.events.end());
  return out;
}

std::vector<Explanation> Canonicalize(
    std::vector<Explanation> explanations) {
  for (Explanation& e : explanations) {
    std::sort(e.events.begin(), e.events.end());
  }
  std::sort(explanations.begin(), explanations.end());
  explanations.erase(std::unique(explanations.begin(), explanations.end()),
                     explanations.end());
  return explanations;
}

}  // namespace dqsq::diagnosis
