// Multi-tenant online diagnosis service: thousands of concurrent per-plant
// monitoring sessions behind one process (ROADMAP item 2). Each session is
// an OnlineDiagnoser over a registered plant model; what makes the service
// more than a session map is what the sessions share and how they are
// bounded:
//
//  * Shared hash-consed term arena. All sessions of one model run over the
//    model's DatalogContext (OnlineModel), so every Skolem term, symbol
//    and predicate is interned once, not once per session.
//  * Shared subquery/unfolding-prefix cache. A session's answers depend
//    only on its per-peer observation subsequences (the paper's §4.2
//    observation semantics), so the service keys a SubqueryCache on that
//    canonical prefix. Any session reaching a prefix some session already
//    solved gets the answers without touching the evaluator — dQSQ's
//    subquery memoization (§3.2) made cross-session.
//  * Admission control and per-session budgets. OpenSession rejects
//    tenants beyond ServiceOptions::max_sessions; every evaluation runs
//    under session_max_facts (adjustable per session for differentiated
//    tiers).
//  * Cold-session hibernation. At most max_resident_sessions keep their
//    diagnoser (program + database) in memory; colder sessions are
//    serialized through the PeerSnapshot byte codec (dist/snapshot.h) into
//    a DurableStore and rebuilt on their next alarm. The hibernation image
//    is the session's alarm history plus its cached answer — restore
//    replays the history into a fresh diagnoser (no evaluation), and the
//    shared prefix cache makes the next cold query cheap.
//
// Single-threaded by design, like the evaluation core: one service
// instance per serving thread, models shared read-only. Metrics are
// exported under `diag.service.*` (docs/METRICS.md).
#ifndef DQSQ_DIAGNOSIS_SERVICE_H_
#define DQSQ_DIAGNOSIS_SERVICE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/subquery_cache.h"
#include "diagnosis/online.h"
#include "dist/snapshot.h"
#include "petri/alarm.h"
#include "petri/net.h"

namespace dqsq::diagnosis {

struct ServiceOptions {
  /// Admission cap: total sessions, resident + hibernated.
  size_t max_sessions = 100'000;
  /// Sessions allowed to keep their diagnoser in memory; beyond this the
  /// least-recently-touched session is hibernated to the durable store.
  size_t max_resident_sessions = 1024;
  /// Per-session evaluation fact budget (OnlineOptions::max_facts).
  size_t session_max_facts = 5'000'000;
  /// Byte budget of each model's shared prefix cache (0 disables).
  size_t cache_bytes = 64u << 20;
  /// Hibernation target. When null the service owns an in-memory store
  /// (sessions survive eviction but not the process).
  dist::DurableStore* store = nullptr;
};

/// Serialization of explanation sets through the snapshot byte codec —
/// the value format of the shared prefix cache and of hibernation images.
void EncodeExplanations(const std::vector<Explanation>& explanations,
                        dist::SnapshotWriter& w);
std::vector<Explanation> DecodeExplanations(dist::SnapshotReader& r);

/// The canonical cache key of an observation prefix: the per-peer alarm
/// subsequences in sorted peer order ("p1:b,c|p2:a|"). Two sessions whose
/// interleavings differ but whose per-peer subsequences agree have the
/// same explanations, and therefore the same key.
std::string ObservationPrefixKey(const petri::AlarmSequence& history);

class DiagnosisService {
 public:
  explicit DiagnosisService(const ServiceOptions& options = {});

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  /// Registers a plant model (shared context + base program + prefix
  /// cache) under `model`. Fails if the name is taken.
  Status RegisterModel(const std::string& model, const petri::PetriNet& net);

  /// Removes a registered model so the name can be re-registered (e.g. a
  /// plant redeploy). Resident sessions of the model are hibernated first;
  /// they and already-hibernated ones stay admitted, but wake only if a
  /// model of the same name AND structural fingerprint is registered —
  /// waking against a structurally different re-registration fails with
  /// FAILED_PRECONDITION instead of replaying alarms into the wrong plant.
  Status UnregisterModel(const std::string& model);

  /// Admits a new session monitoring one plant of `model`. Fails with
  /// RESOURCE_EXHAUSTED when the admission cap is reached, NOT_FOUND for
  /// an unregistered model, ALREADY_EXISTS for a duplicate session name.
  Status OpenSession(const std::string& session, const std::string& model);

  /// Removes the session (resident or hibernated).
  Status CloseSession(const std::string& session);

  /// Feeds the next alarm of `session`'s plant and returns the
  /// explanations of its whole prefix. Restores a hibernated session
  /// first; consults the shared prefix cache before evaluating. On any
  /// failure (unknown peer, exhausted budget) the session state is
  /// untouched and the call may be retried.
  StatusOr<std::vector<Explanation>> Observe(const std::string& session,
                                             const petri::Alarm& alarm);

  /// Explanations of the session's current prefix.
  StatusOr<std::vector<Explanation>> Current(const std::string& session);

  /// Serializes the session through the snapshot codec into the durable
  /// store and drops its in-memory diagnoser. No-op if already hibernated.
  Status Hibernate(const std::string& session);

  /// Adjusts one session's evaluation budget (differentiated tiers; also
  /// how a budget-failed Observe becomes retryable).
  Status SetSessionBudget(const std::string& session, size_t max_facts);

  size_t num_sessions() const { return sessions_.size(); }
  size_t num_resident() const { return resident_lru_.size(); }
  bool has_session(const std::string& session) const {
    return sessions_.count(session) != 0;
  }
  /// False for hibernated sessions (and unknown ones).
  bool is_resident(const std::string& session) const;
  /// Alarms the session has observed; NOT_FOUND for unknown sessions.
  StatusOr<size_t> NumObserved(const std::string& session) const;

  /// The shared prefix cache of `model`, or nullptr if unregistered.
  const SubqueryCache* cache(const std::string& model) const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct ModelEntry {
    std::string name;
    /// Structural hash of the registered PetriNet (ModelFingerprint):
    /// admission identity across unregister/re-register cycles.
    uint64_t fingerprint = 0;
    OnlineModel model;
    SubqueryCache cache;

    ModelEntry(std::string n, uint64_t fp, OnlineModel m, size_t cache_bytes)
        : name(std::move(n)),
          fingerprint(fp),
          model(std::move(m)),
          cache(cache_bytes) {}
  };

  struct Session {
    std::string name;
    /// Sessions reference their model by name + fingerprint, never by
    /// pointer: a hibernated session must survive the model being
    /// unregistered, and must be refused residency (FAILED_PRECONDITION)
    /// if the name was re-registered with different structure.
    std::string model_name;
    uint64_t model_fingerprint = 0;
    size_t max_facts = 0;
    petri::AlarmSequence history;
    /// Null while hibernated.
    std::unique_ptr<OnlineDiagnoser> diagnoser;
    /// Position in resident_lru_ (valid only while resident).
    std::list<Session*>::iterator lru_pos;
  };

  Session* FindSession(const std::string& session);
  /// The live ModelEntry the session may run over, or FAILED_PRECONDITION
  /// when the model is gone / structurally different from admission time.
  StatusOr<ModelEntry*> ResolveModel(const Session& s);
  std::string StoreKey(const Session& s) const {
    return "diag.session/" + s.name;
  }

  /// Serialized hibernation image of a resident session.
  std::string SerializeSession(Session& s);

  /// Restores `s` from the durable store if hibernated; then bumps it to
  /// the front of the resident LRU and hibernates colder sessions until
  /// the residency cap holds.
  Status EnsureResident(Session& s);
  void TouchResident(Session& s);
  Status EnforceResidencyCap(Session* keep);
  Status HibernateSession(Session& s);

  ServiceOptions options_;
  std::unique_ptr<dist::InMemoryDurableStore> owned_store_;
  dist::DurableStore* store_;
  std::map<std::string, std::unique_ptr<ModelEntry>> models_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  std::list<Session*> resident_lru_;  // front = most recently touched
};

}  // namespace dqsq::diagnosis

#endif  // DQSQ_DIAGNOSIS_SERVICE_H_
