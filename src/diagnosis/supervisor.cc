#include "diagnosis/supervisor.h"

#include "common/logging.h"
#include "diagnosis/explanation.h"
#include "diagnosis/rule_builder.h"

namespace dqsq::diagnosis {

using petri::PetriNet;
using petri::TransitionId;

AlarmAutomaton ChainAutomaton(const std::vector<std::string>& symbols) {
  AlarmAutomaton a;
  a.num_states = static_cast<uint32_t>(symbols.size()) + 1;
  for (uint32_t i = 0; i < symbols.size(); ++i) {
    a.edges.push_back({i, symbols[i], i + 1});
  }
  a.accepting = {a.num_states - 1};
  return a;
}

StatusOr<SupervisorProgram> BuildSupervisor(
    const PetriNet& net, const EncodedNet& encoded,
    const std::map<std::string, AlarmAutomaton>& automata,
    const SupervisorOptions& options, DatalogContext& ctx) {
  SupervisorProgram out;
  const std::string& sup = options.supervisor_peer;
  out.supervisor = ctx.symbols().Intern(sup);
  RuleBuilder b(&ctx);
  Program& prog = out.program;

  // Ordered peer list = positions of the configuration index.
  std::vector<std::string> observed;
  for (const auto& [peer, automaton] : automata) {
    observed.push_back(peer);
    if (automaton.accepting.empty()) {
      return InvalidArgumentError("automaton of peer " + peer +
                                  " has no accepting state");
    }
  }
  const size_t m = observed.size();
  const bool hidden = options.max_hidden > 0;

  auto state_const = [](const std::string& peer, uint32_t s) {
    return "st_" + peer + "_" + std::to_string(s);
  };
  auto hb_const = [](uint32_t l) { return "hb_" + std::to_string(l); };

  // Automaton facts.
  for (const auto& [peer, automaton] : automata) {
    for (const auto& edge : automaton.edges) {
      prog.rules.push_back(b.Build(
          b.MakeAtom("aedge_" + peer, sup,
                     {b.C(state_const(peer, edge.from)),
                      b.C("al_" + edge.symbol),
                      b.C(state_const(peer, edge.to))}),
          {}));
    }
    for (uint32_t s : automaton.accepting) {
      prog.rules.push_back(b.Build(
          b.MakeAtom("aaccept_" + peer, sup, {b.C(state_const(peer, s))}),
          {}));
    }
  }
  if (hidden) {
    for (uint32_t l = 0; l < options.max_hidden; ++l) {
      prog.rules.push_back(b.Build(
          b.MakeAtom("hbnext", sup, {b.C(hb_const(l)), b.C(hb_const(l + 1))}),
          {}));
    }
  }

  // Initial configuration: empty, id h(r), all automata in state 0.
  {
    std::vector<Pattern> args{b.App("h", {b.C("r")}), b.App("h", {b.C("r")}),
                              b.C("r")};
    for (const std::string& peer : observed) {
      args.push_back(b.C(state_const(peer, 0)));
    }
    if (hidden) args.push_back(b.C(hb_const(0)));
    prog.rules.push_back(b.Build(b.MakeAtom("cfgp", sup, std::move(args)), {}));
  }
  prog.rules.push_back(b.Build(
      b.MakeAtom("inconf", sup, {b.App("h", {b.C("r")}), b.C("r")}), {}));

  // Index variables I0..I{m-1} for the cfgp body, with position j replaced.
  auto index_vars = [&](int replaced, const std::string& with) {
    std::vector<Pattern> out_vars;
    for (size_t j = 0; j < m; ++j) {
      if (static_cast<int>(j) == replaced) {
        out_vars.push_back(b.V(with));
      } else {
        out_vars.push_back(b.V("I" + std::to_string(j)));
      }
    }
    return out_vars;
  };

  // Extension rules.
  for (TransitionId t = 0; t < net.num_transitions(); ++t) {
    const petri::Transition& tr = net.transition(t);
    const std::string p = net.peer_name(tr.peer);
    const uint32_t k = static_cast<uint32_t>(tr.pre.size());

    int pos = -1;
    for (size_t j = 0; j < m; ++j) {
      if (observed[j] == p) pos = static_cast<int>(j);
    }

    if (tr.observable) {
      if (pos < 0) continue;  // silent peer: observable firings impossible
      if (!options.open_automata) {
        // Only worth generating if the automaton mentions this symbol.
        bool mentioned = false;
        for (const auto& edge : automata.at(p).edges) {
          mentioned |= (edge.symbol == tr.alarm);
        }
        if (!mentioned) continue;
      }
    } else if (!hidden) {
      continue;
    }

    std::vector<Atom> body;
    if (tr.observable) {
      body.push_back(b.MakeAtom("aedge_" + p, sup,
                                {b.V("J"), b.C("al_" + tr.alarm), b.V("J2")}));
    } else {
      body.push_back(b.MakeAtom("hbnext", sup, {b.V("H"), b.V("H2")}));
    }
    {
      std::vector<Pattern> args{b.V("Z"), b.V("W"), b.V("Y")};
      for (Pattern& ip : index_vars(tr.observable ? pos : -1, "J")) {
        args.push_back(std::move(ip));
      }
      if (hidden) args.push_back(b.V("H"));
      body.push_back(b.MakeAtom("cfgp", sup, std::move(args)));
    }
    for (uint32_t i = 0; i < k; ++i) {
      body.push_back(
          b.MakeAtom("inconf", sup, {b.V("Z"), b.V("U" + std::to_string(i))}));
    }
    for (uint32_t i = 0; i < k; ++i) {
      body.push_back(b.MakeAtom(
          "notparent", sup,
          {b.V("Z"), b.App("g", {b.V("U" + std::to_string(i)),
                                 b.C(PlaceConstant(net, tr.pre[i]))})}));
    }
    // The event is named by its full Skolem term f(tr_t, g(U0,c0), ...):
    // demanding the ground id (all-bound pattern) materializes exactly
    // this transition's instance — a sibling transition with the same
    // preset but a different alarm is not touched (Theorem 4 exactness).
    auto event_term = [&]() {
      std::vector<Pattern> args{b.C(TransitionConstant(net, t))};
      for (uint32_t i = 0; i < k; ++i) {
        args.push_back(b.App("g", {b.V("U" + std::to_string(i)),
                                   b.C(PlaceConstant(net, tr.pre[i]))}));
      }
      return b.App("f", std::move(args));
    };
    {
      std::vector<Pattern> args{event_term()};
      for (uint32_t i = 0; i < k; ++i) {
        args.push_back(b.App("g", {b.V("U" + std::to_string(i)),
                                   b.C(PlaceConstant(net, tr.pre[i]))}));
      }
      body.push_back(b.MakeAtom(TransPredName(k), p, std::move(args)));
    }
    // Head: extend Z with the event, advancing peer p's state (or the
    // hidden budget).
    std::vector<Pattern> head_args{b.App("h", {b.V("Z"), event_term()}),
                                   b.V("Z"), event_term()};
    for (Pattern& ip : index_vars(tr.observable ? pos : -1,
                                  tr.observable ? "J2" : "J")) {
      head_args.push_back(std::move(ip));
    }
    if (hidden) head_args.push_back(b.V(tr.observable ? "H" : "H2"));
    prog.rules.push_back(
        b.Build(b.MakeAtom("cfgp", sup, std::move(head_args)),
                std::move(body)));
  }

  // inconf: project the last event, then chase shorter prefixes.
  {
    std::vector<Pattern> args{b.V("Z"), b.V("W"), b.V("X")};
    for (size_t j = 0; j < m; ++j) args.push_back(b.V("I" + std::to_string(j)));
    if (hidden) args.push_back(b.V("H"));
    prog.rules.push_back(b.Build(
        b.MakeAtom("inconf", sup, {b.V("Z"), b.V("X")}),
        {b.MakeAtom("cfgp", sup, std::move(args))}));
  }
  {
    std::vector<Pattern> args{b.V("Z"), b.V("W"), b.V("Y")};
    for (size_t j = 0; j < m; ++j) args.push_back(b.V("I" + std::to_string(j)));
    if (hidden) args.push_back(b.V("H"));
    prog.rules.push_back(b.Build(
        b.MakeAtom("inconf", sup, {b.V("Z"), b.V("X")}),
        {b.MakeAtom("cfgp", sup, std::move(args)),
         b.MakeAtom("inconf", sup, {b.V("W"), b.V("X")})}));
  }

  // notparent: every condition is unconsumed in the empty configuration...
  for (SymbolId peer_sym : encoded.peer_symbol) {
    const std::string q_peer = ctx.symbols().Name(peer_sym);
    prog.rules.push_back(b.Build(
        b.MakeAtom("notparent", sup, {b.App("h", {b.C("r")}), b.V("M")}),
        {b.MakeAtom("uplaces", q_peer, {b.V("M"), b.V("W2")})}));
  }
  // ...and stays unconsumed when the extending event does not consume it.
  for (petri::PeerIndex pi = 0; pi < net.num_peers(); ++pi) {
    const std::string p = net.peer_name(pi);
    for (uint32_t k : encoded.arities) {
      std::vector<Atom> body;
      std::vector<Diseq> diseqs;
      {
        std::vector<Pattern> args{b.V("Z"), b.V("W"), b.V("Y")};
        for (size_t j = 0; j < m; ++j) {
          args.push_back(b.V("I" + std::to_string(j)));
        }
        if (hidden) args.push_back(b.V("H"));
        body.push_back(b.MakeAtom("cfgp", sup, std::move(args)));
      }
      {
        std::vector<Pattern> args{b.V("Y")};
        for (uint32_t i = 0; i < k; ++i) {
          args.push_back(b.V("U" + std::to_string(i)));
        }
        body.push_back(b.MakeAtom(TransPredName(k), p, std::move(args)));
      }
      for (uint32_t i = 0; i < k; ++i) {
        diseqs.push_back(Diseq{b.V("M"), b.V("U" + std::to_string(i))});
      }
      body.push_back(b.MakeAtom("notparent", sup, {b.V("W"), b.V("M")}));
      prog.rules.push_back(
          b.Build(b.MakeAtom("notparent", sup, {b.V("Z"), b.V("M")}),
                  std::move(body), std::move(diseqs)));
    }
  }

  out.observed_peers = observed;
  out.cfgp_arity = static_cast<uint32_t>(3 + m + (hidden ? 1 : 0));

  // The query: configurations whose every automaton accepts.
  if (options.emit_query) {
    std::vector<Atom> body;
    std::vector<Pattern> args{b.V("Z"), b.V("W"), b.V("Y")};
    for (size_t j = 0; j < m; ++j) args.push_back(b.V("F" + std::to_string(j)));
    if (hidden) args.push_back(b.V("H"));
    body.push_back(b.MakeAtom("cfgp", sup, std::move(args)));
    for (size_t j = 0; j < m; ++j) {
      body.push_back(b.MakeAtom("aaccept_" + observed[j], sup,
                                {b.V("F" + std::to_string(j))}));
    }
    body.push_back(b.MakeAtom("inconf", sup, {b.V("Z"), b.V("X")}));
    prog.rules.push_back(b.Build(
        b.MakeAtom("q", sup, {b.V("Z"), b.V("X")}), std::move(body)));
  }

  DQSQ_RETURN_IF_ERROR(ValidateProgram(prog, ctx));

  if (options.emit_query) {
    // The query atom q@sup(Z, X).
    ParsedQuery query;
    query.num_vars = 2;
    query.var_names = {"Z", "X"};
    query.atom.rel.pred = ctx.InternPredicate("q", 2);
    query.atom.rel.peer = out.supervisor;
    query.atom.args = {Pattern::Var(0), Pattern::Var(1)};
    out.query = std::move(query);
  }
  return out;
}

StatusOr<SupervisorProgram> BuildSupervisorForSequence(
    const PetriNet& net, const EncodedNet& encoded,
    const petri::AlarmSequence& alarms, const SupervisorOptions& options,
    DatalogContext& ctx) {
  std::map<std::string, AlarmAutomaton> automata;
  for (const auto& [peer, symbols] : petri::SplitByPeer(alarms)) {
    automata[peer] = ChainAutomaton(symbols);
  }
  return BuildSupervisor(net, encoded, automata, options, ctx);
}

}  // namespace dqsq::diagnosis
