#include "diagnosis/diagnoser.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "common/metrics.h"
#include "datalog/engine.h"
#include "diagnosis/encoder.h"
#include "dist/dqsq.h"
#include "petri/bfhj.h"
#include "petri/reference_diagnoser.h"
#include "petri/unfolding.h"

namespace dqsq::diagnosis {

std::string EngineName(DiagnosisEngine engine) {
  switch (engine) {
    case DiagnosisEngine::kReference:
      return "reference";
    case DiagnosisEngine::kBfhj:
      return "bfhj";
    case DiagnosisEngine::kCentralSemiNaive:
      return "central_seminaive";
    case DiagnosisEngine::kCentralQsq:
      return "central_qsq";
    case DiagnosisEngine::kCentralMagic:
      return "central_magic";
    case DiagnosisEngine::kDistQsq:
      return "dist_qsq";
  }
  return "unknown";
}

namespace {

bool MatchesBase(const std::string& name, const std::string& base) {
  if (name == base) return true;
  const std::string prefix = base + "__";
  return name.size() > prefix.size() &&
         name.compare(0, prefix.size(), prefix) == 0;
}

/// Turns q(z, x) answer rows into canonical explanations: group by
/// configuration id z, render each event term, drop the virtual root.
std::vector<Explanation> ExtractExplanations(
    const std::vector<Tuple>& answers, const DatalogContext& ctx) {
  SymbolId r_sym;
  bool has_r = const_cast<DatalogContext&>(ctx).symbols().Lookup("r", &r_sym);
  std::map<TermId, std::vector<std::string>> by_config;
  for (const Tuple& row : answers) {
    DQSQ_CHECK_EQ(row.size(), 2u);
    TermId z = row[0];
    TermId x = row[1];
    auto& events = by_config[z];  // creates entries for empty configs too
    if (has_r && ctx.arena().IsConstant(x) && ctx.arena().Symbol(x) == r_sym) {
      continue;  // the virtual root is not an event
    }
    events.push_back(ctx.arena().ToString(x, ctx.symbols()));
  }
  std::vector<Explanation> out;
  for (auto& [z, events] : by_config) {
    Explanation e;
    e.events = std::move(events);
    out.push_back(std::move(e));
  }
  return Canonicalize(std::move(out));
}

struct DatalogSetup {
  DatalogContext ctx;
  Program combined;
  ParsedQuery query;
  std::vector<uint32_t> arities;
};

Status Prepare(const petri::PetriNet& net,
               const std::map<std::string, AlarmAutomaton>& automata,
               const DiagnosisOptions& options, DatalogSetup& setup) {
  DQSQ_ASSIGN_OR_RETURN(EncodedNet encoded, EncodeNet(net, setup.ctx));
  SupervisorOptions sopts;
  sopts.max_hidden = options.max_hidden;
  DQSQ_ASSIGN_OR_RETURN(
      SupervisorProgram sup,
      BuildSupervisor(net, encoded, automata, sopts, setup.ctx));
  setup.combined = std::move(encoded.program);
  for (Rule& rule : sup.program.rules) {
    setup.combined.rules.push_back(std::move(rule));
  }
  setup.query = std::move(sup.query);
  setup.arities = encoded.arities;
  return Status::Ok();
}

StatusOr<DiagnosisResult> RunDatalog(
    const petri::PetriNet& net,
    const std::map<std::string, AlarmAutomaton>& automata,
    const DiagnosisOptions& options, uint32_t depth_hint) {
  DatalogSetup setup;
  DQSQ_RETURN_IF_ERROR(Prepare(net, automata, options, setup));

  DiagnosisResult result;
  EvalOptions eopts;
  eopts.max_facts = options.max_facts;

  if (options.engine == DiagnosisEngine::kDistQsq) {
    dist::DistOptions dopts;
    dopts.seed = options.seed;
    dopts.eval = eopts;
    DQSQ_ASSIGN_OR_RETURN(
        dist::DistResult dres,
        dist::DistQsqSolve(setup.ctx, setup.combined, setup.query, dopts));
    result.explanations = ExtractExplanations(dres.answers, setup.ctx);
    result.total_facts = dres.total_facts;
    result.messages = dres.net_stats.messages_delivered;
    result.tuples_shipped = dres.net_stats.tuples_shipped;
    for (const auto& [name, count] : dres.relation_counts) {
      for (uint32_t k : setup.arities) {
        if (MatchesBase(name, TransPredName(k))) result.trans_facts += count;
      }
      if (MatchesBase(name, "uplaces")) result.places_facts += count;
    }
    return result;
  }

  Strategy strategy;
  switch (options.engine) {
    case DiagnosisEngine::kCentralSemiNaive: {
      strategy = Strategy::kSemiNaive;
      uint32_t depth = options.naive_term_depth;
      if (depth == 0) {
        if (depth_hint == 0) {
          return InvalidArgumentError(
              "central_seminaive needs naive_term_depth for pattern "
              "observations (the unfolding program is infinite)");
        }
        depth = depth_hint;
      }
      eopts.max_term_depth = depth;
      eopts.depth_policy = EvalOptions::DepthPolicy::kPrune;
      break;
    }
    case DiagnosisEngine::kCentralQsq:
      strategy = Strategy::kQsq;
      break;
    case DiagnosisEngine::kCentralMagic:
      strategy = Strategy::kMagic;
      break;
    default:
      return InternalError("unexpected engine");
  }

  Database db(&setup.ctx);
  DQSQ_ASSIGN_OR_RETURN(
      QueryResult qres,
      SolveQuery(setup.combined, db, setup.query, strategy, eopts));
  result.explanations = ExtractExplanations(qres.answers, setup.ctx);
  result.total_facts = db.TotalFacts();

  // The materialized unfolding nodes (Theorem 4's set): distinct first
  // arguments of the trans/places relations across all adorned variants —
  // the same node demanded under two binding patterns is still one node.
  {
    std::set<std::string> events, conditions;
    for (const RelId& rel : db.Relations()) {
      const std::string& name = setup.ctx.PredicateName(rel.pred);
      bool is_trans = false;
      for (uint32_t k : setup.arities) {
        is_trans |= MatchesBase(name, TransPredName(k));
      }
      bool is_places = MatchesBase(name, "uplaces");
      if (!is_trans && !is_places) continue;
      const Relation* relation = db.Find(rel);
      for (size_t row = 0; row < relation->size(); ++row) {
        std::string term = setup.ctx.arena().ToString(relation->Row(row)[0],
                                                      setup.ctx.symbols());
        (is_trans ? events : conditions).insert(std::move(term));
      }
    }
    result.trans_facts = events.size();
    result.places_facts = conditions.size();
    result.materialized_events.assign(events.begin(), events.end());
    result.materialized_conditions.assign(conditions.begin(),
                                          conditions.end());
  }
  return result;
}

// Per-engine result accounting (diagnosis.* in docs/METRICS.md).
void RecordDiagnosisMetrics(DiagnosisEngine engine,
                            const DiagnosisResult& result) {
  auto& registry = MetricsRegistry::Global();
  Labels labels{{"engine", EngineName(engine)}};
  registry.GetCounter("diagnosis.runs", labels).Increment();
  registry.GetCounter("diagnosis.explanations", labels, "configs")
      .Increment(result.explanations.size());
  registry.GetCounter("diagnosis.trans_facts", labels, "facts")
      .Increment(result.trans_facts);
  registry.GetCounter("diagnosis.places_facts", labels, "facts")
      .Increment(result.places_facts);
}

StatusOr<DiagnosisResult> DiagnoseImpl(const petri::PetriNet& net,
                                       const petri::AlarmSequence& alarms,
                                       const DiagnosisOptions& options) {
  switch (options.engine) {
    case DiagnosisEngine::kReference: {
      petri::UnfoldOptions uopts;
      uopts.max_events = options.max_unfolding_events;
      uopts.max_depth = alarms.size() + options.max_hidden + 1;
      DQSQ_ASSIGN_OR_RETURN(petri::Unfolding u,
                            petri::Unfolding::Build(net, uopts));
      petri::ReferenceOptions ropts;
      ropts.max_steps = options.max_search_steps;
      ropts.allow_unobservable = options.max_hidden > 0;
      ropts.max_unobservable = options.max_hidden;
      DQSQ_ASSIGN_OR_RETURN(petri::ReferenceResult rres,
                            petri::ReferenceDiagnose(u, alarms, ropts));
      DiagnosisResult result;
      for (const petri::Configuration& c : rres.explanations) {
        result.explanations.push_back(FromConfiguration(u, c));
      }
      result.explanations = Canonicalize(std::move(result.explanations));
      result.trans_facts = u.num_events();
      result.places_facts = u.num_conditions();
      {
        std::set<std::string> events, conditions;
        for (petri::EventId e = 0; e < u.num_events(); ++e) {
          events.insert(EventTerm(u, e));
        }
        result.materialized_events.assign(events.begin(), events.end());
      }
      return result;
    }
    case DiagnosisEngine::kBfhj: {
      petri::UnfoldOptions uopts;
      uopts.max_events = options.max_unfolding_events;
      uopts.max_depth = alarms.size() + options.max_hidden + 1;
      DQSQ_ASSIGN_OR_RETURN(petri::Unfolding original,
                            petri::Unfolding::Build(net, uopts));
      petri::BfhjOptions bopts;
      bopts.max_events = options.max_unfolding_events;
      bopts.max_steps = options.max_search_steps;
      bopts.max_unobservable = options.max_hidden;
      DQSQ_ASSIGN_OR_RETURN(
          petri::BfhjResult bres,
          petri::BfhjDiagnose(net, alarms, bopts, &original));
      DiagnosisResult result;
      for (const petri::Configuration& c : bres.explanations) {
        result.explanations.push_back(FromConfiguration(original, c));
      }
      result.explanations = Canonicalize(std::move(result.explanations));
      result.trans_facts = bres.events_materialized;
      result.places_facts = bres.conditions_materialized;
      result.materialized_events = std::move(bres.projected_event_terms);
      result.materialized_conditions =
          std::move(bres.projected_condition_terms);
      return result;
    }
    default: {
      std::map<std::string, AlarmAutomaton> automata;
      for (const auto& [peer, symbols] : petri::SplitByPeer(alarms)) {
        automata[peer] = ChainAutomaton(symbols);
      }
      uint32_t depth_hint = static_cast<uint32_t>(
          2 * (alarms.size() + options.max_hidden) + 4);
      return RunDatalog(net, automata, options, depth_hint);
    }
  }
}

}  // namespace

StatusOr<DiagnosisResult> Diagnose(const petri::PetriNet& net,
                                   const petri::AlarmSequence& alarms,
                                   const DiagnosisOptions& options) {
  ScopedTimer timer(TimeMetric(
      "diagnosis.wall_ns", Labels{{"engine", EngineName(options.engine)}}));
  DQSQ_ASSIGN_OR_RETURN(DiagnosisResult result,
                        DiagnoseImpl(net, alarms, options));
  RecordDiagnosisMetrics(options.engine, result);
  return result;
}

StatusOr<DiagnosisResult> DiagnosePattern(
    const petri::PetriNet& net,
    const std::map<std::string, AlarmAutomaton>& automata,
    const DiagnosisOptions& options) {
  switch (options.engine) {
    case DiagnosisEngine::kReference:
    case DiagnosisEngine::kBfhj:
      return UnimplementedError(
          "pattern diagnosis is supported by the Datalog engines only");
    default: {
      ScopedTimer timer(TimeMetric(
          "diagnosis.wall_ns", Labels{{"engine", EngineName(options.engine)}}));
      DQSQ_ASSIGN_OR_RETURN(DiagnosisResult result,
                            RunDatalog(net, automata, options,
                                       /*depth_hint=*/0));
      RecordDiagnosisMetrics(options.engine, result);
      return result;
    }
  }
}

}  // namespace dqsq::diagnosis
