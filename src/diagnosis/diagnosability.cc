#include "diagnosis/diagnosability.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "datalog/database.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "dist/dnaive.h"
#include "dist/dqsq.h"

namespace dqsq::diagnosis {

namespace {

using petri::AmbiguousWitness;
using petri::Marking;
using petri::PeerIndex;
using petri::VerifierEdge;
using petri::VerifierNet;

std::string PeerName(PeerIndex peer) {
  return "p" + std::to_string(peer);
}

/// Renders one located fact "rel@peer(a, b)." — program-text form.
void AppendFact(std::string& out, const std::string& rel,
                const std::string& peer, const std::string& a,
                const std::string& b = "") {
  out += rel;
  out += '@';
  out += peer;
  out += '(';
  out += a;
  if (!b.empty()) {
    out += ", ";
    out += b;
  }
  out += ").\n";
}

/// Sorted anchor constants of the answer tuples ("v12").
std::vector<std::string> AnchorStrings(const std::vector<Tuple>& answers,
                                       const DatalogContext& ctx) {
  std::vector<std::string> out;
  out.reserve(answers.size());
  for (const Tuple& t : answers) {
    DQSQ_CHECK(t.size() == 1);
    out.push_back(ctx.arena().ToString(t[0], ctx.symbols()));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Maps an oracle witness into VerifierNet state numbering by replaying
/// its prefix through the token game: the two constructions intern states
/// in different orders (BFS discovery vs ordered-map), so the anchor id
/// must be recovered from the anchor's (left, right, fault) content.
StatusOr<uint32_t> TranslateAnchor(const petri::PetriNet& net,
                                   const VerifierNet& verifier,
                                   const AmbiguousWitness& witness) {
  Marking left = net.initial_marking();
  Marking right = net.initial_marking();
  bool fault = false;
  for (const petri::VerifierStep& step : witness.prefix) {
    if (step.move != petri::VerifierMove::kRight) {
      DQSQ_ASSIGN_OR_RETURN(left, net.Fire(left, step.left));
      fault = fault || net.transition(step.left).fault;
    }
    if (step.move != petri::VerifierMove::kLeft) {
      DQSQ_ASSIGN_OR_RETURN(right, net.Fire(right, step.right));
    }
  }
  for (uint32_t s = 0; s < verifier.num_states(); ++s) {
    const petri::VerifierState& v = verifier.state(s);
    if (v.fault == fault && v.left == left && v.right == right) return s;
  }
  return NotFoundError("oracle witness anchor has no VerifierNet state");
}

/// Picks the lowest-numbered anchor that admits a cycle, extracts its
/// lasso and replay-checks it — every "not diagnosable" verdict leaves
/// this function with a machine-validated counterexample or an error.
Status AttachWitness(const petri::PetriNet& net, const VerifierNet& verifier,
                     DiagnosabilityResult& result) {
  std::vector<uint32_t> anchors;
  for (const std::string& name : result.witness_anchors) {
    uint32_t s = verifier.FindState(name);
    if (s == petri::kInvalidId) {
      return InternalError("unknown witness anchor " + name);
    }
    anchors.push_back(s);
  }
  std::sort(anchors.begin(), anchors.end());
  Status last = InternalError("no witness anchors");
  for (uint32_t anchor : anchors) {
    auto witness = verifier.ExtractWitness(anchor);
    if (!witness.ok()) {
      last = witness.status();
      continue;
    }
    DQSQ_RETURN_IF_ERROR(petri::ReplayWitness(net, *witness));
    result.witness = *std::move(witness);
    return Status::Ok();
  }
  return last;
}

void RecordMetrics(const DiagnosabilityResult& result,
                   DiagnosabilityEngine engine) {
  auto& registry = MetricsRegistry::Global();
  Labels labels{{"engine", DiagnosabilityEngineName(engine)}};
  registry.GetCounter("diag.verify.runs", labels).Increment();
  registry
      .GetCounter(result.diagnosable ? "diag.verify.diagnosable"
                                     : "diag.verify.undiagnosable",
                  labels)
      .Increment();
  registry.GetCounter("diag.verify.states", labels, "states")
      .Increment(result.verifier_states);
  registry.GetCounter("diag.verify.edges", labels, "edges")
      .Increment(result.verifier_edges);
  registry.GetCounter("diag.verify.facts", labels, "facts")
      .Increment(result.total_facts);
}

}  // namespace

std::string DiagnosabilityEngineName(DiagnosabilityEngine engine) {
  switch (engine) {
    case DiagnosabilityEngine::kReference:
      return "reference";
    case DiagnosabilityEngine::kCentralSemiNaive:
      return "seminaive";
    case DiagnosabilityEngine::kCentralQsq:
      return "qsq";
    case DiagnosabilityEngine::kDistNaive:
      return "dnaive";
    case DiagnosabilityEngine::kDistQsq:
      return "dqsq";
  }
  return "unknown";
}

StatusOr<VerifierProgramText> BuildVerifierProgramText(
    const VerifierNet& verifier) {
  VerifierProgramText out;
  out.query = "witness@ver0(X)";

  // Facts, deduplicated (distinct transitions can induce the same verifier
  // edge at the same peer) and emitted in sorted order so the rendered
  // text is a deterministic function of the verifier graph.
  std::set<std::pair<PeerIndex, std::pair<uint32_t, uint32_t>>> edge_facts,
      aedge_facts, fmove_facts;
  for (const VerifierEdge& e : verifier.edges()) {
    auto key = std::make_pair(e.peer, std::make_pair(e.from, e.to));
    edge_facts.insert(key);
    if (verifier.ambiguous(e.from)) {
      aedge_facts.insert(key);
      if (e.AdvancesFaultyCopy()) fmove_facts.insert(key);
    }
  }

  std::string& text = out.program;
  text += "% Twin-plant verifier reachability (diagnosis/diagnosability.h).\n";
  AppendFact(text, "init", "ver0",
             VerifierNet::StateName(verifier.initial_state()));
  auto emit = [&](const char* rel, const auto& facts) {
    for (const auto& [peer, ft] : facts) {
      AppendFact(text, rel, PeerName(peer), VerifierNet::StateName(ft.first),
                 VerifierNet::StateName(ft.second));
    }
  };
  emit("edge", edge_facts);
  emit("aedge", aedge_facts);
  emit("fmove", fmove_facts);

  // Owners: the peers holding verifier edges. An edge-free verifier (a net
  // with nothing enabled) still needs every intensional predicate defined,
  // so ver0 stands in as the sole owner.
  std::set<PeerIndex> owner_set;
  for (const auto& [peer, ft] : edge_facts) owner_set.insert(peer);
  std::vector<std::string> owners;
  for (PeerIndex peer : owner_set) owners.push_back(PeerName(peer));
  if (owners.empty()) owners.push_back("ver0");
  // reach facts feeding a rule body can live at any owner or at ver0
  // (init's home), so body atoms range over owners ∪ {ver0}.
  std::vector<std::string> sources = owners;
  sources.push_back("ver0");
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

  text += "reach@ver0(X) :- init@ver0(X).\n";
  for (const std::string& p : owners) {
    for (const std::string& q : sources) {
      text += "reach@" + p + "(Y) :- reach@" + q + "(X), edge@" + p +
              "(X, Y).\n";
    }
  }
  for (const std::string& p : owners) {
    for (const std::string& q : sources) {
      text += "seed@" + p + "(X, Y) :- reach@" + q + "(X), fmove@" + p +
              "(X, Y).\n";
    }
  }
  for (const std::string& p : owners) {
    text += "walk@" + p + "(X, Y) :- seed@" + p + "(X, Y).\n";
    for (const std::string& q : owners) {
      text += "walk@" + p + "(X, Z) :- walk@" + q + "(X, Y), aedge@" + p +
              "(Y, Z).\n";
    }
  }
  for (const std::string& q : owners) {
    text += "witness@ver0(X) :- walk@" + q + "(X, X).\n";
  }
  return out;
}

StatusOr<DiagnosabilityResult> CheckDiagnosability(
    const petri::PetriNet& net, const DiagnosabilityOptions& options) {
  DQSQ_ASSIGN_OR_RETURN(VerifierNet verifier,
                        VerifierNet::Build(net, options.verifier));
  DiagnosabilityResult result;
  result.verifier_states = verifier.num_states();
  result.verifier_edges = verifier.edges().size();

  if (options.engine == DiagnosabilityEngine::kReference) {
    petri::ReferenceVerifierOptions ref_options;
    ref_options.max_states = options.verifier.max_states;
    DQSQ_ASSIGN_OR_RETURN(petri::ReferenceVerifierResult ref,
                          petri::ReferenceDiagnosability(net, ref_options));
    result.diagnosable = ref.diagnosable;
    if (!ref.diagnosable) {
      DQSQ_CHECK(ref.witness.has_value());
      DQSQ_ASSIGN_OR_RETURN(uint32_t anchor,
                            TranslateAnchor(net, verifier, *ref.witness));
      result.witness_anchors.push_back(VerifierNet::StateName(anchor));
      if (options.extract_witness) {
        AmbiguousWitness witness = *ref.witness;
        witness.anchor = anchor;
        DQSQ_RETURN_IF_ERROR(petri::ReplayWitness(net, witness));
        result.witness = std::move(witness);
      }
    }
    RecordMetrics(result, options.engine);
    return result;
  }

  DQSQ_ASSIGN_OR_RETURN(VerifierProgramText text,
                        BuildVerifierProgramText(verifier));
  DatalogContext ctx;
  DQSQ_ASSIGN_OR_RETURN(Program program, ParseProgram(text.program, ctx));
  DQSQ_ASSIGN_OR_RETURN(ParsedQuery query, ParseQuery(text.query, ctx));

  switch (options.engine) {
    case DiagnosabilityEngine::kCentralSemiNaive:
    case DiagnosabilityEngine::kCentralQsq: {
      Strategy strategy =
          options.engine == DiagnosabilityEngine::kCentralSemiNaive
              ? Strategy::kSemiNaive
              : Strategy::kQsq;
      Database db(&ctx);
      DQSQ_ASSIGN_OR_RETURN(
          QueryResult solved,
          SolveQuery(program, db, query, strategy, options.eval));
      result.witness_anchors = AnchorStrings(solved.answers, ctx);
      result.total_facts = solved.derived_facts;
      break;
    }
    case DiagnosabilityEngine::kDistNaive:
    case DiagnosabilityEngine::kDistQsq: {
      dist::DistOptions dist_options;
      dist_options.seed = options.seed;
      dist_options.eval = options.eval;
      dist_options.max_network_steps = options.max_network_steps;
      dist_options.num_shards = options.num_shards;
      DQSQ_ASSIGN_OR_RETURN(
          dist::DistResult solved,
          options.engine == DiagnosabilityEngine::kDistNaive
              ? dist::DistNaiveSolve(ctx, program, query, dist_options)
              : dist::DistQsqSolve(ctx, program, query, dist_options));
      result.witness_anchors = AnchorStrings(solved.answers, ctx);
      result.total_facts = solved.total_facts;
      result.messages = solved.net_stats.messages_delivered;
      result.tuples_shipped = solved.net_stats.tuples_shipped;
      break;
    }
    case DiagnosabilityEngine::kReference:
      return InternalError("unreachable");
  }

  result.diagnosable = result.witness_anchors.empty();
  if (!result.diagnosable && options.extract_witness) {
    DQSQ_RETURN_IF_ERROR(AttachWitness(net, verifier, result));
  }
  RecordMetrics(result, options.engine);
  return result;
}

}  // namespace dqsq::diagnosis
