#include "diagnosis/encoder.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/logging.h"
#include "diagnosis/explanation.h"
#include "diagnosis/rule_builder.h"

namespace dqsq::diagnosis {

namespace {

using petri::PetriNet;
using petri::PlaceId;
using petri::TransitionId;

/// Enumerates every element of the cartesian product of `choices`.
void Product(const std::vector<std::vector<std::string>>& choices,
             std::vector<std::vector<std::string>>* out) {
  std::vector<std::string> current(choices.size());
  std::function<void(size_t)> rec = [&](size_t i) {
    if (i == choices.size()) {
      out->push_back(current);
      return;
    }
    for (const std::string& c : choices[i]) {
      current[i] = c;
      rec(i + 1);
    }
  };
  rec(0);
}

}  // namespace

std::string TransPredName(uint32_t k) {
  return "utrans" + std::to_string(k);
}

StatusOr<EncodedNet> EncodeNet(const PetriNet& net, DatalogContext& ctx) {
  DQSQ_RETURN_IF_ERROR(net.Validate());
  EncodedNet out;
  RuleBuilder b(&ctx);
  Program& prog = out.program;

  std::vector<std::string> peers;
  for (petri::PeerIndex p = 0; p < net.num_peers(); ++p) {
    peers.push_back(net.peer_name(p));
    out.peer_symbol.push_back(ctx.symbols().Intern(net.peer_name(p)));
  }

  // Producer-peer choices per place: peers of transitions producing the
  // place, plus the place's own peer when it can be a root condition.
  auto producer_peers = [&](PlaceId s) {
    std::set<std::string> q;
    for (TransitionId t : net.Producers(s)) {
      q.insert(net.peer_name(net.transition(t).peer));
    }
    if (net.initial_marking()[s]) q.insert(net.peer_name(net.place(s).peer));
    return std::vector<std::string>(q.begin(), q.end());
  };

  std::set<uint32_t> arities;
  for (TransitionId t = 0; t < net.num_transitions(); ++t) {
    arities.insert(static_cast<uint32_t>(net.transition(t).pre.size()));
  }
  out.arities.assign(arities.begin(), arities.end());

  // A. Roots (paper rule (††)): one places/map fact per marked place.
  for (PlaceId s = 0; s < net.num_places(); ++s) {
    if (!net.initial_marking()[s]) continue;
    const std::string peer = net.peer_name(net.place(s).peer);
    const std::string pl = PlaceConstant(net, s);
    Pattern root_cond = b.App("g", {b.C("r"), b.C(pl)});
    prog.rules.push_back(
        b.Build(b.MakeAtom("uplaces", peer, {root_cond, b.C("r")}), {}));
    root_cond = b.App("g", {b.C("r"), b.C(pl)});
    prog.rules.push_back(
        b.Build(b.MakeAtom("umap", peer, {root_cond, b.C(pl)}), {}));
  }

  for (TransitionId t = 0; t < net.num_transitions(); ++t) {
    const petri::Transition& tr = net.transition(t);
    const std::string p = net.peer_name(tr.peer);
    const uint32_t k = static_cast<uint32_t>(tr.pre.size());
    const std::string trans_pred = TransPredName(k);
    const std::string tc = TransitionConstant(net, t);

    // Producer-peer combinations for the k parent places.
    std::vector<std::vector<std::string>> choices;
    for (PlaceId s : tr.pre) choices.push_back(producer_peers(s));
    bool fireable = true;
    for (const auto& c : choices) fireable &= !c.empty();

    std::vector<std::vector<std::string>> combos;
    if (fireable) Product(choices, &combos);

    // B. Event creation, one rule pair per producer-peer combination.
    for (const auto& combo : combos) {
      auto make_body = [&]() {
        std::vector<Atom> body;
        for (uint32_t i = 0; i < k; ++i) {
          std::string ui = "U" + std::to_string(i);
          body.push_back(b.MakeAtom(
              "umap", combo[i],
              {b.V(ui), b.C(PlaceConstant(net, tr.pre[i]))}));
          body.push_back(b.MakeAtom(
              "uplaces", combo[i],
              {b.V(ui), b.V("W" + std::to_string(i))}));
        }
        // Pairwise: Wj's history does not contain Ui (¬(Ui ⪯ Wj))...
        for (uint32_t i = 0; i < k; ++i) {
          for (uint32_t j = 0; j < k; ++j) {
            if (i == j) continue;
            body.push_back(b.MakeAtom(
                "unotCausal", combo[j],
                {b.V("W" + std::to_string(j)), b.V("U" + std::to_string(i))}));
          }
        }
        // ...and the producers are not in conflict.
        for (uint32_t i = 0; i < k; ++i) {
          for (uint32_t j = i + 1; j < k; ++j) {
            body.push_back(b.MakeAtom(
                "unotConf", combo[i],
                {b.V("W" + std::to_string(i)), b.V("W" + std::to_string(j))}));
          }
        }
        return body;
      };
      auto event_term = [&]() {
        std::vector<Pattern> args{b.C(tc)};
        for (uint32_t i = 0; i < k; ++i) args.push_back(b.V("U" + std::to_string(i)));
        return b.App("f", std::move(args));
      };
      // Head 1: utrans<k>(f(tc, U...), U...).
      {
        std::vector<Pattern> head_args{event_term()};
        for (uint32_t i = 0; i < k; ++i) {
          head_args.push_back(b.V("U" + std::to_string(i)));
        }
        prog.rules.push_back(b.Build(
            b.MakeAtom(trans_pred, p, std::move(head_args)), make_body()));
      }
      // Head 2: umap(f(tc, U...), tc).
      prog.rules.push_back(b.Build(
          b.MakeAtom("umap", p, {event_term(), b.C(tc)}), make_body()));
    }

    // C. Condition creation for each child place.
    for (PlaceId s : tr.post) {
      const std::string pl = PlaceConstant(net, s);
      auto trans_args = [&]() {
        std::vector<Pattern> args{b.V("X")};
        for (uint32_t i = 0; i < k; ++i) {
          args.push_back(b.V("U" + std::to_string(i)));
        }
        return args;
      };
      prog.rules.push_back(b.Build(
          b.MakeAtom("uplaces", p, {b.App("g", {b.V("X"), b.C(pl)}), b.V("X")}),
          {b.MakeAtom("umap", p, {b.V("X"), b.C(tc)}),
           b.MakeAtom(trans_pred, p, trans_args())}));
      prog.rules.push_back(b.Build(
          b.MakeAtom("umap", p,
                     {b.App("g", {b.V("X"), b.C(pl)}), b.C(pl)}),
          {b.MakeAtom("umap", p, {b.V("X"), b.C(tc)}),
           b.MakeAtom(trans_pred, p, trans_args())}));
    }

    // D. Event view.
    {
      std::vector<Pattern> args{b.V("X")};
      for (uint32_t i = 0; i < k; ++i) {
        args.push_back(b.V("U" + std::to_string(i)));
      }
      prog.rules.push_back(
          b.Build(b.MakeAtom("uevent", p, {b.V("X")}),
                  {b.MakeAtom(trans_pred, p, std::move(args))}));
    }

    // E. causal recursion: one rule per parent position and producer peer.
    for (uint32_t i = 0; i < k; ++i) {
      for (const std::string& q : producer_peers(tr.pre[i])) {
        std::vector<Pattern> args{b.V("X")};
        for (uint32_t a = 0; a < k; ++a) {
          args.push_back(b.V("U" + std::to_string(a)));
        }
        prog.rules.push_back(b.Build(
            b.MakeAtom("ucausal", p, {b.V("X"), b.V("Y")}),
            {b.MakeAtom(trans_pred, p, std::move(args)),
             b.MakeAtom("uplaces", q,
                        {b.V("U" + std::to_string(i)), b.V("W")}),
             b.MakeAtom("ucausal", q, {b.V("W"), b.V("Y")})}));
      }
    }

    // F. notCausal recursion: ¬(Y ⪯ X) — per producer-peer combination.
    for (const auto& combo : combos) {
      std::vector<Atom> body;
      std::vector<Diseq> diseqs;
      {
        std::vector<Pattern> args{b.V("X")};
        for (uint32_t i = 0; i < k; ++i) {
          args.push_back(b.V("U" + std::to_string(i)));
        }
        body.push_back(b.MakeAtom(trans_pred, p, std::move(args)));
      }
      for (uint32_t i = 0; i < k; ++i) {
        body.push_back(b.MakeAtom(
            "uplaces", combo[i],
            {b.V("U" + std::to_string(i)), b.V("W" + std::to_string(i))}));
        body.push_back(b.MakeAtom(
            "unotCausal", combo[i],
            {b.V("W" + std::to_string(i)), b.V("Y")}));
        diseqs.push_back(Diseq{b.V("U" + std::to_string(i)), b.V("Y")});
      }
      diseqs.push_back(Diseq{b.V("X"), b.V("Y")});
      prog.rules.push_back(
          b.Build(b.MakeAtom("unotCausal", p, {b.V("X"), b.V("Y")}),
                  std::move(body), std::move(diseqs)));
    }

    // G3. notConf recursion: X and Y unrelated, no inherited conflict, and
    // no parent condition of X below Y — per combo and per peer of Y.
    for (const auto& combo : combos) {
      for (const std::string& qy : peers) {
        std::vector<Atom> body;
        std::vector<Diseq> diseqs;
        {
          std::vector<Pattern> args{b.V("X")};
          for (uint32_t i = 0; i < k; ++i) {
            args.push_back(b.V("U" + std::to_string(i)));
          }
          body.push_back(b.MakeAtom(trans_pred, p, std::move(args)));
        }
        body.push_back(b.MakeAtom("uevent", qy, {b.V("Y")}));
        for (uint32_t i = 0; i < k; ++i) {
          body.push_back(b.MakeAtom(
              "uplaces", combo[i],
              {b.V("U" + std::to_string(i)), b.V("W" + std::to_string(i))}));
          body.push_back(b.MakeAtom(
              "unotConf", combo[i],
              {b.V("W" + std::to_string(i)), b.V("Y")}));
          body.push_back(b.MakeAtom(
              "unotCausal", qy,
              {b.V("Y"), b.V("U" + std::to_string(i))}));
        }
        diseqs.push_back(Diseq{b.V("X"), b.V("Y")});
        prog.rules.push_back(
            b.Build(b.MakeAtom("unotConf", p, {b.V("X"), b.V("Y")}),
                    std::move(body), std::move(diseqs)));
      }
    }
  }

  // Per-peer and per-peer-pair base rules.
  for (const std::string& p : peers) {
    // causal reflexivity.
    prog.rules.push_back(b.Build(b.MakeAtom("ucausal", p, {b.V("X"), b.V("X")}),
                                 {b.MakeAtom("uevent", p, {b.V("X")})}));
    // notConf via comparability (rule G2).
    prog.rules.push_back(
        b.Build(b.MakeAtom("unotConf", p, {b.V("X"), b.V("Y")}),
                {b.MakeAtom("ucausal", p, {b.V("X"), b.V("Y")})}));
    for (const std::string& q : peers) {
      prog.rules.push_back(
          b.Build(b.MakeAtom("unotConf", p, {b.V("X"), b.V("Y")}),
                  {b.MakeAtom("uevent", p, {b.V("X")}),
                   b.MakeAtom("ucausal", q, {b.V("Y"), b.V("X")})}));
    }
    // Virtual-root bases: r has no history (paper's notCausal(r, ·) rule)
    // and conflicts with nothing.
    for (const std::string& q : peers) {
      prog.rules.push_back(
          b.Build(b.MakeAtom("unotCausal", p, {b.C("r"), b.V("Y")}),
                  {b.MakeAtom("uplaces", q, {b.V("Y"), b.V("W")})}));
      prog.rules.push_back(
          b.Build(b.MakeAtom("unotConf", p, {b.C("r"), b.V("Y")}),
                  {b.MakeAtom("uevent", q, {b.V("Y")})}));
    }
    prog.rules.push_back(
        b.Build(b.MakeAtom("unotConf", p, {b.V("X"), b.C("r")}),
                {b.MakeAtom("uevent", p, {b.V("X")})}));
    prog.rules.push_back(
        b.Build(b.MakeAtom("unotConf", p, {b.C("r"), b.C("r")}), {}));
  }

  DQSQ_RETURN_IF_ERROR(ValidateProgram(prog, ctx));
  return out;
}

}  // namespace dqsq::diagnosis
