// §4.4 extensions beyond the basic diagnosis problem. Hidden transitions
// are built into the supervisor (SupervisorOptions::max_hidden); this
// header provides alarm-pattern automata: because the supervisor is
// generic over per-peer automata, pattern diagnosis ("explain any
// observation matching α.β*.α") and forbidden patterns are just different
// automata — exactly the paper's point that the whole class reduces to
// dDatalog + dQSQ.
#ifndef DQSQ_DIAGNOSIS_EXTENSIONS_H_
#define DQSQ_DIAGNOSIS_EXTENSIONS_H_

#include <string>
#include <vector>

#include "diagnosis/supervisor.h"

namespace dqsq::diagnosis {

/// Accepts any sequence of exactly `count` symbols drawn from `symbols`.
AlarmAutomaton AnyOrderAutomaton(const std::vector<std::string>& symbols,
                                 uint32_t count);

/// Accepts first.(middle)*.last — the paper's α.β*.α example shape.
AlarmAutomaton StarPatternAutomaton(const std::string& first,
                                    const std::string& middle,
                                    const std::string& last);

/// Accepts sequences over `alphabet` of length up to `max_len` that do NOT
/// contain `forbidden` as a contiguous subsequence (the paper's "block the
/// construction upon detection" extension, made finite with a length cap).
AlarmAutomaton ForbiddenSubsequenceAutomaton(
    const std::vector<std::string>& alphabet,
    const std::vector<std::string>& forbidden, uint32_t max_len);

}  // namespace dqsq::diagnosis

#endif  // DQSQ_DIAGNOSIS_EXTENSIONS_H_
