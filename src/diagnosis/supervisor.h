// The supervisor's dDatalog program (paper §4.2), generalized over alarm
// automata (§4.4): the plain diagnosis problem is the special case where
// each peer's automaton is the chain spelling its alarm subsequence. The
// supervisor builds its rules from its own view only — the observation and
// the per-transition interface facts — and pulls unfolding nodes from the
// peers on demand.
//
// Relations at the supervisor peer:
//   cfgp(z, z', x, i_1..i_m [, h])  configPrefixes: configuration id z
//       extends z' with event x; i_j is peer j's automaton state; h counts
//       hidden events used (present only with hidden-transition support).
//   inconf(z, x)                    transInConf
//   notparent(z, m)                 condition m unconsumed in z
//   aedge_<peer>(s, a, s')          the peer's alarm automaton edges
//   aaccept_<peer>(s)               accepting states
//   q(z, x)                         the diagnosis query relation
//
// Configuration ids are Skolem chains h(z, x) rooted at h(r).
#ifndef DQSQ_DIAGNOSIS_SUPERVISOR_H_
#define DQSQ_DIAGNOSIS_SUPERVISOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/parser.h"
#include "diagnosis/encoder.h"
#include "petri/alarm.h"

namespace dqsq::diagnosis {

/// A finite automaton over alarm symbols for one peer (states are dense
/// 0-based; 0 is initial).
struct AlarmAutomaton {
  struct Edge {
    uint32_t from;
    std::string symbol;
    uint32_t to;
  };
  uint32_t num_states = 1;
  std::vector<Edge> edges;
  std::vector<uint32_t> accepting;  // must be non-empty to ever answer
};

/// The chain automaton of an exact subsequence (the base problem of §2).
AlarmAutomaton ChainAutomaton(const std::vector<std::string>& symbols);

struct SupervisorOptions {
  std::string supervisor_peer = "sup0";
  /// Hidden-transition support (§4.4): unobservable transitions may extend
  /// configurations without consuming automaton edges, up to this many per
  /// configuration. 0 disables the machinery entirely.
  uint32_t max_hidden = 0;
  /// Open automata (online diagnosis): generate extension rules for every
  /// observable transition of peers present in `automata`, even when the
  /// automaton does not (yet) mention their alarm symbol — edges arrive
  /// later as facts.
  bool open_automata = false;
  /// Emit the q(Z, X) query rule reading the aaccept relations. Online
  /// diagnosis versions its own query rules instead.
  bool emit_query = true;
};

struct SupervisorProgram {
  Program program;       // supervisor rules + automaton facts
  ParsedQuery query;     // q@sup0(Z, X) (unset when emit_query is false)
  SymbolId supervisor;   // the supervisor's peer symbol
  /// Index positions of the cfgp relation, in order (sorted peer names).
  std::vector<std::string> observed_peers;
  /// Arity of the cfgp relation (3 + observed_peers + hidden column).
  uint32_t cfgp_arity = 0;
};

/// Builds the supervisor program for per-peer automata. Keys of `automata`
/// are peer names of `net`; peers absent from the map must stay silent
/// (their observable transitions cannot fire).
StatusOr<SupervisorProgram> BuildSupervisor(
    const petri::PetriNet& net, const EncodedNet& encoded,
    const std::map<std::string, AlarmAutomaton>& automata,
    const SupervisorOptions& options, DatalogContext& ctx);

/// Convenience: the §2 problem — an exact alarm sequence.
StatusOr<SupervisorProgram> BuildSupervisorForSequence(
    const petri::PetriNet& net, const EncodedNet& encoded,
    const petri::AlarmSequence& alarms, const SupervisorOptions& options,
    DatalogContext& ctx);

}  // namespace dqsq::diagnosis

#endif  // DQSQ_DIAGNOSIS_SUPERVISOR_H_
