#include "diagnosis/online.h"

#include <set>
#include <utility>

#include "common/logging.h"
#include "diagnosis/encoder.h"
#include "diagnosis/rule_builder.h"

namespace dqsq::diagnosis {

namespace {

std::string StateConst(const std::string& peer, uint32_t s) {
  return "st_" + peer + "_" + std::to_string(s);
}

}  // namespace

StatusOr<OnlineModel> OnlineModel::Build(const petri::PetriNet& net) {
  OnlineModel model;
  model.ctx = std::make_shared<DatalogContext>();

  DQSQ_ASSIGN_OR_RETURN(EncodedNet encoded, EncodeNet(net, *model.ctx));
  // Open chain automata for every peer: edges arrive as facts.
  std::map<std::string, AlarmAutomaton> automata;
  for (petri::PeerIndex p = 0; p < net.num_peers(); ++p) {
    AlarmAutomaton open;
    open.num_states = 1;
    open.accepting = {0};  // unused: queries are versioned
    automata[net.peer_name(p)] = open;
  }
  SupervisorOptions sopts;
  sopts.open_automata = true;
  sopts.emit_query = false;
  DQSQ_ASSIGN_OR_RETURN(
      SupervisorProgram sup,
      BuildSupervisor(net, encoded, automata, sopts, *model.ctx));

  model.base_program = std::move(encoded.program);
  for (Rule& rule : sup.program.rules) {
    model.base_program.rules.push_back(std::move(rule));
  }
  model.supervisor = model.ctx->symbols().Name(sup.supervisor);
  model.observed_peers = sup.observed_peers;
  return model;
}

StatusOr<OnlineDiagnoser> OnlineDiagnoser::Create(
    const petri::PetriNet& net, const OnlineOptions& options) {
  DQSQ_ASSIGN_OR_RETURN(OnlineModel model, OnlineModel::Build(net));
  return CreateShared(model, options);
}

OnlineDiagnoser OnlineDiagnoser::CreateShared(const OnlineModel& model,
                                              const OnlineOptions& options) {
  OnlineDiagnoser d;
  d.options_ = options;
  d.ctx_ = model.ctx;
  d.db_ = std::make_unique<Database>(d.ctx_.get());
  d.program_ = model.base_program;
  d.supervisor_ = model.supervisor;
  d.observed_peers_ = model.observed_peers;
  for (const std::string& peer : d.observed_peers_) d.counts_[peer] = 0;
  d.base_rules_ = d.program_.rules.size();
  return d;
}

StatusOr<std::vector<Explanation>> OnlineDiagnoser::Observe(
    const petri::Alarm& alarm) {
  auto it = counts_.find(alarm.peer);
  if (it == counts_.end()) {
    return InvalidArgumentError("alarm from unknown peer " + alarm.peer);
  }
  // The query rule of the previous step is superseded by this alarm: prune
  // it before snapshotting the rollback point, so the rollback below is a
  // plain truncation. A rolled-back (or merely queried) state re-emits its
  // rule deterministically in Solve().
  PruneQueryRule();
  const size_t rules_before = program_.rules.size();
  const bool had_current = has_current_;

  // One new chain edge: st_p_i --a--> st_p_{i+1}.
  RuleBuilder b(ctx_.get());
  uint32_t i = it->second;
  program_.rules.push_back(b.Build(
      b.MakeAtom("aedge_" + alarm.peer, supervisor_,
                 {b.C(StateConst(alarm.peer, i)), b.C("al_" + alarm.symbol),
                  b.C(StateConst(alarm.peer, i + 1))}),
      {}));
  ++it->second;
  ++step_;
  has_current_ = false;

  StatusOr<std::vector<Explanation>> result = Solve();
  if (!result.ok()) {
    // Transactional rollback: Solve() already removed the query rule it
    // emitted, so truncating drops exactly the chain edge. Derived facts
    // stay — they are sound and monotone, and a retry continues from them.
    DQSQ_CHECK(program_.rules.size() == rules_before + 1);
    program_.rules.resize(rules_before);
    --it->second;
    --step_;
    has_current_ = had_current;
  }
  return result;
}

Status OnlineDiagnoser::ApplyObservationOnly(const petri::Alarm& alarm) {
  auto it = counts_.find(alarm.peer);
  if (it == counts_.end()) {
    return InvalidArgumentError("alarm from unknown peer " + alarm.peer);
  }
  PruneQueryRule();
  RuleBuilder b(ctx_.get());
  uint32_t i = it->second;
  program_.rules.push_back(b.Build(
      b.MakeAtom("aedge_" + alarm.peer, supervisor_,
                 {b.C(StateConst(alarm.peer, i)), b.C("al_" + alarm.symbol),
                  b.C(StateConst(alarm.peer, i + 1))}),
      {}));
  ++it->second;
  ++step_;
  has_current_ = false;
  return Status::Ok();
}

Status OnlineDiagnoser::ObserveCached(const petri::Alarm& alarm,
                                      std::vector<Explanation> explanations) {
  DQSQ_RETURN_IF_ERROR(ApplyObservationOnly(alarm));
  RestoreCurrent(std::move(explanations));
  last_new_facts_ = 0;  // nothing evaluated
  return Status::Ok();
}

void OnlineDiagnoser::RestoreCurrent(std::vector<Explanation> explanations) {
  current_explanations_ = std::move(explanations);
  has_current_ = true;
}

StatusOr<std::vector<Explanation>> OnlineDiagnoser::Current() {
  if (has_current_) return current_explanations_;
  return Solve();
}

void OnlineDiagnoser::PruneQueryRule() {
  if (!query_rule_present_) return;
  program_.rules.erase(program_.rules.begin() +
                       static_cast<std::ptrdiff_t>(query_rule_index_));
  query_rule_present_ = false;
}

StatusOr<std::vector<Explanation>> OnlineDiagnoser::Solve() {
  // Versioned query: q_<step>(Z, X) :- cfgp(Z, W, Y, st_p1_c1, ...,
  // st_pm_cm), inconf(Z, X) — the automaton positions are inlined
  // constants, so the demand is fully bound on the index columns. The rule
  // is emitted at most once per step: a retried Solve (after a budget
  // failure) or a Current() call after ObserveCached finds it absent and
  // regenerates it; a Current() retry while it is resident reuses it.
  const std::string qname = "q_" + std::to_string(step_);
  bool emitted = false;
  if (!query_rule_present_ || query_rule_step_ != step_) {
    PruneQueryRule();
    RuleBuilder b(ctx_.get());
    std::vector<Pattern> cfgp_args{b.V("Z"), b.V("W"), b.V("Y")};
    for (const std::string& peer : observed_peers_) {
      cfgp_args.push_back(b.C(StateConst(peer, counts_.at(peer))));
    }
    Atom head = b.MakeAtom(qname, supervisor_, {b.V("Z"), b.V("X")});
    Atom cfgp = b.MakeAtom("cfgp", supervisor_, std::move(cfgp_args));
    Atom inconf = b.MakeAtom("inconf", supervisor_, {b.V("Z"), b.V("X")});
    program_.rules.push_back(
        b.Build(std::move(head), {std::move(cfgp), std::move(inconf)}));
    query_rule_present_ = true;
    query_rule_index_ = program_.rules.size() - 1;
    query_rule_step_ = step_;
    emitted = true;
  }

  ParsedQuery query;
  query.num_vars = 2;
  query.var_names = {"Z", "X"};
  query.atom.rel.pred = ctx_->InternPredicate(qname, 2);
  query.atom.rel.peer = ctx_->symbols().Intern(supervisor_);
  query.atom.args = {Pattern::Var(0), Pattern::Var(1)};

  EvalOptions eopts;
  eopts.max_facts = options_.max_facts;
  const size_t before = db_->TotalFacts();
  StatusOr<QueryResult> qres =
      SolveQuery(program_, *db_, query, Strategy::kQsq, eopts);
  if (!qres.ok()) {
    if (emitted) PruneQueryRule();
    return qres.status();
  }
  last_new_facts_ = db_->TotalFacts() - before;

  std::map<TermId, std::vector<std::string>> by_config;
  for (const Tuple& row : qres->answers) {
    auto& events = by_config[row[0]];
    std::string term = ctx_->arena().ToString(row[1], ctx_->symbols());
    if (term != "r") events.push_back(std::move(term));
  }
  std::vector<Explanation> out;
  for (auto& [z, events] : by_config) {
    out.push_back(Explanation{std::move(events)});
  }
  current_explanations_ = Canonicalize(std::move(out));
  has_current_ = true;
  return current_explanations_;
}

}  // namespace dqsq::diagnosis
