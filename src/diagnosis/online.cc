#include "diagnosis/online.h"

#include <set>

#include "common/logging.h"
#include "diagnosis/encoder.h"
#include "diagnosis/rule_builder.h"

namespace dqsq::diagnosis {

namespace {

std::string StateConst(const std::string& peer, uint32_t s) {
  return "st_" + peer + "_" + std::to_string(s);
}

}  // namespace

StatusOr<OnlineDiagnoser> OnlineDiagnoser::Create(
    const petri::PetriNet& net, const OnlineOptions& options) {
  OnlineDiagnoser d;
  d.options_ = options;
  d.ctx_ = std::make_unique<DatalogContext>();
  d.db_ = std::make_unique<Database>(d.ctx_.get());

  DQSQ_ASSIGN_OR_RETURN(EncodedNet encoded, EncodeNet(net, *d.ctx_));
  // Open chain automata for every peer: edges arrive as facts.
  std::map<std::string, AlarmAutomaton> automata;
  for (petri::PeerIndex p = 0; p < net.num_peers(); ++p) {
    AlarmAutomaton open;
    open.num_states = 1;
    open.accepting = {0};  // unused: queries are versioned
    automata[net.peer_name(p)] = open;
  }
  SupervisorOptions sopts;
  sopts.open_automata = true;
  sopts.emit_query = false;
  DQSQ_ASSIGN_OR_RETURN(
      SupervisorProgram sup,
      BuildSupervisor(net, encoded, automata, sopts, *d.ctx_));

  d.program_ = std::move(encoded.program);
  for (Rule& rule : sup.program.rules) {
    d.program_.rules.push_back(std::move(rule));
  }
  d.supervisor_ = d.ctx_->symbols().Name(sup.supervisor);
  d.observed_peers_ = sup.observed_peers;
  for (const std::string& peer : d.observed_peers_) d.counts_[peer] = 0;
  return d;
}

StatusOr<std::vector<Explanation>> OnlineDiagnoser::Observe(
    const petri::Alarm& alarm) {
  auto it = counts_.find(alarm.peer);
  if (it == counts_.end()) {
    return InvalidArgumentError("alarm from unknown peer " + alarm.peer);
  }
  // One new chain edge: st_p_i --a--> st_p_{i+1}.
  RuleBuilder b(ctx_.get());
  uint32_t i = it->second;
  program_.rules.push_back(b.Build(
      b.MakeAtom("aedge_" + alarm.peer, supervisor_,
                 {b.C(StateConst(alarm.peer, i)), b.C("al_" + alarm.symbol),
                  b.C(StateConst(alarm.peer, i + 1))}),
      {}));
  ++it->second;
  ++step_;
  has_current_ = false;
  return Solve();
}

StatusOr<std::vector<Explanation>> OnlineDiagnoser::Current() {
  if (has_current_) return current_explanations_;
  return Solve();
}

StatusOr<std::vector<Explanation>> OnlineDiagnoser::Solve() {
  // Versioned query: q_<step>(Z, X) :- cfgp(Z, W, Y, st_p1_c1, ...,
  // st_pm_cm), inconf(Z, X) — the automaton positions are inlined
  // constants, so the demand is fully bound on the index columns.
  RuleBuilder b(ctx_.get());
  const std::string qname = "q_" + std::to_string(step_);
  std::vector<Pattern> cfgp_args{b.V("Z"), b.V("W"), b.V("Y")};
  for (const std::string& peer : observed_peers_) {
    cfgp_args.push_back(b.C(StateConst(peer, counts_.at(peer))));
  }
  Atom head = b.MakeAtom(qname, supervisor_, {b.V("Z"), b.V("X")});
  Atom cfgp = b.MakeAtom("cfgp", supervisor_, std::move(cfgp_args));
  Atom inconf = b.MakeAtom("inconf", supervisor_, {b.V("Z"), b.V("X")});
  program_.rules.push_back(
      b.Build(std::move(head), {std::move(cfgp), std::move(inconf)}));

  ParsedQuery query;
  query.num_vars = 2;
  query.var_names = {"Z", "X"};
  query.atom.rel.pred = ctx_->InternPredicate(qname, 2);
  query.atom.rel.peer = ctx_->symbols().Intern(supervisor_);
  query.atom.args = {Pattern::Var(0), Pattern::Var(1)};

  EvalOptions eopts;
  eopts.max_facts = options_.max_facts;
  const size_t before = db_->TotalFacts();
  DQSQ_ASSIGN_OR_RETURN(
      QueryResult qres,
      SolveQuery(program_, *db_, query, Strategy::kQsq, eopts));
  last_new_facts_ = db_->TotalFacts() - before;

  std::map<TermId, std::vector<std::string>> by_config;
  for (const Tuple& row : qres.answers) {
    auto& events = by_config[row[0]];
    std::string term = ctx_->arena().ToString(row[1], ctx_->symbols());
    if (term != "r") events.push_back(std::move(term));
  }
  std::vector<Explanation> out;
  for (auto& [z, events] : by_config) {
    out.push_back(Explanation{std::move(events)});
  }
  current_explanations_ = Canonicalize(std::move(out));
  has_current_ = true;
  return current_explanations_;
}

}  // namespace dqsq::diagnosis
