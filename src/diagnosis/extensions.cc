#include "diagnosis/extensions.h"

#include "common/logging.h"

namespace dqsq::diagnosis {

AlarmAutomaton AnyOrderAutomaton(const std::vector<std::string>& symbols,
                                 uint32_t count) {
  AlarmAutomaton a;
  a.num_states = count + 1;
  for (uint32_t i = 0; i < count; ++i) {
    for (const std::string& s : symbols) a.edges.push_back({i, s, i + 1});
  }
  a.accepting = {count};
  return a;
}

AlarmAutomaton StarPatternAutomaton(const std::string& first,
                                    const std::string& middle,
                                    const std::string& last) {
  AlarmAutomaton a;
  a.num_states = 3;
  a.edges = {{0, first, 1}, {1, middle, 1}, {1, last, 2}};
  a.accepting = {2};
  return a;
}

AlarmAutomaton ForbiddenSubsequenceAutomaton(
    const std::vector<std::string>& alphabet,
    const std::vector<std::string>& forbidden, uint32_t max_len) {
  DQSQ_CHECK(!forbidden.empty());
  const uint32_t f = static_cast<uint32_t>(forbidden.size());
  // State = (length consumed, longest prefix of `forbidden` matching a
  // suffix of the input). Reaching prefix == f is a dead end (omitted
  // state), so matching sequences are rejected. KMP-style failure links
  // keep the automaton deterministic.
  auto failure = [&](uint32_t prefix, const std::string& symbol) {
    // Longest k such that forbidden[0..k) is a suffix of
    // forbidden[0..prefix) + symbol.
    std::vector<std::string> text(forbidden.begin(),
                                  forbidden.begin() + prefix);
    text.push_back(symbol);
    for (uint32_t k = std::min<uint32_t>(f, prefix + 1);; --k) {
      bool match = true;
      for (uint32_t i = 0; i < k; ++i) {
        if (forbidden[i] != text[text.size() - k + i]) {
          match = false;
          break;
        }
      }
      if (match) return k;
      if (k == 0) return 0u;
    }
  };

  AlarmAutomaton a;
  auto state_id = [&](uint32_t len, uint32_t prefix) {
    return len * f + prefix;  // prefix < f (prefix == f is rejected)
  };
  a.num_states = (max_len + 1) * f;
  for (uint32_t len = 0; len < max_len; ++len) {
    for (uint32_t prefix = 0; prefix < f; ++prefix) {
      for (const std::string& s : alphabet) {
        uint32_t next = failure(prefix, s);
        if (next >= f) continue;  // would complete the forbidden pattern
        a.edges.push_back({state_id(len, prefix), s,
                           state_id(len + 1, next)});
      }
    }
  }
  for (uint32_t len = 0; len <= max_len; ++len) {
    for (uint32_t prefix = 0; prefix < f; ++prefix) {
      a.accepting.push_back(state_id(len, prefix));
    }
  }
  return a;
}

}  // namespace dqsq::diagnosis
