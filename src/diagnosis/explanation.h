// Canonical explanations, comparable across every engine. A diagnosis
// explanation is a configuration of the unfolding; its events are named by
// their causal history, which is exactly what the paper's Skolem terms
// f(c, u1..uk) / g(x, c') encode. We therefore canonicalize an explanation
// as the sorted list of its events' ground Skolem terms rendered as
// strings — identical whether the explanation came from the Datalog
// supervisor program, from the BFHJ baseline, or from the reference
// diagnoser (Theorems 2/3's bijection made executable).
#ifndef DQSQ_DIAGNOSIS_EXPLANATION_H_
#define DQSQ_DIAGNOSIS_EXPLANATION_H_

#include <string>
#include <vector>

#include "petri/configuration.h"
#include "petri/unfolding.h"

namespace dqsq::diagnosis {

struct Explanation {
  /// Sorted canonical event terms, e.g. "f(tr_i,g(r,pl_1),g(r,pl_7))".
  std::vector<std::string> events;

  friend bool operator==(const Explanation& a, const Explanation& b) {
    return a.events == b.events;
  }
  friend bool operator<(const Explanation& a, const Explanation& b) {
    return a.events < b.events;
  }
};

/// One line per event.
std::string ExplanationToString(const Explanation& explanation);

/// Canonical Skolem name of net transition / place node constants, shared
/// by the encoder and the unfolding-side canonicalizer.
std::string TransitionConstant(const petri::PetriNet& net,
                               petri::TransitionId t);
std::string PlaceConstant(const petri::PetriNet& net, petri::PlaceId p);

/// The canonical term of an unfolding event (recursively through its
/// causal history; root conditions render as g(r, place)).
std::string EventTerm(const petri::Unfolding& u, petri::EventId e);

/// Canonicalizes a configuration of the explicit unfolding.
Explanation FromConfiguration(const petri::Unfolding& u,
                              const petri::Configuration& config);

/// Sorts and deduplicates a batch of explanations.
std::vector<Explanation> Canonicalize(std::vector<Explanation> explanations);

}  // namespace dqsq::diagnosis

#endif  // DQSQ_DIAGNOSIS_EXPLANATION_H_
