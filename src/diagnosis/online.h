// Online diagnosis: alarms arrive one at a time, and the supervisor keeps
// its materialization across steps (the paper's Remark 2 — results may
// flow before the computation is complete — and the incremental spirit of
// Remark 5). Each observed alarm adds one automaton-edge fact to the
// accumulated program; demand-driven evaluation over the shared database
// then computes only the delta: the unfolding fragment materialized for the
// previous prefix is reused, never re-derived. The program carries at most
// one versioned query rule at a time — the rule for the current step —
// superseded query rules are pruned (their derived facts stay, which is
// the reuse §3.2 is about).
//
// State-mutation contract: Observe is transactional. A failed evaluation
// (e.g. the per-step fact budget) rolls the appended chain edge, the
// per-peer counter, the step counter and the query rule back, so a retry
// never duplicates an edge or a query rule. Facts already derived by the
// failed evaluation stay in the database — derivations are sound and
// monotone, so a retry simply continues from them.
//
// Multi-tenant sharing (docs/ARCHITECTURE.md §service): the encoder and
// supervisor output for one plant model is session-independent, so
// OnlineModel::Build factors it out. Sessions created from one model via
// CreateShared share the model's DatalogContext — one hash-consed term
// arena, symbol table and predicate registry across every session — while
// each session keeps its own Database and rule tail.
#ifndef DQSQ_DIAGNOSIS_ONLINE_H_
#define DQSQ_DIAGNOSIS_ONLINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/engine.h"
#include "diagnosis/explanation.h"
#include "diagnosis/supervisor.h"
#include "petri/alarm.h"

namespace dqsq::diagnosis {

struct OnlineOptions {
  /// Fact budget for each incremental evaluation.
  size_t max_facts = 5'000'000;
};

/// The session-independent part of an online diagnoser for one plant
/// model: the shared naming context (term arena, symbols, predicates) and
/// the encoded base program (net encoding + open-automaton supervisor).
/// Build once per plant model; every session of that model copies the base
/// rules but shares the context, so hash-consed terms are interned exactly
/// once across all sessions.
struct OnlineModel {
  std::shared_ptr<DatalogContext> ctx;
  Program base_program;
  std::string supervisor;
  std::vector<std::string> observed_peers;

  static StatusOr<OnlineModel> Build(const petri::PetriNet& net);
};

class OnlineDiagnoser {
 public:
  /// Prepares the encoder and supervisor programs for `net`. Every peer
  /// gets an open chain automaton; edges are appended per observed alarm.
  static StatusOr<OnlineDiagnoser> Create(const petri::PetriNet& net,
                                          const OnlineOptions& options);

  /// A session over a prebuilt model, sharing the model's DatalogContext
  /// (and therefore its term arena) with every other session of the model.
  static OnlineDiagnoser CreateShared(const OnlineModel& model,
                                      const OnlineOptions& options);

  OnlineDiagnoser(OnlineDiagnoser&&) = default;
  OnlineDiagnoser& operator=(OnlineDiagnoser&&) = default;

  /// Feeds the next alarm and returns the explanations of the whole prefix
  /// observed so far. Fails for alarms from peers the net does not have.
  /// Transactional: on evaluation failure every state mutation is rolled
  /// back, so the same alarm can be retried (e.g. after raising the
  /// budget) without duplicating the chain edge or the query rule.
  StatusOr<std::vector<Explanation>> Observe(const petri::Alarm& alarm);

  /// Applies the alarm's state mutation (chain edge, counters) without
  /// evaluating, and installs `explanations` as the current answer. Used
  /// when a cross-session prefix cache already knows the answer for the
  /// resulting prefix; the skipped evaluation re-runs on demand at the
  /// next cache miss (demand-driven evaluation does not depend on the
  /// intermediate steps having been materialized).
  Status ObserveCached(const petri::Alarm& alarm,
                       std::vector<Explanation> explanations);

  /// Applies the alarm's state mutation only; the current answer becomes
  /// unknown (computed on the next Current/Observe). Hibernation restore
  /// replays a session's alarm history through this.
  Status ApplyObservationOnly(const petri::Alarm& alarm);

  /// Installs `explanations` as the (already computed) current answer.
  void RestoreCurrent(std::vector<Explanation> explanations);

  /// Explanations of the current prefix (empty prefix: the empty run).
  /// Cached from the last Observe; computed on first call.
  StatusOr<std::vector<Explanation>> Current();

  /// Alarms observed so far.
  size_t num_observed() const { return step_; }

  /// Facts accumulated across all steps (monotone; the reuse measure).
  size_t total_facts() const { return db_->TotalFacts(); }

  /// New facts derived by the most recent evaluation only.
  size_t last_step_new_facts() const { return last_new_facts_; }

  /// Rules currently in the program: base rules + one chain-edge fact per
  /// observed alarm + at most one versioned query rule. The bound is the
  /// regression pin for the query-rule pruning fix.
  size_t num_rules() const { return program_.rules.size(); }

  /// Rules the session started with (before any alarm).
  size_t base_rules() const { return base_rules_; }

  /// Whether the current answer is cached (no evaluation on Current()).
  bool has_current() const { return has_current_; }

  /// Adjusts the per-evaluation fact budget (admission control hands
  /// sessions differentiated budgets; a budget-failed Observe may be
  /// retried after raising it).
  void set_max_facts(size_t max_facts) { options_.max_facts = max_facts; }
  size_t max_facts() const { return options_.max_facts; }

 private:
  OnlineDiagnoser() = default;

  /// Emits the versioned query rule q_<step> for the current per-peer
  /// positions — at most once per step, pruning the superseded rule — and
  /// evaluates it. On failure the emitted rule is removed again.
  StatusOr<std::vector<Explanation>> Solve();

  /// Removes the resident versioned query rule, if any.
  void PruneQueryRule();

  OnlineOptions options_;
  std::shared_ptr<DatalogContext> ctx_;
  std::unique_ptr<Database> db_;
  Program program_;
  std::string supervisor_;
  std::vector<std::string> observed_peers_;
  bool has_current_ = false;
  std::vector<Explanation> current_explanations_;
  std::map<std::string, uint32_t> counts_;
  size_t step_ = 0;
  size_t last_new_facts_ = 0;
  size_t base_rules_ = 0;
  // The one resident versioned query rule (satellites: emitted at most
  // once per step, superseded rules pruned).
  bool query_rule_present_ = false;
  size_t query_rule_index_ = 0;
  size_t query_rule_step_ = 0;
};

}  // namespace dqsq::diagnosis

#endif  // DQSQ_DIAGNOSIS_ONLINE_H_
