// Online diagnosis: alarms arrive one at a time, and the supervisor keeps
// its materialization across steps (the paper's Remark 2 — results may
// flow before the computation is complete — and the incremental spirit of
// Remark 5). Each observed alarm adds one automaton-edge fact and one
// versioned query rule to the accumulated program; demand-driven
// evaluation over the shared database then computes only the delta: the
// unfolding fragment materialized for the previous prefix is reused, never
// re-derived.
#ifndef DQSQ_DIAGNOSIS_ONLINE_H_
#define DQSQ_DIAGNOSIS_ONLINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/engine.h"
#include "diagnosis/explanation.h"
#include "diagnosis/supervisor.h"
#include "petri/alarm.h"

namespace dqsq::diagnosis {

struct OnlineOptions {
  /// Fact budget for each incremental evaluation.
  size_t max_facts = 5'000'000;
};

class OnlineDiagnoser {
 public:
  /// Prepares the encoder and supervisor programs for `net`. Every peer
  /// gets an open chain automaton; edges are appended per observed alarm.
  static StatusOr<OnlineDiagnoser> Create(const petri::PetriNet& net,
                                          const OnlineOptions& options);

  OnlineDiagnoser(OnlineDiagnoser&&) = default;
  OnlineDiagnoser& operator=(OnlineDiagnoser&&) = default;

  /// Feeds the next alarm and returns the explanations of the whole prefix
  /// observed so far. Fails for alarms from peers the net does not have.
  StatusOr<std::vector<Explanation>> Observe(const petri::Alarm& alarm);

  /// Explanations of the current prefix (empty prefix: the empty run).
  /// Cached from the last Observe; computed on first call.
  StatusOr<std::vector<Explanation>> Current();

  /// Alarms observed so far.
  size_t num_observed() const { return step_; }

  /// Facts accumulated across all steps (monotone; the reuse measure).
  size_t total_facts() const { return db_->TotalFacts(); }

  /// New facts derived by the most recent evaluation only.
  size_t last_step_new_facts() const { return last_new_facts_; }

 private:
  OnlineDiagnoser() = default;

  /// Appends the versioned query rule q_<step> for the current per-peer
  /// positions and evaluates it.
  StatusOr<std::vector<Explanation>> Solve();

  OnlineOptions options_;
  std::unique_ptr<DatalogContext> ctx_;
  std::unique_ptr<Database> db_;
  Program program_;
  std::string supervisor_;
  std::vector<std::string> observed_peers_;
  bool has_current_ = false;
  std::vector<Explanation> current_explanations_;
  std::map<std::string, uint32_t> counts_;
  size_t step_ = 0;
  size_t last_new_facts_ = 0;
};

}  // namespace dqsq::diagnosis

#endif  // DQSQ_DIAGNOSIS_ONLINE_H_
