#include "diagnosis/service.h"

#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace dqsq::diagnosis {

namespace {

void UpdateGauge(const char* name, int64_t value) {
  MetricsRegistry::Global().GetGauge(name).Set(value);
}

void FnvStr(uint64_t& h, const std::string& s) {
  for (char c : s) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  h = (h ^ 0xffu) * 0x100000001b3ULL;  // length/field separator
}

void FnvU64(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xffu)) * 0x100000001b3ULL;
  }
}

/// Structural identity of a registered plant model: FNV-1a over the peers,
/// places, transitions (name, peer, alarm, observability, pre/post arcs)
/// and initial marking. Two nets that fingerprint equal drive identical
/// diagnosers, so a hibernated session may wake against either; anything
/// else would replay its alarm history into the wrong plant.
uint64_t ModelFingerprint(const petri::PetriNet& net) {
  uint64_t h = 0xcbf29ce484222325ULL;
  FnvU64(h, net.num_peers());
  for (petri::PeerIndex p = 0; p < net.num_peers(); ++p) {
    FnvStr(h, net.peer_name(p));
  }
  FnvU64(h, net.num_places());
  for (petri::PlaceId p = 0; p < net.num_places(); ++p) {
    FnvStr(h, net.place(p).name);
    FnvU64(h, net.place(p).peer);
  }
  FnvU64(h, net.num_transitions());
  for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
    const petri::Transition& tr = net.transition(t);
    FnvStr(h, tr.name);
    FnvU64(h, tr.peer);
    FnvStr(h, tr.alarm);
    FnvU64(h, tr.observable ? 1 : 0);
    FnvU64(h, tr.pre.size());
    for (petri::PlaceId p : tr.pre) FnvU64(h, p);
    FnvU64(h, tr.post.size());
    for (petri::PlaceId p : tr.post) FnvU64(h, p);
  }
  uint64_t marking_bits = 0;
  for (size_t p = 0; p < net.initial_marking().size(); ++p) {
    if (net.initial_marking()[p]) FnvU64(h, p), ++marking_bits;
  }
  FnvU64(h, marking_bits);
  return h;
}

}  // namespace

void EncodeExplanations(const std::vector<Explanation>& explanations,
                        dist::SnapshotWriter& w) {
  w.U32(static_cast<uint32_t>(explanations.size()));
  for (const Explanation& e : explanations) {
    w.U32(static_cast<uint32_t>(e.events.size()));
    for (const std::string& event : e.events) w.Str(event);
  }
}

std::vector<Explanation> DecodeExplanations(dist::SnapshotReader& r) {
  std::vector<Explanation> out(r.U32());
  for (Explanation& e : out) {
    e.events.resize(r.U32());
    for (std::string& event : e.events) event = r.Str();
  }
  return out;
}

std::string ObservationPrefixKey(const petri::AlarmSequence& history) {
  // SplitByPeer yields the per-peer subsequences in sorted peer order —
  // the observation semantics of §4.2, under which the cross-peer
  // interleaving is irrelevant to the explanations.
  std::string key;
  for (const auto& [peer, symbols] : petri::SplitByPeer(history)) {
    key += peer;
    key += ':';
    for (const std::string& symbol : symbols) {
      key += symbol;
      key += ',';
    }
    key += '|';
  }
  return key;
}

DiagnosisService::DiagnosisService(const ServiceOptions& options)
    : options_(options) {
  if (options_.max_resident_sessions == 0) options_.max_resident_sessions = 1;
  if (options_.store == nullptr) {
    owned_store_ = std::make_unique<dist::InMemoryDurableStore>();
    store_ = owned_store_.get();
  } else {
    store_ = options_.store;
  }
}

Status DiagnosisService::RegisterModel(const std::string& model,
                                       const petri::PetriNet& net) {
  if (models_.count(model) != 0) {
    return AlreadyExistsError("model already registered: " + model);
  }
  DQSQ_ASSIGN_OR_RETURN(OnlineModel built, OnlineModel::Build(net));
  models_.emplace(model, std::make_unique<ModelEntry>(
                             model, ModelFingerprint(net), std::move(built),
                             options_.cache_bytes));
  return Status::Ok();
}

Status DiagnosisService::UnregisterModel(const std::string& model) {
  auto it = models_.find(model);
  if (it == models_.end()) {
    return NotFoundError("unknown model: " + model);
  }
  // Resident diagnosers borrow the model's DatalogContext (CreateShared),
  // so every resident session of this model must be hibernated before the
  // entry — and the context — goes away. Hibernated images carry the
  // fingerprint, so these sessions stay wakeable iff a structurally
  // identical model is registered under the same name later.
  for (auto lit = resident_lru_.begin(); lit != resident_lru_.end();) {
    Session* s = *lit;
    ++lit;  // HibernateSession erases s->lru_pos
    if (s->model_name == model) DQSQ_RETURN_IF_ERROR(HibernateSession(*s));
  }
  models_.erase(it);
  CountMetric("diag.service.models_unregistered");
  return Status::Ok();
}

StatusOr<DiagnosisService::ModelEntry*> DiagnosisService::ResolveModel(
    const Session& s) {
  auto it = models_.find(s.model_name);
  if (it == models_.end()) {
    return FailedPreconditionError("session " + s.name + " was admitted for "
                                   "model " + s.model_name +
                                   ", which is no longer registered");
  }
  if (it->second->fingerprint != s.model_fingerprint) {
    return FailedPreconditionError(
        "session " + s.name + " was admitted for a structurally different "
        "registration of model " + s.model_name +
        "; refusing to replay its history into the new plant");
  }
  return it->second.get();
}

Status DiagnosisService::OpenSession(const std::string& session,
                                     const std::string& model) {
  if (sessions_.count(session) != 0) {
    return AlreadyExistsError("session already open: " + session);
  }
  if (sessions_.size() >= options_.max_sessions) {
    CountMetric("diag.service.sessions_rejected");
    return ResourceExhaustedError(
        "admission: session cap reached (" +
        std::to_string(options_.max_sessions) + ")");
  }
  auto mit = models_.find(model);
  if (mit == models_.end()) {
    return NotFoundError("unknown model: " + model);
  }
  auto s = std::make_unique<Session>();
  s->name = session;
  s->model_name = mit->second->name;
  s->model_fingerprint = mit->second->fingerprint;
  s->max_facts = options_.session_max_facts;
  s->diagnoser = std::make_unique<OnlineDiagnoser>(OnlineDiagnoser::CreateShared(
      mit->second->model, OnlineOptions{s->max_facts}));
  s->lru_pos = resident_lru_.insert(resident_lru_.begin(), s.get());
  Session* raw = s.get();
  sessions_.emplace(session, std::move(s));
  CountMetric("diag.service.sessions_admitted");
  Status cap = EnforceResidencyCap(raw);
  UpdateGauge("diag.service.sessions", static_cast<int64_t>(sessions_.size()));
  UpdateGauge("diag.service.resident",
              static_cast<int64_t>(resident_lru_.size()));
  return cap;
}

Status DiagnosisService::CloseSession(const std::string& session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return NotFoundError("unknown session: " + session);
  }
  Session& s = *it->second;
  if (s.diagnoser) resident_lru_.erase(s.lru_pos);
  sessions_.erase(it);
  CountMetric("diag.service.sessions_closed");
  UpdateGauge("diag.service.sessions", static_cast<int64_t>(sessions_.size()));
  UpdateGauge("diag.service.resident",
              static_cast<int64_t>(resident_lru_.size()));
  return Status::Ok();
}

DiagnosisService::Session* DiagnosisService::FindSession(
    const std::string& session) {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : it->second.get();
}

bool DiagnosisService::is_resident(const std::string& session) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second->diagnoser != nullptr;
}

StatusOr<size_t> DiagnosisService::NumObserved(
    const std::string& session) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return NotFoundError("unknown session: " + session);
  }
  return it->second->history.size();
}

const SubqueryCache* DiagnosisService::cache(const std::string& model) const {
  auto it = models_.find(model);
  return it == models_.end() ? nullptr : &it->second->cache;
}

Status DiagnosisService::SetSessionBudget(const std::string& session,
                                          size_t max_facts) {
  Session* s = FindSession(session);
  if (s == nullptr) return NotFoundError("unknown session: " + session);
  s->max_facts = max_facts;
  if (s->diagnoser) s->diagnoser->set_max_facts(max_facts);
  return Status::Ok();
}

StatusOr<std::vector<Explanation>> DiagnosisService::Observe(
    const std::string& session, const petri::Alarm& alarm) {
  Session* s = FindSession(session);
  if (s == nullptr) return NotFoundError("unknown session: " + session);
  ScopedTimer timer(TimeMetric("diag.service.alarm_latency"));
  DQSQ_ASSIGN_OR_RETURN(ModelEntry * entry, ResolveModel(*s));
  DQSQ_RETURN_IF_ERROR(EnsureResident(*s));
  TouchResident(*s);
  CountMetric("diag.service.alarms");

  // Key of the prefix this alarm would produce. An unknown-peer alarm
  // yields a key no successful observation can ever have cached, so the
  // lookup harmlessly misses before the diagnoser rejects the alarm.
  petri::AlarmSequence next = s->history;
  next.push_back(alarm);
  const std::string key = ObservationPrefixKey(next);

  std::string blob;
  if (options_.cache_bytes > 0 && entry->cache.Get(key, &blob)) {
    dist::SnapshotReader r(blob);
    std::vector<Explanation> explanations = DecodeExplanations(r);
    DQSQ_RETURN_IF_ERROR(s->diagnoser->ObserveCached(alarm, explanations));
    s->history.push_back(alarm);
    CountMetric("diag.service.cache_hits");
    return explanations;
  }
  CountMetric("diag.service.cache_misses");

  StatusOr<std::vector<Explanation>> result = s->diagnoser->Observe(alarm);
  if (!result.ok()) return result;  // Observe is transactional: no cleanup
  s->history.push_back(alarm);
  if (options_.cache_bytes > 0) {
    dist::SnapshotWriter w;
    EncodeExplanations(*result, w);
    entry->cache.Put(key, w.Take());
  }
  return result;
}

StatusOr<std::vector<Explanation>> DiagnosisService::Current(
    const std::string& session) {
  Session* s = FindSession(session);
  if (s == nullptr) return NotFoundError("unknown session: " + session);
  DQSQ_RETURN_IF_ERROR(EnsureResident(*s));
  TouchResident(*s);
  return s->diagnoser->Current();
}

Status DiagnosisService::Hibernate(const std::string& session) {
  Session* s = FindSession(session);
  if (s == nullptr) return NotFoundError("unknown session: " + session);
  return HibernateSession(*s);
}

std::string DiagnosisService::SerializeSession(Session& s) {
  DQSQ_CHECK(s.diagnoser != nullptr);
  dist::SnapshotWriter w;
  w.Str(s.name);
  w.Str(s.model_name);
  w.U64(s.model_fingerprint);
  w.U64(s.history.size());
  for (const petri::Alarm& alarm : s.history) {
    w.Str(alarm.symbol);
    w.Str(alarm.peer);
  }
  const bool has_current = s.diagnoser->has_current();
  w.Bool(has_current);
  if (has_current) {
    // has_current() guarantees Current() returns the cached copy without
    // evaluating.
    StatusOr<std::vector<Explanation>> current = s.diagnoser->Current();
    DQSQ_CHECK_OK(current.status());
    EncodeExplanations(*current, w);
  }
  return w.Take();
}

Status DiagnosisService::HibernateSession(Session& s) {
  if (!s.diagnoser) return Status::Ok();
  store_->Put(StoreKey(s), SerializeSession(s));
  resident_lru_.erase(s.lru_pos);
  s.diagnoser.reset();
  CountMetric("diag.service.sessions_hibernated");
  UpdateGauge("diag.service.resident",
              static_cast<int64_t>(resident_lru_.size()));
  return Status::Ok();
}

Status DiagnosisService::EnsureResident(Session& s) {
  if (s.diagnoser) return Status::Ok();
  // Admission gate for waking: the model named at hibernation time must
  // still be registered with the same structure. A plant redeployed with
  // a different net between hibernate and wake fails cleanly here —
  // replaying the stored history into it would produce explanations for
  // the wrong plant.
  DQSQ_ASSIGN_OR_RETURN(ModelEntry * entry, ResolveModel(s));
  std::optional<std::string> blob = store_->Get(StoreKey(s));
  if (!blob.has_value()) {
    return InternalError("hibernation image missing for session " + s.name);
  }
  dist::SnapshotReader r(*blob);
  const std::string name = r.Str();
  const std::string model = r.Str();
  const uint64_t fingerprint = r.U64();
  DQSQ_CHECK(name == s.name) << "hibernation image names " << name;
  if (model != s.model_name || fingerprint != s.model_fingerprint) {
    return FailedPreconditionError(
        "hibernation image of session " + s.name + " was taken under model " +
        model + " (fingerprint mismatch with its admission record)");
  }
  const uint64_t n = r.U64();
  DQSQ_CHECK(n == s.history.size());
  petri::AlarmSequence history;
  history.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    petri::Alarm alarm;
    alarm.symbol = r.Str();
    alarm.peer = r.Str();
    history.push_back(std::move(alarm));
  }
  auto d = std::make_unique<OnlineDiagnoser>(OnlineDiagnoser::CreateShared(
      entry->model, OnlineOptions{s.max_facts}));
  for (const petri::Alarm& alarm : history) {
    DQSQ_RETURN_IF_ERROR(d->ApplyObservationOnly(alarm));
  }
  if (r.Bool()) d->RestoreCurrent(DecodeExplanations(r));
  DQSQ_CHECK(r.AtEnd());
  s.history = std::move(history);
  s.diagnoser = std::move(d);
  s.lru_pos = resident_lru_.insert(resident_lru_.begin(), &s);
  CountMetric("diag.service.sessions_restored");
  Status cap = EnforceResidencyCap(&s);
  UpdateGauge("diag.service.resident",
              static_cast<int64_t>(resident_lru_.size()));
  return cap;
}

void DiagnosisService::TouchResident(Session& s) {
  DQSQ_CHECK(s.diagnoser != nullptr);
  resident_lru_.splice(resident_lru_.begin(), resident_lru_, s.lru_pos);
}

Status DiagnosisService::EnforceResidencyCap(Session* keep) {
  while (resident_lru_.size() > options_.max_resident_sessions) {
    Session* victim = resident_lru_.back();
    if (victim == keep) break;  // never evict the session being served
    DQSQ_RETURN_IF_ERROR(HibernateSession(*victim));
  }
  return Status::Ok();
}

}  // namespace dqsq::diagnosis
