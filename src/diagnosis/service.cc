#include "diagnosis/service.h"

#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace dqsq::diagnosis {

namespace {

void UpdateGauge(const char* name, int64_t value) {
  MetricsRegistry::Global().GetGauge(name).Set(value);
}

}  // namespace

void EncodeExplanations(const std::vector<Explanation>& explanations,
                        dist::SnapshotWriter& w) {
  w.U32(static_cast<uint32_t>(explanations.size()));
  for (const Explanation& e : explanations) {
    w.U32(static_cast<uint32_t>(e.events.size()));
    for (const std::string& event : e.events) w.Str(event);
  }
}

std::vector<Explanation> DecodeExplanations(dist::SnapshotReader& r) {
  std::vector<Explanation> out(r.U32());
  for (Explanation& e : out) {
    e.events.resize(r.U32());
    for (std::string& event : e.events) event = r.Str();
  }
  return out;
}

std::string ObservationPrefixKey(const petri::AlarmSequence& history) {
  // SplitByPeer yields the per-peer subsequences in sorted peer order —
  // the observation semantics of §4.2, under which the cross-peer
  // interleaving is irrelevant to the explanations.
  std::string key;
  for (const auto& [peer, symbols] : petri::SplitByPeer(history)) {
    key += peer;
    key += ':';
    for (const std::string& symbol : symbols) {
      key += symbol;
      key += ',';
    }
    key += '|';
  }
  return key;
}

DiagnosisService::DiagnosisService(const ServiceOptions& options)
    : options_(options) {
  if (options_.max_resident_sessions == 0) options_.max_resident_sessions = 1;
  if (options_.store == nullptr) {
    owned_store_ = std::make_unique<dist::InMemoryDurableStore>();
    store_ = owned_store_.get();
  } else {
    store_ = options_.store;
  }
}

Status DiagnosisService::RegisterModel(const std::string& model,
                                       const petri::PetriNet& net) {
  if (models_.count(model) != 0) {
    return AlreadyExistsError("model already registered: " + model);
  }
  DQSQ_ASSIGN_OR_RETURN(OnlineModel built, OnlineModel::Build(net));
  models_.emplace(model, std::make_unique<ModelEntry>(
                             model, std::move(built), options_.cache_bytes));
  return Status::Ok();
}

Status DiagnosisService::OpenSession(const std::string& session,
                                     const std::string& model) {
  if (sessions_.count(session) != 0) {
    return AlreadyExistsError("session already open: " + session);
  }
  if (sessions_.size() >= options_.max_sessions) {
    CountMetric("diag.service.sessions_rejected");
    return ResourceExhaustedError(
        "admission: session cap reached (" +
        std::to_string(options_.max_sessions) + ")");
  }
  auto mit = models_.find(model);
  if (mit == models_.end()) {
    return NotFoundError("unknown model: " + model);
  }
  auto s = std::make_unique<Session>();
  s->name = session;
  s->model = mit->second.get();
  s->max_facts = options_.session_max_facts;
  s->diagnoser = std::make_unique<OnlineDiagnoser>(OnlineDiagnoser::CreateShared(
      s->model->model, OnlineOptions{s->max_facts}));
  s->lru_pos = resident_lru_.insert(resident_lru_.begin(), s.get());
  Session* raw = s.get();
  sessions_.emplace(session, std::move(s));
  CountMetric("diag.service.sessions_admitted");
  Status cap = EnforceResidencyCap(raw);
  UpdateGauge("diag.service.sessions", static_cast<int64_t>(sessions_.size()));
  UpdateGauge("diag.service.resident",
              static_cast<int64_t>(resident_lru_.size()));
  return cap;
}

Status DiagnosisService::CloseSession(const std::string& session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return NotFoundError("unknown session: " + session);
  }
  Session& s = *it->second;
  if (s.diagnoser) resident_lru_.erase(s.lru_pos);
  sessions_.erase(it);
  CountMetric("diag.service.sessions_closed");
  UpdateGauge("diag.service.sessions", static_cast<int64_t>(sessions_.size()));
  UpdateGauge("diag.service.resident",
              static_cast<int64_t>(resident_lru_.size()));
  return Status::Ok();
}

DiagnosisService::Session* DiagnosisService::FindSession(
    const std::string& session) {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : it->second.get();
}

bool DiagnosisService::is_resident(const std::string& session) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second->diagnoser != nullptr;
}

StatusOr<size_t> DiagnosisService::NumObserved(
    const std::string& session) const {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return NotFoundError("unknown session: " + session);
  }
  return it->second->history.size();
}

const SubqueryCache* DiagnosisService::cache(const std::string& model) const {
  auto it = models_.find(model);
  return it == models_.end() ? nullptr : &it->second->cache;
}

Status DiagnosisService::SetSessionBudget(const std::string& session,
                                          size_t max_facts) {
  Session* s = FindSession(session);
  if (s == nullptr) return NotFoundError("unknown session: " + session);
  s->max_facts = max_facts;
  if (s->diagnoser) s->diagnoser->set_max_facts(max_facts);
  return Status::Ok();
}

StatusOr<std::vector<Explanation>> DiagnosisService::Observe(
    const std::string& session, const petri::Alarm& alarm) {
  Session* s = FindSession(session);
  if (s == nullptr) return NotFoundError("unknown session: " + session);
  ScopedTimer timer(TimeMetric("diag.service.alarm_latency"));
  DQSQ_RETURN_IF_ERROR(EnsureResident(*s));
  TouchResident(*s);
  CountMetric("diag.service.alarms");

  // Key of the prefix this alarm would produce. An unknown-peer alarm
  // yields a key no successful observation can ever have cached, so the
  // lookup harmlessly misses before the diagnoser rejects the alarm.
  petri::AlarmSequence next = s->history;
  next.push_back(alarm);
  const std::string key = ObservationPrefixKey(next);

  std::string blob;
  if (options_.cache_bytes > 0 && s->model->cache.Get(key, &blob)) {
    dist::SnapshotReader r(blob);
    std::vector<Explanation> explanations = DecodeExplanations(r);
    DQSQ_RETURN_IF_ERROR(s->diagnoser->ObserveCached(alarm, explanations));
    s->history.push_back(alarm);
    CountMetric("diag.service.cache_hits");
    return explanations;
  }
  CountMetric("diag.service.cache_misses");

  StatusOr<std::vector<Explanation>> result = s->diagnoser->Observe(alarm);
  if (!result.ok()) return result;  // Observe is transactional: no cleanup
  s->history.push_back(alarm);
  if (options_.cache_bytes > 0) {
    dist::SnapshotWriter w;
    EncodeExplanations(*result, w);
    s->model->cache.Put(key, w.Take());
  }
  return result;
}

StatusOr<std::vector<Explanation>> DiagnosisService::Current(
    const std::string& session) {
  Session* s = FindSession(session);
  if (s == nullptr) return NotFoundError("unknown session: " + session);
  DQSQ_RETURN_IF_ERROR(EnsureResident(*s));
  TouchResident(*s);
  return s->diagnoser->Current();
}

Status DiagnosisService::Hibernate(const std::string& session) {
  Session* s = FindSession(session);
  if (s == nullptr) return NotFoundError("unknown session: " + session);
  return HibernateSession(*s);
}

std::string DiagnosisService::SerializeSession(Session& s) {
  DQSQ_CHECK(s.diagnoser != nullptr);
  dist::SnapshotWriter w;
  w.Str(s.name);
  w.Str(s.model->name);
  w.U64(s.history.size());
  for (const petri::Alarm& alarm : s.history) {
    w.Str(alarm.symbol);
    w.Str(alarm.peer);
  }
  const bool has_current = s.diagnoser->has_current();
  w.Bool(has_current);
  if (has_current) {
    // has_current() guarantees Current() returns the cached copy without
    // evaluating.
    StatusOr<std::vector<Explanation>> current = s.diagnoser->Current();
    DQSQ_CHECK_OK(current.status());
    EncodeExplanations(*current, w);
  }
  return w.Take();
}

Status DiagnosisService::HibernateSession(Session& s) {
  if (!s.diagnoser) return Status::Ok();
  store_->Put(StoreKey(s), SerializeSession(s));
  resident_lru_.erase(s.lru_pos);
  s.diagnoser.reset();
  CountMetric("diag.service.sessions_hibernated");
  UpdateGauge("diag.service.resident",
              static_cast<int64_t>(resident_lru_.size()));
  return Status::Ok();
}

Status DiagnosisService::EnsureResident(Session& s) {
  if (s.diagnoser) return Status::Ok();
  std::optional<std::string> blob = store_->Get(StoreKey(s));
  if (!blob.has_value()) {
    return InternalError("hibernation image missing for session " + s.name);
  }
  dist::SnapshotReader r(*blob);
  const std::string name = r.Str();
  const std::string model = r.Str();
  DQSQ_CHECK(name == s.name) << "hibernation image names " << name;
  DQSQ_CHECK(model == s.model->name);
  const uint64_t n = r.U64();
  DQSQ_CHECK(n == s.history.size());
  petri::AlarmSequence history;
  history.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    petri::Alarm alarm;
    alarm.symbol = r.Str();
    alarm.peer = r.Str();
    history.push_back(std::move(alarm));
  }
  auto d = std::make_unique<OnlineDiagnoser>(OnlineDiagnoser::CreateShared(
      s.model->model, OnlineOptions{s.max_facts}));
  for (const petri::Alarm& alarm : history) {
    DQSQ_RETURN_IF_ERROR(d->ApplyObservationOnly(alarm));
  }
  if (r.Bool()) d->RestoreCurrent(DecodeExplanations(r));
  DQSQ_CHECK(r.AtEnd());
  s.history = std::move(history);
  s.diagnoser = std::move(d);
  s.lru_pos = resident_lru_.insert(resident_lru_.begin(), &s);
  CountMetric("diag.service.sessions_restored");
  Status cap = EnforceResidencyCap(&s);
  UpdateGauge("diag.service.resident",
              static_cast<int64_t>(resident_lru_.size()));
  return cap;
}

void DiagnosisService::TouchResident(Session& s) {
  DQSQ_CHECK(s.diagnoser != nullptr);
  resident_lru_.splice(resident_lru_.begin(), resident_lru_, s.lru_pos);
}

Status DiagnosisService::EnforceResidencyCap(Session* keep) {
  while (resident_lru_.size() > options_.max_resident_sessions) {
    Session* victim = resident_lru_.back();
    if (victim == keep) break;  // never evict the session being served
    DQSQ_RETURN_IF_ERROR(HibernateSession(*victim));
  }
  return Status::Ok();
}

}  // namespace dqsq::diagnosis
