// Petri net → dDatalog unfolding program (paper §4.1). Every peer's rules
// are generated from its local view only: its own transitions, their
// parent/child places, and the statically known peers of the producer
// transitions of those places (the paper's Neighb(p)). Function symbols
// name unfolding nodes by their causal history:
//   f(tr_t, u1..uk)  — the event firing transition t from conditions ui,
//   g(x, pl_s)       — the condition of place s produced by event x
//                      (x = the virtual root "r" for initially marked
//                      places, as in the paper's rule (††)).
//
// Generalization: the paper assumes every transition has exactly two
// parents and notes the general case is straightforward; we generate
// arity-specific relations utrans<k>(x, u1..uk) plus an arity-neutral
// uevent view, and instantiate each rule per combination of producer
// peers (the paper's "for all p', p'' in Neighb(p)").
//
// Relations per peer (located by the node the first argument denotes):
//   utrans<k>(x, u1..uk)  event x with preset conditions u1..uk
//   uplaces(s, x)         condition s produced by event x (or "r")
//   umap(x, c)            homomorphism ρ to net node constants
//   uevent(x)             projection of utrans<k>
//   ucausal(x, y)         y ⪯ x, both events
//   unotCausal(x, y)      ¬(y ⪯ x); x an event or "r", y a condition
//   unotConf(x, y)        ¬(x # y), events or "r"
#ifndef DQSQ_DIAGNOSIS_ENCODER_H_
#define DQSQ_DIAGNOSIS_ENCODER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "petri/net.h"

namespace dqsq::diagnosis {

struct EncodedNet {
  Program program;
  /// Peer symbol per PetriNet PeerIndex.
  std::vector<SymbolId> peer_symbol;
  /// Distinct preset arities occurring in the net.
  std::vector<uint32_t> arities;
};

/// Name of the event-creation relation of arity 1+k.
std::string TransPredName(uint32_t k);

/// Encodes `net` (validated) into the distributed unfolding program.
StatusOr<EncodedNet> EncodeNet(const petri::PetriNet& net,
                               DatalogContext& ctx);

}  // namespace dqsq::diagnosis

#endif  // DQSQ_DIAGNOSIS_ENCODER_H_
