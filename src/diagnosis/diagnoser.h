// The top-level diagnosis API: one call, six engines. The Datalog engines
// evaluate the §4 program (encoder + supervisor) with the selected
// strategy; kReference and kBfhj are the non-Datalog oracles/baselines of
// §2 and §4.3. Every engine returns the same canonical explanations
// (Theorems 2/3), so engines cross-validate each other; the
// materialization counters quantify Theorem 4 and the E1 experiment.
#ifndef DQSQ_DIAGNOSIS_DIAGNOSER_H_
#define DQSQ_DIAGNOSIS_DIAGNOSER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "diagnosis/explanation.h"
#include "diagnosis/supervisor.h"
#include "petri/alarm.h"

namespace dqsq::diagnosis {

enum class DiagnosisEngine {
  kReference,        // explicit unfolding + exhaustive matcher (oracle)
  kBfhj,             // product-unfolding baseline of [8]
  kCentralSemiNaive, // whole dDatalog program bottom-up, depth-bounded
  kCentralQsq,       // QSQ rewriting, centralized (the paper's claim)
  kCentralMagic,     // magic-sets comparator
  kDistQsq,          // full dQSQ over the simulated asynchronous network
};

std::string EngineName(DiagnosisEngine engine);

struct DiagnosisOptions {
  DiagnosisEngine engine = DiagnosisEngine::kCentralQsq;
  /// §4.4 hidden transitions: unobservable events allowed per explanation.
  uint32_t max_hidden = 0;
  /// Budgets for the explicit-unfolding engines.
  size_t max_unfolding_events = 50000;
  size_t max_search_steps = 2000000;
  /// Fact budget for the Datalog engines.
  size_t max_facts = 5'000'000;
  /// Term-depth bound for kCentralSemiNaive (0 = derived from the
  /// observation length; the other engines are demand-bounded and need
  /// none).
  uint32_t naive_term_depth = 0;
  /// Network seed for kDistQsq.
  uint64_t seed = 1;
};

struct DiagnosisResult {
  std::vector<Explanation> explanations;
  /// Materialized unfolding events (utrans facts / product events /
  /// explicit events — Theorem 4's measure).
  size_t trans_facts = 0;
  /// Materialized conditions (uplaces facts / product conditions).
  size_t places_facts = 0;
  /// All facts derived (Datalog engines only).
  size_t total_facts = 0;
  /// Network counters (kDistQsq only).
  size_t messages = 0;
  size_t tuples_shipped = 0;
  /// Canonical Skolem terms of the unfolding nodes this engine
  /// materialized (sorted, unique). For kCentralQsq/kCentralMagic these
  /// are the demanded nodes; for kBfhj the projected product unfolding;
  /// for kReference the explicit prefix. Theorem 4 is the statement that
  /// the QSQ and BFHJ sets coincide. (Empty for kDistQsq, which reports
  /// counts only, and for kCentralSemiNaive whose depth-pruned set is not
  /// comparable.)
  std::vector<std::string> materialized_events;
  std::vector<std::string> materialized_conditions;
};

/// Diagnoses an exact alarm sequence (the paper's §2 problem).
StatusOr<DiagnosisResult> Diagnose(const petri::PetriNet& net,
                                   const petri::AlarmSequence& alarms,
                                   const DiagnosisOptions& options);

/// Diagnoses an alarm-pattern observation (§4.4): per-peer automata over
/// alarm symbols. Supported by the Datalog engines only.
StatusOr<DiagnosisResult> DiagnosePattern(
    const petri::PetriNet& net,
    const std::map<std::string, AlarmAutomaton>& automata,
    const DiagnosisOptions& options);

}  // namespace dqsq::diagnosis

#endif  // DQSQ_DIAGNOSIS_DIAGNOSER_H_
