// Diagnosability as Datalog reachability (ROADMAP item 4). The twin-plant
// verifier graph (petri/verifier.h) turns "is every fault detectable?"
// into "is an ambiguous state with a faulty-copy-advancing cycle
// reachable?" — which is reachability, exactly the shape the paper's
// Datalog/QSQ machinery answers. This layer emits the search as a
// dDatalog program whose relations are placed per peer of the factored
// system (each verifier edge lives at the peer of the transition that
// fires it, as the cited distributed-diagnosability papers propose), so
// one program text drives four engines:
//
//   centralized semi-naive          (bottom-up over the whole program)
//   centralized QSQ                 (demand-driven rewriting)
//   distributed naive   over Cluster/SimNetwork (and the real wire via
//   distributed QSQ                  cluster_main --workload=diag)
//
// Relations (ver0 is the driver's peer, p ranges over edge-owning peers):
//   edge@p(S, S')    verifier edge fired by a transition of p
//   aedge@p(S, S')   edge leaving an ambiguous state (fault flag set)
//   fmove@p(S, S')   ambiguous edge that advances the faulty copy
//   init@ver0(S)     the initial twin state
//   reach@p(S)       S reachable from init
//   seed@p(X, Y)     reachable ambiguous X with fault-advancing edge to Y
//   walk@p(X, Y)     Y reachable from X's seed within the ambiguous region
//   witness@ver0(X)  walk(X, X): an ambiguous cycle anchored at X
//
// The plant is diagnosable iff witness is empty. Every engine returns the
// same anchor set (compared byte for byte by the tests); the C++ layer
// then extracts an ambiguous lasso for one anchor and replays it through
// the token game (petri::ReplayWitness) so every "not diagnosable"
// verdict ships a machine-checked counterexample.
#ifndef DQSQ_DIAGNOSIS_DIAGNOSABILITY_H_
#define DQSQ_DIAGNOSIS_DIAGNOSABILITY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/eval.h"
#include "petri/reference_verifier.h"
#include "petri/verifier.h"

namespace dqsq::diagnosis {

enum class DiagnosabilityEngine {
  kReference,         // brute-force twin-plant oracle (no Datalog)
  kCentralSemiNaive,  // bottom-up fixpoint of the verifier program
  kCentralQsq,        // QSQ rewriting, centralized
  kDistNaive,         // distributed naive over the simulated cluster
  kDistQsq,           // distributed QSQ over the simulated cluster
};

std::string DiagnosabilityEngineName(DiagnosabilityEngine engine);

struct DiagnosabilityOptions {
  DiagnosabilityEngine engine = DiagnosabilityEngine::kCentralQsq;
  petri::VerifierOptions verifier;
  /// Budgets for the Datalog engines.
  EvalOptions eval;
  /// Network seed / step budget / shard count for the distributed engines
  /// (num_shards = 1 runs byte-identical to the unsharded cluster).
  uint64_t seed = 1;
  size_t max_network_steps = 2'000'000;
  size_t num_shards = 1;
  /// Extract + replay-check an ambiguous lasso when not diagnosable.
  bool extract_witness = true;
};

struct DiagnosabilityResult {
  bool diagnosable = true;
  /// Sorted witness-anchor constants ("v12"); empty iff diagnosable.
  /// Engine-independent, so runs cross-validate byte for byte. The
  /// reference oracle reports at most one anchor (its witness's), which
  /// is always a member of the Datalog engines' set.
  std::vector<std::string> witness_anchors;
  /// A replay-checked ambiguous lasso (set when not diagnosable and
  /// extract_witness is on).
  std::optional<petri::AmbiguousWitness> witness;
  size_t verifier_states = 0;
  size_t verifier_edges = 0;
  /// Facts materialized (Datalog engines only).
  size_t total_facts = 0;
  /// Network counters (distributed engines only).
  size_t messages = 0;
  size_t tuples_shipped = 0;
};

/// Decides diagnosability of `net` with the selected engine.
StatusOr<DiagnosabilityResult> CheckDiagnosability(
    const petri::PetriNet& net, const DiagnosabilityOptions& options = {});

/// The verifier program rendered as parseable dDatalog text plus its query
/// ("witness@ver0(X)"). Text so the multi-process cluster runner can ship
/// it over the kStart control frame — the simulated and real-wire runs
/// then evaluate byte-identical programs.
struct VerifierProgramText {
  std::string program;
  std::string query;
};
StatusOr<VerifierProgramText> BuildVerifierProgramText(
    const petri::VerifierNet& verifier);

}  // namespace dqsq::diagnosis

#endif  // DQSQ_DIAGNOSIS_DIAGNOSABILITY_H_
