// Small helper for building rules programmatically (the encoder and the
// supervisor generate hundreds of rules; the text parser would be noise).
#ifndef DQSQ_DIAGNOSIS_RULE_BUILDER_H_
#define DQSQ_DIAGNOSIS_RULE_BUILDER_H_

#include <map>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace dqsq::diagnosis {

class RuleBuilder {
 public:
  explicit RuleBuilder(DatalogContext* ctx) : ctx_(ctx) {}

  /// Rule-local variable by name (slot allocated on first use).
  Pattern V(const std::string& name) {
    auto it = slots_.find(name);
    if (it == slots_.end()) {
      it = slots_.emplace(name, static_cast<VarId>(names_.size())).first;
      names_.push_back(name);
    }
    return Pattern::Var(it->second);
  }

  Pattern C(const std::string& name) {
    return Pattern::Const(ctx_->symbols().Intern(name));
  }

  Pattern App(const std::string& fn, std::vector<Pattern> args) {
    return Pattern::App(ctx_->symbols().Intern(fn), std::move(args));
  }

  Atom MakeAtom(const std::string& pred, const std::string& peer,
                std::vector<Pattern> args) {
    Atom atom;
    atom.rel.pred = ctx_->InternPredicate(
        pred, static_cast<uint32_t>(args.size()));
    atom.rel.peer = ctx_->symbols().Intern(peer);
    atom.args = std::move(args);
    return atom;
  }

  /// Finalizes the rule and resets the variable scope.
  Rule Build(Atom head, std::vector<Atom> body,
             std::vector<Diseq> diseqs = {}) {
    Rule rule;
    rule.head = std::move(head);
    rule.body = std::move(body);
    rule.diseqs = std::move(diseqs);
    rule.num_vars = static_cast<uint32_t>(names_.size());
    rule.var_names = names_;
    slots_.clear();
    names_.clear();
    return rule;
  }

 private:
  DatalogContext* ctx_;
  std::map<std::string, VarId> slots_;
  std::vector<std::string> names_;
};

}  // namespace dqsq::diagnosis

#endif  // DQSQ_DIAGNOSIS_RULE_BUILDER_H_
