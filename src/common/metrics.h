// Process-wide metrics registry: named counters, gauges and log-bucket
// latency histograms with hierarchical labels (engine=dqsq, peer=p1).
// The paper's evaluation is constructive (Theorems 1-4 promise exact
// materialization and bounded communication), so every quantitative claim
// this repo makes rests on the counters defined here; docs/METRICS.md is
// the reference for each exported metric and the BENCH_*.json schema.
//
// Design:
//  * Registration (name + labels -> metric) takes a mutex once; callers
//    keep the returned reference, and every subsequent update is a single
//    relaxed std::atomic RMW — the lock-free fast path.
//  * Histograms use fixed power-of-two buckets (bucket i counts values in
//    [2^(i-1), 2^i)), so recording is a bit_width + two atomic adds and
//    snapshots are tiny.
//  * MetricsSnapshot captures the registry at a point in time; Diff()
//    subtracts an earlier snapshot (counters/histograms subtract, gauges
//    keep the later value), which is how per-run numbers are extracted
//    from the process-wide totals.
//  * ToJson() emits the stable schema consumed by bench/bench_report.h;
//    FromJson() parses it back (the round-trip is unit-tested).
#ifndef DQSQ_COMMON_METRICS_H_
#define DQSQ_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dqsq {

/// A sorted set of key=value labels. Order-insensitive: {a=1,b=2} equals
/// {b=2,a=1}. Kept small (typically 0-2 entries), so a sorted vector wins
/// over a map.
class Labels {
 public:
  Labels() = default;
  Labels(std::initializer_list<std::pair<std::string, std::string>> kv) {
    for (auto& [k, v] : kv) Set(k, v);
  }

  /// Inserts or overwrites one label.
  void Set(const std::string& key, const std::string& value);

  /// Value of `key`, or nullptr.
  const std::string* Find(const std::string& key) const;

  bool empty() const { return entries_.size() == 0; }
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// "{k1=v1,k2=v2}"; "" when empty.
  std::string ToString() const;

  friend bool operator==(const Labels& a, const Labels& b) {
    return a.entries_ == b.entries_;
  }
  friend bool operator<(const Labels& a, const Labels& b) {
    return a.entries_ < b.entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;  // sorted by key
};

enum class MetricType { kCounter, kGauge, kHistogram };

std::string MetricTypeName(MetricType type);

/// Monotonically increasing count. Relaxed atomics: totals are exact, but
/// no ordering is implied with respect to other memory.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<uint64_t> value_{0};
};

/// A value that can move both ways (e.g. current budget headroom).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

/// Fixed log-bucket histogram: bucket 0 counts zeros, bucket i >= 1 counts
/// values v with bit_width(v) == i, i.e. v in [2^(i-1), 2^i). 64 buckets
/// cover the whole uint64_t range, so recording never clamps.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;  // zeros + one per bit width

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket `i` (0 for bucket 0, 2^i - 1 above).
  static uint64_t BucketUpperBound(size_t i);
  /// Bucket index for `value` (bit_width, 0 for 0).
  static size_t BucketIndex(uint64_t value);

 private:
  friend class MetricsRegistry;
  void ResetForTest();
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Records the elapsed wall time (steady clock, nanoseconds) into a
/// histogram when it goes out of scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { histogram_->Record(ElapsedNs()); }

  uint64_t ElapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// One metric's value at snapshot time. Histogram buckets are stored
/// sparsely as (inclusive upper bound, count) pairs.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  std::string unit;  // "", "ns", "bytes", "facts", ...

  uint64_t value = 0;      // counter
  int64_t gauge_value = 0; // gauge

  uint64_t count = 0;  // histogram
  uint64_t sum = 0;    // histogram
  std::vector<std::pair<uint64_t, uint64_t>> buckets;  // (le, count)

  friend bool operator==(const MetricSample& a, const MetricSample& b);
};

/// A point-in-time copy of every registered metric, sorted by
/// (name, labels). Snapshots are plain data: they can be diffed,
/// serialized and parsed without touching the live registry.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// This snapshot minus `base`: counters and histograms subtract
  /// (metrics absent from `base` keep their full value), gauges keep this
  /// snapshot's value. Used to scope the process-wide registry to one run.
  MetricsSnapshot Diff(const MetricsSnapshot& base) const;

  /// Sample with exactly (name, labels), or nullptr.
  const MetricSample* Find(const std::string& name,
                           const Labels& labels = {}) const;

  /// Counter/gauge value of (name, labels); 0 when absent.
  uint64_t Value(const std::string& name, const Labels& labels = {}) const;

  /// Sum of `name` across every label set (counters and gauges).
  uint64_t Total(const std::string& name) const;

  /// Human-readable table, one metric per line.
  std::string ToTable() const;

  /// The stable JSON schema (docs/METRICS.md):
  ///   {"schema_version":1,"metrics":[{"name":...,"type":...,"unit":...,
  ///    "labels":{...},...value fields...}]}
  std::string ToJson() const;

  /// Parses ToJson() output (labels/keys in any order).
  static StatusOr<MetricsSnapshot> FromJson(const std::string& json);
};

/// The process-wide registry. Get*() registers on first use and returns a
/// reference that stays valid for the process lifetime; a (name, labels)
/// pair is permanently bound to one metric type and unit.
class MetricsRegistry {
 public:
  /// The singleton used by all instrumented subsystems.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& unit = "");
  Gauge& GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& unit = "");
  Histogram& GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& unit = "ns");

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric in place (references stay valid).
  /// Test isolation only — production code diffs snapshots instead.
  void ResetForTest();

 private:
  struct Entry {
    MetricType type;
    std::string unit;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(const std::string& name, const Labels& labels,
                  MetricType type, const std::string& unit);

  mutable std::mutex mu_;
  std::map<std::pair<std::string, Labels>, Entry> metrics_;
};

/// Shorthands for the common one-shot paths against the global registry.
inline void CountMetric(const std::string& name, uint64_t n = 1,
                        const Labels& labels = {},
                        const std::string& unit = "") {
  MetricsRegistry::Global().GetCounter(name, labels, unit).Increment(n);
}

inline Histogram& TimeMetric(const std::string& name,
                             const Labels& labels = {}) {
  return MetricsRegistry::Global().GetHistogram(name, labels, "ns");
}

}  // namespace dqsq

#endif  // DQSQ_COMMON_METRICS_H_
