// Monotonic time behind a narrow interface. The simulated network advances
// a ManualClock one tick per delivery (virtual time, fully deterministic);
// the socket transport (dist/socket_network.h) reads the OS steady clock.
// Code that needs "now" for timeouts or latency accounting takes a Clock&
// so both deployments share the logic.
#ifndef DQSQ_COMMON_CLOCK_H_
#define DQSQ_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace dqsq {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic nanoseconds since an arbitrary epoch. Never decreases.
  virtual uint64_t NowNs() = 0;
};

/// std::chrono::steady_clock: monotonic, unaffected by wall-clock steps.
class SteadyClock : public Clock {
 public:
  uint64_t NowNs() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Shared instance (the clock is stateless).
  static SteadyClock& Default() {
    static SteadyClock clock;
    return clock;
  }
};

/// Hand-advanced clock for simulations and tests. SimNetwork ticks one
/// "nanosecond" per delivery; the unit is whatever the caller makes it.
class ManualClock : public Clock {
 public:
  uint64_t NowNs() override { return now_; }
  uint64_t now() const { return now_; }
  void Advance(uint64_t delta = 1) { now_ += delta; }
  /// Moves forward to `t`; a `t` in the past is a no-op (monotonicity).
  void AdvanceTo(uint64_t t) {
    if (t > now_) now_ = t;
  }

 private:
  uint64_t now_ = 0;
};

}  // namespace dqsq

#endif  // DQSQ_COMMON_CLOCK_H_
