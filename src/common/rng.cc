#include "common/rng.h"

namespace dqsq {

uint64_t Rng::Next() {
  // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, trivially seedable.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  DQSQ_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  DQSQ_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace dqsq
