// Growable bitset used for the unfolding engine's concurrency relation and
// causal-ancestor sets, where dense pairwise queries dominate.
#ifndef DQSQ_COMMON_BITSET_H_
#define DQSQ_COMMON_BITSET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dqsq {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(size_t bits) : words_((bits + 63) / 64, 0) {}

  void Resize(size_t bits) { words_.resize((bits + 63) / 64, 0); }

  void Set(size_t i) {
    EnsureWord(i / 64);
    words_[i / 64] |= (1ULL << (i % 64));
  }

  void Clear(size_t i) {
    if (i / 64 < words_.size()) words_[i / 64] &= ~(1ULL << (i % 64));
  }

  bool Test(size_t i) const {
    size_t w = i / 64;
    return w < words_.size() && (words_[w] & (1ULL << (i % 64)));
  }

  /// this &= other (missing words in either treated as zero).
  void IntersectWith(const DynBitset& other) {
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t i = 0; i < n; ++i) words_[i] &= other.words_[i];
    for (size_t i = n; i < words_.size(); ++i) words_[i] = 0;
  }

  /// this |= other.
  void UnionWith(const DynBitset& other) {
    if (other.words_.size() > words_.size()) {
      words_.resize(other.words_.size(), 0);
    }
    for (size_t i = 0; i < other.words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
  }

  /// True iff every set bit of `other` is set here.
  bool Contains(const DynBitset& other) const {
    for (size_t i = 0; i < other.words_.size(); ++i) {
      uint64_t w = (i < words_.size()) ? words_[i] : 0;
      if ((other.words_[i] & ~w) != 0) return false;
    }
    return true;
  }

  /// True iff no bit is set in both.
  bool DisjointFrom(const DynBitset& other) const {
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t i = 0; i < n; ++i) {
      if (words_[i] & other.words_[i]) return false;
    }
    return true;
  }

  size_t PopCount() const {
    size_t count = 0;
    for (uint64_t w : words_) count += static_cast<size_t>(__builtin_popcountll(w));
    return count;
  }

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out;
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word) {
        uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(word));
        out.push_back(static_cast<uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
    return out;
  }

  friend bool operator==(const DynBitset& a, const DynBitset& b) {
    size_t n = std::max(a.words_.size(), b.words_.size());
    for (size_t i = 0; i < n; ++i) {
      uint64_t wa = (i < a.words_.size()) ? a.words_[i] : 0;
      uint64_t wb = (i < b.words_.size()) ? b.words_[i] : 0;
      if (wa != wb) return false;
    }
    return true;
  }

 private:
  void EnsureWord(size_t w) {
    if (w >= words_.size()) words_.resize(w + 1, 0);
  }

  std::vector<uint64_t> words_;
};

}  // namespace dqsq

#endif  // DQSQ_COMMON_BITSET_H_
