#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace dqsq {

// ---------------------------------------------------------------------------
// Labels

void Labels::Set(const std::string& key, const std::string& value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    it->second = value;
  } else {
    entries_.insert(it, {key, value});
  }
}

const std::string* Labels::Find(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Labels::ToString() const {
  if (entries_.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ",";
    out += entries_[i].first + "=" + entries_[i].second;
  }
  out += "}";
  return out;
}

std::string MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Histogram

size_t Histogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));  // 0 for 0
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::ResetForTest() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  const Labels& labels,
                                                  MetricType type,
                                                  const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = metrics_.try_emplace({name, labels});
  Entry& entry = it->second;
  if (inserted) {
    entry.type = type;
    entry.unit = unit;
    switch (type) {
      case MetricType::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  } else {
    DQSQ_CHECK(entry.type == type)
        << "metric " << name << labels.ToString() << " registered as "
        << MetricTypeName(entry.type) << ", requested as "
        << MetricTypeName(type);
  }
  return entry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& unit) {
  return *GetEntry(name, labels, MetricType::kCounter, unit).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels,
                                 const std::string& unit) {
  return *GetEntry(name, labels, MetricType::kGauge, unit).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::string& unit) {
  return *GetEntry(name, labels, MetricType::kHistogram, unit).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.samples.reserve(metrics_.size());
  for (const auto& [key, entry] : metrics_) {
    MetricSample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.type = entry.type;
    sample.unit = entry.unit;
    switch (entry.type) {
      case MetricType::kCounter:
        sample.value = entry.counter->value();
        break;
      case MetricType::kGauge:
        sample.gauge_value = entry.gauge->value();
        break;
      case MetricType::kHistogram: {
        sample.count = entry.histogram->count();
        sample.sum = entry.histogram->sum();
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          uint64_t c = entry.histogram->bucket(i);
          if (c > 0) {
            sample.buckets.emplace_back(Histogram::BucketUpperBound(i), c);
          }
        }
        break;
      }
    }
    snapshot.samples.push_back(std::move(sample));
  }
  // std::map iteration is already (name, labels)-sorted.
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : metrics_) {
    switch (entry.type) {
      case MetricType::kCounter:
        entry.counter->ResetForTest();
        break;
      case MetricType::kGauge:
        entry.gauge->ResetForTest();
        break;
      case MetricType::kHistogram:
        entry.histogram->ResetForTest();
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot

bool operator==(const MetricSample& a, const MetricSample& b) {
  return a.name == b.name && a.labels == b.labels && a.type == b.type &&
         a.unit == b.unit && a.value == b.value &&
         a.gauge_value == b.gauge_value && a.count == b.count &&
         a.sum == b.sum && a.buckets == b.buckets;
}

const MetricSample* MetricsSnapshot::Find(const std::string& name,
                                          const Labels& labels) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::Value(const std::string& name,
                                const Labels& labels) const {
  const MetricSample* s = Find(name, labels);
  if (s == nullptr) return 0;
  if (s->type == MetricType::kGauge) {
    return s->gauge_value < 0 ? 0 : static_cast<uint64_t>(s->gauge_value);
  }
  return s->value;
}

uint64_t MetricsSnapshot::Total(const std::string& name) const {
  uint64_t total = 0;
  for (const MetricSample& s : samples) {
    if (s.name != name) continue;
    if (s.type == MetricType::kGauge) {
      if (s.gauge_value > 0) total += static_cast<uint64_t>(s.gauge_value);
    } else {
      total += s.value;
    }
  }
  return total;
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const MetricSample& cur : samples) {
    const MetricSample* old = base.Find(cur.name, cur.labels);
    MetricSample d = cur;
    if (old != nullptr) {
      switch (cur.type) {
        case MetricType::kCounter:
          d.value = cur.value >= old->value ? cur.value - old->value : 0;
          break;
        case MetricType::kGauge:
          break;  // gauges keep the later value
        case MetricType::kHistogram: {
          d.count = cur.count >= old->count ? cur.count - old->count : 0;
          d.sum = cur.sum >= old->sum ? cur.sum - old->sum : 0;
          std::map<uint64_t, uint64_t> buckets(cur.buckets.begin(),
                                               cur.buckets.end());
          for (const auto& [le, c] : old->buckets) {
            auto it = buckets.find(le);
            if (it != buckets.end()) {
              it->second = it->second >= c ? it->second - c : 0;
            }
          }
          d.buckets.clear();
          for (const auto& [le, c] : buckets) {
            if (c > 0) d.buckets.emplace_back(le, c);
          }
          break;
        }
      }
    }
    // Keep zero-valued samples: an explicit 0 in a per-run report is
    // information ("this path never ran"), and diff-of-diff stays stable.
    out.samples.push_back(std::move(d));
  }
  return out;
}

std::string MetricsSnapshot::ToTable() const {
  std::ostringstream out;
  for (const MetricSample& s : samples) {
    out << s.name << s.labels.ToString() << " ";
    switch (s.type) {
      case MetricType::kCounter:
        out << s.value;
        break;
      case MetricType::kGauge:
        out << s.gauge_value;
        break;
      case MetricType::kHistogram:
        out << "count=" << s.count << " sum=" << s.sum;
        if (s.count > 0) out << " mean=" << s.sum / s.count;
        break;
    }
    if (!s.unit.empty()) out << " " << s.unit;
    out << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// JSON serialization

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendLabelsJson(const Labels& labels, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels.entries()) {
    if (!first) out->push_back(',');
    first = false;
    AppendJsonString(k, out);
    out->push_back(':');
    AppendJsonString(v, out);
  }
  out->push_back('}');
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"schema_version\":1,\"metrics\":[";
  bool first_sample = true;
  for (const MetricSample& s : samples) {
    if (!first_sample) out.push_back(',');
    first_sample = false;
    out += "{\"name\":";
    AppendJsonString(s.name, &out);
    out += ",\"type\":";
    AppendJsonString(MetricTypeName(s.type), &out);
    out += ",\"unit\":";
    AppendJsonString(s.unit, &out);
    out += ",\"labels\":";
    AppendLabelsJson(s.labels, &out);
    switch (s.type) {
      case MetricType::kCounter:
        out += ",\"value\":" + std::to_string(s.value);
        break;
      case MetricType::kGauge:
        out += ",\"value\":" + std::to_string(s.gauge_value);
        break;
      case MetricType::kHistogram: {
        out += ",\"count\":" + std::to_string(s.count);
        out += ",\"sum\":" + std::to_string(s.sum);
        out += ",\"buckets\":[";
        bool first_bucket = true;
        for (const auto& [le, c] : s.buckets) {
          if (!first_bucket) out.push_back(',');
          first_bucket = false;
          out += "{\"le\":" + std::to_string(le) +
                 ",\"count\":" + std::to_string(c) + "}";
        }
        out += "]";
        break;
      }
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// JSON parsing — a minimal recursive-descent parser for the snapshot
// schema. Numbers are kept as uint64/int64 (no double round-trip), which
// is what exact counter comparisons in tests rely on.

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  bool negative = false;    // number sign
  uint64_t magnitude = 0;   // number absolute value (integers only)
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  int64_t AsInt64() const {
    return negative ? -static_cast<int64_t>(magnitude)
                    : static_cast<int64_t>(magnitude);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    DQSQ_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return InvalidArgumentError(std::string("expected '") + c +
                                  "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::Ok();
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  StatusOr<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("unexpected end of JSON");
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseStringValue();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return InvalidArgumentError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(pos_));
  }

  StatusOr<JsonValue> ParseObject() {
    DQSQ_RETURN_IF_ERROR(Expect('{'));
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (Peek('}')) {
      ++pos_;
      return v;
    }
    for (;;) {
      DQSQ_ASSIGN_OR_RETURN(std::string key, ParseString());
      DQSQ_RETURN_IF_ERROR(Expect(':'));
      DQSQ_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.object.emplace_back(std::move(key), std::move(member));
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      DQSQ_RETURN_IF_ERROR(Expect('}'));
      return v;
    }
  }

  StatusOr<JsonValue> ParseArray() {
    DQSQ_RETURN_IF_ERROR(Expect('['));
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (Peek(']')) {
      ++pos_;
      return v;
    }
    for (;;) {
      DQSQ_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      v.array.push_back(std::move(element));
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      DQSQ_RETURN_IF_ERROR(Expect(']'));
      return v;
    }
  }

  StatusOr<JsonValue> ParseStringValue() {
    DQSQ_ASSIGN_OR_RETURN(std::string s, ParseString());
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.string = std::move(s);
    return v;
  }

  StatusOr<std::string> ParseString() {
    DQSQ_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return InvalidArgumentError("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return InvalidArgumentError("bad \\u escape digit");
            }
          }
          // Snapshot strings are ASCII; only control-range escapes appear.
          if (code > 0x7f) {
            return InvalidArgumentError("non-ASCII \\u escape unsupported");
          }
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return InvalidArgumentError("unknown escape in JSON string");
      }
    }
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("unterminated JSON string");
    }
    ++pos_;  // closing quote
    return out;
  }

  StatusOr<JsonValue> ParseNumber() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    if (text_[pos_] == '-') {
      v.negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return InvalidArgumentError("malformed JSON number");
    }
    uint64_t magnitude = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      uint64_t digit = static_cast<uint64_t>(text_[pos_] - '0');
      if (magnitude > (~uint64_t{0} - digit) / 10) {
        return InvalidArgumentError("JSON number overflows uint64");
      }
      magnitude = magnitude * 10 + digit;
      ++pos_;
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      return InvalidArgumentError(
          "non-integer JSON numbers are not part of the snapshot schema");
    }
    v.magnitude = magnitude;
    return v;
  }

  StatusOr<JsonValue> ParseBool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
      return v;
    }
    return InvalidArgumentError("malformed JSON literal");
  }

  StatusOr<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return InvalidArgumentError("malformed JSON literal");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

StatusOr<uint64_t> RequireUInt(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber || v->negative) {
    return InvalidArgumentError("missing or non-uint field \"" + key + "\"");
  }
  return v->magnitude;
}

StatusOr<std::string> RequireString(const JsonValue& obj,
                                    const std::string& key) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return InvalidArgumentError("missing or non-string field \"" + key +
                                "\"");
  }
  return v->string;
}

}  // namespace

StatusOr<MetricsSnapshot> MetricsSnapshot::FromJson(const std::string& json) {
  DQSQ_ASSIGN_OR_RETURN(JsonValue root, JsonParser(json).Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return InvalidArgumentError("snapshot JSON must be an object");
  }
  DQSQ_ASSIGN_OR_RETURN(uint64_t version, RequireUInt(root, "schema_version"));
  if (version != 1) {
    return InvalidArgumentError("unsupported snapshot schema_version " +
                                std::to_string(version));
  }
  const JsonValue* metrics = root.Get("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kArray) {
    return InvalidArgumentError("snapshot JSON lacks a \"metrics\" array");
  }

  MetricsSnapshot snapshot;
  for (const JsonValue& m : metrics->array) {
    if (m.kind != JsonValue::Kind::kObject) {
      return InvalidArgumentError("metric entries must be objects");
    }
    MetricSample sample;
    DQSQ_ASSIGN_OR_RETURN(sample.name, RequireString(m, "name"));
    DQSQ_ASSIGN_OR_RETURN(sample.unit, RequireString(m, "unit"));
    DQSQ_ASSIGN_OR_RETURN(std::string type, RequireString(m, "type"));
    const JsonValue* labels = m.Get("labels");
    if (labels != nullptr) {
      if (labels->kind != JsonValue::Kind::kObject) {
        return InvalidArgumentError("\"labels\" must be an object");
      }
      for (const auto& [k, v] : labels->object) {
        if (v.kind != JsonValue::Kind::kString) {
          return InvalidArgumentError("label values must be strings");
        }
        sample.labels.Set(k, v.string);
      }
    }
    if (type == "counter") {
      sample.type = MetricType::kCounter;
      DQSQ_ASSIGN_OR_RETURN(sample.value, RequireUInt(m, "value"));
    } else if (type == "gauge") {
      sample.type = MetricType::kGauge;
      const JsonValue* v = m.Get("value");
      if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
        return InvalidArgumentError("gauge lacks a numeric \"value\"");
      }
      sample.gauge_value = v->AsInt64();
    } else if (type == "histogram") {
      sample.type = MetricType::kHistogram;
      DQSQ_ASSIGN_OR_RETURN(sample.count, RequireUInt(m, "count"));
      DQSQ_ASSIGN_OR_RETURN(sample.sum, RequireUInt(m, "sum"));
      const JsonValue* buckets = m.Get("buckets");
      if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray) {
        return InvalidArgumentError("histogram lacks a \"buckets\" array");
      }
      for (const JsonValue& b : buckets->array) {
        if (b.kind != JsonValue::Kind::kObject) {
          return InvalidArgumentError("bucket entries must be objects");
        }
        DQSQ_ASSIGN_OR_RETURN(uint64_t le, RequireUInt(b, "le"));
        DQSQ_ASSIGN_OR_RETURN(uint64_t count, RequireUInt(b, "count"));
        sample.buckets.emplace_back(le, count);
      }
    } else {
      return InvalidArgumentError("unknown metric type \"" + type + "\"");
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

}  // namespace dqsq
