// Status / StatusOr error handling (Google style; the library does not use
// exceptions). A Status is either OK or carries an error code and message.
#ifndef DQSQ_COMMON_STATUS_H_
#define DQSQ_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/logging.h"

namespace dqsq {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,  // evaluation budget exceeded
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for `code` (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a payload.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    DQSQ_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

/// Result of an operation that yields a T on success.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DQSQ_CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DQSQ_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    DQSQ_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DQSQ_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define DQSQ_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::dqsq::Status dqsq_rie_status = (expr);         \
    if (!dqsq_rie_status.ok()) return dqsq_rie_status; \
  } while (0)

#define DQSQ_CONCAT_INNER(a, b) a##b
#define DQSQ_CONCAT(a, b) DQSQ_CONCAT_INNER(a, b)

#define DQSQ_ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto DQSQ_CONCAT(dqsq_aor_, __LINE__) = (expr);                         \
  if (!DQSQ_CONCAT(dqsq_aor_, __LINE__).ok())                             \
    return DQSQ_CONCAT(dqsq_aor_, __LINE__).status();                     \
  lhs = std::move(DQSQ_CONCAT(dqsq_aor_, __LINE__)).value()

}  // namespace dqsq

#endif  // DQSQ_COMMON_STATUS_H_
