// String interning: maps strings to dense 32-bit ids and back. Predicate
// names, peer names, constants and variable names are all interned so the
// engine manipulates integers only.
#ifndef DQSQ_COMMON_SYMBOL_TABLE_H_
#define DQSQ_COMMON_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dqsq {

using SymbolId = uint32_t;

class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Interns `name`, returning its id (existing id if already interned).
  SymbolId Intern(std::string_view name);

  /// Returns the name for `id`. `id` must have been returned by Intern.
  const std::string& Name(SymbolId id) const;

  /// Returns true and sets `*id` if `name` was interned before.
  bool Lookup(std::string_view name, SymbolId* id) const;

  size_t size() const { return names_.size(); }

 private:
  // deque: references to elements stay valid across push_back, so the
  // string_view keys in index_ never dangle.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, SymbolId> index_;
};

}  // namespace dqsq

#endif  // DQSQ_COMMON_SYMBOL_TABLE_H_
