// Hash combinators used by the term arena and relation indices.
#ifndef DQSQ_COMMON_HASH_H_
#define DQSQ_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace dqsq {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a range of hashable elements.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (; first != last; ++first) {
    HashCombine(seed, std::hash<typename std::iterator_traits<It>::value_type>{}(*first));
  }
  return seed;
}

}  // namespace dqsq

#endif  // DQSQ_COMMON_HASH_H_
