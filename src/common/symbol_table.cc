#include "common/symbol_table.h"

#include "common/logging.h"

namespace dqsq {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

const std::string& SymbolTable::Name(SymbolId id) const {
  DQSQ_CHECK_LT(id, names_.size());
  return names_[id];
}

bool SymbolTable::Lookup(std::string_view name, SymbolId* id) const {
  auto it = index_.find(name);
  if (it == index_.end()) return false;
  *id = it->second;
  return true;
}

}  // namespace dqsq
