// Deterministic pseudo-random number generator (splitmix64 core). Used by
// the random-net generator, the alarm interleaver and the simulated network
// scheduler so that every test and benchmark is reproducible from a seed.
#ifndef DQSQ_COMMON_RNG_H_
#define DQSQ_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace dqsq {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element index; container must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    DQSQ_CHECK(!items.empty());
    return items[NextBelow(items.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace dqsq

#endif  // DQSQ_COMMON_RNG_H_
