// Minimal check/logging macros in the spirit of glog, sufficient for a
// library that forbids exceptions: invariant violations abort with a
// source location and a message.
#ifndef DQSQ_COMMON_LOGGING_H_
#define DQSQ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dqsq::internal {

// Accumulates a message and aborts the process when destroyed. Used as the
// right-hand side of the CHECK macros below.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;
  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when a check passes.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Gives the '?:' in the CHECK macro a common void type while letting
// callers stream extra context: `DQSQ_CHECK(x) << "detail"`.
struct Voidify {
  void operator&(FatalMessage&) {}
  void operator&(FatalMessage&&) {}
  void operator&(NullStream&) {}
  void operator&(NullStream&&) {}
};

}  // namespace dqsq::internal

#define DQSQ_CHECK(condition)                                   \
  (condition) ? (void)0                                         \
              : ::dqsq::internal::Voidify() &                   \
                    ::dqsq::internal::FatalMessage(              \
                        __FILE__, __LINE__, #condition)

#define DQSQ_CHECK_OK(expr)                                        \
  do {                                                             \
    const auto& dqsq_check_ok_status = (expr);                     \
    if (!dqsq_check_ok_status.ok()) {                              \
      ::dqsq::internal::FatalMessage(__FILE__, __LINE__, #expr)    \
          << dqsq_check_ok_status.message();                       \
    }                                                              \
  } while (0)

#define DQSQ_CHECK_EQ(a, b) DQSQ_CHECK((a) == (b))
#define DQSQ_CHECK_NE(a, b) DQSQ_CHECK((a) != (b))
#define DQSQ_CHECK_LT(a, b) DQSQ_CHECK((a) < (b))
#define DQSQ_CHECK_LE(a, b) DQSQ_CHECK((a) <= (b))
#define DQSQ_CHECK_GT(a, b) DQSQ_CHECK((a) > (b))
#define DQSQ_CHECK_GE(a, b) DQSQ_CHECK((a) >= (b))

#ifdef NDEBUG
#define DQSQ_DCHECK(condition) \
  (true) ? (void)0 : (void)(::dqsq::internal::NullStream() << !(condition))
#else
#define DQSQ_DCHECK(condition) DQSQ_CHECK(condition)
#endif

#endif  // DQSQ_COMMON_LOGGING_H_
