#!/usr/bin/env python3
"""Guard: pinned bench reports must stay byte-identical across commits.

The distributed runtime promises zero overhead on a perfect wire: with no
fault plan the reliable-delivery shim is never engaged and every counter in
BENCH_E3_distributed.json — message, tuple and fact counts, per-peer
traffic, registry metrics — must match the committed baseline exactly.
BENCH_E3_crash.json pins the crash-restart schedules the same way: the
crash-free column must stay identical to the lossless E3 run, and the
seeded crash schedules are fully deterministic, so checkpoint volume, WAL
replay length and recovery counts are exact values, not ranges.
Only wall-clock timing fields (wall_time_ns, ns-unit metrics) are excluded,
since they vary run to run.

Usage: check_bench_baseline.py <baseline.json> <candidate.json> \
           [<baseline2.json> <candidate2.json> ...]
Exits non-zero with a unified diff when any filtered pair differs.
"""
import difflib
import json
import sys


def load_filtered(path):
    with open(path) as f:
        doc = json.load(f)
    doc.pop("wall_time_ns", None)
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        metrics["metrics"] = [
            m
            for m in metrics.get("metrics", [])
            if m.get("unit") != "ns" and "wall" not in m.get("name", "")
        ]
    return doc


def check_pair(baseline_path, candidate_path):
    baseline = load_filtered(baseline_path)
    candidate = load_filtered(candidate_path)
    if baseline == candidate:
        print(f"bench baseline OK: {candidate_path} matches {baseline_path}")
        return True
    diff = difflib.unified_diff(
        json.dumps(baseline, indent=1, sort_keys=True).splitlines(),
        json.dumps(candidate, indent=1, sort_keys=True).splitlines(),
        fromfile=baseline_path,
        tofile=candidate_path,
        lineterm="",
    )
    print("\n".join(diff))
    print(
        f"\nbench baseline MISMATCH: {candidate_path} differs from "
        f"{baseline_path} beyond timing fields.\n"
        "If the count change is intentional, regenerate the baseline:\n"
        "  DQSQ_BENCH_OUT_DIR=bench/baselines ./build/bench/bench_distributed",
        file=sys.stderr,
    )
    return False


def main(argv):
    pairs = argv[1:]
    if not pairs or len(pairs) % 2 != 0:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for i in range(0, len(pairs), 2):
        ok = check_pair(pairs[i], pairs[i + 1]) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
