#!/usr/bin/env python3
"""Guard: pinned bench reports must stay byte-identical across commits.

The distributed runtime promises zero overhead on a perfect wire: with no
fault plan the reliable-delivery shim is never engaged and every counter in
BENCH_E3_distributed.json — message, tuple and fact counts, per-peer
traffic, registry metrics — must match the committed baseline exactly.
BENCH_E3_crash.json pins the crash-restart schedules the same way: the
crash-free column must stay identical to the lossless E3 run, and the
seeded crash schedules are fully deterministic, so checkpoint volume, WAL
replay length and recovery counts are exact values, not ranges.

Timing fields — wall_time_ns, ns-unit metrics, metric names containing
"wall", params whose key ends in "_ns" — vary run to run and are excluded
from the exact comparison. By default they are ignored entirely; with
--max-timing-ratio R each candidate timing field must instead stay within
a factor of R of its baseline value in BOTH directions (guards gross
performance regressions without pinning the clock; fields that are zero or
missing on either side are skipped).

Usage: check_bench_baseline.py [--max-timing-ratio R] \
           <baseline.json> <candidate.json> \
           [<baseline2.json> <candidate2.json> ...]
Exits non-zero with a unified diff when any filtered pair differs, or when
a timing field exceeds the ratio bound.
"""
import difflib
import json
import sys


def is_timing_metric(metric):
    return metric.get("unit") == "ns" or "wall" in metric.get("name", "")


def is_timing_param(key, value):
    return key.endswith("_ns") and isinstance(value, (int, float))


def load(path):
    with open(path) as f:
        return json.load(f)


def split_timings(doc):
    """Returns (doc-without-timing-fields, {field-name: value})."""
    timings = {}
    wall = doc.pop("wall_time_ns", None)
    if isinstance(wall, (int, float)):
        timings["wall_time_ns"] = wall
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        kept = []
        for m in metrics.get("metrics", []):
            if is_timing_metric(m):
                labels = json.dumps(m.get("labels", {}), sort_keys=True)
                timings[f"metric:{m.get('name')}:{labels}"] = m.get("value")
            else:
                kept.append(m)
        metrics["metrics"] = kept
    params = doc.get("params")
    if isinstance(params, dict):
        for key in list(params):
            if is_timing_param(key, params[key]):
                timings[f"param:{key}"] = params.pop(key)
    return doc, timings


def check_timing_ratio(baseline, candidate, max_ratio, candidate_path):
    ok = True
    for field, base_value in baseline.items():
        cand_value = candidate.get(field)
        if not isinstance(base_value, (int, float)) or base_value <= 0:
            continue
        if not isinstance(cand_value, (int, float)) or cand_value <= 0:
            continue
        ratio = max(cand_value / base_value, base_value / cand_value)
        if ratio > max_ratio:
            direction = "slower" if cand_value > base_value else "faster"
            print(
                f"timing ratio EXCEEDED in {candidate_path}: {field} is "
                f"{ratio:.2f}x {direction} than baseline "
                f"({base_value} -> {cand_value}, limit {max_ratio}x)",
                file=sys.stderr,
            )
            ok = False
    return ok


def check_pair(baseline_path, candidate_path, max_timing_ratio):
    baseline, baseline_timings = split_timings(load(baseline_path))
    candidate, candidate_timings = split_timings(load(candidate_path))
    ok = True
    if baseline != candidate:
        diff = difflib.unified_diff(
            json.dumps(baseline, indent=1, sort_keys=True).splitlines(),
            json.dumps(candidate, indent=1, sort_keys=True).splitlines(),
            fromfile=baseline_path,
            tofile=candidate_path,
            lineterm="",
        )
        print("\n".join(diff))
        print(
            f"\nbench baseline MISMATCH: {candidate_path} differs from "
            f"{baseline_path} beyond timing fields.\n"
            "If the count change is intentional, regenerate the baseline:\n"
            "  DQSQ_BENCH_OUT_DIR=bench/baselines "
            "./build/bench/<bench_binary>",
            file=sys.stderr,
        )
        ok = False
    if max_timing_ratio is not None:
        ok = (
            check_timing_ratio(
                baseline_timings, candidate_timings, max_timing_ratio,
                candidate_path,
            )
            and ok
        )
    if ok:
        bound = (
            ""
            if max_timing_ratio is None
            else f" (timings within {max_timing_ratio}x)"
        )
        print(
            f"bench baseline OK: {candidate_path} matches "
            f"{baseline_path}{bound}"
        )
    return ok


def main(argv):
    args = argv[1:]
    max_timing_ratio = None
    if "--max-timing-ratio" in args:
        i = args.index("--max-timing-ratio")
        try:
            max_timing_ratio = float(args[i + 1])
        except (IndexError, ValueError):
            print("--max-timing-ratio requires a number", file=sys.stderr)
            return 2
        del args[i : i + 2]
    if not args or len(args) % 2 != 0:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for i in range(0, len(args), 2):
        ok = check_pair(args[i], args[i + 1], max_timing_ratio) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
