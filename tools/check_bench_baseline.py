#!/usr/bin/env python3
"""Guard: the lossless E3 bench must stay byte-identical across commits.

The distributed runtime promises zero overhead on a perfect wire: with no
fault plan the reliable-delivery shim is never engaged and every counter in
BENCH_E3_distributed.json — message, tuple and fact counts, per-peer
traffic, registry metrics — must match the committed baseline exactly.
Only wall-clock timing fields (wall_time_ns, ns-unit metrics) are excluded,
since they vary run to run.

Usage: check_bench_baseline.py <baseline.json> <candidate.json>
Exits non-zero with a unified diff when the filtered documents differ.
"""
import difflib
import json
import sys


def load_filtered(path):
    with open(path) as f:
        doc = json.load(f)
    doc.pop("wall_time_ns", None)
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        metrics["metrics"] = [
            m
            for m in metrics.get("metrics", [])
            if m.get("unit") != "ns" and "wall" not in m.get("name", "")
        ]
    return doc


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, candidate_path = argv[1], argv[2]
    baseline = load_filtered(baseline_path)
    candidate = load_filtered(candidate_path)
    if baseline == candidate:
        print(f"bench baseline OK: {candidate_path} matches {baseline_path}")
        return 0
    diff = difflib.unified_diff(
        json.dumps(baseline, indent=1, sort_keys=True).splitlines(),
        json.dumps(candidate, indent=1, sort_keys=True).splitlines(),
        fromfile=baseline_path,
        tofile=candidate_path,
        lineterm="",
    )
    print("\n".join(diff))
    print(
        f"\nbench baseline MISMATCH: {candidate_path} differs from "
        f"{baseline_path} beyond timing fields.\n"
        "If the count change is intentional, regenerate the baseline:\n"
        "  DQSQ_BENCH_OUT_DIR=bench/baselines ./build/bench/bench_distributed",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
