#!/usr/bin/env python3
"""Launcher for the multi-process cluster runner (docs/CLUSTER.md).

Thin wrapper around `cluster_main --mode=supervisor`: locates the binary
(building it first with --build if asked), forwards the workload flags,
parses the supervisor's JSON report from stdout and exits non-zero when
the run fails or — with --check-against-sim — when the real-wire answers
differ from the SimNetwork reference run.

Examples:
  tools/run_cluster.py --procs 4 --engine dqsq --check-against-sim
  tools/run_cluster.py --engine dnaive --program prog.dl \\
      --query 'path@peer0(v0, Y)'
  tools/run_cluster.py --build --procs 8 --chain-peers 12 --chain-edges 6
"""
import argparse
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def find_binary(build_dir):
    path = pathlib.Path(build_dir) / "src" / "cluster_main"
    if not path.is_file():
        sys.exit(
            f"cluster_main not found at {path}; build it first "
            "(cmake --build build -j --target cluster_main) or pass --build"
        )
    return path


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--build-dir", default=str(REPO / "build"))
    parser.add_argument(
        "--build", action="store_true", help="build cluster_main first"
    )
    parser.add_argument("--engine", choices=["dnaive", "dqsq"], default="dqsq")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="supervisor port (0 = kernel picks)"
    )
    parser.add_argument(
        "--program", default="", help="dDatalog program file (default: chain)"
    )
    parser.add_argument("--query", default="path@peer0(v0, Y)")
    parser.add_argument("--chain-peers", type=int, default=6)
    parser.add_argument("--chain-edges", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--timeout-ms", type=int, default=60000)
    parser.add_argument("--check-against-sim", action="store_true")
    args = parser.parse_args()

    if args.build:
        subprocess.run(
            ["cmake", "--build", args.build_dir, "-j", "--target",
             "cluster_main"],
            check=True,
        )
    binary = find_binary(args.build_dir)

    cmd = [
        str(binary),
        "--mode=supervisor",
        f"--engine={args.engine}",
        f"--procs={args.procs}",
        f"--host={args.host}",
        f"--port={args.port}",
        f"--query={args.query}",
        f"--chain-peers={args.chain_peers}",
        f"--chain-edges={args.chain_edges}",
        f"--seed={args.seed}",
        f"--timeout-ms={args.timeout_ms}",
    ]
    if args.program:
        cmd.append(f"--program={args.program}")
    if args.check_against_sim:
        cmd.append("--check-against-sim")

    proc = subprocess.run(cmd, capture_output=True, text=True)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout)
        sys.exit(f"cluster run failed (exit {proc.returncode})")

    report = json.loads(proc.stdout)
    print(json.dumps(report, indent=2))
    if args.check_against_sim and not report.get("answers_match_sim", False):
        sys.exit("real-wire answers do NOT match the SimNetwork reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
