// The paper's §3 in isolation: the Figure 3 dDatalog program evaluated
// over three autonomous peers, first with distributed naive evaluation,
// then with dQSQ — showing the same answers with far less shipping
// (Theorem 1 + the optimization claim).
#include <iostream>

#include "dist/dnaive.h"
#include "dist/dqsq.h"

using namespace dqsq;

int main() {
  const char* kProgram = R"(
    % Figure 3 (paper): relation r at peer r, s at peer s, t at peer t.
    r@r(X, Y) :- a@r(X, Y).
    r@r(X, Y) :- s@s(X, Z), t@t(Z, Y).
    s@s(X, Y) :- r@r(X, Y), b@s(Y, Z).
    t@t(X, Y) :- c@t(X, Y).
    % Extensional data.
    a@r("1", "2").  a@r("2", "3").  a@r("7", "8").
    b@s("2", "5").  b@s("3", "6").
    c@t("2", "4").  c@t("3", "9").
  )";

  for (bool use_qsq : {false, true}) {
    DatalogContext ctx;
    auto program = ParseProgram(kProgram, ctx);
    DQSQ_CHECK_OK(program.status());
    auto query = ParseQuery("r@r(\"1\", Y)", ctx);
    DQSQ_CHECK_OK(query.status());

    dist::DistOptions opts;
    auto result = use_qsq
                      ? dist::DistQsqSolve(ctx, *program, *query, opts)
                      : dist::DistNaiveSolve(ctx, *program, *query, opts);
    DQSQ_CHECK_OK(result.status());

    std::cout << (use_qsq ? "dQSQ" : "distributed naive")
              << ": query r@r(\"1\", Y) over " << result->num_peers
              << " peers\n  answers:";
    for (const Tuple& t : result->answers) {
      std::cout << " " << ctx.arena().ToString(t[0], ctx.symbols());
    }
    std::cout << "\n  messages delivered: "
              << result->net_stats.messages_delivered
              << "\n  tuples shipped:     " << result->net_stats.tuples_shipped
              << "\n  facts materialized: " << result->total_facts << "\n\n";
  }
  std::cout << "Both engines agree (Theorem 1); dQSQ ships only the\n"
               "bindings and answers the query demands.\n";
  return 0;
}
