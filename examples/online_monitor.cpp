// Online supervision: alarms arrive one at a time (as they would from a
// live network) and the diagnoser maintains the explanation set
// incrementally, reusing everything it materialized for earlier prefixes.
// The final explanation is also rendered as Graphviz DOT — the "compact,
// preferably graphical" form §2 of the paper asks for.
#include <iostream>

#include "diagnosis/online.h"
#include "petri/dot.h"
#include "petri/examples.h"
#include "petri/reference_diagnoser.h"

using namespace dqsq;

int main() {
  petri::PetriNet net = petri::MakePaperNet();
  auto online = diagnosis::OnlineDiagnoser::Create(net,
                                                   diagnosis::OnlineOptions{});
  DQSQ_CHECK_OK(online.status());

  petri::AlarmSequence stream =
      petri::MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}});
  for (const petri::Alarm& alarm : stream) {
    auto explanations = online->Observe(alarm);
    DQSQ_CHECK_OK(explanations.status());
    std::cout << "alarm (" << alarm.symbol << "," << alarm.peer << ")  ->  "
              << explanations->size() << " candidate scenario(s), +"
              << online->last_step_new_facts() << " new facts (total "
              << online->total_facts() << ")\n";
    for (const auto& e : *explanations) {
      for (const std::string& ev : e.events) std::cout << "    " << ev << "\n";
    }
  }

  // Render the (unique) final explanation in the style of Figure 2:
  // the unfolding with the explaining configuration shaded.
  auto u = petri::Unfolding::Build(net, petri::UnfoldOptions{});
  DQSQ_CHECK_OK(u.status());
  auto ref = petri::ReferenceDiagnose(*u, stream, petri::ReferenceOptions{});
  DQSQ_CHECK_OK(ref.status());
  if (!ref->explanations.empty()) {
    std::cout << "\nGraphviz rendering (paper Figure 2 style):\n"
              << petri::UnfoldingToDot(*u, &ref->explanations[0]);
  }
  return 0;
}
