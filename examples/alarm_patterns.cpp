// §4.4 extensions: instead of one exact alarm sequence, the supervisor
// asks for every behaviour matching a pattern. Because the supervisor
// program is generic over per-peer automata, patterns are just data —
// the same dDatalog + QSQ machinery answers all of them.
#include <iostream>

#include "diagnosis/diagnoser.h"
#include "diagnosis/extensions.h"
#include "petri/examples.h"

using namespace dqsq;
using diagnosis::AlarmAutomaton;

namespace {

void Show(const char* title, const petri::PetriNet& net,
          std::map<std::string, AlarmAutomaton> automata) {
  diagnosis::DiagnosisOptions opts;
  opts.engine = diagnosis::DiagnosisEngine::kCentralQsq;
  auto result = diagnosis::DiagnosePattern(net, automata, opts);
  DQSQ_CHECK_OK(result.status());
  std::cout << title << ": " << result->explanations.size()
            << " matching configuration(s)\n";
  for (const auto& e : result->explanations) {
    std::cout << "  {";
    for (size_t i = 0; i < e.events.size(); ++i) {
      if (i > 0) std::cout << ", ";
      // Print just the transition of each event.
      const std::string& term = e.events[i];
      size_t start = term.find("tr_") + 3;
      std::cout << term.substr(start, term.find_first_of(",)", start) - start);
    }
    std::cout << "}\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  // A cyclic single-peer process: a -> b -> c -> a -> ... Its unfolding is
  // infinite; patterns keep the demanded fragment finite.
  petri::PetriNet cycle = petri::MakeCycleNet();
  std::cout << "Process:\n" << cycle.ToString() << "\n";

  {
    std::map<std::string, AlarmAutomaton> automata;
    automata["p"] = diagnosis::StarPatternAutomaton("a", "b", "c");
    Show("Pattern a.b*.c (the paper's alpha.beta*.alpha shape)", cycle,
         automata);
  }
  {
    std::map<std::string, AlarmAutomaton> automata;
    automata["p"] =
        diagnosis::ForbiddenSubsequenceAutomaton({"a", "b", "c"}, {"b", "c"},
                                                 4);
    Show("Runs of length <= 4 NOT containing the pattern 'b c'", cycle,
         automata);
  }
  {
    petri::PetriNet paper = petri::MakePaperNet();
    std::map<std::string, AlarmAutomaton> automata;
    automata["p2"] = diagnosis::AnyOrderAutomaton({"a", "b", "c"}, 2);
    Show("Paper net: any two alarms from peer p2 (p1 silent)", paper,
         automata);
  }
  return 0;
}
