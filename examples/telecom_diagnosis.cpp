// A telecom-flavored scenario: a ring of network elements, each a local
// state machine (ok -> degraded -> failed -> ok after repair), where
// failures propagate to the downstream neighbor through a shared place.
// The supervisor receives an asynchronously interleaved alarm sequence and
// reconstructs what actually happened — including the causal chain of the
// cascade, which no per-element log can show.
#include <iostream>

#include "common/rng.h"
#include "diagnosis/diagnoser.h"
#include "petri/alarm.h"
#include "petri/builder.h"

using namespace dqsq;

namespace {

petri::PetriNet MakeRing(int elements) {
  petri::PetriNetBuilder b;
  for (int e = 0; e < elements; ++e) {
    std::string peer = "ne" + std::to_string(e);
    b.AddPeer(peer);
  }
  for (int e = 0; e < elements; ++e) {
    std::string peer = "ne" + std::to_string(e);
    std::string id = std::to_string(e);
    b.AddPlace("ok" + id, peer, /*marked=*/true);
    b.AddPlace("degraded" + id, peer);
    b.AddPlace("failed" + id, peer);
    // A "stress token" the element emits toward its neighbor when it
    // fails; consumed by the neighbor's degradation.
    b.AddPlace("stress" + id, peer);
    // One-shot fuse: each element can fail at most once per scenario,
    // keeping the net safe (the stress place is 1-bounded).
    b.AddPlace("fuse" + id, peer, /*marked=*/true);
  }
  for (int e = 0; e < elements; ++e) {
    std::string peer = "ne" + std::to_string(e);
    std::string id = std::to_string(e);
    std::string next = std::to_string((e + 1) % elements);
    // Spontaneous degradation.
    b.AddTransition("degrade" + id, peer, "minor", {"ok" + id},
                    {"degraded" + id});
    // Degraded elements fail, stressing the downstream neighbor.
    b.AddTransition("fail" + id, peer, "critical",
                    {"degraded" + id, "fuse" + id},
                    {"failed" + id, "stress" + id});
    // The neighbor degrades under stress (cross-peer interaction).
    b.AddTransition("cascade" + next, "ne" + next, "minor",
                    {"ok" + next, "stress" + id}, {"degraded" + next});
    // Repair.
    b.AddTransition("repair" + id, peer, "clear", {"failed" + id},
                    {"ok" + id});
  }
  auto net = b.Build();
  DQSQ_CHECK_OK(net.status());
  return *std::move(net);
}

}  // namespace

int main() {
  petri::PetriNet net = MakeRing(3);
  std::cout << "Telecom ring (3 network elements):\n"
            << net.ToString() << "\n";

  // Ground truth: element 0 degrades and fails, the cascade degrades
  // element 1.
  Rng rng(2026);
  auto run = petri::GenerateRun(net, 4, rng);
  DQSQ_CHECK_OK(run.status());
  std::cout << "Ground-truth run:";
  for (auto t : run->firing_sequence) {
    std::cout << " " << net.transition(t).name;
  }
  std::cout << "\nSupervisor observes: "
            << petri::AlarmSequenceToString(run->observation) << "\n\n";

  for (auto engine : {diagnosis::DiagnosisEngine::kCentralQsq,
                      diagnosis::DiagnosisEngine::kBfhj,
                      diagnosis::DiagnosisEngine::kDistQsq}) {
    diagnosis::DiagnosisOptions opts;
    opts.engine = engine;
    auto result = diagnosis::Diagnose(net, run->observation, opts);
    DQSQ_CHECK_OK(result.status());
    std::cout << diagnosis::EngineName(engine) << ": "
              << result->explanations.size() << " explanation(s)";
    if (engine == diagnosis::DiagnosisEngine::kDistQsq) {
      std::cout << " — " << result->messages << " messages, "
                << result->tuples_shipped << " tuples shipped";
    } else {
      std::cout << " — materialized " << result->trans_facts << " events";
    }
    std::cout << "\n";
    for (const auto& e : result->explanations) {
      std::cout << "  candidate scenario:\n";
      for (const std::string& ev : e.events) {
        std::cout << "    " << ev << "\n";
      }
    }
    std::cout << "\n";
  }
  std::cout
      << "The engines agree on the candidate scenarios. Where several\n"
         "remain, the observation is genuinely ambiguous: the Skolem\n"
         "terms show whether element 0 degraded on its own or was\n"
         "degraded by the cascade from its failed neighbor — causal\n"
         "information no per-element log contains.\n";
  return 0;
}
