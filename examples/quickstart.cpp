// Quickstart: the paper's running example end to end.
//
// Builds the Figure 1 Petri net, shows its unfolding (Figure 2), and
// diagnoses the alarm sequences discussed in §2 with every engine — the
// dedicated BFHJ algorithm, the exhaustive reference, and the dDatalog
// program evaluated bottom-up, with QSQ, and with distributed QSQ.
#include <iostream>

#include "diagnosis/diagnoser.h"
#include "petri/examples.h"
#include "petri/unfolding.h"

using namespace dqsq;

namespace {

void DiagnoseAndPrint(const petri::PetriNet& net,
                      const petri::AlarmSequence& alarms) {
  std::cout << "--- observation " << petri::AlarmSequenceToString(alarms)
            << "\n";
  for (auto engine : {diagnosis::DiagnosisEngine::kReference,
                      diagnosis::DiagnosisEngine::kBfhj,
                      diagnosis::DiagnosisEngine::kCentralQsq,
                      diagnosis::DiagnosisEngine::kDistQsq}) {
    diagnosis::DiagnosisOptions opts;
    opts.engine = engine;
    auto result = diagnosis::Diagnose(net, alarms, opts);
    if (!result.ok()) {
      std::cout << "  " << diagnosis::EngineName(engine) << ": "
                << result.status().ToString() << "\n";
      continue;
    }
    std::cout << "  " << diagnosis::EngineName(engine) << ": "
              << result->explanations.size() << " explanation(s)";
    if (engine == diagnosis::DiagnosisEngine::kCentralQsq) {
      std::cout << " [materialized " << result->trans_facts << " events, "
                << result->places_facts << " conditions]";
    }
    std::cout << "\n";
    for (const auto& e : result->explanations) {
      for (const std::string& ev : e.events) std::cout << "      " << ev << "\n";
      if (e.events.empty()) std::cout << "      (empty run)\n";
      std::cout << "      --\n";
    }
  }
}

}  // namespace

int main() {
  petri::PetriNet net = petri::MakePaperNet();
  std::cout << "The paper's Figure 1 net:\n" << net.ToString() << "\n";

  auto unfolding = petri::Unfolding::Build(net, petri::UnfoldOptions{});
  DQSQ_CHECK_OK(unfolding.status());
  std::cout << "Its (finite) unfolding, cf. Figure 2:\n"
            << unfolding->ToString() << "\n";

  // §2: explained by the shaded configuration {i, ii, iii}.
  DiagnoseAndPrint(net, petri::MakeAlarms({{"b", "p1"},
                                           {"a", "p2"},
                                           {"c", "p1"}}));
  // Same configuration, different interleaving.
  DiagnoseAndPrint(net, petri::MakeAlarms({{"b", "p1"},
                                           {"c", "p1"},
                                           {"a", "p2"}}));
  // Contradicts p1's emission order: no explanation.
  DiagnoseAndPrint(net, petri::MakeAlarms({{"c", "p1"},
                                           {"b", "p1"},
                                           {"a", "p2"}}));
  return 0;
}
