file(REMOVE_RECURSE
  "CMakeFiles/telecom_diagnosis.dir/telecom_diagnosis.cpp.o"
  "CMakeFiles/telecom_diagnosis.dir/telecom_diagnosis.cpp.o.d"
  "telecom_diagnosis"
  "telecom_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telecom_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
