# Empty compiler generated dependencies file for telecom_diagnosis.
# This may be replaced when dependencies are built.
