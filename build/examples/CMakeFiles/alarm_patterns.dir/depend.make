# Empty dependencies file for alarm_patterns.
# This may be replaced when dependencies are built.
