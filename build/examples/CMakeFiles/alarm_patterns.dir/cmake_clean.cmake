file(REMOVE_RECURSE
  "CMakeFiles/alarm_patterns.dir/alarm_patterns.cpp.o"
  "CMakeFiles/alarm_patterns.dir/alarm_patterns.cpp.o.d"
  "alarm_patterns"
  "alarm_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alarm_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
