# Empty compiler generated dependencies file for bfhj_test.
# This may be replaced when dependencies are built.
