file(REMOVE_RECURSE
  "CMakeFiles/bfhj_test.dir/petri/bfhj_test.cc.o"
  "CMakeFiles/bfhj_test.dir/petri/bfhj_test.cc.o.d"
  "bfhj_test"
  "bfhj_test.pdb"
  "bfhj_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfhj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
