file(REMOVE_RECURSE
  "CMakeFiles/diagnoser_test.dir/diagnosis/diagnoser_test.cc.o"
  "CMakeFiles/diagnoser_test.dir/diagnosis/diagnoser_test.cc.o.d"
  "diagnoser_test"
  "diagnoser_test.pdb"
  "diagnoser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnoser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
