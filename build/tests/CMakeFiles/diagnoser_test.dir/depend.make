# Empty dependencies file for diagnoser_test.
# This may be replaced when dependencies are built.
