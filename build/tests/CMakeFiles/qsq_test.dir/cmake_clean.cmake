file(REMOVE_RECURSE
  "CMakeFiles/qsq_test.dir/datalog/qsq_test.cc.o"
  "CMakeFiles/qsq_test.dir/datalog/qsq_test.cc.o.d"
  "qsq_test"
  "qsq_test.pdb"
  "qsq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
