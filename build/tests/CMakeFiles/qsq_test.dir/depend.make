# Empty dependencies file for qsq_test.
# This may be replaced when dependencies are built.
