file(REMOVE_RECURSE
  "CMakeFiles/dist_eval_test.dir/dist/dist_eval_test.cc.o"
  "CMakeFiles/dist_eval_test.dir/dist/dist_eval_test.cc.o.d"
  "dist_eval_test"
  "dist_eval_test.pdb"
  "dist_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
