# Empty compiler generated dependencies file for dist_eval_test.
# This may be replaced when dependencies are built.
