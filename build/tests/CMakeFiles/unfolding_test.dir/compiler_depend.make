# Empty compiler generated dependencies file for unfolding_test.
# This may be replaced when dependencies are built.
