# Empty compiler generated dependencies file for qsqr_test.
# This may be replaced when dependencies are built.
