file(REMOVE_RECURSE
  "CMakeFiles/qsqr_test.dir/datalog/qsqr_test.cc.o"
  "CMakeFiles/qsqr_test.dir/datalog/qsqr_test.cc.o.d"
  "qsqr_test"
  "qsqr_test.pdb"
  "qsqr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsqr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
