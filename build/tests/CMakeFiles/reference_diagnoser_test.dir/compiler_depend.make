# Empty compiler generated dependencies file for reference_diagnoser_test.
# This may be replaced when dependencies are built.
