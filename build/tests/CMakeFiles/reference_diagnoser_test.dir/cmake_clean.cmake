file(REMOVE_RECURSE
  "CMakeFiles/reference_diagnoser_test.dir/petri/reference_diagnoser_test.cc.o"
  "CMakeFiles/reference_diagnoser_test.dir/petri/reference_diagnoser_test.cc.o.d"
  "reference_diagnoser_test"
  "reference_diagnoser_test.pdb"
  "reference_diagnoser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_diagnoser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
