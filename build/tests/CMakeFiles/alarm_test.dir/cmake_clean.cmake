file(REMOVE_RECURSE
  "CMakeFiles/alarm_test.dir/petri/alarm_test.cc.o"
  "CMakeFiles/alarm_test.dir/petri/alarm_test.cc.o.d"
  "alarm_test"
  "alarm_test.pdb"
  "alarm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alarm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
