# Empty compiler generated dependencies file for alarm_test.
# This may be replaced when dependencies are built.
