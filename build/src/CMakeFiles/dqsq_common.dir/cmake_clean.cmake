file(REMOVE_RECURSE
  "CMakeFiles/dqsq_common.dir/common/rng.cc.o"
  "CMakeFiles/dqsq_common.dir/common/rng.cc.o.d"
  "CMakeFiles/dqsq_common.dir/common/status.cc.o"
  "CMakeFiles/dqsq_common.dir/common/status.cc.o.d"
  "CMakeFiles/dqsq_common.dir/common/symbol_table.cc.o"
  "CMakeFiles/dqsq_common.dir/common/symbol_table.cc.o.d"
  "libdqsq_common.a"
  "libdqsq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqsq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
