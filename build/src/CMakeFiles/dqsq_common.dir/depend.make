# Empty dependencies file for dqsq_common.
# This may be replaced when dependencies are built.
