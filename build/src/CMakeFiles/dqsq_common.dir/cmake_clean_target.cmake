file(REMOVE_RECURSE
  "libdqsq_common.a"
)
