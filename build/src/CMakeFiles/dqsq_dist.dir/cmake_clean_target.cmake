file(REMOVE_RECURSE
  "libdqsq_dist.a"
)
