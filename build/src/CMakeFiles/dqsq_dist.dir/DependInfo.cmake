
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/cluster.cc" "src/CMakeFiles/dqsq_dist.dir/dist/cluster.cc.o" "gcc" "src/CMakeFiles/dqsq_dist.dir/dist/cluster.cc.o.d"
  "/root/repo/src/dist/dnaive.cc" "src/CMakeFiles/dqsq_dist.dir/dist/dnaive.cc.o" "gcc" "src/CMakeFiles/dqsq_dist.dir/dist/dnaive.cc.o.d"
  "/root/repo/src/dist/dqsq.cc" "src/CMakeFiles/dqsq_dist.dir/dist/dqsq.cc.o" "gcc" "src/CMakeFiles/dqsq_dist.dir/dist/dqsq.cc.o.d"
  "/root/repo/src/dist/global.cc" "src/CMakeFiles/dqsq_dist.dir/dist/global.cc.o" "gcc" "src/CMakeFiles/dqsq_dist.dir/dist/global.cc.o.d"
  "/root/repo/src/dist/network.cc" "src/CMakeFiles/dqsq_dist.dir/dist/network.cc.o" "gcc" "src/CMakeFiles/dqsq_dist.dir/dist/network.cc.o.d"
  "/root/repo/src/dist/peer.cc" "src/CMakeFiles/dqsq_dist.dir/dist/peer.cc.o" "gcc" "src/CMakeFiles/dqsq_dist.dir/dist/peer.cc.o.d"
  "/root/repo/src/dist/termination.cc" "src/CMakeFiles/dqsq_dist.dir/dist/termination.cc.o" "gcc" "src/CMakeFiles/dqsq_dist.dir/dist/termination.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dqsq_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dqsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
