file(REMOVE_RECURSE
  "CMakeFiles/dqsq_dist.dir/dist/cluster.cc.o"
  "CMakeFiles/dqsq_dist.dir/dist/cluster.cc.o.d"
  "CMakeFiles/dqsq_dist.dir/dist/dnaive.cc.o"
  "CMakeFiles/dqsq_dist.dir/dist/dnaive.cc.o.d"
  "CMakeFiles/dqsq_dist.dir/dist/dqsq.cc.o"
  "CMakeFiles/dqsq_dist.dir/dist/dqsq.cc.o.d"
  "CMakeFiles/dqsq_dist.dir/dist/global.cc.o"
  "CMakeFiles/dqsq_dist.dir/dist/global.cc.o.d"
  "CMakeFiles/dqsq_dist.dir/dist/network.cc.o"
  "CMakeFiles/dqsq_dist.dir/dist/network.cc.o.d"
  "CMakeFiles/dqsq_dist.dir/dist/peer.cc.o"
  "CMakeFiles/dqsq_dist.dir/dist/peer.cc.o.d"
  "CMakeFiles/dqsq_dist.dir/dist/termination.cc.o"
  "CMakeFiles/dqsq_dist.dir/dist/termination.cc.o.d"
  "libdqsq_dist.a"
  "libdqsq_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqsq_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
