# Empty compiler generated dependencies file for dqsq_dist.
# This may be replaced when dependencies are built.
