
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diagnosis/diagnoser.cc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/diagnoser.cc.o" "gcc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/diagnoser.cc.o.d"
  "/root/repo/src/diagnosis/encoder.cc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/encoder.cc.o" "gcc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/encoder.cc.o.d"
  "/root/repo/src/diagnosis/explanation.cc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/explanation.cc.o" "gcc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/explanation.cc.o.d"
  "/root/repo/src/diagnosis/extensions.cc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/extensions.cc.o" "gcc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/extensions.cc.o.d"
  "/root/repo/src/diagnosis/online.cc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/online.cc.o" "gcc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/online.cc.o.d"
  "/root/repo/src/diagnosis/supervisor.cc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/supervisor.cc.o" "gcc" "src/CMakeFiles/dqsq_diagnosis.dir/diagnosis/supervisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dqsq_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dqsq_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dqsq_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dqsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
