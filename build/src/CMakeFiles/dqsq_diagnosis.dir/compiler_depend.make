# Empty compiler generated dependencies file for dqsq_diagnosis.
# This may be replaced when dependencies are built.
