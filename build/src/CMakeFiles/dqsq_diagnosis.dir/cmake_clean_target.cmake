file(REMOVE_RECURSE
  "libdqsq_diagnosis.a"
)
