file(REMOVE_RECURSE
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/diagnoser.cc.o"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/diagnoser.cc.o.d"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/encoder.cc.o"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/encoder.cc.o.d"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/explanation.cc.o"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/explanation.cc.o.d"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/extensions.cc.o"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/extensions.cc.o.d"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/online.cc.o"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/online.cc.o.d"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/supervisor.cc.o"
  "CMakeFiles/dqsq_diagnosis.dir/diagnosis/supervisor.cc.o.d"
  "libdqsq_diagnosis.a"
  "libdqsq_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqsq_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
