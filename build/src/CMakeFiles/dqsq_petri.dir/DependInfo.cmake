
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/petri/alarm.cc" "src/CMakeFiles/dqsq_petri.dir/petri/alarm.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/alarm.cc.o.d"
  "/root/repo/src/petri/analysis.cc" "src/CMakeFiles/dqsq_petri.dir/petri/analysis.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/analysis.cc.o.d"
  "/root/repo/src/petri/bfhj.cc" "src/CMakeFiles/dqsq_petri.dir/petri/bfhj.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/bfhj.cc.o.d"
  "/root/repo/src/petri/builder.cc" "src/CMakeFiles/dqsq_petri.dir/petri/builder.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/builder.cc.o.d"
  "/root/repo/src/petri/configuration.cc" "src/CMakeFiles/dqsq_petri.dir/petri/configuration.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/configuration.cc.o.d"
  "/root/repo/src/petri/dot.cc" "src/CMakeFiles/dqsq_petri.dir/petri/dot.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/dot.cc.o.d"
  "/root/repo/src/petri/examples.cc" "src/CMakeFiles/dqsq_petri.dir/petri/examples.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/examples.cc.o.d"
  "/root/repo/src/petri/net.cc" "src/CMakeFiles/dqsq_petri.dir/petri/net.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/net.cc.o.d"
  "/root/repo/src/petri/product.cc" "src/CMakeFiles/dqsq_petri.dir/petri/product.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/product.cc.o.d"
  "/root/repo/src/petri/random_net.cc" "src/CMakeFiles/dqsq_petri.dir/petri/random_net.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/random_net.cc.o.d"
  "/root/repo/src/petri/reference_diagnoser.cc" "src/CMakeFiles/dqsq_petri.dir/petri/reference_diagnoser.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/reference_diagnoser.cc.o.d"
  "/root/repo/src/petri/unfolding.cc" "src/CMakeFiles/dqsq_petri.dir/petri/unfolding.cc.o" "gcc" "src/CMakeFiles/dqsq_petri.dir/petri/unfolding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dqsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
