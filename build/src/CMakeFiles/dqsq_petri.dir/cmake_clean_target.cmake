file(REMOVE_RECURSE
  "libdqsq_petri.a"
)
