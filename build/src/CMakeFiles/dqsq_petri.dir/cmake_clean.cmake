file(REMOVE_RECURSE
  "CMakeFiles/dqsq_petri.dir/petri/alarm.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/alarm.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/analysis.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/analysis.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/bfhj.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/bfhj.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/builder.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/builder.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/configuration.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/configuration.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/dot.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/dot.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/examples.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/examples.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/net.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/net.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/product.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/product.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/random_net.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/random_net.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/reference_diagnoser.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/reference_diagnoser.cc.o.d"
  "CMakeFiles/dqsq_petri.dir/petri/unfolding.cc.o"
  "CMakeFiles/dqsq_petri.dir/petri/unfolding.cc.o.d"
  "libdqsq_petri.a"
  "libdqsq_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqsq_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
