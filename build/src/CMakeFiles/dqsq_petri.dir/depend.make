# Empty dependencies file for dqsq_petri.
# This may be replaced when dependencies are built.
