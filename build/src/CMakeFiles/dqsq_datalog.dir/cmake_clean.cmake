file(REMOVE_RECURSE
  "CMakeFiles/dqsq_datalog.dir/datalog/adornment.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/adornment.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/ast.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/ast.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/database.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/database.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/engine.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/engine.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/eval.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/eval.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/magic_rewrite.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/magic_rewrite.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/parser.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/parser.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/pattern.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/pattern.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/qsq_rewrite.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/qsq_rewrite.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/qsqr.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/qsqr.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/relation.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/relation.cc.o.d"
  "CMakeFiles/dqsq_datalog.dir/datalog/term.cc.o"
  "CMakeFiles/dqsq_datalog.dir/datalog/term.cc.o.d"
  "libdqsq_datalog.a"
  "libdqsq_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqsq_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
