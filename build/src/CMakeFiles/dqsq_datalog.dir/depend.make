# Empty dependencies file for dqsq_datalog.
# This may be replaced when dependencies are built.
