
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/adornment.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/adornment.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/adornment.cc.o.d"
  "/root/repo/src/datalog/ast.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/ast.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/ast.cc.o.d"
  "/root/repo/src/datalog/database.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/database.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/database.cc.o.d"
  "/root/repo/src/datalog/engine.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/engine.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/engine.cc.o.d"
  "/root/repo/src/datalog/eval.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/eval.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/eval.cc.o.d"
  "/root/repo/src/datalog/magic_rewrite.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/magic_rewrite.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/magic_rewrite.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/parser.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/parser.cc.o.d"
  "/root/repo/src/datalog/pattern.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/pattern.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/pattern.cc.o.d"
  "/root/repo/src/datalog/qsq_rewrite.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/qsq_rewrite.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/qsq_rewrite.cc.o.d"
  "/root/repo/src/datalog/qsqr.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/qsqr.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/qsqr.cc.o.d"
  "/root/repo/src/datalog/relation.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/relation.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/relation.cc.o.d"
  "/root/repo/src/datalog/term.cc" "src/CMakeFiles/dqsq_datalog.dir/datalog/term.cc.o" "gcc" "src/CMakeFiles/dqsq_datalog.dir/datalog/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dqsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
