file(REMOVE_RECURSE
  "libdqsq_datalog.a"
)
