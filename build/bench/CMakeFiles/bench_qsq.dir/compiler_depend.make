# Empty compiler generated dependencies file for bench_qsq.
# This may be replaced when dependencies are built.
