file(REMOVE_RECURSE
  "CMakeFiles/bench_qsq.dir/bench_qsq.cc.o"
  "CMakeFiles/bench_qsq.dir/bench_qsq.cc.o.d"
  "bench_qsq"
  "bench_qsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
