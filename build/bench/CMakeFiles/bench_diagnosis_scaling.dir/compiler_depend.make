# Empty compiler generated dependencies file for bench_diagnosis_scaling.
# This may be replaced when dependencies are built.
