file(REMOVE_RECURSE
  "CMakeFiles/bench_diagnosis_scaling.dir/bench_diagnosis_scaling.cc.o"
  "CMakeFiles/bench_diagnosis_scaling.dir/bench_diagnosis_scaling.cc.o.d"
  "bench_diagnosis_scaling"
  "bench_diagnosis_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagnosis_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
