file(REMOVE_RECURSE
  "CMakeFiles/bench_unfolding.dir/bench_unfolding.cc.o"
  "CMakeFiles/bench_unfolding.dir/bench_unfolding.cc.o.d"
  "bench_unfolding"
  "bench_unfolding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unfolding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
