// Parameterized property sweep over random telecom-style nets: for each
// seed, generate a net and an observation from a real run, then check the
// full claim ladder — engine agreement (Theorem 3 + 1), Theorem 4
// materialization equality, and ground-truth containment.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "diagnosis/diagnoser.h"
#include "petri/random_net.h"

namespace dqsq::diagnosis {
namespace {

struct Case {
  petri::PetriNet net;
  petri::AlarmSequence observation;
};

Case MakeCase(uint64_t seed) {
  Rng rng(seed);
  petri::RandomNetOptions ropts;
  ropts.num_peers = 2 + seed % 2;
  ropts.places_per_peer = 3;
  ropts.transitions_per_peer = 3;
  ropts.sync_probability = 0.3 + 0.1 * (seed % 3);
  ropts.num_alarm_symbols = 2;
  Case c{petri::MakeRandomNet(ropts, rng), {}};
  auto run = petri::GenerateRun(c.net, 2 + seed % 3, rng);
  DQSQ_CHECK_OK(run.status());
  c.observation = run->observation;
  return c;
}

class DiagnosisPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiagnosisPropertyTest, EnginesAgreeAndContainGroundTruth) {
  Case c = MakeCase(GetParam());
  SCOPED_TRACE(petri::AlarmSequenceToString(c.observation));

  std::vector<Explanation> expected;
  bool first = true;
  for (auto engine :
       {DiagnosisEngine::kReference, DiagnosisEngine::kBfhj,
        DiagnosisEngine::kCentralQsq, DiagnosisEngine::kCentralMagic}) {
    DiagnosisOptions opts;
    opts.engine = engine;
    auto result = Diagnose(c.net, c.observation, opts);
    ASSERT_TRUE(result.ok())
        << EngineName(engine) << ": " << result.status().ToString();
    if (first) {
      expected = result->explanations;
      // The observation came from a real run.
      EXPECT_FALSE(expected.empty());
      first = false;
    } else {
      EXPECT_EQ(result->explanations, expected) << EngineName(engine);
    }
  }
}

TEST_P(DiagnosisPropertyTest, Theorem4ExactMaterialization) {
  Case c = MakeCase(GetParam());
  SCOPED_TRACE(petri::AlarmSequenceToString(c.observation));
  DiagnosisOptions qopts, bopts;
  qopts.engine = DiagnosisEngine::kCentralQsq;
  bopts.engine = DiagnosisEngine::kBfhj;
  auto qsq = Diagnose(c.net, c.observation, qopts);
  auto bfhj = Diagnose(c.net, c.observation, bopts);
  ASSERT_TRUE(qsq.ok() && bfhj.ok());
  EXPECT_EQ(qsq->materialized_events, bfhj->materialized_events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagnosisPropertyTest,
                         ::testing::Range<uint64_t>(100, 118));

}  // namespace
}  // namespace dqsq::diagnosis
