#include "diagnosis/extensions.h"

#include <gtest/gtest.h>

#include "diagnosis/diagnoser.h"
#include "petri/examples.h"

namespace dqsq::diagnosis {
namespace {

std::vector<std::vector<std::string>> NamesOf(
    const std::vector<Explanation>& explanations) {
  // Strip the Skolem structure down to sorted transition names for
  // readable assertions.
  std::vector<std::vector<std::string>> out;
  for (const Explanation& e : explanations) {
    std::vector<std::string> names;
    for (const std::string& term : e.events) {
      // "f(tr_<name>,..." -> <name>
      size_t start = term.find("tr_") + 3;
      size_t end = term.find_first_of(",)", start);
      names.push_back(term.substr(start, end - start));
    }
    std::sort(names.begin(), names.end());
    out.push_back(std::move(names));
  }
  std::sort(out.begin(), out.end());
  return out;
}

DiagnosisResult RunPattern(const petri::PetriNet& net,
                           std::map<std::string, AlarmAutomaton> automata,
                           DiagnosisEngine engine) {
  DiagnosisOptions opts;
  opts.engine = engine;
  auto result = DiagnosePattern(net, automata, opts);
  DQSQ_CHECK_OK(result.status());
  return *std::move(result);
}

TEST(ExtensionsTest, StarPatternOnCycleNet) {
  // Cycle a -> b -> c; pattern a.b*.c admits exactly {t_a, t_b, t_c} (the
  // direct "ac" shortcut is not executable) even though the unfolding is
  // infinite.
  petri::PetriNet net = petri::MakeCycleNet();
  std::map<std::string, AlarmAutomaton> automata;
  automata["p"] = StarPatternAutomaton("a", "b", "c");
  DiagnosisResult r =
      RunPattern(net, automata, DiagnosisEngine::kCentralQsq);
  EXPECT_EQ(NamesOf(r.explanations),
            (std::vector<std::vector<std::string>>{{"t_a", "t_b", "t_c"}}));
}

TEST(ExtensionsTest, AnyOrderPatternOnPaperNet) {
  // "Two alarms from p2, any symbols": configurations {ii, iv} (a then c)
  // and {ii, v} (concurrent a and b).
  petri::PetriNet net = petri::MakePaperNet();
  std::map<std::string, AlarmAutomaton> automata;
  automata["p2"] = AnyOrderAutomaton({"a", "b", "c"}, 2);
  DiagnosisResult r =
      RunPattern(net, automata, DiagnosisEngine::kCentralQsq);
  EXPECT_EQ(NamesOf(r.explanations),
            (std::vector<std::vector<std::string>>{{"ii", "iv"},
                                                   {"ii", "v"}}));
}

TEST(ExtensionsTest, PatternEnginesAgree) {
  petri::PetriNet net = petri::MakePaperNet();
  std::map<std::string, AlarmAutomaton> automata;
  automata["p2"] = AnyOrderAutomaton({"a", "b", "c"}, 2);
  auto qsq = RunPattern(net, automata, DiagnosisEngine::kCentralQsq);
  auto magic = RunPattern(net, automata, DiagnosisEngine::kCentralMagic);
  auto dist = RunPattern(net, automata, DiagnosisEngine::kDistQsq);
  EXPECT_EQ(qsq.explanations, magic.explanations);
  EXPECT_EQ(qsq.explanations, dist.explanations);
}

TEST(ExtensionsTest, ForbiddenSubsequenceBlocksConfigurations) {
  petri::PetriNet net = petri::MakeCycleNet();
  // All observations of length <= 3 avoiding contiguous "b": only the
  // empty one and "a".
  std::map<std::string, AlarmAutomaton> automata;
  automata["p"] =
      ForbiddenSubsequenceAutomaton({"a", "b", "c"}, {"b"}, 3);
  DiagnosisResult r =
      RunPattern(net, automata, DiagnosisEngine::kCentralQsq);
  EXPECT_EQ(NamesOf(r.explanations),
            (std::vector<std::vector<std::string>>{{}, {"t_a"}}));
}

TEST(ExtensionsTest, ForbiddenTwoSymbolSubsequence) {
  petri::PetriNet net = petri::MakeCycleNet();
  // Forbid contiguous "bc": length <= 3 observations are "", a, ab, abc;
  // abc contains bc, so three remain.
  std::map<std::string, AlarmAutomaton> automata;
  automata["p"] =
      ForbiddenSubsequenceAutomaton({"a", "b", "c"}, {"b", "c"}, 3);
  DiagnosisResult r =
      RunPattern(net, automata, DiagnosisEngine::kCentralQsq);
  EXPECT_EQ(NamesOf(r.explanations),
            (std::vector<std::vector<std::string>>{
                {}, {"t_a"}, {"t_a", "t_b"}}));
}

TEST(ExtensionsTest, PatternRejectedForNonDatalogEngines) {
  petri::PetriNet net = petri::MakeCycleNet();
  std::map<std::string, AlarmAutomaton> automata;
  automata["p"] = ChainAutomaton({"a"});
  DiagnosisOptions opts;
  opts.engine = DiagnosisEngine::kReference;
  EXPECT_EQ(DiagnosePattern(net, automata, opts).status().code(),
            StatusCode::kUnimplemented);
}

TEST(ExtensionsTest, PatternMatchingChainEqualsSequenceDiagnosis) {
  // Sanity: the chain automaton reduces pattern diagnosis to the base
  // problem.
  petri::PetriNet net = petri::MakePaperNet();
  std::map<std::string, AlarmAutomaton> automata;
  automata["p1"] = ChainAutomaton({"b", "c"});
  automata["p2"] = ChainAutomaton({"a"});
  auto pattern = RunPattern(net, automata, DiagnosisEngine::kCentralQsq);

  DiagnosisOptions opts;
  opts.engine = DiagnosisEngine::kCentralQsq;
  auto sequence = Diagnose(
      net, petri::MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}}), opts);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(pattern.explanations, sequence->explanations);
}

TEST(ExtensionsTest, AutomatonWithoutAcceptingStatesRejected) {
  petri::PetriNet net = petri::MakeCycleNet();
  std::map<std::string, AlarmAutomaton> automata;
  AlarmAutomaton bad;
  bad.num_states = 1;
  automata["p"] = bad;
  DiagnosisOptions opts;
  EXPECT_FALSE(DiagnosePattern(net, automata, opts).ok());
}

}  // namespace
}  // namespace dqsq::diagnosis
