// The E6 correctness story as a property suite: over a 50-seed sweep of
// random nets the twin-plant Datalog verdict (semi-naive AND QSQ) must
// equal the brute-force oracle's, every "not diagnosable" verdict must
// ship a witness that replays through the token game, and the distributed
// engines (sharded and unsharded) must reproduce the central anchor sets.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "diagnosis/diagnosability.h"
#include "petri/net.h"
#include "petri/random_net.h"
#include "petri/verifier.h"

namespace dqsq::diagnosis {
namespace {

using petri::PetriNet;

constexpr uint64_t kNumSeeds = 50;

/// Generator parameters vary with the seed so the sweep crosses the
/// diagnosable/undiagnosable boundary: a third of the seeds draw no
/// faults at all (trivially diagnosable), the rest sweep fault density
/// and hidden-transition density upward.
PetriNet NetForSeed(uint64_t seed) {
  petri::RandomNetOptions options;
  options.num_peers = 2 + static_cast<uint32_t>(seed % 2);
  options.places_per_peer = 3;
  options.transitions_per_peer = 3 + static_cast<uint32_t>(seed % 3);
  options.sync_probability = 0.3;
  options.num_alarm_symbols = 1 + static_cast<uint32_t>(seed % 3);
  options.hidden_probability = (seed % 3 == 0) ? 0.2 : 0.4;
  options.fault_fraction = (seed % 3 == 0)   ? 0.0
                           : (seed % 3 == 1) ? 0.25
                                             : 0.5;
  Rng rng(seed);
  return petri::MakeRandomNet(options, rng);
}

TEST(DiagnosabilityPropertyTest, DatalogVerdictMatchesOracleOver50Seeds) {
  size_t undiagnosable = 0;
  for (uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    PetriNet net = NetForSeed(seed);

    DiagnosabilityOptions options;
    options.engine = DiagnosabilityEngine::kReference;
    auto oracle = CheckDiagnosability(net, options);
    ASSERT_TRUE(oracle.ok()) << "seed " << seed << ": "
                             << oracle.status().ToString();

    options.engine = DiagnosabilityEngine::kCentralSemiNaive;
    auto seminaive = CheckDiagnosability(net, options);
    ASSERT_TRUE(seminaive.ok()) << "seed " << seed << ": "
                                << seminaive.status().ToString();

    options.engine = DiagnosabilityEngine::kCentralQsq;
    auto qsq = CheckDiagnosability(net, options);
    ASSERT_TRUE(qsq.ok()) << "seed " << seed << ": "
                          << qsq.status().ToString();

    EXPECT_EQ(seminaive->diagnosable, oracle->diagnosable) << "seed " << seed;
    EXPECT_EQ(qsq->diagnosable, oracle->diagnosable) << "seed " << seed;
    EXPECT_EQ(seminaive->witness_anchors, qsq->witness_anchors)
        << "seed " << seed;

    if (!oracle->diagnosable) {
      ++undiagnosable;
      // The oracle's translated anchor must be one of the Datalog
      // engines' anchors.
      ASSERT_EQ(oracle->witness_anchors.size(), 1u) << "seed " << seed;
      bool member = false;
      for (const std::string& anchor : seminaive->witness_anchors) {
        if (anchor == oracle->witness_anchors[0]) member = true;
      }
      EXPECT_TRUE(member) << "seed " << seed;

      // Every engine's witness replays to a genuine ambiguous run pair.
      for (const auto* result : {&*oracle, &*seminaive, &*qsq}) {
        ASSERT_TRUE(result->witness.has_value()) << "seed " << seed;
        Status replay = petri::ReplayWitness(net, *result->witness);
        EXPECT_TRUE(replay.ok()) << "seed " << seed << ": "
                                 << replay.ToString();
      }
    } else {
      EXPECT_TRUE(seminaive->witness_anchors.empty()) << "seed " << seed;
    }
  }
  // The sweep must cross the boundary in both directions.
  EXPECT_GE(undiagnosable, 1u);
  EXPECT_LT(undiagnosable, kNumSeeds);
}

TEST(DiagnosabilityPropertyTest, DistributedEnginesMatchCentral) {
  // Every 5th seed of the sweep also runs both distributed engines; the
  // anchor sets must be byte-identical to the central semi-naive run.
  for (uint64_t seed = 5; seed <= kNumSeeds; seed += 5) {
    PetriNet net = NetForSeed(seed);

    DiagnosabilityOptions options;
    options.engine = DiagnosabilityEngine::kCentralSemiNaive;
    auto central = CheckDiagnosability(net, options);
    ASSERT_TRUE(central.ok()) << "seed " << seed;

    for (DiagnosabilityEngine engine :
         {DiagnosabilityEngine::kDistNaive, DiagnosabilityEngine::kDistQsq}) {
      options.engine = engine;
      options.seed = seed;
      auto dist = CheckDiagnosability(net, options);
      ASSERT_TRUE(dist.ok()) << DiagnosabilityEngineName(engine) << " seed "
                             << seed << ": " << dist.status().ToString();
      EXPECT_EQ(dist->diagnosable, central->diagnosable)
          << DiagnosabilityEngineName(engine) << " seed " << seed;
      EXPECT_EQ(dist->witness_anchors, central->witness_anchors)
          << DiagnosabilityEngineName(engine) << " seed " << seed;
      if (!dist->diagnosable) {
        ASSERT_TRUE(dist->witness.has_value());
        EXPECT_TRUE(petri::ReplayWitness(net, *dist->witness).ok());
      }
    }
  }
}

TEST(DiagnosabilityPropertyTest, ShardedRunsMatchUnsharded) {
  // K ∈ {1, 4} worker shards per logical peer must not change a verdict
  // or an anchor set.
  for (uint64_t seed = 10; seed <= kNumSeeds; seed += 10) {
    PetriNet net = NetForSeed(seed);
    for (DiagnosabilityEngine engine :
         {DiagnosabilityEngine::kDistNaive, DiagnosabilityEngine::kDistQsq}) {
      DiagnosabilityOptions options;
      options.engine = engine;
      options.seed = seed;
      options.num_shards = 1;
      auto k1 = CheckDiagnosability(net, options);
      ASSERT_TRUE(k1.ok()) << DiagnosabilityEngineName(engine) << " seed "
                           << seed;
      options.num_shards = 4;
      auto k4 = CheckDiagnosability(net, options);
      ASSERT_TRUE(k4.ok()) << DiagnosabilityEngineName(engine) << " seed "
                           << seed;
      EXPECT_EQ(k1->diagnosable, k4->diagnosable) << "seed " << seed;
      EXPECT_EQ(k1->witness_anchors, k4->witness_anchors) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dqsq::diagnosis
