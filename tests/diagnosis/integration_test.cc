// End-to-end integration: the telecom-ring scenario (the shape the paper's
// introduction motivates) across engines, with ground-truth containment:
// the actually-fired run must always be among the returned explanations.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "diagnosis/diagnoser.h"
#include "petri/builder.h"
#include "petri/reference_diagnoser.h"

namespace dqsq::diagnosis {
namespace {

petri::PetriNet MakeRing(int elements) {
  petri::PetriNetBuilder b;
  for (int e = 0; e < elements; ++e) {
    b.AddPeer("ne" + std::to_string(e));
  }
  for (int e = 0; e < elements; ++e) {
    std::string peer = "ne" + std::to_string(e);
    std::string id = std::to_string(e);
    b.AddPlace("ok" + id, peer, true);
    b.AddPlace("degraded" + id, peer);
    b.AddPlace("failed" + id, peer);
    b.AddPlace("stress" + id, peer);
    b.AddPlace("fuse" + id, peer, true);
  }
  for (int e = 0; e < elements; ++e) {
    std::string peer = "ne" + std::to_string(e);
    std::string id = std::to_string(e);
    std::string next = std::to_string((e + 1) % elements);
    b.AddTransition("degrade" + id, peer, "minor", {"ok" + id},
                    {"degraded" + id});
    b.AddTransition("fail" + id, peer, "critical",
                    {"degraded" + id, "fuse" + id},
                    {"failed" + id, "stress" + id});
    b.AddTransition("cascade" + next, "ne" + next, "minor",
                    {"ok" + next, "stress" + id}, {"degraded" + next});
    b.AddTransition("repair" + id, peer, "clear", {"failed" + id},
                    {"ok" + id});
  }
  auto net = b.Build();
  DQSQ_CHECK_OK(net.status());
  return *std::move(net);
}

// Replays the exact firing sequence on the unfolding to get the canonical
// ground-truth explanation.
Explanation GroundTruth(const petri::PetriNet& net,
                        const std::vector<petri::TransitionId>& run) {
  petri::UnfoldOptions uopts;
  uopts.max_depth = run.size() + 1;
  uopts.max_events = 20000;
  auto u = petri::Unfolding::Build(net, uopts);
  DQSQ_CHECK_OK(u.status());
  std::vector<petri::CondId> cut = u->roots();
  petri::Configuration config;
  for (petri::TransitionId t : run) {
    std::set<petri::CondId> cut_set(cut.begin(), cut.end());
    petri::EventId match = petri::kInvalidId;
    for (petri::EventId e = 0; e < u->num_events(); ++e) {
      if (u->event(e).transition != t) continue;
      bool enabled = true;
      for (petri::CondId c : u->event(e).preset) {
        enabled &= cut_set.contains(c);
      }
      if (enabled) {
        match = e;
        break;
      }
    }
    DQSQ_CHECK_NE(match, petri::kInvalidId);
    std::set<petri::CondId> preset(u->event(match).preset.begin(),
                                   u->event(match).preset.end());
    std::vector<petri::CondId> next_cut;
    for (petri::CondId c : cut) {
      if (!preset.contains(c)) next_cut.push_back(c);
    }
    next_cut.insert(next_cut.end(), u->event(match).postset.begin(),
                    u->event(match).postset.end());
    cut = std::move(next_cut);
    config.push_back(match);
  }
  return FromConfiguration(*u, petri::Canonical(std::move(config)));
}

TEST(IntegrationTest, TelecomRingGroundTruthContainment) {
  petri::PetriNet net = MakeRing(3);
  ASSERT_TRUE(net.CheckSafety(50000).ok());
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    auto run = petri::GenerateRun(net, 4, rng);
    ASSERT_TRUE(run.ok());
    Explanation truth = GroundTruth(net, run->firing_sequence);

    for (auto engine :
         {DiagnosisEngine::kBfhj, DiagnosisEngine::kCentralQsq,
          DiagnosisEngine::kCentralMagic}) {
      DiagnosisOptions opts;
      opts.engine = engine;
      auto result = Diagnose(net, run->observation, opts);
      ASSERT_TRUE(result.ok()) << EngineName(engine) << " seed " << seed;
      bool contains = false;
      for (const Explanation& e : result->explanations) {
        contains |= (e == truth);
      }
      EXPECT_TRUE(contains)
          << EngineName(engine) << " seed " << seed << " missing\n"
          << ExplanationToString(truth);
    }
  }
}

TEST(IntegrationTest, TelecomRingCascadeIsRecovered) {
  // Force the cascade scenario: degrade0, fail0, cascade1, fail1 — the
  // diagnosis must expose the causal chain 0 -> 1 in the Skolem structure.
  petri::PetriNet net = MakeRing(3);
  petri::TransitionId degrade0 = 0;
  // Find transitions by name.
  auto by_name = [&](const std::string& name) {
    for (petri::TransitionId t = 0; t < net.num_transitions(); ++t) {
      if (net.transition(t).name == name) return t;
    }
    ADD_FAILURE() << "no transition " << name;
    return petri::kInvalidId;
  };
  degrade0 = by_name("degrade0");
  petri::TransitionId fail0 = by_name("fail0");
  petri::TransitionId cascade1 = by_name("cascade1");
  petri::TransitionId fail1 = by_name("fail1");

  petri::Marking m = net.initial_marking();
  petri::AlarmSequence observation;
  for (petri::TransitionId t : {degrade0, fail0, cascade1, fail1}) {
    auto next = net.Fire(m, t);
    ASSERT_TRUE(next.ok());
    m = *std::move(next);
    observation.push_back(petri::Alarm{
        net.transition(t).alarm, net.peer_name(net.transition(t).peer)});
  }

  DiagnosisOptions opts;
  opts.engine = DiagnosisEngine::kCentralQsq;
  auto result = Diagnose(net, observation, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->explanations.empty());
  // Some explanation contains a cascade1 event whose preset includes a
  // stress condition produced by fail0 — the causal chain is visible in
  // the term structure.
  bool found = false;
  for (const Explanation& e : result->explanations) {
    for (const std::string& ev : e.events) {
      if (ev.find("tr_cascade1") != std::string::npos &&
          ev.find("f(tr_fail0") != std::string::npos) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dqsq::diagnosis
