#include "diagnosis/service.h"

#include <gtest/gtest.h>

#include "diagnosis/diagnoser.h"
#include "petri/examples.h"

namespace dqsq::diagnosis {
namespace {

std::vector<Explanation> Batch(const petri::PetriNet& net,
                               const petri::AlarmSequence& alarms) {
  DiagnosisOptions opts;
  opts.engine = DiagnosisEngine::kCentralQsq;
  auto result = Diagnose(net, alarms, opts);
  DQSQ_CHECK_OK(result.status());
  return result->explanations;
}

TEST(DiagnosisServiceTest, RegisterOpenObserve) {
  DiagnosisService service;
  petri::PetriNet net = petri::MakePaperNet();
  ASSERT_TRUE(service.RegisterModel("paper", net).ok());
  ASSERT_TRUE(service.OpenSession("plant-1", "paper").ok());

  petri::AlarmSequence prefix;
  for (const petri::Alarm& alarm :
       petri::MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}})) {
    prefix.push_back(alarm);
    auto result = service.Observe("plant-1", alarm);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*result, Batch(net, prefix));
  }
  auto observed = service.NumObserved("plant-1");
  ASSERT_TRUE(observed.ok());
  EXPECT_EQ(*observed, 3u);
}

TEST(DiagnosisServiceTest, RegistryAndSessionErrors) {
  DiagnosisService service;
  petri::PetriNet net = petri::MakePaperNet();
  ASSERT_TRUE(service.RegisterModel("paper", net).ok());
  EXPECT_FALSE(service.RegisterModel("paper", net).ok());   // duplicate
  EXPECT_FALSE(service.OpenSession("s", "nope").ok());      // unknown model
  ASSERT_TRUE(service.OpenSession("s", "paper").ok());
  EXPECT_FALSE(service.OpenSession("s", "paper").ok());     // duplicate
  EXPECT_FALSE(service.Observe("ghost", {"b", "p1"}).ok()); // unknown session
  EXPECT_FALSE(service.CloseSession("ghost").ok());
  ASSERT_TRUE(service.CloseSession("s").ok());
  EXPECT_EQ(service.num_sessions(), 0u);
}

TEST(DiagnosisServiceTest, AdmissionControlRejectsBeyondCap) {
  ServiceOptions opts;
  opts.max_sessions = 2;
  DiagnosisService service(opts);
  petri::PetriNet net = petri::MakePaperNet();
  ASSERT_TRUE(service.RegisterModel("paper", net).ok());
  ASSERT_TRUE(service.OpenSession("s1", "paper").ok());
  ASSERT_TRUE(service.OpenSession("s2", "paper").ok());
  Status rejected = service.OpenSession("s3", "paper");
  EXPECT_FALSE(rejected.ok());
  EXPECT_FALSE(service.has_session("s3"));
  // A closed slot can be re-admitted.
  ASSERT_TRUE(service.CloseSession("s1").ok());
  EXPECT_TRUE(service.OpenSession("s3", "paper").ok());
}

TEST(DiagnosisServiceTest, UnknownPeerAlarmLeavesStateUntouched) {
  DiagnosisService service;
  petri::PetriNet net = petri::MakePaperNet();
  ASSERT_TRUE(service.RegisterModel("paper", net).ok());
  ASSERT_TRUE(service.OpenSession("s", "paper").ok());
  ASSERT_TRUE(service.Observe("s", {"b", "p1"}).ok());

  auto bad = service.Observe("s", {"a", "not-a-peer"});
  EXPECT_FALSE(bad.ok());
  auto observed = service.NumObserved("s");
  ASSERT_TRUE(observed.ok());
  EXPECT_EQ(*observed, 1u);

  // The session keeps answering correctly after the rejected alarm.
  auto next = service.Observe("s", {"a", "p2"});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, Batch(net, petri::MakeAlarms({{"b", "p1"}, {"a", "p2"}})));
}

TEST(DiagnosisServiceTest, BudgetExhaustedObserveRetryIsIdempotent) {
  ServiceOptions opts;
  opts.session_max_facts = 1;
  DiagnosisService service(opts);
  petri::PetriNet net = petri::MakePaperNet();
  ASSERT_TRUE(service.RegisterModel("paper", net).ok());
  ASSERT_TRUE(service.OpenSession("s", "paper").ok());

  EXPECT_FALSE(service.Observe("s", {"b", "p1"}).ok());
  EXPECT_FALSE(service.Observe("s", {"b", "p1"}).ok());  // retry: same error
  auto observed = service.NumObserved("s");
  ASSERT_TRUE(observed.ok());
  EXPECT_EQ(*observed, 0u);

  ASSERT_TRUE(service.SetSessionBudget("s", 5'000'000).ok());
  auto ok = service.Observe("s", {"b", "p1"});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, Batch(net, petri::MakeAlarms({{"b", "p1"}})));
}

TEST(DiagnosisServiceTest, HibernateRestoreRoundTripsByteIdentically) {
  dist::InMemoryDurableStore store;
  ServiceOptions opts;
  opts.store = &store;
  DiagnosisService service(opts);
  petri::PetriNet net = petri::MakePaperNet();
  ASSERT_TRUE(service.RegisterModel("paper", net).ok());
  ASSERT_TRUE(service.OpenSession("plant", "paper").ok());
  ASSERT_TRUE(service.Observe("plant", {"b", "p1"}).ok());
  ASSERT_TRUE(service.Observe("plant", {"a", "p2"}).ok());

  ASSERT_TRUE(service.Hibernate("plant").ok());
  EXPECT_FALSE(service.is_resident("plant"));
  auto image1 = store.Get("diag.session/plant");
  ASSERT_TRUE(image1.has_value());

  // Current() restores the session from the image without evaluating,
  // and re-hibernating must reproduce the image byte for byte.
  auto current = service.Current("plant");
  ASSERT_TRUE(current.ok());
  EXPECT_TRUE(service.is_resident("plant"));
  EXPECT_EQ(*current, Batch(net, petri::MakeAlarms({{"b", "p1"}, {"a", "p2"}})));

  ASSERT_TRUE(service.Hibernate("plant").ok());
  auto image2 = store.Get("diag.session/plant");
  ASSERT_TRUE(image2.has_value());
  EXPECT_EQ(*image1, *image2);

  // The restored session keeps diagnosing correctly.
  auto next = service.Observe("plant", {"c", "p1"});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, Batch(net, petri::MakeAlarms(
                                  {{"b", "p1"}, {"a", "p2"}, {"c", "p1"}})));
}

TEST(DiagnosisServiceTest, ColdSessionsEvictUnderResidencyCap) {
  ServiceOptions opts;
  opts.max_resident_sessions = 1;
  DiagnosisService service(opts);
  petri::PetriNet net = petri::MakePaperNet();
  ASSERT_TRUE(service.RegisterModel("paper", net).ok());
  ASSERT_TRUE(service.OpenSession("s1", "paper").ok());
  ASSERT_TRUE(service.OpenSession("s2", "paper").ok());
  EXPECT_EQ(service.num_resident(), 1u);
  EXPECT_FALSE(service.is_resident("s1"));  // evicted by s2's admission

  // Alternating alarms churn hibernate/restore; answers stay correct.
  petri::AlarmSequence prefix;
  for (const petri::Alarm& alarm :
       petri::MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}})) {
    prefix.push_back(alarm);
    auto r1 = service.Observe("s1", alarm);
    auto r2 = service.Observe("s2", alarm);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    EXPECT_EQ(*r1, Batch(net, prefix));
    EXPECT_EQ(*r2, Batch(net, prefix));
    EXPECT_EQ(service.num_resident(), 1u);
  }
}

TEST(DiagnosisServiceTest, SharedCacheMatchesIsolatedSessions) {
  // Two sessions sharing the model's prefix cache must answer exactly as
  // two fully isolated services; the second stream is served from cache.
  petri::PetriNet net = petri::MakePaperNet(/*with_loop=*/true);
  petri::AlarmSequence alarms = petri::MakeAlarms(
      {{"a", "p2"}, {"b", "p1"}, {"c", "p2"}, {"a", "p2"}});

  DiagnosisService shared;
  ASSERT_TRUE(shared.RegisterModel("m", net).ok());
  ASSERT_TRUE(shared.OpenSession("a", "m").ok());
  ASSERT_TRUE(shared.OpenSession("b", "m").ok());

  DiagnosisService isolated_a, isolated_b;
  ASSERT_TRUE(isolated_a.RegisterModel("m", net).ok());
  ASSERT_TRUE(isolated_b.RegisterModel("m", net).ok());
  ASSERT_TRUE(isolated_a.OpenSession("a", "m").ok());
  ASSERT_TRUE(isolated_b.OpenSession("b", "m").ok());

  for (const petri::Alarm& alarm : alarms) {
    auto sa = shared.Observe("a", alarm);
    auto sb = shared.Observe("b", alarm);
    auto ia = isolated_a.Observe("a", alarm);
    auto ib = isolated_b.Observe("b", alarm);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    ASSERT_TRUE(ia.ok());
    ASSERT_TRUE(ib.ok());
    EXPECT_EQ(*sa, *ia);
    EXPECT_EQ(*sb, *ib);
  }
  // Session b never evaluated: every one of its prefixes was a hit from a.
  const SubqueryCache* cache = shared.cache("m");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->hits(), alarms.size());
  EXPECT_EQ(cache->misses(), alarms.size());
}

TEST(DiagnosisServiceTest, CacheDisabledStillAnswers) {
  ServiceOptions opts;
  opts.cache_bytes = 0;
  DiagnosisService service(opts);
  petri::PetriNet net = petri::MakePaperNet();
  ASSERT_TRUE(service.RegisterModel("m", net).ok());
  ASSERT_TRUE(service.OpenSession("s", "m").ok());
  auto result = service.Observe("s", {"b", "p1"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, Batch(net, petri::MakeAlarms({{"b", "p1"}})));
  EXPECT_EQ(service.cache("m")->entries(), 0u);
}

TEST(DiagnosisServiceTest, UnregisterHibernatesResidentsAndIdenticalNetWakes) {
  DiagnosisService service;
  petri::PetriNet net = petri::MakePaperNet();
  ASSERT_TRUE(service.RegisterModel("paper", net).ok());
  ASSERT_TRUE(service.OpenSession("s1", "paper").ok());
  ASSERT_TRUE(service.OpenSession("s2", "paper").ok());
  ASSERT_TRUE(service.Observe("s1", {"b", "p1"}).ok());
  EXPECT_FALSE(service.UnregisterModel("ghost").ok());

  // Resident diagnosers borrow the model's context: unregistering must
  // hibernate them first, while they stay admitted.
  ASSERT_TRUE(service.UnregisterModel("paper").ok());
  EXPECT_FALSE(service.is_resident("s1"));
  EXPECT_FALSE(service.is_resident("s2"));
  EXPECT_TRUE(service.has_session("s1"));
  EXPECT_EQ(service.cache("paper"), nullptr);

  // With no model registered, waking fails cleanly and is retryable.
  auto gone = service.Observe("s1", {"a", "p2"});
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kFailedPrecondition);

  // A structurally identical re-registration has the same fingerprint, so
  // the hibernated sessions wake and keep diagnosing correctly.
  ASSERT_TRUE(service.RegisterModel("paper", petri::MakePaperNet()).ok());
  auto next = service.Observe("s1", {"a", "p2"});
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(*next, Batch(net, petri::MakeAlarms({{"b", "p1"}, {"a", "p2"}})));
  auto fresh = service.Observe("s2", {"b", "p1"});
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
}

TEST(DiagnosisServiceTest, WakeAgainstReRegisteredDifferentModelFailsCleanly) {
  // Death-adjacent regression: a session hibernated under one plant model
  // must NOT wake against a structurally different net re-registered under
  // the same name — its alarm history would be replayed into the wrong
  // plant. The old behaviour was a process-killing consistency CHECK; now
  // admission fails with FAILED_PRECONDITION and the service stays usable.
  DiagnosisService service;
  ASSERT_TRUE(service.RegisterModel("paper", petri::MakePaperNet()).ok());
  ASSERT_TRUE(service.OpenSession("plant", "paper").ok());
  ASSERT_TRUE(service.Observe("plant", {"b", "p1"}).ok());
  ASSERT_TRUE(service.Hibernate("plant").ok());

  ASSERT_TRUE(service.UnregisterModel("paper").ok());
  petri::PetriNet redeployed = petri::MakePaperNet(/*with_loop=*/true);
  ASSERT_TRUE(service.RegisterModel("paper", redeployed).ok());

  auto woken = service.Observe("plant", {"a", "p2"});
  ASSERT_FALSE(woken.ok());
  EXPECT_EQ(woken.status().code(), StatusCode::kFailedPrecondition);
  auto current = service.Current("plant");
  ASSERT_FALSE(current.ok());
  EXPECT_EQ(current.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(service.is_resident("plant"));
  EXPECT_TRUE(service.has_session("plant"));

  // The rejection is per-session: new sessions of the redeployed model run
  // normally, and the stale session frees its admission slot on close.
  ASSERT_TRUE(service.OpenSession("plant-2", "paper").ok());
  auto fresh = service.Observe("plant-2", {"b", "p1"});
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(*fresh, Batch(redeployed, petri::MakeAlarms({{"b", "p1"}})));
  EXPECT_TRUE(service.CloseSession("plant").ok());
}

TEST(DiagnosisServiceTest, PrefixKeyIsInterleavingInvariant) {
  auto k1 = ObservationPrefixKey(
      petri::MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}}));
  auto k2 = ObservationPrefixKey(
      petri::MakeAlarms({{"b", "p1"}, {"c", "p1"}, {"a", "p2"}}));
  auto k3 = ObservationPrefixKey(
      petri::MakeAlarms({{"c", "p1"}, {"b", "p1"}, {"a", "p2"}}));
  EXPECT_EQ(k1, k2);   // same per-peer subsequences
  EXPECT_NE(k1, k3);   // p1's order differs
}

}  // namespace
}  // namespace dqsq::diagnosis
