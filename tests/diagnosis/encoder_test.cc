#include "diagnosis/encoder.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "datalog/engine.h"
#include "datalog/eval.h"
#include "diagnosis/explanation.h"
#include "petri/examples.h"
#include "petri/random_net.h"
#include "petri/unfolding.h"

namespace dqsq::diagnosis {
namespace {

using petri::PetriNet;
using petri::Unfolding;

// Evaluates the unfolding program bottom-up (optionally depth-bounded) and
// returns the derived event terms, condition terms, and the database.
struct EncodedEval {
  DatalogContext ctx;
  std::unique_ptr<Database> db;
  std::set<std::string> events;
  std::set<std::string> conditions;
  std::vector<uint32_t> arities;

  void Run(const PetriNet& net, uint32_t max_term_depth) {
    auto encoded = EncodeNet(net, ctx);
    DQSQ_CHECK_OK(encoded.status());
    arities = encoded->arities;
    db = std::make_unique<Database>(&ctx);
    EvalOptions opts;
    opts.max_term_depth = max_term_depth;
    opts.max_facts = 2'000'000;
    DQSQ_CHECK_OK(Evaluate(encoded->program, *db, opts).status());
    for (const RelId& rel : db->Relations()) {
      const std::string& name = ctx.PredicateName(rel.pred);
      bool is_trans = name.rfind("utrans", 0) == 0;
      bool is_places = (name == "uplaces");
      if (!is_trans && !is_places) continue;
      const Relation* relation = db->Find(rel);
      for (size_t row = 0; row < relation->size(); ++row) {
        std::string term =
            ctx.arena().ToString(relation->Row(row)[0], ctx.symbols());
        (is_trans ? events : conditions).insert(std::move(term));
      }
    }
  }

  bool Holds(const std::string& pred, const std::string& peer,
             const std::string& arg1, const std::string& arg2) {
    // Looks up a binary fact whose arguments are rendered term strings.
    PredicateId pid;
    if (!ctx.LookupPredicate(pred, &pid)) return false;
    SymbolId psym;
    if (!ctx.symbols().Lookup(peer, &psym)) return false;
    const Relation* rel = db->Find(RelId{pid, psym});
    if (rel == nullptr) return false;
    for (size_t row = 0; row < rel->size(); ++row) {
      auto r = rel->Row(row);
      if (ctx.arena().ToString(r[0], ctx.symbols()) == arg1 &&
          ctx.arena().ToString(r[1], ctx.symbols()) == arg2) {
        return true;
      }
    }
    return false;
  }
};

// Canonical term sets of an explicit unfolding prefix.
void ExplicitTerms(const Unfolding& u, std::set<std::string>* events,
                   std::set<std::string>* conditions) {
  for (petri::EventId e = 0; e < u.num_events(); ++e) {
    events->insert(EventTerm(u, e));
  }
  for (petri::CondId c = 0; c < u.num_conditions(); ++c) {
    const petri::Condition& cond = u.condition(c);
    std::string producer = cond.producer == petri::kInvalidId
                               ? "r"
                               : EventTerm(u, cond.producer);
    conditions->insert("g(" + producer + "," +
                       petri::PlaceConstantName(u.net(), cond.place) + ")");
  }
}

TEST(EncoderTest, PaperNetTheorem2ExactNodeSets) {
  // The paper net's unfolding is finite; the bottom-up fixpoint of the
  // unfolding program must derive exactly its nodes (Theorem 2).
  PetriNet net = petri::MakePaperNet();
  auto u = Unfolding::Build(net, petri::UnfoldOptions{});
  ASSERT_TRUE(u.ok());
  ASSERT_TRUE(u->complete());

  EncodedEval eval;
  eval.Run(net, /*max_term_depth=*/0);  // finite: no bound needed

  std::set<std::string> expected_events, expected_conditions;
  ExplicitTerms(*u, &expected_events, &expected_conditions);
  EXPECT_EQ(eval.events, expected_events);
  EXPECT_EQ(eval.conditions, expected_conditions);
}

TEST(EncoderTest, PaperNetLemma1CausalityAndConflict) {
  PetriNet net = petri::MakePaperNet();
  auto u = Unfolding::Build(net, petri::UnfoldOptions{});
  ASSERT_TRUE(u.ok());
  EncodedEval eval;
  eval.Run(net, 0);

  // Lemma 1: ucausal(x, y) iff y <= x; unotConf(x, y) iff not x # y.
  for (petri::EventId e1 = 0; e1 < u->num_events(); ++e1) {
    for (petri::EventId e2 = 0; e2 < u->num_events(); ++e2) {
      const std::string p1 =
          u->net().peer_name(u->net().transition(u->event(e1).transition).peer);
      std::string t1 = EventTerm(*u, e1);
      std::string t2 = EventTerm(*u, e2);
      EXPECT_EQ(eval.Holds("ucausal", p1, t1, t2),
                u->CausallyPrecedes(e2, e1))
          << t1 << " vs " << t2;
      EXPECT_EQ(eval.Holds("unotConf", p1, t1, t2), !u->InConflict(e1, e2))
          << t1 << " vs " << t2;
    }
  }
}

TEST(EncoderTest, DepthBoundedFixpointOnInfiniteUnfolding) {
  // With the loop the unfolding is infinite; the depth-pruned fixpoint
  // must coincide with the explicit prefix of matching depth.
  PetriNet net = petri::MakePaperNet(/*with_loop=*/true);
  petri::UnfoldOptions uopts;
  uopts.max_depth = 3;
  auto u = Unfolding::Build(net, uopts);
  ASSERT_TRUE(u.ok());

  EncodedEval eval;
  // Event of unfolding depth d has term depth 2d+1; conditions 2d+2.
  eval.Run(net, /*max_term_depth=*/2 * 3 + 1);

  std::set<std::string> expected_events, expected_conditions;
  ExplicitTerms(*u, &expected_events, &expected_conditions);
  EXPECT_EQ(eval.events, expected_events);
}

TEST(EncoderTest, RandomNetsTheorem2Property) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    petri::RandomNetOptions ropts;
    ropts.num_peers = 2 + seed % 2;
    ropts.places_per_peer = 3;
    ropts.transitions_per_peer = 3;
    ropts.sync_probability = 0.4;
    PetriNet net = petri::MakeRandomNet(ropts, rng);

    petri::UnfoldOptions uopts;
    uopts.max_depth = 3;
    uopts.max_events = 2000;
    auto u = Unfolding::Build(net, uopts);
    ASSERT_TRUE(u.ok()) << "seed " << seed;
    if (!u->complete()) continue;

    EncodedEval eval;
    eval.Run(net, 2 * 3 + 1);
    std::set<std::string> expected_events, expected_conditions;
    ExplicitTerms(*u, &expected_events, &expected_conditions);
    EXPECT_EQ(eval.events, expected_events) << "seed " << seed;
  }
}

TEST(EncoderTest, RejectsInvalidNet) {
  PetriNet net;  // no places, no marking
  DatalogContext ctx;
  EXPECT_FALSE(EncodeNet(net, ctx).ok());
}

}  // namespace
}  // namespace dqsq::diagnosis
