#include "diagnosis/online.h"

#include <gtest/gtest.h>

#include "diagnosis/diagnoser.h"
#include "petri/examples.h"

namespace dqsq::diagnosis {
namespace {

std::vector<Explanation> Batch(const petri::PetriNet& net,
                               const petri::AlarmSequence& alarms) {
  DiagnosisOptions opts;
  opts.engine = DiagnosisEngine::kCentralQsq;
  auto result = Diagnose(net, alarms, opts);
  DQSQ_CHECK_OK(result.status());
  return result->explanations;
}

TEST(OnlineDiagnoserTest, MatchesBatchOnEveryPrefix) {
  petri::PetriNet net = petri::MakePaperNet();
  petri::AlarmSequence alarms = petri::MakeAlarms(
      {{"b", "p1"}, {"a", "p2"}, {"c", "p1"}});
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok()) << online.status().ToString();

  // Empty prefix.
  auto current = online->Current();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, Batch(net, {}));

  petri::AlarmSequence prefix;
  for (const petri::Alarm& alarm : alarms) {
    prefix.push_back(alarm);
    auto result = online->Observe(alarm);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*result, Batch(net, prefix))
        << "prefix " << petri::AlarmSequenceToString(prefix);
  }
  EXPECT_EQ(online->num_observed(), 3u);
}

TEST(OnlineDiagnoserTest, PrefixWithNoExplanationThenNothingLater) {
  petri::PetriNet net = petri::MakePaperNet();
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  // (c,p1) first: c needs place 2, never marked initially.
  auto r1 = online->Observe({"c", "p1"});
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty());
  auto r2 = online->Observe({"b", "p1"});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST(OnlineDiagnoserTest, IncrementalStepsReuseMaterialization) {
  // The final step's incremental delta is smaller than what a from-scratch
  // batch run of the same prefix derives in total: the unfolding fragment
  // and cfgp prefixes materialized at earlier steps are reused.
  petri::PetriNet net = petri::MakePaperNet(/*with_loop=*/true);
  petri::AlarmSequence prefix = petri::MakeAlarms(
      {{"a", "p2"}, {"c", "p2"}, {"a", "p2"}});
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  for (const petri::Alarm& alarm : prefix) {
    ASSERT_TRUE(online->Observe(alarm).ok());
  }
  size_t last_delta = online->last_step_new_facts();
  EXPECT_GT(last_delta, 0u);

  DiagnosisOptions opts;
  opts.engine = DiagnosisEngine::kCentralQsq;
  auto fresh = Diagnose(net, prefix, opts);
  ASSERT_TRUE(fresh.ok());
  EXPECT_LT(last_delta, fresh->total_facts);
}

TEST(OnlineDiagnoserTest, UnknownPeerRejected) {
  petri::PetriNet net = petri::MakePaperNet();
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  auto result = online->Observe({"a", "nope"});
  EXPECT_FALSE(result.ok());
}

TEST(OnlineDiagnoserTest, CurrentIsCachedBetweenObserves) {
  petri::PetriNet net = petri::MakePaperNet();
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  ASSERT_TRUE(online->Observe({"b", "p1"}).ok());
  size_t facts = online->total_facts();
  auto again = online->Current();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(online->total_facts(), facts);  // no re-evaluation
}

TEST(OnlineDiagnoserTest, InterleavedPeersMatchBatch) {
  petri::PetriNet net = petri::MakePaperNet(/*with_loop=*/true);
  petri::AlarmSequence alarms = petri::MakeAlarms(
      {{"a", "p2"}, {"b", "p1"}, {"c", "p2"}, {"a", "p2"}});
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  petri::AlarmSequence prefix;
  for (const petri::Alarm& alarm : alarms) {
    prefix.push_back(alarm);
    auto result = online->Observe(alarm);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, Batch(net, prefix))
        << petri::AlarmSequenceToString(prefix);
  }
}

}  // namespace
}  // namespace dqsq::diagnosis
