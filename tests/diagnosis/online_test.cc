#include "diagnosis/online.h"

#include <gtest/gtest.h>

#include "diagnosis/diagnoser.h"
#include "petri/examples.h"

namespace dqsq::diagnosis {
namespace {

std::vector<Explanation> Batch(const petri::PetriNet& net,
                               const petri::AlarmSequence& alarms) {
  DiagnosisOptions opts;
  opts.engine = DiagnosisEngine::kCentralQsq;
  auto result = Diagnose(net, alarms, opts);
  DQSQ_CHECK_OK(result.status());
  return result->explanations;
}

TEST(OnlineDiagnoserTest, MatchesBatchOnEveryPrefix) {
  petri::PetriNet net = petri::MakePaperNet();
  petri::AlarmSequence alarms = petri::MakeAlarms(
      {{"b", "p1"}, {"a", "p2"}, {"c", "p1"}});
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok()) << online.status().ToString();

  // Empty prefix.
  auto current = online->Current();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, Batch(net, {}));

  petri::AlarmSequence prefix;
  for (const petri::Alarm& alarm : alarms) {
    prefix.push_back(alarm);
    auto result = online->Observe(alarm);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(*result, Batch(net, prefix))
        << "prefix " << petri::AlarmSequenceToString(prefix);
  }
  EXPECT_EQ(online->num_observed(), 3u);
}

TEST(OnlineDiagnoserTest, PrefixWithNoExplanationThenNothingLater) {
  petri::PetriNet net = petri::MakePaperNet();
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  // (c,p1) first: c needs place 2, never marked initially.
  auto r1 = online->Observe({"c", "p1"});
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty());
  auto r2 = online->Observe({"b", "p1"});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST(OnlineDiagnoserTest, IncrementalStepsReuseMaterialization) {
  // The final step's incremental delta is smaller than what a from-scratch
  // batch run of the same prefix derives in total: the unfolding fragment
  // and cfgp prefixes materialized at earlier steps are reused.
  petri::PetriNet net = petri::MakePaperNet(/*with_loop=*/true);
  petri::AlarmSequence prefix = petri::MakeAlarms(
      {{"a", "p2"}, {"c", "p2"}, {"a", "p2"}});
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  for (const petri::Alarm& alarm : prefix) {
    ASSERT_TRUE(online->Observe(alarm).ok());
  }
  size_t last_delta = online->last_step_new_facts();
  EXPECT_GT(last_delta, 0u);

  DiagnosisOptions opts;
  opts.engine = DiagnosisEngine::kCentralQsq;
  auto fresh = Diagnose(net, prefix, opts);
  ASSERT_TRUE(fresh.ok());
  EXPECT_LT(last_delta, fresh->total_facts);
}

TEST(OnlineDiagnoserTest, UnknownPeerRejected) {
  petri::PetriNet net = petri::MakePaperNet();
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  auto result = online->Observe({"a", "nope"});
  EXPECT_FALSE(result.ok());
}

TEST(OnlineDiagnoserTest, CurrentIsCachedBetweenObserves) {
  petri::PetriNet net = petri::MakePaperNet();
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  ASSERT_TRUE(online->Observe({"b", "p1"}).ok());
  size_t facts = online->total_facts();
  auto again = online->Current();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(online->total_facts(), facts);  // no re-evaluation
}

TEST(OnlineDiagnoserTest, InterleavedPeersMatchBatch) {
  petri::PetriNet net = petri::MakePaperNet(/*with_loop=*/true);
  petri::AlarmSequence alarms = petri::MakeAlarms(
      {{"a", "p2"}, {"b", "p1"}, {"c", "p2"}, {"a", "p2"}});
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  petri::AlarmSequence prefix;
  for (const petri::Alarm& alarm : alarms) {
    prefix.push_back(alarm);
    auto result = online->Observe(alarm);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, Batch(net, prefix))
        << petri::AlarmSequenceToString(prefix);
  }
}

TEST(OnlineDiagnoserTest, ProgramKeepsAtMostOneQueryRule) {
  // Regression pin for the query-rule pruning fix: the program holds the
  // base rules, one chain-edge fact per observed alarm and at most one
  // versioned query rule — superseded q_<i> rules must not accumulate.
  petri::PetriNet net = petri::MakePaperNet();
  auto online = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(online.ok());
  const size_t base = online->base_rules();
  EXPECT_EQ(online->num_rules(), base);

  // Current() on the empty prefix emits q_0 exactly once.
  ASSERT_TRUE(online->Current().ok());
  EXPECT_EQ(online->num_rules(), base + 1);
  ASSERT_TRUE(online->Current().ok());
  EXPECT_EQ(online->num_rules(), base + 1);

  petri::AlarmSequence alarms =
      petri::MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}});
  size_t observed = 0;
  for (const petri::Alarm& alarm : alarms) {
    ASSERT_TRUE(online->Observe(alarm).ok());
    ++observed;
    EXPECT_EQ(online->num_rules(), base + observed + 1)
        << "after " << observed << " alarms";
  }
}

TEST(OnlineDiagnoserTest, FailedObserveRollsBackAndRetrySucceeds) {
  // Regression for the transactional-Observe fix: a budget-failed Observe
  // must leave no trace (no chain edge, no counter bump, no query rule),
  // and retrying the same alarm after raising the budget must succeed with
  // the same answers a fresh diagnoser computes.
  petri::PetriNet net = petri::MakePaperNet();
  OnlineOptions tiny;
  tiny.max_facts = 1;
  auto online = OnlineDiagnoser::Create(net, tiny);
  ASSERT_TRUE(online.ok());
  const size_t base = online->num_rules();

  auto fail1 = online->Observe({"b", "p1"});
  ASSERT_FALSE(fail1.ok());
  EXPECT_EQ(online->num_observed(), 0u);
  EXPECT_EQ(online->num_rules(), base);

  // The retry is idempotent: same failure, still no duplicated edge.
  auto fail2 = online->Observe({"b", "p1"});
  ASSERT_FALSE(fail2.ok());
  EXPECT_EQ(online->num_observed(), 0u);
  EXPECT_EQ(online->num_rules(), base);

  online->set_max_facts(5'000'000);
  auto ok = online->Observe({"b", "p1"});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, Batch(net, petri::MakeAlarms({{"b", "p1"}})));
  EXPECT_EQ(online->num_observed(), 1u);
  EXPECT_EQ(online->num_rules(), base + 1 + 1);  // one edge + one query rule
}

TEST(OnlineDiagnoserTest, FailedCurrentRetryDoesNotDuplicateQueryRules) {
  petri::PetriNet net = petri::MakePaperNet();
  OnlineOptions tiny;
  tiny.max_facts = 1;
  auto online = OnlineDiagnoser::Create(net, tiny);
  ASSERT_TRUE(online.ok());
  const size_t base = online->num_rules();

  ASSERT_FALSE(online->Current().ok());
  EXPECT_EQ(online->num_rules(), base);
  ASSERT_FALSE(online->Current().ok());
  EXPECT_EQ(online->num_rules(), base);

  online->set_max_facts(5'000'000);
  auto ok = online->Current();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, Batch(net, {}));
  EXPECT_EQ(online->num_rules(), base + 1);
}

TEST(OnlineDiagnoserTest, SharedModelSessionsMatchIsolatedOnes) {
  // Two sessions over one OnlineModel share the term arena and symbol
  // table; their answers must equal a session with a private context.
  petri::PetriNet net = petri::MakePaperNet(/*with_loop=*/true);
  auto model = OnlineModel::Build(net);
  ASSERT_TRUE(model.ok());
  OnlineDiagnoser a = OnlineDiagnoser::CreateShared(*model, OnlineOptions{});
  OnlineDiagnoser b = OnlineDiagnoser::CreateShared(*model, OnlineOptions{});
  auto isolated = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(isolated.ok());

  petri::AlarmSequence alarms =
      petri::MakeAlarms({{"a", "p2"}, {"b", "p1"}, {"c", "p2"}});
  for (const petri::Alarm& alarm : alarms) {
    auto ra = a.Observe(alarm);
    auto rb = b.Observe(alarm);
    auto ri = isolated->Observe(alarm);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    ASSERT_TRUE(ri.ok());
    EXPECT_EQ(*ra, *ri);
    EXPECT_EQ(*rb, *ri);
  }
}

TEST(OnlineDiagnoserTest, ObserveCachedMatchesEvaluatedAnswers) {
  // ObserveCached advances the session without evaluating; a later cache
  // miss (here: Observe of a fresh alarm) must still produce the same
  // answers as a session that evaluated every step.
  petri::PetriNet net = petri::MakePaperNet();
  auto evaluated = OnlineDiagnoser::Create(net, OnlineOptions{});
  auto skipping = OnlineDiagnoser::Create(net, OnlineOptions{});
  ASSERT_TRUE(evaluated.ok());
  ASSERT_TRUE(skipping.ok());

  auto step1 = evaluated->Observe({"b", "p1"});
  ASSERT_TRUE(step1.ok());
  ASSERT_TRUE(skipping->ObserveCached({"b", "p1"}, *step1).ok());
  auto cached = skipping->Current();
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(*cached, *step1);
  EXPECT_EQ(skipping->last_step_new_facts(), 0u);  // nothing evaluated

  auto step2 = evaluated->Observe({"a", "p2"});
  auto fresh2 = skipping->Observe({"a", "p2"});
  ASSERT_TRUE(step2.ok());
  ASSERT_TRUE(fresh2.ok());
  EXPECT_EQ(*fresh2, *step2);
}

}  // namespace
}  // namespace dqsq::diagnosis
