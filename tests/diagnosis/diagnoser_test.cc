#include "diagnosis/diagnoser.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "petri/examples.h"
#include "petri/random_net.h"

namespace dqsq::diagnosis {
namespace {

using petri::MakeAlarms;
using petri::PetriNet;

const std::vector<DiagnosisEngine> kAllEngines = {
    DiagnosisEngine::kReference,        DiagnosisEngine::kBfhj,
    DiagnosisEngine::kCentralSemiNaive, DiagnosisEngine::kCentralQsq,
    DiagnosisEngine::kCentralMagic,     DiagnosisEngine::kDistQsq,
};

DiagnosisResult RunDiag(const PetriNet& net, const petri::AlarmSequence& alarms,
                    DiagnosisEngine engine, uint32_t max_hidden = 0) {
  DiagnosisOptions opts;
  opts.engine = engine;
  opts.max_hidden = max_hidden;
  auto result = Diagnose(net, alarms, opts);
  DQSQ_CHECK_OK(result.status());
  return *std::move(result);
}

TEST(DiagnoserTest, PaperExampleAllEnginesAgree) {
  // Paper §2: (b,p1)(a,p2)(c,p1) is explained exactly by {i, ii, iii}.
  PetriNet net = petri::MakePaperNet();
  petri::AlarmSequence alarms =
      MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}});
  std::vector<Explanation> expected;
  for (DiagnosisEngine engine : kAllEngines) {
    DiagnosisResult r = RunDiag(net, alarms, engine);
    ASSERT_EQ(r.explanations.size(), 1u) << EngineName(engine);
    EXPECT_EQ(r.explanations[0].events.size(), 3u) << EngineName(engine);
    if (expected.empty()) {
      expected = r.explanations;
    } else {
      EXPECT_EQ(r.explanations, expected) << EngineName(engine);
    }
  }
  // The explanation's canonical events are the paper's shaded nodes.
  EXPECT_EQ(expected[0].events,
            (std::vector<std::string>{
                "f(tr_i,g(r,pl_1),g(r,pl_7))",
                "f(tr_ii,g(r,pl_4))",
                "f(tr_iii,g(f(tr_i,g(r,pl_1),g(r,pl_7)),pl_2))",
            }));
}

TEST(DiagnoserTest, PaperReorderedSequenceSameExplanation) {
  PetriNet net = petri::MakePaperNet();
  auto a1 = RunDiag(net, MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}}),
                DiagnosisEngine::kCentralQsq);
  auto a2 = RunDiag(net, MakeAlarms({{"b", "p1"}, {"c", "p1"}, {"a", "p2"}}),
                DiagnosisEngine::kCentralQsq);
  EXPECT_EQ(a1.explanations, a2.explanations);
}

TEST(DiagnoserTest, PaperContradictingOrderRejectedByAllEngines) {
  PetriNet net = petri::MakePaperNet();
  petri::AlarmSequence alarms =
      MakeAlarms({{"c", "p1"}, {"b", "p1"}, {"a", "p2"}});
  for (DiagnosisEngine engine : kAllEngines) {
    DiagnosisResult r = RunDiag(net, alarms, engine);
    EXPECT_TRUE(r.explanations.empty()) << EngineName(engine);
  }
}

TEST(DiagnoserTest, EmptyObservationHasEmptyExplanation) {
  PetriNet net = petri::MakePaperNet();
  for (DiagnosisEngine engine : kAllEngines) {
    DiagnosisResult r = RunDiag(net, {}, engine);
    ASSERT_EQ(r.explanations.size(), 1u) << EngineName(engine);
    EXPECT_TRUE(r.explanations[0].events.empty()) << EngineName(engine);
  }
}

TEST(DiagnoserTest, Theorem4QsqMaterializesTheBfhjPrefix) {
  // The headline claim: generic dQSQ/QSQ materializes exactly the nodes of
  // the BFHJ product-unfolding projection.
  PetriNet net = petri::MakePaperNet();
  const std::vector<petri::AlarmSequence> observations = {
      MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}}),
      MakeAlarms({{"a", "p2"}, {"c", "p2"}}),
      MakeAlarms({{"b", "p2"}}),
  };
  for (const auto& alarms : observations) {
    DiagnosisResult qsq = RunDiag(net, alarms, DiagnosisEngine::kCentralQsq);
    DiagnosisResult bfhj = RunDiag(net, alarms, DiagnosisEngine::kBfhj);
    EXPECT_EQ(qsq.materialized_events, bfhj.materialized_events)
        << petri::AlarmSequenceToString(alarms);
  }
}

TEST(DiagnoserTest, QsqMaterializesLessThanTheFullUnfolding) {
  // With the loop the unfolding is infinite; QSQ only touches the alarm-
  // compatible fragment while the reference must build a depth prefix.
  PetriNet net = petri::MakePaperNet(/*with_loop=*/true);
  petri::AlarmSequence alarms = MakeAlarms({{"b", "p1"}, {"a", "p2"}});
  DiagnosisResult qsq = RunDiag(net, alarms, DiagnosisEngine::kCentralQsq);
  DiagnosisResult ref = RunDiag(net, alarms, DiagnosisEngine::kReference);
  DiagnosisResult naive =
      RunDiag(net, alarms, DiagnosisEngine::kCentralSemiNaive);
  EXPECT_EQ(qsq.explanations, ref.explanations);
  EXPECT_EQ(naive.explanations, ref.explanations);
  // The depth-bounded bottom-up evaluation materializes the whole prefix
  // (including the iv/vi loop, irrelevant to these alarms); QSQ only the
  // demanded fragment.
  EXPECT_LT(qsq.trans_facts, naive.trans_facts);
}

TEST(DiagnoserTest, RandomNetsAllEnginesAgreeOnRealObservations) {
  size_t checked = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    petri::RandomNetOptions ropts;
    ropts.num_peers = 2;
    ropts.places_per_peer = 3;
    ropts.transitions_per_peer = 3;
    ropts.sync_probability = 0.35;
    ropts.num_alarm_symbols = 2;
    PetriNet net = petri::MakeRandomNet(ropts, rng);
    auto run = petri::GenerateRun(net, 3, rng);
    ASSERT_TRUE(run.ok());
    if (run->observation.size() > 3) continue;

    std::vector<Explanation> expected;
    bool first = true;
    for (DiagnosisEngine engine : kAllEngines) {
      DiagnosisResult r = RunDiag(net, run->observation, engine);
      if (first) {
        expected = r.explanations;
        // The observation came from a real run: at least one explanation.
        EXPECT_FALSE(expected.empty())
            << "seed " << seed << " " << EngineName(engine);
        first = false;
      } else {
        EXPECT_EQ(r.explanations, expected)
            << "seed " << seed << " " << EngineName(engine);
      }
    }
    ++checked;
  }
  EXPECT_GE(checked, 5u);
}

TEST(DiagnoserTest, RandomNetsTheorem4Property) {
  for (uint64_t seed = 20; seed <= 26; ++seed) {
    Rng rng(seed);
    petri::RandomNetOptions ropts;
    ropts.num_peers = 2;
    ropts.places_per_peer = 3;
    ropts.transitions_per_peer = 3;
    ropts.sync_probability = 0.35;
    ropts.num_alarm_symbols = 2;
    PetriNet net = petri::MakeRandomNet(ropts, rng);
    auto run = petri::GenerateRun(net, 3, rng);
    ASSERT_TRUE(run.ok());
    DiagnosisResult qsq = RunDiag(net, run->observation,
                              DiagnosisEngine::kCentralQsq);
    DiagnosisResult bfhj = RunDiag(net, run->observation, DiagnosisEngine::kBfhj);
    EXPECT_EQ(qsq.materialized_events, bfhj.materialized_events)
        << "seed " << seed;
  }
}

TEST(DiagnoserTest, HiddenTransitionsAcrossEngines) {
  // s0 -[a]-> s1 -[hidden]-> s2 -[b]-> s3: (a,p)(b,p) needs the hidden hop.
  PetriNet net;
  petri::PeerIndex p = net.AddPeer("p");
  petri::PlaceId s0 = net.AddPlace("s0", p);
  petri::PlaceId s1 = net.AddPlace("s1", p);
  petri::PlaceId s2 = net.AddPlace("s2", p);
  petri::PlaceId s3 = net.AddPlace("s3", p);
  net.AddTransition("ta", p, "a", {s0}, {s1}, true);
  net.AddTransition("th", p, "h", {s1}, {s2}, false);
  net.AddTransition("tb", p, "b", {s2}, {s3}, true);
  net.SetInitialMarking({s0});

  petri::AlarmSequence alarms = MakeAlarms({{"a", "p"}, {"b", "p"}});
  for (DiagnosisEngine engine : kAllEngines) {
    // Without hidden support: nothing.
    DiagnosisResult strict = RunDiag(net, alarms, engine, 0);
    EXPECT_TRUE(strict.explanations.empty()) << EngineName(engine);
    // With it: the three-event chain.
    DiagnosisResult hidden = RunDiag(net, alarms, engine, 2);
    ASSERT_EQ(hidden.explanations.size(), 1u) << EngineName(engine);
    EXPECT_EQ(hidden.explanations[0].events.size(), 3u) << EngineName(engine);
  }
}

TEST(DiagnoserTest, DistQsqReportsNetworkActivity) {
  PetriNet net = petri::MakePaperNet();
  DiagnosisResult r =
      RunDiag(net, MakeAlarms({{"b", "p1"}, {"a", "p2"}, {"c", "p1"}}),
          DiagnosisEngine::kDistQsq);
  EXPECT_GT(r.messages, 0u);
  EXPECT_GT(r.total_facts, 0u);
}

TEST(DiagnoserTest, UnexplainableSymbolsYieldNothing) {
  PetriNet net = petri::MakePaperNet();
  for (DiagnosisEngine engine :
       {DiagnosisEngine::kCentralQsq, DiagnosisEngine::kReference}) {
    DiagnosisResult r = RunDiag(net, MakeAlarms({{"z", "p1"}}), engine);
    EXPECT_TRUE(r.explanations.empty()) << EngineName(engine);
  }
}

}  // namespace
}  // namespace dqsq::diagnosis
