#include "diagnosis/supervisor.h"

#include <gtest/gtest.h>

#include "diagnosis/encoder.h"
#include "petri/examples.h"

namespace dqsq::diagnosis {
namespace {

struct Built {
  DatalogContext ctx;
  EncodedNet encoded;
  SupervisorProgram sup;
};

std::unique_ptr<Built> BuildFor(const petri::PetriNet& net,
                                const petri::AlarmSequence& alarms,
                                SupervisorOptions opts = {}) {
  auto out = std::make_unique<Built>();
  auto enc = EncodeNet(net, out->ctx);
  DQSQ_CHECK_OK(enc.status());
  out->encoded = *std::move(enc);
  auto sup = BuildSupervisorForSequence(net, out->encoded, alarms, opts,
                                        out->ctx);
  DQSQ_CHECK_OK(sup.status());
  out->sup = *std::move(sup);
  return out;
}

TEST(SupervisorTest, ChainAutomatonShape) {
  AlarmAutomaton a = ChainAutomaton({"x", "y", "x"});
  EXPECT_EQ(a.num_states, 4u);
  ASSERT_EQ(a.edges.size(), 3u);
  EXPECT_EQ(a.edges[0].from, 0u);
  EXPECT_EQ(a.edges[0].symbol, "x");
  EXPECT_EQ(a.edges[2].to, 3u);
  EXPECT_EQ(a.accepting, (std::vector<uint32_t>{3}));
}

TEST(SupervisorTest, CfgpArityTracksObservedPeers) {
  petri::PetriNet net = petri::MakePaperNet();
  // Both peers observed: cfgp has 3 + 2 columns.
  auto both = BuildFor(
      net, petri::MakeAlarms({{"b", "p1"}, {"a", "p2"}}));
  EXPECT_EQ(both->sup.cfgp_arity, 5u);
  EXPECT_EQ(both->sup.observed_peers,
            (std::vector<std::string>{"p1", "p2"}));

  // Only p2 observed: 3 + 1.
  auto one = BuildFor(net, petri::MakeAlarms({{"a", "p2"}}));
  EXPECT_EQ(one->sup.cfgp_arity, 4u);
  EXPECT_EQ(one->sup.observed_peers, (std::vector<std::string>{"p2"}));
}

TEST(SupervisorTest, HiddenBudgetAddsColumn) {
  petri::PetriNet net = petri::MakePaperNet();
  SupervisorOptions opts;
  opts.max_hidden = 3;
  auto built = BuildFor(net, petri::MakeAlarms({{"b", "p1"}}), opts);
  EXPECT_EQ(built->sup.cfgp_arity, 3u + 1u + 1u);
  // hbnext facts: one per budget step.
  size_t hb_facts = 0;
  for (const Rule& rule : built->sup.program.rules) {
    if (rule.IsFact() &&
        built->ctx.PredicateName(rule.head.rel.pred) == "hbnext") {
      ++hb_facts;
    }
  }
  EXPECT_EQ(hb_facts, 3u);
}

TEST(SupervisorTest, SilentPeerObservableTransitionsGetNoRules) {
  petri::PetriNet net = petri::MakePaperNet();
  // Only p2 observed: no extension rule may mention p1's transitions.
  auto built = BuildFor(net, petri::MakeAlarms({{"a", "p2"}}));
  std::string text = ProgramToString(built->sup.program, built->ctx);
  EXPECT_EQ(text.find("tr_i,"), std::string::npos);   // i at p1
  EXPECT_EQ(text.find("tr_iii"), std::string::npos);  // iii at p1
  EXPECT_NE(text.find("tr_ii"), std::string::npos);   // ii at p2
}

TEST(SupervisorTest, UnmentionedSymbolsPrunedUnlessOpen) {
  petri::PetriNet net = petri::MakePaperNet();
  // Observation mentions only "a" at p2: rules for iv (c) and v (b)
  // are pruned...
  auto closed = BuildFor(net, petri::MakeAlarms({{"a", "p2"}}));
  std::string closed_text =
      ProgramToString(closed->sup.program, closed->ctx);
  EXPECT_EQ(closed_text.find("tr_iv"), std::string::npos);
  EXPECT_EQ(closed_text.find("tr_v,"), std::string::npos);

  // ...but kept under open automata (online diagnosis).
  SupervisorOptions open_opts;
  open_opts.open_automata = true;
  open_opts.emit_query = false;
  auto open = std::make_unique<Built>();
  auto enc = EncodeNet(net, open->ctx);
  ASSERT_TRUE(enc.ok());
  std::map<std::string, AlarmAutomaton> automata;
  AlarmAutomaton empty;
  empty.accepting = {0};
  automata["p2"] = empty;
  auto sup = BuildSupervisor(net, *enc, automata, open_opts, open->ctx);
  ASSERT_TRUE(sup.ok());
  std::string open_text = ProgramToString(sup->program, open->ctx);
  EXPECT_NE(open_text.find("tr_iv"), std::string::npos);
  EXPECT_NE(open_text.find("tr_v,"), std::string::npos);
}

TEST(SupervisorTest, EmitQueryFalseOmitsQRule) {
  petri::PetriNet net = petri::MakePaperNet();
  SupervisorOptions opts;
  opts.emit_query = false;
  auto built = BuildFor(net, petri::MakeAlarms({{"a", "p2"}}), opts);
  for (const Rule& rule : built->sup.program.rules) {
    EXPECT_NE(built->ctx.PredicateName(rule.head.rel.pred), "q");
  }
}

TEST(SupervisorTest, InitialConfigurationFact) {
  petri::PetriNet net = petri::MakePaperNet();
  auto built = BuildFor(net, petri::MakeAlarms({{"b", "p1"}}));
  bool found = false;
  for (const Rule& rule : built->sup.program.rules) {
    if (!rule.IsFact()) continue;
    if (built->ctx.PredicateName(rule.head.rel.pred) != "cfgp") continue;
    found = true;
    // cfgp(h(r), h(r), r, st_p1_0).
    EXPECT_EQ(AtomToString(rule.head, built->ctx, &rule.var_names),
              "cfgp@sup0(h(r),h(r),r,st_p1_0)");
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dqsq::diagnosis
