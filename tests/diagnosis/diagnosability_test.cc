#include "diagnosis/diagnosability.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "petri/net.h"
#include "petri/verifier.h"

namespace dqsq::diagnosis {
namespace {

using petri::PeerIndex;
using petri::PetriNet;
using petri::PlaceId;
using petri::ReplayWitness;
using petri::VerifierNet;

/// The named regression fixture (see also tests/petri/verifier_test.cc):
/// 3 places, 1 peer, NOT diagnosable — after the silent fault f the loop
/// a1 rings "a" forever, indistinguishable from the fault-free u + a2 run.
PetriNet MakeUndiagnosableLoopNet() {
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  PlaceId p2 = net.AddPlace("p2", p);
  net.AddTransition("f", p, "silent", {p0}, {p1}, /*observable=*/false,
                    /*fault=*/true);
  net.AddTransition("u", p, "silent", {p0}, {p2}, /*observable=*/false);
  net.AddTransition("a1", p, "a", {p1}, {p1}, /*observable=*/true);
  net.AddTransition("a2", p, "a", {p2}, {p2}, /*observable=*/true);
  net.SetInitialMarking({p0});
  return net;
}

PetriNet MakeDiagnosableLoopNet() {
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  PlaceId p2 = net.AddPlace("p2", p);
  net.AddTransition("f", p, "silent", {p0}, {p1}, /*observable=*/false,
                    /*fault=*/true);
  net.AddTransition("u", p, "silent", {p0}, {p2}, /*observable=*/false);
  net.AddTransition("b1", p, "b", {p1}, {p1}, /*observable=*/true);
  net.AddTransition("a2", p, "a", {p2}, {p2}, /*observable=*/true);
  net.SetInitialMarking({p0});
  return net;
}

const DiagnosabilityEngine kAllEngines[] = {
    DiagnosabilityEngine::kReference,
    DiagnosabilityEngine::kCentralSemiNaive,
    DiagnosabilityEngine::kCentralQsq,
    DiagnosabilityEngine::kDistNaive,
    DiagnosabilityEngine::kDistQsq,
};

TEST(DiagnosabilityTest, UndiagnosableFixtureOnEveryEngine) {
  PetriNet net = MakeUndiagnosableLoopNet();
  for (DiagnosabilityEngine engine : kAllEngines) {
    DiagnosabilityOptions options;
    options.engine = engine;
    auto result = CheckDiagnosability(net, options);
    ASSERT_TRUE(result.ok()) << DiagnosabilityEngineName(engine) << ": "
                             << result.status().ToString();
    EXPECT_FALSE(result->diagnosable) << DiagnosabilityEngineName(engine);
    EXPECT_FALSE(result->witness_anchors.empty());
    ASSERT_TRUE(result->witness.has_value());
    Status replay = ReplayWitness(net, *result->witness);
    EXPECT_TRUE(replay.ok()) << replay.ToString();
  }
}

TEST(DiagnosabilityTest, DiagnosableFixtureOnEveryEngine) {
  PetriNet net = MakeDiagnosableLoopNet();
  for (DiagnosabilityEngine engine : kAllEngines) {
    DiagnosabilityOptions options;
    options.engine = engine;
    auto result = CheckDiagnosability(net, options);
    ASSERT_TRUE(result.ok()) << DiagnosabilityEngineName(engine) << ": "
                             << result.status().ToString();
    EXPECT_TRUE(result->diagnosable) << DiagnosabilityEngineName(engine);
    EXPECT_TRUE(result->witness_anchors.empty());
    EXPECT_FALSE(result->witness.has_value());
  }
}

TEST(DiagnosabilityTest, DatalogEnginesAgreeOnAnchorSets) {
  PetriNet net = MakeUndiagnosableLoopNet();
  DiagnosabilityOptions options;
  options.engine = DiagnosabilityEngine::kCentralSemiNaive;
  auto seminaive = CheckDiagnosability(net, options);
  ASSERT_TRUE(seminaive.ok());
  options.engine = DiagnosabilityEngine::kCentralQsq;
  auto qsq = CheckDiagnosability(net, options);
  ASSERT_TRUE(qsq.ok());
  options.engine = DiagnosabilityEngine::kDistNaive;
  auto dnaive = CheckDiagnosability(net, options);
  ASSERT_TRUE(dnaive.ok());
  options.engine = DiagnosabilityEngine::kDistQsq;
  auto dqsq = CheckDiagnosability(net, options);
  ASSERT_TRUE(dqsq.ok());

  EXPECT_EQ(seminaive->witness_anchors, qsq->witness_anchors);
  EXPECT_EQ(seminaive->witness_anchors, dnaive->witness_anchors);
  EXPECT_EQ(seminaive->witness_anchors, dqsq->witness_anchors);
  EXPECT_GT(dnaive->messages, 0u);
  EXPECT_GT(dnaive->tuples_shipped, 0u);
}

TEST(DiagnosabilityTest, OracleAnchorBelongsToDatalogAnchorSet) {
  PetriNet net = MakeUndiagnosableLoopNet();
  DiagnosabilityOptions options;
  options.engine = DiagnosabilityEngine::kReference;
  auto oracle = CheckDiagnosability(net, options);
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(oracle->witness_anchors.size(), 1u);
  options.engine = DiagnosabilityEngine::kCentralSemiNaive;
  auto datalog = CheckDiagnosability(net, options);
  ASSERT_TRUE(datalog.ok());
  bool member = false;
  for (const std::string& anchor : datalog->witness_anchors) {
    if (anchor == oracle->witness_anchors[0]) member = true;
  }
  EXPECT_TRUE(member) << "oracle anchor " << oracle->witness_anchors[0]
                      << " missing from the Datalog anchor set";
}

TEST(DiagnosabilityTest, ZeroFaultNetIsTriviallyDiagnosable) {
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  net.AddTransition("go", p, "a", {p0}, {p1}, /*observable=*/true);
  net.AddTransition("back", p, "b", {p1}, {p0}, /*observable=*/true);
  net.SetInitialMarking({p0});
  for (DiagnosabilityEngine engine : kAllEngines) {
    DiagnosabilityOptions options;
    options.engine = engine;
    auto result = CheckDiagnosability(net, options);
    ASSERT_TRUE(result.ok()) << DiagnosabilityEngineName(engine);
    EXPECT_TRUE(result->diagnosable) << DiagnosabilityEngineName(engine);
  }
}

TEST(DiagnosabilityTest, AllUnobservableFaultLoopIsUndiagnosable) {
  PetriNet net;
  PeerIndex p = net.AddPeer("peer0");
  PlaceId p0 = net.AddPlace("p0", p);
  PlaceId p1 = net.AddPlace("p1", p);
  net.AddTransition("f", p, "silent", {p0}, {p1}, /*observable=*/false,
                    /*fault=*/true);
  net.AddTransition("loop", p, "silent", {p1}, {p1}, /*observable=*/false);
  net.SetInitialMarking({p0});
  for (DiagnosabilityEngine engine : kAllEngines) {
    DiagnosabilityOptions options;
    options.engine = engine;
    auto result = CheckDiagnosability(net, options);
    ASSERT_TRUE(result.ok()) << DiagnosabilityEngineName(engine);
    EXPECT_FALSE(result->diagnosable) << DiagnosabilityEngineName(engine);
    ASSERT_TRUE(result->witness.has_value());
    EXPECT_TRUE(ReplayWitness(net, *result->witness).ok());
  }
}

TEST(DiagnosabilityTest, ShardedDistributedRunMatchesUnsharded) {
  PetriNet net = MakeUndiagnosableLoopNet();
  for (DiagnosabilityEngine engine :
       {DiagnosabilityEngine::kDistNaive, DiagnosabilityEngine::kDistQsq}) {
    DiagnosabilityOptions options;
    options.engine = engine;
    options.num_shards = 1;
    auto unsharded = CheckDiagnosability(net, options);
    ASSERT_TRUE(unsharded.ok()) << DiagnosabilityEngineName(engine);
    options.num_shards = 4;
    auto sharded = CheckDiagnosability(net, options);
    ASSERT_TRUE(sharded.ok()) << DiagnosabilityEngineName(engine);
    EXPECT_EQ(unsharded->diagnosable, sharded->diagnosable);
    EXPECT_EQ(unsharded->witness_anchors, sharded->witness_anchors);
  }
}

TEST(DiagnosabilityTest, ProgramTextIsDeterministic) {
  PetriNet net = MakeUndiagnosableLoopNet();
  auto verifier = VerifierNet::Build(net);
  ASSERT_TRUE(verifier.ok());
  auto a = BuildVerifierProgramText(*verifier);
  auto b = BuildVerifierProgramText(*verifier);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->program, b->program);
  EXPECT_EQ(a->query, "witness@ver0(X)");
  EXPECT_NE(a->program.find("init@ver0(v0).\n"), std::string::npos);
  EXPECT_NE(a->program.find("reach@ver0(X) :- init@ver0(X).\n"),
            std::string::npos);
}

TEST(DiagnosabilityTest, MetricsCountRuns) {
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  PetriNet net = MakeUndiagnosableLoopNet();
  DiagnosabilityOptions options;
  options.engine = DiagnosabilityEngine::kCentralQsq;
  ASSERT_TRUE(CheckDiagnosability(net, options).ok());
  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  MetricsSnapshot delta = after.Diff(before);
  EXPECT_EQ(delta.Value("diag.verify.runs", Labels{{"engine", "qsq"}}), 1u);
  EXPECT_EQ(
      delta.Value("diag.verify.undiagnosable", Labels{{"engine", "qsq"}}),
      1u);
}

TEST(DiagnosabilityTest, EngineNamesAreStable) {
  EXPECT_EQ(DiagnosabilityEngineName(DiagnosabilityEngine::kReference),
            "reference");
  EXPECT_EQ(DiagnosabilityEngineName(DiagnosabilityEngine::kCentralSemiNaive),
            "seminaive");
  EXPECT_EQ(DiagnosabilityEngineName(DiagnosabilityEngine::kCentralQsq),
            "qsq");
  EXPECT_EQ(DiagnosabilityEngineName(DiagnosabilityEngine::kDistNaive),
            "dnaive");
  EXPECT_EQ(DiagnosabilityEngineName(DiagnosabilityEngine::kDistQsq), "dqsq");
}

}  // namespace
}  // namespace dqsq::diagnosis
