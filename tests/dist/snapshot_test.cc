#include "dist/snapshot.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dist/reliable.h"

namespace dqsq::dist {
namespace {

TEST(SnapshotCodecTest, PrimitivesRoundTripLittleEndian) {
  SnapshotWriter w;
  w.U8(0xAB);
  w.U32(0x01020304);
  w.U64(0x1122334455667788ULL);
  w.Bool(true);
  w.Bool(false);
  w.Str("hello");
  w.Str("");  // empty strings are representable
  const std::string bytes = w.bytes();
  // Spot-check the wire layout: little-endian, no alignment padding.
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0xAB);
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0x04);  // U32 low byte first
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(bytes[5]), 0x88);  // U64 low byte first

  SnapshotReader r(bytes);
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0x01020304u);
  EXPECT_EQ(r.U64(), 0x1122334455667788ULL);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotCodecDeathTest, TruncatedReadAborts) {
  SnapshotWriter w;
  w.U64(42);
  std::string bytes = w.bytes();
  bytes.resize(3);  // cut the U64 short
  SnapshotReader r(bytes);
  EXPECT_DEATH((void)r.U64(), "truncated");
}

TEST(SnapshotCodecTest, PatternRoundTripsNestedApplications) {
  const Pattern p = Pattern::App(
      7, {Pattern::Var(0), Pattern::Const(3),
          Pattern::App(9, {Pattern::Var(1), Pattern::Const(4)})});
  SnapshotWriter w;
  EncodePattern(p, w);
  SnapshotReader r(w.bytes());
  const Pattern back = DecodePattern(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back, p);
}

TEST(SnapshotCodecTest, RuleEncodingIsByteStable) {
  // Rule has no operator==; byte-stability (encode ∘ decode ∘ encode is
  // the identity) is the serialization contract and implies field
  // equality for everything the codec carries.
  Rule rule;
  rule.head.rel = RelId{1, 10};
  rule.head.args = {Pattern::Var(0), Pattern::Var(1)};
  Atom body;
  body.rel = RelId{2, 11};
  body.args = {Pattern::Var(0), Pattern::Const(5)};
  rule.body.push_back(body);
  Atom neg;
  neg.rel = RelId{3, 10};
  neg.args = {Pattern::Var(1)};
  rule.negative.push_back(neg);
  rule.diseqs.push_back(Diseq{Pattern::Var(0), Pattern::Var(1)});
  rule.num_vars = 2;
  rule.var_names = {"X", "Y"};

  SnapshotWriter w1;
  EncodeRule(rule, w1);
  SnapshotReader r(w1.bytes());
  const Rule back = DecodeRule(r);
  EXPECT_TRUE(r.AtEnd());
  SnapshotWriter w2;
  EncodeRule(back, w2);
  EXPECT_EQ(w1.bytes(), w2.bytes());
  EXPECT_EQ(back.head.rel, rule.head.rel);
  EXPECT_EQ(back.body.size(), 1u);
  EXPECT_EQ(back.negative.size(), 1u);
  EXPECT_EQ(back.diseqs.size(), 1u);
  EXPECT_EQ(back.num_vars, 2u);
  EXPECT_EQ(back.var_names, rule.var_names);
}

TEST(SnapshotCodecTest, MessageEncodingCarriesTheFullEnvelope) {
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = 4;
  m.to = 9;
  m.rel = RelId{6, 9};
  m.tuples = {{1, 2}, {3, 4, 5}, {}};
  m.subscriber = 12;
  m.adornment = {true, false, true};
  m.seq = 17;
  m.ack = 8;
  m.sack = {{10, 12}, {15, 15}};
  m.retransmit = true;
  m.epoch = 3;

  SnapshotWriter w1;
  EncodeMessage(m, w1);
  SnapshotReader r(w1.bytes());
  const Message back = DecodeMessage(r);
  EXPECT_TRUE(r.AtEnd());
  SnapshotWriter w2;
  EncodeMessage(back, w2);
  EXPECT_EQ(w1.bytes(), w2.bytes());
  EXPECT_EQ(back.kind, m.kind);
  EXPECT_EQ(back.from, m.from);
  EXPECT_EQ(back.to, m.to);
  EXPECT_EQ(back.tuples, m.tuples);
  EXPECT_EQ(back.adornment, m.adornment);
  EXPECT_EQ(back.seq, m.seq);
  EXPECT_EQ(back.ack, m.ack);
  EXPECT_EQ(back.sack, m.sack);
  EXPECT_TRUE(back.retransmit);
  EXPECT_EQ(back.epoch, 3u);
}

Message Payload(SymbolId from, SymbolId to, uint64_t seq) {
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = from;
  m.to = to;
  m.seq = seq;
  return m;
}

PeerSnapshot MakeSnapshot() {
  PeerSnapshot snap;
  snap.peer = 1;
  snap.epoch = 2;
  // Channel to peer 2: empty (everything acknowledged, only next_seq
  // survives). Channel to peer 3: mid-window (unacked, nothing queued).
  // Channel to peer 4: window-stalled (unacked full + pending queue).
  snap.senders.push_back(ChannelSenderState{2, 5, {}, {}});
  snap.senders.push_back(
      ChannelSenderState{3, 2, {Payload(1, 3, 1), Payload(1, 3, 2)}, {}});
  snap.senders.push_back(ChannelSenderState{
      4, 3, {Payload(1, 4, 1)}, {Payload(1, 4, 2), Payload(1, 4, 3)}});
  snap.receivers.push_back(ChannelReceiverState{2, 4, {6, 7, 9}});
  snap.receivers.push_back(ChannelReceiverState{3, 0, {}});
  snap.peer_state = std::string("opaque\0blob", 11);
  return snap;
}

TEST(PeerSnapshotTest, SerializationIsByteStable) {
  const PeerSnapshot snap = MakeSnapshot();
  const std::string bytes = SerializePeerSnapshot(snap);
  const PeerSnapshot back = DeserializePeerSnapshot(bytes);
  // serialize ∘ deserialize ∘ serialize is the identity.
  EXPECT_EQ(SerializePeerSnapshot(back), bytes);

  EXPECT_EQ(back.peer, 1u);
  EXPECT_EQ(back.epoch, 2u);
  ASSERT_EQ(back.senders.size(), 3u);
  EXPECT_EQ(back.senders[0].to, 2u);
  EXPECT_EQ(back.senders[0].next_seq, 5u);
  EXPECT_TRUE(back.senders[0].unacked.empty());
  EXPECT_TRUE(back.senders[0].pending.empty());
  EXPECT_EQ(back.senders[1].unacked.size(), 2u);
  EXPECT_EQ(back.senders[2].unacked.size(), 1u);
  ASSERT_EQ(back.senders[2].pending.size(), 2u);
  EXPECT_EQ(back.senders[2].pending[0].seq, 2u);  // FIFO order preserved
  EXPECT_EQ(back.senders[2].pending[1].seq, 3u);
  ASSERT_EQ(back.receivers.size(), 2u);
  EXPECT_EQ(back.receivers[0].from, 2u);
  EXPECT_EQ(back.receivers[0].cum, 4u);
  EXPECT_EQ(back.receivers[0].out_of_order, (std::vector<uint64_t>{6, 7, 9}));
  EXPECT_EQ(back.receivers[1].cum, 0u);
  EXPECT_EQ(back.peer_state, snap.peer_state);  // embedded NUL survives
}

TEST(PeerSnapshotDeathTest, TrailingBytesAbort) {
  std::string bytes = SerializePeerSnapshot(MakeSnapshot());
  bytes.push_back('\0');
  EXPECT_DEATH((void)DeserializePeerSnapshot(bytes), "trailing");
}

// ---------------------------------------------------------------------------
// Transport export/restore: the snapshot restores protocol state exactly.
// ---------------------------------------------------------------------------

Message Basic(SymbolId from, SymbolId to) {
  Message m;
  m.kind = MessageKind::kTuples;
  m.from = from;
  m.to = to;
  return m;
}

Message Ack(SymbolId from, SymbolId to, uint64_t ack) {
  Message m;
  m.kind = MessageKind::kTransportAck;
  m.from = from;
  m.to = to;
  m.ack = ack;
  return m;
}

TEST(TransportSnapshotTest, EmptyChannelRestoresNextSeq) {
  // Fully acknowledged channel: only next_seq matters — a restarted sender
  // must not reuse sequence numbers the receiver has already seen.
  ReliableTransport original;
  Message m1 = Basic(1, 2), m2 = Basic(1, 2);
  original.StampOutgoing(m1, 0);
  original.StampOutgoing(m2, 0);
  original.OnWireDelivery(m1, 1);
  original.OnWireDelivery(m2, 2);
  original.OnWireDelivery(Ack(2, 1, 2), 3);

  PeerSnapshot snap;
  original.ExportPeer(1, &snap);
  ASSERT_EQ(snap.senders.size(), 1u);
  EXPECT_EQ(snap.senders[0].next_seq, 2u);
  EXPECT_TRUE(snap.senders[0].unacked.empty());
  EXPECT_TRUE(snap.senders[0].pending.empty());

  ReliableTransport restored;
  restored.RestorePeer(snap, /*new_epoch=*/1, /*now=*/10);
  EXPECT_EQ(restored.EpochOf(1), 1u);
  Message m3 = Basic(1, 2);
  restored.StampOutgoing(m3, 10);
  EXPECT_EQ(m3.seq, 3u);  // numbering continues past the snapshot
}

TEST(TransportSnapshotTest, MidWindowChannelRetransmitsTheUnackedTail) {
  // Unacked in-window entries survive the snapshot and are immediately due
  // for retransmission after restore (their wire copies may be lost).
  ReliableTransport original;
  Message m1 = Basic(1, 2), m2 = Basic(1, 2), m3 = Basic(1, 2);
  original.StampOutgoing(m1, 0);
  original.StampOutgoing(m2, 0);
  original.StampOutgoing(m3, 0);
  original.OnWireDelivery(m1, 1);
  original.OnWireDelivery(Ack(2, 1, 1), 2);  // 2 and 3 remain unacked

  PeerSnapshot snap;
  original.ExportPeer(1, &snap);
  ASSERT_EQ(snap.senders.size(), 1u);
  ASSERT_EQ(snap.senders[0].unacked.size(), 2u);
  EXPECT_EQ(snap.senders[0].unacked[0].seq, 2u);
  EXPECT_EQ(snap.senders[0].unacked[1].seq, 3u);

  ReliableTransport restored;
  restored.RestorePeer(snap, /*new_epoch=*/1, /*now=*/50);
  // The timing-free protocol image of the restored state matches the
  // original exactly — same invariant RestartPeer CHECKs after WAL replay.
  EXPECT_EQ(restored.ProtocolImage(1), original.ProtocolImage(1));
  auto due = restored.PollWire(50);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_TRUE(due[0].retransmit);
  EXPECT_EQ(due[0].seq, 2u);
  EXPECT_EQ(due[0].epoch, 1u);  // re-stamped with the new incarnation
  EXPECT_EQ(due[1].seq, 3u);
}

TEST(TransportSnapshotTest, WindowStalledChannelKeepsItsPendingQueue) {
  ReliableConfig config;
  config.window = 1;
  ReliableTransport original(config);
  Message m1 = Basic(1, 2), m2 = Basic(1, 2), m3 = Basic(1, 2);
  EXPECT_TRUE(original.StampOutgoing(m1, 0));
  EXPECT_FALSE(original.StampOutgoing(m2, 0));  // queued behind the window
  EXPECT_FALSE(original.StampOutgoing(m3, 0));

  PeerSnapshot snap;
  original.ExportPeer(1, &snap);
  ASSERT_EQ(snap.senders.size(), 1u);
  EXPECT_EQ(snap.senders[0].unacked.size(), 1u);
  ASSERT_EQ(snap.senders[0].pending.size(), 2u);
  EXPECT_EQ(snap.senders[0].pending[0].seq, 2u);
  EXPECT_EQ(snap.senders[0].pending[1].seq, 3u);

  ReliableTransport restored(config);
  restored.RestorePeer(snap, /*new_epoch=*/1, /*now=*/10);
  EXPECT_EQ(restored.ProtocolImage(1), original.ProtocolImage(1));
  EXPECT_TRUE(restored.HasUnacked());
  EXPECT_FALSE(restored.AllPayloadDelivered());  // queued payload pending
  // Acking seq 1 opens the window: the restored queue drains in FIFO
  // order, one slot at a time, exactly as it would have pre-crash.
  restored.OnWireDelivery(Ack(2, 1, 1), 11);
  auto drained = restored.PollWire(12);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].seq, 2u);
  EXPECT_FALSE(drained[0].retransmit);
}

TEST(TransportSnapshotTest, ReceiverStateRestoresCumAndOutOfOrderExactly) {
  ReliableConfig config;
  config.ack_delay = 4;
  config.retransmit_timeout = 1000;
  ReliableTransport original(config);
  Message m[6];
  for (int i = 1; i <= 5; ++i) {
    m[i] = Basic(1, 2);
    original.StampOutgoing(m[i], 0);
  }
  // Seqs 1, 3, 5 arrive; 2 and 4 are holes.
  original.OnWireDelivery(m[1], 1);
  original.OnWireDelivery(m[3], 2);
  original.OnWireDelivery(m[5], 3);

  PeerSnapshot snap;
  original.ExportPeer(2, &snap);  // peer 2 is the receiver
  EXPECT_TRUE(snap.senders.empty());
  ASSERT_EQ(snap.receivers.size(), 1u);
  EXPECT_EQ(snap.receivers[0].from, 1u);
  EXPECT_EQ(snap.receivers[0].cum, 1u);
  EXPECT_EQ(snap.receivers[0].out_of_order, (std::vector<uint64_t>{3, 5}));

  ReliableTransport restored(config);
  restored.RestorePeer(snap, /*new_epoch=*/1, /*now=*/100);
  EXPECT_TRUE(restored.Seen({1, 2}, 1));
  EXPECT_FALSE(restored.Seen({1, 2}, 2));
  EXPECT_TRUE(restored.Seen({1, 2}, 3));
  EXPECT_FALSE(restored.Seen({1, 2}, 4));
  EXPECT_TRUE(restored.Seen({1, 2}, 5));
  // A restored receiver immediately owes an ack re-advertising the resume
  // point: cum=1 plus SACK blocks for the out-of-order islands.
  auto acks = restored.PollWire(100 + config.ack_delay);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].kind, MessageKind::kTransportAck);
  EXPECT_EQ(acks[0].ack, 1u);
  EXPECT_EQ(acks[0].sack, (std::vector<SackBlock>{{3, 3}, {5, 5}}));
  EXPECT_EQ(acks[0].epoch, 1u);  // stamped with the restored incarnation
}

TEST(TransportSnapshotTest, ExportIsScopedToTheRequestedPeer) {
  ReliableTransport transport;
  Message a = Basic(1, 2), b = Basic(3, 4);
  transport.StampOutgoing(a, 0);
  transport.StampOutgoing(b, 0);
  transport.OnWireDelivery(a, 1);
  transport.OnWireDelivery(b, 2);

  PeerSnapshot one;
  transport.ExportPeer(1, &one);
  ASSERT_EQ(one.senders.size(), 1u);
  EXPECT_EQ(one.senders[0].to, 2u);
  // Stamping (1,2) touched the reverse channel's receiver state for ack
  // piggybacking; the empty entry is exported so the restored image
  // matches the original channel map exactly.
  ASSERT_EQ(one.receivers.size(), 1u);
  EXPECT_EQ(one.receivers[0].from, 2u);
  EXPECT_EQ(one.receivers[0].cum, 0u);

  PeerSnapshot four;
  transport.ExportPeer(4, &four);
  EXPECT_TRUE(four.senders.empty());
  ASSERT_EQ(four.receivers.size(), 1u);
  EXPECT_EQ(four.receivers[0].from, 3u);
}

// ---------------------------------------------------------------------------
// Durable store.
// ---------------------------------------------------------------------------

TEST(InMemoryDurableStoreTest, BlobsAndLogsAreIndependentNamespaces) {
  InMemoryDurableStore store;
  EXPECT_FALSE(store.Get("snap/1").has_value());
  EXPECT_TRUE(store.ReadLog("wal/1").empty());
  EXPECT_EQ(store.bytes_written(), 0u);

  store.Put("snap/1", "aaaa");
  store.Put("snap/1", "bb");  // overwrite
  ASSERT_TRUE(store.Get("snap/1").has_value());
  EXPECT_EQ(*store.Get("snap/1"), "bb");

  store.Append("wal/1", "r1");
  store.Append("wal/1", "r2");
  store.Append("wal/2", "x");
  EXPECT_EQ(store.ReadLog("wal/1"),
            (std::vector<std::string>{"r1", "r2"}));  // append order
  EXPECT_EQ(store.ReadLog("wal/2").size(), 1u);

  store.TruncateLog("wal/1");
  EXPECT_TRUE(store.ReadLog("wal/1").empty());
  EXPECT_EQ(store.ReadLog("wal/2").size(), 1u);  // other logs untouched
  EXPECT_FALSE(store.Get("wal/1").has_value());  // logs are not blobs

  // Write volume counts every byte handed to Put/Append (4+2+2+2+1).
  EXPECT_EQ(store.bytes_written(), 11u);
}

}  // namespace
}  // namespace dqsq::dist
